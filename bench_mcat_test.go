// Sharded-catalog bench: mixed register/query throughput on a
// monolithic catalog vs a 4-way sharded router. The workload is ~30%
// object registration and ~70% deep-scoped metadata queries over an
// attribute whose values are spread across every collection — the
// worst case for a monolithic scan (the non-equality condition defeats
// the inverted index) and the best case for routing: a deep scope pins
// the query to one home shard, which holds ~1/N of the objects, so the
// candidate scan shrinks by the shard count even on a single core.
// `make bench-mcat` writes BENCH_mcat.json; `make bench-mcat-gate` (in
// `make check`) holds the ≥2x floor.
package gosrb_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"gosrb/internal/mcat"
	"gosrb/internal/mcat/shard"
	"gosrb/internal/types"
)

const (
	mcatBenchShards       = 4
	mcatBenchColls        = 64  // deep collections /proj/cNN
	mcatBenchObjsPerColl  = 25  // seeded objects per collection
	mcatBenchOps          = 600 // measured mixed ops per round
	mcatBenchWorkers      = 4   // concurrent clients
	mcatBenchRegisterMod  = 10  // i%10 < 3 → register: the ~30% write mix
	mcatBenchRegisterHits = 3
)

// mcatBenchRig builds an n-shard catalog seeded with the bench corpus.
func mcatBenchRig(tb testing.TB, n int) *shard.Router {
	tb.Helper()
	r := shard.NewRouter(n, "admin", "local")
	r.EnableMemoryJournals()
	if err := r.MkColl("/proj", "admin"); err != nil {
		tb.Fatal(err)
	}
	for c := 0; c < mcatBenchColls; c++ {
		coll := fmt.Sprintf("/proj/c%02d", c)
		if err := r.MkColl(coll, "admin"); err != nil {
			tb.Fatal(err)
		}
		for o := 0; o < mcatBenchObjsPerColl; o++ {
			path := fmt.Sprintf("%s/f%03d.dat", coll, o)
			if _, err := r.RegisterObject(&types.DataObject{
				Collection: coll, Name: fmt.Sprintf("f%03d.dat", o),
				Owner: "admin", Size: int64(o), DataType: "generic",
			}); err != nil {
				tb.Fatal(err)
			}
			if err := r.AddMeta(path, types.MetaUser,
				types.AVU{Name: "experiment", Value: fmt.Sprintf("e%d", o%8)}); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return r
}

// mcatBenchRound drives one measured round of the mixed workload from
// mcatBenchWorkers concurrent clients. Every op is deterministic in
// (round, worker, index): registers mint round-unique paths so rounds
// never collide, queries scope to one deep collection — the shape the
// router sends to a single home shard. Returns the round's duration.
func mcatBenchRound(tb testing.TB, r *shard.Router, round int) time.Duration {
	tb.Helper()
	perWorker := mcatBenchOps / mcatBenchWorkers
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, mcatBenchWorkers)
	for w := 0; w < mcatBenchWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				coll := fmt.Sprintf("/proj/c%02d", (w*perWorker+i)%mcatBenchColls)
				if i%mcatBenchRegisterMod < mcatBenchRegisterHits {
					name := fmt.Sprintf("r%03d-w%d-i%03d.dat", round, w, i)
					if _, err := r.RegisterObject(&types.DataObject{
						Collection: coll, Name: name,
						Owner: "admin", Size: int64(i), DataType: "generic",
					}); err != nil {
						errs <- err
						return
					}
					if err := r.AddMeta(coll+"/"+name, types.MetaUser,
						types.AVU{Name: "experiment", Value: fmt.Sprintf("e%d", i%8)}); err != nil {
						errs <- err
						return
					}
					continue
				}
				hits, err := r.RunQuery(mcat.Query{
					Scope: coll,
					Conds: []mcat.Condition{{Attr: "experiment", Op: "like", Value: "e%"}},
				})
				if err != nil {
					errs <- err
					return
				}
				if len(hits) < mcatBenchObjsPerColl {
					errs <- fmt.Errorf("query %s: %d hits, want >= %d", coll, len(hits), mcatBenchObjsPerColl)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		tb.Fatal(err)
	}
	return time.Since(start)
}

func mcatOpsPerSec(d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(mcatBenchOps) / d.Seconds()
}

// TestMcatBenchReport measures monolithic vs sharded throughput and
// writes BENCH_mcat.json (the Makefile's bench-mcat target,
// BENCH_MCAT=1).
func TestMcatBenchReport(t *testing.T) {
	if os.Getenv("BENCH_MCAT") == "" {
		t.Skip("set BENCH_MCAT=1 to emit BENCH_mcat.json")
	}
	mono := mcatBenchRig(t, 1)
	sharded := mcatBenchRig(t, mcatBenchShards)
	// Warm-up round per cell, off the clock.
	mcatBenchRound(t, mono, 0)
	mcatBenchRound(t, sharded, 0)
	// Best-of-3, paired: both cells measured back to back each round so
	// background load distorts them equally.
	var bestMono, bestSharded time.Duration
	for round := 1; round <= 3; round++ {
		m := mcatBenchRound(t, mono, round)
		s := mcatBenchRound(t, sharded, round)
		if round == 1 || m < bestMono {
			bestMono = m
		}
		if round == 1 || s < bestSharded {
			bestSharded = s
		}
	}
	report := struct {
		Benchmark        string  `json:"benchmark"`
		Shards           int     `json:"shards"`
		Collections      int     `json:"collections"`
		SeededObjects    int     `json:"seeded_objects"`
		OpsPerRound      int     `json:"ops_per_round"`
		RegisterPct      int     `json:"register_pct"`
		MonoOpsPerSec    float64 `json:"mono_ops_per_sec"`
		ShardedOpsPerSec float64 `json:"sharded_ops_per_sec"`
		ShardedSpeedup   float64 `json:"sharded_speedup"`
	}{
		Benchmark:        "mcat-sharded-throughput",
		Shards:           mcatBenchShards,
		Collections:      mcatBenchColls,
		SeededObjects:    mcatBenchColls * mcatBenchObjsPerColl,
		OpsPerRound:      mcatBenchOps,
		RegisterPct:      100 * mcatBenchRegisterHits / mcatBenchRegisterMod,
		MonoOpsPerSec:    mcatOpsPerSec(bestMono),
		ShardedOpsPerSec: mcatOpsPerSec(bestSharded),
		ShardedSpeedup:   bestMono.Seconds() / bestSharded.Seconds(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_mcat.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("monolithic %.0f ops/s, %d-shard %.0f ops/s (%.1fx)",
		report.MonoOpsPerSec, mcatBenchShards, report.ShardedOpsPerSec, report.ShardedSpeedup)
}

// TestMcatBenchGate holds the partitioning floor: the 4-shard catalog
// must clear 2x monolithic throughput on the mixed workload. Five
// paired rounds, keeping each cell's best — the scheduler-least-
// distorted measurement. Gated behind BENCH_MCAT_GATE=1 (`make
// bench-mcat-gate`, part of `make check`).
func TestMcatBenchGate(t *testing.T) {
	if os.Getenv("BENCH_MCAT_GATE") == "" {
		t.Skip("set BENCH_MCAT_GATE=1 to check the sharded throughput floor")
	}
	mono := mcatBenchRig(t, 1)
	sharded := mcatBenchRig(t, mcatBenchShards)
	mcatBenchRound(t, mono, 0)
	mcatBenchRound(t, sharded, 0)
	const floor = 2.0
	var bestMono, bestSharded time.Duration
	for round := 1; round <= 5; round++ {
		m := mcatBenchRound(t, mono, round)
		s := mcatBenchRound(t, sharded, round)
		if round == 1 || m < bestMono {
			bestMono = m
		}
		if round == 1 || s < bestSharded {
			bestSharded = s
		}
	}
	speedup := bestMono.Seconds() / bestSharded.Seconds()
	t.Logf("%d-shard speedup over monolithic: %.2fx (mono %.0f ops/s, sharded %.0f ops/s)",
		mcatBenchShards, speedup, mcatOpsPerSec(bestMono), mcatOpsPerSec(bestSharded))
	if speedup < floor {
		t.Errorf("sharded speedup %.2fx is under the %.0fx floor", speedup, floor)
	}
}
