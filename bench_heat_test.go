// The heat-observatory overhead harness: what does recording hot-key
// and hot-object heat cost on top of the telemetry the broker already
// pays for? Both cells run the *instrumented* broker; the plain cell
// detaches only the heat tables via SetHeatTracking(false), so the
// delta isolates exactly what the observatory adds per request: the
// space-saving sketch update on the catalog key in the get path plus
// the hot-object record in the replica read path.
package gosrb_test

import (
	"encoding/json"
	"os"
	"testing"

	"gosrb/internal/core"
	"gosrb/internal/workload"
)

// heatBenchOp is one get through the heat harness. The broker's own
// get path records the depth-2 catalog key (when tracking is on) and
// the replica manager records the object path; with tracking off both
// records are nil-table no-ops and everything else is identical.
func heatBenchOp(br *core.Broker, i, objects int) error {
	return obsBenchOp(br, false, i, objects, nil)
}

// BenchmarkHeatOverhead compares a heat-tracked get against the same
// instrumented get with the heat tables detached.
func BenchmarkHeatOverhead(b *testing.B) {
	payload := workload.NewGen(23).Bytes(4 << 10)
	const objects = 64
	for _, mode := range []struct {
		name    string
		tracked bool
	}{{"tracked", true}, {"plain", false}} {
		b.Run("get/"+mode.name, func(b *testing.B) {
			br := obsBenchBroker(b, true, objects, payload)
			br.SetHeatTracking(mode.tracked)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := heatBenchOp(br, i, objects); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestHeatBenchReport measures the heat-tracking overhead and writes
// BENCH_heat.json. Gated behind BENCH_HEAT=1 (the Makefile's
// bench-heat target).
func TestHeatBenchReport(t *testing.T) {
	if os.Getenv("BENCH_HEAT") == "" {
		t.Skip("set BENCH_HEAT=1 to emit BENCH_heat.json")
	}
	payload := workload.NewGen(23).Bytes(4 << 10)
	const objects = 64
	measure := func(tracked bool) float64 {
		br := obsBenchBroker(t, true, objects, payload)
		br.SetHeatTracking(tracked)
		best := 0.0
		for round := 0; round < 3; round++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := heatBenchOp(br, i, objects); err != nil {
						b.Fatal(err)
					}
				}
			})
			if v := float64(res.NsPerOp()); round == 0 || v < best {
				best = v
			}
		}
		return best
	}
	tracked, plain := measure(true), measure(false)
	report := struct {
		Benchmark      string  `json:"benchmark"`
		PayloadBytes   int     `json:"payload_bytes"`
		Objects        int     `json:"objects"`
		TrackedNsPerOp float64 `json:"tracked_ns_per_op"`
		PlainNsPerOp   float64 `json:"plain_ns_per_op"`
		OverheadPct    float64 `json:"overhead_pct"`
	}{
		Benchmark:      "heat-tracking-overhead",
		PayloadBytes:   len(payload),
		Objects:        objects,
		TrackedNsPerOp: tracked,
		PlainNsPerOp:   plain,
	}
	if plain > 0 {
		report.OverheadPct = (tracked - plain) / plain * 100
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_heat.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("get: %.0f ns tracked vs %.0f ns plain (%.2f%% overhead)", tracked, plain, report.OverheadPct)
}

// TestHeatBenchGate is the ISSUE's overhead budget made executable: a
// heat-tracked get may cost at most 5% over the same get with the
// tables detached. The bound is absolute — heat tracking is always on
// in production, so its budget does not ratchet with the recorded
// baseline. Gated behind BENCH_HEAT_GATE=1 (make bench-heat-gate,
// wired into make check); skips when no baseline exists so fresh
// checkouts aren't blocked.
func TestHeatBenchGate(t *testing.T) {
	if os.Getenv("BENCH_HEAT_GATE") == "" {
		t.Skip("set BENCH_HEAT_GATE=1 to check the heat overhead budget")
	}
	if _, err := os.Stat("BENCH_heat.json"); err != nil {
		t.Skipf("no baseline: %v (run `make bench-heat` first)", err)
	}
	payload := workload.NewGen(23).Bytes(4 << 10)
	const objects = 64
	run := func(br *core.Broker) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := heatBenchOp(br, i, objects); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp())
	}
	// Pairwise rounds, min overhead kept: both cells see the same
	// scheduler interference each round (see TestObsOverheadGate).
	trackedBr := obsBenchBroker(t, true, objects, payload)
	trackedBr.SetHeatTracking(true)
	plainBr := obsBenchBroker(t, true, objects, payload)
	plainBr.SetHeatTracking(false)
	overhead := 0.0
	for round := 0; round < 5; round++ {
		tr, pl := run(trackedBr), run(plainBr)
		v := 0.0
		if pl > 0 {
			v = (tr - pl) / pl * 100
		}
		if round == 0 || v < overhead {
			overhead = v
		}
	}
	if overhead < 0 {
		overhead = 0
	}
	const budgetPct = 5.0
	t.Logf("heat-tracking overhead: %.2f%% (budget %.1f%%)", overhead, budgetPct)
	if overhead > budgetPct {
		t.Errorf("heat-tracking overhead %.2f%% exceeds the %.1f%% budget", overhead, budgetPct)
	}
}
