// Package client is the SRB client library: it speaks the wire
// protocol to any federated server, authenticates with
// challenge–response (the password never crosses the wire), follows
// federation redirects transparently, and offers the Scommand-style
// operation set plus parallel multi-stream bulk transfer.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gosrb/internal/auth"
	"gosrb/internal/mcat"
	"gosrb/internal/obs"
	"gosrb/internal/resilience"
	"gosrb/internal/storage"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

// DialTimeout bounds connection establishment. It is the same tunable
// the server uses for peer dials (resilience.DialTimeout).
const DialTimeout = resilience.DialTimeout

// Client is one authenticated identity against an SRB server, backed
// by a bounded connection pool of multiplexed connections. Methods are
// safe for concurrent use; against a mux-capable server concurrent
// calls pipeline over shared connections instead of queueing, and
// ParallelGet opens dedicated connections for concurrent bulk streams.
type Client struct {
	mu sync.Mutex
	// pool owns the authenticated connections; checkout dials lazily
	// and transport errors evict, so reconnect-on-error falls out of
	// the checkout path.
	pool *wire.Pool
	addr string
	// server is the federation name reported at handshake.
	server string

	user     string
	password string

	// dial allows tests to shape connections.
	dial func(addr string) (net.Conn, error)

	// timeout, when set, bounds each logical call; the remaining budget
	// rides in wire.Request.TimeoutMillis so every server on the
	// federation path inherits it.
	timeout time.Duration
	// retry shapes automatic retries. Only idempotent (read-only) ops
	// are ever retried; see wire.Idempotent.
	retry resilience.Policy
	sleep func(time.Duration)
	randf func() float64
	// retries counts retry attempts actually performed (tests and the
	// Scommand -v output read it via Retries). Atomic: calls overlap.
	retries atomic.Int64
	// lastTrace remembers the trace ID minted for the most recent
	// logical call, so callers can fetch its span tree afterwards.
	lastTrace string
	// history, when set, receives one per-server transfer observation
	// per logical call — the client-side feed of the peer observatory.
	history *obs.PeerHistory
	// metrics, when set, receives client-side latency-decomposition
	// phases (serialize, pool checkout, mux in-flight, dial, batch hold)
	// as phase.client.* ops, plus the connection pool's wire.pool.*
	// gauges and checkout-wait histogram.
	metrics atomic.Pointer[obs.Registry]
}

// Dial connects and authenticates to the server at addr.
func Dial(addr, user, password string) (*Client, error) {
	return DialWith(addr, user, password, nil)
}

// DialWith is Dial with a custom transport dialer (nil = TCP).
func DialWith(addr, user, password string, dialer func(addr string) (net.Conn, error)) (*Client, error) {
	if dialer == nil {
		dialer = func(a string) (net.Conn, error) {
			return net.DialTimeout("tcp", a, DialTimeout)
		}
	}
	cl := &Client{
		addr: addr, user: user, password: password, dial: dialer,
		retry: resilience.DefaultPolicy, sleep: time.Sleep,
	}
	cl.pool = wire.NewPool(wire.PoolConfig{Dial: cl.dialMux, Prefix: "wire.pool"})
	// Authenticate eagerly so bad credentials and dead servers fail at
	// Dial, matching the one-conn-per-client behaviour this replaces.
	m, err := cl.pool.Get(addr)
	if err != nil {
		cl.pool.Close()
		return nil, err
	}
	cl.server = m.Server()
	cl.pool.Put(m)
	return cl, nil
}

// dialMux establishes and authenticates one pooled connection.
func (cl *Client) dialMux(addr string) (*wire.Mux, error) {
	start := time.Now()
	defer func() { cl.phase("conn", obs.PhaseDial, time.Since(start), "") }()
	nc, err := cl.dial(addr)
	if err != nil {
		return nil, types.E("dial", addr, err)
	}
	c := wire.NewConn(nc)
	var ch wire.Challenge
	if err := c.ReadJSON(wire.MsgChallenge, &ch); err != nil {
		nc.Close()
		return nil, types.E("handshake", addr, err)
	}
	resp := auth.Respond(auth.DeriveKey(cl.user, cl.password), ch.Nonce)
	if err := c.WriteJSON(wire.MsgAuth, wire.Auth{User: cl.user, Response: resp}); err != nil {
		nc.Close()
		return nil, types.E("handshake", addr, err)
	}
	var ok wire.AuthOK
	if err := c.ReadJSON(wire.MsgAuthOK, &ok); err != nil {
		nc.Close()
		return nil, types.E("login", cl.user, types.ErrAuth)
	}
	return wire.NewMux(nc, c, ok.Server, ok.Mux), nil
}

// PoolStats reports the connection pool's occupancy and lifetime dial,
// eviction and idle-reap counts.
func (cl *Client) PoolStats() wire.PoolStats { return cl.pool.Stats() }

// SetTimeout bounds each logical call (0 = unbounded). The budget is
// carried on the wire, so federation hops enforce what remains of it.
func (cl *Client) SetTimeout(d time.Duration) {
	cl.mu.Lock()
	cl.timeout = d
	cl.mu.Unlock()
}

// SetRetryPolicy tunes automatic retries of idempotent operations.
// MaxAttempts of 1 disables them.
func (cl *Client) SetRetryPolicy(p resilience.Policy) {
	cl.mu.Lock()
	if p.MaxAttempts > 0 {
		cl.retry = p
	}
	cl.mu.Unlock()
}

// SetPeerHistory attaches a transfer observatory table: every logical
// call then records its latency, payload bytes and transport outcome
// against the serving server's name (nil detaches).
func (cl *Client) SetPeerHistory(ph *obs.PeerHistory) {
	cl.mu.Lock()
	cl.history = ph
	cl.mu.Unlock()
}

// SetMetrics attaches a telemetry registry: every call then records its
// client-side latency phases (phase.client.<op>.<phase> histograms with
// trace-ID tail exemplars) and the connection pool exports its
// wire.pool.* stats into the same registry.
func (cl *Client) SetMetrics(reg *obs.Registry) {
	cl.metrics.Store(reg)
	cl.pool.SetMetrics(reg)
}

// phase records one client-side latency phase (no-op without an
// attached registry).
func (cl *Client) phase(op, name string, d time.Duration, trace string) {
	reg := cl.metrics.Load()
	if reg == nil {
		return
	}
	reg.Op(obs.PhasePrefix+"client."+op+"."+name).ObserveTrace(d, nil, trace)
}

// Retries reports how many retry attempts this client has performed.
func (cl *Client) Retries() int64 {
	return cl.retries.Load()
}

// Close drops every pooled connection.
func (cl *Client) Close() error {
	cl.pool.Close()
	return nil
}

// Server returns the federation name of the currently connected server.
func (cl *Client) Server() string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.server
}

// Addr returns the address currently connected to (it changes after a
// federation redirect).
func (cl *Client) Addr() string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.addr
}

// call performs one request/response cycle. sendData, when non-nil, is
// streamed after the request. The response body is decoded into out
// (when non-nil); a data stream, when announced, is returned.
func (cl *Client) call(op string, args any, sendData []byte, out any) ([]byte, error) {
	return cl.callTicket(op, args, sendData, out, "")
}

// callTicket is call with an optional delegated-access ticket attached.
// Each logical call mints one trace ID, kept across redirect and retry
// attempts, so the servers involved all record it under the same trace.
//
// Idempotent operations that fail with a retryable error (offline,
// timeout, transport) are retried under the client's backoff policy; a
// transport error additionally reconnects first, since the conn is
// poisoned mid-protocol. Mutating ops get exactly one attempt — a lost
// response does not prove the mutation was lost.
func (cl *Client) callTicket(op string, args any, sendData []byte, out any, ticket string) ([]byte, error) {
	trace := obs.NewTraceID()
	cl.mu.Lock()
	cl.lastTrace = trace
	timeout, policy := cl.timeout, cl.retry
	sleep, randf, history := cl.sleep, cl.randf, cl.history
	cl.mu.Unlock()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if !wire.Idempotent(op) {
		policy.MaxAttempts = 1
	}
	// attempt rides in wire.Request.Attempt so the serving server can
	// record a retry event on the span of each re-attempt — client-side
	// retries become visible in the trace without a client-side ring.
	attempt := 0
	r := resilience.Retrier{
		Policy: policy, Sleep: sleep, Rand: randf, Deadline: deadline,
		OnRetry: func(int, error) { cl.retries.Add(1); attempt++ },
	}
	var result []byte
	start := time.Now()
	err := r.Do(func() error {
		// A transport error evicted the failed conn inside callOnce, so
		// the next attempt's checkout dials a clean connection —
		// reconnect-on-transport-error lives in the pool now.
		data, err := cl.callRedirect(op, args, sendData, out, ticket, trace, attempt, deadline)
		if err != nil {
			return err
		}
		result = data
		return nil
	})
	// Feed the observatory with the whole logical call (retries and
	// redirects included — that is the latency the user experienced).
	history.Record(cl.Server(), "", time.Since(start),
		int64(len(result)+len(sendData)), err != nil && resilience.Transport(err))
	return result, err
}

// callRedirect performs one attempt, following federation redirects.
func (cl *Client) callRedirect(op string, args any, sendData []byte, out any, ticket, trace string, attempt int, deadline time.Time) ([]byte, error) {
	addr := cl.Addr()
	for redirects := 0; ; redirects++ {
		data, redirect, err := cl.callOnce(addr, op, args, sendData, out, ticket, trace, attempt, deadline)
		if err != nil {
			return nil, err
		}
		if redirect == nil {
			return data, nil
		}
		if redirects >= 4 {
			return nil, types.E(op, redirect.Addr, types.ErrInvalid)
		}
		// Transparent federation redirect: switch addresses and retry
		// (the pool dials the new server on checkout — single sign-on
		// means the same credential works on every zone server). The
		// switch sticks so later calls start at the owning server.
		addr = redirect.Addr
		cl.mu.Lock()
		cl.addr = addr
		cl.mu.Unlock()
	}
}

func (cl *Client) callOnce(addr, op string, args any, sendData []byte, out any, ticket, trace string, attempt int, deadline time.Time) ([]byte, *wire.Redirect, error) {
	serStart := time.Now()
	raw, err := json.Marshal(args)
	cl.phase(op, obs.PhaseSerialize, time.Since(serStart), trace)
	if err != nil {
		return nil, nil, err
	}
	req := wire.Request{Op: op, Args: raw, Ticket: ticket, Trace: trace, Attempt: attempt}
	if !deadline.IsZero() {
		// The wire budget tells the server chain how long this call may
		// take; the Mux enforces it locally so a stalled server cannot
		// hang the client past it.
		left := time.Until(deadline)
		if left <= 0 {
			return nil, nil, types.E(op, "", types.ErrTimeout)
		}
		ms := left.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.TimeoutMillis = ms
	}
	coStart := time.Now()
	m, err := cl.pool.Get(addr)
	cl.phase(op, obs.PhasePoolCheckout, time.Since(coStart), trace)
	if err != nil {
		return nil, nil, err
	}
	var data io.Reader
	if sendData != nil {
		data = bytes.NewReader(sendData)
	}
	callStart := time.Now()
	res, err := m.Call(&req, data, deadline)
	cl.phase(op, obs.PhaseMuxInflight, time.Since(callStart), trace)
	if err != nil {
		// Evict only broken conns; a strict-mux call timeout leaves the
		// connection healthy (the late response is discarded by ID).
		if m.Dead() {
			cl.pool.Fail(m)
		} else {
			cl.pool.Put(m)
		}
		return nil, nil, types.E(op, "", err)
	}
	cl.pool.Put(m)
	cl.mu.Lock()
	cl.server = m.Server()
	cl.mu.Unlock()
	if res.Redirect != nil {
		return nil, res.Redirect, nil
	}
	resp := res.Resp
	if !resp.OK {
		return nil, nil, resp.Err()
	}
	if out != nil && len(resp.Body) > 0 {
		if err := json.Unmarshal(resp.Body, out); err != nil {
			return nil, nil, err
		}
	}
	return res.Data, nil, nil
}

// ---- Scommand-style API ----

// Mkdir creates a collection (Smkdir).
func (cl *Client) Mkdir(path string) error {
	_, err := cl.call(wire.OpMkdir, wire.PathArgs{Path: path}, nil, nil)
	return err
}

// RmColl removes an empty collection (Srmdir).
func (cl *Client) RmColl(path string) error {
	_, err := cl.call(wire.OpRmColl, wire.PathArgs{Path: path}, nil, nil)
	return err
}

// List lists a collection (Sls).
func (cl *Client) List(path string) ([]types.Stat, error) {
	var out []types.Stat
	_, err := cl.call(wire.OpList, wire.PathArgs{Path: path}, nil, &out)
	return out, err
}

// Stat describes a path.
func (cl *Client) Stat(path string) (types.Stat, error) {
	var out types.Stat
	_, err := cl.call(wire.OpStat, wire.PathArgs{Path: path}, nil, &out)
	return out, err
}

// GetObject fetches the full catalog record of an object.
func (cl *Client) GetObject(path string) (types.DataObject, error) {
	var out types.DataObject
	_, err := cl.call(wire.OpGetObject, wire.PathArgs{Path: path}, nil, &out)
	return out, err
}

// PutOpts parameterise Put.
type PutOpts struct {
	Resource  string
	Container string
	DataType  string
	Meta      []types.AVU
}

// Put ingests data at path (Sput).
func (cl *Client) Put(path string, data []byte, opts PutOpts) (types.DataObject, error) {
	var out types.DataObject
	args := wire.IngestArgs{
		Path: path, Resource: opts.Resource, Container: opts.Container,
		DataType: opts.DataType, Meta: opts.Meta,
	}
	if data == nil {
		data = []byte{}
	}
	_, err := cl.call(wire.OpIngest, args, data, &out)
	return out, err
}

// Reput replaces an object's contents, keeping its metadata.
func (cl *Client) Reput(path string, data []byte) error {
	if data == nil {
		data = []byte{}
	}
	_, err := cl.call(wire.OpReingest, wire.PathArgs{Path: path}, data, nil)
	return err
}

// Get retrieves an object's contents (Sget).
func (cl *Client) Get(path string) ([]byte, error) {
	return cl.call(wire.OpGet, wire.PathArgs{Path: path}, nil, nil)
}

// GetRange reads length bytes at offset; length < 0 reads to the end.
func (cl *Client) GetRange(path string, offset, length int64) ([]byte, error) {
	return cl.call(wire.OpReadRange, wire.RangeArgs{Path: path, Offset: offset, Length: length}, nil, nil)
}

// ParallelGet retrieves an object over streams concurrent connections,
// each fetching a contiguous range — SRB's parallel bulk transfer.
func (cl *Client) ParallelGet(path string, streams int) ([]byte, error) {
	st, err := cl.Stat(path)
	if err != nil {
		return nil, err
	}
	size := st.Size
	if streams < 1 {
		streams = 1
	}
	if int64(streams) > size {
		streams = int(size)
	}
	if streams <= 1 || size == 0 {
		return cl.Get(path)
	}
	out := make([]byte, size)
	chunk := (size + int64(streams) - 1) / int64(streams)
	errs := make(chan error, streams)
	cl.mu.Lock()
	timeout, retry := cl.timeout, cl.retry
	cl.mu.Unlock()
	for i := 0; i < streams; i++ {
		off := int64(i) * chunk
		length := chunk
		if off+length > size {
			length = size - off
		}
		go func(off, length int64) {
			// Each stream is its own authenticated connection and
			// inherits the parent's resilience knobs.
			sub, err := DialWith(cl.Addr(), cl.user, cl.password, cl.dial)
			if err != nil {
				errs <- err
				return
			}
			defer sub.Close()
			sub.SetTimeout(timeout)
			sub.SetRetryPolicy(retry)
			data, err := sub.GetRange(path, off, length)
			if err != nil {
				errs <- err
				return
			}
			if int64(len(data)) != length {
				errs <- types.E("parallelget", path, fmt.Errorf("short range read (%d of %d)", len(data), length))
				return
			}
			copy(out[off:], data)
			errs <- nil
		}(off, length)
	}
	for i := 0; i < streams; i++ {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Replicate adds a replica on resource (Sreplicate).
func (cl *Client) Replicate(path, resource string) (types.Replica, error) {
	var out types.Replica
	_, err := cl.call(wire.OpReplicate, wire.ReplicateArgs{Path: path, Resource: resource}, nil, &out)
	return out, err
}

// Delete removes an object (Srm).
func (cl *Client) Delete(path string) error {
	_, err := cl.call(wire.OpDelete, wire.PathArgs{Path: path}, nil, nil)
	return err
}

// DeleteReplica removes one replica.
func (cl *Client) DeleteReplica(path string, number int) error {
	_, err := cl.call(wire.OpDeleteReplica, wire.ReplicaArgs{Path: path, Number: number}, nil, nil)
	return err
}

// Move renames an object or collection (Smv).
func (cl *Client) Move(src, dst string) error {
	_, err := cl.call(wire.OpMove, wire.MoveArgs{Src: src, Dst: dst}, nil, nil)
	return err
}

// Copy copies an object or collection (Scp).
func (cl *Client) Copy(src, dst, resource string) error {
	_, err := cl.call(wire.OpCopy, wire.CopyArgs{Src: src, Dst: dst, Resource: resource}, nil, nil)
	return err
}

// Link creates a soft link (Sln).
func (cl *Client) Link(target, linkPath string) error {
	_, err := cl.call(wire.OpLink, wire.LinkArgs{Target: target, LinkPath: linkPath}, nil, nil)
	return err
}

// AddMeta attaches a metadata triplet.
func (cl *Client) AddMeta(path string, class types.MetaClass, avu types.AVU) error {
	_, err := cl.call(wire.OpAddMeta, wire.MetaArgs{Path: path, Class: int(class), AVU: avu}, nil, nil)
	return err
}

// GetMeta fetches one metadata class.
func (cl *Client) GetMeta(path string, class types.MetaClass) ([]types.AVU, error) {
	var out []types.AVU
	_, err := cl.call(wire.OpGetMeta, wire.GetMetaArgs{Path: path, Class: int(class)}, nil, &out)
	return out, err
}

// Annotate adds commentary.
func (cl *Client) Annotate(path string, ann types.Annotation) error {
	_, err := cl.call(wire.OpAnnotate, wire.AnnotateArgs{Path: path, Ann: ann}, nil, nil)
	return err
}

// Annotations lists commentary.
func (cl *Client) Annotations(path string) ([]types.Annotation, error) {
	var out []types.Annotation
	_, err := cl.call(wire.OpAnnotations, wire.PathArgs{Path: path}, nil, &out)
	return out, err
}

// Query runs a conjunctive metadata query.
func (cl *Client) Query(q mcat.Query) ([]mcat.Hit, error) {
	hits, _, err := cl.QueryPartial(q)
	return hits, err
}

// QueryPartial is Query with partial-result reporting: partial names
// the catalog shards (as "shard-N") that missed the scatter-gather
// deadline or were stale followers, whose hits are therefore missing.
func (cl *Client) QueryPartial(q mcat.Query) ([]mcat.Hit, []string, error) {
	var out wire.QueryReply
	_, err := cl.call(wire.OpQuery, wire.QueryArgs{Q: q}, nil, &out)
	return out.Hits, out.Partial, err
}

// Shards reports the server's catalog shard statuses (one implicit
// leader row when the catalog is monolithic).
func (cl *Client) Shards() (wire.ShardsReply, error) {
	var out wire.ShardsReply
	_, err := cl.call(wire.OpShards, wire.ShardsArgs{}, nil, &out)
	return out, err
}

// ShardPull fetches shard shardIdx's replication entries after sequence
// after from a leader daemon (peer/admin only): journal lines, or a
// full snapshot when the follower is too far behind the retained log.
func (cl *Client) ShardPull(shardIdx int, after uint64) (wire.ShardPullReply, error) {
	var out wire.ShardPullReply
	_, err := cl.call(wire.OpShardPull, wire.ShardPullArgs{Shard: shardIdx, After: after}, nil, &out)
	return out, err
}

// QueryAttrNames fetches the queryable attribute names under scope.
func (cl *Client) QueryAttrNames(scope string) ([]string, error) {
	var out []string
	_, err := cl.call(wire.OpQueryAttrs, wire.PathArgs{Path: scope}, nil, &out)
	return out, err
}

// Chmod grants a permission level ("none", "read", "annotate", "write",
// "own", "curate") to a grantee.
func (cl *Client) Chmod(path, grantee, level string) error {
	_, err := cl.call(wire.OpChmod, wire.ChmodArgs{Path: path, Grantee: grantee, Level: level}, nil, nil)
	return err
}

// Lock places a "shared" or "exclusive" lock.
func (cl *Client) Lock(path, kind string, ttl time.Duration) error {
	_, err := cl.call(wire.OpLock, wire.LockArgs{Path: path, Kind: kind, TTLSeconds: int64(ttl / time.Second)}, nil, nil)
	return err
}

// Unlock removes the caller's lock.
func (cl *Client) Unlock(path string) error {
	_, err := cl.call(wire.OpUnlock, wire.PathArgs{Path: path}, nil, nil)
	return err
}

// Pin protects a replica from cache purging.
func (cl *Client) Pin(path, resource string, ttl time.Duration) error {
	_, err := cl.call(wire.OpPin, wire.PinArgs{Path: path, Resource: resource, TTLSeconds: int64(ttl / time.Second)}, nil, nil)
	return err
}

// Unpin removes the caller's pin.
func (cl *Client) Unpin(path, resource string) error {
	_, err := cl.call(wire.OpUnpin, wire.PinArgs{Path: path, Resource: resource}, nil, nil)
	return err
}

// Checkout takes an object out for editing.
func (cl *Client) Checkout(path string) error {
	_, err := cl.call(wire.OpCheckout, wire.PathArgs{Path: path}, nil, nil)
	return err
}

// Checkin stores new contents, preserving the old as a version.
func (cl *Client) Checkin(path string, data []byte, comment string) error {
	if data == nil {
		data = []byte{}
	}
	_, err := cl.call(wire.OpCheckin, wire.CheckinArgs{Path: path, Comment: comment}, data, nil)
	return err
}

// RegisterURL registers a URL object.
func (cl *Client) RegisterURL(path, url string) (types.DataObject, error) {
	var out types.DataObject
	_, err := cl.call(wire.OpRegisterURL, wire.RegisterURLArgs{Path: path, URL: url}, nil, &out)
	return out, err
}

// RegisterSQL registers a SQL query object.
func (cl *Client) RegisterSQL(path string, spec types.SQLSpec) (types.DataObject, error) {
	var out types.DataObject
	_, err := cl.call(wire.OpRegisterSQL, wire.RegisterSQLArgs{Path: path, Spec: spec}, nil, &out)
	return out, err
}

// ExecSQL executes a registered SQL object with an optional suffix.
func (cl *Client) ExecSQL(path, suffix string) ([]byte, error) {
	return cl.call(wire.OpExecSQL, wire.ExecSQLArgs{Path: path, Suffix: suffix}, nil, nil)
}

// Invoke runs a method object with extra arguments.
func (cl *Client) Invoke(path string, args []string) ([]byte, error) {
	return cl.call(wire.OpInvoke, wire.InvokeArgs{Path: path, Args: args}, nil, nil)
}

// MkContainer creates a container on a resource.
func (cl *Client) MkContainer(path, resource string) (types.DataObject, error) {
	var out types.DataObject
	_, err := cl.call(wire.OpMkContainer, wire.ContainerArgs{Path: path, Resource: resource}, nil, &out)
	return out, err
}

// SyncContainer refreshes dirty container replicas.
func (cl *Client) SyncContainer(path string) (int, error) {
	var out wire.CountReply
	_, err := cl.call(wire.OpSyncContainer, wire.PathArgs{Path: path}, nil, &out)
	return out.N, err
}

// Extract runs a metadata extraction method on the server.
func (cl *Client) Extract(path, method, from string) (int, error) {
	var out wire.CountReply
	_, err := cl.call(wire.OpExtract, wire.ExtractArgs{Path: path, Method: method, From: from}, nil, &out)
	return out.N, err
}

// IssueTicket mints a delegated-access ticket for path at the given
// level ("read", ...), valid for uses redemptions (negative =
// unlimited) and ttl. The caller must hold Own on the path.
func (cl *Client) IssueTicket(path, level string, uses int, ttl time.Duration) (string, error) {
	var out wire.TicketReply
	_, err := cl.call(wire.OpIssueTicket, wire.TicketArgs{
		Path: path, Level: level, Uses: uses, TTLSeconds: int64(ttl / time.Second),
	}, nil, &out)
	return out.ID, err
}

// GetWithTicket retrieves an object using a delegated-access ticket,
// independent of the caller's own grants.
func (cl *Client) GetWithTicket(path, ticket string) ([]byte, error) {
	return cl.callTicket(wire.OpGet, wire.PathArgs{Path: path}, nil, nil, ticket)
}

// ShadowList lists entries inside a registered (shadow) directory.
func (cl *Client) ShadowList(path, rel string) ([]storage.FileInfo, error) {
	var out []storage.FileInfo
	_, err := cl.call(wire.OpShadowList, wire.ShadowArgs{Path: path, Rel: rel}, nil, &out)
	return out, err
}

// ShadowOpen reads one file inside a shadow directory's cone.
func (cl *Client) ShadowOpen(path, rel string) ([]byte, error) {
	return cl.call(wire.OpShadowOpen, wire.ShadowArgs{Path: path, Rel: rel}, nil, nil)
}

// AddUser registers an account with its password (administrators only).
func (cl *Client) AddUser(name, domain, password string, admin bool) error {
	_, err := cl.call(wire.OpAddUser, wire.AddUserArgs{Name: name, Domain: domain, Password: password, Admin: admin}, nil, nil)
	return err
}

// Audit queries the audit trail (administrators only); limit bounds
// the tail returned (0 = everything).
func (cl *Client) Audit(user, op, target string, limit int) ([]types.AuditRecord, error) {
	var out []types.AuditRecord
	_, err := cl.call(wire.OpAudit, wire.AuditArgs{User: user, Op: op, Target: target, Limit: limit}, nil, &out)
	return out, err
}

// Resources lists the registered storage resources.
func (cl *Client) Resources() ([]types.Resource, error) {
	var out []types.Resource
	_, err := cl.call(wire.OpResources, struct{}{}, nil, &out)
	return out, err
}

// ServerStats fetches catalog size counters.
func (cl *Client) ServerStats() (wire.StatsReply, error) {
	var out wire.StatsReply
	_, err := cl.call(wire.OpServerStats, struct{}{}, nil, &out)
	return out, err
}

// OpStats fetches the connected server's telemetry snapshot: per-op
// counts and latency quantiles, per-driver byte totals, replica fan-out
// counters, audit drops and recent trace records.
func (cl *Client) OpStats() (wire.OpStatsReply, error) {
	var out wire.OpStatsReply
	_, err := cl.call(wire.OpOpStats, struct{}{}, nil, &out)
	return out, err
}

// LastTrace returns the trace ID of the most recent logical call, the
// handle to pass to Trace for its span tree.
func (cl *Client) LastTrace() string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.lastTrace
}

// Trace fetches every recorded span of a trace. The connected server
// answers from its own ring and fans the query out to its zone peers,
// so federated hops are included.
func (cl *Client) Trace(id string) (wire.TraceReply, error) {
	var out wire.TraceReply
	_, err := cl.call(wire.OpTrace, wire.TraceArgs{ID: id}, nil, &out)
	return out, err
}

// Usage fetches the connected server's per-user/collection usage
// accounting, optionally filtered by user and/or collection ("" = all).
func (cl *Client) Usage(user, collection string) (wire.UsageReply, error) {
	var out wire.UsageReply
	_, err := cl.call(wire.OpUsage, wire.UsageArgs{User: user, Collection: collection}, nil, &out)
	return out, err
}

// RepairStatus fetches the connected server's background repair engine
// snapshot: queue backlog, worker health and per-job run counts.
func (cl *Client) RepairStatus() (wire.RepairStatusReply, error) {
	var out wire.RepairStatusReply
	_, err := cl.call(wire.OpRepairStatus, wire.RepairStatusArgs{}, nil, &out)
	return out, err
}

// GridStat fetches windowed rates and quantiles over the trailing
// window. With grid set, the connected server fans out to its zone
// peers and merges the answers (dead peers come back flagged
// unreachable, not as an error); otherwise the reply covers the
// connected server only.
func (cl *Client) GridStat(window time.Duration, grid bool) (wire.GridStatReply, error) {
	var out wire.GridStatReply
	args := wire.GridStatArgs{WindowSeconds: int64(window / time.Second), LocalOnly: !grid}
	_, err := cl.call(wire.OpGridStat, args, nil, &out)
	return out, err
}

// Alerts fetches the connected server's SLO rule standings and its
// bounded log of fire/resolve alert transitions.
func (cl *Client) Alerts() (wire.AlertsReply, error) {
	var out wire.AlertsReply
	_, err := cl.call(wire.OpAlerts, wire.AlertsArgs{}, nil, &out)
	return out, err
}

// Incidents fetches the connected server's incident bundle index
// (flight recorder), newest first.
func (cl *Client) Incidents() (wire.IncidentsReply, error) {
	var out wire.IncidentsReply
	_, err := cl.call(wire.OpIncidents, wire.IncidentsArgs{}, nil, &out)
	return out, err
}

// IncidentGet fetches one full incident bundle by index ID: meta plus
// every captured file (profiles, span trees, state snapshots).
func (cl *Client) IncidentGet(id string) (wire.IncidentGetReply, error) {
	var out wire.IncidentGetReply
	_, err := cl.call(wire.OpIncidentGet, wire.IncidentGetArgs{ID: id}, nil, &out)
	return out, err
}

// IncidentCapture triggers an on-demand incident capture on the
// connected server. The call blocks for the CPU profile window (~2s).
func (cl *Client) IncidentCapture(reason string) (wire.IncidentCaptureReply, error) {
	var out wire.IncidentCaptureReply
	_, err := cl.call(wire.OpIncidentCapture, wire.IncidentCaptureArgs{Reason: reason}, nil, &out)
	return out, err
}

// Peers fetches the connected server's transfer observatory: per-peer
// and per-resource EWMA latency, bandwidth and success history.
func (cl *Client) Peers() (wire.PeersReply, error) {
	var out wire.PeersReply
	_, err := cl.call(wire.OpPeers, wire.PeersArgs{}, nil, &out)
	return out, err
}

// Heat fetches the connected server's heat observatory: hot-key and
// hot-object top-K tables, per-shard replication lag, and the latest
// rebalance advisor plan.
func (cl *Client) Heat() (wire.HeatReply, error) {
	var out wire.HeatReply
	_, err := cl.call(wire.OpHeat, wire.HeatArgs{}, nil, &out)
	return out, err
}

// Scrub runs the anti-entropy scrubber over one object (write
// permission) or a collection subtree (admin only) and returns what it
// found and fixed.
func (cl *Client) Scrub(path string) (wire.ScrubReply, error) {
	var out wire.ScrubReply
	_, err := cl.call(wire.OpScrub, wire.PathArgs{Path: path}, nil, &out)
	return out, err
}

// Checksum verifies every replica of one object against the catalog
// checksum, returning a per-resource verdict without repairing.
func (cl *Client) Checksum(path string) (wire.ChecksumReply, error) {
	var out wire.ChecksumReply
	_, err := cl.call(wire.OpChecksum, wire.PathArgs{Path: path}, nil, &out)
	return out, err
}
