// Batch operations and the client-side flush policy. One OpBulkPut /
// OpMultiGet / OpBulkStat round trip moves many small objects, which
// is what makes high-latency links survivable; the PutBatcher decides
// when a trickle of Adds becomes a flush using benthos-style triggers:
// item count, byte size, or elapsed period — whichever fires first.
package client

import (
	"fmt"
	"sync"
	"time"

	"gosrb/internal/obs"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

// BulkPut is one object of a client-side bulk ingest.
type BulkPut struct {
	Path string
	Data []byte
	Opts PutOpts
}

// BulkPut ingests many objects in one round trip. The returned slice
// reports per-item status in input order; items fail independently.
// The whole-batch error covers transport/protocol failures only.
func (cl *Client) BulkPut(items []BulkPut) ([]wire.BulkItemStatus, error) {
	if len(items) == 0 {
		return nil, nil
	}
	args := wire.BulkPutArgs{Items: make([]wire.BulkPutItem, len(items))}
	var payload []byte
	for i, it := range items {
		args.Items[i] = wire.BulkPutItem{
			Path: it.Path, Resource: it.Opts.Resource, Container: it.Opts.Container,
			DataType: it.Opts.DataType, Meta: it.Opts.Meta, Size: int64(len(it.Data)),
		}
		payload = append(payload, it.Data...)
	}
	if payload == nil {
		payload = []byte{}
	}
	var out wire.BulkPutReply
	if _, err := cl.call(wire.OpBulkPut, args, payload, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// MultiGetResult is one item of a MultiGet: the object's bytes or its
// per-item error, in request order.
type MultiGetResult struct {
	Path string
	Data []byte
	Err  error
}

// MultiGet fetches many objects in one round trip, preserving request
// order. Items fail independently; the whole-call error covers
// transport/protocol failures only.
func (cl *Client) MultiGet(paths []string) ([]MultiGetResult, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	var out wire.MultiGetReply
	data, err := cl.call(wire.OpMultiGet, wire.MultiGetArgs{Paths: paths}, nil, &out)
	if err != nil {
		return nil, err
	}
	if len(out.Items) != len(paths) {
		return nil, types.E("multiget", "", fmt.Errorf("server returned %d items for %d paths: %w", len(out.Items), len(paths), types.ErrInvalid))
	}
	results := make([]MultiGetResult, len(out.Items))
	off := int64(0)
	for i := range out.Items {
		it := &out.Items[i]
		results[i] = MultiGetResult{Path: it.Path, Err: it.Err()}
		if !it.OK {
			continue
		}
		if off+it.Size > int64(len(data)) {
			return nil, types.E("multiget", it.Path, fmt.Errorf("data stream short of manifest: %w", types.ErrInvalid))
		}
		results[i].Data = data[off : off+it.Size : off+it.Size]
		off += it.Size
	}
	return results, nil
}

// BulkStat stats many paths in one round trip, preserving request
// order.
func (cl *Client) BulkStat(paths []string) ([]wire.BulkStatItem, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	var out wire.BulkStatReply
	if _, err := cl.call(wire.OpBulkStat, wire.BulkStatArgs{Paths: paths}, nil, &out); err != nil {
		return nil, err
	}
	return out.Items, nil
}

// BatchPolicy decides when buffered items flush: at Count items, at
// Bytes buffered payload, or Period after the first buffered item —
// whichever triggers first. Zero fields disable that trigger; an
// all-zero policy flushes only on explicit Flush/Close.
type BatchPolicy struct {
	Count  int
	Bytes  int64
	Period time.Duration
}

// DefaultBatchPolicy flushes at 64 items, 4 MiB, or 500ms.
var DefaultBatchPolicy = BatchPolicy{Count: 64, Bytes: 4 << 20, Period: 500 * time.Millisecond}

// PutBatcher buffers BulkPut items and flushes per a BatchPolicy. Add
// and Flush are safe for concurrent use. Flush errors surface on the
// call that triggered the flush (period-triggered flush errors surface
// on the next Add/Flush/Close).
type PutBatcher struct {
	mu      sync.Mutex
	items   []BulkPut
	bytes   int64
	policy  BatchPolicy
	flushFn func([]BulkPut) ([]wire.BulkItemStatus, error)
	onFlush func([]wire.BulkItemStatus) // optional result sink (CLI reporting)
	timer   *time.Timer
	lastErr error
	flushes int
	closed  bool
	// firstAdd stamps when the oldest buffered item arrived; the gap to
	// flush start is the batch-hold latency phase.
	firstAdd time.Time
	// hold, when set, receives each flush's batch-hold duration.
	hold func(time.Duration)
}

// NewPutBatcher builds a batcher that flushes through cl.BulkPut.
func NewPutBatcher(cl *Client, policy BatchPolicy) *PutBatcher {
	b := newPutBatcher(cl.BulkPut, policy)
	b.hold = func(d time.Duration) {
		// LastTrace here is the flush's own bulkput call, so the hold
		// histogram's tail exemplars join to the flush that paid it.
		cl.phase("bulkput", obs.PhaseBatchHold, d, cl.LastTrace())
	}
	return b
}

// newPutBatcher is the injectable core (tests supply a fake flush).
func newPutBatcher(flush func([]BulkPut) ([]wire.BulkItemStatus, error), policy BatchPolicy) *PutBatcher {
	return &PutBatcher{policy: policy, flushFn: flush}
}

// OnFlush registers a sink receiving each flush's per-item statuses.
func (b *PutBatcher) OnFlush(fn func([]wire.BulkItemStatus)) {
	b.mu.Lock()
	b.onFlush = fn
	b.mu.Unlock()
}

// Flushes reports how many non-empty flushes have run.
func (b *PutBatcher) Flushes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushes
}

// Add buffers one item, flushing if the policy's count or bytes
// trigger fires. The returned error is the flush error when this Add
// triggered one (or a pending period-flush error).
func (b *PutBatcher) Add(item BulkPut) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return types.E("bulkput", item.Path, fmt.Errorf("batcher closed: %w", types.ErrInvalid))
	}
	if len(b.items) == 0 {
		b.firstAdd = time.Now()
		if b.policy.Period > 0 {
			b.timer = time.AfterFunc(b.policy.Period, b.periodFlush)
		}
	}
	b.items = append(b.items, item)
	b.bytes += int64(len(item.Data))
	due := (b.policy.Count > 0 && len(b.items) >= b.policy.Count) ||
		(b.policy.Bytes > 0 && b.bytes >= b.policy.Bytes)
	if !due {
		err := b.lastErr
		b.lastErr = nil
		b.mu.Unlock()
		return err
	}
	return b.flushLocked()
}

// Flush sends whatever is buffered now. A zero-item flush is a no-op
// (no empty round trips), but still surfaces a pending period-flush
// error.
func (b *PutBatcher) Flush() error {
	b.mu.Lock()
	if len(b.items) == 0 {
		err := b.lastErr
		b.lastErr = nil
		b.mu.Unlock()
		return err
	}
	return b.flushLocked()
}

// Close flushes the remainder and stops the period timer. The batcher
// rejects Adds afterwards.
func (b *PutBatcher) Close() error {
	b.mu.Lock()
	b.closed = true
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(b.items) == 0 {
		err := b.lastErr
		b.lastErr = nil
		b.mu.Unlock()
		return err
	}
	return b.flushLocked()
}

// periodFlush is the timer callback; its error parks in lastErr.
func (b *PutBatcher) periodFlush() {
	b.mu.Lock()
	if b.closed || len(b.items) == 0 {
		b.mu.Unlock()
		return
	}
	if err := b.flushLocked(); err != nil {
		b.mu.Lock()
		if b.lastErr == nil {
			b.lastErr = err
		}
		b.mu.Unlock()
	}
}

// flushLocked sends the buffer. Called with b.mu held; returns with it
// released (the network call runs outside the lock so Adds continue).
func (b *PutBatcher) flushLocked() error {
	items := b.items
	b.items = nil
	b.bytes = 0
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	var held time.Duration
	if len(items) > 0 && !b.firstAdd.IsZero() {
		held = time.Since(b.firstAdd)
		b.firstAdd = time.Time{}
	}
	pending := b.lastErr
	b.lastErr = nil
	flush, sink, hold := b.flushFn, b.onFlush, b.hold
	if len(items) > 0 {
		b.flushes++
	}
	b.mu.Unlock()
	if len(items) == 0 {
		return pending
	}
	results, err := flush(items)
	if hold != nil {
		hold(held)
	}
	if err == nil && sink != nil {
		sink(results)
	}
	if err == nil {
		err = pending
	}
	return err
}
