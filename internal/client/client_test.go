package client

import (
	"encoding/json"
	"errors"
	"net"
	"testing"

	"gosrb/internal/auth"
	"gosrb/internal/mcat"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

// fakeServer speaks just enough of the protocol to test client-side
// behaviour the real server never exhibits (redirect loops, protocol
// violations).
type fakeServer struct {
	ln     net.Listener
	handle func(c *wire.Conn, req *wire.Request) error
}

func startFake(t *testing.T, handle func(c *wire.Conn, req *wire.Request) error) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, handle: handle}
	go fs.serve()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func (fs *fakeServer) serve() {
	for {
		nc, err := fs.ln.Accept()
		if err != nil {
			return
		}
		go func() {
			defer nc.Close()
			c := wire.NewConn(nc)
			nonce, _ := auth.NewChallenge()
			c.WriteJSON(wire.MsgChallenge, wire.Challenge{Server: "fake", Nonce: nonce})
			var a wire.Auth
			if c.ReadJSON(wire.MsgAuth, &a) != nil {
				return
			}
			// Accept anyone.
			c.WriteJSON(wire.MsgAuthOK, struct{ Server string }{"fake"})
			for {
				var req wire.Request
				if c.ReadJSON(wire.MsgRequest, &req) != nil {
					return
				}
				if fs.handle(c, &req) != nil {
					return
				}
			}
		}()
	}
}

func TestRedirectLoopIsBounded(t *testing.T) {
	// A server that always redirects to itself must not loop forever.
	var addr string
	addr = startFake(t, func(c *wire.Conn, req *wire.Request) error {
		return c.WriteJSON(wire.MsgRedirect, wire.Redirect{Server: "fake", Addr: addr})
	})
	cl, err := Dial(addr, "u", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Get("/loop"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("redirect loop error = %v", err)
	}
}

func TestUnexpectedFrameIsAnError(t *testing.T) {
	addr := startFake(t, func(c *wire.Conn, req *wire.Request) error {
		// Answer a request with a bare data frame: a protocol violation.
		return c.WriteMsg(wire.MsgData, []byte("garbage"))
	})
	cl, err := Dial(addr, "u", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.List("/"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("protocol violation error = %v", err)
	}
}

func TestErrorBodiesDecode(t *testing.T) {
	addr := startFake(t, func(c *wire.Conn, req *wire.Request) error {
		return c.WriteJSON(wire.MsgResponse, wire.ErrResponse(types.E("op", "/x", types.ErrLocked)))
	})
	cl, err := Dial(addr, "u", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Mkdir("/x"); !errors.Is(err, types.ErrLocked) {
		t.Errorf("sentinel across fake wire = %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", "u", "pw"); err == nil {
		t.Error("dialing a dead port should fail")
	}
}

func TestRequestCarriesArgs(t *testing.T) {
	got := make(chan wire.Request, 1)
	addr := startFake(t, func(c *wire.Conn, req *wire.Request) error {
		got <- *req
		resp, _ := wire.OkResponse(struct{}{}, false)
		return c.WriteJSON(wire.MsgResponse, resp)
	})
	cl, err := Dial(addr, "u", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Mkdir("/made"); err != nil {
		t.Fatal(err)
	}
	req := <-got
	if req.Op != wire.OpMkdir {
		t.Errorf("op = %q", req.Op)
	}
	var a wire.PathArgs
	if err := json.Unmarshal(req.Args, &a); err != nil || a.Path != "/made" {
		t.Errorf("args = %s, %v", req.Args, err)
	}
}

// echoServer answers every op with a success response shaped for the
// method, exercising each client wrapper end to end.
func TestAllMethodsAgainstFake(t *testing.T) {
	addr := startFake(t, func(c *wire.Conn, req *wire.Request) error {
		switch req.Op {
		case wire.OpIngest, wire.OpReingest, wire.OpCheckin, wire.OpIngestReplica:
			// Ops with a data stream: drain it first.
			var sink discard
			if _, err := c.RecvData(&sink); err != nil {
				return err
			}
		}
		switch req.Op {
		case wire.OpGet, wire.OpReadRange, wire.OpExecSQL, wire.OpInvoke, wire.OpShadowOpen:
			resp, _ := wire.OkResponse(wire.SizeReply{Size: 4}, true)
			if err := c.WriteJSON(wire.MsgResponse, resp); err != nil {
				return err
			}
			if err := c.WriteMsg(wire.MsgData, []byte("data")); err != nil {
				return err
			}
			return c.WriteMsg(wire.MsgDataEnd, nil)
		case wire.OpList:
			resp, _ := wire.OkResponse([]types.Stat{{Path: "/x"}}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		case wire.OpStat:
			resp, _ := wire.OkResponse(types.Stat{Path: "/x", Size: 4}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		case wire.OpGetObject, wire.OpIngest, wire.OpRegisterURL, wire.OpRegisterSQL, wire.OpMkContainer:
			resp, _ := wire.OkResponse(types.DataObject{Name: "x", Collection: "/"}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		case wire.OpReplicate:
			resp, _ := wire.OkResponse(types.Replica{Number: 1, Resource: "r"}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		case wire.OpGetMeta:
			resp, _ := wire.OkResponse([]types.AVU{{Name: "a", Value: "v"}}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		case wire.OpAnnotations:
			resp, _ := wire.OkResponse([]types.Annotation{{Author: "u", Text: "t"}}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		case wire.OpQuery:
			resp, _ := wire.OkResponse(wire.QueryReply{Hits: []mcat.Hit{{Path: "/x"}}}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		case wire.OpQueryAttrs:
			resp, _ := wire.OkResponse([]string{"a"}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		case wire.OpSyncContainer, wire.OpExtract:
			resp, _ := wire.OkResponse(wire.CountReply{N: 2}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		case wire.OpIssueTicket:
			resp, _ := wire.OkResponse(wire.TicketReply{ID: "tk"}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		case wire.OpAudit:
			resp, _ := wire.OkResponse([]types.AuditRecord{{Op: "get"}}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		case wire.OpResources:
			resp, _ := wire.OkResponse([]types.Resource{{Name: "r"}}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		case wire.OpServerStats:
			resp, _ := wire.OkResponse(wire.StatsReply{Server: "fake"}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		case wire.OpShadowList:
			resp, _ := wire.OkResponse([]struct{ Path string }{{"/p"}}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		default:
			resp, _ := wire.OkResponse(struct{}{}, false)
			return c.WriteJSON(wire.MsgResponse, resp)
		}
	})
	cl, err := Dial(addr, "u", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	check := func(name string, err error) {
		t.Helper()
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	check("Mkdir", cl.Mkdir("/c"))
	check("RmColl", cl.RmColl("/c"))
	_, err = cl.List("/")
	check("List", err)
	st, err := cl.Stat("/x")
	check("Stat", err)
	if st.Size != 4 {
		t.Errorf("Stat size = %d", st.Size)
	}
	_, err = cl.GetObject("/x")
	check("GetObject", err)
	_, err = cl.Put("/x", []byte("d"), PutOpts{Resource: "r"})
	check("Put", err)
	check("Reput", cl.Reput("/x", []byte("d")))
	data, err := cl.Get("/x")
	check("Get", err)
	if string(data) != "data" {
		t.Errorf("Get = %q", data)
	}
	_, err = cl.GetRange("/x", 0, 4)
	check("GetRange", err)
	_, err = cl.Replicate("/x", "r")
	check("Replicate", err)
	check("Delete", cl.Delete("/x"))
	check("DeleteReplica", cl.DeleteReplica("/x", 0))
	check("Move", cl.Move("/a", "/b"))
	check("Copy", cl.Copy("/a", "/b", ""))
	check("Link", cl.Link("/a", "/b"))
	check("AddMeta", cl.AddMeta("/x", types.MetaUser, types.AVU{Name: "a"}))
	_, err = cl.GetMeta("/x", types.MetaUser)
	check("GetMeta", err)
	check("Annotate", cl.Annotate("/x", types.Annotation{Text: "t"}))
	_, err = cl.Annotations("/x")
	check("Annotations", err)
	_, err = cl.Query(mcat.Query{Scope: "/"})
	check("Query", err)
	_, err = cl.QueryAttrNames("/")
	check("QueryAttrNames", err)
	check("Chmod", cl.Chmod("/x", "u", "read"))
	check("Lock", cl.Lock("/x", "shared", 0))
	check("Unlock", cl.Unlock("/x"))
	check("Pin", cl.Pin("/x", "r", 0))
	check("Unpin", cl.Unpin("/x", "r"))
	check("Checkout", cl.Checkout("/x"))
	check("Checkin", cl.Checkin("/x", []byte("v2"), "c"))
	_, err = cl.RegisterURL("/u", "mem://x")
	check("RegisterURL", err)
	_, err = cl.RegisterSQL("/q", types.SQLSpec{Resource: "db", Query: "SELECT 1"})
	check("RegisterSQL", err)
	_, err = cl.ExecSQL("/q", "")
	check("ExecSQL", err)
	_, err = cl.Invoke("/m", []string{"-a"})
	check("Invoke", err)
	_, err = cl.MkContainer("/cc", "r")
	check("MkContainer", err)
	_, err = cl.SyncContainer("/cc")
	check("SyncContainer", err)
	_, err = cl.Extract("/x", "m", "")
	check("Extract", err)
	_, err = cl.IssueTicket("/x", "read", 1, 0)
	check("IssueTicket", err)
	_, err = cl.GetWithTicket("/x", "tk")
	check("GetWithTicket", err)
	_, err = cl.Audit("", "", "", 0)
	check("Audit", err)
	_, err = cl.Resources()
	check("Resources", err)
	_, err = cl.ServerStats()
	check("ServerStats", err)
	_, err = cl.ShadowList("/s", ".")
	check("ShadowList", err)
	_, err = cl.ShadowOpen("/s", "f")
	check("ShadowOpen", err)
}

// discard swallows a data stream.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
