// PutBatcher flush-policy semantics, against an injected flush function
// so no server is involved: count/bytes/period triggers, the zero-item
// flush no-op, parked period-flush errors, and Add-vs-flush concurrency.
package client

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gosrb/internal/wire"
)

// recordingFlush captures every batch handed to the flush function.
type recordingFlush struct {
	mu      sync.Mutex
	batches [][]BulkPut
	err     error
}

func (r *recordingFlush) flush(items []BulkPut) ([]wire.BulkItemStatus, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return nil, r.err
	}
	cp := make([]BulkPut, len(items))
	copy(cp, items)
	r.batches = append(r.batches, cp)
	out := make([]wire.BulkItemStatus, len(items))
	for i, it := range items {
		out[i] = wire.BulkItemStatus{Path: it.Path, OK: true}
	}
	return out, nil
}

func (r *recordingFlush) snapshot() [][]BulkPut {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]BulkPut(nil), r.batches...)
}

func item(path string, n int) BulkPut {
	return BulkPut{Path: path, Data: make([]byte, n)}
}

// TestBatcherCountTrigger: the count trigger fires exactly at the
// boundary — n-1 items sit buffered, the nth flushes all of them.
func TestBatcherCountTrigger(t *testing.T) {
	rec := &recordingFlush{}
	b := newPutBatcher(rec.flush, BatchPolicy{Count: 3})
	for i := 0; i < 2; i++ {
		if err := b.Add(item(fmt.Sprintf("/a/%d", i), 1)); err != nil {
			t.Fatal(err)
		}
		if got := len(rec.snapshot()); got != 0 {
			t.Fatalf("flushed %d batches below the count trigger", got)
		}
	}
	if err := b.Add(item("/a/2", 1)); err != nil {
		t.Fatal(err)
	}
	batches := rec.snapshot()
	if len(batches) != 1 || len(batches[0]) != 3 {
		t.Fatalf("count trigger produced batches %v", batches)
	}
	// The buffer reset: two more items stay below the trigger again.
	if err := b.Add(item("/a/3", 1)); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.snapshot()); got != 1 {
		t.Fatalf("buffer did not reset after a count flush (batches %d)", got)
	}
	// Explicit Flush drains the partial batch.
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	batches = rec.snapshot()
	if len(batches) != 2 || len(batches[1]) != 1 {
		t.Fatalf("explicit flush produced batches %v", batches)
	}
}

// TestBatcherBytesTrigger: the byte trigger counts payload bytes, not
// items, and fires when the buffered total crosses the threshold.
func TestBatcherBytesTrigger(t *testing.T) {
	rec := &recordingFlush{}
	b := newPutBatcher(rec.flush, BatchPolicy{Bytes: 10})
	if err := b.Add(item("/b/0", 6)); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.snapshot()); got != 0 {
		t.Fatal("flushed below the byte trigger")
	}
	if err := b.Add(item("/b/1", 6)); err != nil {
		t.Fatal(err)
	}
	batches := rec.snapshot()
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("byte trigger produced batches %v", batches)
	}
}

// TestBatcherPeriodTrigger: with only the period armed, a lone item
// flushes on the timer without any further Adds.
func TestBatcherPeriodTrigger(t *testing.T) {
	rec := &recordingFlush{}
	b := newPutBatcher(rec.flush, BatchPolicy{Period: 20 * time.Millisecond})
	if err := b.Add(item("/p/0", 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(rec.snapshot()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("period trigger never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	batches := rec.snapshot()
	if len(batches[0]) != 1 || batches[0][0].Path != "/p/0" {
		t.Fatalf("period flush carried %v", batches[0])
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.snapshot()); got != 1 {
		t.Fatalf("close after period flush re-sent the batch (batches %d)", got)
	}
}

// TestBatcherZeroItemFlush: Flush and Close with nothing buffered make
// no round trips.
func TestBatcherZeroItemFlush(t *testing.T) {
	rec := &recordingFlush{}
	b := newPutBatcher(rec.flush, BatchPolicy{Count: 4})
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.snapshot()); got != 0 {
		t.Fatalf("empty batcher made %d round trips", got)
	}
	if b.Flushes() != 0 {
		t.Fatalf("Flushes() = %d for an empty batcher", b.Flushes())
	}
}

// TestBatcherPeriodErrorParks: a period-triggered flush has no caller
// to return to, so its error must surface on the next call instead of
// vanishing.
func TestBatcherPeriodErrorParks(t *testing.T) {
	boom := errors.New("uplink down")
	rec := &recordingFlush{err: boom}
	b := newPutBatcher(rec.flush, BatchPolicy{Period: 20 * time.Millisecond})
	if err := b.Add(item("/e/0", 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("parked period-flush error never surfaced")
		}
		err := b.Add(item("/e/again", 1))
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("surfaced error = %v, want %v", err, boom)
			}
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
}

// TestBatcherClosedRejectsAdd: Close flushes the remainder and turns
// away later Adds.
func TestBatcherClosedRejectsAdd(t *testing.T) {
	rec := &recordingFlush{}
	b := newPutBatcher(rec.flush, BatchPolicy{Count: 10})
	if err := b.Add(item("/c/0", 1)); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	batches := rec.snapshot()
	if len(batches) != 1 || len(batches[0]) != 1 {
		t.Fatalf("close flushed %v", batches)
	}
	if err := b.Add(item("/c/late", 1)); err == nil {
		t.Fatal("closed batcher accepted an Add")
	}
}

// TestBatcherConcurrentAdds: many goroutines Add through the count
// trigger; every item must reach the flush function exactly once.
func TestBatcherConcurrentAdds(t *testing.T) {
	rec := &recordingFlush{}
	b := newPutBatcher(rec.flush, BatchPolicy{Count: 7})
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := b.Add(item(fmt.Sprintf("/w%d/%d", w, i), 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, batch := range rec.snapshot() {
		for _, it := range batch {
			seen[it.Path]++
		}
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("flushed %d distinct items, want %d", len(seen), workers*perWorker)
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("item %s flushed %d times", p, n)
		}
	}
}
