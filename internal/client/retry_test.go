package client

import (
	"errors"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"gosrb/internal/resilience"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

func fastPolicy() resilience.Policy {
	return resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
}

// TestClientRetriesIdempotentOnOffline: a read hitting a transiently
// offline resource is retried and succeeds once the resource is back.
func TestClientRetriesIdempotentOnOffline(t *testing.T) {
	var calls atomic.Int64
	addr := startFake(t, func(c *wire.Conn, req *wire.Request) error {
		if calls.Add(1) <= 2 {
			return c.WriteJSON(wire.MsgResponse, wire.ErrResponse(types.E(req.Op, "/x", types.ErrOffline)))
		}
		resp, _ := wire.OkResponse(wire.SizeReply{Size: 2}, true)
		if err := c.WriteJSON(wire.MsgResponse, resp); err != nil {
			return err
		}
		c.WriteMsg(wire.MsgData, []byte("ok"))
		return c.WriteMsg(wire.MsgDataEnd, nil)
	})
	cl, err := Dial(addr, "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetryPolicy(fastPolicy())
	cl.sleep = func(time.Duration) {}

	data, err := cl.Get("/x")
	if err != nil || string(data) != "ok" {
		t.Fatalf("Get = %q, %v", data, err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3", got)
	}
	if got := cl.Retries(); got != 2 {
		t.Errorf("Retries() = %d, want 2", got)
	}
}

// TestClientNeverRetriesMutating: a failing ingest reaches the server
// exactly once, whatever the retry policy says.
func TestClientNeverRetriesMutating(t *testing.T) {
	var calls atomic.Int64
	addr := startFake(t, func(c *wire.Conn, req *wire.Request) error {
		calls.Add(1)
		// Drain the ingest data stream to keep the protocol healthy.
		if _, err := c.RecvData(discard{}); err != nil {
			return err
		}
		return c.WriteJSON(wire.MsgResponse, wire.ErrResponse(types.E(req.Op, "/x", types.ErrOffline)))
	})
	cl, err := Dial(addr, "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetryPolicy(fastPolicy())
	cl.sleep = func(time.Duration) {}

	if _, err := cl.Put("/x", []byte("data"), PutOpts{}); !errors.Is(err, types.ErrOffline) {
		t.Fatalf("Put = %v, want offline", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d ingest attempts, want exactly 1", got)
	}
	if got := cl.Retries(); got != 0 {
		t.Errorf("Retries() = %d, want 0", got)
	}
}

// TestClientReconnectsAfterTransportError: the server drops the conn
// mid-exchange; the client re-dials, re-authenticates and retries.
func TestClientReconnectsAfterTransportError(t *testing.T) {
	var calls atomic.Int64
	addr := startFake(t, func(c *wire.Conn, req *wire.Request) error {
		if calls.Add(1) == 1 {
			return errors.New("drop the connection mid-request")
		}
		resp, _ := wire.OkResponse(wire.SizeReply{Size: 2}, true)
		if err := c.WriteJSON(wire.MsgResponse, resp); err != nil {
			return err
		}
		c.WriteMsg(wire.MsgData, []byte("ok"))
		return c.WriteMsg(wire.MsgDataEnd, nil)
	})
	cl, err := Dial(addr, "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetryPolicy(fastPolicy())
	cl.sleep = func(time.Duration) {}

	data, err := cl.Get("/x")
	if err != nil || string(data) != "ok" {
		t.Fatalf("Get after conn drop = %q, %v", data, err)
	}
	if got := cl.Retries(); got != 1 {
		t.Errorf("Retries() = %d, want 1", got)
	}
}

// TestClientTimeoutOnWire: a configured call timeout rides in
// TimeoutMillis so the whole federation chain inherits the budget.
func TestClientTimeoutOnWire(t *testing.T) {
	var sawBudget atomic.Int64
	addr := startFake(t, func(c *wire.Conn, req *wire.Request) error {
		sawBudget.Store(req.TimeoutMillis)
		return c.WriteJSON(wire.MsgResponse, wire.Response{OK: true})
	})
	cl, err := Dial(addr, "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTimeout(5 * time.Second)
	if _, err := cl.List("/"); err != nil {
		t.Fatal(err)
	}
	if got := sawBudget.Load(); got <= 0 || got > 5000 {
		t.Errorf("TimeoutMillis on wire = %d, want (0, 5000]", got)
	}
}

// TestClientTimeoutExpires: a stalled server cannot hang the client
// past its deadline — the conn deadline fires and the call fails fast.
func TestClientTimeoutExpires(t *testing.T) {
	addr := startFake(t, func(c *wire.Conn, req *wire.Request) error {
		time.Sleep(2 * time.Second) // stall well past the client budget
		return c.WriteJSON(wire.MsgResponse, wire.Response{OK: true})
	})
	cl, err := Dial(addr, "alice", "pw")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTimeout(80 * time.Millisecond)
	cl.sleep = func(time.Duration) {}

	start := time.Now()
	_, err = cl.List("/")
	if err == nil {
		t.Fatal("call must fail once the budget is spent")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("call took %v, deadline did not bound it", elapsed)
	}
}
