// Request multiplexing: many in-flight requests sharing one
// authenticated connection. The serial protocol pays a full round trip
// per operation — fatal for the paper's headline workload of millions
// of small files over high-latency links. A Mux assigns each request a
// correlation ID, serializes frame writes under a mutex, and runs one
// demux goroutine that matches responses (possibly out of order) back
// to their callers, so concurrent operations overlap their round trips
// instead of queueing behind each other.
//
// Servers advertise ID support in the AuthOK handshake frame (Mux
// field). Against an older server the Mux falls back to serial
// matching: responses carry no ID and are delivered to the oldest
// pending call, which is correct because a serial server answers in
// request order.
package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gosrb/internal/types"
)

// CallResult is one matched answer: the response, any bulk data that
// followed it, or a federation redirect.
type CallResult struct {
	Resp     Response
	Data     []byte
	Redirect *Redirect
}

type muxOutcome struct {
	res *CallResult
	err error
}

type muxPending struct {
	ch chan muxOutcome
}

// Mux multiplexes requests over one authenticated connection. Safe for
// concurrent use; create with NewMux after the handshake.
type Mux struct {
	nc     net.Conn
	c      *Conn
	server string
	strict bool // server echoes correlation IDs

	wmu sync.Mutex // serializes frame writes (request + its data stream)

	mu      sync.Mutex
	pending map[uint64]*muxPending
	order   []uint64 // registration order, for serial (ID-less) servers
	err     error    // first fatal error, set once

	nextID   atomic.Uint64
	inflight atomic.Int64
	dead     atomic.Bool
	lastUsed atomic.Int64 // unix nanos of last call completion

	done chan struct{}
}

// NewMux wraps an authenticated connection and starts the demux
// goroutine. server is the peer's announced name; strict says the
// server echoes correlation IDs (AuthOK.Mux) — when false the Mux uses
// serial in-order matching and kills the connection on call timeout,
// because an abandoned ID-less response could otherwise be matched to
// the wrong caller.
func NewMux(nc net.Conn, c *Conn, server string, strict bool) *Mux {
	m := &Mux{
		nc:      nc,
		c:       c,
		server:  server,
		strict:  strict,
		pending: make(map[uint64]*muxPending),
		done:    make(chan struct{}),
	}
	m.lastUsed.Store(time.Now().UnixNano())
	go m.readLoop()
	return m
}

// Server returns the name announced by the remote end's handshake.
func (m *Mux) Server() string { return m.server }

// Dead reports whether the connection has failed; a dead Mux fails
// every call instantly and must be evicted from its pool.
func (m *Mux) Dead() bool { return m.dead.Load() }

// InFlight returns the number of calls currently awaiting responses.
func (m *Mux) InFlight() int64 { return m.inflight.Load() }

// LastUsed returns when a call last completed (idle-reap input).
func (m *Mux) LastUsed() time.Time { return time.Unix(0, m.lastUsed.Load()) }

// Close tears the connection down, failing all pending calls.
func (m *Mux) Close() error {
	m.fatal(net.ErrClosed)
	return nil
}

// fatal marks the mux dead, fails every pending call with err and
// closes the transport (unblocking the demux goroutine).
func (m *Mux) fatal(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	waiters := m.pending
	m.pending = make(map[uint64]*muxPending)
	m.order = nil
	first := m.err
	m.mu.Unlock()
	if m.dead.CompareAndSwap(false, true) {
		close(m.done)
		m.nc.Close()
	}
	for _, p := range waiters {
		p.ch <- muxOutcome{err: first}
	}
}

// register allocates an ID and parks a waiter for it.
func (m *Mux) register() (uint64, *muxPending, error) {
	id := m.nextID.Add(1)
	p := &muxPending{ch: make(chan muxOutcome, 1)}
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return 0, nil, err
	}
	m.pending[id] = p
	m.order = append(m.order, id)
	m.mu.Unlock()
	return id, p, nil
}

// unregister abandons a waiter (strict-mode timeout); a late response
// with its ID is discarded by deliver.
func (m *Mux) unregister(id uint64) {
	m.mu.Lock()
	delete(m.pending, id)
	m.dropOrder(id)
	m.mu.Unlock()
}

func (m *Mux) dropOrder(id uint64) {
	for i, v := range m.order {
		if v == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			return
		}
	}
}

// deliver hands a matched outcome to its waiter. id 0 means the server
// spoke the serial protocol; the oldest pending call is the owner.
func (m *Mux) deliver(id uint64, out muxOutcome) {
	m.mu.Lock()
	if id == 0 {
		if len(m.order) == 0 {
			m.mu.Unlock()
			return // response with no caller: abandoned serial call
		}
		id = m.order[0]
	}
	p, ok := m.pending[id]
	if ok {
		delete(m.pending, id)
		m.dropOrder(id)
	}
	m.mu.Unlock()
	if ok {
		p.ch <- out
	}
}

// readLoop is the demux goroutine: the sole reader of the connection.
// Responses announcing DataFollows have their data stream drained here
// so the next frame is again a response header.
func (m *Mux) readLoop() {
	for {
		t, payload, err := m.c.ReadMsg()
		if err != nil {
			m.fatal(err)
			return
		}
		switch t {
		case MsgResponse:
			var resp Response
			if err := json.Unmarshal(payload, &resp); err != nil {
				m.fatal(fmt.Errorf("wire: bad response frame: %w", types.ErrInvalid))
				return
			}
			res := &CallResult{Resp: resp}
			if resp.OK && resp.DataFollows {
				var buf bytes.Buffer
				if _, err := m.c.RecvData(&buf); err != nil {
					m.fatal(err)
					return
				}
				res.Data = buf.Bytes()
			}
			m.deliver(resp.ID, muxOutcome{res: res})
		case MsgRedirect:
			var rd Redirect
			if err := json.Unmarshal(payload, &rd); err != nil {
				m.fatal(fmt.Errorf("wire: bad redirect frame: %w", types.ErrInvalid))
				return
			}
			m.deliver(rd.ID, muxOutcome{res: &CallResult{Redirect: &rd}})
		default:
			m.fatal(fmt.Errorf("wire: unexpected frame %d awaiting response: %w", t, types.ErrInvalid))
			return
		}
	}
}

// Call sends req (stamping its correlation ID) plus an optional data
// stream, and waits for the matched answer. A zero deadline waits
// until the connection fails. On timeout the error wraps both
// types.ErrTimeout and os.ErrDeadlineExceeded so existing
// classification (resilience.Transport, errors.Is) keeps working.
func (m *Mux) Call(req *Request, data io.Reader, deadline time.Time) (*CallResult, error) {
	m.inflight.Add(1)
	defer func() {
		m.inflight.Add(-1)
		m.lastUsed.Store(time.Now().UnixNano())
	}()

	// Register under the write lock so the pending FIFO order matches
	// the order requests hit the wire — serial servers answer in wire
	// order, and the ID-less fallback match depends on it.
	m.wmu.Lock()
	id, p, err := m.register()
	if err != nil {
		m.wmu.Unlock()
		return nil, err
	}
	req.ID = id
	err = m.c.WriteJSON(MsgRequest, req)
	if err == nil && data != nil {
		err = m.c.SendData(data)
	}
	m.wmu.Unlock()
	if err != nil {
		m.fatal(err)
		m.unregister(id)
		return nil, err
	}

	var timeout <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeout = t.C
	}
	select {
	case out := <-p.ch:
		return out.res, out.err
	case <-timeout:
		if m.strict {
			// Abandon the call; the late response is discarded by ID.
			m.unregister(id)
		} else {
			// A serial server's late response carries no ID and would be
			// matched to the next caller — the conn is poisoned, kill it.
			m.fatal(timeoutError(id))
		}
		return nil, timeoutError(id)
	}
}

// timeoutError builds a call-timeout error that satisfies both
// errors.Is(err, types.ErrTimeout) and errors.Is(err,
// os.ErrDeadlineExceeded).
func timeoutError(id uint64) error {
	return fmt.Errorf("wire: request %d: %w", id, &muxTimeout{})
}

type muxTimeout struct{}

func (*muxTimeout) Error() string { return "deadline exceeded awaiting response" }
func (*muxTimeout) Is(target error) bool {
	return errors.Is(os.ErrDeadlineExceeded, target) || errors.Is(types.ErrTimeout, target)
}
