package wire

import (
	"errors"
	"testing"

	"gosrb/internal/obs"
	"gosrb/internal/types"
)

type staticGate bool

func (g staticGate) Allow() bool { return bool(g) }

// TestPoolCheckoutWaitRecordsFastFail pins the satellite guarantee: a
// checkout an open breaker rejects immediately still lands in
// <prefix>.checkout_wait_us (as an error observation), so breaker
// rejection and pool starvation are distinguishable inside the same
// histogram rather than the former being invisible.
func TestPoolCheckoutWaitRecordsFastFail(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetExemplarThreshold(0)
	dial, _ := pipeDialer(nil)
	open := staticGate(false)
	allow := &open
	p := NewPool(PoolConfig{
		Dial:    dial,
		Metrics: reg,
		Prefix:  "wire.pool",
		Gate:    func(addr string) Gate { return *allow },
	})
	defer p.Close()

	if _, err := p.Get("addr"); !errors.Is(err, types.ErrOffline) {
		t.Fatalf("gated checkout err = %v, want ErrOffline", err)
	}
	co := reg.Op("wire.pool.checkout_wait_us").Snapshot()
	if co.Count != 1 || co.Errors != 1 {
		t.Fatalf("fast-fail checkout not recorded: count=%d errors=%d, want 1/1", co.Count, co.Errors)
	}

	*allow = staticGate(true)
	m, err := p.Get("addr")
	if err != nil {
		t.Fatal(err)
	}
	p.Put(m)
	co = reg.Op("wire.pool.checkout_wait_us").Snapshot()
	if co.Count != 2 || co.Errors != 1 {
		t.Fatalf("successful checkout not recorded: count=%d errors=%d, want 2/1", co.Count, co.Errors)
	}
	if w := reg.Gauge("wire.pool.waiting").Value(); w != 0 {
		t.Fatalf("waiting gauge %d after checkouts drained, want 0", w)
	}
}

// TestPoolSetMetrics attaches a registry after construction (the client
// library's order of operations) and checks lifetime counters carry
// over and new checkouts record into the attached registry.
func TestPoolSetMetrics(t *testing.T) {
	dial, dials := pipeDialer(nil)
	p := NewPool(PoolConfig{Dial: dial, Prefix: "wire.pool"})
	defer p.Close()

	m, err := p.Get("addr")
	if err != nil {
		t.Fatal(err)
	}
	p.Fail(m) // evict so the pre-attach eviction count carries too
	if dials.Load() != 1 {
		t.Fatalf("dials = %d, want 1", dials.Load())
	}

	reg := obs.NewRegistry()
	p.SetMetrics(reg)
	snap := reg.Snapshot()
	if got := snap.Counters["wire.pool.dialed"]; got != 1 {
		t.Fatalf("carried dialed = %d, want 1", got)
	}
	if got := snap.Counters["wire.pool.evicted"]; got != 1 {
		t.Fatalf("carried evicted = %d, want 1", got)
	}

	m, err = p.Get("addr")
	if err != nil {
		t.Fatal(err)
	}
	p.Put(m)
	if co := reg.Op("wire.pool.checkout_wait_us").Snapshot(); co.Count != 1 {
		t.Fatalf("post-attach checkout count = %d, want 1", co.Count)
	}
	if got := reg.Gauge("wire.pool.conns").Value(); got != 1 {
		t.Fatalf("conns gauge = %d, want 1", got)
	}
}
