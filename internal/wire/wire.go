// Package wire implements the SRB client/server protocol: a framed
// message layer over TCP with a challenge–response authentication
// handshake, JSON-encoded requests and responses, raw frames for bulk
// data, and a redirect message for the federation ("users can connect
// to any SRB server to access data from any other SRB server").
//
// Frame layout: 1-byte type, 4-byte big-endian payload length, payload.
// Bulk data flows as a sequence of Data frames ended by a DataEnd frame
// so transfers stream without knowing the total size up front.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"gosrb/internal/types"
)

// MsgType tags each frame.
type MsgType byte

const (
	// MsgChallenge carries the server's authentication nonce.
	MsgChallenge MsgType = iota + 1
	// MsgAuth carries the client's identity and challenge response.
	MsgAuth
	// MsgAuthOK confirms authentication.
	MsgAuthOK
	// MsgRequest carries one Request.
	MsgRequest
	// MsgResponse carries one Response.
	MsgResponse
	// MsgData carries a raw chunk of bulk data.
	MsgData
	// MsgDataEnd terminates a bulk data stream.
	MsgDataEnd
	// MsgRedirect tells the client to retry against another server.
	MsgRedirect
)

// MaxFrame bounds a single frame payload (16 MiB) so a corrupt length
// cannot exhaust memory; bulk data is chunked beneath it.
const MaxFrame = 16 << 20

// DataChunk is the bulk transfer chunk size.
const DataChunk = 256 * 1024

// Challenge is the server's opening message.
type Challenge struct {
	Server string
	Nonce  string
}

// Auth answers a challenge. Exactly one of User or Peer is set.
type Auth struct {
	User     string
	Peer     string // federated server name for server-to-server auth
	Response string // HMAC of the nonce under the derived key
}

// Request is one operation. Args is op-specific JSON. OnBehalf names
// the effective user and is honoured only on peer-authenticated
// connections — the federation's single sign-on: the owning server
// trusts a zone peer's assertion of who the end user is.
type Request struct {
	// ID correlates this request with its response when requests are
	// pipelined over a shared connection. Zero means the legacy serial
	// protocol: one request, one response, in order. Non-zero IDs are
	// assigned by the client-side Mux and echoed back by the server so
	// a demultiplexer can match out-of-order responses to callers.
	ID       uint64 `json:",omitempty"`
	Op       string
	OnBehalf string
	// Ticket optionally presents a delegated-access ticket; read
	// operations honour it when the caller's own ACLs do not suffice.
	Ticket string
	// Trace carries the request-scoped trace ID. The client mints one
	// per logical call (kept across redirects); the server mints one when
	// absent and copies it onto every proxied request, so one user action
	// carries the same ID on every federation hop it touches.
	Trace string `json:",omitempty"`
	// Span is the caller's span ID. The span the receiving server opens
	// for this request becomes its child, so the per-hop records
	// reassemble into one tree instead of a flat list. Empty on
	// client-originated requests (the server opens a root span).
	Span string `json:",omitempty"`
	// Attempt is the caller's 0-based retry attempt for this logical
	// call. When positive, the receiving server annotates its span with
	// a retry event, making client-side retries visible in the trace.
	Attempt int `json:",omitempty"`
	// TimeoutMillis is the request's remaining time budget. Zero means
	// unbounded. The receiving server starts the clock at dispatch; a
	// federation hop forwards only what is left, so the budget shrinks
	// across the grid and a slow peer cannot stall the whole chain.
	TimeoutMillis int64 `json:",omitempty"`
	Args          json.RawMessage
}

// Response answers a Request. Body is op-specific JSON. ErrKind names a
// types sentinel so clients can reconstruct errors.Is-compatible errors.
type Response struct {
	// ID echoes the request's correlation ID (zero on the serial path).
	ID      uint64 `json:",omitempty"`
	OK      bool
	ErrKind string
	ErrMsg  string
	Body    json.RawMessage
	// DataFollows indicates that Data frames follow this response.
	DataFollows bool
}

// Redirect tells the client which server holds the data.
type Redirect struct {
	// ID echoes the request's correlation ID (zero on the serial path).
	ID     uint64 `json:",omitempty"`
	Server string
	Addr   string
}

// AuthOK is the body of the MsgAuthOK frame. Mux advertises that the
// server echoes correlation IDs, letting the client pipeline requests;
// servers predating the field leave it false and get the serial
// protocol.
type AuthOK struct {
	Server string
	Mux    bool `json:",omitempty"`
}

// errKinds maps sentinel errors to wire names and back.
var errKinds = []struct {
	name string
	err  error
}{
	{"notfound", types.ErrNotFound},
	{"exists", types.ErrExists},
	{"permission", types.ErrPermission},
	{"locked", types.ErrLocked},
	{"offline", types.ErrOffline},
	{"invalid", types.ErrInvalid},
	{"notempty", types.ErrNotEmpty},
	{"unsupported", types.ErrUnsupported},
	{"auth", types.ErrAuth},
	{"mandatorymeta", types.ErrMandatoryMeta},
	{"timeout", types.ErrTimeout},
	{"readonly", types.ErrReadOnly},
}

// Idempotent reports whether op is safe to retry: read-only operations
// whose re-execution cannot change grid state. Mutating ops (ingest,
// write, delete, move, locks, tickets, ...) must never be retried
// blindly — a lost response does not prove the mutation was lost.
// OpGet is listed even though ticket redemption decrements a use count;
// a retry after a transport failure may burn an extra use, which is the
// accepted cost of delegated reads staying available.
func Idempotent(op string) bool {
	switch op {
	case OpList, OpStat, OpGet, OpGetObject, OpReadRange, OpGetMeta,
		OpAnnotations, OpQuery, OpQueryAttrs, OpResources, OpServerStats,
		OpOpStats, OpShadowList, OpShadowOpen, OpExecSQL, OpAudit,
		OpTrace, OpUsage, OpRepairStatus, OpChecksum, OpScrub,
		OpGridStat, OpAlerts, OpIncidents, OpIncidentGet, OpPeers,
		OpMultiGet, OpBulkStat, OpHeat:
		// OpScrub mutates replicas, but only toward the catalog
		// checksum — re-running a scrub is always safe.
		return true
	}
	return false
}

// KindOf names err's sentinel for the wire; "" if unclassified.
func KindOf(err error) string {
	for _, k := range errKinds {
		if errors.Is(err, k.err) {
			return k.name
		}
	}
	return ""
}

// ErrFromKind reconstructs a client-side error wrapping the right
// sentinel.
func ErrFromKind(kind, msg string) error {
	for _, k := range errKinds {
		if k.name == kind {
			return fmt.Errorf("%s: %w", msg, k.err)
		}
	}
	return errors.New(msg)
}

// Conn frames messages over an io.ReadWriter.
type Conn struct {
	rw io.ReadWriter
}

// NewConn wraps a transport.
func NewConn(rw io.ReadWriter) *Conn { return &Conn{rw: rw} }

// WriteMsg sends one frame.
func (c *Conn) WriteMsg(t MsgType, payload []byte) error {
	if len(payload) > MaxFrame {
		return types.E("write", "", fmt.Errorf("frame of %d bytes exceeds limit: %w", len(payload), types.ErrInvalid))
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := c.rw.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadMsg receives one frame.
func (c *Conn) ReadMsg() (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.rw, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, types.E("read", "", fmt.Errorf("frame of %d bytes exceeds limit: %w", n, types.ErrInvalid))
	}
	payload, err := readPayload(c.rw, int(n))
	if err != nil {
		return 0, nil, err
	}
	return MsgType(hdr[0]), payload, nil
}

// readAllocStep caps how much ReadMsg allocates ahead of bytes actually
// received. A forged header can declare any length up to MaxFrame; if
// we allocated the declared size up front, 5 attacker bytes would pin
// 16 MiB per connection. Instead the buffer grows stepwise as payload
// bytes arrive, so memory tracks what the peer really sent.
const readAllocStep = 64 * 1024

// readPayload reads exactly n payload bytes, growing the buffer in
// readAllocStep increments so a truncated or malicious frame never
// costs more than one step beyond the bytes received.
func readPayload(r io.Reader, n int) ([]byte, error) {
	if n <= readAllocStep {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, err
		}
		return payload, nil
	}
	buf := make([]byte, readAllocStep)
	got := 0
	for got < n {
		if got == len(buf) {
			grow := 2 * len(buf)
			if grow > n {
				grow = n
			}
			next := make([]byte, grow)
			copy(next, buf)
			buf = next
		}
		if _, err := io.ReadFull(r, buf[got:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		got = len(buf)
	}
	return buf[:n], nil
}

// WriteJSON sends a JSON-encoded frame.
func (c *Conn) WriteJSON(t MsgType, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return c.WriteMsg(t, b)
}

// ReadJSON receives a frame, requiring the given type, and decodes it.
func (c *Conn) ReadJSON(want MsgType, v any) error {
	t, payload, err := c.ReadMsg()
	if err != nil {
		return err
	}
	if t != want {
		return fmt.Errorf("wire: expected message type %d, got %d: %w", want, t, types.ErrInvalid)
	}
	return json.Unmarshal(payload, v)
}

// SendData streams r as Data frames followed by DataEnd.
func (c *Conn) SendData(r io.Reader) error {
	buf := make([]byte, DataChunk)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if werr := c.WriteMsg(MsgData, buf[:n]); werr != nil {
				return werr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	return c.WriteMsg(MsgDataEnd, nil)
}

// RecvData collects a Data stream into w and returns the byte count.
func (c *Conn) RecvData(w io.Writer) (int64, error) {
	var total int64
	for {
		t, payload, err := c.ReadMsg()
		if err != nil {
			return total, err
		}
		switch t {
		case MsgData:
			n, err := w.Write(payload)
			total += int64(n)
			if err != nil {
				return total, err
			}
		case MsgDataEnd:
			return total, nil
		default:
			return total, fmt.Errorf("wire: unexpected frame %d in data stream: %w", t, types.ErrInvalid)
		}
	}
}

// OkResponse marshals a success response with the given body.
func OkResponse(body any, dataFollows bool) (Response, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return Response{}, err
	}
	return Response{OK: true, Body: raw, DataFollows: dataFollows}, nil
}

// ErrResponse marshals a failure response carrying err.
func ErrResponse(err error) Response {
	return Response{OK: false, ErrKind: KindOf(err), ErrMsg: err.Error()}
}

// Err reconstructs the error carried by a failure response.
func (r *Response) Err() error {
	if r.OK {
		return nil
	}
	return ErrFromKind(r.ErrKind, r.ErrMsg)
}
