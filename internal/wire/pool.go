// Connection pooling: bounded, breaker-aware reuse of authenticated
// connections. The client library and the federation's peerDo both
// used to pay a dial + handshake per connection (or per call); a Pool
// amortizes that across requests and, because each pooled connection
// is a Mux, concurrent checkouts of the same address share connections
// up to a per-conn in-flight preference before opening new ones.
//
// Lifecycle: Get checks out (dialing if needed), Put checks in, Fail
// checks in reporting a transport error (the conn is evicted). Dead
// connections are dropped on sight; idle ones are reaped once they
// have sat unused past IdleAfter.
package wire

import (
	"fmt"
	"sync"
	"time"

	"gosrb/internal/obs"
	"gosrb/internal/types"
)

// Gate lets a checkout consult a circuit breaker (or any admission
// rule) before dialing or reusing a connection to an address.
// resilience.Breaker satisfies the Allow contract via a thin adapter
// at the call site; Allow must not consume probe tokens.
type Gate interface {
	Allow() bool
}

// PoolConfig tunes a Pool. Zero values get defaults.
type PoolConfig struct {
	// Dial establishes and authenticates one connection; required.
	Dial func(addr string) (*Mux, error)
	// MaxConns bounds connections per address (default 4). The bound
	// applies to dialing: once reached, checkouts share the
	// least-loaded existing connection instead of blocking.
	MaxConns int
	// MaxInflight is the per-connection in-flight preference (default
	// 32): a checkout opens a new connection (capacity permitting)
	// rather than share one already carrying this many calls.
	MaxInflight int
	// IdleAfter reaps connections unused this long (default 60s).
	IdleAfter time.Duration
	// Gate, when set, is consulted per checkout; a closed gate fails
	// the checkout with types.ErrOffline (breaker-aware checkout).
	Gate func(addr string) Gate
	// Metrics, when set, exports pool.conns / pool.dialed /
	// pool.evicted / pool.reaped under Prefix.
	Metrics *obs.Registry
	// Prefix namespaces the metrics (default "pool").
	Prefix string
	// Now overrides the clock (tests drive idle reaping).
	Now func() time.Time
}

type poolEntry struct {
	m      *Mux
	leases int
	// dying marks a conn evicted while shared: it is hidden from
	// checkout at once but closed only when the last lease drains, so
	// one caller's transport error does not yank the socket out from
	// under co-tenants with calls still in flight.
	dying bool
}

// Pool is a bounded, shared connection pool keyed by address.
type Pool struct {
	cfg PoolConfig

	mu      sync.Mutex
	conns   map[string][]*poolEntry
	dialing map[string]int
	closed  bool

	gConns   *obs.Gauge
	gWaiting *obs.Gauge
	checkout *obs.Op
	dialed   *obs.Counter
	evicted  *obs.Counter
	reaped   *obs.Counter
}

// NewPool builds a pool; cfg.Dial is required.
func NewPool(cfg PoolConfig) *Pool {
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 4
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 32
	}
	if cfg.IdleAfter <= 0 {
		cfg.IdleAfter = time.Minute
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "pool"
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	p := &Pool{
		cfg:     cfg,
		conns:   make(map[string][]*poolEntry),
		dialing: make(map[string]int),
	}
	if cfg.Metrics != nil {
		p.gConns = cfg.Metrics.Gauge(cfg.Prefix + ".conns")
		p.gWaiting = cfg.Metrics.Gauge(cfg.Prefix + ".waiting")
		p.checkout = cfg.Metrics.Op(cfg.Prefix + ".checkout_wait_us")
		p.dialed = cfg.Metrics.Counter(cfg.Prefix + ".dialed")
		p.evicted = cfg.Metrics.Counter(cfg.Prefix + ".evicted")
		p.reaped = cfg.Metrics.Counter(cfg.Prefix + ".reaped")
	} else {
		// Unexported counters so Stats works without a registry.
		p.dialed = &obs.Counter{}
		p.evicted = &obs.Counter{}
		p.reaped = &obs.Counter{}
	}
	return p
}

// publishLocked refreshes the conns gauge (total across addresses).
func (p *Pool) publishLocked() {
	if p.gConns == nil {
		return
	}
	n := 0
	for _, list := range p.conns {
		n += len(list)
	}
	p.gConns.Set(int64(n))
}

// sweepLocked drops dead connections and reaps idle ones for addr.
func (p *Pool) sweepLocked(addr string) {
	now := p.cfg.Now()
	list := p.conns[addr]
	kept := list[:0]
	for _, e := range list {
		if e.m.Dead() && !e.dying {
			e.dying = true
			p.evicted.Inc()
		}
		switch {
		case e.dying && e.leases == 0:
			e.m.Close()
		case e.dying:
			kept = append(kept, e) // drains when the last lease releases
		case e.leases == 0 && e.m.InFlight() == 0 && now.Sub(e.m.LastUsed()) >= p.cfg.IdleAfter:
			p.reaped.Inc()
			e.m.Close()
		default:
			kept = append(kept, e)
		}
	}
	if len(kept) == 0 {
		delete(p.conns, addr)
	} else {
		p.conns[addr] = kept
	}
}

// Get checks out a connection to addr, dialing when the pool has
// spare capacity and every existing connection is loaded past the
// in-flight preference. Always pair with Put or Fail.
//
// Every checkout — including one a closed gate rejects immediately —
// records into <prefix>.checkout_wait_us, so pool starvation (long
// waits) is distinguishable from breaker rejection (fast errors) in
// the same histogram; <prefix>.waiting gauges checkouts in progress.
func (p *Pool) Get(addr string) (*Mux, error) {
	start := time.Now()
	p.mu.Lock()
	waiting, checkout := p.gWaiting, p.checkout
	p.mu.Unlock()
	waiting.Add(1)
	m, err := p.get(addr)
	waiting.Add(-1)
	checkout.Observe(time.Since(start), err)
	return m, err
}

// SetMetrics attaches a registry after construction (the client library
// builds its pool before the caller can hand one over). Lifetime
// dial/evict/reap counts recorded so far carry into the registry-backed
// counters; attach once, before sustained traffic.
func (p *Pool) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pre := p.cfg.Prefix
	dialed, evicted, reaped := p.dialed.Value(), p.evicted.Value(), p.reaped.Value()
	p.gConns = reg.Gauge(pre + ".conns")
	p.gWaiting = reg.Gauge(pre + ".waiting")
	p.checkout = reg.Op(pre + ".checkout_wait_us")
	p.dialed = reg.Counter(pre + ".dialed")
	p.evicted = reg.Counter(pre + ".evicted")
	p.reaped = reg.Counter(pre + ".reaped")
	p.dialed.Add(dialed)
	p.evicted.Add(evicted)
	p.reaped.Add(reaped)
	p.publishLocked()
}

func (p *Pool) get(addr string) (*Mux, error) {
	if gate := p.gate(addr); gate != nil && !gate.Allow() {
		return nil, types.E("dial", addr, fmt.Errorf("connection gate open (breaker): %w", types.ErrOffline))
	}
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, types.E("dial", addr, fmt.Errorf("pool closed: %w", types.ErrOffline))
		}
		p.sweepLocked(addr)
		var best *poolEntry
		live := 0
		for _, e := range p.conns[addr] {
			if e.dying {
				continue
			}
			live++
			if best == nil || e.m.InFlight() < best.m.InFlight() {
				best = e
			}
		}
		total := live + p.dialing[addr]
		canDial := total < p.cfg.MaxConns
		if best != nil && (!canDial || best.m.InFlight() < int64(p.cfg.MaxInflight)) {
			best.leases++
			p.publishLocked()
			p.mu.Unlock()
			return best.m, nil
		}
		if !canDial {
			// Every conn is loaded and we are at capacity with dials in
			// flight; share whatever lands first.
			if best != nil {
				best.leases++
				p.mu.Unlock()
				return best.m, nil
			}
			// All capacity is mid-dial: wait for one to land.
			p.mu.Unlock()
			time.Sleep(time.Millisecond)
			continue
		}
		p.dialing[addr]++
		p.mu.Unlock()

		m, err := p.cfg.Dial(addr)

		p.mu.Lock()
		p.dialing[addr]--
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		if p.closed {
			p.mu.Unlock()
			m.Close()
			return nil, types.E("dial", addr, fmt.Errorf("pool closed: %w", types.ErrOffline))
		}
		p.dialed.Inc()
		p.conns[addr] = append(p.conns[addr], &poolEntry{m: m, leases: 1})
		p.publishLocked()
		p.mu.Unlock()
		return m, nil
	}
}

func (p *Pool) gate(addr string) Gate {
	if p.cfg.Gate == nil {
		return nil
	}
	return p.cfg.Gate(addr)
}

// Put checks a connection back in. Dead connections are evicted.
func (p *Pool) Put(m *Mux) {
	p.release(m, false)
}

// Fail checks a connection back in after a transport error: it is
// evicted and closed so no later checkout reuses a broken conn.
func (p *Pool) Fail(m *Mux) {
	p.release(m, true)
}

func (p *Pool) release(m *Mux, evict bool) {
	if m == nil {
		return
	}
	p.mu.Lock()
	for addr, list := range p.conns {
		for i, e := range list {
			if e.m != m {
				continue
			}
			if e.leases > 0 {
				e.leases--
			}
			if (evict || m.Dead()) && !e.dying {
				e.dying = true
				p.evicted.Inc()
			}
			if e.dying && e.leases == 0 {
				p.conns[addr] = append(list[:i], list[i+1:]...)
				if len(p.conns[addr]) == 0 {
					delete(p.conns, addr)
				}
				p.publishLocked()
				p.mu.Unlock()
				m.Close()
				return
			}
			p.publishLocked()
			p.mu.Unlock()
			return
		}
	}
	p.mu.Unlock()
	// Not pooled (already evicted): just make sure it is closed.
	if evict {
		m.Close()
	}
}

// Stats reports pool occupancy and lifetime counters.
type PoolStats struct {
	Conns   int
	Idle    int
	Dialed  int64
	Evicted int64
	Reaped  int64
}

// Stats snapshots the pool (tests and status pages).
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStats{
		Dialed:  p.dialed.Value(),
		Evicted: p.evicted.Value(),
		Reaped:  p.reaped.Value(),
	}
	for _, list := range p.conns {
		for _, e := range list {
			st.Conns++
			if e.leases == 0 && e.m.InFlight() == 0 {
				st.Idle++
			}
		}
	}
	return st
}

// Reap sweeps every address now (tests drive the clock; production
// sweeps piggyback on Get).
func (p *Pool) Reap() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for addr := range p.conns {
		p.sweepLocked(addr)
	}
	p.publishLocked()
}

// Flush closes every pooled connection but keeps the pool usable —
// the next checkout dials fresh (used when the transport is swapped).
func (p *Pool) Flush() {
	p.mu.Lock()
	var all []*Mux
	for _, list := range p.conns {
		for _, e := range list {
			all = append(all, e.m)
		}
	}
	p.conns = make(map[string][]*poolEntry)
	p.publishLocked()
	p.mu.Unlock()
	for _, m := range all {
		m.Close()
	}
}

// Close closes every pooled connection and fails future checkouts.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	var all []*Mux
	for _, list := range p.conns {
		for _, e := range list {
			all = append(all, e.m)
		}
	}
	p.conns = make(map[string][]*poolEntry)
	p.publishLocked()
	p.mu.Unlock()
	for _, m := range all {
		m.Close()
	}
}
