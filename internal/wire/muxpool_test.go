// Race suite for the Mux demultiplexer and the connection Pool: the
// invariants that only show up under concurrency — out-of-order
// response matching, serial-mode FIFO discipline, timeout abandonment,
// checkout/checkin storms, and recovery when the transport is killed
// mid-flight. Run under -race (make test-wire loops it 10x).
package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gosrb/internal/faultnet"
	"gosrb/internal/types"
)

// muxPair builds a connected Mux (client side) and a raw server-side
// Conn for the test to script responses on.
func muxPair(t *testing.T, strict bool) (*Mux, *Conn, net.Conn) {
	t.Helper()
	client, server := net.Pipe()
	m := NewMux(client, NewConn(client), "testsrv", strict)
	t.Cleanup(func() {
		m.Close()
		server.Close()
	})
	return m, NewConn(server), server
}

func echoBody(op string) json.RawMessage {
	b, _ := json.Marshal(op)
	return b
}

// TestMuxOutOfOrderDemux answers a burst of concurrent calls in reverse
// arrival order; every caller must still get its own response.
func TestMuxOutOfOrderDemux(t *testing.T) {
	m, sc, _ := muxPair(t, true)
	const n = 8
	go func() {
		reqs := make([]Request, 0, n)
		for i := 0; i < n; i++ {
			var req Request
			if err := sc.ReadJSON(MsgRequest, &req); err != nil {
				return
			}
			reqs = append(reqs, req)
		}
		for i := len(reqs) - 1; i >= 0; i-- {
			sc.WriteJSON(MsgResponse, Response{ID: reqs[i].ID, OK: true, Body: echoBody(reqs[i].Op)})
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op := fmt.Sprintf("op%d", i)
			res, err := m.Call(&Request{Op: op}, nil, time.Now().Add(5*time.Second))
			if err != nil {
				errs <- fmt.Errorf("call %s: %w", op, err)
				return
			}
			var got string
			json.Unmarshal(res.Resp.Body, &got)
			if got != op {
				errs <- fmt.Errorf("call %s answered with %s", op, got)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxSerialFIFO runs concurrent calls against an ID-less (serial
// protocol) server. Correct matching depends on the pending FIFO order
// equalling wire order, which Call guarantees by registering under the
// write lock.
func TestMuxSerialFIFO(t *testing.T) {
	m, sc, _ := muxPair(t, false)
	const n = 8
	go func() {
		for i := 0; i < n; i++ {
			var req Request
			if err := sc.ReadJSON(MsgRequest, &req); err != nil {
				return
			}
			// Serial server: answers in request order, no ID echoed.
			sc.WriteJSON(MsgResponse, Response{OK: true, Body: echoBody(req.Op)})
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op := fmt.Sprintf("op%d", i)
			res, err := m.Call(&Request{Op: op}, nil, time.Now().Add(5*time.Second))
			if err != nil {
				errs <- fmt.Errorf("call %s: %w", op, err)
				return
			}
			var got string
			json.Unmarshal(res.Resp.Body, &got)
			if got != op {
				errs <- fmt.Errorf("call %s answered with %s", op, got)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxStrictTimeoutAbandons: a timed-out call on a strict (ID
// echoing) connection abandons just that call — the conn survives, a
// later call works, and the late response is discarded by ID.
func TestMuxStrictTimeoutAbandons(t *testing.T) {
	m, sc, _ := muxPair(t, true)
	var stale Request
	served := make(chan struct{})
	go func() {
		sc.ReadJSON(MsgRequest, &stale) // swallow: let it time out
		var req Request
		if err := sc.ReadJSON(MsgRequest, &req); err != nil {
			return
		}
		sc.WriteJSON(MsgResponse, Response{ID: req.ID, OK: true, Body: echoBody(req.Op)})
		// The abandoned call's response arrives late; the demux loop
		// must drop it silently.
		sc.WriteJSON(MsgResponse, Response{ID: stale.ID, OK: true, Body: echoBody(stale.Op)})
		close(served)
	}()
	_, err := m.Call(&Request{Op: "slow"}, nil, time.Now().Add(30*time.Millisecond))
	if err == nil {
		t.Fatal("expected timeout")
	}
	if !errors.Is(err, types.ErrTimeout) || !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("timeout error %v must match both types.ErrTimeout and os.ErrDeadlineExceeded", err)
	}
	if m.Dead() {
		t.Fatal("strict-mode timeout killed the connection")
	}
	res, err := m.Call(&Request{Op: "next"}, nil, time.Now().Add(5*time.Second))
	if err != nil {
		t.Fatalf("call after abandoned timeout: %v", err)
	}
	var got string
	json.Unmarshal(res.Resp.Body, &got)
	if got != "next" {
		t.Fatalf("late stale response leaked into a new call: got %q", got)
	}
	<-served
	if m.Dead() {
		t.Fatal("discarding a late response killed the connection")
	}
}

// TestMuxSerialTimeoutPoisons: on a serial (ID-less) connection a
// timed-out call cannot be safely abandoned — its late response would
// be matched to the next caller — so the Mux must kill the conn.
func TestMuxSerialTimeoutPoisons(t *testing.T) {
	m, sc, _ := muxPair(t, false)
	go func() {
		var req Request
		sc.ReadJSON(MsgRequest, &req) // never answer
	}()
	_, err := m.Call(&Request{Op: "stuck"}, nil, time.Now().Add(30*time.Millisecond))
	if err == nil {
		t.Fatal("expected timeout")
	}
	if !errors.Is(err, types.ErrTimeout) {
		t.Fatalf("timeout error %v must match types.ErrTimeout", err)
	}
	if !m.Dead() {
		t.Fatal("serial-mode timeout must poison the connection")
	}
	if _, err := m.Call(&Request{Op: "after"}, nil, time.Time{}); err == nil {
		t.Fatal("call on poisoned conn succeeded")
	}
}

// TestMuxDataStreams interleaves two data-carrying responses out of
// order; each caller must get its own bytes.
func TestMuxDataStreams(t *testing.T) {
	m, sc, _ := muxPair(t, true)
	go func() {
		var a, b Request
		if err := sc.ReadJSON(MsgRequest, &a); err != nil {
			return
		}
		if err := sc.ReadJSON(MsgRequest, &b); err != nil {
			return
		}
		for _, req := range []Request{b, a} { // reversed
			sc.WriteJSON(MsgResponse, Response{ID: req.ID, OK: true, DataFollows: true})
			sc.SendData(bytes2reader("payload-" + req.Op))
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, op := range []string{"x", "y"} {
		wg.Add(1)
		go func(op string) {
			defer wg.Done()
			res, err := m.Call(&Request{Op: op}, nil, time.Now().Add(5*time.Second))
			if err != nil {
				errs <- err
				return
			}
			if got := string(res.Data); got != "payload-"+op {
				errs <- fmt.Errorf("call %s got data %q", op, got)
			}
		}(op)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func bytes2reader(s string) io.Reader { return &onceReader{s: s} }

type onceReader struct {
	s    string
	done bool
}

func (r *onceReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, io.EOF
	}
	r.done = true
	return copy(p, r.s), nil
}

// startEchoServer serves the strict mux protocol on one net.Conn:
// every request gets a response echoing its op, IDs echoed.
func startEchoServer(nc net.Conn) {
	go func() {
		c := NewConn(nc)
		var wmu sync.Mutex
		for {
			var req Request
			if err := c.ReadJSON(MsgRequest, &req); err != nil {
				return
			}
			go func(req Request) {
				wmu.Lock()
				defer wmu.Unlock()
				c.WriteJSON(MsgResponse, Response{ID: req.ID, OK: true, Body: echoBody(req.Op)})
			}(req)
		}
	}()
}

// pipeDialer returns a Pool dial function backed by net.Pipe echo
// servers, plus a counter of dials performed.
func pipeDialer(wrap func(net.Conn) net.Conn) (func(string) (*Mux, error), *atomic.Int64) {
	var dials atomic.Int64
	dial := func(addr string) (*Mux, error) {
		client, server := net.Pipe()
		startEchoServer(server)
		dials.Add(1)
		nc := net.Conn(client)
		if wrap != nil {
			nc = wrap(nc)
		}
		return NewMux(nc, NewConn(nc), addr, true), nil
	}
	return dial, &dials
}

// TestPoolConcurrentCheckout storms Get/Call/Put (with sprinkled Fail)
// from many goroutines: no deadlock, no cross-matched responses, and
// the pool never exceeds its conn bound.
func TestPoolConcurrentCheckout(t *testing.T) {
	dial, _ := pipeDialer(nil)
	p := NewPool(PoolConfig{Dial: dial, MaxConns: 3, MaxInflight: 2})
	defer p.Close()
	const workers = 16
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m, err := p.Get("addr")
				if err != nil {
					errs <- err
					return
				}
				op := fmt.Sprintf("w%d-i%d", w, i)
				res, err := m.Call(&Request{Op: op}, nil, time.Now().Add(5*time.Second))
				if err != nil {
					errs <- fmt.Errorf("%s: %w", op, err)
					p.Fail(m)
					continue
				}
				var got string
				json.Unmarshal(res.Resp.Body, &got)
				if got != op {
					errs <- fmt.Errorf("%s cross-matched to %s", op, got)
				}
				if (w+i)%13 == 0 {
					p.Fail(m) // evict a healthy conn now and then
				} else {
					p.Put(m)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := p.Stats(); st.Conns > 3 {
		t.Fatalf("pool holds %d conns, bound is 3", st.Conns)
	}
}

// TestPoolSharesThenDials: an idle pooled conn is reused; a conn at its
// in-flight preference triggers a fresh dial while capacity remains.
func TestPoolSharesThenDials(t *testing.T) {
	release := make(chan struct{})
	var dials atomic.Int64
	dial := func(addr string) (*Mux, error) {
		client, server := net.Pipe()
		dials.Add(1)
		go func() {
			c := NewConn(server)
			for {
				var req Request
				if err := c.ReadJSON(MsgRequest, &req); err != nil {
					return
				}
				go func(req Request) {
					<-release // stall until the test releases
					c.WriteJSON(MsgResponse, Response{ID: req.ID, OK: true, Body: echoBody(req.Op)})
				}(req)
			}
		}()
		return NewMux(client, NewConn(client), addr, true), nil
	}
	p := NewPool(PoolConfig{Dial: dial, MaxConns: 2, MaxInflight: 1})
	defer p.Close()

	m1, err := p.Get("addr")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m1.Call(&Request{Op: "block"}, nil, time.Now().Add(5*time.Second))
		done <- err
	}()
	// Wait for the call to be in flight on m1.
	for i := 0; m1.InFlight() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if m1.InFlight() == 0 {
		t.Fatal("call never went in flight")
	}
	// m1 is at its in-flight preference: the next checkout should dial.
	m2, err := p.Get("addr")
	if err != nil {
		t.Fatal(err)
	}
	if m2 == m1 {
		t.Fatal("checkout shared a saturated conn with spare capacity")
	}
	if got := dials.Load(); got != 2 {
		t.Fatalf("dialed %d times, want 2", got)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("blocked call: %v", err)
	}
	p.Put(m1)
	p.Put(m2)
	// Both conns idle now: another checkout reuses, no third dial.
	m3, err := p.Get("addr")
	if err != nil {
		t.Fatal(err)
	}
	p.Put(m3)
	if got := dials.Load(); got != 2 {
		t.Fatalf("idle pool dialed again (%d dials)", got)
	}
}

// TestPoolIdleReap: a conn idle past IdleAfter is reaped on the next
// sweep, driven by an injected clock.
func TestPoolIdleReap(t *testing.T) {
	dial, _ := pipeDialer(nil)
	now := time.Now()
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	p := NewPool(PoolConfig{Dial: dial, IdleAfter: time.Minute, Now: clock})
	defer p.Close()
	m, err := p.Get("addr")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(&Request{Op: "ping"}, nil, time.Now().Add(5*time.Second)); err != nil {
		t.Fatal(err)
	}
	p.Put(m)
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	p.Reap()
	st := p.Stats()
	if st.Reaped != 1 || st.Conns != 0 {
		t.Fatalf("stats after idle sweep = %+v, want 1 reaped / 0 conns", st)
	}
}

// TestPoolRecoversFromKilledTransport kills the transport under a
// seeded fault injector mid-storm: calls fail with transport-classed
// errors, dead conns are evicted, and after Revive the pool dials fresh
// and serves again.
func TestPoolRecoversFromKilledTransport(t *testing.T) {
	inj := faultnet.New(42)
	target := inj.Target("peer.echo")
	dial, _ := pipeDialer(func(nc net.Conn) net.Conn { return inj.WrapConn("peer.echo", nc) })
	p := NewPool(PoolConfig{Dial: dial, MaxConns: 2})
	defer p.Close()

	m, err := p.Get("addr")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Call(&Request{Op: "warm"}, nil, time.Now().Add(5*time.Second)); err != nil {
		t.Fatal(err)
	}
	p.Put(m)

	target.Kill()
	// Every call during the outage must fail with a transport-shaped
	// error and get its conn evicted — no silent successes, no hangs.
	sawFailure := false
	for i := 0; i < 4; i++ {
		m, err := p.Get("addr")
		if err != nil {
			sawFailure = true
			continue
		}
		_, err = m.Call(&Request{Op: "down"}, nil, time.Now().Add(2*time.Second))
		if err == nil {
			t.Fatal("call succeeded through a killed transport")
		}
		sawFailure = true
		transportShaped := errors.Is(err, types.ErrOffline) ||
			errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
			errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) ||
			errors.Is(err, os.ErrDeadlineExceeded) || errors.Is(err, faultnet.ErrInjected)
		if !transportShaped {
			t.Fatalf("outage error %v is not transport-shaped", err)
		}
		p.Fail(m)
	}
	if !sawFailure {
		t.Fatal("kill switch produced no failures")
	}
	target.Revive()
	m2, err := p.Get("addr")
	if err != nil {
		t.Fatalf("checkout after revive: %v", err)
	}
	if _, err := m2.Call(&Request{Op: "back"}, nil, time.Now().Add(5*time.Second)); err != nil {
		t.Fatalf("call after revive: %v", err)
	}
	p.Put(m2)
	if st := p.Stats(); st.Evicted == 0 {
		t.Fatalf("outage evicted nothing: %+v", st)
	}
}
