// Frame-codec fuzzing. The wire protocol's first defense is the frame
// reader: it sees attacker-controlled bytes before any authentication
// completes, so it must never panic and never let a forged header pin
// memory the peer didn't actually send (5 bytes declaring a 16 MiB
// frame must not cost 16 MiB).
package wire

import (
	"bytes"
	"runtime"
	"testing"
)

// FuzzFrameRoundTrip checks WriteMsg/ReadMsg are inverses for any type
// byte and payload that fit in a frame.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(MsgRequest), []byte(`{"Op":"stat"}`))
	f.Add(uint8(MsgData), []byte{})
	f.Add(uint8(MsgDataEnd), []byte("x"))
	f.Add(uint8(0xff), bytes.Repeat([]byte{0xa5}, 3000))
	f.Fuzz(func(t *testing.T, ty uint8, payload []byte) {
		var buf bytes.Buffer
		c := NewConn(&buf)
		err := c.WriteMsg(MsgType(ty), payload)
		if len(payload) > MaxFrame {
			if err == nil {
				t.Fatal("oversize write accepted")
			}
			return
		}
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		rt, got, err := c.ReadMsg()
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if rt != MsgType(ty) {
			t.Fatalf("type %d round-tripped as %d", ty, rt)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload %d bytes round-tripped as %d bytes", len(payload), len(got))
		}
	})
}

// FuzzDecodeFrame feeds arbitrary bytes to the frame reader. Two
// invariants: no panic, and allocation stays proportional to the bytes
// actually provided — not to the length a forged header declares.
func FuzzDecodeFrame(f *testing.F) {
	valid := func(t MsgType, payload []byte) []byte {
		var buf bytes.Buffer
		if err := NewConn(&buf).WriteMsg(t, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid(MsgRequest, []byte(`{"Op":"stat"}`)))
	f.Add(valid(MsgData, bytes.Repeat([]byte{1}, 70*1024)))
	// Forged header: declares MaxFrame-1 bytes, delivers none (or one).
	f.Add([]byte{byte(MsgResponse), 0x00, 0xff, 0xff, 0xff})
	f.Add([]byte{byte(MsgData), 0x00, 0xff, 0xff, 0xff, 'x'})
	// Oversize declaration: must be rejected outright.
	f.Add([]byte{byte(MsgData), 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		c := NewConn(bytes.NewBuffer(raw))
		for {
			if _, _, err := c.ReadMsg(); err != nil {
				break
			}
		}
		runtime.ReadMemStats(&after)
		// Stepwise growth allows transient doubling copies, so the honest
		// bound is a small multiple of the input plus one alloc step (with
		// slack for runtime noise) — a declared-length allocation of MiB
		// from a few header bytes blows straight through it.
		grew := after.TotalAlloc - before.TotalAlloc
		limit := 4*uint64(len(raw)) + 8*readAllocStep
		if grew > limit {
			t.Fatalf("decoding %d input bytes allocated %d bytes (limit %d)", len(raw), grew, limit)
		}
	})
}

// TestReadMsgForgedLength is the deterministic regression for the
// over-allocation bug the fuzzer targets: before readPayload's stepwise
// growth, these 5 bytes allocated ~16 MiB up front.
func TestReadMsgForgedLength(t *testing.T) {
	hdr := []byte{byte(MsgResponse), 0x00, 0xff, 0xff, 0xff} // declares 16 MiB - 1
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, _, err := NewConn(bytes.NewBuffer(hdr)).ReadMsg()
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated frame read succeeded")
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 4*readAllocStep {
		t.Fatalf("5 forged header bytes allocated %d bytes", grew)
	}
}

// TestReadMsgLargeFrameIntact makes sure the stepwise reader still
// hands back big legitimate frames byte-for-byte (the doubling loop's
// boundary arithmetic is exactly the kind of code that truncates).
func TestReadMsgLargeFrameIntact(t *testing.T) {
	for _, n := range []int{0, 1, readAllocStep - 1, readAllocStep, readAllocStep + 1,
		3 * readAllocStep, 2*readAllocStep + 37, DataChunk, DataChunk + 1} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		var buf bytes.Buffer
		if err := NewConn(&buf).WriteMsg(MsgData, payload); err != nil {
			t.Fatalf("n=%d write: %v", n, err)
		}
		ty, got, err := NewConn(&buf).ReadMsg()
		if err != nil {
			t.Fatalf("n=%d read: %v", n, err)
		}
		if ty != MsgData || !bytes.Equal(got, payload) {
			t.Fatalf("n=%d round trip corrupted (got %d bytes)", n, len(got))
		}
	}
}
