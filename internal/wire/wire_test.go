package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"gosrb/internal/types"
)

// pipeConn is an in-memory bidirectional transport for tests.
func pipeConn() (*Conn, *Conn) {
	a2b := &blockingBuffer{ch: make(chan []byte, 64)}
	b2a := &blockingBuffer{ch: make(chan []byte, 64)}
	a := NewConn(&duplex{r: b2a, w: a2b})
	b := NewConn(&duplex{r: a2b, w: b2a})
	return a, b
}

type duplex struct {
	r io.Reader
	w io.Writer
}

func (d *duplex) Read(p []byte) (int, error)  { return d.r.Read(p) }
func (d *duplex) Write(p []byte) (int, error) { return d.w.Write(p) }

// blockingBuffer delivers writes to readers through a channel.
type blockingBuffer struct {
	ch  chan []byte
	cur []byte
}

func (b *blockingBuffer) Write(p []byte) (int, error) {
	cp := append([]byte(nil), p...)
	b.ch <- cp
	return len(p), nil
}

func (b *blockingBuffer) Read(p []byte) (int, error) {
	if len(b.cur) == 0 {
		chunk, ok := <-b.ch
		if !ok {
			return 0, io.EOF
		}
		b.cur = chunk
	}
	n := copy(p, b.cur)
	b.cur = b.cur[n:]
	return n, nil
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := pipeConn()
	go func() {
		a.WriteMsg(MsgRequest, []byte("payload"))
	}()
	typ, payload, err := b.ReadMsg()
	if err != nil || typ != MsgRequest || string(payload) != "payload" {
		t.Errorf("frame = %d %q %v", typ, payload, err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a, b := pipeConn()
	go a.WriteJSON(MsgChallenge, Challenge{Server: "srb1", Nonce: "abc"})
	var ch Challenge
	if err := b.ReadJSON(MsgChallenge, &ch); err != nil || ch.Server != "srb1" || ch.Nonce != "abc" {
		t.Errorf("challenge = %+v, %v", ch, err)
	}
	// Wrong expected type errors.
	go a.WriteJSON(MsgAuth, Auth{User: "u"})
	if err := b.ReadJSON(MsgChallenge, &ch); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("type mismatch = %v", err)
	}
}

func TestDataStream(t *testing.T) {
	a, b := pipeConn()
	payload := make([]byte, DataChunk*3+100) // multiple chunks
	for i := range payload {
		payload[i] = byte(i)
	}
	go func() {
		if err := a.SendData(bytes.NewReader(payload)); err != nil {
			t.Error(err)
		}
	}()
	var buf bytes.Buffer
	n, err := b.RecvData(&buf)
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("RecvData = %d, %v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Error("data corrupted")
	}
}

func TestEmptyDataStream(t *testing.T) {
	a, b := pipeConn()
	go a.SendData(bytes.NewReader(nil))
	var buf bytes.Buffer
	n, err := b.RecvData(&buf)
	if err != nil || n != 0 {
		t.Errorf("empty stream = %d, %v", n, err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var sink bytes.Buffer
	c := NewConn(&sink)
	if err := c.WriteMsg(MsgData, make([]byte, MaxFrame+1)); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("oversize write = %v", err)
	}
	// A forged oversize header is rejected on read.
	var buf bytes.Buffer
	buf.Write([]byte{byte(MsgData), 0xFF, 0xFF, 0xFF, 0xFF})
	r := NewConn(&buf)
	if _, _, err := r.ReadMsg(); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("oversize read = %v", err)
	}
}

func TestErrKindRoundTrip(t *testing.T) {
	for _, sentinel := range []error{
		types.ErrNotFound, types.ErrExists, types.ErrPermission,
		types.ErrLocked, types.ErrOffline, types.ErrInvalid,
		types.ErrNotEmpty, types.ErrUnsupported, types.ErrAuth,
		types.ErrMandatoryMeta,
	} {
		wrapped := types.E("op", "/p", sentinel)
		resp := ErrResponse(wrapped)
		back := resp.Err()
		if !errors.Is(back, sentinel) {
			t.Errorf("sentinel %v lost through the wire: %v", sentinel, back)
		}
	}
	// Unclassified errors still carry their message.
	resp := ErrResponse(errors.New("weird failure"))
	if resp.Err() == nil || resp.Err().Error() != "weird failure" {
		t.Errorf("unclassified = %v", resp.Err())
	}
	// Success responses carry no error.
	ok, _ := OkResponse(struct{}{}, false)
	if ok.Err() != nil {
		t.Error("ok response should have nil error")
	}
}

// Property: any payload under the frame limit round-trips intact.
func TestFrameProperty(t *testing.T) {
	f := func(payload []byte, kind uint8) bool {
		a, b := pipeConn()
		typ := MsgType(kind%8 + 1)
		go a.WriteMsg(typ, payload)
		gt, gp, err := b.ReadMsg()
		if err != nil || gt != typ {
			return false
		}
		return bytes.Equal(gp, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
