package wire

import (
	"time"

	"gosrb/internal/mcat"
	"gosrb/internal/mcat/shard"
	"gosrb/internal/obs"
	"gosrb/internal/types"
)

// Op names understood by the server. The client mirrors this table.
const (
	OpMkdir         = "mkdir"
	OpRmColl        = "rmcoll"
	OpList          = "list"
	OpStat          = "stat"
	OpIngest        = "ingest"
	OpReingest      = "reingest"
	OpGet           = "get"
	OpReadRange     = "readrange"
	OpReplicate     = "replicate"
	OpDelete        = "delete"
	OpDeleteReplica = "rmreplica"
	OpMove          = "move"
	OpCopy          = "copy"
	OpLink          = "link"
	OpAddMeta       = "addmeta"
	OpGetMeta       = "getmeta"
	OpAnnotate      = "annotate"
	OpAnnotations   = "annotations"
	OpQuery         = "query"
	OpQueryAttrs    = "queryattrs"
	OpChmod         = "chmod"
	OpLock          = "lock"
	OpUnlock        = "unlock"
	OpPin           = "pin"
	OpUnpin         = "unpin"
	OpCheckout      = "checkout"
	OpCheckin       = "checkin"
	OpRegisterURL   = "registerurl"
	OpRegisterSQL   = "registersql"
	OpExecSQL       = "execsql"
	OpInvoke        = "invoke"
	OpMkContainer   = "mkcontainer"
	OpSyncContainer = "synccontainer"
	OpExtract       = "extract"
	OpGetObject     = "getobject"
	OpServerStats   = "serverstats"
	// OpIngestReplica is the server-to-server replication step: the
	// owning server stores streamed bytes as a new replica of an
	// existing object.
	OpIngestReplica = "ingestreplica"
	// OpIssueTicket mints a delegated-access ticket for a path.
	OpIssueTicket = "issueticket"
	// OpAudit queries the audit trail (administrators only).
	OpAudit = "audit"
	// OpShadowList lists inside a registered (shadow) directory.
	OpShadowList = "shadowlist"
	// OpShadowOpen reads a file inside a registered directory's cone.
	OpShadowOpen = "shadowopen"
	// OpAddUser registers a user account (administrators only).
	OpAddUser = "adduser"
	// OpResources lists the registered storage resources.
	OpResources = "resources"
	// OpOpStats returns the server's telemetry snapshot: per-op
	// counts/errors/latency, per-driver byte totals, replica fan-out
	// counters, audit drops and recent trace records.
	OpOpStats = "opstats"
	// OpTrace fetches every retained span of one trace ID. The first
	// server asked also polls its zone peers, so the reply reassembles
	// the full federated span tree.
	OpTrace = "trace"
	// OpUsage returns the per-user/collection usage accounting table.
	OpUsage = "usage"
	// OpRepairStatus reports the background repair engine's state:
	// queue backlog, worker health and per-job run counts.
	OpRepairStatus = "repairstatus"
	// OpScrub runs the anti-entropy scrubber over one object or (admin
	// only) a collection subtree, repairing divergence it finds.
	OpScrub = "scrub"
	// OpChecksum verifies every replica of one object against the
	// catalog checksum without repairing anything.
	OpChecksum = "checksum"
	// OpGridStat reports windowed rates/quantiles from the rollup
	// ring. The first server asked also fans out to its zone peers
	// (unless LocalOnly) and merges the answers into one grid
	// snapshot, flagging dead peers unreachable rather than failing.
	OpGridStat = "gridstat"
	// OpAlerts reports the server's SLO rule standings and the bounded
	// log of fire/resolve transitions.
	OpAlerts = "alerts"
	// OpIncidents lists the server's captured incident bundles (flight
	// recorder index).
	OpIncidents = "incidents"
	// OpIncidentGet fetches one incident bundle: meta plus every file.
	OpIncidentGet = "incidentget"
	// OpIncidentCapture triggers an on-demand incident capture. Not
	// idempotent: each call writes a bundle (or burns rate-limit gap).
	OpIncidentCapture = "incidentcapture"
	// OpPeers reports the server's peer transfer observatory: per-peer
	// and per-resource EWMA latency/bandwidth and success history.
	OpPeers = "peers"
	// OpBulkPut ingests many small objects in one round trip: a
	// BulkPutArgs manifest followed by one data stream holding the
	// items' bytes concatenated in manifest order. Items succeed or
	// fail independently; the reply reports per-item status.
	OpBulkPut = "bulkput"
	// OpMultiGet fetches many objects in one round trip: per-item
	// status in request order, then one data stream holding the
	// successful items' bytes concatenated in that order.
	OpMultiGet = "multiget"
	// OpBulkStat stats many paths in one round trip, preserving
	// request order in the reply.
	OpBulkStat = "bulkstat"
	// OpShards reports the sharded catalog's per-shard status: role,
	// replication lag, staleness and entry counts (`srb shards`).
	OpShards = "shards"
	// OpShardPull serves one shard's replication stream to a follower
	// daemon: journal entries after a sequence number, or a full
	// snapshot when the follower is too far behind. Peer/admin only.
	OpShardPull = "shardpull"
	// OpHeat reports the heat observatory: top-K hot keys and objects,
	// per-shard status with replication lag, and the rebalance advisor's
	// dry-run migration plan (`srb heat`).
	OpHeat = "heat"
)

// StreamsIn reports whether op is followed by an inbound bulk data
// stream (Data frames ended by DataEnd). The pipelined server must
// drain the stream before dispatching the next request, so this set
// must name every op whose request precedes data.
func StreamsIn(op string) bool {
	switch op {
	case OpIngest, OpReingest, OpIngestReplica, OpCheckin, OpBulkPut:
		return true
	}
	return false
}

// PathArgs addresses one logical path.
type PathArgs struct {
	Path string
}

// IngestArgs precedes a bulk data stream carrying the contents.
type IngestArgs struct {
	Path      string
	Resource  string
	Container string
	DataType  string
	Meta      []types.AVU
}

// RangeArgs reads length bytes at offset (the parallel-transfer
// primitive; length < 0 means "to the end").
type RangeArgs struct {
	Path   string
	Offset int64
	Length int64
}

// SizeReply reports a transfer size before data frames.
type SizeReply struct {
	Size int64
}

// MoveArgs renames src to dst.
type MoveArgs struct {
	Src, Dst string
}

// CopyArgs copies src to dst, optionally onto a specific resource.
type CopyArgs struct {
	Src, Dst, Resource string
}

// LinkArgs links target at linkPath.
type LinkArgs struct {
	Target, LinkPath string
}

// ReplicateArgs replicates path onto resource.
type ReplicateArgs struct {
	Path, Resource string
}

// ReplicaArgs addresses one replica.
type ReplicaArgs struct {
	Path   string
	Number int
}

// MetaArgs attaches one triplet of a class.
type MetaArgs struct {
	Path  string
	Class int
	AVU   types.AVU
}

// GetMetaArgs fetches one class of metadata.
type GetMetaArgs struct {
	Path  string
	Class int
}

// AnnotateArgs adds commentary.
type AnnotateArgs struct {
	Path string
	Ann  types.Annotation
}

// QueryArgs wraps a catalog query.
type QueryArgs struct {
	Q mcat.Query
}

// QueryReply carries the hits plus, when the catalog is sharded, the
// names of shards that missed the scatter-gather deadline or were
// stale followers — so a partial answer is visibly partial rather than
// silently short.
type QueryReply struct {
	Hits    []mcat.Hit
	Partial []string `json:",omitempty"`
}

// ChmodArgs sets a grant.
type ChmodArgs struct {
	Path    string
	Grantee string
	Level   string
}

// LockArgs places a lock; TTLSeconds <= 0 uses the default.
type LockArgs struct {
	Path       string
	Kind       string // "shared" or "exclusive"
	TTLSeconds int64
}

// PinArgs pins a replica on a resource.
type PinArgs struct {
	Path       string
	Resource   string
	TTLSeconds int64
}

// CheckinArgs precedes a data stream with the new contents.
type CheckinArgs struct {
	Path    string
	Comment string
}

// RegisterURLArgs registers a URL object.
type RegisterURLArgs struct {
	Path string
	URL  string
}

// RegisterSQLArgs registers a SQL object.
type RegisterSQLArgs struct {
	Path string
	Spec types.SQLSpec
}

// ExecSQLArgs executes a registered SQL object.
type ExecSQLArgs struct {
	Path   string
	Suffix string
}

// InvokeArgs runs a method object.
type InvokeArgs struct {
	Path string
	Args []string
}

// ContainerArgs creates a container on a resource.
type ContainerArgs struct {
	Path     string
	Resource string
}

// ExtractArgs runs a metadata extraction method.
type ExtractArgs struct {
	Path   string
	Method string
	From   string
}

// CountReply reports an affected count.
type CountReply struct {
	N int
}

// TicketArgs mints a ticket for Path at Level ("read"...), with Uses
// uses (negative = unlimited) expiring after TTLSeconds.
type TicketArgs struct {
	Path       string
	Level      string
	Uses       int
	TTLSeconds int64
}

// TicketReply returns the minted ticket id.
type TicketReply struct {
	ID string
}

// ShadowArgs addresses a path inside a shadow directory object.
type ShadowArgs struct {
	Path string // logical path of the shadow directory object
	Rel  string // relative path within the cone ("." = root)
}

// AddUserArgs registers an account and its password.
type AddUserArgs struct {
	Name     string
	Domain   string
	Password string
	Admin    bool
}

// AuditArgs filters the audit trail; zero fields match everything.
type AuditArgs struct {
	User   string
	Op     string
	Target string
	Trace  string
	Limit  int
}

// StatsReply reports server/catalog size counters.
type StatsReply struct {
	Server      string
	Objects     int
	Collections int
	Resources   int
	Users       int
}

// OpStatsReply carries one server's telemetry snapshot, plus the
// occupancy of its federation connection pool.
type OpStatsReply struct {
	Server   string
	Snapshot obs.Snapshot
	PeerPool *PoolStats `json:",omitempty"`
}

// TraceArgs asks for every retained span of one trace.
type TraceArgs struct {
	ID string
}

// TraceReply carries the collected spans. Server names the responder;
// when the responder fanned out to its peers, Spans is the union of
// every ring that still held records for the trace.
type TraceReply struct {
	Server string
	Spans  []obs.SpanRecord
}

// UsageArgs filters the usage accounting table; zero fields match
// everything.
type UsageArgs struct {
	User       string
	Collection string
}

// UsageReply carries one server's usage accounting rows.
type UsageReply struct {
	Server  string
	Entries []obs.UsageStat
}

// RepairStatusArgs selects the repair engine to report on (local only
// for now; the struct leaves room for zone-wide fan-out later).
type RepairStatusArgs struct{}

// RepairJobStatus is the wire shape of one periodic maintenance job —
// a protocol-level mirror of the engine's job snapshot, so the wire
// layer does not depend on the repair package.
type RepairJobStatus struct {
	Name     string
	Interval time.Duration
	Runs     int64
	Errors   int64
	LastRun  time.Time `json:",omitempty"`
	LastErr  string    `json:",omitempty"`
}

// RepairStatus is the wire shape of the repair engine snapshot.
type RepairStatus struct {
	Running      bool
	Paused       bool
	Wedged       bool
	Workers      int
	WorkersAlive int
	Backlog      int
	OldestAge    time.Duration
	Done         int64
	Failed       int64
	Retries      int64
	Jobs         []RepairJobStatus `json:",omitempty"`
}

// RepairStatusReply carries the repair engine's snapshot.
type RepairStatusReply struct {
	Server string
	// Enabled is false when the daemon runs without a repair engine.
	Enabled bool
	Status  RepairStatus
}

// GridStatArgs selects the trailing window. LocalOnly suppresses the
// zone fan-out (it is set on peer hops, bounding the gather to one
// level, and by `srb top` without -grid).
type GridStatArgs struct {
	WindowSeconds int64
	LocalOnly     bool
}

// GridMember is one zone member's contribution to a grid snapshot.
// Unreachable members keep their slot (with the error) so a partial
// aggregate is visibly partial; Stale flags members whose retained
// history covers less than ~80% of the requested window.
type GridMember struct {
	Server      string
	Unreachable bool   `json:",omitempty"`
	Stale       bool   `json:",omitempty"`
	Err         string `json:",omitempty"`
	Window      obs.WindowStats
}

// GridStatReply is the merged grid view: per-member windows plus the
// cross-server aggregate (quantiles recomputed from merged buckets).
type GridStatReply struct {
	Server        string
	WindowSeconds float64
	Members       []GridMember
	Grid          obs.WindowStats
}

// AlertsArgs selects the alert view (local only; SLO rules are
// per-daemon configuration).
type AlertsArgs struct{}

// AlertsReply carries the server's SLO standings and recent alert
// transitions. Enabled is false when the daemon declared no rules.
type AlertsReply struct {
	Server  string
	Enabled bool
	Rules   []obs.SLOStatus `json:",omitempty"`
	Alerts  []obs.Alert     `json:",omitempty"`
}

// IncidentsArgs selects the incident index (local only; bundles live
// on the capturing server's disk).
type IncidentsArgs struct{}

// IncidentsReply carries the bounded incident index, newest first.
// Enabled is false when the daemon runs without a telemetry dir.
type IncidentsReply struct {
	Server    string
	Enabled   bool
	Incidents []obs.IncidentMeta `json:",omitempty"`
}

// IncidentGetArgs names one bundle by its index ID.
type IncidentGetArgs struct {
	ID string
}

// IncidentGetReply carries one full bundle. Files maps name to raw
// contents (base64 over the wire via encoding/json); profiles are
// binary, the rest is JSON/text.
type IncidentGetReply struct {
	Server string
	Meta   obs.IncidentMeta
	Files  map[string][]byte `json:",omitempty"`
}

// IncidentCaptureArgs triggers an on-demand capture. Reason is the
// operator's note, recorded in the bundle meta.
type IncidentCaptureArgs struct {
	Reason string
}

// IncidentCaptureReply carries the new bundle's index entry.
type IncidentCaptureReply struct {
	Server string
	Meta   obs.IncidentMeta
}

// PeersArgs selects the transfer observatory (local only).
type PeersArgs struct{}

// PeersReply carries the per-peer / per-resource transfer history.
type PeersReply struct {
	Server string
	Peers  []obs.PeerStat `json:",omitempty"`
}

// ScrubReply carries the scrub pass report.
type ScrubReply struct {
	Server string
	Report types.ScrubReport
}

// ChecksumReply carries the per-replica verification verdicts for one
// object.
type ChecksumReply struct {
	Path     string
	Checksum string
	Verdicts []types.ReplicaVerdict
}

// BulkPutItem describes one object inside a bulk ingest. Size is the
// item's byte count within the concatenated data stream that follows
// the manifest — the server slices the stream by these sizes.
type BulkPutItem struct {
	Path      string
	Resource  string
	Container string
	DataType  string
	Meta      []types.AVU `json:",omitempty"`
	Size      int64
}

// BulkPutArgs is the manifest preceding a bulk ingest data stream.
type BulkPutArgs struct {
	Items []BulkPutItem
}

// BulkItemStatus reports one item's outcome inside a batch reply.
// Items fail independently: a bad path cannot tear down its
// batch-mates, and ErrKind round-trips the sentinel for errors.Is.
type BulkItemStatus struct {
	Path    string
	OK      bool
	ErrKind string `json:",omitempty"`
	ErrMsg  string `json:",omitempty"`
}

// Err reconstructs the item's error (nil when OK).
func (s *BulkItemStatus) Err() error {
	if s.OK {
		return nil
	}
	return ErrFromKind(s.ErrKind, s.ErrMsg)
}

// BulkPutReply reports per-item outcomes in manifest order.
type BulkPutReply struct {
	Server  string
	Results []BulkItemStatus
}

// MultiGetArgs fetches many objects in one round trip.
type MultiGetArgs struct {
	Paths []string
}

// MultiGetItem reports one item of a multi-get, in request order. Size
// is the item's byte count within the data stream that follows the
// reply (0 for failed items, which contribute no bytes).
type MultiGetItem struct {
	Path    string
	OK      bool
	Size    int64
	ErrKind string `json:",omitempty"`
	ErrMsg  string `json:",omitempty"`
}

// Err reconstructs the item's error (nil when OK).
func (s *MultiGetItem) Err() error {
	if s.OK {
		return nil
	}
	return ErrFromKind(s.ErrKind, s.ErrMsg)
}

// MultiGetReply precedes the concatenated data stream.
type MultiGetReply struct {
	Server string
	Items  []MultiGetItem
}

// BulkStatArgs stats many paths in one round trip.
type BulkStatArgs struct {
	Paths []string
}

// BulkStatItem reports one stat outcome, in request order.
type BulkStatItem struct {
	Path    string
	OK      bool
	Stat    types.Stat `json:",omitempty"`
	ErrKind string     `json:",omitempty"`
	ErrMsg  string     `json:",omitempty"`
}

// Err reconstructs the item's error (nil when OK).
func (s *BulkStatItem) Err() error {
	if s.OK {
		return nil
	}
	return ErrFromKind(s.ErrKind, s.ErrMsg)
}

// BulkStatReply reports per-path stats in request order.
type BulkStatReply struct {
	Server string
	Items  []BulkStatItem
}

// ShardsArgs requests the sharded catalog's per-shard status.
type ShardsArgs struct{}

// ShardsReply reports per-shard role, replication position and entry
// counts. A monolithic (unsharded) catalog replies with one leader row.
type ShardsReply struct {
	Server string
	Shards []shard.Status
}

// ShardPullArgs asks the leader daemon for shard Shard's replication
// entries after sequence After (0 = from the beginning).
type ShardPullArgs struct {
	Shard int
	After uint64
}

// ShardPullReply carries either the journal entries (After+1..Seq) or,
// when the follower is behind the leader's retained log, a full
// catalog snapshot positioned at Seq.
type ShardPullReply struct {
	Server   string
	Entries  [][]byte `json:",omitempty"`
	Snapshot []byte   `json:",omitempty"`
	Seq      uint64
}

// HeatArgs requests the heat observatory view (local only).
type HeatArgs struct{}

// HeatReply carries one server's heat observatory: the hot-key and
// hot-object top-K tables, the per-shard status rows (empty on a
// monolithic catalog) and the rebalance advisor's newest dry-run plan
// (nil when the catalog is not sharded).
type HeatReply struct {
	Server  string
	Keys    []obs.HeatStat `json:",omitempty"`
	Objects []obs.HeatStat `json:",omitempty"`
	Shards  []shard.Status `json:",omitempty"`
	Plan    *shard.Plan    `json:",omitempty"`
}
