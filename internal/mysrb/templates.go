package mysrb

import (
	"html/template"
	"net/http"
	"strings"
)

// The MySRB pages. Layout follows the paper's Figure 1: "the small
// top-window is used to display metadata about data objects and
// collections, and the larger bottom-window is used for displaying
// elements in a collection or for displaying data objects".

const tplBase = `
{{define "head"}}<!DOCTYPE html>
<html><head><title>MySRB</title><style>
body { font-family: sans-serif; margin: 0; }
.topwin { background: #e8eef8; border-bottom: 2px solid #446; padding: 8px; min-height: 90px; font-size: 90%; }
.botwin { padding: 10px; }
table { border-collapse: collapse; }
td, th { border: 1px solid #99a; padding: 2px 8px; }
.bar { background: #446; color: white; padding: 4px 8px; }
.bar a { color: #cde; margin-right: 10px; }
.err { color: #a00; } .ok { color: #070; }
form.inline { display: inline; }
</style></head><body>
<div class="bar">
  <b>MySRB</b> &nbsp; user: {{.User}} &nbsp;
  <a href="/browse?path=/">home</a>
  <a href="/browse?path={{.Parent}}">up</a>
  <a href="/query?path={{.Path}}">mySRB query</a>
  <a href="/help">help</a>
  <a href="/logout">logout</a>
</div>{{end}}

{{define "topwin"}}<div class="topwin">
<b>{{.Path}}</b>
{{if .Error}}<div class="err">{{.Error}}</div>{{end}}
{{if .Notice}}<div class="ok">{{.Notice}}</div>{{end}}
{{if .TopMeta}}<table>
{{range .TopMeta}}<tr><td>{{.Name}}</td><td>{{if srbpath .Value}}<a href="/open?path={{.Value}}">{{.Value}}</a>{{else}}{{.Value}}{{end}}</td><td>{{.Units}}</td></tr>{{end}}
</table>{{end}}
{{if .Structs}}<p>structural metadata:
{{range .Structs}} <i>{{.Name}}</i>{{if .Mandatory}}(required){{end}}{{end}}</p>{{end}}
{{if .Annots}}<p>annotations:</p><ul>
{{range .Annots}}<li>[{{.Kind}}] {{.Author}}: {{.Text}}</li>{{end}}
</ul>{{end}}
</div>{{end}}
`

const tplLogin = tplBase + `
<!DOCTYPE html><html><head><title>MySRB Login</title></head><body>
<h2>MySRB &mdash; web interface to the Storage Resource Broker</h2>
{{if .Error}}<p style="color:#a00">{{.Error}}</p>{{end}}
<form method="POST" action="/login">
  <label>user name <input name="user"></label><br>
  <label>password <input type="password" name="password"></label><br>
  <input type="submit" value="Connect">
</form>
</body></html>`

const tplBrowse = tplBase + `
{{template "head" .}}
{{template "topwin" .}}
<div class="botwin">
<table>
<tr><th>name</th><th>kind</th><th>size</th><th>owner</th><th>replicas</th><th>operations</th></tr>
{{range .Entries}}
<tr>
  <td>{{if .IsCollect}}<a href="/browse?path={{.Path}}">{{.Path}}/</a>{{else}}<a href="/open?path={{.Path}}">{{.Path}}</a>{{end}}</td>
  <td>{{if .IsCollect}}collection{{else}}{{.Kind}}{{end}}</td>
  <td>{{.Size}}</td><td>{{.Owner}}</td><td>{{.Replicas}}</td>
  <td>
   {{if not .IsCollect}}
   <form class="inline" method="POST" action="/op"><input type="hidden" name="path" value="{{.Path}}"><input type="hidden" name="op" value="delete"><input type="submit" value="delete"></form>
   {{end}}
   <a href="/acl?path={{.Path}}">access</a>
   <a href="/meta?path={{.Path}}">metadata</a>
  </td>
</tr>
{{end}}
</table>
<hr>
<form method="POST" action="/mkcoll">
  <input type="hidden" name="parent" value="{{.Path}}">
  new sub-collection: <input name="name"> <input type="submit" value="create">
</form>
<p><a href="/ingest?path={{.Path}}">ingest a file into {{.Path}}</a> &middot;
<a href="/registerobj?path={{.Path}}">register an object (file / directory / SQL / URL / method)</a></p>
</div></body></html>`

const tplOpen = tplBase + `
{{template "head" .}}
{{template "topwin" .}}
<div class="botwin">
{{if .IsHTML}}{{.ContentHTML}}{{else}}<pre>{{.Content}}</pre>{{end}}
{{if .Versions}}<p>versions:</p><ul>
{{range .Versions}}<li>v{{.Number}} ({{.Size}} bytes) {{.Comment}}</li>{{end}}
</ul>{{end}}
<hr>
<form method="POST" action="/annotate">
  <input type="hidden" name="path" value="{{.Path}}">
  annotation: <input name="text" size="40">
  kind: <select name="kind"><option>comment</option><option>rating</option><option>errata</option><option>question</option></select>
  <input type="submit" value="add">
</form>
<form class="inline" method="POST" action="/op"><input type="hidden" name="path" value="{{.Path}}"><input type="hidden" name="op" value="lock"><input type="hidden" name="kind" value="shared"><input type="submit" value="lock"></form>
<form class="inline" method="POST" action="/op"><input type="hidden" name="path" value="{{.Path}}"><input type="hidden" name="op" value="unlock"><input type="submit" value="unlock"></form>
<form class="inline" method="POST" action="/op"><input type="hidden" name="path" value="{{.Path}}"><input type="hidden" name="op" value="checkout"><input type="submit" value="checkout"></form>
<form class="inline" method="POST" action="/op"><input type="hidden" name="path" value="{{.Path}}"><input type="hidden" name="op" value="replicate">replicate to <input name="resource" size="10"><input type="submit" value="replicate"></form>
<form class="inline" method="POST" action="/op"><input type="hidden" name="path" value="{{.Path}}"><input type="hidden" name="op" value="move">move to <input name="to" size="16"><input type="submit" value="move"></form>
<form class="inline" method="POST" action="/op"><input type="hidden" name="path" value="{{.Path}}"><input type="hidden" name="op" value="link">link at <input name="to" size="16"><input type="submit" value="link"></form>
<p><a href="/raw?path={{.Path}}">download raw</a> &middot; <a href="/meta?path={{.Path}}">edit metadata</a> &middot; <a href="/edit?path={{.Path}}">edit contents</a></p>
</div></body></html>`

const tplIngest = tplBase + `
{{template "head" .}}
{{template "topwin" .}}
<div class="botwin">
<h3>File ingestion into {{.Path}}</h3>
<form method="POST" action="/ingest?path={{.Path}}" enctype="multipart/form-data">
  file: <input type="file" name="file"><br>
  name (optional): <input name="name"><br>
  logical resource: <select name="resource">
    {{range .Resources}}<option>{{.Name}}</option>{{end}}
  </select>
  or container: <input name="container"><br>
  data type: <input name="datatype" value="generic"><br>
  <h4>collection metadata</h4>
  {{range $i, $a := .Structs}}
    {{$a.Name}}{{if $a.Mandatory}} (required){{end}}:
    {{if gt (len $a.Defaults) 1}}
      <select name="attr:{{$a.Name}}">{{range $a.Defaults}}<option>{{.}}</option>{{end}}</select>
    {{else}}
      <input name="attr:{{$a.Name}}" value="{{index00 $a.Defaults}}">
    {{end}}
    <i>{{$a.Comment}}</i><br>
  {{end}}
  <h4>Dublin Core</h4>
  {{range .DCNames}}{{.}}: <input name="{{.}}"><br>{{end}}
  <h4>user-defined metadata</h4>
  {{range $i := iter 4}}
    name <input name="meta-name-{{$i}}" size="12"> value <input name="meta-value-{{$i}}" size="16"> units <input name="meta-units-{{$i}}" size="8"><br>
  {{end}}
  <input type="submit" value="Ingest">
</form>
</div></body></html>`

const tplMeta = tplBase + `
{{template "head" .}}
{{template "topwin" .}}
<div class="botwin">
<h3>Insert metadata for {{.Path}}</h3>
<form method="POST" action="/meta?path={{.Path}}">
  name <input name="name"> value <input name="value"> units <input name="units">
  <input type="submit" value="insert">
</form>
<form method="POST" action="/meta?path={{.Path}}">
  <input type="hidden" name="action" value="delete">
  delete attribute <input name="name"> value (optional) <input name="value">
  <input type="submit" value="delete">
</form>
<form method="POST" action="/meta?path={{.Path}}">
  <input type="hidden" name="action" value="copy">
  copy metadata from <input name="from">
  <input type="submit" value="copy">
</form>
<form method="POST" action="/meta?path={{.Path}}">
  <input type="hidden" name="action" value="extract">
  extract with method <input name="method"> from (optional second object) <input name="from">
  <input type="submit" value="extract">
</form>
</div></body></html>`

const tplQuery = tplBase + `
{{template "head" .}}
{{template "topwin" .}}
<div class="botwin">
<h3>Query in {{.Path}} and below</h3>
<form method="POST" action="/query?path={{.Path}}">
<table>
<tr><th>metadata name</th><th>operator</th><th>value</th><th>show</th></tr>
{{$attrs := .AttrNames}}
{{range $i := iter 4}}
<tr>
 <td><select name="attr-{{$i}}"><option value=""></option>{{range $attrs}}<option>{{.}}</option>{{end}}</select></td>
 <td><select name="op-{{$i}}">
   <option>=</option><option>&gt;</option><option>&lt;</option>
   <option>&gt;=</option><option>&lt;=</option><option>&lt;&gt;</option>
   <option>like</option><option>not like</option>
 </select></td>
 <td><input name="val-{{$i}}"></td>
 <td><input type="checkbox" name="show-{{$i}}" value="1"></td>
</tr>
{{end}}
</table>
<input type="submit" value="Query (AND of all conditions)">
</form>
{{if .Hits}}
<h3>{{len .Hits}} matching objects</h3>
<table>
<tr><th>object</th>{{range .Selected}}<th>{{.}}</th>{{end}}</tr>
{{range .Hits}}
<tr><td><a href="/open?path={{.Path}}">{{.Path}}</a></td>{{range .Values}}<td>{{.}}</td>{{end}}</tr>
{{end}}
</table>
{{end}}
</div></body></html>`

const tplACL = tplBase + `
{{template "head" .}}
{{template "topwin" .}}
<div class="botwin">
<h3>Access control for {{.Path}}</h3>
<table>
<tr><th>grantee</th><th>level</th></tr>
{{range .ACL}}<tr><td>{{.Grantee}}</td><td>{{.Level}}</td></tr>{{end}}
</table>
<form method="POST" action="/acl?path={{.Path}}">
 grantee (user, g:group, or public): <input name="grantee">
 level: <select name="level">
   <option>none</option><option>read</option><option>annotate</option>
   <option>write</option><option>own</option><option>curate</option>
 </select>
 <input type="submit" value="grant">
</form>
</div></body></html>`

const tplRegisterObj = tplBase + `
{{template "head" .}}
{{template "topwin" .}}
<div class="botwin">
<h3>Register an object into {{.Path}}</h3>
<p>Registered objects are pointers: SRB keeps no copy of the data.</p>

<h4>1. A file in a file system, archive or database</h4>
<form method="POST" action="/registerobj?path={{.Path}}">
 <input type="hidden" name="kind" value="file">
 name <input name="name"> resource <select name="resource">{{range .Resources}}<option>{{.Name}}</option>{{end}}</select>
 physical path <input name="physpath"> <input type="submit" value="register file">
</form>

<h4>2. A directory (shadow object)</h4>
<form method="POST" action="/registerobj?path={{.Path}}">
 <input type="hidden" name="kind" value="directory">
 name <input name="name"> resource <select name="resource">{{range .Resources}}<option>{{.Name}}</option>{{end}}</select>
 directory path <input name="physpath"> <input type="submit" value="register directory">
</form>

<h4>3. A SQL query for a database resource</h4>
<form method="POST" action="/registerobj?path={{.Path}}">
 <input type="hidden" name="kind" value="sql">
 name <input name="name"> resource <select name="resource">{{range .Resources}}<option>{{.Name}}</option>{{end}}</select><br>
 select statement <input name="query" size="60"><br>
 partial (completed at retrieval) <input type="checkbox" name="partial" value="1">
 template <select name="template"><option>HTMLREL</option><option>HTMLNEST</option><option>XMLREL</option></select>
 or style sheet path <input name="stylesheet" size="20">
 <input type="submit" value="register query">
</form>

<h4>4. A URL</h4>
<form method="POST" action="/registerobj?path={{.Path}}">
 <input type="hidden" name="kind" value="url">
 name <input name="name"> URL <input name="url" size="50">
 <input type="submit" value="register URL">
</form>

<h4>5. A method object (proxy command)</h4>
<form method="POST" action="/registerobj?path={{.Path}}">
 <input type="hidden" name="kind" value="method">
 name <input name="name"> command <input name="command"> arguments <input name="args">
 <input type="submit" value="register method">
</form>
</div></body></html>`

const tplEdit = tplBase + `
{{template "head" .}}
<div class="botwin">
<h3>Edit {{.Path}}</h3>
{{if .Error}}<div class="err">{{.Error}}</div>{{end}}
<form method="POST" action="/edit?path={{.Path}}">
<textarea name="contents" rows="24" cols="100">{{.Content}}</textarea><br>
<input type="submit" value="Save (reingest)">
</form>
</div></body></html>`

const tplRegister = tplBase + `
{{template "head" .}}
<div class="botwin">
<h3>User registration</h3>
{{if .Error}}<div class="err">{{.Error}}</div>{{end}}
{{if .Notice}}<div class="ok">{{.Notice}}</div>{{end}}
<form method="POST" action="/register">
  user name <input name="name"><br>
  domain <input name="domain" value="local"><br>
  password <input type="password" name="password"><br>
  <input type="submit" value="Register">
</form>
</div></body></html>`

const tplHelp = tplBase + `
{{template "head" .}}
<div class="botwin">
<h3>MySRB on-line help</h3>
<p>MySRB provides three primary functionalities:</p>
<ul>
<li><b>collection and file management</b>: creation, maintenance and
deletion of collections; data ingestion, reload and registration; data
replication and movement; access control; deletion.</li>
<li><b>metadata handling</b>: ingestion, extraction, copy, maintenance,
update and deletion of user-defined and standardized metadata (Dublin
Core).</li>
<li><b>access and display</b>: browsing the collection hierarchy and
searching with system-level, user-defined and standard metadata.</li>
</ul>
<p>The split window shows metadata in the top pane and collection
contents or file data in the bottom pane. Session keys expire after 60
minutes.</p>
</div></body></html>`

// funcs used by the templates.
var tplFuncs = template.FuncMap{
	// srbpath reports whether a metadata value names an SRB object, so
	// related objects render as clickable hot-links (paper §5: "a
	// reference is provided as a clickable hot-link in mySRB").
	"srbpath": func(v string) bool {
		return len(v) > 1 && v[0] == '/' && !strings.ContainsAny(v, " \t\n")
	},
	// iter yields 0..n-1 for range loops.
	"iter": func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	},
	// index00 safely takes the first element of a possibly-empty slice.
	"index00": func(s []string) string {
		if len(s) == 0 {
			return ""
		}
		return s[0]
	},
}

var templates = map[string]*template.Template{}

func compile(name, text string) *template.Template {
	return template.Must(template.New(name).Funcs(tplFuncs).Parse(text))
}

func init() {
	templates["login"] = compile("login", tplLogin)
	templates["browse"] = compile("browse", tplBrowse)
	templates["open"] = compile("open", tplOpen)
	templates["ingest"] = compile("ingest", tplIngest)
	templates["meta"] = compile("meta", tplMeta)
	templates["query"] = compile("query", tplQuery)
	templates["acl"] = compile("acl", tplACL)
	templates["registerobj"] = compile("registerobj", tplRegisterObj)
	templates["edit"] = compile("edit", tplEdit)
	templates["register"] = compile("register", tplRegister)
	templates["help"] = compile("help", tplHelp)
}

// render executes a page template.
func render(w http.ResponseWriter, tplName string, data any) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if pd, ok := data.(pageData); ok && pd.IsHTML {
		// Pre-rendered HTML (built-in SQL templates) is trusted server
		// output, surfaced through a typed field.
		type htmlPage struct {
			pageData
			ContentHTML template.HTML
		}
		data = htmlPage{pageData: pd, ContentHTML: template.HTML(pd.Content)}
	}
	if err := templates[tplName].Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
