package mysrb

import (
	"fmt"
	"html/template"
	"net/http"
	"time"
)

// handleIncidents renders the flight recorder's incident bundle index —
// the browser view of `srb incident list` and the admin /incidents
// endpoint. Bundle members link through to /incident?id=...&file=...
// for direct download.
func (a *App) handleIncidents(w http.ResponseWriter, r *http.Request, user string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>mySRB incidents</title></head><body>
<h2>Incident bundles — %s</h2>
<p><a href="/status">server status</a> &middot; <a href="/peers">peer observatory</a> &middot; <a href="/browse">back to browsing</a></p>`,
		template.HTMLEscapeString(a.broker.ServerName()))

	rec := a.broker.Incidents()
	if rec == nil {
		fmt.Fprint(w, "<p>Flight recorder disabled: start the daemon with <code>-telemetry-dir</code>.</p></body></html>")
		return
	}
	metas := rec.List()
	if len(metas) == 0 {
		fmt.Fprint(w, "<p>No incidents captured yet.</p></body></html>")
		return
	}
	fmt.Fprint(w, `<table border="1" cellpadding="3">
<tr><th>captured</th><th>rule</th><th>reason</th><th>detail</th><th>bundle</th></tr>`)
	for _, m := range metas {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>",
			m.At.Format(time.RFC3339), template.HTMLEscapeString(m.Rule),
			template.HTMLEscapeString(m.Reason), template.HTMLEscapeString(m.Detail))
		for i, f := range m.Files {
			if i > 0 {
				fmt.Fprint(w, " &middot; ")
			}
			fmt.Fprintf(w, `<a href="/incident?id=%s&amp;file=%s">%s</a>`,
				template.URLQueryEscaper(m.ID), template.URLQueryEscaper(f),
				template.HTMLEscapeString(f))
		}
		fmt.Fprint(w, "</td></tr>")
	}
	fmt.Fprint(w, "</table></body></html>")
}

// handleIncidentFile serves one member of an incident bundle as a raw
// download; the recorder validates the id and file name against
// traversal before touching disk.
func (a *App) handleIncidentFile(w http.ResponseWriter, r *http.Request, user string) {
	rec := a.broker.Incidents()
	if rec == nil {
		http.Error(w, "flight recorder disabled (no -telemetry-dir)", http.StatusNotFound)
		return
	}
	id := r.URL.Query().Get("id")
	meta, files, err := rec.Get(id)
	if err != nil {
		http.Error(w, "incident not found: "+id, http.StatusNotFound)
		return
	}
	name := r.URL.Query().Get("file")
	data, ok := files[name]
	if !ok {
		http.Error(w, "no such bundle file: "+name, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", meta.ID+"-"+name))
	w.Write(data)
}

// handlePeers renders the peer transfer observatory: per-peer and
// per-resource EWMA latency, bandwidth and success rates accumulated by
// the federation, replica and client byte counters — the browser view
// of `srb peers`.
func (a *App) handlePeers(w http.ResponseWriter, r *http.Request, user string) {
	peers := a.broker.Metrics().Peers().Snapshot()

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>mySRB peer observatory</title></head><body>
<h2>Peer transfer observatory — %s</h2>
<p><a href="/status">server status</a> &middot; <a href="/incidents">incidents</a> &middot; <a href="/browse">back to browsing</a></p>`,
		template.HTMLEscapeString(a.broker.ServerName()))
	if len(peers) == 0 {
		fmt.Fprint(w, "<p>No transfer history recorded yet.</p></body></html>")
		return
	}
	fmt.Fprint(w, `<table border="1" cellpadding="3">
<tr><th>peer</th><th>resource</th><th>ops</th><th>errors</th><th>bytes</th><th>EWMA ms</th><th>EWMA MB/s</th><th>success %</th></tr>`)
	for _, p := range peers {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%.2f</td><td>%.2f</td><td>%.1f</td></tr>",
			template.HTMLEscapeString(p.Peer), template.HTMLEscapeString(p.Resource),
			p.Ops, p.Errors, p.Bytes, p.EWMALatMicros/1000, p.EWMABytesPerSec/1e6, p.SuccessPct)
	}
	fmt.Fprint(w, "</table></body></html>")
}
