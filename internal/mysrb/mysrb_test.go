package mysrb

import (
	"bytes"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/auth"
	"gosrb/internal/core"
	"gosrb/internal/mcat"
	"gosrb/internal/obs"
	"gosrb/internal/storage"
	"gosrb/internal/storage/dbfs"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// rig is a MySRB instance over a one-server grid plus a logged-in
// cookie jar client.
type rig struct {
	t      *testing.T
	app    *App
	broker *core.Broker
	authn  *auth.Authenticator
	srv    *httptest.Server
	jar    http.CookieJar
	http   *http.Client
}

func newRig(t *testing.T) *rig {
	t.Helper()
	cat := mcat.New("admin", "sdsc")
	cat.AddUser(types.User{Name: "curator", Domain: "sdsc"})
	cat.MkColl("/cultures", "curator")
	b := core.New(cat, "srb1")
	if err := b.AddPhysicalResource("admin", "disk1", types.ClassFileSystem, "memfs", memfs.New()); err != nil {
		t.Fatal(err)
	}
	authn := auth.New()
	authn.Register("curator", "pw")
	app := New(b, authn)
	srv := httptest.NewServer(app)
	t.Cleanup(srv.Close)
	jar := newJar()
	return &rig{
		t: t, app: app, broker: b, authn: authn, srv: srv, jar: jar,
		http: &http.Client{Jar: jar},
	}
}

// newJar is a minimal cookie jar.
func newJar() http.CookieJar {
	return &jar{cookies: map[string][]*http.Cookie{}}
}

type jar struct{ cookies map[string][]*http.Cookie }

func (j *jar) SetCookies(u *url.URL, cs []*http.Cookie) { j.cookies[u.Host] = cs }
func (j *jar) Cookies(u *url.URL) []*http.Cookie        { return j.cookies[u.Host] }

func (r *rig) login(user, pw string) *http.Response {
	r.t.Helper()
	resp, err := r.http.PostForm(r.srv.URL+"/login", url.Values{"user": {user}, "password": {pw}})
	if err != nil {
		r.t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func (r *rig) get(path string) (string, int) {
	r.t.Helper()
	resp, err := r.http.Get(r.srv.URL + path)
	if err != nil {
		r.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body), resp.StatusCode
}

func (r *rig) post(path string, form url.Values) (string, int) {
	r.t.Helper()
	resp, err := r.http.PostForm(r.srv.URL+path, form)
	if err != nil {
		r.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body), resp.StatusCode
}

func TestLoginFlow(t *testing.T) {
	r := newRig(t)
	// Unauthenticated requests land on the login page.
	body, _ := r.get("/browse?path=/")
	if !strings.Contains(body, "MySRB") || !strings.Contains(body, "password") {
		t.Errorf("expected login page, got:\n%s", body[:min(200, len(body))])
	}
	// Bad password bounces back with an error.
	r.login("curator", "wrong")
	body, _ = r.get("/browse?path=/")
	if !strings.Contains(body, "password") {
		t.Error("bad login should not create a session")
	}
	// Good login reaches the browser.
	r.login("curator", "pw")
	body, _ = r.get("/browse?path=/")
	if !strings.Contains(body, "user: curator") {
		t.Errorf("expected browse page:\n%s", body[:min(300, len(body))])
	}
}

func TestSessionExpiry(t *testing.T) {
	r := newRig(t)
	now := time.Now()
	r.authn.SetClock(func() time.Time { return now })
	r.login("curator", "pw")
	if body, _ := r.get("/browse?path=/"); !strings.Contains(body, "user: curator") {
		t.Fatal("login failed")
	}
	// Sessions hit the paper's 60-minute limit.
	now = now.Add(61 * time.Minute)
	if body, _ := r.get("/browse?path=/"); !strings.Contains(body, "password") {
		t.Error("expired session should bounce to login")
	}
}

func TestMkCollAndBrowse(t *testing.T) {
	r := newRig(t)
	r.login("curator", "pw")
	r.post("/mkcoll", url.Values{"parent": {"/cultures"}, "name": {"Avian Culture"}})
	body, _ := r.get("/browse?path=/cultures")
	if !strings.Contains(body, "/cultures/Avian Culture") {
		t.Errorf("new collection missing from listing:\n%s", body)
	}
}

// multipartIngest posts a file through the ingest form.
func (r *rig) multipartIngest(coll, name, resource string, contents []byte, extra map[string]string) (string, int) {
	r.t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormFile("file", name)
	fw.Write(contents)
	mw.WriteField("resource", resource)
	mw.WriteField("datatype", "generic")
	for k, v := range extra {
		mw.WriteField(k, v)
	}
	mw.Close()
	req, _ := http.NewRequest(http.MethodPost, r.srv.URL+"/ingest?path="+url.QueryEscape(coll), &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := r.http.Do(req)
	if err != nil {
		r.t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b), resp.StatusCode
}

func TestIngestOpenAnnotate(t *testing.T) {
	r := newRig(t)
	r.login("curator", "pw")
	r.multipartIngest("/cultures", "finch.txt", "disk1", []byte("zebra finch notes"), map[string]string{
		"meta-name-0": "species", "meta-value-0": "taeniopygia guttata",
	})
	// Object exists with metadata.
	o, err := r.broker.Cat.GetObject("/cultures/finch.txt")
	if err != nil || o.Size != 17 {
		t.Fatalf("ingested object = %+v, %v", o, err)
	}
	// Open shows contents and metadata in the split window.
	body, _ := r.get("/open?path=/cultures/finch.txt")
	if !strings.Contains(body, "zebra finch notes") {
		t.Errorf("contents missing:\n%s", body)
	}
	if !strings.Contains(body, "taeniopygia guttata") || !strings.Contains(body, "sys:size") {
		t.Errorf("metadata pane missing attributes:\n%s", body)
	}
	// Annotate through the form; it appears on reopen.
	r.post("/annotate", url.Values{"path": {"/cultures/finch.txt"}, "kind": {"comment"}, "text": {"lovely bird"}})
	body, _ = r.get("/open?path=/cultures/finch.txt")
	if !strings.Contains(body, "lovely bird") {
		t.Errorf("annotation missing:\n%s", body)
	}
	// Raw download.
	body, code := r.get("/raw?path=/cultures/finch.txt")
	if code != http.StatusOK || body != "zebra finch notes" {
		t.Errorf("raw = %q (%d)", body, code)
	}
}

func TestIngestMandatoryMetadata(t *testing.T) {
	r := newRig(t)
	r.login("curator", "pw")
	r.broker.Cat.SetStructural("/cultures", types.StructuralAttr{Name: "culture-core", Mandatory: true})
	// Missing mandatory attribute bounces with an error notice.
	body, _ := r.multipartIngest("/cultures", "x.txt", "disk1", []byte("x"), nil)
	_ = body
	if _, err := r.broker.Cat.GetObject("/cultures/x.txt"); err == nil {
		t.Error("ingest without mandatory metadata should fail")
	}
	// Supplying it through the structural form field succeeds.
	r.multipartIngest("/cultures", "x.txt", "disk1", []byte("x"), map[string]string{"attr:culture-core": "avian"})
	if _, err := r.broker.Cat.GetObject("/cultures/x.txt"); err != nil {
		t.Errorf("ingest with mandatory metadata: %v", err)
	}
	// The ingest form shows the requirement.
	form, _ := r.get("/ingest?path=/cultures")
	if !strings.Contains(form, "culture-core") || !strings.Contains(form, "(required)") {
		t.Errorf("form missing structural attr:\n%s", form)
	}
}

func TestQueryBuilder(t *testing.T) {
	r := newRig(t)
	r.login("curator", "pw")
	for i, species := range []string{"finch", "sparrow", "finch"} {
		r.multipartIngest("/cultures", "b"+string(rune('0'+i))+".txt", "disk1", []byte("x"), map[string]string{
			"meta-name-0": "species", "meta-value-0": species,
		})
	}
	// The form offers the attribute drop-down.
	form, _ := r.get("/query?path=/cultures")
	if !strings.Contains(form, "species") || !strings.Contains(form, "not like") {
		t.Errorf("query form incomplete:\n%s", form)
	}
	// Conjunctive query with a shown column.
	body, _ := r.post("/query?path=/cultures", url.Values{
		"attr-0": {"species"}, "op-0": {"="}, "val-0": {"finch"}, "show-0": {"1"},
	})
	if !strings.Contains(body, "2 matching objects") {
		t.Errorf("query results:\n%s", body)
	}
	if !strings.Contains(body, "/cultures/b0.txt") || strings.Contains(body, "/cultures/b1.txt") {
		t.Errorf("wrong hits:\n%s", body)
	}
}

func TestACLPage(t *testing.T) {
	r := newRig(t)
	r.broker.Cat.AddUser(types.User{Name: "public-user", Domain: "x"})
	r.login("curator", "pw")
	r.multipartIngest("/cultures", "f.txt", "disk1", []byte("x"), nil)
	r.post("/acl?path=/cultures/f.txt", url.Values{"grantee": {"public-user"}, "level": {"read"}})
	if got := r.broker.Cat.EffectiveLevel("/cultures/f.txt", "public-user"); got != acl.Read {
		t.Errorf("grant via web = %v", got)
	}
	body, _ := r.get("/acl?path=/cultures/f.txt")
	if !strings.Contains(body, "public-user") || !strings.Contains(body, "read") {
		t.Errorf("acl page:\n%s", body)
	}
}

func TestOpsViaWeb(t *testing.T) {
	r := newRig(t)
	r.login("curator", "pw")
	r.multipartIngest("/cultures", "f.txt", "disk1", []byte("x"), nil)
	// Lock then unlock through the split-window buttons.
	r.post("/op", url.Values{"path": {"/cultures/f.txt"}, "op": {"lock"}, "kind": {"shared"}})
	o, _ := r.broker.Cat.GetObject("/cultures/f.txt")
	if o.Lock.Kind != types.LockShared {
		t.Errorf("lock via web = %+v", o.Lock)
	}
	r.post("/op", url.Values{"path": {"/cultures/f.txt"}, "op": {"unlock"}})
	o, _ = r.broker.Cat.GetObject("/cultures/f.txt")
	if o.Lock.Kind != types.LockNone {
		t.Error("unlock via web failed")
	}
	// Move.
	r.post("/mkcoll", url.Values{"parent": {"/cultures"}, "name": {"sub"}})
	r.post("/op", url.Values{"path": {"/cultures/f.txt"}, "op": {"move"}, "to": {"/cultures/sub/f.txt"}})
	if _, err := r.broker.Cat.GetObject("/cultures/sub/f.txt"); err != nil {
		t.Errorf("move via web: %v", err)
	}
	// Delete.
	r.post("/op", url.Values{"path": {"/cultures/sub/f.txt"}, "op": {"delete"}})
	if _, err := r.broker.Cat.GetObject("/cultures/sub/f.txt"); err == nil {
		t.Error("delete via web failed")
	}
}

func TestMetaFormsAndExtraction(t *testing.T) {
	r := newRig(t)
	r.login("curator", "pw")
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormFile("file", "img.fits")
	fw.Write([]byte("OBJECT  = 'M31'\nEND\n"))
	mw.WriteField("resource", "disk1")
	mw.WriteField("datatype", "fits image")
	mw.Close()
	req, _ := http.NewRequest(http.MethodPost, r.srv.URL+"/ingest?path=/cultures", &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := r.http.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Insert, then extract via the metadata form.
	r.post("/meta?path=/cultures/img.fits", url.Values{"name": {"note"}, "value": {"hand-added"}})
	r.post("/meta?path=/cultures/img.fits", url.Values{"action": {"extract"}, "method": {"fits-cards"}})
	avus, _ := r.broker.Cat.GetMeta("/cultures/img.fits", types.MetaType)
	found := false
	for _, a := range avus {
		if a.Name == "OBJECT" && a.Value == "M31" {
			found = true
		}
	}
	if !found {
		t.Errorf("extraction via web: %+v", avus)
	}
	// Dublin Core lands in the type class.
	r.post("/meta?path=/cultures/img.fits", url.Values{"name": {"dc:title"}, "value": {"Andromeda"}})
	avus, _ = r.broker.Cat.GetMeta("/cultures/img.fits", types.MetaType)
	foundDC := false
	for _, a := range avus {
		if a.Name == "dc:title" {
			foundDC = true
		}
	}
	if !foundDC {
		t.Error("Dublin Core should use the type class")
	}
	// Delete through the form.
	r.post("/meta?path=/cultures/img.fits", url.Values{"action": {"delete"}, "name": {"note"}})
	user, _ := r.broker.Cat.GetMeta("/cultures/img.fits", types.MetaUser)
	if len(user) != 0 {
		t.Errorf("meta delete via web: %+v", user)
	}
}

func TestSQLObjectRendering(t *testing.T) {
	r := newRig(t)
	db := dbfs.New()
	if err := r.broker.AddPhysicalResource("admin", "db1", types.ClassDatabase, "dbfs", db); err != nil {
		t.Fatal(err)
	}
	db.Database().Exec("CREATE TABLE birds (name, family)")
	db.Database().Exec("INSERT INTO birds VALUES ('zebra finch', 'Estrildidae')")
	r.login("curator", "pw")
	if _, err := r.broker.RegisterSQL("curator", "/cultures/birds-q", types.SQLSpec{
		Resource: "db1", Query: "SELECT name, family FROM birds", Template: "HTMLREL",
	}); err != nil {
		t.Fatal(err)
	}
	body, _ := r.get("/open?path=/cultures/birds-q")
	// The HTMLREL table renders inline, unescaped.
	if !strings.Contains(body, "<td>zebra finch</td>") {
		t.Errorf("SQL object rendering:\n%s", body)
	}
}

func TestHelpPage(t *testing.T) {
	r := newRig(t)
	r.login("curator", "pw")
	body, _ := r.get("/help")
	if !strings.Contains(body, "collection and file management") {
		t.Errorf("help page:\n%s", body)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestUserRegistrationViaWeb(t *testing.T) {
	r := newRig(t)
	r.authn.Register("admin", "adminpw")
	// Non-admins are refused.
	r.login("curator", "pw")
	if _, code := r.get("/register"); code != http.StatusForbidden {
		t.Errorf("non-admin register page code = %d", code)
	}
	// Admin registers a new account.
	r2 := newRig(t)
	r2.authn.Register("admin", "adminpw")
	r2.login("admin", "adminpw")
	r2.post("/register", url.Values{"name": {"newbie"}, "domain": {"sdsc"}, "password": {"npw"}})
	if _, err := r2.broker.Cat.GetUser("newbie"); err != nil {
		t.Fatalf("user not created: %v", err)
	}
	// The new account can log in.
	r2.login("newbie", "npw")
	if body, _ := r2.get("/browse?path=/"); !strings.Contains(body, "user: newbie") {
		t.Error("new user login failed")
	}
	// Missing fields bounce.
	r2.login("admin", "adminpw")
	r2.post("/register", url.Values{"name": {""}, "password": {""}})
	if _, err := r2.broker.Cat.GetUser(""); err == nil {
		t.Error("empty user should not register")
	}
}

func TestEditFacility(t *testing.T) {
	r := newRig(t)
	r.login("curator", "pw")
	r.multipartIngest("/cultures", "note.txt", "disk1", []byte("first draft"), nil)
	// The form shows current contents.
	body, code := r.get("/edit?path=/cultures/note.txt")
	if code != http.StatusOK || !strings.Contains(body, "first draft") {
		t.Fatalf("edit form (%d):\n%s", code, body)
	}
	// Saving reingests; metadata remains linked.
	r.broker.Cat.AddMeta("/cultures/note.txt", types.MetaUser, types.AVU{Name: "k", Value: "v"})
	r.post("/edit?path=/cultures/note.txt", url.Values{"contents": {"second draft"}})
	data, _ := r.broker.Get("curator", "/cultures/note.txt")
	if string(data) != "second draft" {
		t.Errorf("after edit = %q", data)
	}
	avus, _ := r.broker.Cat.GetMeta("/cultures/note.txt", types.MetaUser)
	if len(avus) != 1 {
		t.Error("metadata must survive the edit")
	}
	// Non-editable types are refused.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormFile("file", "img.fits")
	fw.Write([]byte("binary-ish"))
	mw.WriteField("resource", "disk1")
	mw.WriteField("datatype", "fits image")
	mw.Close()
	req, _ := http.NewRequest(http.MethodPost, r.srv.URL+"/ingest?path=/cultures", &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := r.http.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, code := r.get("/edit?path=/cultures/img.fits"); code != http.StatusForbidden {
		t.Errorf("non-ascii edit code = %d", code)
	}
}

func TestRegisterObjectsViaWeb(t *testing.T) {
	r := newRig(t)
	db := dbfs.New()
	if err := r.broker.AddPhysicalResource("admin", "db1", types.ClassDatabase, "dbfs", db); err != nil {
		t.Fatal(err)
	}
	db.Database().Exec("CREATE TABLE t (a)")
	db.Database().Exec("INSERT INTO t VALUES ('from the web')")
	r.login("curator", "pw")

	// The form page lists all five kinds.
	form, _ := r.get("/registerobj?path=/cultures")
	for _, want := range []string{"shadow object", "SQL query", "A URL", "method object"} {
		if !strings.Contains(form, want) {
			t.Errorf("register form missing %q", want)
		}
	}
	// Register a URL through the form.
	r.broker.Fetcher().RegisterMemBytes("mem://site", []byte("web content"))
	r.post("/registerobj?path=/cultures", url.Values{
		"kind": {"url"}, "name": {"site-ptr"}, "url": {"mem://site"},
	})
	data, err := r.broker.Get("curator", "/cultures/site-ptr")
	if err != nil || string(data) != "web content" {
		t.Errorf("registered URL get = %q, %v", data, err)
	}
	// Register a SQL query through the form; it renders on open.
	r.post("/registerobj?path=/cultures", url.Values{
		"kind": {"sql"}, "name": {"report"}, "resource": {"db1"},
		"query": {"SELECT a FROM t"}, "template": {"HTMLREL"},
	})
	body, _ := r.get("/open?path=/cultures/report")
	if !strings.Contains(body, "from the web") {
		t.Errorf("registered SQL render:\n%s", body)
	}
	// Register a shadow directory through the form.
	d1, _ := r.broker.Driver("disk1")
	storage.WriteAll(d1, "/outside/f.txt", []byte("cone file"))
	r.post("/registerobj?path=/cultures", url.Values{
		"kind": {"directory"}, "name": {"shadow"}, "resource": {"disk1"}, "physpath": {"/outside"},
	})
	o, err := r.broker.Cat.GetObject("/cultures/shadow")
	if err != nil || o.Kind != types.KindShadowDir {
		t.Errorf("registered dir = %+v, %v", o, err)
	}
	// Bad kind bounces with an error notice.
	r.post("/registerobj?path=/cultures", url.Values{"kind": {"bogus"}, "name": {"x"}})
	if _, err := r.broker.Cat.GetObject("/cultures/x"); err == nil {
		t.Error("bogus kind should not register")
	}
}

func TestRelatedObjectHotLinks(t *testing.T) {
	r := newRig(t)
	r.login("curator", "pw")
	r.multipartIngest("/cultures", "a.txt", "disk1", []byte("A"), nil)
	r.multipartIngest("/cultures", "b.txt", "disk1", []byte("B"), nil)
	// Relate b to a through metadata; the open page hot-links it.
	r.broker.Cat.AddMeta("/cultures/a.txt", types.MetaUser,
		types.AVU{Name: "related", Value: "/cultures/b.txt"})
	body, _ := r.get("/open?path=/cultures/a.txt")
	// html/template URL-escapes the query value.
	if !strings.Contains(body, `<a href="/open?path=%2fcultures%2fb.txt">`) {
		t.Errorf("related object not hot-linked:\n%s", body)
	}
	// Ordinary values stay plain text.
	r.broker.Cat.AddMeta("/cultures/a.txt", types.MetaUser,
		types.AVU{Name: "note", Value: "not a path"})
	body, _ = r.get("/open?path=/cultures/a.txt")
	if strings.Contains(body, `>not a path</a>`) {
		t.Error("plain value wrongly linked")
	}
}

func TestMoreWebOps(t *testing.T) {
	r := newRig(t)
	// Second resource for web-driven replication.
	if err := r.broker.AddPhysicalResource("admin", "disk2", types.ClassFileSystem, "memfs", memfs.New()); err != nil {
		t.Fatal(err)
	}
	r.login("curator", "pw")
	r.multipartIngest("/cultures", "f.txt", "disk1", []byte("payload"), nil)

	// Replicate via the split-window form.
	r.post("/op", url.Values{"path": {"/cultures/f.txt"}, "op": {"replicate"}, "resource": {"disk2"}})
	o, _ := r.broker.Cat.GetObject("/cultures/f.txt")
	if len(o.Replicas) != 2 {
		t.Errorf("web replicate: %+v", o.Replicas)
	}
	// Copy via the form.
	r.post("/op", url.Values{"path": {"/cultures/f.txt"}, "op": {"copy"}, "to": {"/cultures/f2.txt"}})
	if _, err := r.broker.Cat.GetObject("/cultures/f2.txt"); err != nil {
		t.Errorf("web copy: %v", err)
	}
	// Link via the form.
	r.post("/op", url.Values{"path": {"/cultures/f.txt"}, "op": {"link"}, "to": {"/cultures/ln.txt"}})
	if data, err := r.broker.Get("curator", "/cultures/ln.txt"); err != nil || string(data) != "payload" {
		t.Errorf("web link: %q, %v", data, err)
	}
	// Checkout via the form blocks others' writes.
	r.post("/op", url.Values{"path": {"/cultures/f.txt"}, "op": {"checkout"}})
	o, _ = r.broker.Cat.GetObject("/cultures/f.txt")
	if o.CheckedOutBy != "curator" {
		t.Errorf("web checkout: %+v", o.CheckedOutBy)
	}
	// rmcoll via the form.
	r.post("/mkcoll", url.Values{"parent": {"/cultures"}, "name": {"empty"}})
	r.post("/op", url.Values{"path": {"/cultures/empty"}, "op": {"rmcoll"}})
	if r.broker.Cat.CollExists("/cultures/empty") {
		t.Error("web rmcoll failed")
	}
	// Unknown op bounces with an error notice rather than a 500.
	body, code := r.post("/op", url.Values{"path": {"/cultures/f.txt"}, "op": {"explode"}})
	if code != http.StatusOK || !strings.Contains(body, "not supported") {
		t.Errorf("unknown web op: %d\n%s", code, body[:min(300, len(body))])
	}
	// Raw download of a missing object is a 404.
	if _, code := r.get("/raw?path=/cultures/ghost"); code != http.StatusNotFound {
		t.Errorf("raw missing code = %d", code)
	}
	// GET on POST-only endpoints is a 404.
	if _, code := r.get("/annotate"); code != http.StatusNotFound {
		t.Errorf("GET /annotate = %d", code)
	}
	if _, code := r.get("/mkcoll"); code != http.StatusNotFound {
		t.Errorf("GET /mkcoll = %d", code)
	}
	// Logout kills the session.
	r.get("/logout")
	if body, _ := r.get("/browse?path=/cultures"); !strings.Contains(body, "password") {
		t.Error("session should be gone after logout")
	}
}

// TestGridPhaseTable drives the /grid latency-decomposition table both
// empty (a fresh window renders the no-activity note, not a bare
// table) and populated (folded phases appear as rows with the op and
// phase names escaped into the HTML).
func TestGridPhaseTable(t *testing.T) {
	r := newRig(t)
	r.login("curator", "pw")

	resp, err := r.http.Get(r.srv.URL + "/grid")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "Latency decomposition") ||
		!strings.Contains(string(body), "no phase activity in the window") {
		t.Fatalf("fresh /grid missing the empty-state note:\n%s", body)
	}

	// Fold a decomposed span into the registry. The window diffs the
	// live counters against the oldest retained rollup, so capture the
	// empty baseline first.
	reg := r.broker.Metrics()
	reg.CaptureRollup(time.Now().Add(-time.Second))
	sp := obs.StartSpan("", "get")
	sp.Phase(obs.PhaseQueueWait, 2*time.Millisecond)
	sp.Phase(obs.PhaseStorageRead, 5*time.Millisecond)
	sp.Phase(obs.PhaseDispatch, 6*time.Millisecond)
	reg.RecordPhases("server", "get", sp.Trace, sp.Events())

	resp, err = r.http.Get(r.srv.URL + "/grid")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	page := string(body)
	for _, want := range []string{obs.PhaseQueueWait, obs.PhaseStorageRead, obs.PhaseDispatch, "server"} {
		if !strings.Contains(page, want) {
			t.Errorf("/grid phase table missing %q", want)
		}
	}
	if strings.Contains(page, "no phase activity in the window") {
		t.Error("/grid still shows the empty-state note with phases recorded")
	}
}
