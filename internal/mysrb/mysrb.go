// Package mysrb implements MySRB, "a web-based interface to the SRB
// that provides a user-friendly interface to distributed collections
// brokered by the SRB" (paper abstract). It offers the paper's three
// primary functionalities: collection and file management, metadata
// handling, and access/display of files and metadata, rendered in the
// split-window layout of Figure 1 (metadata in the top pane, collection
// listing or file contents in the bottom pane).
//
// Sessions follow the paper: each login mints a unique session key held
// as an in-memory cookie with a 60-minute maximum lifetime, and every
// request re-validates the key.
package mysrb

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/auth"
	"gosrb/internal/core"
	"gosrb/internal/mcat"
	"gosrb/internal/metadata"
	"gosrb/internal/obs"
	"gosrb/internal/types"
	"gosrb/internal/wire"
)

// SessionCookie names the in-memory session cookie.
const SessionCookie = "mysrb-session"

// App is the MySRB web application.
type App struct {
	broker *core.Broker
	authn  *auth.Authenticator
	mux    *http.ServeMux
	// slowOp holds the slow-request threshold in nanoseconds (0 =
	// disabled): any session request at least this slow gets its span
	// tree written to the log (mysrbd's -slow-op flag).
	slowOp atomic.Int64
	// gridStat, when set, sources the /grid dashboard from a federated
	// zone gather instead of the local registry alone.
	gridStat func(window time.Duration) wire.GridStatReply
	// Logger receives slow-request span trees. Replaceable for tests.
	Logger *obs.Logger
}

// New builds the application over a broker and authenticator.
func New(b *core.Broker, a *auth.Authenticator) *App {
	app := &App{
		broker: b,
		authn:  a,
		mux:    http.NewServeMux(),
		Logger: obs.NewLogger(os.Stderr, b.ServerName(), obs.LevelInfo),
	}
	app.routes()
	return app
}

// SetSlowOpThreshold enables the slow-request log: any session request
// taking at least d gets its full span tree logged (0 disables).
func (a *App) SetSlowOpThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	a.slowOp.Store(int64(d))
}

// ServeHTTP implements http.Handler.
func (a *App) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

func (a *App) routes() {
	a.mux.HandleFunc("/mySRB.html", a.handleLoginPage)
	a.mux.HandleFunc("/login", a.handleLogin)
	a.mux.HandleFunc("/logout", a.handleLogout)
	a.mux.HandleFunc("/", a.withSession("browse", a.handleBrowse))
	a.mux.HandleFunc("/browse", a.withSession("browse", a.handleBrowse))
	a.mux.HandleFunc("/open", a.withSession("open", a.handleOpen))
	a.mux.HandleFunc("/raw", a.withSession("raw", a.handleRaw))
	a.mux.HandleFunc("/mkcoll", a.withSession("mkcoll", a.handleMkColl))
	a.mux.HandleFunc("/ingest", a.withSession("ingest", a.handleIngest))
	a.mux.HandleFunc("/meta", a.withSession("meta", a.handleMeta))
	a.mux.HandleFunc("/annotate", a.withSession("annotate", a.handleAnnotate))
	a.mux.HandleFunc("/query", a.withSession("query", a.handleQuery))
	a.mux.HandleFunc("/acl", a.withSession("acl", a.handleACL))
	a.mux.HandleFunc("/op", a.withSession("op", a.handleOp))
	a.mux.HandleFunc("/edit", a.withSession("edit", a.handleEdit))
	a.mux.HandleFunc("/registerobj", a.withSession("registerobj", a.handleRegisterObj))
	a.mux.HandleFunc("/register", a.withSession("register", a.handleRegister))
	a.mux.HandleFunc("/help", a.withSession("help", a.handleHelp))
	a.mux.HandleFunc("/status", a.withSession("status", a.handleStatus))
	a.mux.HandleFunc("/usage", a.withSession("usage", a.handleUsage))
	a.mux.HandleFunc("/shards", a.withSession("shards", a.handleShards))
	a.mux.HandleFunc("/grid", a.withSession("grid", a.handleGrid))
	a.mux.HandleFunc("/incidents", a.withSession("incidents", a.handleIncidents))
	a.mux.HandleFunc("/incident", a.withSession("incident", a.handleIncidentFile))
	a.mux.HandleFunc("/peers", a.withSession("peers", a.handlePeers))
	a.mux.HandleFunc("/heat", a.withSession("heat", a.handleHeat))
}

// withSession performs the paper's "security checks on the session keys
// when validating a user request", and times the request as a web.<name>
// op so the dashboard, /metrics?window= and SLO rules see web traffic
// alongside wire ops.
func (a *App) withSession(name string, h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	op := "web." + name
	return func(w http.ResponseWriter, r *http.Request) {
		reg := a.broker.Metrics()
		sp := obs.StartSpan(obs.NewTraceID(), op)
		defer func() {
			elapsed := sp.Elapsed()
			reg.Op(op).Observe(elapsed, nil)
			sp.End(reg.Traces(), a.broker.ServerName(), r.RemoteAddr, nil)
			if thr := time.Duration(a.slowOp.Load()); thr > 0 && elapsed >= thr {
				// Outlier: log the whole span tree while the trace ring
				// still holds it, so the slow page's causes (broker
				// retries, failovers) land in the log.
				reg.Counter("web.slowops").Inc()
				var tree strings.Builder
				obs.WriteTree(&tree, obs.AssembleTree(reg.Traces().ForTrace(sp.TraceID())))
				a.Logger.Infof("slow web request %s took %s (threshold %s) trace=%s\n%s",
					op, elapsed, thr, sp.TraceID(), tree.String())
			}
		}()
		ck, err := r.Cookie(SessionCookie)
		if err != nil {
			http.Redirect(w, r, "/mySRB.html", http.StatusSeeOther)
			return
		}
		user, err := a.authn.Validate(ck.Value)
		if err != nil {
			http.Redirect(w, r, "/mySRB.html", http.StatusSeeOther)
			return
		}
		h(w, r, user)
	}
}

func (a *App) handleLoginPage(w http.ResponseWriter, r *http.Request) {
	render(w, "login", map[string]any{"Error": r.URL.Query().Get("err")})
}

func (a *App) handleLogin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Redirect(w, r, "/mySRB.html", http.StatusSeeOther)
		return
	}
	user := r.FormValue("user")
	password := r.FormValue("password")
	// Web logins prove the password locally against the same derived
	// key the wire protocol uses.
	nonce, err := auth.NewChallenge()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !a.authn.VerifyUser(user, nonce, auth.Respond(auth.DeriveKey(user, password), nonce)) {
		http.Redirect(w, r, "/mySRB.html?err=invalid+name+or+password", http.StatusSeeOther)
		return
	}
	sess, err := a.authn.NewSession(user)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// An in-memory cookie: no Expires/MaxAge, so it dies with the
	// browser; the server enforces the 60-minute limit.
	http.SetCookie(w, &http.Cookie{Name: SessionCookie, Value: sess.Key, Path: "/", HttpOnly: true})
	http.Redirect(w, r, "/browse?path=/", http.StatusSeeOther)
}

func (a *App) handleLogout(w http.ResponseWriter, r *http.Request) {
	if ck, err := r.Cookie(SessionCookie); err == nil {
		a.authn.Logout(ck.Value)
	}
	http.SetCookie(w, &http.Cookie{Name: SessionCookie, Value: "", Path: "/", MaxAge: -1})
	http.Redirect(w, r, "/mySRB.html", http.StatusSeeOther)
}

// pageData is the split-window view model.
type pageData struct {
	User      string
	Path      string
	Parent    string
	TopMeta   []types.AVU // metadata pane (top window)
	Structs   []types.StructuralAttr
	Annots    []types.Annotation
	Entries   []types.Stat // collection listing (bottom window)
	Content   string       // file contents (bottom window)
	IsHTML    bool         // content is pre-rendered HTML (SQL templates)
	Error     string
	Notice    string
	AttrNames []string
	Hits      []queryHit
	Selected  []string
	ACL       []aclRow
	Resources []types.Resource
	Methods   []metadata.Method
	DCNames   []string
	Versions  []types.Version
}

type queryHit struct {
	Path   string
	Values []string
}

type aclRow struct {
	Grantee string
	Level   string
}

func (a *App) handleBrowse(w http.ResponseWriter, r *http.Request, user string) {
	path := types.CleanPath(r.URL.Query().Get("path"))
	pd := pageData{User: user, Path: path, Parent: types.Parent(path)}
	entries, err := a.broker.List(user, path)
	if err != nil {
		pd.Error = err.Error()
	}
	pd.Entries = entries
	// Top window: collection metadata.
	if avus, err := a.broker.GetMeta(user, path, types.MetaUser); err == nil {
		pd.TopMeta = avus
	}
	pd.Structs = a.broker.Cat.Structural(path)
	if anns, err := a.broker.Cat.Annotations(path); err == nil {
		pd.Annots = anns
	}
	pd.Resources = a.broker.Cat.Resources()
	pd.Error = strings.TrimSpace(pd.Error + " " + r.URL.Query().Get("err"))
	pd.Notice = r.URL.Query().Get("ok")
	render(w, "browse", pd)
}

func (a *App) handleOpen(w http.ResponseWriter, r *http.Request, user string) {
	path := types.CleanPath(r.URL.Query().Get("path"))
	pd := pageData{User: user, Path: path, Parent: types.Parent(path)}
	// Top window: "when a user 'opens' a file, the attributes about the
	// file are displayed along with the contents of the file".
	if sys, err := a.broker.GetMeta(user, path, types.MetaSystem); err == nil {
		pd.TopMeta = append(pd.TopMeta, sys...)
	}
	for _, class := range []types.MetaClass{types.MetaUser, types.MetaType, types.MetaFile} {
		if avus, err := a.broker.GetMeta(user, path, class); err == nil {
			pd.TopMeta = append(pd.TopMeta, avus...)
		}
	}
	if anns, err := a.broker.Annotations(user, path); err == nil {
		pd.Annots = anns
	}
	if o, err := a.broker.Cat.GetObject(path); err == nil {
		pd.Versions = o.Versions
		pd.Methods = a.broker.Extractors().MethodsFor(o.DataType)
	}
	data, err := a.broker.Get(user, path)
	if err != nil {
		pd.Error = err.Error()
	} else {
		pd.Content, pd.IsHTML = renderContent(path, data)
	}
	render(w, "open", pd)
}

// renderContent decides how the bottom window shows the bytes.
func renderContent(path string, data []byte) (string, bool) {
	if strings.HasPrefix(strings.TrimSpace(string(data)), "<") {
		// SQL templates and registered HTML render inline.
		return string(data), true
	}
	if len(data) > 64*1024 {
		return fmt.Sprintf("[%d bytes; first 64 KiB shown]\n%s", len(data), data[:64*1024]), false
	}
	return string(data), false
}

func (a *App) handleRaw(w http.ResponseWriter, r *http.Request, user string) {
	path := types.CleanPath(r.URL.Query().Get("path"))
	data, err := a.broker.Get(user, path)
	if err != nil {
		http.Error(w, err.Error(), statusOf(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (a *App) handleMkColl(w http.ResponseWriter, r *http.Request, user string) {
	if r.Method != http.MethodPost {
		http.NotFound(w, r)
		return
	}
	parent := types.CleanPath(r.FormValue("parent"))
	name := r.FormValue("name")
	err := a.broker.Mkdir(user, types.Join(parent, name))
	redirectOutcome(w, r, "/browse?path="+urlEscape(parent), err, "collection created")
}

func (a *App) handleIngest(w http.ResponseWriter, r *http.Request, user string) {
	coll := types.CleanPath(r.URL.Query().Get("path"))
	if r.Method == http.MethodGet {
		pd := pageData{User: user, Path: coll, Parent: types.Parent(coll)}
		pd.Structs = a.broker.Cat.Structural(coll)
		pd.Resources = a.broker.Cat.Resources()
		pd.DCNames = metadata.DublinCoreElements
		render(w, "ingest", pd)
		return
	}
	if err := r.ParseMultipartForm(32 << 20); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	file, hdr, err := r.FormFile("file")
	if err != nil {
		redirectOutcome(w, r, "/browse?path="+urlEscape(coll), err, "")
		return
	}
	defer file.Close()
	data, err := io.ReadAll(file)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	name := r.FormValue("name")
	if name == "" {
		name = hdr.Filename
	}
	meta := collectMeta(r)
	_, err = a.broker.Ingest(user, core.IngestOpts{
		Path:      types.Join(coll, name),
		Data:      data,
		Resource:  r.FormValue("resource"),
		Container: r.FormValue("container"),
		DataType:  r.FormValue("datatype"),
		Meta:      meta,
	})
	redirectOutcome(w, r, "/browse?path="+urlEscape(coll), err, "file ingested")
}

// collectMeta lifts metadata fields from the form: meta-name-N /
// meta-value-N / meta-units-N triples plus any structural or Dublin
// Core fields (named dc:...).
func collectMeta(r *http.Request) []types.AVU {
	var out []types.AVU
	for i := 0; i < 16; i++ {
		n := r.FormValue(fmt.Sprintf("meta-name-%d", i))
		if n == "" {
			continue
		}
		out = append(out, types.AVU{
			Name:  n,
			Value: r.FormValue(fmt.Sprintf("meta-value-%d", i)),
			Units: r.FormValue(fmt.Sprintf("meta-units-%d", i)),
		})
	}
	for key, vals := range r.Form {
		if strings.HasPrefix(key, "attr:") && len(vals) > 0 && vals[0] != "" {
			out = append(out, types.AVU{Name: strings.TrimPrefix(key, "attr:"), Value: vals[0]})
		}
		if strings.HasPrefix(key, "dc:") && len(vals) > 0 && vals[0] != "" {
			out = append(out, types.AVU{Name: key, Value: vals[0]})
		}
	}
	return out
}

func (a *App) handleMeta(w http.ResponseWriter, r *http.Request, user string) {
	path := types.CleanPath(r.URL.Query().Get("path"))
	if r.Method == http.MethodGet {
		pd := pageData{User: user, Path: path, Parent: types.Parent(path)}
		if avus, err := a.broker.GetMeta(user, path, types.MetaUser); err == nil {
			pd.TopMeta = avus
		}
		pd.DCNames = metadata.DublinCoreElements
		render(w, "meta", pd)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var err error
	switch r.FormValue("action") {
	case "delete":
		_, err = a.broker.DeleteMeta(user, path, types.MetaUser, r.FormValue("name"), r.FormValue("value"))
	case "extract":
		_, err = a.broker.ExtractMeta(user, path, r.FormValue("method"), r.FormValue("from"))
	case "copy":
		err = a.broker.CopyMeta(user, r.FormValue("from"), path)
	default:
		class := types.MetaUser
		if strings.HasPrefix(r.FormValue("name"), "dc:") {
			class = types.MetaType
		}
		err = a.broker.AddMeta(user, path, class, types.AVU{
			Name:  r.FormValue("name"),
			Value: r.FormValue("value"),
			Units: r.FormValue("units"),
		})
	}
	redirectOutcome(w, r, "/open?path="+urlEscape(path), err, "metadata updated")
}

func (a *App) handleAnnotate(w http.ResponseWriter, r *http.Request, user string) {
	if r.Method != http.MethodPost {
		http.NotFound(w, r)
		return
	}
	path := types.CleanPath(r.FormValue("path"))
	err := a.broker.Annotate(user, path, types.Annotation{
		Kind: r.FormValue("kind"),
		Text: r.FormValue("text"),
	})
	redirectOutcome(w, r, "/open?path="+urlEscape(path), err, "annotation added")
}

func (a *App) handleQuery(w http.ResponseWriter, r *http.Request, user string) {
	scope := types.CleanPath(r.URL.Query().Get("path"))
	pd := pageData{User: user, Path: scope, Parent: types.Parent(scope)}
	// The drop-down holds "all the metadata names that are queryable in
	// that collection and every collection in the hierarchy under" it.
	pd.AttrNames = append(a.broker.QueryAttrNames(user, scope), mcat.SysAttrs()...)
	pd.AttrNames = append(pd.AttrNames, "annotation")
	sort.Strings(pd.AttrNames)
	if r.Method == http.MethodGet {
		render(w, "query", pd)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := mcat.Query{Scope: scope}
	var selected []string
	for i := 0; i < 8; i++ {
		attr := r.FormValue(fmt.Sprintf("attr-%d", i))
		if attr == "" {
			continue
		}
		op := r.FormValue(fmt.Sprintf("op-%d", i))
		val := r.FormValue(fmt.Sprintf("val-%d", i))
		if r.FormValue(fmt.Sprintf("show-%d", i)) != "" {
			selected = append(selected, attr)
		}
		// The fourth-column checkbox may be ticked "without using it as
		// part of any query condition": empty values add no conjunct.
		if val == "" {
			continue
		}
		q.Conds = append(q.Conds, mcat.Condition{Attr: attr, Op: op, Value: val})
	}
	q.Select = selected
	hits, err := a.broker.Query(user, q)
	if err != nil {
		pd.Error = err.Error()
	}
	pd.Selected = selected
	for _, h := range hits {
		qh := queryHit{Path: h.Path}
		for _, attr := range selected {
			qh.Values = append(qh.Values, strings.Join(h.Values[attr], "; "))
		}
		pd.Hits = append(pd.Hits, qh)
	}
	render(w, "query", pd)
}

func (a *App) handleACL(w http.ResponseWriter, r *http.Request, user string) {
	path := types.CleanPath(r.URL.Query().Get("path"))
	if r.Method == http.MethodPost {
		lvl, err := acl.ParseLevel(r.FormValue("level"))
		if err == nil {
			err = a.broker.Chmod(user, path, r.FormValue("grantee"), lvl)
		}
		redirectOutcome(w, r, "/acl?path="+urlEscape(path), err, "access updated")
		return
	}
	pd := pageData{User: user, Path: path, Parent: types.Parent(path)}
	list, err := a.broker.Cat.GetACL(path)
	if err != nil {
		pd.Error = err.Error()
	}
	for _, e := range list {
		pd.ACL = append(pd.ACL, aclRow{Grantee: e.Grantee, Level: e.Level.String()})
	}
	render(w, "acl", pd)
}

// handleOp covers the one-click data-movement operations: replicate,
// delete, move, copy, link, lock, unlock, checkout.
func (a *App) handleOp(w http.ResponseWriter, r *http.Request, user string) {
	if r.Method != http.MethodPost {
		http.NotFound(w, r)
		return
	}
	path := types.CleanPath(r.FormValue("path"))
	back := "/browse?path=" + urlEscape(types.Parent(path))
	var err error
	var notice string
	switch r.FormValue("op") {
	case "replicate":
		_, err = a.broker.Replicate(user, path, r.FormValue("resource"))
		notice = "replica created"
	case "delete":
		err = a.broker.Delete(user, path)
		notice = "deleted"
	case "rmcoll":
		err = a.broker.RmColl(user, path)
		back = "/browse?path=" + urlEscape(types.Parent(types.Parent(path)))
		notice = "collection removed"
	case "move":
		err = a.broker.Move(user, path, r.FormValue("to"))
		notice = "moved"
	case "copy":
		err = a.broker.Copy(user, path, r.FormValue("to"), r.FormValue("resource"))
		notice = "copied"
	case "link":
		err = a.broker.Link(user, path, r.FormValue("to"))
		notice = "linked"
	case "lock":
		kind := types.LockShared
		if r.FormValue("kind") == "exclusive" {
			kind = types.LockExclusive
		}
		err = a.broker.Lock(user, path, kind, time.Hour)
		notice = "locked"
	case "unlock":
		err = a.broker.Unlock(user, path)
		notice = "unlocked"
	case "checkout":
		err = a.broker.Checkout(user, path)
		notice = "checked out"
	default:
		err = types.E("op", r.FormValue("op"), types.ErrUnsupported)
	}
	redirectOutcome(w, r, back, err, notice)
}

// handleRegisterObj offers the paper's five registration kinds (§5):
// a file in place, a shadow directory, a SQL query, a URL, and a method
// object.
func (a *App) handleRegisterObj(w http.ResponseWriter, r *http.Request, user string) {
	coll := types.CleanPath(r.URL.Query().Get("path"))
	if r.Method == http.MethodGet {
		pd := pageData{User: user, Path: coll, Parent: types.Parent(coll)}
		pd.Resources = a.broker.Cat.Resources()
		render(w, "registerobj", pd)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	name := r.FormValue("name")
	target := types.Join(coll, name)
	var err error
	var notice string
	switch r.FormValue("kind") {
	case "file":
		_, err = a.broker.RegisterFile(user, target, r.FormValue("resource"), r.FormValue("physpath"), nil)
		notice = "file registered"
	case "directory":
		_, err = a.broker.RegisterDirectory(user, target, r.FormValue("resource"), r.FormValue("physpath"))
		notice = "directory registered"
	case "sql":
		template := r.FormValue("template")
		if sheet := r.FormValue("stylesheet"); sheet != "" {
			// A custom T-language style sheet overrides the built-ins.
			template = sheet
		}
		_, err = a.broker.RegisterSQL(user, target, types.SQLSpec{
			Resource: r.FormValue("resource"),
			Query:    r.FormValue("query"),
			Partial:  r.FormValue("partial") != "",
			Template: template,
		})
		notice = "SQL query registered"
	case "url":
		_, err = a.broker.RegisterURL(user, target, r.FormValue("url"))
		notice = "URL registered"
	case "method":
		_, err = a.broker.RegisterMethod(user, target, types.MethodSpec{
			Proxy: true,
			Name:  r.FormValue("command"),
			Args:  strings.Fields(r.FormValue("args")),
		})
		notice = "method registered"
	default:
		err = types.E("registerobj", r.FormValue("kind"), types.ErrInvalid)
	}
	redirectOutcome(w, r, "/browse?path="+urlEscape(coll), err, notice)
}

// editableTypes are the data types the edit facility allows, per the
// paper: "the edit facility is allowed only for a few data types".
var editableTypes = map[string]bool{
	"ascii text": true, "generic": true, "html": true, "email": true,
}

// editMaxBytes bounds the edit facility to small files.
const editMaxBytes = 256 * 1024

// handleEdit shows a textarea for a small ASCII object and reingests on
// save, keeping all metadata linked.
func (a *App) handleEdit(w http.ResponseWriter, r *http.Request, user string) {
	path := types.CleanPath(r.URL.Query().Get("path"))
	o, err := a.broker.Cat.GetObject(path)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	if !editableTypes[o.DataType] || o.Size > editMaxBytes {
		http.Error(w, "the edit facility is allowed only for small ASCII data types", http.StatusForbidden)
		return
	}
	if r.Method == http.MethodPost {
		err := a.broker.Reingest(user, path, []byte(r.FormValue("contents")))
		redirectOutcome(w, r, "/open?path="+urlEscape(path), err, "file saved")
		return
	}
	data, err := a.broker.Get(user, path)
	pd := pageData{User: user, Path: path, Parent: types.Parent(path)}
	if err != nil {
		pd.Error = err.Error()
	}
	pd.Content = string(data)
	render(w, "edit", pd)
}

// handleRegister implements the paper's user-registration function:
// administrators create accounts (name, domain, password) through the
// interface.
func (a *App) handleRegister(w http.ResponseWriter, r *http.Request, user string) {
	if !a.broker.Cat.IsAdmin(user) {
		http.Error(w, "user registration requires an administrator", http.StatusForbidden)
		return
	}
	if r.Method == http.MethodGet {
		render(w, "register", pageData{User: user, Path: "/"})
		return
	}
	name := r.FormValue("name")
	domain := r.FormValue("domain")
	password := r.FormValue("password")
	if name == "" || password == "" {
		redirectOutcome(w, r, "/register", types.E("register", name, types.ErrInvalid), "")
		return
	}
	if domain == "" {
		domain = "local"
	}
	if err := a.broker.Cat.AddUser(types.User{Name: name, Domain: domain}); err != nil {
		redirectOutcome(w, r, "/register", err, "")
		return
	}
	a.authn.Register(name, password)
	a.broker.Cat.AuditLog().Op(user, "register-user", name, true, domain)
	redirectOutcome(w, r, "/register", nil, "user "+name+" registered")
}

func (a *App) handleHelp(w http.ResponseWriter, r *http.Request, user string) {
	render(w, "help", pageData{User: user, Path: "/"})
}

// redirectOutcome redirects back with either an ok or err notice.
func redirectOutcome(w http.ResponseWriter, r *http.Request, back string, err error, ok string) {
	sep := "&"
	if !strings.Contains(back, "?") {
		sep = "?"
	}
	if err != nil {
		http.Redirect(w, r, back+sep+"err="+urlEscape(err.Error()), http.StatusSeeOther)
		return
	}
	http.Redirect(w, r, back+sep+"ok="+urlEscape(ok), http.StatusSeeOther)
}

func statusOf(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case strings.Contains(err.Error(), "permission"):
		return http.StatusForbidden
	case strings.Contains(err.Error(), "not found"):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func urlEscape(s string) string {
	r := strings.NewReplacer(" ", "+", "&", "%26", "?", "%3F", "#", "%23", "=", "%3D")
	return r.Replace(s)
}
