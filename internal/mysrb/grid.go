package mysrb

import (
	"fmt"
	"html/template"
	"math/bits"
	"net/http"
	"sort"
	"time"

	"gosrb/internal/obs"
	"gosrb/internal/wire"
)

// gridWindowDefault is the dashboard's trailing window when no ?window=
// parameter is given.
const gridWindowDefault = 5 * time.Minute

// gridStaleFraction mirrors the wire server's staleness rule: a member
// whose rollup coverage is below this fraction of the requested window
// is flagged stale.
const gridStaleFraction = 0.8

// SetGridStat supplies a federated grid-snapshot source (a wire
// server's zone gather). When unset the dashboard reports this process
// only. Call before serving.
func (a *App) SetGridStat(fn func(window time.Duration) wire.GridStatReply) { a.gridStat = fn }

// gridReply builds the dashboard's data: the federated gather when one
// is wired, otherwise a single-member snapshot of the local registry.
func (a *App) gridReply(window time.Duration) wire.GridStatReply {
	if a.gridStat != nil {
		return a.gridStat(window)
	}
	if window <= 0 {
		window = gridWindowDefault
	}
	ws := a.broker.Metrics().Window(window)
	m := wire.GridMember{Server: a.broker.ServerName(), Window: ws}
	m.Stale = ws.CoveredSeconds < gridStaleFraction*ws.WindowSeconds
	return wire.GridStatReply{
		Server:        a.broker.ServerName(),
		WindowSeconds: ws.WindowSeconds,
		Members:       []wire.GridMember{m},
		Grid:          obs.MergeWindows([]obs.WindowStats{ws}),
	}
}

// sparkGlyphs are the eight block heights a sparkline is drawn with.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// spark renders values as a unicode sparkline scaled to the series max.
func spark(vals []int64) string {
	var max int64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		return ""
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		idx := int(v * int64(len(sparkGlyphs)-1) / max)
		if v > 0 && idx == 0 {
			idx = 1 // any activity shows above the baseline
		}
		out[i] = sparkGlyphs[idx]
	}
	return string(out)
}

// latencySpark draws an op's windowed latency distribution from its
// pow-2 bucket deltas — available for every member, since the buckets
// ride the wire for grid-quantile merging.
func latencySpark(bs []obs.BucketCount) string {
	if len(bs) == 0 {
		return ""
	}
	lo, hi := -1, 0
	dense := make(map[int]int64, len(bs))
	for _, b := range bs {
		k := bits.Len64(uint64(b.UpperMicros)) - 1
		dense[k] = b.Count
		if lo == -1 || k < lo {
			lo = k
		}
		if k > hi {
			hi = k
		}
	}
	vals := make([]int64, hi-lo+1)
	for k, v := range dense {
		vals[k-lo] = v
	}
	return spark(vals)
}

// activitySparks derives per-op request-rate sparklines from the local
// rollup ring: one glyph per capture interval, newest to the right.
func (a *App) activitySparks(n int) map[string]string {
	recent := a.broker.Metrics().Rollups().Recent(n + 1)
	if len(recent) < 2 {
		return nil
	}
	last := recent[len(recent)-1]
	out := make(map[string]string, len(last.Ops))
	for op := range last.Ops {
		series := make([]int64, len(recent)-1)
		for i := 1; i < len(recent); i++ {
			d := recent[i].Ops[op].Count - recent[i-1].Ops[op].Count
			if d < 0 {
				d = 0
			}
			series[i-1] = d
		}
		if s := spark(series); s != "" {
			out[op] = s
		}
	}
	return out
}

// handleGrid renders the grid console: the merged cross-server window
// first, then one sparkline table per zone member, with unreachable and
// stale members visibly flagged rather than silently dropped.
func (a *App) handleGrid(w http.ResponseWriter, r *http.Request, user string) {
	window := gridWindowDefault
	if ws := r.URL.Query().Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d <= 0 {
			http.Error(w, "bad window duration: "+ws, http.StatusBadRequest)
			return
		}
		window = d
	}
	rep := a.gridReply(window)
	sparks := a.activitySparks(32)
	local := a.broker.ServerName()

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>mySRB grid console</title></head><body>
<h2>Grid console — via %s</h2>
<p>window: %.0fs &middot; members: %d &middot; windows: <a href="/grid?window=1m">1m</a>
<a href="/grid?window=5m">5m</a> <a href="/grid?window=30m">30m</a> <a href="/grid?window=6h">6h</a>
&middot; <a href="/status">server status</a> &middot; <a href="/browse">back to browsing</a></p>`,
		template.HTMLEscapeString(rep.Server), rep.WindowSeconds, len(rep.Members))

	fmt.Fprint(w, "<h3>Grid aggregate</h3>")
	writeGridOpsTable(w, rep.Grid, nil, false)

	fmt.Fprint(w, "<h3>Latency decomposition</h3>")
	writeGridPhaseTable(w, rep.Grid)

	for _, m := range rep.Members {
		status := ""
		switch {
		case m.Unreachable:
			status = " — UNREACHABLE"
		case m.Stale:
			status = " — stale"
		}
		fmt.Fprintf(w, "<h3>%s%s</h3>", template.HTMLEscapeString(m.Server), status)
		if m.Unreachable {
			fmt.Fprintf(w, "<p>no data: %s</p>", template.HTMLEscapeString(m.Err))
			continue
		}
		fmt.Fprintf(w, "<p>covered: %.0fs of %.0fs</p>", m.Window.CoveredSeconds, m.Window.WindowSeconds)
		if m.Server == local {
			writeGridOpsTable(w, m.Window, sparks, true)
		} else {
			writeGridOpsTable(w, m.Window, nil, false)
		}
	}
	fmt.Fprint(w, "</body></html>")
}

// writeGridPhaseTable renders the merged window's per-phase latency
// decomposition: one row per (family, op, phase) histogram, share-of-op
// computed against the op's summed phase time so a single slow phase
// stands out. Rows come from the phase.* ops RecordPhases folds in.
func writeGridPhaseTable(w http.ResponseWriter, ws obs.WindowStats) {
	rows := obs.PhaseRows(ws.Ops)
	if len(rows) == 0 {
		fmt.Fprint(w, "<p>no phase activity in the window.</p>")
		return
	}
	// Sum per (family, op) for the share column.
	totals := make(map[string]int64, len(rows))
	for _, r := range rows {
		totals[r.Family+"."+r.Op] += r.TotalMicros
	}
	fmt.Fprint(w, `<table border="1" cellpadding="3"><tr><th>side</th><th>op</th><th>phase</th><th>latency dist</th><th>count</th><th>total (&micro;s)</th><th>share</th><th>p50 (&micro;s)</th><th>p99 (&micro;s)</th></tr>`)
	for _, r := range rows {
		share := 0.0
		if t := totals[r.Family+"."+r.Op]; t > 0 {
			share = 100 * float64(r.TotalMicros) / float64(t)
		}
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%.1f%%</td><td>%.1f</td><td>%.1f</td></tr>",
			template.HTMLEscapeString(r.Family), template.HTMLEscapeString(r.Op),
			template.HTMLEscapeString(r.Phase), latencySpark(r.Buckets),
			r.Count, r.TotalMicros, share, r.P50Micros, r.P99Micros)
	}
	fmt.Fprint(w, "</table>")
}

// writeGridOpsTable renders one window's per-op rows; withActivity adds
// the rollup-ring rate sparkline column (local member only — remote
// members contribute bucket distributions, not capture history).
func writeGridOpsTable(w http.ResponseWriter, ws obs.WindowStats, sparks map[string]string, withActivity bool) {
	var ops []string
	for name := range ws.Ops {
		ops = append(ops, name)
	}
	if len(ops) == 0 {
		fmt.Fprint(w, "<p>no op activity in the window.</p>")
		return
	}
	sort.Strings(ops)
	fmt.Fprint(w, `<table border="1" cellpadding="3"><tr><th>op</th>`)
	if withActivity {
		fmt.Fprint(w, "<th>activity</th>")
	}
	fmt.Fprint(w, `<th>latency dist</th><th>count</th><th>per sec</th><th>err %</th><th>p50 (&micro;s)</th><th>p95 (&micro;s)</th><th>p99 (&micro;s)</th></tr>`)
	for _, name := range ops {
		o := ws.Ops[name]
		fmt.Fprintf(w, "<tr><td>%s</td>", template.HTMLEscapeString(name))
		if withActivity {
			fmt.Fprintf(w, "<td>%s</td>", sparks[name])
		}
		fmt.Fprintf(w, "<td>%s</td><td>%d</td><td>%.2f</td><td>%.2f</td><td>%.1f</td><td>%.1f</td><td>%.1f</td></tr>",
			latencySpark(o.Buckets), o.Count, o.PerSec, o.ErrorPct, o.P50Micros, o.P95Micros, o.P99Micros)
	}
	fmt.Fprint(w, "</table>")
}
