package mysrb

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"time"

	"gosrb/internal/mcat/shard"
)

// handleStatus renders the server status page from the same telemetry
// snapshot the srbd admin endpoint and the OpStats wire op serve: per-op
// counts and latency quantiles, per-driver byte totals, replica fan-out
// counters, audit drops and the recent trace records.
func (a *App) handleStatus(w http.ResponseWriter, r *http.Request, user string) {
	reg := a.broker.Metrics()
	reg.Gauge("audit.dropped").Set(a.broker.Cat.AuditLog().Dropped())
	s := reg.Snapshot()

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>mySRB server status</title></head><body>
<h2>Server status — %s</h2>
<p>uptime: %.0fs &middot; <a href="/usage">usage accounting</a> &middot; <a href="/shards">catalog shards</a> &middot; <a href="/browse">back to browsing</a></p>`,
		template.HTMLEscapeString(a.broker.ServerName()), s.UptimeSeconds)

	var ops []string
	for name, o := range s.Ops {
		if o.Count > 0 {
			ops = append(ops, name)
		}
	}
	if len(ops) > 0 {
		sort.Strings(ops)
		fmt.Fprint(w, `<h3>Operations</h3><table border="1" cellpadding="3">
<tr><th>op</th><th>count</th><th>errors</th><th>p50 (&micro;s)</th><th>p90 (&micro;s)</th><th>p99 (&micro;s)</th></tr>`)
		for _, name := range ops {
			o := s.Ops[name]
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%.1f</td><td>%.1f</td><td>%.1f</td></tr>",
				template.HTMLEscapeString(name), o.Count, o.Errors, o.P50Micros, o.P90Micros, o.P99Micros)
		}
		fmt.Fprint(w, "</table>")
	}

	if eng := a.broker.Repair(); eng != nil {
		st := eng.Status()
		state := "running"
		switch {
		case st.Wedged:
			state = "WEDGED"
		case st.Paused:
			state = "paused"
		case !st.Running:
			state = "stopped"
		}
		fmt.Fprintf(w, `<h3>Background repair</h3><p>state: %s &middot; workers alive: %d/%d &middot; backlog: %d`,
			template.HTMLEscapeString(state), st.WorkersAlive, st.Workers, st.Backlog)
		if st.Backlog > 0 {
			fmt.Fprintf(w, " (oldest %s)", st.OldestAge.Truncate(time.Second))
		}
		fmt.Fprintf(w, " &middot; done: %d &middot; failed: %d &middot; retries: %d</p>", st.Done, st.Failed, st.Retries)
		if len(st.Jobs) > 0 {
			fmt.Fprint(w, `<table border="1" cellpadding="3"><tr><th>job</th><th>interval</th><th>runs</th><th>errors</th><th>last error</th></tr>`)
			for _, j := range st.Jobs {
				fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%s</td></tr>",
					template.HTMLEscapeString(j.Name), j.Interval, j.Runs, j.Errors,
					template.HTMLEscapeString(j.LastErr))
			}
			fmt.Fprint(w, "</table>")
		}
	}

	var counters []string
	for name, v := range s.Counters {
		if v != 0 {
			counters = append(counters, name)
		}
	}
	for name := range s.Gauges {
		counters = append(counters, name)
	}
	if len(counters) > 0 {
		sort.Strings(counters)
		fmt.Fprint(w, `<h3>Counters</h3><table border="1" cellpadding="3"><tr><th>name</th><th>value</th></tr>`)
		for _, name := range counters {
			v, ok := s.Counters[name]
			if !ok {
				v = s.Gauges[name]
			}
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td></tr>", template.HTMLEscapeString(name), v)
		}
		fmt.Fprint(w, "</table>")
	}

	if len(s.Traces) > 0 {
		fmt.Fprint(w, `<h3>Recent traces</h3><table border="1" cellpadding="3">
<tr><th>trace</th><th>op</th><th>server</th><th>&micro;s</th><th>error</th></tr>`)
		show := s.Traces
		if len(show) > 20 {
			show = show[len(show)-20:]
		}
		for _, t := range show {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%s</td></tr>",
				template.HTMLEscapeString(t.Trace), template.HTMLEscapeString(t.Op),
				template.HTMLEscapeString(t.Server), t.Micros, template.HTMLEscapeString(t.Err))
		}
		fmt.Fprint(w, "</table>")
	}
	fmt.Fprint(w, "</body></html>")
}

// handleShards renders the catalog shard table — the browser view of
// what `srb shards` reports: per-shard role, replication position,
// staleness and entry counts. A monolithic catalog shows its single
// implicit leader shard.
func (a *App) handleShards(w http.ResponseWriter, r *http.Request, user string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>mySRB catalog shards</title></head><body>
<h2>Catalog shards — %s</h2>
<p><a href="/status">server status</a> &middot; <a href="/browse">back to browsing</a></p>`,
		template.HTMLEscapeString(a.broker.ServerName()))

	var rows []shard.Status
	if rt, ok := a.broker.Cat.(interface{ Statuses() []shard.Status }); ok {
		rows = rt.Statuses()
	} else {
		st := a.broker.Cat.Stats()
		rows = []shard.Status{{Role: string(shard.Leader),
			Objects: st.Objects, Collections: st.Collections, MetaEntries: st.MetaEntries}}
	}
	fmt.Fprint(w, `<table border="1" cellpadding="3">
<tr><th>shard</th><th>role</th><th>leader</th><th>stale</th><th>applied</th><th>head</th><th>pull fails</th><th>objects</th><th>collections</th><th>meta entries</th><th>last sync</th></tr>`)
	for _, sh := range rows {
		stale := ""
		if sh.Stale {
			stale = "STALE"
		}
		last := ""
		if !sh.LastSync.IsZero() {
			last = sh.LastSync.Format(time.RFC3339)
		}
		fmt.Fprintf(w, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td></tr>",
			sh.Shard, template.HTMLEscapeString(sh.Role), template.HTMLEscapeString(sh.Leader),
			stale, sh.Applied, sh.Head, sh.PullFails, sh.Objects, sh.Collections, sh.MetaEntries,
			template.HTMLEscapeString(last))
	}
	fmt.Fprint(w, "</table></body></html>")
}

// handleUsage renders the per-user/collection usage accounting table —
// the browser view of what `srb usage` and the admin /usage endpoint
// report: ops, errors, bytes moved and mean latency per (user,
// collection) pair, with the last trace ID as a drill-down handle.
func (a *App) handleUsage(w http.ResponseWriter, r *http.Request, user string) {
	entries := a.broker.Metrics().Usage().Snapshot()

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>mySRB usage accounting</title></head><body>
<h2>Usage accounting — %s</h2>
<p><a href="/status">server status</a> &middot; <a href="/browse">back to browsing</a></p>`,
		template.HTMLEscapeString(a.broker.ServerName()))
	if len(entries) == 0 {
		fmt.Fprint(w, "<p>No accounted operations yet.</p></body></html>")
		return
	}
	fmt.Fprint(w, `<table border="1" cellpadding="3">
<tr><th>user</th><th>collection</th><th>ops</th><th>errors</th><th>bytes in</th><th>bytes out</th><th>avg ms</th><th>last op</th><th>last trace</th></tr>`)
	for _, e := range entries {
		avgMS := float64(0)
		if e.Ops > 0 {
			avgMS = float64(e.TotalMicros) / float64(e.Ops) / 1000
		}
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%.2f</td><td>%s</td><td>%s</td></tr>",
			template.HTMLEscapeString(e.User), template.HTMLEscapeString(e.Collection),
			e.Ops, e.Errors, e.BytesIn, e.BytesOut, avgMS,
			template.HTMLEscapeString(e.LastOp), template.HTMLEscapeString(e.LastTrace))
	}
	fmt.Fprint(w, "</table></body></html>")
}
