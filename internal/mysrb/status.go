package mysrb

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"time"

	"gosrb/internal/mcat/shard"
	"gosrb/internal/obs"
)

// handleStatus renders the server status page from the same telemetry
// snapshot the srbd admin endpoint and the OpStats wire op serve: per-op
// counts and latency quantiles, per-driver byte totals, replica fan-out
// counters, audit drops and the recent trace records.
func (a *App) handleStatus(w http.ResponseWriter, r *http.Request, user string) {
	reg := a.broker.Metrics()
	reg.Gauge("audit.dropped").Set(a.broker.Cat.AuditLog().Dropped())
	s := reg.Snapshot()

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>mySRB server status</title></head><body>
<h2>Server status — %s</h2>
<p>uptime: %.0fs &middot; <a href="/usage">usage accounting</a> &middot; <a href="/shards">catalog shards</a> &middot; <a href="/heat">heat observatory</a> &middot; <a href="/browse">back to browsing</a></p>`,
		template.HTMLEscapeString(a.broker.ServerName()), s.UptimeSeconds)

	var ops []string
	for name, o := range s.Ops {
		if o.Count > 0 {
			ops = append(ops, name)
		}
	}
	if len(ops) > 0 {
		sort.Strings(ops)
		fmt.Fprint(w, `<h3>Operations</h3><table border="1" cellpadding="3">
<tr><th>op</th><th>count</th><th>errors</th><th>p50 (&micro;s)</th><th>p90 (&micro;s)</th><th>p99 (&micro;s)</th></tr>`)
		for _, name := range ops {
			o := s.Ops[name]
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%.1f</td><td>%.1f</td><td>%.1f</td></tr>",
				template.HTMLEscapeString(name), o.Count, o.Errors, o.P50Micros, o.P90Micros, o.P99Micros)
		}
		fmt.Fprint(w, "</table>")
	}

	if eng := a.broker.Repair(); eng != nil {
		st := eng.Status()
		state := "running"
		switch {
		case st.Wedged:
			state = "WEDGED"
		case st.Paused:
			state = "paused"
		case !st.Running:
			state = "stopped"
		}
		fmt.Fprintf(w, `<h3>Background repair</h3><p>state: %s &middot; workers alive: %d/%d &middot; backlog: %d`,
			template.HTMLEscapeString(state), st.WorkersAlive, st.Workers, st.Backlog)
		if st.Backlog > 0 {
			fmt.Fprintf(w, " (oldest %s)", st.OldestAge.Truncate(time.Second))
		}
		fmt.Fprintf(w, " &middot; done: %d &middot; failed: %d &middot; retries: %d</p>", st.Done, st.Failed, st.Retries)
		if len(st.Jobs) > 0 {
			fmt.Fprint(w, `<table border="1" cellpadding="3"><tr><th>job</th><th>interval</th><th>runs</th><th>errors</th><th>last error</th></tr>`)
			for _, j := range st.Jobs {
				fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%s</td></tr>",
					template.HTMLEscapeString(j.Name), j.Interval, j.Runs, j.Errors,
					template.HTMLEscapeString(j.LastErr))
			}
			fmt.Fprint(w, "</table>")
		}
	}

	var counters []string
	for name, v := range s.Counters {
		if v != 0 {
			counters = append(counters, name)
		}
	}
	for name := range s.Gauges {
		counters = append(counters, name)
	}
	if len(counters) > 0 {
		sort.Strings(counters)
		fmt.Fprint(w, `<h3>Counters</h3><table border="1" cellpadding="3"><tr><th>name</th><th>value</th></tr>`)
		for _, name := range counters {
			v, ok := s.Counters[name]
			if !ok {
				v = s.Gauges[name]
			}
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td></tr>", template.HTMLEscapeString(name), v)
		}
		fmt.Fprint(w, "</table>")
	}

	if len(s.Traces) > 0 {
		fmt.Fprint(w, `<h3>Recent traces</h3><table border="1" cellpadding="3">
<tr><th>trace</th><th>op</th><th>server</th><th>&micro;s</th><th>error</th></tr>`)
		show := s.Traces
		if len(show) > 20 {
			show = show[len(show)-20:]
		}
		for _, t := range show {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%s</td></tr>",
				template.HTMLEscapeString(t.Trace), template.HTMLEscapeString(t.Op),
				template.HTMLEscapeString(t.Server), t.Micros, template.HTMLEscapeString(t.Err))
		}
		fmt.Fprint(w, "</table>")
	}
	fmt.Fprint(w, "</body></html>")
}

// handleShards renders the catalog shard table — the browser view of
// what `srb shards` reports: per-shard role, replication position,
// staleness and entry counts. A monolithic catalog shows its single
// implicit leader shard.
func (a *App) handleShards(w http.ResponseWriter, r *http.Request, user string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>mySRB catalog shards</title></head><body>
<h2>Catalog shards — %s</h2>
<p><a href="/status">server status</a> &middot; <a href="/heat">heat observatory</a> &middot; <a href="/browse">back to browsing</a></p>`,
		template.HTMLEscapeString(a.broker.ServerName()))

	var rows []shard.Status
	if rt, ok := a.broker.Cat.(interface{ Statuses() []shard.Status }); ok {
		rows = rt.Statuses()
	} else {
		st := a.broker.Cat.Stats()
		rows = []shard.Status{{Role: string(shard.Leader),
			Objects: st.Objects, Collections: st.Collections, MetaEntries: st.MetaEntries}}
	}
	fmt.Fprint(w, `<table border="1" cellpadding="3">
<tr><th>shard</th><th>role</th><th>leader</th><th>stale</th><th>applied</th><th>head</th><th>pull fails</th><th>replag entries</th><th>replag seconds</th><th>objects</th><th>collections</th><th>meta entries</th><th>last sync</th></tr>`)
	for _, sh := range rows {
		stale := ""
		if sh.Stale {
			stale = "STALE"
		}
		last := ""
		if !sh.LastSync.IsZero() {
			last = sh.LastSync.Format(time.RFC3339)
		}
		fmt.Fprintf(w, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%.0f</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td></tr>",
			sh.Shard, template.HTMLEscapeString(sh.Role), template.HTMLEscapeString(sh.Leader),
			stale, sh.Applied, sh.Head, sh.PullFails, sh.ReplagEntries, sh.ReplagSeconds,
			sh.Objects, sh.Collections, sh.MetaEntries,
			template.HTMLEscapeString(last))
	}
	fmt.Fprint(w, "</table></body></html>")
}

// handleHeat renders the heat observatory — the browser view of what
// `srb heat` and the admin /heat endpoint report: hot-key/hot-object
// top-K tables, per-shard heat bars, replication lag, and the latest
// rebalance advisor plan.
func (a *App) handleHeat(w http.ResponseWriter, r *http.Request, user string) {
	reg := a.broker.Metrics()
	keys := reg.HeatKeys().Snapshot()
	objects := reg.HeatObjects().Snapshot()

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>mySRB heat observatory</title></head><body>
<h2>Heat observatory — %s</h2>
<p><a href="/status">server status</a> &middot; <a href="/shards">catalog shards</a> &middot; <a href="/browse">back to browsing</a></p>`,
		template.HTMLEscapeString(a.broker.ServerName()))

	var plan *shard.Plan
	if rt, ok := a.broker.Cat.(interface {
		Advise(rows []obs.HeatStat, now time.Time) shard.Plan
		LastPlan() *shard.Plan
	}); ok {
		if plan = rt.LastPlan(); plan == nil {
			p := rt.Advise(keys, time.Now())
			plan = &p
		}
	}

	if plan != nil && len(plan.Shards) > 0 {
		maxScore := float64(0)
		for _, sh := range plan.Shards {
			if sh.Score > maxScore {
				maxScore = sh.Score
			}
		}
		fmt.Fprint(w, `<h3>Shard heat</h3><table border="1" cellpadding="3">
<tr><th>shard</th><th>heat</th><th>score</th><th>hot keys</th><th>objects</th></tr>`)
		for _, sh := range plan.Shards {
			pct := 0
			if maxScore > 0 {
				pct = int(sh.Score / maxScore * 100)
			}
			fmt.Fprintf(w, `<tr><td>%d</td><td><div style="width:200px;background:#eee"><div style="width:%d%%;background:#c33;color:#fff;white-space:nowrap">&nbsp;</div></div></td><td>%.1f</td><td>%d</td><td>%d</td></tr>`,
				sh.Shard, pct, sh.Score, sh.HotKeys, sh.Objects)
		}
		fmt.Fprint(w, "</table>")
	}

	if len(keys) > 0 {
		fmt.Fprint(w, `<h3>Hot catalog keys</h3><table border="1" cellpadding="3">
<tr><th>key</th><th>count</th><th>score</th><th>bytes</th></tr>`)
		for _, k := range keys {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%.1f</td><td>%d</td></tr>",
				template.HTMLEscapeString(k.Key), k.Count, k.Score, k.Bytes)
		}
		fmt.Fprint(w, "</table>")
	}

	if len(objects) > 0 {
		fmt.Fprint(w, `<h3>Hot objects</h3><table border="1" cellpadding="3">
<tr><th>object</th><th>count</th><th>score</th><th>bytes</th></tr>`)
		for _, o := range objects {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%.1f</td><td>%d</td></tr>",
				template.HTMLEscapeString(o.Key), o.Count, o.Score, o.Bytes)
		}
		fmt.Fprint(w, "</table>")
	}

	if len(keys) == 0 && len(objects) == 0 {
		fmt.Fprint(w, "<p>No heat recorded yet.</p>")
	}

	if plan != nil {
		fmt.Fprintf(w, `<h3>Rebalance advisor</h3><p>imbalance %.2fx &rarr; %.2fx projected</p>`,
			plan.Imbalance, plan.Projected)
		if plan.Note != "" {
			fmt.Fprintf(w, "<p>%s</p>", template.HTMLEscapeString(plan.Note))
		}
		if len(plan.Moves) > 0 {
			fmt.Fprint(w, `<table border="1" cellpadding="3">
<tr><th>key</th><th>from</th><th>to</th><th>score</th><th>est keys</th><th>est bytes</th></tr>`)
			for _, m := range plan.Moves {
				fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%.1f</td><td>%d</td><td>%d</td></tr>",
					template.HTMLEscapeString(m.Key), m.From, m.To, m.Score, m.EstKeys, m.EstBytes)
			}
			fmt.Fprint(w, "</table>")
		}
	}
	fmt.Fprint(w, "</body></html>")
}

// handleUsage renders the per-user/collection usage accounting table —
// the browser view of what `srb usage` and the admin /usage endpoint
// report: ops, errors, bytes moved and mean latency per (user,
// collection) pair, with the last trace ID as a drill-down handle.
func (a *App) handleUsage(w http.ResponseWriter, r *http.Request, user string) {
	entries := a.broker.Metrics().Usage().Snapshot()

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<html><head><title>mySRB usage accounting</title></head><body>
<h2>Usage accounting — %s</h2>
<p><a href="/status">server status</a> &middot; <a href="/browse">back to browsing</a></p>`,
		template.HTMLEscapeString(a.broker.ServerName()))
	if len(entries) == 0 {
		fmt.Fprint(w, "<p>No accounted operations yet.</p></body></html>")
		return
	}
	fmt.Fprint(w, `<table border="1" cellpadding="3">
<tr><th>user</th><th>collection</th><th>ops</th><th>errors</th><th>bytes in</th><th>bytes out</th><th>avg ms</th><th>last op</th><th>last trace</th></tr>`)
	for _, e := range entries {
		avgMS := float64(0)
		if e.Ops > 0 {
			avgMS = float64(e.TotalMicros) / float64(e.Ops) / 1000
		}
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%.2f</td><td>%s</td><td>%s</td></tr>",
			template.HTMLEscapeString(e.User), template.HTMLEscapeString(e.Collection),
			e.Ops, e.Errors, e.BytesIn, e.BytesOut, avgMS,
			template.HTMLEscapeString(e.LastOp), template.HTMLEscapeString(e.LastTrace))
	}
	fmt.Fprint(w, "</table></body></html>")
}
