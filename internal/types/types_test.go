package types

import (
	"errors"
	"testing"
	"time"
)

func TestOpError(t *testing.T) {
	err := E("get", "/a/b", ErrNotFound)
	if !errors.Is(err, ErrNotFound) {
		t.Error("errors.Is should see through OpError")
	}
	var oe *OpError
	if !errors.As(err, &oe) || oe.Op != "get" || oe.Path != "/a/b" {
		t.Errorf("errors.As failed: %+v", oe)
	}
	if got := err.Error(); got != "srb: get /a/b: not found" {
		t.Errorf("Error() = %q", got)
	}
	if E("x", "y", nil) != nil {
		t.Error("E(nil) should be nil")
	}
	if got := E("login", "", ErrAuth).Error(); got != "srb: login: authentication failed" {
		t.Errorf("pathless Error() = %q", got)
	}
}

func TestLockPinSession(t *testing.T) {
	now := time.Now()
	l := Lock{Kind: LockShared, Holder: "u", Expires: now.Add(time.Hour)}
	if !l.Active(now) {
		t.Error("lock should be active before expiry")
	}
	if l.Active(now.Add(2 * time.Hour)) {
		t.Error("lock should expire")
	}
	if (Lock{}).Active(now) {
		t.Error("zero lock should be inactive")
	}
	p := Pin{Resource: "r", Expires: now.Add(time.Minute)}
	if !p.Active(now) || p.Active(now.Add(time.Hour)) {
		t.Error("pin activity wrong")
	}
	s := Session{Key: "k", Expires: now.Add(time.Minute)}
	if !s.Valid(now) || s.Valid(now.Add(time.Hour)) {
		t.Error("session validity wrong")
	}
}

func TestCleanReplicaSelection(t *testing.T) {
	o := DataObject{Replicas: []Replica{
		{Number: 0, Resource: "a", Status: ReplicaOffline},
		{Number: 1, Resource: "b", Status: ReplicaClean},
		{Number: 2, Resource: "c", Status: ReplicaClean},
	}}
	r, ok := o.CleanReplica("")
	if !ok || r.Resource != "b" {
		t.Errorf("first clean replica = %+v", r)
	}
	r, ok = o.CleanReplica("c")
	if !ok || r.Resource != "c" {
		t.Errorf("preferred replica = %+v", r)
	}
	// Preferring an offline resource falls back to any clean one.
	r, ok = o.CleanReplica("a")
	if !ok || r.Resource != "b" {
		t.Errorf("fallback replica = %+v", r)
	}
	if _, ok := (&DataObject{}).CleanReplica(""); ok {
		t.Error("no replicas should report not found")
	}
	if rr, ok := o.ReplicaByNumber(2); !ok || rr.Resource != "c" {
		t.Error("ReplicaByNumber failed")
	}
	if _, ok := o.ReplicaByNumber(9); ok {
		t.Error("missing replica number should report false")
	}
}

func TestObjectPathAndUser(t *testing.T) {
	o := DataObject{Name: "f.txt", Collection: "/home/u"}
	if o.Path() != "/home/u/f.txt" {
		t.Errorf("Path = %q", o.Path())
	}
	u := User{Name: "sekar", Domain: "sdsc"}
	if u.Qualified() != "sekar@sdsc" {
		t.Errorf("Qualified = %q", u.Qualified())
	}
	c := Collection{Path: "/a/b"}
	if c.Name() != "b" {
		t.Errorf("collection Name = %q", c.Name())
	}
}

func TestStringers(t *testing.T) {
	if ReplicaDirty.String() != "dirty" || ReplicaStatus(9).String() == "" {
		t.Error("replica status names")
	}
	if LockExclusive.String() != "exclusive" || LockKind(9).String() == "" {
		t.Error("lock kind names")
	}
	if ResourceLogical.String() != "logical" || ResourcePhysical.String() != "physical" {
		t.Error("resource kind names")
	}
	if ClassArchive.String() != "archive" || ResourceClass(9).String() == "" {
		t.Error("resource class names")
	}
	if MetaAnnotation.String() != "annotation" || MetaClass(9).String() == "" {
		t.Error("meta class names")
	}
}
