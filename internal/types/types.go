// Package types defines the shared domain vocabulary of the SRB data
// grid: data objects and their replicas, collections, storage
// resources, users, permissions, metadata, annotations, audit records,
// locks, pins and versions.
//
// The catalog (internal/mcat), the broker (internal/core), the wire
// protocol and the web interface all exchange these values, so they are
// deliberately plain data: no behaviour beyond validation, formatting
// and comparison lives here.
package types

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ObjectID identifies a data object uniquely within one MCAT.
type ObjectID int64

// ReplicaNumber distinguishes the physical copies of one data object.
// Numbers are assigned densely starting at 0 and are never reused
// within an object's lifetime.
type ReplicaNumber int

// ObjectKind classifies a data object by how its bytes are produced.
//
// The paper (§5, "Data Movement Operations") distinguishes objects
// whose bytes SRB stores and controls (ingested files) from five kinds
// of registered objects where SRB keeps only a pointer: files outside
// SRB control, shadow directories, SQL queries, URLs and method
// objects (proxy commands / proxy functions).
type ObjectKind int

const (
	// KindFile is a regular object whose replicas SRB stores and controls.
	KindFile ObjectKind = iota
	// KindRegisteredFile is a file registered in place: SRB keeps a
	// pointer to an existing physical path it does not control.
	KindRegisteredFile
	// KindShadowDir is a registered directory: the cone of files under
	// the physical directory is visible read-only through this object.
	KindShadowDir
	// KindSQL is a registered SQL query, executed at retrieval time
	// against a database resource.
	KindSQL
	// KindURL is a registered URL whose contents are fetched at
	// retrieval time and never stored.
	KindURL
	// KindMethod is a registered method object: a remote proxy command
	// or an in-server proxy function executed at access time.
	KindMethod
	// KindLink is a soft link to another object; access control of the
	// original is inherited, and chains of links collapse to the parent.
	KindLink
)

var objectKindNames = [...]string{
	KindFile:           "file",
	KindRegisteredFile: "registered-file",
	KindShadowDir:      "shadow-directory",
	KindSQL:            "sql",
	KindURL:            "url",
	KindMethod:         "method",
	KindLink:           "link",
}

// String returns the lower-case name used on the wire and in listings.
func (k ObjectKind) String() string {
	if k < 0 || int(k) >= len(objectKindNames) {
		return fmt.Sprintf("ObjectKind(%d)", int(k))
	}
	return objectKindNames[k]
}

// Registered reports whether the kind is one of the five registered
// (pointer-only) kinds, for which SRB does not control the bytes.
func (k ObjectKind) Registered() bool {
	switch k {
	case KindRegisteredFile, KindShadowDir, KindSQL, KindURL, KindMethod:
		return true
	}
	return false
}

// ReplicaStatus tracks the consistency of one physical copy.
type ReplicaStatus int

const (
	// ReplicaClean is current with respect to the object's latest write.
	ReplicaClean ReplicaStatus = iota
	// ReplicaDirty is stale: a sibling replica has newer bytes.
	ReplicaDirty
	// ReplicaOffline marks the replica's resource as unavailable; reads
	// fail over to a clean sibling.
	ReplicaOffline
)

var replicaStatusNames = [...]string{
	ReplicaClean:   "clean",
	ReplicaDirty:   "dirty",
	ReplicaOffline: "offline",
}

func (s ReplicaStatus) String() string {
	if s < 0 || int(s) >= len(replicaStatusNames) {
		return fmt.Sprintf("ReplicaStatus(%d)", int(s))
	}
	return replicaStatusNames[s]
}

// Replica describes one physical copy of a data object.
type Replica struct {
	Number       ReplicaNumber
	Resource     string // physical resource holding the bytes
	PhysicalPath string // driver-specific path within the resource
	Status       ReplicaStatus
	Size         int64
	Checksum     string // hex SHA-256 of the contents; empty if unknown
	CreatedAt    time.Time
	ModifiedAt   time.Time
	// Registered is true when the replica points at bytes SRB does not
	// control (registered objects); size and checksum may drift.
	Registered bool
}

// LockKind is the paper's two lock flavours.
type LockKind int

const (
	// LockNone means the object is unlocked.
	LockNone LockKind = iota
	// LockShared blocks writes by users other than the holder; reads of
	// data and metadata remain allowed.
	LockShared
	// LockExclusive allows no interactions with the object by other users.
	LockExclusive
)

var lockKindNames = [...]string{LockNone: "none", LockShared: "shared", LockExclusive: "exclusive"}

func (k LockKind) String() string {
	if k < 0 || int(k) >= len(lockKindNames) {
		return fmt.Sprintf("LockKind(%d)", int(k))
	}
	return lockKindNames[k]
}

// Lock is a lease-style lock on an object. A zero Lock means unlocked.
type Lock struct {
	Kind    LockKind
	Holder  string // user name
	Expires time.Time
}

// Active reports whether the lock still restricts access at time now.
func (l Lock) Active(now time.Time) bool {
	return l.Kind != LockNone && now.Before(l.Expires)
}

// Pin prevents a replica from being purged from a cache resource until
// it expires or is explicitly removed.
type Pin struct {
	Resource string
	Holder   string
	Expires  time.Time
}

// Active reports whether the pin still protects the replica at now.
func (p Pin) Active(now time.Time) bool { return now.Before(p.Expires) }

// Version is a retained earlier state of an object created by the
// checkout/checkin cycle. Versions are numbered from 1 upward.
type Version struct {
	Number    int
	Resource  string
	Path      string // physical path of the preserved copy
	Size      int64
	Checksum  string
	CreatedAt time.Time
	Comment   string
}

// SQLSpec is the payload of a KindSQL object: the (possibly partial)
// SELECT text, the database resource it runs against, and the template
// used to render results.
type SQLSpec struct {
	Resource string // database resource name
	Query    string // full or partial SELECT; partial queries are completed at retrieval
	Partial  bool
	Template string // "HTMLREL", "HTMLNEST", "XMLREL", or logical path of a T-language style sheet
}

// MethodSpec is the payload of a KindMethod object.
type MethodSpec struct {
	// Proxy is true for remote proxy commands (executables registered in
	// a server's bin directory), false for in-server proxy functions.
	Proxy bool
	// Server is the SRB server that hosts the executable or function.
	Server string
	// Name is the command or function name.
	Name string
	// Args are default command-line parameters; callers may append more
	// at invocation.
	Args []string
}

// AltSpec is one "registered replicate" of a registered object (paper
// §5): another directory, URL or SQL query declared semantically equal
// to the primary. SRB does not check the equivalence; access falls back
// through alternates in registration order.
type AltSpec struct {
	Kind ObjectKind
	// URL for KindURL alternates.
	URL string
	// SQL for KindSQL alternates.
	SQL *SQLSpec
	// Resource/PhysicalPath for registered file or directory alternates.
	Resource     string
	PhysicalPath string
}

// DataObject is a logical entry in the SRB name space. The replicas
// carry the physical locations; all other fields are catalog state.
type DataObject struct {
	ID         ObjectID
	Name       string // base name within the collection
	Collection string // logical path of the parent collection
	Kind       ObjectKind
	DataType   string // e.g. "generic", "fits image", "html", "ascii text"
	Owner      string
	Size       int64 // size of the current clean contents
	Checksum   string
	CreatedAt  time.Time
	ModifiedAt time.Time

	Replicas []Replica

	// Container is the logical path of the container the object lives
	// in, or empty. A container specification at ingestion overrides a
	// resource specification (paper §5).
	Container string
	// ContainerOffset/ContainerSize locate the bytes inside the container.
	ContainerOffset int64
	ContainerSize   int64

	// LinkTarget is the logical path of the linked-to object for KindLink.
	LinkTarget string
	// URL is the target for KindURL.
	URL string
	// SQL is the payload for KindSQL.
	SQL *SQLSpec
	// Method is the payload for KindMethod.
	Method *MethodSpec

	// Alternates are "registered replicates" of registered objects.
	Alternates []AltSpec

	Lock     Lock
	Pins     []Pin
	Versions []Version
	// CheckedOutBy names the user holding the object checked out, or "".
	CheckedOutBy string
}

// Path returns the full logical path of the object.
func (o *DataObject) Path() string { return Join(o.Collection, o.Name) }

// CleanReplica returns the first clean replica, preferring the given
// resource if it holds one, and reports whether any was found.
func (o *DataObject) CleanReplica(preferResource string) (Replica, bool) {
	if preferResource != "" {
		for _, r := range o.Replicas {
			if r.Resource == preferResource && r.Status == ReplicaClean {
				return r, true
			}
		}
	}
	for _, r := range o.Replicas {
		if r.Status == ReplicaClean {
			return r, true
		}
	}
	return Replica{}, false
}

// ReplicaByNumber returns the replica with the given number.
func (o *DataObject) ReplicaByNumber(n ReplicaNumber) (Replica, bool) {
	for _, r := range o.Replicas {
		if r.Number == n {
			return r, true
		}
	}
	return Replica{}, false
}

// Collection is a node in the logical hierarchy. Collections carry
// descriptive metadata (triplets about the collection itself) and
// structural metadata (requirements imposed on objects ingested into
// the collection); see Metadata and StructuralAttr.
type Collection struct {
	Path      string
	Owner     string
	CreatedAt time.Time
	// LinkTarget, when non-empty, makes this entry a linked
	// sub-collection pointing at another collection's path.
	LinkTarget string
}

// Name returns the base name of the collection.
func (c *Collection) Name() string { return Base(c.Path) }

// ResourceKind separates single storage systems from logical groupings.
type ResourceKind int

const (
	// ResourcePhysical is one storage system managed by one driver.
	ResourcePhysical ResourceKind = iota
	// ResourceLogical ties together two or more physical resources;
	// storing a file into it replicates synchronously into every member.
	ResourceLogical
)

func (k ResourceKind) String() string {
	switch k {
	case ResourcePhysical:
		return "physical"
	case ResourceLogical:
		return "logical"
	default:
		return fmt.Sprintf("ResourceKind(%d)", int(k))
	}
}

// ResourceClass hints at the latency/persistence profile of a physical
// resource; replica selection and cache management consult it.
type ResourceClass int

const (
	// ClassCache is low-latency, purgeable storage (memory, local disk).
	ClassCache ResourceClass = iota
	// ClassFileSystem is an ordinary file system.
	ClassFileSystem
	// ClassArchive is a high-latency archival system (tape library).
	ClassArchive
	// ClassDatabase is a database resource holding LOBs and tables.
	ClassDatabase
)

var resourceClassNames = [...]string{
	ClassCache:      "cache",
	ClassFileSystem: "filesystem",
	ClassArchive:    "archive",
	ClassDatabase:   "database",
}

func (c ResourceClass) String() string {
	if c < 0 || int(c) >= len(resourceClassNames) {
		return fmt.Sprintf("ResourceClass(%d)", int(c))
	}
	return resourceClassNames[c]
}

// Resource describes a storage resource registered in the catalog.
type Resource struct {
	Name   string
	Kind   ResourceKind
	Class  ResourceClass
	Driver string // driver type: "memfs", "posixfs", "archivefs", "dbfs", "urlfs"
	// Server names the SRB server that owns (directly mounts) this
	// resource; requests from other servers federate to it.
	Server string
	// Members lists the physical member resources of a logical resource,
	// in replica-creation order.
	Members []string
	// Online is false while the resource is unavailable; reads fail over.
	Online bool
	// ReplPolicy is the replication policy of a logical resource:
	// "" or "sync" writes every member synchronously; "async:k" lands k
	// replicas on the write path and queues the remaining fan-out as
	// background repair tasks. Ignored for physical resources.
	ReplPolicy string `json:",omitempty"`
	// CreatedAt records registration time.
	CreatedAt time.Time
}

// ParseReplPolicy validates a replication policy string and returns the
// synchronous replica count k for "async:k" (async=true) or k=0 for
// the synchronous default ("" or "sync", async=false).
func ParseReplPolicy(p string) (k int, async bool, err error) {
	switch {
	case p == "" || p == "sync":
		return 0, false, nil
	case strings.HasPrefix(p, "async:"):
		n, convErr := strconv.Atoi(strings.TrimPrefix(p, "async:"))
		if convErr != nil || n < 1 {
			return 0, false, E("replpolicy", p, ErrInvalid)
		}
		return n, true, nil
	default:
		return 0, false, E("replpolicy", p, ErrInvalid)
	}
}

// RepairTask is one unit of background maintenance work: bring the
// replica of Path on Resource back in line with the catalog (write the
// missing bytes of an async fan-out, or rewrite a divergent replica
// found by the scrubber). Tasks are deduplicated by Key and persisted
// through the MCAT journal so the queue survives a daemon restart.
type RepairTask struct {
	// Key deduplicates the queue: Path + "|" + Resource.
	Key      string
	Path     string
	Resource string
	// Kind is "replicate" (async fan-out completion) or "repair"
	// (scrub-detected divergence).
	Kind string
	// Reason records what enqueued the task, for operators.
	Reason string `json:",omitempty"`
	// Enqueued is when the task first entered the queue.
	Enqueued time.Time
	// Attempts counts executions so far (in-memory progress; persisted
	// attempts restart at the journaled value after a crash).
	Attempts int `json:",omitempty"`
}

// RepairKey builds the canonical dedup key for a (path, resource) pair.
func RepairKey(path, resource string) string { return CleanPath(path) + "|" + resource }

// ScrubReport summarises one anti-entropy pass: how many objects were
// examined, how many replicas were re-hashed, what diverged and what
// was done about it.
type ScrubReport struct {
	// Objects is the number of file objects examined.
	Objects int
	// Scanned is the number of replicas whose bytes were re-hashed.
	Scanned int
	// Corrupt is the number of replicas whose bytes diverged from the
	// catalog checksum (or could not be read) and were marked dirty.
	Corrupt int
	// Repaired is the number of replicas rewritten clean from a
	// verified source during this pass.
	Repaired int
	// Replicated is the number of missing replicas recreated for
	// under-replicated objects.
	Replicated int
	// Enqueued is the number of repair tasks deferred to the queue
	// (target offline, breaker open, write failed).
	Enqueued int
	// Skipped is the number of replicas not examined (offline resource,
	// open breaker, unmounted driver, registered bytes).
	Skipped int
}

// Add accumulates another report into r.
func (r *ScrubReport) Add(o ScrubReport) {
	r.Objects += o.Objects
	r.Scanned += o.Scanned
	r.Corrupt += o.Corrupt
	r.Repaired += o.Repaired
	r.Replicated += o.Replicated
	r.Enqueued += o.Enqueued
	r.Skipped += o.Skipped
}

// ReplicaVerdict is one replica's result from an on-demand checksum
// verification (`srb checksum`): the catalog's view of the replica and
// whether its stored bytes actually hash to the catalog checksum.
type ReplicaVerdict struct {
	Number   int
	Resource string
	// Status is the catalog replica status ("clean", "dirty", "offline").
	Status string
	// Verdict is the byte-level result: "ok", "corrupt", "unreadable",
	// "offline" (resource unavailable) or "unchecked" (registered bytes).
	Verdict string
	Detail  string `json:",omitempty"`
}

// User is a registered SRB user within a domain.
type User struct {
	Name      string
	Domain    string // administrative domain, e.g. "sdsc", "caltech"
	CreatedAt time.Time
	// Admin users may register resources, users and proxy commands.
	Admin bool
}

// Qualified returns the user's fully qualified name, name@domain.
func (u User) Qualified() string { return u.Name + "@" + u.Domain }

// Group is a named set of users used in access control.
type Group struct {
	Name    string
	Members []string // user names
}

// AVU is one metadata triplet: attribute name, value and units.
// The paper: "metadata ... are made of name, value and units triplets".
type AVU struct {
	Name  string
	Value string
	Units string
}

// MetaClass is the paper's five metadata classes (§5, Metadata
// Operations).
type MetaClass int

const (
	// MetaSystem is created and maintained by SRB itself (size, owner,
	// timestamps, replica info); viewable and queryable, not writable.
	MetaSystem MetaClass = iota
	// MetaUser is free-form user-defined triplets.
	MetaUser
	// MetaType is type-oriented (domain-oriented) metadata: predefined
	// element sets such as Dublin Core, associated via data type.
	MetaType
	// MetaFile is file-based metadata: another SRB object carrying
	// triplets for this object; view-only, not queryable.
	MetaFile
	// MetaAnnotation is annotations and commentary: free-form notes,
	// ratings, errata; writable by any user with read permission.
	MetaAnnotation
)

var metaClassNames = [...]string{
	MetaSystem:     "system",
	MetaUser:       "user",
	MetaType:       "type",
	MetaFile:       "file",
	MetaAnnotation: "annotation",
}

func (c MetaClass) String() string {
	if c < 0 || int(c) >= len(metaClassNames) {
		return fmt.Sprintf("MetaClass(%d)", int(c))
	}
	return metaClassNames[c]
}

// StructuralAttr is structural metadata attached to a collection: a
// requirement or suggestion for objects ingested into it, with optional
// default value(s) and a mandatory flag (paper §5).
type StructuralAttr struct {
	Name string
	// Defaults holds zero defaults (empty), one default, or a reserved
	// vocabulary that appears as a drop-down list in MySRB.
	Defaults []string
	// Comment explains the attribute and its requirements to ingestors.
	Comment string
	// Mandatory requires ingestors to provide a value.
	Mandatory bool
	Units     string
}

// Annotation is free-form commentary on an object or collection. Any
// user with read permission may add one.
type Annotation struct {
	Author string
	// Kind classifies the annotation: "comment", "rating", "errata",
	// "question", "answer", "memo", ...
	Kind string
	// Location optionally anchors the annotation within the object.
	Location  string
	Text      string
	CreatedAt time.Time
}

// AuditRecord is one entry in the audit trail.
type AuditRecord struct {
	Time   time.Time
	User   string
	Op     string // operation name, e.g. "get", "ingest", "delete-replica"
	Target string // logical path or resource/user name acted upon
	Detail string
	OK     bool
	// Trace is the request trace ID that caused this record, when the
	// operation ran under one — the join key between the audit trail
	// and the span-tree trace/usage accounting streams.
	Trace string `json:",omitempty"`
}

// Session is an authenticated session key with a bounded lifetime.
// MySRB stores the key as an in-memory cookie; the paper sets the
// maximum time limit at 60 minutes.
type Session struct {
	Key     string
	User    string
	Created time.Time
	Expires time.Time
}

// Valid reports whether the session may still be used at time now.
func (s Session) Valid(now time.Time) bool { return now.Before(s.Expires) }

// Stat is a lightweight listing entry for collections and objects.
type Stat struct {
	Path       string
	IsCollect  bool
	Kind       ObjectKind
	DataType   string
	Owner      string
	Size       int64
	ModifiedAt time.Time
	Replicas   int
	Container  string
}
