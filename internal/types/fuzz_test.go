package types

import (
	"strings"
	"testing"
)

// FuzzPathOps ensures the logical-path helpers uphold their contracts
// on arbitrary input: cleaned paths are absolute and idempotent, and
// the Parent/Base/Join relations hold.
func FuzzPathOps(f *testing.F) {
	f.Add("/a/b/c", "name")
	f.Add("", "..")
	f.Add("//..//x", "y/z")
	f.Fuzz(func(t *testing.T, p, name string) {
		c := CleanPath(p)
		if !strings.HasPrefix(c, "/") {
			t.Fatalf("CleanPath(%q) = %q not absolute", p, c)
		}
		if CleanPath(c) != c {
			t.Fatalf("CleanPath not idempotent on %q", p)
		}
		for _, a := range Ancestors(c) {
			if !WithinOrEqual(a, c) {
				t.Fatalf("ancestor %q not above %q", a, c)
			}
		}
		if ValidName(name) && !strings.Contains(name, ".") {
			j := Join(c, name)
			if Parent(j) != c || Base(j) != name {
				t.Fatalf("Join/Parent/Base mismatch: %q + %q -> %q", c, name, j)
			}
		}
	})
}
