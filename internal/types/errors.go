package types

import (
	"errors"
	"fmt"
)

// Sentinel errors shared across the grid. Wrap them with OpError to add
// operation and path context; callers test with errors.Is.
var (
	// ErrNotFound reports a missing object, collection, resource or user.
	ErrNotFound = errors.New("not found")
	// ErrExists reports a name collision in the logical name space.
	ErrExists = errors.New("already exists")
	// ErrPermission reports an access-control denial.
	ErrPermission = errors.New("permission denied")
	// ErrLocked reports an operation blocked by an active lock or checkout.
	ErrLocked = errors.New("locked")
	// ErrOffline reports that no online resource could serve the request.
	ErrOffline = errors.New("resource offline")
	// ErrInvalid reports a malformed argument (bad path, bad kind, ...).
	ErrInvalid = errors.New("invalid argument")
	// ErrNotEmpty reports deletion of a non-empty collection or container.
	ErrNotEmpty = errors.New("not empty")
	// ErrUnsupported reports an operation the object kind does not allow,
	// e.g. replicating a file inside a registered directory.
	ErrUnsupported = errors.New("operation not supported for this object kind")
	// ErrAuth reports an authentication failure (bad credential, expired
	// session, unknown user).
	ErrAuth = errors.New("authentication failed")
	// ErrMandatoryMeta reports ingestion missing a mandatory structural
	// attribute required by the target collection.
	ErrMandatoryMeta = errors.New("mandatory metadata missing")
	// ErrTimeout reports a request that exceeded its deadline — the
	// budget carried in wire.Request and enforced at dispatch and on
	// federation hops.
	ErrTimeout = errors.New("deadline exceeded")
	// ErrReadOnly reports a mutation sent to a follower replica of a
	// catalog shard; the message names the leader to retry against.
	ErrReadOnly = errors.New("read-only replica")
)

// OpError carries the failing operation and logical path along with the
// underlying cause, in the style of os.PathError.
type OpError struct {
	Op   string
	Path string
	Err  error
}

// Error formats as "op path: cause".
func (e *OpError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("srb: %s: %v", e.Op, e.Err)
	}
	return fmt.Sprintf("srb: %s %s: %v", e.Op, e.Path, e.Err)
}

// Unwrap exposes the cause to errors.Is and errors.As.
func (e *OpError) Unwrap() error { return e.Err }

// E wraps err with operation and path context. It returns nil when err
// is nil so call sites can wrap unconditionally.
func E(op, path string, err error) error {
	if err == nil {
		return nil
	}
	return &OpError{Op: op, Path: path, Err: err}
}
