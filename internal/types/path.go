package types

import (
	gopath "path"
	"strings"
)

// Logical paths form the SRB name space. They are slash-separated,
// always absolute, and "/" is the root collection. These helpers keep
// every component of the system agreeing on normalisation.

// CleanPath normalises a logical path: forces a leading slash, applies
// lexical cleaning, and strips any trailing slash except on the root.
func CleanPath(p string) string {
	if p == "" {
		return "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	p = gopath.Clean(p)
	return p
}

// Join joins path elements into a cleaned logical path.
func Join(elem ...string) string {
	return CleanPath(gopath.Join(elem...))
}

// Base returns the last element of the logical path; the root yields "/".
func Base(p string) string { return gopath.Base(CleanPath(p)) }

// Parent returns the parent collection of p; the root is its own parent.
func Parent(p string) string { return gopath.Dir(CleanPath(p)) }

// IsRoot reports whether p is the root collection.
func IsRoot(p string) bool { return CleanPath(p) == "/" }

// Within reports whether path p lies strictly inside collection c
// (p != c and p has c as an ancestor).
func Within(c, p string) bool {
	c, p = CleanPath(c), CleanPath(p)
	if c == p {
		return false
	}
	if c == "/" {
		return true
	}
	return strings.HasPrefix(p, c+"/")
}

// WithinOrEqual reports whether p equals c or lies inside it.
func WithinOrEqual(c, p string) bool {
	return CleanPath(c) == CleanPath(p) || Within(c, p)
}

// Ancestors returns every ancestor collection of p from the root down
// to (and excluding) p itself. For "/a/b/c" it returns
// ["/", "/a", "/a/b"]. The root has no ancestors.
func Ancestors(p string) []string {
	p = CleanPath(p)
	if p == "/" {
		return nil
	}
	var out []string
	out = append(out, "/")
	parts := strings.Split(strings.TrimPrefix(p, "/"), "/")
	cur := ""
	for _, part := range parts[:len(parts)-1] {
		cur = cur + "/" + part
		out = append(out, cur)
	}
	return out
}

// ValidName reports whether s is usable as an object or collection base
// name: non-empty, no slash, and not "." or "..".
func ValidName(s string) bool {
	if s == "" || s == "." || s == ".." {
		return false
	}
	return !strings.ContainsAny(s, "/\x00")
}

// Rebase rewrites path p, which must lie within (or equal) from, to the
// corresponding path under to. It is the primitive behind recursive
// move and copy: Rebase("/a", "/x", "/a/b/c") == "/x/b/c".
// If p is outside from, p is returned unchanged.
func Rebase(from, to, p string) string {
	from, to, p = CleanPath(from), CleanPath(to), CleanPath(p)
	if p == from {
		return to
	}
	if !Within(from, p) {
		return p
	}
	suffix := strings.TrimPrefix(p, strings.TrimSuffix(from, "/")+"/")
	return Join(to, suffix)
}

// Depth returns the number of components below the root: Depth("/")==0,
// Depth("/a/b")==2.
func Depth(p string) int {
	p = CleanPath(p)
	if p == "/" {
		return 0
	}
	return strings.Count(p, "/")
}
