package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCleanPath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "/"},
		{"/", "/"},
		{"//", "/"},
		{"a", "/a"},
		{"/a/", "/a"},
		{"/a//b", "/a/b"},
		{"/a/./b", "/a/b"},
		{"/a/b/../c", "/a/c"},
		{"/../a", "/a"},
		{"a/b/c", "/a/b/c"},
	}
	for _, c := range cases {
		if got := CleanPath(c.in); got != c.want {
			t.Errorf("CleanPath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestJoinBaseParent(t *testing.T) {
	if got := Join("/a", "b", "c"); got != "/a/b/c" {
		t.Errorf("Join = %q", got)
	}
	if got := Join("", "x"); got != "/x" {
		t.Errorf("Join empty = %q", got)
	}
	if got := Base("/a/b"); got != "b" {
		t.Errorf("Base = %q", got)
	}
	if got := Base("/"); got != "/" {
		t.Errorf("Base root = %q", got)
	}
	if got := Parent("/a/b"); got != "/a" {
		t.Errorf("Parent = %q", got)
	}
	if got := Parent("/a"); got != "/" {
		t.Errorf("Parent top = %q", got)
	}
	if got := Parent("/"); got != "/" {
		t.Errorf("Parent root = %q", got)
	}
}

func TestWithin(t *testing.T) {
	cases := []struct {
		c, p string
		want bool
	}{
		{"/", "/a", true},
		{"/", "/", false},
		{"/a", "/a", false},
		{"/a", "/a/b", true},
		{"/a", "/ab", false},
		{"/a/b", "/a/b/c/d", true},
		{"/a/b", "/a", false},
	}
	for _, c := range cases {
		if got := Within(c.c, c.p); got != c.want {
			t.Errorf("Within(%q, %q) = %v, want %v", c.c, c.p, got, c.want)
		}
	}
	if !WithinOrEqual("/a", "/a") {
		t.Error("WithinOrEqual same path should be true")
	}
	if WithinOrEqual("/a", "/b") {
		t.Error("WithinOrEqual sibling should be false")
	}
}

func TestAncestors(t *testing.T) {
	got := Ancestors("/a/b/c")
	want := []string{"/", "/a", "/a/b"}
	if len(got) != len(want) {
		t.Fatalf("Ancestors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Ancestors[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if a := Ancestors("/"); a != nil {
		t.Errorf("Ancestors(/) = %v, want nil", a)
	}
	if a := Ancestors("/top"); len(a) != 1 || a[0] != "/" {
		t.Errorf("Ancestors(/top) = %v", a)
	}
}

func TestValidName(t *testing.T) {
	for _, bad := range []string{"", ".", "..", "a/b", "a\x00b"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true, want false", bad)
		}
	}
	for _, good := range []string{"a", "file.txt", "with space", "..."} {
		if !ValidName(good) {
			t.Errorf("ValidName(%q) = false, want true", good)
		}
	}
}

func TestRebase(t *testing.T) {
	cases := []struct{ from, to, p, want string }{
		{"/a", "/x", "/a/b/c", "/x/b/c"},
		{"/a", "/x", "/a", "/x"},
		{"/a", "/x", "/other", "/other"},
		{"/", "/x", "/a", "/x/a"},
		{"/a/b", "/a/c", "/a/b/f.txt", "/a/c/f.txt"},
	}
	for _, c := range cases {
		if got := Rebase(c.from, c.to, c.p); got != c.want {
			t.Errorf("Rebase(%q,%q,%q) = %q, want %q", c.from, c.to, c.p, got, c.want)
		}
	}
}

func TestDepth(t *testing.T) {
	if Depth("/") != 0 || Depth("/a") != 1 || Depth("/a/b/c") != 3 {
		t.Errorf("Depth wrong: %d %d %d", Depth("/"), Depth("/a"), Depth("/a/b/c"))
	}
}

// Property: CleanPath is idempotent and always yields an absolute path.
func TestCleanPathProperties(t *testing.T) {
	f := func(s string) bool {
		c := CleanPath(s)
		return strings.HasPrefix(c, "/") && CleanPath(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for valid names, Parent(Join(c, n)) round-trips back to the
// cleaned collection and Base recovers the name.
func TestJoinRoundTrip(t *testing.T) {
	f := func(coll, name string) bool {
		if !ValidName(name) || strings.Contains(name, ".") {
			return true // skip names Clean could rewrite
		}
		c := CleanPath(coll)
		p := Join(c, name)
		return Parent(p) == c && Base(p) == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Within(c, p) implies Rebase(c, c, p) == p (identity rebase).
func TestRebaseIdentity(t *testing.T) {
	f := func(c, p string) bool {
		cc, pp := CleanPath(c), CleanPath(p)
		return Rebase(cc, cc, pp) == pp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObjectKindString(t *testing.T) {
	if KindFile.String() != "file" || KindSQL.String() != "sql" {
		t.Error("kind names wrong")
	}
	if !KindURL.Registered() || KindFile.Registered() || KindLink.Registered() {
		t.Error("Registered() wrong")
	}
	if got := ObjectKind(99).String(); got != "ObjectKind(99)" {
		t.Errorf("out-of-range kind = %q", got)
	}
}
