// Package faultnet is the grid's fault-injection layer, extending the
// simnet idea (shaped links, injectable sleeps) from latency to
// failure. It wraps storage drivers and net.Conns with scriptable
// faults — error-after-N-ops, partial writes, connection drops
// mid-frame, latency spikes, a per-target kill switch — all driven by
// one seeded RNG so every chaos test replays exactly.
//
// An Injector owns named Targets ("resource.disk1", "peer.srb2");
// faults are armed on the Target and apply to everything wrapped under
// that name, including connections already in flight — Kill making
// established conns die on their next I/O is what "peer crashed
// mid-proxy" looks like to the survivor.
package faultnet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"gosrb/internal/simnet"
	"gosrb/internal/storage"
	"gosrb/internal/types"
)

// ErrInjected marks a manufactured fault (partial write, dropped conn)
// so tests can tell scripted failures from real ones.
var ErrInjected = errors.New("injected fault")

// Injector owns the fault script: named targets plus the shared seeded
// RNG and sleep hook.
type Injector struct {
	mu      sync.Mutex
	rng     *rand.Rand
	sleep   simnet.Clock
	targets map[string]*Target
}

// New returns an injector whose probabilistic faults (latency spikes)
// draw from a fixed-seed RNG: same seed, same script, same run.
func New(seed int64) *Injector {
	return &Injector{
		rng:     rand.New(rand.NewSource(seed)),
		sleep:   time.Sleep,
		targets: make(map[string]*Target),
	}
}

// SetSleep overrides how latency spikes wait (tests count simulated
// time instead of spending real time).
func (in *Injector) SetSleep(sleep simnet.Clock) {
	in.mu.Lock()
	in.sleep = sleep
	in.mu.Unlock()
}

// Target returns (creating if absent) the named fault target.
func (in *Injector) Target(name string) *Target {
	in.mu.Lock()
	defer in.mu.Unlock()
	t, ok := in.targets[name]
	if !ok {
		t = &Target{in: in, name: name, failOps: -1, writeBudget: -1, connBudget: -1}
		in.targets[name] = t
	}
	return t
}

// roll returns true with probability p, drawn from the seeded RNG.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	v := in.rng.Float64()
	in.mu.Unlock()
	return v < p
}

func (in *Injector) wait(d time.Duration) {
	in.mu.Lock()
	sleep := in.sleep
	in.mu.Unlock()
	sleep(d)
}

// Target is one named fault point. Arm faults here; they apply to every
// driver and conn wrapped under this name, current and future.
type Target struct {
	in   *Injector
	name string

	mu          sync.Mutex
	killed      bool
	failOps     int64 // ops to allow before failErr; -1 = disabled
	failErr     error
	writeBudget int64 // driver bytes writable before partial-write error; -1 = disabled
	connBudget  int64 // conn bytes transferable before drop; -1 = disabled
	spike       time.Duration
	spikeProb   float64
	ops         int64

	// inner is the storage driver this target wraps (set by
	// WrapDriver), kept so CorruptAtRest can reach the stored bytes
	// without passing through the fault gates.
	inner storage.Driver
}

// Kill flips the kill switch: every operation — including I/O on
// already-open handles and established connections — fails until
// Revive.
func (t *Target) Kill() {
	t.mu.Lock()
	t.killed = true
	t.mu.Unlock()
}

// Revive clears the kill switch.
func (t *Target) Revive() {
	t.mu.Lock()
	t.killed = false
	t.mu.Unlock()
}

// FailAfterOps lets the next n driver operations succeed, then fails
// every one after that with err until Clear.
func (t *Target) FailAfterOps(n int64, err error) {
	t.mu.Lock()
	t.failOps, t.failErr = n, err
	t.mu.Unlock()
}

// PartialWriteAfter lets wrapped writers accept n more bytes in total,
// then truncates the crossing write and fails it with ErrInjected.
func (t *Target) PartialWriteAfter(n int64) {
	t.mu.Lock()
	t.writeBudget = n
	t.mu.Unlock()
}

// DropAfterBytes lets wrapped conns move n more bytes in total (both
// directions), then closes them mid-frame with a transport error.
func (t *Target) DropAfterBytes(n int64) {
	t.mu.Lock()
	t.connBudget = n
	t.mu.Unlock()
}

// SpikeLatency makes each operation stall for d with probability prob,
// decided by the injector's seeded RNG.
func (t *Target) SpikeLatency(d time.Duration, prob float64) {
	t.mu.Lock()
	t.spike, t.spikeProb = d, prob
	t.mu.Unlock()
}

// Clear disarms every fault on the target.
func (t *Target) Clear() {
	t.mu.Lock()
	t.killed = false
	t.failOps, t.failErr = -1, nil
	t.writeBudget = -1
	t.connBudget = -1
	t.spike, t.spikeProb = 0, 0
	t.mu.Unlock()
}

// Ops returns how many driver operations the target has seen.
func (t *Target) Ops() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ops
}

// killErr is the scripted "target is down" failure: ErrOffline so the
// broker and retry layer treat it like any dead resource or peer.
func (t *Target) killErr(op, path string) error {
	return types.E(op, path, fmt.Errorf("faultnet: %s killed: %w", t.name, types.ErrOffline))
}

// dropErr is the scripted transport failure: wraps
// io.ErrUnexpectedEOF so resilience.Transport classifies it.
func (t *Target) dropErr() error {
	return fmt.Errorf("faultnet: %s dropped: %w", t.name, io.ErrUnexpectedEOF)
}

// before gates one driver operation: latency spike, kill switch, then
// the error-after-N-ops script.
func (t *Target) before(op, path string) error {
	t.mu.Lock()
	t.ops++
	killed := t.killed
	var err error
	if !killed && t.failErr != nil {
		if t.failOps > 0 {
			t.failOps--
		} else {
			err = t.failErr
		}
	}
	spike, prob := t.spike, t.spikeProb
	t.mu.Unlock()
	if spike > 0 && t.in.roll(prob) {
		t.in.wait(spike)
	}
	if killed {
		return t.killErr(op, path)
	}
	return err
}

// ioGate rejects I/O on open handles once the target is killed.
func (t *Target) ioGate(op, path string) error {
	t.mu.Lock()
	killed := t.killed
	t.mu.Unlock()
	if killed {
		return t.killErr(op, path)
	}
	return nil
}

// takeWrite charges n bytes against the partial-write budget and
// returns how many may actually be written, with ErrInjected once the
// budget is crossed.
func (t *Target) takeWrite(n int) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.writeBudget < 0 || int64(n) <= t.writeBudget {
		if t.writeBudget >= 0 {
			t.writeBudget -= int64(n)
		}
		return n, nil
	}
	allowed := int(t.writeBudget)
	t.writeBudget = 0
	return allowed, fmt.Errorf("faultnet: %s partial write after %d bytes: %w", t.name, allowed, ErrInjected)
}

// takeConn charges n bytes against the connection budget; a non-nil
// error means the conn must drop after moving allowed bytes.
func (t *Target) takeConn(n int) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.connBudget < 0 || int64(n) <= t.connBudget {
		if t.connBudget >= 0 {
			t.connBudget -= int64(n)
		}
		return n, nil
	}
	allowed := int(t.connBudget)
	t.connBudget = 0
	return allowed, t.dropErr()
}

// connGate rejects conn I/O once the target is killed, with the same
// spike behaviour as driver ops.
func (t *Target) connGate() error {
	t.mu.Lock()
	killed := t.killed
	spike, prob := t.spike, t.spikeProb
	t.mu.Unlock()
	if spike > 0 && t.in.roll(prob) {
		t.in.wait(spike)
	}
	if killed {
		return t.dropErr()
	}
	return nil
}

// WrapDriver returns a driver whose every operation consults the named
// target's fault script before reaching inner.
func (in *Injector) WrapDriver(target string, inner storage.Driver) storage.Driver {
	t := in.Target(target)
	t.mu.Lock()
	t.inner = inner
	t.mu.Unlock()
	return &faultDriver{inner: inner, t: t}
}

// CorruptAtRest silently flips one byte of the stored file at path on
// the wrapped driver: the write goes straight to the inner driver
// (bypassing kill switches and budgets) and no catalog row changes, so
// only a byte-level re-hash — the scrubber, `srb checksum` — can
// notice. offset is taken modulo the file length.
func (t *Target) CorruptAtRest(path string, offset int64) error {
	t.mu.Lock()
	inner := t.inner
	t.mu.Unlock()
	if inner == nil {
		return types.E("corrupt", t.name, types.ErrUnsupported)
	}
	data, err := storage.ReadAll(inner, path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return types.E("corrupt", path, types.ErrInvalid)
	}
	off := offset % int64(len(data))
	if off < 0 {
		off += int64(len(data))
	}
	data[off] ^= 0xFF
	return storage.WriteAll(inner, path, data)
}

type faultDriver struct {
	inner storage.Driver
	t     *Target
}

func (d *faultDriver) Create(path string) (storage.WriteFile, error) {
	if err := d.t.before("create", path); err != nil {
		return nil, err
	}
	w, err := d.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultWriter{inner: w, t: d.t, path: path}, nil
}

func (d *faultDriver) OpenAppend(path string) (storage.WriteFile, error) {
	if err := d.t.before("append", path); err != nil {
		return nil, err
	}
	w, err := d.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultWriter{inner: w, t: d.t, path: path}, nil
}

func (d *faultDriver) Open(path string) (storage.ReadFile, error) {
	if err := d.t.before("open", path); err != nil {
		return nil, err
	}
	r, err := d.inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultReader{inner: r, t: d.t, path: path}, nil
}

func (d *faultDriver) Stat(path string) (storage.FileInfo, error) {
	if err := d.t.before("stat", path); err != nil {
		return storage.FileInfo{}, err
	}
	return d.inner.Stat(path)
}

func (d *faultDriver) Remove(path string) error {
	if err := d.t.before("remove", path); err != nil {
		return err
	}
	return d.inner.Remove(path)
}

func (d *faultDriver) Rename(oldPath, newPath string) error {
	if err := d.t.before("rename", oldPath); err != nil {
		return err
	}
	return d.inner.Rename(oldPath, newPath)
}

func (d *faultDriver) List(dir string) ([]storage.FileInfo, error) {
	if err := d.t.before("list", dir); err != nil {
		return nil, err
	}
	return d.inner.List(dir)
}

func (d *faultDriver) Mkdir(path string) error {
	if err := d.t.before("mkdir", path); err != nil {
		return err
	}
	return d.inner.Mkdir(path)
}

var _ storage.Driver = (*faultDriver)(nil)

type faultWriter struct {
	inner storage.WriteFile
	t     *Target
	path  string
}

func (w *faultWriter) Write(p []byte) (int, error) {
	if err := w.t.ioGate("write", w.path); err != nil {
		return 0, err
	}
	allowed, ferr := w.t.takeWrite(len(p))
	var n int
	var err error
	if allowed > 0 {
		n, err = w.inner.Write(p[:allowed])
		if err != nil {
			return n, err
		}
	}
	if ferr != nil {
		return n, types.E("write", w.path, ferr)
	}
	return n, nil
}

func (w *faultWriter) Close() error {
	if err := w.t.ioGate("close", w.path); err != nil {
		return err
	}
	return w.inner.Close()
}

type faultReader struct {
	inner storage.ReadFile
	t     *Target
	path  string
}

func (r *faultReader) Read(p []byte) (int, error) {
	if err := r.t.ioGate("read", r.path); err != nil {
		return 0, err
	}
	return r.inner.Read(p)
}

func (r *faultReader) ReadAt(p []byte, off int64) (int, error) {
	if err := r.t.ioGate("read", r.path); err != nil {
		return 0, err
	}
	return r.inner.ReadAt(p, off)
}

func (r *faultReader) Seek(offset int64, whence int) (int64, error) {
	return r.inner.Seek(offset, whence)
}

func (r *faultReader) Close() error { return r.inner.Close() }

// WrapConn returns a conn whose I/O consults the named target: a kill
// or an exhausted byte budget closes the underlying conn mid-frame, so
// the far side sees a truncated message, exactly like a crashed peer.
func (in *Injector) WrapConn(target string, c net.Conn) net.Conn {
	return &faultConn{Conn: c, t: in.Target(target)}
}

type faultConn struct {
	net.Conn
	t *Target
}

func (c *faultConn) Read(p []byte) (int, error) {
	if err := c.t.connGate(); err != nil {
		c.Conn.Close()
		return 0, err
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		if _, derr := c.t.takeConn(n); derr != nil {
			c.Conn.Close()
			return n, derr
		}
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	if err := c.t.connGate(); err != nil {
		c.Conn.Close()
		return 0, err
	}
	allowed, derr := c.t.takeConn(len(p))
	var n int
	if allowed > 0 {
		var err error
		n, err = c.Conn.Write(p[:allowed])
		if err != nil {
			return n, err
		}
	}
	if derr != nil {
		c.Conn.Close()
		return n, derr
	}
	return n, nil
}

// WrapDial wraps a dialer so the named target can refuse new
// connections (kill switch) and script faults on the conns it hands
// out.
func (in *Injector) WrapDial(target string, dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	t := in.Target(target)
	return func(addr string) (net.Conn, error) {
		if err := t.connGate(); err != nil {
			return nil, err
		}
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return in.WrapConn(target, c), nil
	}
}
