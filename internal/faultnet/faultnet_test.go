package faultnet

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"gosrb/internal/resilience"
	"gosrb/internal/storage"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

func TestFailAfterOps(t *testing.T) {
	in := New(1)
	d := in.WrapDriver("resource.disk1", memfs.New())
	scripted := types.E("stat", "/f", types.ErrOffline)
	in.Target("resource.disk1").FailAfterOps(2, scripted)

	if err := storage.WriteAll(d, "/f", []byte("hi")); err != nil { // op 1: Create
		t.Fatalf("op 1: %v", err)
	}
	if _, err := d.Stat("/f"); err != nil { // op 2
		t.Fatalf("op 2: %v", err)
	}
	if _, err := d.Stat("/f"); !errors.Is(err, types.ErrOffline) { // op 3 fails
		t.Fatalf("op 3 err = %v, want scripted offline", err)
	}
	if _, err := d.Open("/f"); !errors.Is(err, types.ErrOffline) {
		t.Fatalf("op 4 err = %v, want scripted offline", err)
	}
	in.Target("resource.disk1").Clear()
	if _, err := storage.ReadAll(d, "/f"); err != nil {
		t.Fatalf("after Clear: %v", err)
	}
}

func TestPartialWriteTruncatesAndFails(t *testing.T) {
	in := New(1)
	mem := memfs.New()
	d := in.WrapDriver("resource.disk1", mem)
	in.Target("resource.disk1").PartialWriteAfter(5)

	w, err := d.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.Write([]byte("0123456789"))
	if n != 5 {
		t.Errorf("n = %d, want 5 (budget)", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("err = %v, want ErrInjected", err)
	}
	// Budget exhausted: the next write moves nothing.
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Errorf("post-budget write = (%d, %v)", n, err)
	}
	w.Close()
	// Only the truncated prefix reached the store.
	got, err := storage.ReadAll(mem, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Errorf("stored %q, want %q", got, "01234")
	}
}

func TestKillSwitchDriver(t *testing.T) {
	in := New(1)
	d := in.WrapDriver("resource.disk1", memfs.New())
	if err := storage.WriteAll(d, "/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	r, err := d.Open("/f") // open before the kill
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	in.Target("resource.disk1").Kill()
	if _, err := d.Stat("/f"); !errors.Is(err, types.ErrOffline) {
		t.Errorf("stat on killed target = %v, want offline", err)
	}
	// The already-open handle dies too.
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, types.ErrOffline) {
		t.Errorf("read on killed target = %v, want offline", err)
	}
	in.Target("resource.disk1").Revive()
	if _, err := d.Stat("/f"); err != nil {
		t.Errorf("after revive: %v", err)
	}
}

func TestConnDropMidFrame(t *testing.T) {
	in := New(1)
	a, b := net.Pipe()
	defer b.Close()
	fc := in.WrapConn("peer.srb2", a)
	in.Target("peer.srb2").DropAfterBytes(4)

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		n, _ := b.Read(buf)
		got <- buf[:n]
	}()
	// A 10-byte frame: only 4 bytes cross before the conn is cut.
	n, err := fc.Write([]byte("frame-data"))
	if n != 4 {
		t.Errorf("wrote %d bytes, want 4", n)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want unexpected EOF", err)
	}
	if !resilience.Transport(err) {
		t.Error("drop error must classify as transport")
	}
	if frag := <-got; string(frag) != "fram" {
		t.Errorf("peer saw %q, want truncated frame %q", frag, "fram")
	}
	// The underlying conn is closed: further writes fail immediately.
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Error("write after drop must fail")
	}
}

func TestKillSwitchConnAndDial(t *testing.T) {
	in := New(1)
	dialed := 0
	dial := in.WrapDial("peer.srb2", func(addr string) (net.Conn, error) {
		dialed++
		a, b := net.Pipe()
		go func() { io.Copy(io.Discard, b) }()
		return a, nil
	})

	c, err := dial("srb2:5544")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}

	in.Target("peer.srb2").Kill()
	// Established conn dies on next I/O; new dials are refused.
	if _, err := c.Write([]byte("x")); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("write on killed peer = %v", err)
	}
	if _, err := dial("srb2:5544"); err == nil {
		t.Error("dial to killed peer must fail")
	}
	if dialed != 1 {
		t.Errorf("killed dial reached the network (dialed=%d)", dialed)
	}

	in.Target("peer.srb2").Revive()
	if _, err := dial("srb2:5544"); err != nil {
		t.Errorf("dial after revive: %v", err)
	}
}

// TestLatencySpikesDeterministic proves the seeded RNG makes spike
// placement replayable: two injectors with the same seed stall the
// same ops; a different seed diverges.
func TestLatencySpikesDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(seed)
		var spikes []bool
		in.SetSleep(func(time.Duration) { spikes[len(spikes)-1] = true })
		d := in.WrapDriver("resource.disk1", memfs.New())
		in.Target("resource.disk1").SpikeLatency(time.Second, 0.5)
		for i := 0; i < 32; i++ {
			spikes = append(spikes, false)
			d.Stat("/nope")
		}
		return spikes
	}
	a, b := pattern(42), pattern(42)
	diverged := false
	anySpike := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
		anySpike = anySpike || a[i]
	}
	if !anySpike {
		t.Error("p=0.5 over 32 ops produced no spikes")
	}
	for i, v := range pattern(43) {
		if v != a[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds produced identical spike pattern")
	}
}

func TestOpsCounterAndTargetIdentity(t *testing.T) {
	in := New(1)
	d := in.WrapDriver("resource.disk1", memfs.New())
	d.Stat("/a")
	d.Stat("/b")
	if got := in.Target("resource.disk1").Ops(); got != 2 {
		t.Errorf("ops = %d, want 2", got)
	}
	if in.Target("resource.disk1") != in.Target("resource.disk1") {
		t.Error("Target must return one instance per name")
	}
}

func TestCorruptAtRest(t *testing.T) {
	in := New(1)
	mem := memfs.New()
	d := in.WrapDriver("resource.disk1", mem)
	want := []byte("precious replica bytes")
	if err := storage.WriteAll(d, "/f", want); err != nil {
		t.Fatal(err)
	}

	tgt := in.Target("resource.disk1")
	if err := tgt.CorruptAtRest("/f", 3); err != nil {
		t.Fatalf("CorruptAtRest: %v", err)
	}
	got, err := storage.ReadAll(mem, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("length changed: %d -> %d", len(want), len(got))
	}
	diff := 0
	for i := range got {
		if got[i] != want[i] {
			diff++
			if i != 3 {
				t.Errorf("byte %d corrupted, expected only offset 3", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}

	// The flip is silent: reads still succeed and the target is usable.
	if _, err := storage.ReadAll(d, "/f"); err != nil {
		t.Errorf("read after corruption failed: %v", err)
	}

	// Offsets wrap (positive and negative) instead of erroring.
	if err := tgt.CorruptAtRest("/f", int64(len(want))+3); err != nil {
		t.Errorf("wrapping offset: %v", err)
	}
	if err := tgt.CorruptAtRest("/f", -1); err != nil {
		t.Errorf("negative offset: %v", err)
	}

	// Corruption bypasses the kill switch — the fault is at rest, not
	// in the data path.
	tgt.Kill()
	if err := tgt.CorruptAtRest("/f", 0); err != nil {
		t.Errorf("CorruptAtRest on killed target: %v", err)
	}
	tgt.Revive()

	// Empty files and unwrapped targets are rejected.
	if err := storage.WriteAll(d, "/empty", nil); err != nil {
		t.Fatal(err)
	}
	if err := tgt.CorruptAtRest("/empty", 0); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("empty file: %v, want ErrInvalid", err)
	}
	if err := in.Target("resource.bare").CorruptAtRest("/f", 0); !errors.Is(err, types.ErrUnsupported) {
		t.Errorf("unwrapped target: %v, want ErrUnsupported", err)
	}
}
