// Package acl implements SRB access control: a permission lattice from
// none up to curate ("a role-based access matrix from curator to
// public", paper §4), access-control lists per object and collection,
// and group resolution.
//
// The catalog stores the lists; the broker asks this package what a
// user's effective level on a target is and whether it suffices for an
// operation. Per the paper, the DGA controls access "at multiple levels
// (collections, datasets, resources, etc) for users and user groups
// beyond that offered by file systems".
package acl

import (
	"fmt"
	"strings"
)

// Level is a rung of the permission lattice. Higher levels include all
// rights of lower ones.
type Level int

const (
	// None grants nothing.
	None Level = iota
	// Read grants viewing data and metadata, and — per the paper, which
	// lets "any user with a read permission" annotate — adding
	// annotations.
	Read
	// Annotate grants adding annotations and ratings even where broader
	// write access is withheld (used for the curator scenario's
	// "selected users [who] add additional metadata").
	Annotate
	// Write grants modifying data contents and adding user metadata.
	Write
	// Own grants full control: ACL changes, deletion, metadata schema.
	Own
	// Curate grants Own plus structural-metadata control on collections
	// and the right to impose ingestion requirements.
	Curate
)

var levelNames = [...]string{
	None:     "none",
	Read:     "read",
	Annotate: "annotate",
	Write:    "write",
	Own:      "own",
	Curate:   "curate",
}

// String returns the lower-case level name.
func (l Level) String() string {
	if l < 0 || int(l) >= len(levelNames) {
		return fmt.Sprintf("Level(%d)", int(l))
	}
	return levelNames[l]
}

// ParseLevel parses a level name, case-insensitively.
func ParseLevel(s string) (Level, error) {
	for i, n := range levelNames {
		if strings.EqualFold(s, n) {
			return Level(i), nil
		}
	}
	return None, fmt.Errorf("acl: unknown permission level %q", s)
}

// Includes reports whether holding l satisfies a requirement of need.
func (l Level) Includes(need Level) bool { return l >= need }

// Public is the grantee name matching every user.
const Public = "public"

// GroupPrefix marks a grantee entry that names a group.
const GroupPrefix = "g:"

// Entry grants a level to a grantee: a user name, GroupPrefix+group, or
// Public.
type Entry struct {
	Grantee string
	Level   Level
}

// List is the access-control list of one target. Order is not
// significant; the effective level is the maximum matching grant.
type List []Entry

// Grant returns the list with the grantee set to exactly level,
// replacing any previous entry. Granting None removes the entry.
func (l List) Grant(grantee string, level Level) List {
	out := make(List, 0, len(l)+1)
	for _, e := range l {
		if e.Grantee != grantee {
			out = append(out, e)
		}
	}
	if level != None {
		out = append(out, Entry{Grantee: grantee, Level: level})
	}
	return out
}

// LevelFor computes the user's effective level: the maximum over the
// user's direct grants, grants to any group in groups, and Public.
func (l List) LevelFor(user string, groups map[string]bool) Level {
	best := None
	for _, e := range l {
		var applies bool
		switch {
		case e.Grantee == Public:
			applies = true
		case strings.HasPrefix(e.Grantee, GroupPrefix):
			applies = groups[strings.TrimPrefix(e.Grantee, GroupPrefix)]
		default:
			applies = e.Grantee == user
		}
		if applies && e.Level > best {
			best = e.Level
		}
	}
	return best
}

// Clone returns an independent copy of the list.
func (l List) Clone() List {
	return append(List(nil), l...)
}

// Levels enumerates every level in ascending order (for UIs).
func Levels() []Level {
	return []Level{None, Read, Annotate, Write, Own, Curate}
}
