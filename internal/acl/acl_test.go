package acl

import (
	"testing"
	"testing/quick"
)

func TestLevelOrdering(t *testing.T) {
	if !Curate.Includes(Own) || !Own.Includes(Write) || !Write.Includes(Annotate) ||
		!Annotate.Includes(Read) || !Read.Includes(None) {
		t.Error("lattice ordering broken")
	}
	if Read.Includes(Write) {
		t.Error("read must not include write")
	}
}

func TestParseLevel(t *testing.T) {
	for _, l := range Levels() {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("round trip %v: %v %v", l, got, err)
		}
	}
	if got, err := ParseLevel("CURATE"); err != nil || got != Curate {
		t.Errorf("case-insensitive parse: %v %v", got, err)
	}
	if _, err := ParseLevel("root"); err == nil {
		t.Error("unknown level should fail")
	}
	if Level(42).String() != "Level(42)" {
		t.Error("out-of-range String")
	}
}

func TestGrantReplacesAndRemoves(t *testing.T) {
	var l List
	l = l.Grant("alice", Read)
	l = l.Grant("alice", Own)
	if len(l) != 1 || l[0].Level != Own {
		t.Errorf("grant should replace: %+v", l)
	}
	l = l.Grant("bob", Write)
	l = l.Grant("alice", None)
	if len(l) != 1 || l[0].Grantee != "bob" {
		t.Errorf("grant None should remove: %+v", l)
	}
}

func TestLevelFor(t *testing.T) {
	l := List{}.
		Grant("alice", Own).
		Grant(GroupPrefix+"curators", Curate).
		Grant(Public, Read)
	noGroups := map[string]bool{}
	if got := l.LevelFor("alice", noGroups); got != Own {
		t.Errorf("alice = %v", got)
	}
	if got := l.LevelFor("stranger", noGroups); got != Read {
		t.Errorf("public fallback = %v", got)
	}
	if got := l.LevelFor("carol", map[string]bool{"curators": true}); got != Curate {
		t.Errorf("group grant = %v", got)
	}
	// Max wins: alice in curators gets Curate, not Own.
	if got := l.LevelFor("alice", map[string]bool{"curators": true}); got != Curate {
		t.Errorf("max of grants = %v", got)
	}
	empty := List{}
	if got := empty.LevelFor("anyone", noGroups); got != None {
		t.Errorf("empty list = %v", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	l := List{}.Grant("a", Read)
	c := l.Clone()
	c = c.Grant("a", Own)
	if l.LevelFor("a", nil) != Read {
		t.Error("clone should not alias the original")
	}
}

// Property: LevelFor never exceeds the max granted level and Grant is
// idempotent.
func TestGrantProperties(t *testing.T) {
	f := func(user string, lvl uint8) bool {
		if user == Public || len(user) >= 2 && user[:2] == GroupPrefix {
			return true // special grantees resolve differently by design
		}
		level := Level(int(lvl) % len(Levels()))
		l := List{}.Grant(user, level).Grant(user, level)
		if level == None {
			return len(l) == 0
		}
		return len(l) == 1 && l.LevelFor(user, nil) == level
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
