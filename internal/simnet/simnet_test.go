package simnet

import (
	"io"
	"net"
	"testing"
	"time"

	"gosrb/internal/storage"
	"gosrb/internal/storage/memfs"
)

type recorder struct{ total time.Duration }

func (r *recorder) sleep(d time.Duration) { r.total += d }

func TestWrapDriverChargesRTTPerOp(t *testing.T) {
	rec := &recorder{}
	d := WrapDriver(memfs.New(), LinkProfile{RTT: 10 * time.Millisecond}, rec.sleep)
	if err := storage.WriteAll(d, "/f", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if rec.total != 10*time.Millisecond {
		t.Errorf("create charged %v", rec.total)
	}
	if _, err := storage.ReadAll(d, "/f"); err != nil {
		t.Fatal(err)
	}
	if rec.total != 20*time.Millisecond {
		t.Errorf("after read charged %v", rec.total)
	}
	d.Stat("/f")
	if rec.total != 30*time.Millisecond {
		t.Errorf("after stat charged %v", rec.total)
	}
}

func TestWrapDriverBandwidth(t *testing.T) {
	rec := &recorder{}
	d := WrapDriver(memfs.New(), LinkProfile{BandwidthBytesPerSec: 1000}, rec.sleep)
	if err := storage.WriteAll(d, "/f", make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	if rec.total != 500*time.Millisecond {
		t.Errorf("write pacing = %v, want 500ms", rec.total)
	}
	rec.total = 0
	if _, err := storage.ReadAll(d, "/f"); err != nil {
		t.Fatal(err)
	}
	if rec.total != 500*time.Millisecond {
		t.Errorf("read pacing = %v, want 500ms", rec.total)
	}
}

func TestReadAtPaysRTT(t *testing.T) {
	rec := &recorder{}
	inner := memfs.New()
	storage.WriteAll(inner, "/f", []byte("0123456789"))
	d := WrapDriver(inner, LinkProfile{RTT: time.Millisecond}, rec.sleep)
	r, err := d.Open("/f")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rec.total = 0
	buf := make([]byte, 3)
	r.ReadAt(buf, 2)
	r.ReadAt(buf, 5)
	// Each positional read is its own remote request.
	if rec.total != 2*time.Millisecond {
		t.Errorf("two ReadAts charged %v", rec.total)
	}
}

func TestTransferTimeModel(t *testing.T) {
	p := LinkProfile{RTT: 100 * time.Millisecond, BandwidthBytesPerSec: 1 << 20}
	got := p.TransferTime(1 << 20)
	want := 100*time.Millisecond + time.Second
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	if (LinkProfile{}).TransferTime(1<<30) != 0 {
		t.Error("unshaped link should be free")
	}
}

func TestPacedConn(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	rec := &recorder{}
	paced := Pace(c1, LinkProfile{RTT: 20 * time.Millisecond, BandwidthBytesPerSec: 1000}, rec.sleep)
	go func() {
		paced.Write(make([]byte, 100))
		paced.Write(make([]byte, 100))
		paced.Close()
	}()
	if _, err := io.ReadAll(c2); err != nil {
		t.Fatal(err)
	}
	// RTT/2 once + 2 * 100ms of pacing.
	want := 10*time.Millisecond + 200*time.Millisecond
	if rec.total != want {
		t.Errorf("paced conn charged %v, want %v", rec.total, want)
	}
}

func TestWrapDriverAllOpsCharge(t *testing.T) {
	rec := &recorder{}
	inner := memfs.New()
	d := WrapDriver(inner, LinkProfile{RTT: time.Millisecond}, rec.sleep)
	// Every remote operation pays one RTT.
	w, err := d.OpenAppend("/f")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("x"))
	w.Close()
	if err := d.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.List("/"); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("/f", "/g"); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("/g"); err != nil {
		t.Fatal(err)
	}
	// append + mkdir + list + rename + remove = 5 RTTs
	if rec.total != 5*time.Millisecond {
		t.Errorf("ops charged %v, want 5ms", rec.total)
	}
	// Seek is local (no charge).
	storage.WriteAll(inner, "/s", []byte("0123456789"))
	r, _ := d.Open("/s") // Open charges its own RTT
	defer r.Close()
	before := rec.total
	if _, err := r.Seek(5, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if rec.total != before {
		t.Errorf("seek charged %v; it must be local", rec.total-before)
	}
}

func TestWrapDriverNilSleepDefaults(t *testing.T) {
	// A nil clock falls back to time.Sleep; with a zero profile nothing
	// actually sleeps, so this just exercises the default path.
	d := WrapDriver(memfs.New(), LinkProfile{}, nil)
	if err := storage.WriteAll(d, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := storage.ReadAll(d, "/f"); err != nil {
		t.Fatal(err)
	}
}
