// Package simnet simulates wide-area network conditions for the
// experiments: per-operation round-trip latency and bandwidth-limited
// transfers. The paper's motivation for containers is exactly this
// regime — "decreasing latency when accessed over a wide area network"
// (§2) — which only shows up when each remote operation pays an RTT.
//
// Two shims are provided: WrapDriver makes a storage driver behave like
// a remote storage system reached over a shaped link, and Pace/PacedConn
// shape a net.Conn for transfer experiments. Sleeps are injectable so
// unit tests can count simulated time instead of spending real time.
package simnet

import (
	"net"
	"sync"
	"time"

	"gosrb/internal/storage"
)

// LinkProfile describes one network path.
type LinkProfile struct {
	// RTT is the round-trip time each remote operation pays.
	RTT time.Duration
	// BandwidthBytesPerSec limits streaming throughput; 0 = unlimited.
	BandwidthBytesPerSec int64
}

// TransferTime returns the modelled time to move n bytes over the link
// in a single stream: one RTT plus serialisation at the bandwidth.
func (p LinkProfile) TransferTime(n int64) time.Duration {
	d := p.RTT
	if p.BandwidthBytesPerSec > 0 {
		d += time.Duration(n * int64(time.Second) / p.BandwidthBytesPerSec)
	}
	return d
}

// Clock abstracts waiting so tests can observe simulated time.
type Clock func(time.Duration)

// wanDriver wraps a storage.Driver with link costs.
type wanDriver struct {
	inner storage.Driver
	p     LinkProfile
	sleep Clock
}

// WrapDriver returns a driver that behaves like inner reached across
// the link: every operation pays one RTT, and data streams pay the
// bandwidth cost. A nil sleep uses time.Sleep.
func WrapDriver(inner storage.Driver, p LinkProfile, sleep Clock) storage.Driver {
	if sleep == nil {
		sleep = time.Sleep
	}
	return &wanDriver{inner: inner, p: p, sleep: sleep}
}

func (w *wanDriver) rtt() {
	if w.p.RTT > 0 {
		w.sleep(w.p.RTT)
	}
}

func (w *wanDriver) pace(n int) {
	if w.p.BandwidthBytesPerSec > 0 && n > 0 {
		w.sleep(time.Duration(int64(n) * int64(time.Second) / w.p.BandwidthBytesPerSec))
	}
}

func (w *wanDriver) Create(path string) (storage.WriteFile, error) {
	w.rtt()
	f, err := w.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &wanWriter{inner: f, d: w}, nil
}

func (w *wanDriver) OpenAppend(path string) (storage.WriteFile, error) {
	w.rtt()
	f, err := w.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &wanWriter{inner: f, d: w}, nil
}

func (w *wanDriver) Open(path string) (storage.ReadFile, error) {
	w.rtt()
	f, err := w.inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &wanReader{inner: f, d: w}, nil
}

func (w *wanDriver) Stat(path string) (storage.FileInfo, error) {
	w.rtt()
	return w.inner.Stat(path)
}

func (w *wanDriver) Remove(path string) error {
	w.rtt()
	return w.inner.Remove(path)
}

func (w *wanDriver) Rename(oldPath, newPath string) error {
	w.rtt()
	return w.inner.Rename(oldPath, newPath)
}

func (w *wanDriver) List(dir string) ([]storage.FileInfo, error) {
	w.rtt()
	return w.inner.List(dir)
}

func (w *wanDriver) Mkdir(path string) error {
	w.rtt()
	return w.inner.Mkdir(path)
}

type wanWriter struct {
	inner storage.WriteFile
	d     *wanDriver
}

func (w *wanWriter) Write(p []byte) (int, error) {
	n, err := w.inner.Write(p)
	w.d.pace(n)
	return n, err
}

func (w *wanWriter) Close() error { return w.inner.Close() }

type wanReader struct {
	inner storage.ReadFile
	d     *wanDriver
}

func (r *wanReader) Read(p []byte) (int, error) {
	n, err := r.inner.Read(p)
	r.d.pace(n)
	return n, err
}

func (r *wanReader) ReadAt(p []byte, off int64) (int, error) {
	// A positional read is one remote request: RTT plus streaming.
	r.d.rtt()
	n, err := r.inner.ReadAt(p, off)
	r.d.pace(n)
	return n, err
}

func (r *wanReader) Seek(offset int64, whence int) (int64, error) {
	return r.inner.Seek(offset, whence)
}

func (r *wanReader) Close() error { return r.inner.Close() }

var _ storage.Driver = (*wanDriver)(nil)

// PacedConn shapes writes on a net.Conn to the link bandwidth and
// charges RTT/2 of propagation per direction on the first write.
type PacedConn struct {
	net.Conn
	p     LinkProfile
	sleep Clock
	sent  bool
}

// Pace wraps conn with the link profile. A nil sleep uses time.Sleep.
func Pace(conn net.Conn, p LinkProfile, sleep Clock) *PacedConn {
	if sleep == nil {
		sleep = time.Sleep
	}
	return &PacedConn{Conn: conn, p: p, sleep: sleep}
}

// Write shapes outbound data.
func (c *PacedConn) Write(b []byte) (int, error) {
	if !c.sent {
		c.sent = true
		if c.p.RTT > 0 {
			c.sleep(c.p.RTT / 2)
		}
	}
	if c.p.BandwidthBytesPerSec > 0 && len(b) > 0 {
		c.sleep(time.Duration(int64(len(b)) * int64(time.Second) / c.p.BandwidthBytesPerSec))
	}
	return c.Conn.Write(b)
}

// DelayedConn delivers each write to the peer a fixed latency after it
// was written, without blocking the writer. PacedConn charges
// propagation once per connection, which under-models request/response
// protocols: on a real WAN every round trip pays the link. Wrapping a
// client conn in Delay makes a serial protocol pay the latency per
// request while concurrent in-flight requests overlap their delays —
// the regime the pipelined wire protocol is built for.
type DelayedConn struct {
	net.Conn
	delay time.Duration
	q     chan delayedChunk
	done  chan struct{}
	once  sync.Once

	mu   sync.Mutex
	werr error
}

type delayedChunk struct {
	b  []byte
	at time.Time
}

// Delay wraps conn so each write lands on the peer oneWay later.
// Chunks stay ordered; Close discards undelivered chunks.
func Delay(conn net.Conn, oneWay time.Duration) *DelayedConn {
	c := &DelayedConn{
		Conn:  conn,
		delay: oneWay,
		q:     make(chan delayedChunk, 4096),
		done:  make(chan struct{}),
	}
	go c.pump()
	return c
}

func (c *DelayedConn) pump() {
	for {
		select {
		case ch := <-c.q:
			if d := time.Until(ch.at); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-c.done:
					t.Stop()
					return
				}
			}
			if _, err := c.Conn.Write(ch.b); err != nil {
				c.mu.Lock()
				if c.werr == nil {
					c.werr = err
				}
				c.mu.Unlock()
				return
			}
		case <-c.done:
			return
		}
	}
}

// Write queues b for delayed delivery and returns immediately.
func (c *DelayedConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	werr := c.werr
	c.mu.Unlock()
	if werr != nil {
		return 0, werr
	}
	cp := append([]byte(nil), b...)
	select {
	case c.q <- delayedChunk{b: cp, at: time.Now().Add(c.delay)}:
		return len(b), nil
	case <-c.done:
		return 0, net.ErrClosed
	}
}

// Close stops the delivery pump and closes the underlying conn.
func (c *DelayedConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return c.Conn.Close()
}
