package obs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestTelemetryRestoreWindowAt proves the tentpole property: after a
// flush/restart cycle a fresh registry answers WindowAt over the
// pre-restart interval with the same deltas the old process would have
// reported — the ring is refilled AND the live cumulative atomics are
// re-seeded so baseline subtraction stays exact.
func TestTelemetryRestoreWindowAt(t *testing.T) {
	dir := t.TempDir()
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	ts, err := OpenTelemetryStore(dir, "srb1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	// Pre-window activity, then a baseline capture 5 minutes back.
	reg.Counter("bytes").Add(10)
	for i := 0; i < 40; i++ {
		reg.Op("server.get").Observe(time.Millisecond, nil)
	}
	reg.CaptureRollup(now.Add(-5 * time.Minute))
	// In-window activity, captured 1 minute back.
	reg.Counter("bytes").Add(30)
	for i := 0; i < 99; i++ {
		reg.Op("server.get").Observe(16*time.Millisecond, nil)
	}
	reg.Op("server.get").Observe(16*time.Millisecond, errors.New("boom"))
	reg.CaptureRollup(now.Add(-1 * time.Minute))
	reg.Usage().Record("curator", "/home/curator", "t1", "get", false, 0, 4096, time.Millisecond)
	reg.Peers().Record("srb2", "", 3*time.Millisecond, 1<<20, false)
	if err := ts.Flush(reg, nil, now); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(reg, nil, now); err != nil {
		t.Fatal(err)
	}

	// "Restart": new store handle, empty registry.
	ts2, err := OpenTelemetryStore(dir, "srb1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegistry()
	snap, err := ts2.Restore(reg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Rollups) != 2 {
		t.Fatalf("restored %d rollups, want 2", len(snap.Rollups))
	}
	ws := reg2.WindowAt(now, 5*time.Minute)
	if c := ws.Counters["bytes"]; c.Delta != 30 {
		t.Errorf("restored bytes delta = %d, want 30", c.Delta)
	}
	o := ws.Ops["server.get"]
	if o.Count != 100 || o.Errors != 1 {
		t.Errorf("restored op delta = %d/%d errors, want 100/1", o.Count, o.Errors)
	}
	if o.P50Micros < 8192 || o.P50Micros > 16384 {
		t.Errorf("restored windowed p50 = %v µs, want within the 16ms bucket", o.P50Micros)
	}
	// Live atomics were re-seeded: new activity on top of the restored
	// baseline must delta correctly, not clamp against zero.
	for i := 0; i < 10; i++ {
		reg2.Op("server.get").Observe(time.Millisecond, nil)
	}
	reg2.CaptureRollup(now.Add(30 * time.Second))
	ws = reg2.WindowAt(now.Add(time.Minute), 90*time.Second)
	if o := ws.Ops["server.get"]; o.Count != 10 {
		t.Errorf("post-restore window delta = %d, want 10", o.Count)
	}
	// Usage and peer tables came back.
	if rows := reg2.Usage().Snapshot(); len(rows) != 1 || rows[0].User != "curator" {
		t.Errorf("restored usage rows = %+v, want the curator row", rows)
	}
	peers := reg2.Peers().Snapshot()
	if len(peers) != 1 || peers[0].Peer != "srb2" || peers[0].Ops != 1 || peers[0].Bytes != 1<<20 {
		t.Fatalf("restored peer rows = %+v, want srb2 with 1 op", peers)
	}
	if len(peers[0].Buckets) == 0 {
		t.Error("restored peer row lost its latency histogram")
	}
}

// TestTelemetryAlertsRoundTrip checks alerts flush incrementally via
// the sequence high-water mark and come back on restore.
func TestTelemetryAlertsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	ts, err := OpenTelemetryStore(dir, "srb1", 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	log := NewAlertLog(0)
	log.Add(Alert{At: now.Add(-2 * time.Minute), Rule: "get-p99", Firing: true})
	if err := ts.Flush(reg, log, now.Add(-time.Minute)); err != nil {
		t.Fatal(err)
	}
	log.Add(Alert{At: now, Rule: "get-p99", Firing: false})
	if err := ts.Flush(reg, log, now); err != nil {
		t.Fatal(err)
	}
	ts.Close(nil, nil, now) // close without compacting: journal only

	ts2, err := OpenTelemetryStore(dir, "srb1", 0)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ts2.Restore(NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Alerts) != 2 {
		t.Fatalf("restored %d alerts, want 2 (incremental flush must not duplicate)", len(snap.Alerts))
	}
	if !snap.Alerts[0].Firing || snap.Alerts[1].Firing {
		t.Errorf("alert order/flags wrong: %+v", snap.Alerts)
	}
}

// TestTelemetryCorruptJournalRecovery crashes mid-append: the journal
// gets a truncated JSON line plus binary garbage. Replay must keep every
// whole line and skip the rest without failing the boot.
func TestTelemetryCorruptJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	ts, err := OpenTelemetryStore(dir, "srb1", 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Op("server.get").Observe(time.Millisecond, nil)
	reg.CaptureRollup(now.Add(-2 * time.Minute))
	reg.CaptureRollup(now.Add(-1 * time.Minute))
	if err := ts.Flush(reg, nil, now); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(nil, nil, now); err != nil { // nil reg: no final compact
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn JSON prefix, then garbage.
	j := filepath.Join(dir, "telemetry.journal")
	f, err := os.OpenFile(j, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"Rollup":{"At":"2026-08-0`)
	f.Write([]byte{0xff, 0xfe, 0x00, '\n'})
	f.WriteString("not json at all\n")
	f.Close()

	ts2, err := OpenTelemetryStore(dir, "srb1", 0)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegistry()
	snap, err := ts2.Restore(reg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Rollups) != 2 {
		t.Fatalf("recovered %d rollups, want 2 (corrupt tail must not eat good lines)", len(snap.Rollups))
	}
	// The store must stay writable after recovery.
	reg2.CaptureRollup(now)
	if err := ts2.Flush(reg2, nil, now.Add(time.Second)); err != nil {
		t.Fatalf("flush after corrupt recovery: %v", err)
	}
}

// TestTelemetryCompactionDedup drives enough flushes to cross the
// compaction threshold and verifies replay sees each rollup exactly
// once — snapshot/journal overlap is deduplicated, retention prunes.
func TestTelemetryCompactionDedup(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	ts, err := OpenTelemetryStore(dir, "srb1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	// One capture per flush, crossing telemetryCompactEvery twice.
	n := 2*telemetryCompactEvery + 3
	for i := 0; i < n; i++ {
		reg.Op("server.get").Observe(time.Millisecond, nil)
		at := base.Add(time.Duration(i) * time.Second)
		reg.CaptureRollup(at)
		if err := ts.Flush(reg, nil, at); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Close(reg, nil, base.Add(time.Duration(n)*time.Second)); err != nil {
		t.Fatal(err)
	}
	ts2, err := OpenTelemetryStore(dir, "srb1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ts2.Restore(NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Rollups) != n {
		t.Fatalf("restored %d rollups, want %d exactly once each", len(snap.Rollups), n)
	}
	for i := 1; i < len(snap.Rollups); i++ {
		if !snap.Rollups[i].At.After(snap.Rollups[i-1].At) {
			t.Fatalf("rollups not strictly ordered at %d: %v then %v",
				i, snap.Rollups[i-1].At, snap.Rollups[i].At)
		}
	}

	// Retention: reopen with a tight horizon and compact — old rollups
	// must not survive.
	reg3 := NewRegistry()
	ts3, err := OpenTelemetryStore(dir, "srb1", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts3.Restore(reg3); err != nil {
		t.Fatal(err)
	}
	nowLate := base.Add(time.Duration(n) * time.Second)
	if err := ts3.Close(reg3, nil, nowLate); err != nil {
		t.Fatal(err)
	}
	ts4, err := OpenTelemetryStore(dir, "srb1", 0)
	if err != nil {
		t.Fatal(err)
	}
	snap4, err := ts4.Restore(NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	cutoff := nowLate.Add(-10 * time.Second)
	for _, ru := range snap4.Rollups {
		if ru.At.Before(cutoff) {
			t.Fatalf("rollup at %v survived a %v retention compaction", ru.At, cutoff)
		}
	}
	if len(snap4.Rollups) == 0 || len(snap4.Rollups) >= n {
		t.Fatalf("retention compaction kept %d of %d rollups, want a proper subset", len(snap4.Rollups), n)
	}
}
