package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteOpenMetrics dumps the registry in the OpenMetrics 1.0 text
// exposition format. It differs from WritePrometheus in the ways the
// stricter spec demands — counter families are declared under their
// base name with `_total`-suffixed samples, histogram families carry a
// UNIT line, and the stream is terminated by `# EOF` — and in one way
// the spec enables: histogram bucket samples carry tail exemplars
// (`# {trace_id="…"} <seconds>`), so a scrape can jump from a slow
// bucket straight to `srb trace <id>` / `srb why <id>`. Served at
// /metrics?format=openmetrics.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	var b strings.Builder

	fmt.Fprintf(&b, "# TYPE srb_build_info gauge\n# HELP srb_build_info Build version, injected at link time; value is always 1.\n")
	fmt.Fprintf(&b, "srb_build_info{version=%q} 1\n", buildVersion(s))
	fmt.Fprintf(&b, "# TYPE srb_uptime_seconds gauge\n# HELP srb_uptime_seconds Seconds since the telemetry registry was created.\n")
	fmt.Fprintf(&b, "srb_uptime_seconds %s\n", formatFloat(s.UptimeSeconds))

	for _, k := range sortedKeys(s.Counters) {
		name := promName(k)
		fmt.Fprintf(&b, "# TYPE %s counter\n# HELP %s Counter %s.\n", name, name, k)
		fmt.Fprintf(&b, "%s_total %d\n", name, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		name := promName(k)
		fmt.Fprintf(&b, "# TYPE %s gauge\n# HELP %s Gauge %s.\n", name, name, k)
		fmt.Fprintf(&b, "%s %d\n", name, s.Gauges[k])
	}

	opNames := make([]string, 0, len(s.Ops))
	for k := range s.Ops {
		opNames = append(opNames, k)
	}
	sort.Strings(opNames)
	for _, k := range opNames {
		o := s.Ops[k]
		base := promName(k)
		fmt.Fprintf(&b, "# TYPE %s_ops counter\n# HELP %s_ops Completed %s operations.\n", base, base, k)
		fmt.Fprintf(&b, "%s_ops_total %d\n", base, o.Count)
		fmt.Fprintf(&b, "# TYPE %s_errors counter\n# HELP %s_errors Failed %s operations.\n", base, base, k)
		fmt.Fprintf(&b, "%s_errors_total %d\n", base, o.Errors)

		hist := base + "_duration_seconds"
		fmt.Fprintf(&b, "# TYPE %s histogram\n# UNIT %s seconds\n# HELP %s Latency of %s operations.\n", hist, hist, hist, k)
		ex := make(map[int64]BucketExemplar, len(o.Exemplars))
		for _, e := range o.Exemplars {
			ex[e.UpperMicros] = e
		}
		var cum int64
		for _, bk := range o.Buckets {
			cum += bk.Count
			// The last pow2 bucket is open-ended: its count (and any
			// exemplar) belongs to +Inf, not a finite le bound.
			if bk.UpperMicros >= BucketUpperMicros(histBuckets-1) {
				continue
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d%s\n",
				hist, formatFloat(float64(bk.UpperMicros)/1e6), cum, exemplarSuffix(ex, bk.UpperMicros))
			delete(ex, bk.UpperMicros)
		}
		// Any exemplar left over (open-ended bucket, or a bucket whose
		// counts live only in wider buckets) rides the +Inf sample; pick
		// the slowest.
		var tail *BucketExemplar
		for upper := range ex {
			e := ex[upper]
			if tail == nil || e.Micros > tail.Micros {
				tail = &e
			}
		}
		inf := ""
		if tail != nil {
			inf = fmt.Sprintf(" # {trace_id=%q} %s", tail.TraceID, formatFloat(float64(tail.Micros)/1e6))
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d%s\n", hist, cum, inf)
		fmt.Fprintf(&b, "%s_sum %s\n", hist, formatFloat(float64(o.TotalMicros)/1e6))
		fmt.Fprintf(&b, "%s_count %d\n", hist, o.Count)
	}

	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// exemplarSuffix renders the OpenMetrics exemplar annotation for the
// bucket with the given upper bound, or "" when none is retained.
func exemplarSuffix(ex map[int64]BucketExemplar, upperMicros int64) string {
	e, ok := ex[upperMicros]
	if !ok || e.TraceID == "" {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=%q} %s", e.TraceID, formatFloat(float64(e.Micros)/1e6))
}
