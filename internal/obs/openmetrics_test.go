package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var (
	omTypeRe     = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	omSampleRe   = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	omExemplarRe = regexp.MustCompile(`^\{trace_id="([^"]+)"\} (\S+)$`)
	omLeRe       = regexp.MustCompile(`le="([^"]+)"`)
)

// TestOpenMetricsScrape renders a populated registry and re-parses the
// stream with the spec's structural rules: every sample belongs to a
// declared family with the right suffix for its type, histogram buckets
// are cumulative with strictly increasing le bounds ending at +Inf,
// exemplar values sit within their bucket's bound, and the stream is
// EOF-terminated.
func TestOpenMetricsScrape(t *testing.T) {
	reg := NewRegistry()
	reg.SetExemplarThreshold(time.Millisecond)
	reg.Counter("wire.pool.dialed").Add(3)
	reg.Gauge("server.pipeline.inflight").Set(2)
	op := reg.Op("phase.server.get.dispatch")
	op.ObserveTrace(200*time.Microsecond, nil, "fast-no-exemplar")
	op.ObserveTrace(1500*time.Microsecond, nil, "tail-a")
	op.ObserveTrace(9*time.Millisecond, nil, "tail-b")
	// Beyond the last finite bucket: this exemplar must ride +Inf.
	op.ObserveTrace(200*time.Second, nil, "tail-inf")
	reg.Op("server.get").Observe(2*time.Millisecond, nil)

	var b strings.Builder
	if err := WriteOpenMetrics(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("stream not EOF-terminated:\n...%s", out[len(out)-80:])
	}

	types := map[string]string{}
	var (
		curHist   string
		lastLe    float64
		lastCount int64
		sawInf    bool
		infCount  int64
	)
	endHist := func() {
		if curHist != "" && !sawInf {
			t.Errorf("histogram %s has no +Inf bucket", curHist)
		}
	}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if m := omTypeRe.FindStringSubmatch(line); m != nil {
				if _, dup := types[m[1]]; dup {
					t.Errorf("family %s declared twice", m[1])
				}
				types[m[1]] = m[2]
			} else if !strings.HasPrefix(line, "# HELP") && !strings.HasPrefix(line, "# UNIT") && line != "# EOF" {
				t.Errorf("unparseable comment line %q", line)
			}
			continue
		}
		sample, exemplar, hasEx := strings.Cut(line, " # ")
		m := omSampleRe.FindStringSubmatch(sample)
		if m == nil {
			t.Errorf("unparseable sample line %q", line)
			continue
		}
		name, labels, valStr := m[1], m[2], m[3]

		// Resolve the family and enforce the per-type suffix rules.
		family, suffix := name, ""
		for _, s := range []string{"_total", "_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) {
				family, suffix = strings.TrimSuffix(name, s), s
				break
			}
		}
		typ, ok := types[family]
		if !ok {
			// A gauge sample has no suffix; anything else is undeclared.
			if typ, ok = types[name]; !ok {
				t.Errorf("sample %q has no declared family", name)
				continue
			}
			family, suffix = name, ""
		}
		switch typ {
		case "counter":
			if suffix != "_total" {
				t.Errorf("counter family %s sample %q lacks _total", family, name)
			}
		case "gauge":
			if suffix != "" {
				t.Errorf("gauge family %s has suffixed sample %q", family, name)
			}
		case "histogram":
			if suffix == "_bucket" {
				le := omLeRe.FindStringSubmatch(labels)
				if le == nil {
					t.Errorf("bucket sample without le: %q", line)
					continue
				}
				if family != curHist {
					endHist()
					curHist, lastLe, lastCount, sawInf = family, math.Inf(-1), 0, false
				}
				cnt, err := strconv.ParseInt(valStr, 10, 64)
				if err != nil {
					t.Errorf("bucket count %q: %v", valStr, err)
					continue
				}
				if cnt < lastCount {
					t.Errorf("%s buckets not cumulative: %d after %d", family, cnt, lastCount)
				}
				lastCount = cnt
				var bound float64
				if le[1] == "+Inf" {
					bound, sawInf, infCount = math.Inf(1), true, cnt
				} else if bound, err = strconv.ParseFloat(le[1], 64); err != nil {
					t.Errorf("bad le %q", le[1])
					continue
				}
				if bound <= lastLe {
					t.Errorf("%s le bounds not increasing: %v after %v", family, bound, lastLe)
				}
				lastLe = bound
				if hasEx {
					em := omExemplarRe.FindStringSubmatch(exemplar)
					if em == nil {
						t.Errorf("malformed exemplar %q", exemplar)
						continue
					}
					ev, err := strconv.ParseFloat(em[2], 64)
					if err != nil || ev > bound {
						t.Errorf("exemplar value %q outside bucket le=%v", em[2], bound)
					}
				}
			} else if suffix == "_count" && sawInf && family == curHist {
				if cnt, _ := strconv.ParseInt(valStr, 10, 64); cnt != infCount {
					t.Errorf("%s_count %d != +Inf bucket %d", family, cnt, infCount)
				}
			}
		default:
			t.Errorf("family %s has unknown type %q", family, typ)
		}
		if hasEx && typ != "histogram" {
			t.Errorf("exemplar on non-histogram sample %q", line)
		}
	}
	endHist()

	// The specific joins this PR promises: tail traces on the phase
	// histogram, the over-range trace on +Inf, and no exemplar for the
	// below-threshold observation.
	for _, want := range []string{
		`trace_id="tail-a"`, `trace_id="tail-b"`,
		`srb_phase_server_get_dispatch_duration_seconds_bucket{le="+Inf"} 4 # {trace_id="tail-inf"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stream missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "fast-no-exemplar") {
		t.Error("below-threshold observation leaked an exemplar")
	}
}
