package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceRingConcurrentWraparound hammers one small ring from many
// writers at once, wrapping it many times over. Run under -race (the
// `make race` target does) it doubles as the data-race check for the
// ring; the assertions check that wraparound keeps exactly the newest
// capacity records and that ForTrace still finds every survivor.
func TestTraceRingConcurrentWraparound(t *testing.T) {
	const capacity, writers, perWriter = 8, 16, 200
	ring := NewTraceRing(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			trace := NewTraceID()
			for i := 0; i < perWriter; i++ {
				sp := StartSpan(trace, "op")
				sp.Event(EventRetry, "contended")
				sp.End(ring, "srv", "remote", nil)
			}
		}(w)
	}
	wg.Wait()
	recent := ring.Recent(0)
	if len(recent) != capacity {
		t.Fatalf("after %d adds ring holds %d records, want %d",
			writers*perWriter, len(recent), capacity)
	}
	for _, rec := range recent {
		if got := ring.ForTrace(rec.Trace); len(got) == 0 {
			t.Errorf("ForTrace(%s) lost a retained record", rec.Trace)
		}
		if len(rec.Events) != 1 || rec.Events[0].Kind != EventRetry {
			t.Errorf("record events = %+v, want one retry", rec.Events)
		}
	}
	if got := ring.ForTrace("no-such-trace"); got != nil {
		t.Errorf("ForTrace(miss) = %v, want nil", got)
	}
}

// TestAssembleTreeLateChild covers federation reassembly order: the
// child span (recorded on the remote peer) joins the set after its
// parent closed, and a grandchild whose parent record never arrives
// (evicted ring, unreachable server) must surface as a root instead of
// vanishing.
func TestAssembleTreeLateChild(t *testing.T) {
	base := time.Now()
	recs := []SpanRecord{
		{Trace: "t1", Span: "a", Op: "get", Server: "srb1", Start: base},
		// Child arrives after the parent was already in the set.
		{Trace: "t1", Span: "b", Parent: "a", Op: "get", Server: "srb2", Start: base.Add(time.Millisecond)},
		// Orphan: parent "zz" is in no ring we fetched.
		{Trace: "t1", Span: "c", Parent: "zz", Op: "readrange", Server: "srb3", Start: base.Add(2 * time.Millisecond)},
	}
	roots := AssembleTree(recs)
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2 (tree root + orphan)", len(roots))
	}
	if roots[0].Span != "a" || len(roots[0].Children) != 1 || roots[0].Children[0].Span != "b" {
		t.Fatalf("first root = %s with %d children, want a->[b]", roots[0].Span, len(roots[0].Children))
	}
	if roots[1].Span != "c" {
		t.Fatalf("orphan root = %s, want c", roots[1].Span)
	}

	var out strings.Builder
	if err := WriteTree(&out, roots); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "get [srb1]") || !strings.Contains(text, "  get [srb2]") {
		t.Errorf("rendered tree misses parent/indented child:\n%s", text)
	}

	// Pre-span-tree records (no span ID) render as standalone roots.
	anon := AssembleTree([]SpanRecord{{Trace: "t2", Op: "stat", Start: base}})
	if len(anon) != 1 || anon[0].Op != "stat" {
		t.Fatalf("anonymous record should be its own root, got %+v", anon)
	}
}

// TestSpanEvents checks nil-safety and event stamping: deep layers call
// Event on whatever span they were handed, traced or not.
func TestSpanEvents(t *testing.T) {
	var nilSpan *Span
	nilSpan.Event(EventFailover, "ignored") // must not panic
	if nilSpan.TraceID() != "" || nilSpan.SpanID() != "" || nilSpan.Events() != nil {
		t.Error("nil span accessors should be zero-valued")
	}

	sp := StartSpanFrom("", "parent-id", "get")
	if sp.Trace == "" {
		t.Error("StartSpanFrom must mint a trace ID when given none")
	}
	if sp.Parent != "parent-id" {
		t.Errorf("parent = %q", sp.Parent)
	}
	sp.Event(EventBreakerTrip, "resource.disk1")
	sp.Event(EventFailover, "replica 1 on disk2")
	evs := sp.Events()
	if len(evs) != 2 || evs[0].Kind != EventBreakerTrip || evs[1].Kind != EventFailover {
		t.Fatalf("events = %+v", evs)
	}

	ring := NewTraceRing(4)
	sp.End(ring, "srb1", "1.2.3.4", nil)
	got := ring.ForTrace(sp.Trace)
	if len(got) != 1 || len(got[0].Events) != 2 || got[0].Parent != "parent-id" {
		t.Fatalf("ended record = %+v", got)
	}
}

// TestUsageTable covers accumulation, sorting, the unattributed-user
// no-op, and the bounded-cardinality fold to "(other)".
func TestUsageTable(t *testing.T) {
	u := NewUsageTable()
	u.Record("", "/home", "t0", "get", false, 0, 10, time.Millisecond) // anonymous: dropped
	u.Record("alice", "/home", "t1", "get", false, 0, 100, time.Millisecond)
	u.Record("alice", "/home", "t2", "get", true, 0, 0, time.Millisecond)
	u.Record("alice", "", "t3", "opstats", false, 0, 0, time.Millisecond)
	u.Record("bob", "/data", "t4", "ingest", false, 500, 0, 2*time.Millisecond)

	snap := u.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d entries, want 3: %+v", len(snap), snap)
	}
	// Sorted by user then collection: alice/-, alice//home, bob//data.
	if snap[0].User != "alice" || snap[0].Collection != "-" {
		t.Errorf("entry 0 = %+v", snap[0])
	}
	home := snap[1]
	if home.Collection != "/home" || home.Ops != 2 || home.Errors != 1 || home.BytesOut != 100 {
		t.Errorf("alice /home = %+v", home)
	}
	if home.LastTrace != "t2" || home.LastOp != "get" {
		t.Errorf("last trace/op = %s/%s, want t2/get", home.LastTrace, home.LastOp)
	}
	if snap[2].User != "bob" || snap[2].BytesIn != 500 {
		t.Errorf("bob = %+v", snap[2])
	}

	// Blow past the cardinality bound: overflow folds per-user.
	for i := 0; i < maxUsageKeys+10; i++ {
		u.Record("carol", "/c/"+NewSpanID(), "t", "get", false, 0, 1, time.Microsecond)
	}
	var folded *UsageStat
	for _, e := range u.Snapshot() {
		if e.User == "carol" && e.Collection == "(other)" {
			folded = &e
			break
		}
	}
	if folded == nil || folded.Ops == 0 {
		t.Fatal("overflow collections did not fold into (other)")
	}
}

// TestWritePrometheus checks the exposition-format contract points a
// scraper depends on: TYPE/HELP headers, _total counters, cumulative
// histogram buckets ending at +Inf, and _sum/_count in seconds.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("replica.failover").Add(3)
	r.Gauge("breaker.peer.srb2.state").Set(2)
	op := r.Op("server.get")
	op.Observe(100*time.Microsecond, nil)
	op.Observe(300*time.Microsecond, errStub("boom"))

	var out strings.Builder
	if err := WritePrometheus(&out, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"# TYPE srb_uptime_seconds gauge",
		"# TYPE srb_replica_failover_total counter",
		"srb_replica_failover_total 3",
		"srb_breaker_peer_srb2_state 2",
		"# TYPE srb_server_get_duration_seconds histogram",
		"srb_server_get_ops_total 2",
		"srb_server_get_errors_total 1",
		`srb_server_get_duration_seconds_bucket{le="+Inf"} 2`,
		"srb_server_get_duration_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Buckets must be cumulative: each le count non-decreasing.
	last := int64(-1)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "srb_server_get_duration_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := fmtSscanCount(line, &n); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if n < last {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		last = n
	}
}

type errStub string

func (e errStub) Error() string { return string(e) }

func fmtSscanCount(line string, n *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return 0, errStub("no value field")
	}
	var v int64
	for _, c := range line[i+1:] {
		if c < '0' || c > '9' {
			return 0, errStub("non-numeric count")
		}
		v = v*10 + int64(c-'0')
	}
	*n = v
	return 1, nil
}
