// Durable telemetry: the flight recorder's on-disk history. The store
// follows the MCAT persistence discipline — a JSON snapshot plus an
// append-only JSON-line journal — so the rollup ring, alert log, usage
// table and peer observatory survive restarts: `srb top -window 1h`,
// /grid and SLO burn math keep answering over pre-restart intervals.
//
// Layout under the telemetry dir:
//
//	telemetry.json      full snapshot, rewritten atomically at compaction
//	telemetry.journal   entries appended since the snapshot
//	incidents/          incident bundles (see incident.go)
//
// A flush appends only what is new (rollups and alerts carry forward a
// high-water mark; the small usage/peer tables are written whole, last
// entry wins on replay). Every telemetryCompactEvery flushes the store
// compacts: snapshot first, then journal truncation — a crash between
// the two only leaves duplicate entries, which replay deduplicates.
// Replay is tolerant: a truncated or corrupt line is skipped, never
// fatal, so a crash mid-append costs at most the last flush.
package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultTelemetryFlush is the default cadence of the telemetry flush
// job (srbd/mysrbd wire it onto the repair scheduler).
const DefaultTelemetryFlush = 30 * time.Second

// telemetryCompactEvery: flushes between snapshot compactions. At the
// default 30s flush that is one compaction every ~10 minutes.
const telemetryCompactEvery = 20

// telemetryEntry is one journal line. Exactly one field is set.
type telemetryEntry struct {
	Rollup      *Rollup     `json:",omitempty"`
	Alert       *Alert      `json:",omitempty"`
	Usage       []UsageStat `json:",omitempty"`
	Peers       []PeerStat  `json:",omitempty"`
	HeatKeys    []HeatStat  `json:",omitempty"`
	HeatObjects []HeatStat  `json:",omitempty"`
}

// TelemetrySnapshot is the full persisted state.
type TelemetrySnapshot struct {
	SavedAt     time.Time
	Server      string
	Rollups     []Rollup    `json:",omitempty"`
	Alerts      []Alert     `json:",omitempty"`
	Usage       []UsageStat `json:",omitempty"`
	Peers       []PeerStat  `json:",omitempty"`
	HeatKeys    []HeatStat  `json:",omitempty"`
	HeatObjects []HeatStat  `json:",omitempty"`
}

// TelemetryStore owns the on-disk telemetry history of one daemon.
// Safe for concurrent use; Flush/Compact/Close serialise on one lock.
type TelemetryStore struct {
	dir       string
	server    string
	retention time.Duration

	mu         sync.Mutex
	f          *os.File
	enc        *json.Encoder
	lastRollup time.Time
	alertsSeen int64
	flushes    int
}

// OpenTelemetryStore opens (creating as needed) the telemetry store in
// dir. retention bounds how far back rollups, alerts and incident
// bundles are kept at compaction (0 keeps everything the ring retains).
func OpenTelemetryStore(dir, server string, retention time.Duration) (*TelemetryStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, "telemetry.journal"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &TelemetryStore{
		dir: dir, server: server, retention: retention,
		f: f, enc: json.NewEncoder(f),
	}, nil
}

// Dir returns the store's directory.
func (ts *TelemetryStore) Dir() string {
	if ts == nil {
		return ""
	}
	return ts.dir
}

// Restore loads the snapshot and replays the journal into reg: the
// rollup ring is refilled, the live counters/gauges/ops are re-seeded
// from the newest rollup (so windowed deltas stay continuous across
// the restart instead of clamping to zero against a cumulative
// baseline), and the usage and peer tables are repopulated. The
// restored alerts are returned for the caller to seed its evaluator's
// log with — the evaluator does not exist yet at restore time. Call
// once, before the first Flush.
func (ts *TelemetryStore) Restore(reg *Registry) (*TelemetrySnapshot, error) {
	if ts == nil {
		return &TelemetrySnapshot{}, nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	snap := ts.load()
	if reg != nil {
		if n := len(snap.Rollups); n > 0 {
			reg.seedFrom(snap.Rollups[n-1])
			reg.Rollups().Restore(snap.Rollups)
			ts.lastRollup = snap.Rollups[n-1].At
		}
		reg.Usage().Restore(snap.Usage)
		reg.Peers().Restore(snap.Peers)
		reg.HeatKeys().Restore(snap.HeatKeys)
		reg.HeatObjects().Restore(snap.HeatObjects)
	}
	ts.alertsSeen = int64(len(snap.Alerts))
	return snap, nil
}

// load reads snapshot + journal, merging tolerantly: unreadable files
// and corrupt lines contribute nothing instead of failing the boot.
func (ts *TelemetryStore) load() *TelemetrySnapshot {
	snap := &TelemetrySnapshot{Server: ts.server}
	if b, err := os.ReadFile(filepath.Join(ts.dir, "telemetry.json")); err == nil {
		var s TelemetrySnapshot
		if json.Unmarshal(b, &s) == nil {
			snap = &s
		}
	}
	if f, err := os.Open(filepath.Join(ts.dir, "telemetry.journal")); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var e telemetryEntry
			if json.Unmarshal(line, &e) != nil {
				continue // truncated or corrupt tail: skip, keep going
			}
			switch {
			case e.Rollup != nil:
				snap.Rollups = append(snap.Rollups, *e.Rollup)
			case e.Alert != nil:
				snap.Alerts = append(snap.Alerts, *e.Alert)
			case e.Usage != nil:
				snap.Usage = e.Usage // whole-table entries: last wins
			case e.Peers != nil:
				snap.Peers = e.Peers
			case e.HeatKeys != nil:
				snap.HeatKeys = e.HeatKeys
			case e.HeatObjects != nil:
				snap.HeatObjects = e.HeatObjects
			}
		}
		f.Close()
	}
	snap.Rollups = dedupRollups(snap.Rollups)
	return snap
}

// dedupRollups sorts by capture time and drops duplicates — compaction
// overlap (snapshot + journal both holding an entry) is expected.
func dedupRollups(rus []Rollup) []Rollup {
	if len(rus) == 0 {
		return nil
	}
	sort.Slice(rus, func(i, j int) bool { return rus[i].At.Before(rus[j].At) })
	out := rus[:1]
	for _, r := range rus[1:] {
		if !r.At.Equal(out[len(out)-1].At) {
			out = append(out, r)
		}
	}
	return out
}

// Flush appends everything new since the previous flush: rollups past
// the high-water mark, alert-log entries past the last flushed
// sequence, and the current usage/peer tables. Every
// telemetryCompactEvery flushes it compacts instead. log may be nil
// (no SLO evaluator attached).
func (ts *TelemetryStore) Flush(reg *Registry, log *AlertLog, now time.Time) error {
	if ts == nil || reg == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.flushes++
	if ts.flushes%telemetryCompactEvery == 0 {
		return ts.compact(reg, log, now)
	}
	for _, ru := range reg.Rollups().Recent(0) {
		if !ru.At.After(ts.lastRollup) {
			continue
		}
		r := ru
		if err := ts.enc.Encode(telemetryEntry{Rollup: &r}); err != nil {
			return err
		}
		ts.lastRollup = ru.At
	}
	if log != nil {
		fresh, total := log.TailAfter(ts.alertsSeen)
		for _, a := range fresh {
			al := a
			if err := ts.enc.Encode(telemetryEntry{Alert: &al}); err != nil {
				return err
			}
		}
		ts.alertsSeen = total
	}
	if rows := reg.Usage().Snapshot(); len(rows) > 0 {
		if err := ts.enc.Encode(telemetryEntry{Usage: rows}); err != nil {
			return err
		}
	}
	if rows := reg.Peers().Snapshot(); len(rows) > 0 {
		if err := ts.enc.Encode(telemetryEntry{Peers: rows}); err != nil {
			return err
		}
	}
	if rows := reg.HeatKeys().Snapshot(); len(rows) > 0 {
		if err := ts.enc.Encode(telemetryEntry{HeatKeys: rows}); err != nil {
			return err
		}
	}
	if rows := reg.HeatObjects().Snapshot(); len(rows) > 0 {
		if err := ts.enc.Encode(telemetryEntry{HeatObjects: rows}); err != nil {
			return err
		}
	}
	return nil
}

// Compact rewrites the snapshot from live state (pruned to retention)
// and truncates the journal.
func (ts *TelemetryStore) Compact(reg *Registry, log *AlertLog, now time.Time) error {
	if ts == nil || reg == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.compact(reg, log, now)
}

func (ts *TelemetryStore) compact(reg *Registry, log *AlertLog, now time.Time) error {
	cutoff := time.Time{}
	if ts.retention > 0 {
		cutoff = now.Add(-ts.retention)
	}
	snap := TelemetrySnapshot{SavedAt: now, Server: ts.server}
	for _, ru := range reg.Rollups().Recent(0) {
		if ru.At.Before(cutoff) {
			continue
		}
		snap.Rollups = append(snap.Rollups, ru)
		if ru.At.After(ts.lastRollup) {
			ts.lastRollup = ru.At
		}
	}
	// Restored alerts are re-seeded into the live log at boot, so the
	// live log is the single source of alert history here.
	if log != nil {
		for _, a := range log.Recent(0) {
			if a.At.Before(cutoff) {
				continue
			}
			snap.Alerts = append(snap.Alerts, a)
		}
		ts.alertsSeen = log.Total()
	}
	snap.Usage = reg.Usage().Snapshot()
	snap.Peers = reg.Peers().Snapshot()
	snap.HeatKeys = reg.HeatKeys().Snapshot()
	snap.HeatObjects = reg.HeatObjects().Snapshot()

	b, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	tmp := filepath.Join(ts.dir, "telemetry.json.tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(ts.dir, "telemetry.json")); err != nil {
		return err
	}
	// Snapshot durable: start a fresh journal. A crash before this point
	// leaves the old journal whole — replay dedups the overlap.
	if ts.f != nil {
		ts.f.Close()
	}
	f, err := os.OpenFile(filepath.Join(ts.dir, "telemetry.journal"), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		ts.f, ts.enc = nil, nil
		return err
	}
	ts.f, ts.enc = f, json.NewEncoder(f)
	return nil
}

// Close compacts one final time (so a clean shutdown persists right up
// to the last capture) and releases the journal.
func (ts *TelemetryStore) Close(reg *Registry, log *AlertLog, now time.Time) error {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var err error
	if reg != nil {
		err = ts.compact(reg, log, now)
	}
	if ts.f != nil {
		if cerr := ts.f.Close(); err == nil {
			err = cerr
		}
		ts.f, ts.enc = nil, nil
	}
	return err
}

// seedFrom re-applies one rollup's cumulative values onto a freshly
// created registry, so live atomics resume where the previous process
// stopped and window deltas against restored baselines stay exact.
func (r *Registry) seedFrom(ru Rollup) {
	if r == nil {
		return
	}
	for k, v := range ru.Counters {
		if strings.HasPrefix(k, "heat.") {
			// Heat counters are folded from the restored heat tables at
			// snapshot time, never registered live: seeding them here
			// would strand dead names once the sketch evicts the key.
			continue
		}
		c := r.Counter(k)
		c.Add(v - c.Value())
	}
	for k, v := range ru.Gauges {
		r.Gauge(k).Set(v)
	}
	for k, o := range ru.Ops {
		op := r.Op(k)
		op.count.Add(o.Count - op.count.Value())
		op.errs.Add(o.Errors - op.errs.Value())
		op.lat.count.Add(o.Count - op.lat.count.Load())
		op.lat.sumNano.Add(o.TotalMicros*1000 - op.lat.sumNano.Load())
		for i := range o.Buckets {
			op.lat.buckets[i].Add(o.Buckets[i] - op.lat.buckets[i].Load())
		}
	}
}

// Restore refills the ring from persisted rollups, oldest first. The
// caller seeds the live registry separately (seedFrom) so WindowAt
// deltas against these baselines stay consistent.
func (rr *RollupRing) Restore(rus []Rollup) {
	if rr == nil {
		return
	}
	for _, ru := range rus {
		rr.Add(ru)
	}
}

// Restore refills the table from persisted rows (telemetry boot
// replay). Existing rows with the same key are replaced.
func (u *UsageTable) Restore(rows []UsageStat) {
	if u == nil {
		return
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, st := range rows {
		if st.User == "" {
			continue
		}
		if len(u.m) >= maxUsageKeys+64 {
			return
		}
		s := st
		u.m[usageKey{user: st.User, coll: st.Collection}] = &s
	}
}
