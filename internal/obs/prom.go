package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus dumps the registry in the Prometheus text exposition
// format: every metric gets `# HELP`/`# TYPE` headers, dotted names
// become `srb_`-prefixed underscore names, and each Op's latency
// histogram is emitted as cumulative `_bucket{le="..."}` series (in
// seconds) with `_sum`/`_count`, so a stock Prometheus scraper can
// consume the srbd admin endpoint directly. The original plain dump
// stays available at /metrics?format=text.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder

	writeHeader := func(name, typ, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	writeHeader("srb_build_info", "gauge", "Build version, injected at link time; value is always 1.")
	fmt.Fprintf(&b, "srb_build_info{version=%q} 1\n", buildVersion(s))

	writeHeader("srb_uptime_seconds", "gauge", "Seconds since the telemetry registry was created.")
	fmt.Fprintf(&b, "srb_uptime_seconds %s\n", formatFloat(s.UptimeSeconds))

	for _, k := range sortedKeys(s.Counters) {
		name := promName(k) + "_total"
		writeHeader(name, "counter", "Counter "+k+".")
		fmt.Fprintf(&b, "%s %d\n", name, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		name := promName(k)
		writeHeader(name, "gauge", "Gauge "+k+".")
		fmt.Fprintf(&b, "%s %d\n", name, s.Gauges[k])
	}

	opNames := make([]string, 0, len(s.Ops))
	for k := range s.Ops {
		opNames = append(opNames, k)
	}
	sort.Strings(opNames)
	for _, k := range opNames {
		o := s.Ops[k]
		base := promName(k)
		writeHeader(base+"_ops_total", "counter", "Completed "+k+" operations.")
		fmt.Fprintf(&b, "%s_ops_total %d\n", base, o.Count)
		writeHeader(base+"_errors_total", "counter", "Failed "+k+" operations.")
		fmt.Fprintf(&b, "%s_errors_total %d\n", base, o.Errors)
		writeHeader(base+"_duration_seconds", "histogram", "Latency of "+k+" operations.")
		var cum int64
		for _, bk := range o.Buckets {
			cum += bk.Count
			// The last pow2 bucket is open-ended: its count belongs only
			// to +Inf, not to a finite le bound it does not actually obey.
			if bk.UpperMicros >= BucketUpperMicros(histBuckets-1) {
				continue
			}
			fmt.Fprintf(&b, "%s_duration_seconds_bucket{le=\"%s\"} %d\n",
				base, formatFloat(float64(bk.UpperMicros)/1e6), cum)
		}
		fmt.Fprintf(&b, "%s_duration_seconds_bucket{le=\"+Inf\"} %d\n", base, cum)
		fmt.Fprintf(&b, "%s_duration_seconds_sum %s\n", base, formatFloat(float64(o.TotalMicros)/1e6))
		fmt.Fprintf(&b, "%s_duration_seconds_count %d\n", base, o.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// buildVersion prefers the snapshot's stamped version (set by the
// server that produced it, which may be a remote peer) over this
// binary's own.
func buildVersion(s Snapshot) string {
	if s.Version != "" {
		return s.Version
	}
	return Version
}

// promName maps a dotted registry name to a legal Prometheus metric
// name: srb_ prefix, every non-[a-zA-Z0-9_] rune replaced with '_'.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("srb_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
