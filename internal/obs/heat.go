// The heat observatory's sketch: a bounded space-saving top-K table
// tracking the hottest catalog keys (broker dispatch, per depth-2
// routing prefix) and the hottest data objects (replica read path).
// Two decoupled measures live on each row: a monotonic observation
// count, folded into the rollup ring as heat.key.* / heat.object.*
// counters so Window/MergeWindows and the grid fan-out report heat
// rates unchanged, and a decayed score used for ranking and eviction
// so last week's hotspot cannot shadow this minute's. Persisted
// through the telemetry journal like the peer observatory.
package obs

import (
	"sort"
	"sync"
	"time"
)

// DefaultHeatK is how many entries each heat table tracks. Space-saving
// guarantees any key whose true frequency exceeds 1/K of the stream is
// retained, so 64 slots comfortably cover a "top 10 hot prefixes" view
// even under adversarial churn.
const DefaultHeatK = 64

// heatDecayFloor: rows whose decayed score falls below this are dropped
// at Decay time, freeing slots instead of letting cold history pin them.
const heatDecayFloor = 0.25

// HeatStat is one heat-table row, JSON-ready for the wire HeatReply,
// the admin /heat endpoint and the telemetry journal.
type HeatStat struct {
	// Key is the tracked key: a depth-2 routing prefix ("/zone/project")
	// in the key table, a full object path in the object table.
	Key string `json:"key"`
	// Count is the observations recorded while this row was tracked
	// (monotonic; feeds the rollup counters).
	Count int64 `json:"count"`
	// Bytes is the payload volume those observations moved.
	Bytes int64 `json:"bytes,omitempty"`
	// Score is the decayed ranking weight: +1 per observation,
	// multiplied down by each Decay. Rows are ranked and evicted by it.
	Score float64 `json:"score"`
	// ErrFloor is the space-saving overestimate bound: the evicted
	// score this row inherited at insertion. True score >= Score-ErrFloor.
	ErrFloor float64 `json:"errFloor,omitempty"`
	LastSeen time.Time `json:"lastSeen,omitempty"`
}

// HeatTable is a concurrent space-saving sketch over one key space.
// Safe for concurrent use; all methods tolerate a nil receiver
// (instrumentation off).
type HeatTable struct {
	prefix string // counter-name prefix for the rollup fold
	k      int

	mu        sync.Mutex
	m         map[string]*HeatStat
	evictions int64
}

// NewHeatTable returns a table tracking at most k keys (k <= 0 selects
// DefaultHeatK). prefix namespaces the folded rollup counters
// ("heat.key.", "heat.object.").
func NewHeatTable(prefix string, k int) *HeatTable {
	if k <= 0 {
		k = DefaultHeatK
	}
	return &HeatTable{prefix: prefix, k: k, m: make(map[string]*HeatStat, k)}
}

// Record accounts one observation of key moving bytes. When the table
// is full the minimum-score row is evicted and the newcomer inherits
// its score as the overestimate floor — the space-saving update, which
// is what bounds memory while keeping true heavy hitters in the table.
func (t *HeatTable) Record(key string, bytes int64) {
	if t == nil || key == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if row, ok := t.m[key]; ok {
		row.Count++
		row.Score++
		row.Bytes += bytes
		row.LastSeen = time.Now()
		return
	}
	if len(t.m) < t.k {
		t.m[key] = &HeatStat{Key: key, Count: 1, Bytes: bytes, Score: 1, LastSeen: time.Now()}
		return
	}
	// Full: displace the coldest row.
	var victim *HeatStat
	for _, row := range t.m {
		if victim == nil || row.Score < victim.Score {
			victim = row
		}
	}
	delete(t.m, victim.Key)
	t.evictions++
	t.m[key] = &HeatStat{
		Key: key, Count: 1, Bytes: bytes,
		Score: victim.Score + 1, ErrFloor: victim.Score,
		LastSeen: time.Now(),
	}
}

// Decay multiplies every score by factor (clamped to [0,1)), dropping
// rows that fall below the retention floor. A periodic job drives it so
// ranking follows current load, not lifetime totals.
func (t *HeatTable) Decay(factor float64) {
	if t == nil {
		return
	}
	if factor < 0 {
		factor = 0
	}
	if factor >= 1 {
		factor = 0.99
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for key, row := range t.m {
		row.Score *= factor
		row.ErrFloor *= factor
		if row.Score < heatDecayFloor {
			delete(t.m, key)
		}
	}
}

// Snapshot returns every row, hottest first (score descending, ties by
// key for deterministic output).
func (t *HeatTable) Snapshot() []HeatStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]HeatStat, 0, len(t.m))
	for _, row := range t.m {
		out = append(out, *row)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Evictions reports how many rows space-saving displaced (lifetime).
func (t *HeatTable) Evictions() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evictions
}

// Restore refills the table from persisted rows (telemetry boot
// replay). Existing rows with the same key are replaced; rows beyond
// capacity are dropped (Snapshot order is hottest-first, so callers
// restoring a snapshot keep the hottest).
func (t *HeatTable) Restore(rows []HeatStat) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, st := range rows {
		if st.Key == "" {
			continue
		}
		if len(t.m) >= t.k {
			return
		}
		s := st
		t.m[st.Key] = &s
	}
}

// foldCounters merges each row's monotonic count into dst under the
// table's counter prefix — the hook Snapshot/CaptureRollup/WindowAt use
// to make heat ride the existing rollup ring.
func (t *HeatTable) foldCounters(dst map[string]int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for key, row := range t.m {
		dst[t.prefix+key] = row.Count
	}
}

// HeatKeys returns the registry's hot-key table (depth-2 routing
// prefixes, fed from the broker dispatch path).
func (r *Registry) HeatKeys() *HeatTable {
	if r == nil {
		return nil
	}
	return r.heatKeys
}

// HeatObjects returns the registry's hot-object table (full object
// paths, fed from the replica read path).
func (r *Registry) HeatObjects() *HeatTable {
	if r == nil {
		return nil
	}
	return r.heatObjects
}

// foldHeat merges both heat tables' counts into a counter map.
func (r *Registry) foldHeat(dst map[string]int64) {
	if r == nil {
		return
	}
	r.heatKeys.foldCounters(dst)
	r.heatObjects.foldCounters(dst)
}
