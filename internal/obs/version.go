package obs

// Version is the build version stamped into every daemon via
//
//	go build -ldflags "-X gosrb/internal/obs.Version=v1.2.3"
//
// It surfaces in /healthz, `srb stat`, the OpStats snapshot and the
// Prometheus exposition as the srb_build_info gauge, so operators can
// tell at a glance which build each zone member runs.
var Version = "dev"
