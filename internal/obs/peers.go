// The peer transfer observatory: a bounded per-peer / per-resource
// transfer-history table fed by the federation chokepoint (every peer
// round trip), the replica read path (every driver read) and the
// client. Rows keep EWMA latency and bandwidth, lifetime success rate
// and the same pow2 latency histogram the op metrics use, so the table
// is directly comparable with windowed op stats — and is the ranked
// input a cost-model replica selector needs (Replica Selection in the
// Globus Data Grid estimates transfer cost exactly from this kind of
// observed history). Persisted through the telemetry journal.
package obs

import (
	"sort"
	"sync"
	"time"
)

// ewmaAlpha weights the newest observation in the moving averages: high
// enough to follow a regime change within a handful of transfers, low
// enough that one outlier does not rewrite history.
const ewmaAlpha = 0.2

// maxPeerRows bounds the table so adversarial resource churn cannot
// grow it without limit; once full, new keys are dropped.
const maxPeerRows = 256

// PeerStat is one observatory row: either a federated peer (Peer set)
// or a local storage resource (Resource set). JSON-ready for the wire
// PeersReply, the admin /peers endpoint and the telemetry journal.
type PeerStat struct {
	Peer     string `json:",omitempty"`
	Resource string `json:",omitempty"`
	Ops      int64
	Errors   int64
	Bytes    int64
	// EWMALatMicros is the exponentially weighted moving average of
	// observed call latency.
	EWMALatMicros float64
	// EWMABytesPerSec is the EWMA of observed throughput, computed only
	// from calls that actually moved bytes.
	EWMABytesPerSec float64
	// SuccessPct is lifetime (Ops-Errors)/Ops, where an error means a
	// transport-level failure — an application error proves the target
	// alive and counts as success.
	SuccessPct float64
	LastSeen   time.Time
	Buckets    []BucketCount `json:",omitempty"`
}

// peerKey identifies one observatory row.
type peerKey struct {
	peer     string
	resource string
}

// peerRow is the mutable state behind one PeerStat.
type peerRow struct {
	stat    PeerStat
	buckets [histBuckets]int64
}

// PeerHistory is the observatory table. Safe for concurrent use; all
// methods tolerate a nil receiver (instrumentation off).
type PeerHistory struct {
	mu sync.Mutex
	m  map[peerKey]*peerRow
}

// NewPeerHistory returns an empty table.
func NewPeerHistory() *PeerHistory {
	return &PeerHistory{m: make(map[peerKey]*peerRow)}
}

// Record accounts one transfer against (peer, resource): latency d,
// bytes moved (0 = a control round trip), and whether it failed at the
// transport level.
func (p *PeerHistory) Record(peer, resource string, d time.Duration, bytes int64, failed bool) {
	if p == nil || (peer == "" && resource == "") {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := peerKey{peer: peer, resource: resource}
	row, ok := p.m[key]
	if !ok {
		if len(p.m) >= maxPeerRows {
			return
		}
		row = &peerRow{stat: PeerStat{Peer: peer, Resource: resource}}
		p.m[key] = row
	}
	st := &row.stat
	st.Ops++
	if failed {
		st.Errors++
	}
	st.Bytes += bytes
	st.LastSeen = time.Now()
	lat := float64(d.Microseconds())
	if st.EWMALatMicros == 0 {
		st.EWMALatMicros = lat
	} else {
		st.EWMALatMicros += ewmaAlpha * (lat - st.EWMALatMicros)
	}
	if bytes > 0 && d > 0 {
		bps := float64(bytes) / d.Seconds()
		if st.EWMABytesPerSec == 0 {
			st.EWMABytesPerSec = bps
		} else {
			st.EWMABytesPerSec += ewmaAlpha * (bps - st.EWMABytesPerSec)
		}
	}
	row.buckets[bucketOf(d)]++
}

// Snapshot returns every row, success rate computed and histogram
// folded to non-empty buckets, sorted peers first then resources.
func (p *PeerHistory) Snapshot() []PeerStat {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]PeerStat, 0, len(p.m))
	for _, row := range p.m {
		st := row.stat
		st.Buckets = nil
		if st.Ops > 0 {
			st.SuccessPct = 100 * float64(st.Ops-st.Errors) / float64(st.Ops)
		}
		for k, n := range row.buckets {
			if n > 0 {
				st.Buckets = append(st.Buckets, BucketCount{UpperMicros: BucketUpperMicros(k), Count: n})
			}
		}
		out = append(out, st)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if (out[i].Peer == "") != (out[j].Peer == "") {
			return out[i].Peer != ""
		}
		if out[i].Peer != out[j].Peer {
			return out[i].Peer < out[j].Peer
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}

// Restore refills the table from persisted rows (telemetry boot
// replay), re-expanding the folded histograms. Existing rows with the
// same key are replaced.
func (p *PeerHistory) Restore(rows []PeerStat) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, st := range rows {
		if st.Peer == "" && st.Resource == "" {
			continue
		}
		if len(p.m) >= maxPeerRows {
			return
		}
		row := &peerRow{stat: st}
		for _, b := range st.Buckets {
			if k := bucketIndexOf(b.UpperMicros); k >= 0 {
				row.buckets[k] = b.Count
			}
		}
		row.stat.Buckets = nil
		p.m[peerKey{peer: st.Peer, resource: st.Resource}] = row
	}
}

// bucketIndexOf maps a snapshot bucket bound back to its index
// (-1 for a bound no pow2 bucket produces).
func bucketIndexOf(upperMicros int64) int {
	for k := 0; k < histBuckets; k++ {
		if BucketUpperMicros(k) == upperMicros {
			return k
		}
	}
	return -1
}

// Peers returns the registry's transfer observatory table.
func (r *Registry) Peers() *PeerHistory {
	if r == nil {
		return nil
	}
	return r.peers
}
