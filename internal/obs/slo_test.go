package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseSLORules(t *testing.T) {
	src := `
# latency objectives
get p99 < 50ms over 5m
server.put p95 < 200ms over 1m
error_rate < 1% over 30m   # aggregate, 5-field form
get rate > 0.1 over 10m
`
	rules, err := ParseSLORules(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	r := rules[0]
	if r.Name != "get_p99_5m" || r.Target != "get" || r.Metric != SLOP99 ||
		!r.Less || r.Threshold != 50000 || r.Window != 5*time.Minute {
		t.Errorf("rule 0 = %+v, want get p99 < 50000µs over 5m", r)
	}
	if r := rules[1]; r.Name != "server_put_p95_1m" || r.Threshold != 200000 {
		t.Errorf("rule 1 = %+v, want server.put p95 < 200000µs", r)
	}
	if r := rules[2]; r.Target != "*" || r.Name != "all_error_rate_30m" || r.Threshold != 1 {
		t.Errorf("rule 2 = %+v, want aggregate error_rate < 1", r)
	}
	if r := rules[3]; r.Less || r.Threshold != 0.1 || r.Metric != SLORate {
		t.Errorf("rule 3 = %+v, want rate floor > 0.1", r)
	}
}

func TestParseSLORulesRejects(t *testing.T) {
	for _, bad := range []string{
		"get p42 < 50ms over 5m",         // unknown metric
		"get p99 <= 50ms over 5m",        // bad comparator
		"p99 < 50ms over 5m",             // quantile needs a target
		"get p99 < fast over 5m",         // bad threshold
		"get p99 < 50ms over soon",       // bad window
		"get p99 < 50ms within 5m",       // missing "over"
		"get p99 < 50ms over 5m\nget p99 < 90ms over 5m", // duplicate name
	} {
		if _, err := ParseSLORules(bad); err == nil {
			t.Errorf("ParseSLORules(%q) should fail", bad)
		}
	}
}

// sloFixture is a registry with a backdated baseline so WindowAt(now,
// 5m) covers exactly the activity recorded after the fixture returns.
func sloFixture(t *testing.T) (*Registry, time.Time) {
	t.Helper()
	reg := NewRegistry()
	now := time.Now()
	reg.CaptureRollup(now.Add(-5 * time.Minute))
	return reg, now
}

func TestSLOEvaluateFireAndResolve(t *testing.T) {
	reg, now := sloFixture(t)
	rules, err := ParseSLORules("get p99 < 50ms over 5m")
	if err != nil {
		t.Fatal(err)
	}
	ev := NewSLOEvaluator(reg, rules)

	// Healthy traffic: p99 ≈ 1ms, well under the objective.
	for i := 0; i < 100; i++ {
		reg.Op("server.get").Observe(time.Millisecond, nil)
	}
	st := ev.Evaluate(now)
	if len(st) != 1 || st[0].Violating {
		t.Fatalf("healthy eval = %+v, want not violating", st)
	}
	if n := len(ev.AlertLog().Recent(0)); n != 0 {
		t.Fatalf("healthy eval appended %d alerts, want 0", n)
	}
	if st[0].BurnPct <= 0 || st[0].BurnPct >= 100 {
		t.Errorf("healthy burn = %v%%, want inside the budget (0..100)", st[0].BurnPct)
	}

	// Latency spike: rebaseline, then make every in-window call slow.
	reg.CaptureRollup(now)
	for i := 0; i < 100; i++ {
		reg.Op("server.get").Observe(100*time.Millisecond, nil)
	}
	now = now.Add(5 * time.Minute)
	st = ev.Evaluate(now)
	if !st[0].Violating {
		t.Fatalf("spike eval = %+v, want violating", st[0])
	}
	if st[0].BurnPct < 100 {
		t.Errorf("spike burn = %v%%, want >= 100", st[0].BurnPct)
	}
	alerts := ev.AlertLog().Recent(0)
	if len(alerts) != 1 || !alerts[0].Firing {
		t.Fatalf("alerts = %+v, want one FIRED transition", alerts)
	}
	if reg.Gauge("slo.get_p99_5m.violating").Value() != 1 || reg.Gauge("slo.violating").Value() != 1 {
		t.Error("violation gauges not set")
	}
	if ev.Firing() != 1 {
		t.Errorf("Firing = %d, want 1", ev.Firing())
	}

	// Recovery: rebaseline past the spike, fast traffic only.
	reg.CaptureRollup(now)
	for i := 0; i < 100; i++ {
		reg.Op("server.get").Observe(time.Millisecond, nil)
	}
	now = now.Add(5 * time.Minute)
	st = ev.Evaluate(now)
	if st[0].Violating {
		t.Fatalf("recovered eval = %+v, want resolved", st[0])
	}
	alerts = ev.AlertLog().Recent(0)
	if len(alerts) != 2 || alerts[1].Firing {
		t.Fatalf("alerts = %+v, want FIRED then RESOLVED", alerts)
	}
	if reg.Gauge("slo.violating").Value() != 0 {
		t.Error("aggregate gauge should clear on resolve")
	}
	// Steady state: no transition, no new log entries.
	ev.Evaluate(now.Add(time.Second))
	if n := len(ev.AlertLog().Recent(0)); n != 2 {
		t.Errorf("steady eval appended alerts: %d, want 2", n)
	}
}

func TestSLONoDataResolvesFiringRule(t *testing.T) {
	reg, now := sloFixture(t)
	rules, _ := ParseSLORules("get error_rate < 1% over 5m")
	ev := NewSLOEvaluator(reg, rules)
	for i := 0; i < 10; i++ {
		reg.Op("server.get").Observe(time.Millisecond, errTest)
	}
	if st := ev.Evaluate(now); !st[0].Violating {
		t.Fatal("100% errors should violate a 1% objective")
	}
	// The bad traffic ages out of the window entirely.
	reg.CaptureRollup(now)
	if st := ev.Evaluate(now.Add(5 * time.Minute)); st[0].Violating {
		t.Fatalf("no data should resolve, got %+v", st[0])
	}
	if alerts := ev.AlertLog().Recent(0); len(alerts) != 2 || alerts[1].Firing {
		t.Fatalf("alerts = %+v, want fire then resolve", alerts)
	}
}

func TestSLOAggregateAndRateRules(t *testing.T) {
	reg, now := sloFixture(t)
	rules, err := ParseSLORules("error_rate < 10% over 5m\nget rate > 1 over 5m")
	if err != nil {
		t.Fatal(err)
	}
	ev := NewSLOEvaluator(reg, rules)
	// 2 ops span families: 1 error in 4 calls = 25% aggregate; the get
	// rate over 300s is far below 1/s, so the floor rule fires too.
	reg.Op("server.get").Observe(time.Millisecond, nil)
	reg.Op("server.get").Observe(time.Millisecond, errTest)
	reg.Op("web.browse").Observe(time.Millisecond, nil)
	reg.Op("web.browse").Observe(time.Millisecond, nil)
	st := ev.Evaluate(now)
	if !st[0].Violating {
		t.Errorf("aggregate error_rate = %+v, want violating (25%% > 10%%)", st[0])
	}
	if st[0].Observed != 25 {
		t.Errorf("aggregate observed = %v, want 25", st[0].Observed)
	}
	if !st[1].Violating {
		t.Errorf("rate floor = %+v, want violating (throughput below 1/s)", st[1])
	}
}

func TestSLOTargetResolution(t *testing.T) {
	reg, now := sloFixture(t)
	// Bare "browse" resolves through the web. prefix, so one rule file
	// serves both daemons.
	rules, _ := ParseSLORules("browse p50 < 1ms over 5m")
	ev := NewSLOEvaluator(reg, rules)
	for i := 0; i < 10; i++ {
		reg.Op("web.browse").Observe(50*time.Millisecond, nil)
	}
	if st := ev.Evaluate(now); !st[0].Violating {
		t.Fatalf("prefix-resolved rule = %+v, want violating", st[0])
	}
}

func TestAlertLogBounded(t *testing.T) {
	l := NewAlertLog(4)
	for i := 0; i < 10; i++ {
		l.Add(Alert{Rule: string(rune('a' + i))})
	}
	got := l.Recent(0)
	if len(got) != 4 {
		t.Fatalf("Recent(0) len = %d, want 4", len(got))
	}
	var names []string
	for _, a := range got {
		names = append(names, a.Rule)
	}
	if s := strings.Join(names, ""); s != "ghij" {
		t.Errorf("retained = %q, want the newest four (ghij)", s)
	}
}

var errTest = errOf("test failure")

type errOf string

func (e errOf) Error() string { return string(e) }
