package obs

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func rollupAt(at time.Time, op string, count int64) Rollup {
	r := Rollup{At: at, Counters: map[string]int64{}, Gauges: map[string]int64{}, Ops: map[string]OpRollup{}}
	if op != "" {
		r.Ops[op] = OpRollup{Count: count}
	}
	return r
}

func TestRollupRingWraparound(t *testing.T) {
	rr := NewRollupRing(4)
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		rr.Add(rollupAt(base.Add(time.Duration(i)*time.Minute), "get", int64(i)))
	}
	if got := rr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	recent := rr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent(0) len = %d, want 4", len(recent))
	}
	// Oldest two (i=0,1) were displaced; survivors are i=2..5 oldest
	// first.
	for i, r := range recent {
		want := base.Add(time.Duration(i+2) * time.Minute)
		if !r.At.Equal(want) {
			t.Errorf("recent[%d].At = %v, want %v", i, r.At, want)
		}
	}
	if got := rr.Recent(2); len(got) != 2 || !got[1].At.Equal(base.Add(5*time.Minute)) {
		t.Errorf("Recent(2) = %v, want the two newest", got)
	}
}

func TestRollupBaseline(t *testing.T) {
	rr := NewRollupRing(4)
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	if _, ok := rr.Baseline(base); ok {
		t.Fatal("empty ring should report ok=false")
	}
	for i := 0; i < 6; i++ { // wraps: retains minutes 2..5
		rr.Add(rollupAt(base.Add(time.Duration(i)*time.Minute), "get", int64(i)))
	}
	// Exact hit: newest rollup at or before the cutoff.
	got, ok := rr.Baseline(base.Add(3*time.Minute + 30*time.Second))
	if !ok || !got.At.Equal(base.Add(3*time.Minute)) {
		t.Errorf("Baseline(3m30s) = %v ok=%v, want the 3m rollup", got.At, ok)
	}
	// Cutoff before retention: the oldest retained rollup stands in —
	// the window degrades to "since the oldest data we have".
	got, ok = rr.Baseline(base.Add(-time.Hour))
	if !ok || !got.At.Equal(base.Add(2*time.Minute)) {
		t.Errorf("Baseline(pre-retention) = %v ok=%v, want the oldest retained (2m)", got.At, ok)
	}
}

func TestWindowRates(t *testing.T) {
	reg := NewRegistry()
	now := time.Now()
	reg.Counter("bytes").Add(10)
	for i := 0; i < 40; i++ {
		reg.Op("server.get").Observe(time.Millisecond, nil)
	}
	// Baseline capture stamped 5 minutes in the past: everything above
	// is outside the window, everything below inside it.
	reg.CaptureRollup(now.Add(-5 * time.Minute))
	reg.Counter("bytes").Add(30)
	for i := 0; i < 99; i++ {
		reg.Op("server.get").Observe(16*time.Millisecond, nil)
	}
	reg.Op("server.get").Observe(16*time.Millisecond, errors.New("boom"))

	ws := reg.WindowAt(now, 5*time.Minute)
	if ws.WindowSeconds != 300 {
		t.Fatalf("WindowSeconds = %v, want 300", ws.WindowSeconds)
	}
	if ws.CoveredSeconds < 299 || ws.CoveredSeconds > 301 {
		t.Fatalf("CoveredSeconds = %v, want ~300", ws.CoveredSeconds)
	}
	c := ws.Counters["bytes"]
	if c.Delta != 30 {
		t.Errorf("bytes delta = %d, want 30 (only in-window growth)", c.Delta)
	}
	if c.PerSec < 0.09 || c.PerSec > 0.11 {
		t.Errorf("bytes per_sec = %v, want ~0.1", c.PerSec)
	}
	o := ws.Ops["server.get"]
	if o.Count != 100 || o.Errors != 1 {
		t.Errorf("op delta = %d/%d errors, want 100/1", o.Count, o.Errors)
	}
	if o.ErrorPct < 0.9 || o.ErrorPct > 1.1 {
		t.Errorf("error pct = %v, want ~1", o.ErrorPct)
	}
	// All in-window observations were 16ms; the windowed p50 must land
	// in that bucket neighbourhood even though 40 older 1ms calls exist.
	if o.P50Micros < 8192 || o.P50Micros > 16384 {
		t.Errorf("windowed p50 = %v µs, want within the 16ms bucket", o.P50Micros)
	}
	if len(o.Buckets) == 0 {
		t.Error("windowed op should carry bucket deltas for grid merging")
	}
}

func TestWindowEmptyRingUsesRegistryStart(t *testing.T) {
	reg := NewRegistry()
	reg.Op("server.put").Observe(2*time.Millisecond, nil)
	ws := reg.Window(5 * time.Minute)
	if o := ws.Ops["server.put"]; o.Count != 1 {
		t.Errorf("count = %d, want 1 (no rollups yet → diff since start)", o.Count)
	}
	if ws.CoveredSeconds > 60 {
		t.Errorf("covered = %v, want the registry's short lifetime", ws.CoveredSeconds)
	}
}

func TestCaptureRollupConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				reg.Op("server.get").Observe(time.Microsecond, nil)
				reg.Counter("c").Inc()
				reg.Gauge("g").Set(1)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		reg.CaptureRollup(time.Now())
		reg.Window(time.Minute)
	}
	close(stop)
	wg.Wait()
	if reg.Rollups().Len() != 50 {
		t.Errorf("ring holds %d rollups, want 50", reg.Rollups().Len())
	}
}

func TestMergeWindows(t *testing.T) {
	// Server A: 90 fast ops (1024µs bucket); server B: 10 slow (1s).
	a := WindowStats{
		WindowSeconds:  300,
		CoveredSeconds: 300,
		Counters:       map[string]RateStat{"bytes": {Delta: 100, PerSec: 1}},
		Gauges:         map[string]int64{"breaker.open": 1},
		Ops: map[string]WindowOp{"server.get": {
			Count: 90, PerSec: 0.3,
			Buckets: []BucketCount{{UpperMicros: 1024, Count: 90}},
		}},
	}
	b := WindowStats{
		WindowSeconds:  300,
		CoveredSeconds: 120,
		Counters:       map[string]RateStat{"bytes": {Delta: 50, PerSec: 0.5}},
		Gauges:         map[string]int64{"breaker.open": 2},
		Ops: map[string]WindowOp{"server.get": {
			Count: 10, Errors: 10, PerSec: 0.1,
			Buckets: []BucketCount{{UpperMicros: 1 << 20, Count: 10}},
		}},
	}
	m := MergeWindows([]WindowStats{a, b})
	if m.CoveredSeconds != 300 {
		t.Errorf("coverage = %v, want the widest member (300)", m.CoveredSeconds)
	}
	if c := m.Counters["bytes"]; c.Delta != 150 || c.PerSec != 1.5 {
		t.Errorf("counters should sum: got %+v", c)
	}
	if m.Gauges["breaker.open"] != 3 {
		t.Errorf("gauges should sum: got %d", m.Gauges["breaker.open"])
	}
	o := m.Ops["server.get"]
	if o.Count != 100 || o.Errors != 10 {
		t.Fatalf("op merge = %d/%d, want 100/10", o.Count, o.Errors)
	}
	if o.ErrorPct != 10 {
		t.Errorf("merged error pct = %v, want 10", o.ErrorPct)
	}
	// A true cross-server quantile: p50 sits in A's fast bucket, p99 in
	// B's slow tail. Averaging per-server p99s could never show this.
	if o.P50Micros > 1024 {
		t.Errorf("grid p50 = %v, want within the fast bucket", o.P50Micros)
	}
	if o.P99Micros < float64(1<<19) {
		t.Errorf("grid p99 = %v, want in the slow tail (>= %d)", o.P99Micros, 1<<19)
	}
}

func TestWriteWindowText(t *testing.T) {
	reg := NewRegistry()
	now := time.Now()
	reg.CaptureRollup(now.Add(-time.Minute))
	reg.Counter("bytes").Add(60)
	reg.Op("server.get").Observe(time.Millisecond, nil)
	var buf bytes.Buffer
	if err := WriteWindowText(&buf, reg.WindowAt(now, time.Minute)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"window_seconds 60",
		"bytes.delta 60",
		"bytes.per_sec 1.00",
		"server.get.count 1",
		"server.get.p99_us",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("window text missing %q:\n%s", want, out)
		}
	}
}
