// SLO evaluation over the rollup ring. Operators declare rules in a
// plain-text file (one rule per line, srbd -slo-rules):
//
//	get p99 < 50ms over 5m          # windowed latency quantile
//	server.put p95 < 200ms over 1m
//	error_rate < 1% over 30m        # all-ops aggregate error rate
//	get rate > 0.1 over 10m         # throughput floor, ops/sec
//	replag_seconds < 30s over 5m    # shard replication lag (worst shard)
//
// A periodic job (riding the repair scheduler) evaluates each rule
// against the windowed view, computes error-budget burn (observed as a
// fraction of threshold) and appends fire/resolve transitions to a
// bounded alert log surfaced on /healthz (warn lines, no 503),
// /alerts, `srb alerts` and as slo.* gauges.
package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLOMetric names the measurable a rule constrains.
type SLOMetric string

const (
	SLOP50       SLOMetric = "p50"        // windowed 50th-percentile latency
	SLOP95       SLOMetric = "p95"        // windowed 95th-percentile latency
	SLOP99       SLOMetric = "p99"        // windowed 99th-percentile latency
	SLOErrorRate SLOMetric = "error_rate" // windowed errors / count, percent
	SLORate      SLOMetric = "rate"       // windowed ops per second
	// SLOReplag reads the mcat.shard.<n>.replag_seconds gauges: target
	// "*" takes the worst shard, an explicit target names one gauge.
	// Threshold is a duration, stored in seconds.
	SLOReplag SLOMetric = "replag_seconds"
)

// SLORule is one parsed objective: "<target> <metric> <cmp> <threshold>
// over <window>". Target "*" aggregates across every op family (only
// meaningful for error_rate and rate).
type SLORule struct {
	Name      string // slug, e.g. "get_p99_5m" — stable gauge/alert key
	Target    string // op family ("get", "server.put") or "*"
	Metric    SLOMetric
	Less      bool    // true: observed must stay below Threshold
	Threshold float64 // µs for quantiles, percent for error_rate, ops/sec for rate
	Window    time.Duration
	Raw       string // the source line, for display
}

// ParseSLORules parses one rule per line; blank lines and #-comments
// are skipped. Duplicate rule names (same target/metric/window) are an
// error so gauges stay unambiguous.
func ParseSLORules(src string) ([]SLORule, error) {
	var rules []SLORule
	seen := make(map[string]int)
	for ln, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		r, err := parseSLORule(line)
		if err != nil {
			return nil, fmt.Errorf("slo rules line %d: %w", ln+1, err)
		}
		if prev, dup := seen[r.Name]; dup {
			return nil, fmt.Errorf("slo rules line %d: duplicate rule %q (first on line %d)", ln+1, r.Name, prev)
		}
		seen[r.Name] = ln + 1
		rules = append(rules, r)
	}
	return rules, nil
}

func parseSLORule(line string) (SLORule, error) {
	f := strings.Fields(line)
	// 5-field form omits the target: "error_rate < 1% over 30m".
	if len(f) == 5 {
		f = append([]string{"*"}, f...)
	}
	if len(f) != 6 || f[4] != "over" {
		return SLORule{}, fmt.Errorf("want %q, got %q", "<target> <metric> <cmp> <threshold> over <window>", line)
	}
	r := SLORule{Target: f[0], Metric: SLOMetric(f[1]), Raw: line}
	switch r.Metric {
	case SLOP50, SLOP95, SLOP99, SLOErrorRate, SLORate, SLOReplag:
	default:
		return SLORule{}, fmt.Errorf("unknown metric %q (want p50, p95, p99, error_rate, rate or replag_seconds)", f[1])
	}
	if r.Target == "*" && (r.Metric == SLOP50 || r.Metric == SLOP95 || r.Metric == SLOP99) {
		return SLORule{}, fmt.Errorf("quantile rule needs a target op family, not %q", "*")
	}
	switch f[2] {
	case "<":
		r.Less = true
	case ">":
		r.Less = false
	default:
		return SLORule{}, fmt.Errorf("comparator %q (want < or >)", f[2])
	}
	th := f[3]
	switch r.Metric {
	case SLOReplag:
		d, err := time.ParseDuration(th)
		if err != nil {
			return SLORule{}, fmt.Errorf("threshold %q: %v", f[3], err)
		}
		r.Threshold = d.Seconds()
	case SLOErrorRate:
		th = strings.TrimSuffix(th, "%")
		v, err := strconv.ParseFloat(th, 64)
		if err != nil {
			return SLORule{}, fmt.Errorf("threshold %q: %v", f[3], err)
		}
		r.Threshold = v
	case SLORate:
		v, err := strconv.ParseFloat(th, 64)
		if err != nil {
			return SLORule{}, fmt.Errorf("threshold %q: %v", f[3], err)
		}
		r.Threshold = v
	default: // quantiles take a duration threshold, stored as µs
		d, err := time.ParseDuration(th)
		if err != nil {
			return SLORule{}, fmt.Errorf("threshold %q: %v", f[3], err)
		}
		r.Threshold = float64(d.Microseconds())
	}
	w, err := time.ParseDuration(f[5])
	if err != nil || w <= 0 {
		return SLORule{}, fmt.Errorf("window %q: %v", f[5], err)
	}
	r.Window = w
	r.Name = sloSlug(r.Target, string(r.Metric), f[5])
	return r, nil
}

func sloSlug(parts ...string) string {
	s := strings.Join(parts, "_")
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		case c == '*':
			b.WriteString("all")
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Alert is one fire/resolve transition in the alert log.
type Alert struct {
	At       time.Time
	Rule     string // rule name
	Raw      string // the source rule line
	Firing   bool   // true = fired, false = resolved
	Observed float64
	BurnPct  float64 // error-budget burn, observed/threshold × 100
	Detail   string  `json:",omitempty"`
}

// AlertLog is a bounded ring of alert transitions. total counts every
// Add ever made (including displaced entries) so the telemetry store
// can flush incrementally by sequence number.
type AlertLog struct {
	mu    sync.Mutex
	recs  []Alert
	start int
	count int
	total int64
}

// NewAlertLog returns a log holding up to capacity alerts (256 when
// capacity <= 0).
func NewAlertLog(capacity int) *AlertLog {
	if capacity <= 0 {
		capacity = 256
	}
	return &AlertLog{recs: make([]Alert, capacity)}
}

// Add appends one alert, displacing the oldest when full.
func (l *AlertLog) Add(a Alert) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if l.count < len(l.recs) {
		l.recs[(l.start+l.count)%len(l.recs)] = a
		l.count++
		return
	}
	l.recs[l.start] = a
	l.start = (l.start + 1) % len(l.recs)
}

// Total returns the lifetime number of alerts added (sequence
// high-water mark, not the retained count).
func (l *AlertLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// TailAfter returns the alerts added after sequence number seen (the
// value a previous Total or TailAfter reported), oldest first, plus the
// current total. Alerts displaced from the ring before being fetched
// are lost — acceptable for telemetry flushing, where the flush cadence
// is far shorter than the time 256 transitions take to accumulate.
func (l *AlertLog) TailAfter(seen int64) ([]Alert, int64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fresh := l.total - seen
	if fresh <= 0 {
		return nil, l.total
	}
	if fresh > int64(l.count) {
		fresh = int64(l.count)
	}
	out := make([]Alert, 0, fresh)
	for i := l.count - int(fresh); i < l.count; i++ {
		out = append(out, l.recs[(l.start+i)%len(l.recs)])
	}
	return out, l.total
}

// Recent returns up to n alerts, oldest first (n <= 0 returns all).
func (l *AlertLog) Recent(n int) []Alert {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.count {
		n = l.count
	}
	out := make([]Alert, 0, n)
	for i := l.count - n; i < l.count; i++ {
		out = append(out, l.recs[(l.start+i)%len(l.recs)])
	}
	return out
}

// SLOStatus is the current standing of one rule.
type SLOStatus struct {
	Rule      string
	Raw       string
	Violating bool
	Observed  float64
	BurnPct   float64
	Window    float64 // seconds
}

// SLOEvaluator periodically checks rules against a registry's rollup
// ring, maintaining per-rule firing state, slo.* gauges and the alert
// log. Evaluate is driven by a repair-scheduler job in the daemons and
// called directly (with an explicit now) in tests.
type SLOEvaluator struct {
	reg   *Registry
	rules []SLORule
	log   *AlertLog

	mu     sync.Mutex
	firing map[string]bool
	onFire func(now time.Time, rule SLORule, alert Alert)
}

// NewSLOEvaluator wires rules to a registry. A nil registry or empty
// rule set yields an evaluator whose Evaluate is a no-op.
func NewSLOEvaluator(reg *Registry, rules []SLORule) *SLOEvaluator {
	return &SLOEvaluator{reg: reg, rules: rules, log: NewAlertLog(0), firing: make(map[string]bool)}
}

// Rules returns the declared rules.
func (e *SLOEvaluator) Rules() []SLORule {
	if e == nil {
		return nil
	}
	return e.rules
}

// AlertLog returns the bounded transition log.
func (e *SLOEvaluator) AlertLog() *AlertLog {
	if e == nil {
		return nil
	}
	return e.log
}

// SetOnFire installs a hook invoked once per rule transition to FIRED
// (not on resolve), after Evaluate has released its lock — the flight
// recorder's capture trigger. The hook runs synchronously on the
// evaluating goroutine; a slow hook delays the next evaluation, so
// daemons wrap slow work (profile capture) in a goroutine.
func (e *SLOEvaluator) SetOnFire(fn func(now time.Time, rule SLORule, alert Alert)) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onFire = fn
}

// Evaluate checks every rule against the window ending at now and
// returns the current status of each. Transitions append to the alert
// log; slo.<name>.violating / slo.<name>.burn_pct and the aggregate
// slo.violating gauges are updated.
func (e *SLOEvaluator) Evaluate(now time.Time) []SLOStatus {
	if e == nil || e.reg == nil {
		return nil
	}
	type firedEvent struct {
		rule  SLORule
		alert Alert
	}
	var fired []firedEvent
	e.mu.Lock()
	statuses := make([]SLOStatus, 0, len(e.rules))
	violating := int64(0)
	for _, r := range e.rules {
		ws := e.reg.WindowAt(now, r.Window)
		observed, ok := observe(ws, r)
		st := SLOStatus{Rule: r.Name, Raw: r.Raw, Window: r.Window.Seconds(), Observed: observed}
		// No data in the window: not violating (and a firing rule
		// resolves — the traffic that breached it is gone).
		if ok {
			st.BurnPct = burnPct(r, observed)
			if r.Less {
				st.Violating = observed >= r.Threshold
			} else {
				st.Violating = observed <= r.Threshold
			}
		}
		if st.Violating {
			violating++
		}
		if st.Violating != e.firing[r.Name] {
			e.firing[r.Name] = st.Violating
			a := Alert{
				At:       now,
				Rule:     r.Name,
				Raw:      r.Raw,
				Firing:   st.Violating,
				Observed: observed,
				BurnPct:  st.BurnPct,
				Detail:   fmt.Sprintf("observed %.1f vs threshold %.1f over %s", observed, r.Threshold, r.Window),
			}
			e.log.Add(a)
			if st.Violating && e.onFire != nil {
				fired = append(fired, firedEvent{rule: r, alert: a})
			}
		}
		e.reg.Gauge("slo." + r.Name + ".violating").Set(b2i(st.Violating))
		e.reg.Gauge("slo." + r.Name + ".burn_pct").Set(int64(st.BurnPct))
		statuses = append(statuses, st)
	}
	e.reg.Gauge("slo.violating").Set(violating)
	hook := e.onFire
	e.mu.Unlock()
	// Fire hooks outside the lock: a hook that re-enters the evaluator
	// (Status, Firing) or captures an incident must not deadlock it.
	for _, ev := range fired {
		hook(now, ev.rule, ev.alert)
	}
	return statuses
}

// Status reports each rule's standing from the last Evaluate without
// re-evaluating (rules that never evaluated report zero values).
func (e *SLOEvaluator) Status() []SLOStatus {
	if e == nil || e.reg == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	statuses := make([]SLOStatus, 0, len(e.rules))
	for _, r := range e.rules {
		statuses = append(statuses, SLOStatus{
			Rule:      r.Name,
			Raw:       r.Raw,
			Window:    r.Window.Seconds(),
			Violating: e.firing[r.Name],
			BurnPct:   float64(e.reg.Gauge("slo." + r.Name + ".burn_pct").Value()),
		})
	}
	return statuses
}

// Firing reports how many rules are currently in violation.
func (e *SLOEvaluator) Firing() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, f := range e.firing {
		if f {
			n++
		}
	}
	return n
}

// observe extracts the rule's measurable from the window. ok is false
// when the window holds no matching activity.
func observe(ws WindowStats, r SLORule) (float64, bool) {
	if r.Metric == SLOReplag {
		return observeReplag(ws, r.Target)
	}
	if r.Target == "*" {
		var count, errs int64
		var rate float64
		for _, o := range ws.Ops {
			count += o.Count
			errs += o.Errors
			rate += o.PerSec
		}
		if count == 0 {
			return 0, false
		}
		switch r.Metric {
		case SLOErrorRate:
			return 100 * float64(errs) / float64(count), true
		case SLORate:
			return rate, true
		}
		return 0, false
	}
	o, ok := resolveTarget(ws, r.Target)
	if !ok || o.Count == 0 {
		return 0, false
	}
	switch r.Metric {
	case SLOP50:
		return o.P50Micros, true
	case SLOP95:
		return o.P95Micros, true
	case SLOP99:
		return o.P99Micros, true
	case SLOErrorRate:
		return o.ErrorPct, true
	case SLORate:
		return o.PerSec, true
	}
	return 0, false
}

// observeReplag reads replication-lag gauges out of the window. Target
// "*" reports the worst lag across every mcat.shard.<n>.replag_seconds
// gauge; an explicit target names one gauge, with or without the
// ".replag_seconds" suffix. ok is false when no gauge exists yet (the
// catalog is not sharded or replication never started).
func observeReplag(ws WindowStats, target string) (float64, bool) {
	if target == "*" {
		var worst float64
		found := false
		for k, v := range ws.Gauges {
			if strings.HasPrefix(k, "mcat.shard.") && strings.HasSuffix(k, ".replag_seconds") {
				found = true
				if f := float64(v); f > worst {
					worst = f
				}
			}
		}
		return worst, found
	}
	if v, ok := ws.Gauges[target]; ok {
		return float64(v), true
	}
	if v, ok := ws.Gauges[target+".replag_seconds"]; ok {
		return float64(v), true
	}
	return 0, false
}

// resolveTarget finds the op family a rule names: exact match first,
// then the conventional layer prefixes, so "get" finds "server.get" on
// srbd and "web.get" on mysrbd without per-daemon rule files.
func resolveTarget(ws WindowStats, target string) (WindowOp, bool) {
	if o, ok := ws.Ops[target]; ok {
		return o, true
	}
	for _, prefix := range []string{"server.", "broker.", "web."} {
		if o, ok := ws.Ops[prefix+target]; ok {
			return o, true
		}
	}
	return WindowOp{}, false
}

// burnPct is error-budget burn as a percentage: how much of the
// threshold the observed value consumed (for "<" rules), or the
// inverse for ">" floors. 100% = exactly at the objective.
func burnPct(r SLORule, observed float64) float64 {
	if r.Threshold == 0 {
		return 0
	}
	if r.Less {
		return 100 * observed / r.Threshold
	}
	if observed == 0 {
		return 0
	}
	return 100 * r.Threshold / observed
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
