package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Level selects how much a Logger emits.
type Level int32

const (
	// LevelError emits only errors — srbd's -quiet mode.
	LevelError Level = iota
	// LevelInfo adds operational events (the default).
	LevelInfo
	// LevelDebug adds per-request detail.
	LevelDebug
)

// Logger is a minimal leveled logger. It exists so server components
// never default to a silent sink: accept, auth and dispatch failures
// always have somewhere visible to go. Safe for concurrent use; all
// methods tolerate a nil receiver (logging disabled).
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
	level  atomic.Int32
	now    func() time.Time
}

// NewLogger returns a logger writing to w with the given prefix and
// level.
func NewLogger(w io.Writer, prefix string, lvl Level) *Logger {
	if prefix != "" {
		prefix += " "
	}
	l := &Logger{w: w, prefix: prefix, now: time.Now}
	l.level.Store(int32(lvl))
	return l
}

// SetLevel changes the emission threshold.
func (l *Logger) SetLevel(lvl Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(lvl))
}

// Enabled reports whether lvl would be emitted.
func (l *Logger) Enabled(lvl Level) bool {
	return l != nil && Level(l.level.Load()) >= lvl
}

func (l *Logger) emit(tag, format string, args ...any) {
	ts := l.now().UTC().Format("2006-01-02T15:04:05.000Z")
	msg := fmt.Sprintf(format, args...)
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "%s %-5s %s%s\n", ts, tag, l.prefix, msg)
}

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) {
	if !l.Enabled(LevelError) {
		return
	}
	l.emit("ERROR", format, args...)
}

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) {
	if !l.Enabled(LevelInfo) {
		return
	}
	l.emit("INFO", format, args...)
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) {
	if !l.Enabled(LevelDebug) {
		return
	}
	l.emit("DEBUG", format, args...)
}
