// Package obs is the grid's telemetry layer: dependency-free atomic
// counters, gauges and fixed-bucket latency histograms collected in a
// namespaced Registry, plus request-scoped trace IDs (see trace.go) and
// a leveled logger (see log.go).
//
// The paper's DGA calls for visibility into grid usage ("in some cases,
// it may be necessary to audit usage of the data", §2); obs is the
// measurement substrate under that: every broker operation, storage
// driver and wire dispatch records into one Registry, and srbd exposes
// the same snapshot over its admin endpoint, the OpStats wire op and
// the MySRB status page.
//
// All types are safe for concurrent use, and every method tolerates a
// nil receiver so instrumentation can be switched off (e.g. for
// baseline benchmarks) by simply dropping the handles.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by delta — the natural shape for occupancy
// gauges (queue depth, waiters) incremented on entry and decremented
// on exit.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket k holds observations in
// [2^(k-1), 2^k) microseconds, so the range spans 1µs to ~2¼ minutes
// with the last bucket collecting everything beyond.
const histBuckets = 28

// Exemplar is one retained "this trace landed in this bucket" sample:
// the most recent observation at or above the registry's exemplar
// threshold. The whole struct is swapped atomically as a unit, so a
// reader can never see a trace ID paired with another observation's
// duration.
type Exemplar struct {
	TraceID string
	Micros  int64
}

// Histogram is a fixed-bucket latency histogram with power-of-two
// microsecond bucket bounds. Observations are lock-free. Buckets may
// carry a tail exemplar (see Exemplar).
type Histogram struct {
	count   atomic.Int64
	sumNano atomic.Int64
	buckets [histBuckets]atomic.Int64
	ex      [histBuckets]atomic.Pointer[Exemplar]
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	k := bits.Len64(uint64(us))
	if k >= histBuckets {
		k = histBuckets - 1
	}
	return k
}

// BucketUpperMicros returns the inclusive upper bound of bucket k in
// microseconds (the last bucket is unbounded and reports its lower
// bound).
func BucketUpperMicros(k int) int64 { return int64(1) << uint(k) }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sumNano.Add(int64(d))
	h.buckets[bucketOf(d)].Add(1)
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	UpperMicros int64 // inclusive upper bound; last bucket is open-ended
	Count       int64
}

// BucketExemplar is one bucket's retained tail exemplar in a snapshot.
type BucketExemplar struct {
	UpperMicros int64
	TraceID     string
	Micros      int64
}

// HistSnapshot is a point-in-time view of a histogram.
type HistSnapshot struct {
	Count       int64
	TotalMicros int64
	P50Micros   float64
	P90Micros   float64
	P99Micros   float64
	Buckets     []BucketCount    `json:",omitempty"`
	Exemplars   []BucketExemplar `json:",omitempty"`
}

// Snapshot captures the histogram with interpolated quantiles.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{
		Count:       h.count.Load(),
		TotalMicros: h.sumNano.Load() / 1000,
	}
	if total == 0 {
		return s
	}
	s.P50Micros = quantile(counts[:], total, 0.50)
	s.P90Micros = quantile(counts[:], total, 0.90)
	s.P99Micros = quantile(counts[:], total, 0.99)
	for k, n := range counts {
		if n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{UpperMicros: BucketUpperMicros(k), Count: n})
		}
		if e := h.ex[k].Load(); e != nil {
			s.Exemplars = append(s.Exemplars, BucketExemplar{UpperMicros: BucketUpperMicros(k), TraceID: e.TraceID, Micros: e.Micros})
		}
	}
	return s
}

// quantile interpolates the q-quantile (0..1) from bucket counts.
func quantile(counts []int64, total int64, q float64) float64 {
	rank := q * float64(total)
	var cum float64
	for k, n := range counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lower := float64(0)
			if k > 0 {
				lower = float64(int64(1) << uint(k-1))
			}
			upper := float64(int64(1) << uint(k))
			frac := (rank - cum) / float64(n)
			return lower + (upper-lower)*frac
		}
		cum = next
	}
	return float64(int64(1) << uint(len(counts)-1))
}

// Op bundles the three per-operation metrics — count, errors, latency —
// so call sites record one line per exit path. Ops minted by a Registry
// share its exemplar threshold (exMin); zero-value Ops never retain
// exemplars.
type Op struct {
	count Counter
	errs  Counter
	lat   Histogram
	exMin *atomic.Int64
}

// Done records one completed operation that started at start.
func (o *Op) Done(start time.Time, err error) {
	if o == nil {
		return
	}
	o.Observe(time.Since(start), err)
}

// Observe records one completed operation of duration d.
func (o *Op) Observe(d time.Duration, err error) {
	if o == nil {
		return
	}
	o.count.Inc()
	if err != nil {
		o.errs.Inc()
	}
	o.lat.Observe(d)
}

// ObserveTrace records one completed operation of duration d and, when
// the duration clears the registry's exemplar threshold, retains trace
// as the bucket's tail exemplar. An observation below the threshold (or
// with an empty trace) never displaces a retained exemplar, so every
// exemplar served on /metrics is guaranteed to be a genuine tail
// sample.
func (o *Op) ObserveTrace(d time.Duration, err error, trace string) {
	if o == nil {
		return
	}
	o.Observe(d, err)
	if trace == "" || o.exMin == nil {
		return
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	if us < o.exMin.Load() {
		return
	}
	o.lat.ex[bucketOf(d)].Store(&Exemplar{TraceID: trace, Micros: us})
}

// Count returns how many operations completed.
func (o *Op) Count() int64 { return o.count.Value() }

// Errors returns how many operations failed.
func (o *Op) Errors() int64 { return o.errs.Value() }

// OpSnapshot is a point-in-time view of one operation family.
type OpSnapshot struct {
	Count  int64
	Errors int64
	HistSnapshot
}

// Snapshot captures the operation metrics.
func (o *Op) Snapshot() OpSnapshot {
	if o == nil {
		return OpSnapshot{}
	}
	return OpSnapshot{Count: o.count.Value(), Errors: o.errs.Value(), HistSnapshot: o.lat.Snapshot()}
}

// Registry is a namespaced collection of metrics plus the recent-span
// trace ring. Metric names are dotted paths ("storage.disk1.bytes_in",
// "broker.get"). Get-or-create accessors make registration implicit.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	ops      map[string]*Op
	start    time.Time
	traces   *TraceRing
	usage    *UsageTable
	rollups  *RollupRing
	peers    *PeerHistory
	heatKeys    *HeatTable // hot depth-2 routing prefixes (broker dispatch)
	heatObjects *HeatTable // hot object paths (replica reads)
	exMin    atomic.Int64 // exemplar threshold in microseconds
}

// DefaultExemplarThreshold is the observation floor below which
// histogram buckets do not retain trace-ID exemplars: fast requests
// are rarely the ones an operator needs to chase.
const DefaultExemplarThreshold = time.Millisecond

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		ops:      make(map[string]*Op),
		start:    time.Now(),
		traces:   NewTraceRing(256),
		usage:    NewUsageTable(),
		rollups:  NewRollupRing(DefaultRollupSlots),
		peers:    NewPeerHistory(),
		heatKeys:    NewHeatTable("heat.key.", DefaultHeatK),
		heatObjects: NewHeatTable("heat.object.", DefaultHeatK),
	}
	r.exMin.Store(DefaultExemplarThreshold.Microseconds())
	return r
}

// SetExemplarThreshold sets the minimum observed duration at which
// histogram buckets retain trace-ID exemplars. Zero retains an
// exemplar for every traced observation.
func (r *Registry) SetExemplarThreshold(d time.Duration) {
	if r == nil {
		return
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	r.exMin.Store(us)
}

// ExemplarThreshold reports the current exemplar retention floor.
func (r *Registry) ExemplarThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.exMin.Load()) * time.Microsecond
}

// Counter returns (creating if absent) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if absent) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Op returns (creating if absent) the named operation family.
func (r *Registry) Op(name string) *Op {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	o, ok := r.ops[name]
	r.mu.RUnlock()
	if ok {
		return o
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if o, ok = r.ops[name]; ok {
		return o
	}
	o = &Op{exMin: &r.exMin}
	r.ops[name] = o
	return o
}

// Traces returns the registry's recent-span ring.
func (r *Registry) Traces() *TraceRing {
	if r == nil {
		return nil
	}
	return r.traces
}

// Usage returns the registry's per-user/collection accounting table.
func (r *Registry) Usage() *UsageTable {
	if r == nil {
		return nil
	}
	return r.usage
}

// Snapshot is a point-in-time view of a whole registry, JSON-ready for
// the OpStats wire reply and the MySRB status page.
type Snapshot struct {
	Version       string `json:",omitempty"`
	UptimeSeconds float64
	Counters      map[string]int64      `json:",omitempty"`
	Gauges        map[string]int64      `json:",omitempty"`
	Ops           map[string]OpSnapshot `json:",omitempty"`
	Traces        []SpanRecord          `json:",omitempty"`
}

// Snapshot captures every metric and the recent traces.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	s := Snapshot{
		Version:       Version,
		UptimeSeconds: time.Since(r.start).Seconds(),
		Counters:      make(map[string]int64, len(r.counters)),
		Gauges:        make(map[string]int64, len(r.gauges)),
		Ops:           make(map[string]OpSnapshot, len(r.ops)),
	}
	counters := make(map[string]*Counter, len(r.counters))
	gauges := make(map[string]*Gauge, len(r.gauges))
	ops := make(map[string]*Op, len(r.ops))
	for k, v := range r.counters {
		counters[k] = v
	}
	for k, v := range r.gauges {
		gauges[k] = v
	}
	for k, v := range r.ops {
		ops[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	// Heat rides the counter namespace (heat.key.*, heat.object.*)
	// without registering real counters: sketch eviction would strand
	// dead names in the registry forever, while the fold stays bounded
	// by the tables' top-K capacity.
	r.foldHeat(s.Counters)
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range ops {
		s.Ops[k] = v.Snapshot()
	}
	s.Traces = r.traces.Recent(64)
	return s
}

// WriteText dumps the registry as sorted "name value" lines — the
// plain-text format the srbd admin /metrics endpoint serves.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+6*len(s.Ops)+1)
	lines = append(lines, fmt.Sprintf("uptime_seconds %.3f", s.UptimeSeconds))
	for k, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, o := range s.Ops {
		lines = append(lines,
			fmt.Sprintf("%s.count %d", k, o.Count),
			fmt.Sprintf("%s.errors %d", k, o.Errors),
			fmt.Sprintf("%s.total_us %d", k, o.TotalMicros),
			fmt.Sprintf("%s.p50_us %.1f", k, o.P50Micros),
			fmt.Sprintf("%s.p90_us %.1f", k, o.P90Micros),
			fmt.Sprintf("%s.p99_us %.1f", k, o.P99Micros),
		)
		for _, b := range o.Buckets {
			lines = append(lines, fmt.Sprintf("%s.bucket_le_%dus %d", k, b.UpperMicros, b.Count))
		}
	}
	sort.Strings(lines)
	for _, ln := range lines {
		if _, err := fmt.Fprintln(w, ln); err != nil {
			return err
		}
	}
	return nil
}
