// The incident flight recorder: when an SLO rule fires (or an operator
// asks), capture a self-contained evidence bundle while the problem is
// still happening — CPU and heap profiles, the slow-op span trees from
// the trace ring, the firing rule with its window stats, and whatever
// extra state the daemon wants preserved (grid, breaker, repair
// snapshots). Bundles land under <telemetry-dir>/incidents/<ts>-<rule>/
// with a bounded index, and capture is rate-limited per rule so a
// flapping SLO cannot fill the disk.
package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrRateLimited reports a capture suppressed by the per-rule minimum
// gap.
var ErrRateLimited = errors.New("incident capture rate-limited")

// incidentTSFormat names bundle directories sortably by capture time.
const incidentTSFormat = "20060102T150405.000"

// IncidentMeta describes one captured bundle — the index entry and the
// meta.json inside the bundle itself.
type IncidentMeta struct {
	ID       string // directory name, <ts>-<rule>
	At       time.Time
	Rule     string // firing rule name, or "manual"
	Reason   string // "slo-fired" or "manual"
	Detail   string `json:",omitempty"` // alert detail / operator note
	Server   string
	Files    []string `json:",omitempty"` // bundle contents, sorted
	Observed float64  `json:",omitempty"`
	BurnPct  float64  `json:",omitempty"`
}

// IncidentConfig wires a recorder.
type IncidentConfig struct {
	// Dir is the incidents directory itself (daemons pass
	// <telemetry-dir>/incidents).
	Dir string
	// Server stamps bundles with the capturing daemon's name.
	Server string
	// Registry supplies window stats, traces and the heap of the process.
	Registry *Registry
	// MinGap is the per-rule minimum time between captures (default 10m).
	MinGap time.Duration
	// MaxIndex bounds retained bundles; the oldest are evicted (default 32).
	MaxIndex int
	// ProfileDur is the CPU profile length (default 2s). Tests shrink it.
	ProfileDur time.Duration
	// Extra, when set, contributes additional named files to every
	// bundle (grid.json, breakers.json, repair.json in the daemons).
	Extra func() map[string][]byte
}

// IncidentRecorder captures and indexes incident bundles. Safe for
// concurrent use; nil receiver tolerated everywhere.
type IncidentRecorder struct {
	cfg IncidentConfig

	mu   sync.Mutex
	last map[string]time.Time // rule -> last capture

	// profiling guards StartCPUProfile, which fails if already running:
	// overlapping captures skip the CPU profile rather than block 2s.
	profiling atomic.Bool
}

// NewIncidentRecorder creates the incidents directory and returns a
// recorder over it.
func NewIncidentRecorder(cfg IncidentConfig) (*IncidentRecorder, error) {
	if cfg.MinGap <= 0 {
		cfg.MinGap = 10 * time.Minute
	}
	if cfg.MaxIndex <= 0 {
		cfg.MaxIndex = 32
	}
	if cfg.ProfileDur <= 0 {
		cfg.ProfileDur = 2 * time.Second
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	return &IncidentRecorder{cfg: cfg, last: make(map[string]time.Time)}, nil
}

// Capture snapshots one bundle for rule (use "manual" for operator
// captures). Synchronous: it sleeps ProfileDur collecting the CPU
// profile, so SLO-triggered callers run it off the evaluation
// goroutine. Returns ErrRateLimited when the rule captured within
// MinGap; window may be zero (defaults to 5m of history).
func (ir *IncidentRecorder) Capture(now time.Time, rule, reason, detail string, window time.Duration) (IncidentMeta, error) {
	if ir == nil {
		return IncidentMeta{}, errors.New("incident recorder disabled")
	}
	if rule == "" {
		rule = "manual"
	}
	if window <= 0 {
		window = 5 * time.Minute
	}
	ir.mu.Lock()
	if last, ok := ir.last[rule]; ok && now.Sub(last) < ir.cfg.MinGap {
		ir.mu.Unlock()
		return IncidentMeta{}, fmt.Errorf("rule %s captured %s ago (min gap %s): %w",
			rule, now.Sub(last).Round(time.Second), ir.cfg.MinGap, ErrRateLimited)
	}
	// Claim the slot before the slow work so a concurrent capture of the
	// same rule rate-limits instead of doubling up.
	ir.last[rule] = now
	ir.mu.Unlock()

	id := now.UTC().Format(incidentTSFormat) + "-" + sloSlug(rule)
	dir := filepath.Join(ir.cfg.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return IncidentMeta{}, err
	}

	meta := IncidentMeta{
		ID: id, At: now, Rule: rule, Reason: reason, Detail: detail,
		Server: ir.cfg.Server,
	}
	write := func(name string, b []byte) {
		if len(b) == 0 {
			return
		}
		if os.WriteFile(filepath.Join(dir, name), b, 0o644) == nil {
			meta.Files = append(meta.Files, name)
		}
	}

	// CPU profile first: the 2s window samples the process while the
	// condition that fired the rule is (hopefully) still present.
	if ir.profiling.CompareAndSwap(false, true) {
		var cpu bytes.Buffer
		if pprof.StartCPUProfile(&cpu) == nil {
			time.Sleep(ir.cfg.ProfileDur)
			pprof.StopCPUProfile()
			write("cpu.pprof", cpu.Bytes())
		}
		ir.profiling.Store(false)
	}
	var heap bytes.Buffer
	if pprof.Lookup("heap").WriteTo(&heap, 0) == nil {
		write("heap.pprof", heap.Bytes())
	}

	reg := ir.cfg.Registry
	if recs := reg.Traces().Recent(0); len(recs) > 0 {
		var txt strings.Builder
		WriteTree(&txt, AssembleTree(recs))
		write("spans.txt", []byte(txt.String()))
		if b, err := json.MarshalIndent(recs, "", "  "); err == nil {
			write("spans.json", b)
		}
	}
	ws := reg.WindowAt(now, window)
	if b, err := json.MarshalIndent(ws, "", "  "); err == nil {
		write("window.json", b)
	}
	// Latency decomposition at capture time: the same window's phase
	// histograms, so "where did the p99 go" is answerable from the
	// bundle alone after the rollup ring has moved on.
	if rows := PhaseRows(ws.Ops); len(rows) > 0 {
		if b, err := json.MarshalIndent(rows, "", "  "); err == nil {
			write("phases.json", b)
		}
	}
	if ir.cfg.Extra != nil {
		names := make([]string, 0)
		extra := ir.cfg.Extra()
		for name := range extra {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			write(name, extra[name])
		}
	}

	sort.Strings(meta.Files)
	if b, err := json.MarshalIndent(&meta, "", "  "); err == nil {
		if os.WriteFile(filepath.Join(dir, "meta.json"), b, 0o644) != nil {
			return meta, fmt.Errorf("incident %s: writing meta.json failed", id)
		}
	}
	ir.evict()
	return meta, nil
}

// List returns the index, newest first.
func (ir *IncidentRecorder) List() []IncidentMeta {
	if ir == nil {
		return nil
	}
	ids := ir.ids()
	out := make([]IncidentMeta, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		if m, err := ir.readMeta(ids[i]); err == nil {
			out = append(out, m)
		}
	}
	return out
}

// Get returns one bundle: its meta plus every file's contents. The id
// is validated against path traversal.
func (ir *IncidentRecorder) Get(id string) (IncidentMeta, map[string][]byte, error) {
	if ir == nil {
		return IncidentMeta{}, nil, errors.New("incident recorder disabled")
	}
	if !validIncidentID(id) {
		return IncidentMeta{}, nil, fmt.Errorf("invalid incident id %q", id)
	}
	meta, err := ir.readMeta(id)
	if err != nil {
		return IncidentMeta{}, nil, fmt.Errorf("incident %s: %w", id, err)
	}
	files := make(map[string][]byte, len(meta.Files))
	for _, name := range meta.Files {
		if !validIncidentFile(name) {
			continue
		}
		if b, err := os.ReadFile(filepath.Join(ir.cfg.Dir, id, name)); err == nil {
			files[name] = b
		}
	}
	return meta, files, nil
}

// Prune removes bundles captured before cutoff (telemetry retention).
func (ir *IncidentRecorder) Prune(cutoff time.Time) {
	if ir == nil || cutoff.IsZero() {
		return
	}
	for _, id := range ir.ids() {
		ts, ok := incidentTime(id)
		if ok && ts.Before(cutoff) {
			os.RemoveAll(filepath.Join(ir.cfg.Dir, id))
		}
	}
}

// evict keeps the index bounded, removing the oldest bundles.
func (ir *IncidentRecorder) evict() {
	ids := ir.ids()
	for len(ids) > ir.cfg.MaxIndex {
		os.RemoveAll(filepath.Join(ir.cfg.Dir, ids[0]))
		ids = ids[1:]
	}
}

// ids lists bundle directory names, oldest first (the timestamp prefix
// makes lexical order chronological).
func (ir *IncidentRecorder) ids() []string {
	ents, err := os.ReadDir(ir.cfg.Dir)
	if err != nil {
		return nil
	}
	ids := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() && validIncidentID(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids
}

func (ir *IncidentRecorder) readMeta(id string) (IncidentMeta, error) {
	b, err := os.ReadFile(filepath.Join(ir.cfg.Dir, id, "meta.json"))
	if err != nil {
		return IncidentMeta{}, err
	}
	var m IncidentMeta
	if err := json.Unmarshal(b, &m); err != nil {
		return IncidentMeta{}, err
	}
	m.ID = id
	return m, nil
}

// incidentTime recovers the capture time from a bundle id.
func incidentTime(id string) (time.Time, bool) {
	if len(id) < len(incidentTSFormat) {
		return time.Time{}, false
	}
	ts, err := time.Parse(incidentTSFormat, id[:len(incidentTSFormat)])
	return ts, err == nil
}

// validIncidentID accepts only names a Capture could have produced:
// timestamp, dash, slug runes. Anything else (.., /, empty) is rejected
// before touching the filesystem.
func validIncidentID(id string) bool {
	if _, ok := incidentTime(id); !ok {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return false
		}
	}
	return !strings.Contains(id, "..")
}

// validIncidentFile accepts plain file names only.
func validIncidentFile(name string) bool {
	return name != "" && name == filepath.Base(name) && !strings.HasPrefix(name, ".")
}
