package obs

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestExemplarConcurrency is the tear-detector: many writers hammer one
// op with traced observations whose trace ID encodes the observed
// duration ("t-<us>"), while readers snapshot continuously. If a bucket
// could ever pair one observation's trace ID with another's duration,
// the encoding check fails. Run under -race with -count (make
// test-phases runs it 10x).
func TestExemplarConcurrency(t *testing.T) {
	const threshold = 100 * time.Microsecond
	reg := NewRegistry()
	reg.SetExemplarThreshold(threshold)
	op := reg.Op("phase.server.get.dispatch")

	const writers = 8
	const perWriter = 2000
	var stop atomic.Bool
	var readWG, writeWG sync.WaitGroup

	checkSnapshot := func(s HistSnapshot) {
		for _, ex := range s.Exemplars {
			want := "t-" + strconv.FormatInt(ex.Micros, 10)
			if ex.TraceID != want {
				t.Errorf("torn exemplar: trace %q paired with %dus (want %s)", ex.TraceID, ex.Micros, want)
			}
			if ex.Micros < threshold.Microseconds() {
				t.Errorf("exemplar below threshold: %dus < %dus", ex.Micros, threshold.Microseconds())
			}
			// The exemplar must actually belong to its bucket.
			if ex.Micros >= ex.UpperMicros {
				t.Errorf("exemplar %dus outside bucket le=%dus", ex.Micros, ex.UpperMicros)
			}
			if ex.UpperMicros > 1 && ex.Micros < ex.UpperMicros/2 {
				t.Errorf("exemplar %dus below bucket floor (le=%dus)", ex.Micros, ex.UpperMicros)
			}
		}
	}

	// Concurrent readers: snapshot while writers are mid-flight.
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for !stop.Load() {
				checkSnapshot(op.Snapshot().HistSnapshot)
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(seed int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				// Spread across buckets: 50us..~819us, half below the
				// 100us threshold so the filter path races too.
				us := int64(50 + (seed*perWriter+i)%770)
				d := time.Duration(us) * time.Microsecond
				op.ObserveTrace(d, nil, "t-"+strconv.FormatInt(us, 10))
			}
		}(w)
	}
	writeWG.Wait()
	stop.Store(true)
	readWG.Wait()

	s := op.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count %d, want %d", s.Count, writers*perWriter)
	}
	checkSnapshot(s.HistSnapshot)
	if len(s.Exemplars) == 0 {
		t.Fatal("no exemplars retained above threshold")
	}
}

// TestExemplarThreshold pins the retention rule exactly: strictly below
// the floor never retains, at the floor retains, empty traces never
// retain, and a zero threshold retains every traced observation.
func TestExemplarThreshold(t *testing.T) {
	reg := NewRegistry()
	reg.SetExemplarThreshold(time.Millisecond)
	if got := reg.ExemplarThreshold(); got != time.Millisecond {
		t.Fatalf("threshold %v, want 1ms", got)
	}

	op := reg.Op("phase.server.get.dispatch")
	op.ObserveTrace(999*time.Microsecond, nil, "below")
	if n := len(op.Snapshot().Exemplars); n != 0 {
		t.Fatalf("below-threshold observation retained %d exemplar(s)", n)
	}
	op.ObserveTrace(1000*time.Microsecond, nil, "at")
	exs := op.Snapshot().Exemplars
	if len(exs) != 1 || exs[0].TraceID != "at" || exs[0].Micros != 1000 {
		t.Fatalf("at-threshold exemplar = %+v, want [at 1000us]", exs)
	}
	// An untraced slow observation must not displace the retained one.
	op.ObserveTrace(1100*time.Microsecond, nil, "")
	if exs := op.Snapshot().Exemplars; len(exs) != 1 || exs[0].TraceID != "at" {
		t.Fatalf("untraced observation displaced exemplar: %+v", exs)
	}

	zero := NewRegistry()
	zero.SetExemplarThreshold(0)
	fast := zero.Op("phase.client.get.serialize")
	fast.ObserveTrace(3*time.Microsecond, nil, "tiny")
	if exs := fast.Snapshot().Exemplars; len(exs) != 1 || exs[0].TraceID != "tiny" {
		t.Fatalf("zero threshold did not retain: %+v", exs)
	}

	// Ops outside a registry (zero value) must never retain.
	var bare Op
	bare.ObserveTrace(time.Second, nil, "orphan")
	if exs := bare.Snapshot().Exemplars; len(exs) != 0 {
		t.Fatalf("registry-less op retained exemplars: %+v", exs)
	}
}

// TestRecordPhases folds a span's phase events into the registry and
// checks the per-phase ops land under the documented names with the
// trace joined as an exemplar.
func TestRecordPhases(t *testing.T) {
	reg := NewRegistry()
	reg.SetExemplarThreshold(0)

	sp := StartSpan("", "get")
	sp.Phase(PhaseQueueWait, 2*time.Millisecond)
	sp.Phase(PhaseMCATLookup, 300*time.Microsecond)
	sp.Phase(PhaseStorageRead, 5*time.Millisecond)
	sp.Phase(PhaseDispatch, 6*time.Millisecond)
	sp.Event(EventFailover, "disk2") // non-phase events are ignored
	reg.RecordPhases("server", "get", sp.Trace, sp.Events())

	for name, wantUs := range map[string]int64{
		"phase.server.get.queue.wait":            2000,
		"phase.server.get.dispatch/mcat.lookup":  300,
		"phase.server.get.dispatch/storage.read": 5000,
		"phase.server.get.dispatch":              6000,
	} {
		s := reg.Op(name).Snapshot()
		if s.Count != 1 || s.TotalMicros != wantUs {
			t.Errorf("%s: count=%d total=%dus, want 1 obs of %dus", name, s.Count, s.TotalMicros, wantUs)
		}
		if len(s.Exemplars) != 1 || s.Exemplars[0].TraceID != sp.Trace {
			t.Errorf("%s: exemplar %+v, want trace %s", name, s.Exemplars, sp.Trace)
		}
	}
	if _, ok := reg.Snapshot().Ops["phase.server.get.failover"]; ok {
		t.Error("non-phase event leaked into the phase namespace")
	}
}

func TestSplitPhaseOp(t *testing.T) {
	fam, op, phase, ok := SplitPhaseOp("phase.server.get.dispatch/storage.read")
	if !ok || fam != "server" || op != "get" || phase != "dispatch/storage.read" {
		t.Fatalf("got (%q,%q,%q,%v)", fam, op, phase, ok)
	}
	for _, bad := range []string{"server.get", "phase.server", "phase..get.x", "phase.server..x", "phase.server.get."} {
		if _, _, _, ok := SplitPhaseOp(bad); ok {
			t.Errorf("SplitPhaseOp(%q) accepted", bad)
		}
	}
}

// TestPhaseRows checks extraction and ordering: non-phase ops skipped,
// grouped family→op, slowest total first within a group.
func TestPhaseRows(t *testing.T) {
	ops := map[string]WindowOp{
		"server.get":                             {Count: 9},
		"phase.server.get.queue.wait":            {Count: 3, TotalMicros: 100},
		"phase.server.get.dispatch":              {Count: 3, TotalMicros: 900},
		"phase.server.get.dispatch/storage.read": {Count: 3, TotalMicros: 800},
		"phase.client.get.mux.inflight":          {Count: 3, TotalMicros: 700},
	}
	rows := PhaseRows(ops)
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (non-phase op must be skipped)", len(rows))
	}
	var got []string
	for _, r := range rows {
		got = append(got, r.Family+"."+r.Op+"."+r.Phase)
	}
	want := []string{
		"client.get.mux.inflight",
		"server.get.dispatch",
		"server.get.dispatch/storage.read",
		"server.get.queue.wait",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row order %v, want %v", got, want)
		}
	}
}

// TestWaterfall renders a two-level tree and checks the accounting: the
// top-level phases cover the span, sub-phases indent, and a span with an
// instrumentation gap shows the unattributed remainder.
func TestWaterfall(t *testing.T) {
	full := SpanRecord{
		Trace: "abc", Span: "s1", Op: "get", Server: "srb1", Micros: 1000,
		Events: []SpanEvent{
			{Kind: EventPhase, Detail: PhaseQueueWait, DurMicros: 200},
			{Kind: EventPhase, Detail: PhaseDispatch, DurMicros: 800},
			{Kind: EventPhase, Detail: PhaseStorageRead, DurMicros: 700},
		},
	}
	if got := PhaseSum(full.Events); got != 1000 {
		t.Fatalf("PhaseSum=%d, want 1000 (sub-phase must not double-count)", got)
	}
	var b strings.Builder
	if err := WriteWaterfall(&b, AssembleTree([]SpanRecord{full})); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"get [srb1] 1000us", "queue.wait", "dispatch", "storage.read", "80.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "(unattributed)") {
		t.Errorf("fully attributed span shows a remainder:\n%s", out)
	}
	// The sub-phase row indents two extra spaces and drops its parent
	// segment.
	if !strings.Contains(out, "    storage.read") || strings.Contains(out, "dispatch/storage.read") {
		t.Errorf("sub-phase not nested under its parent:\n%s", out)
	}

	gappy := SpanRecord{
		Trace: "abc", Span: "s2", Op: "put", Server: "srb1", Micros: 1000,
		Events: []SpanEvent{{Kind: EventPhase, Detail: PhaseDispatch, DurMicros: 600}},
	}
	b.Reset()
	if err := WriteWaterfall(&b, AssembleTree([]SpanRecord{gappy})); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(unattributed)") || !strings.Contains(b.String(), "400us") {
		t.Errorf("gap not surfaced:\n%s", b.String())
	}
}

// TestPhasesRideWindows proves the decomposition needs no parallel
// aggregation path: phase ops recorded via RecordPhases appear in
// windowed rollups and survive a grid merge.
func TestPhasesRideWindows(t *testing.T) {
	reg := NewRegistry()
	base := time.Now()
	reg.CaptureRollup(base) // empty baseline: the window diffs against it
	sp := StartSpan("", "get")
	sp.Phase(PhaseQueueWait, time.Millisecond)
	sp.Phase(PhaseDispatch, 4*time.Millisecond)
	reg.RecordPhases("server", "get", sp.Trace, sp.Events())

	ws := reg.WindowAt(base.Add(30*time.Second), time.Minute)
	rows := PhaseRows(ws.Ops)
	if len(rows) != 2 {
		t.Fatalf("window carries %d phase rows, want 2: %+v", len(rows), ws.Ops)
	}
	merged := MergeWindows([]WindowStats{ws, ws})
	mrows := PhaseRows(merged.Ops)
	if len(mrows) != 2 || mrows[0].Count != 2 {
		t.Fatalf("grid merge lost phases: %+v", mrows)
	}
	if mrows[0].Phase != PhaseDispatch {
		t.Fatalf("slowest-first ordering broken: %+v", mrows)
	}
}
