package obs

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// NewTraceID returns a fresh 16-hex-digit request trace ID. IDs only
// need to be unique among recent requests, so a fast PRNG suffices.
func NewTraceID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// Span is one timed, trace-scoped unit of work. The zero value is not
// useful; obtain spans with StartSpan. The trace ID travels in the wire
// Request envelope, so every server a federated operation touches
// records spans under the same ID.
type Span struct {
	Trace string
	Op    string
	Start time.Time
}

// StartSpan opens a span under trace, minting a fresh trace ID when
// trace is empty (i.e. this server originates the request).
func StartSpan(trace, op string) Span {
	if trace == "" {
		trace = NewTraceID()
	}
	return Span{Trace: trace, Op: op, Start: time.Now()}
}

// Elapsed reports how long the span has been open.
func (s Span) Elapsed() time.Duration { return time.Since(s.Start) }

// SpanRecord is one finished span as held by a TraceRing.
type SpanRecord struct {
	Trace  string
	Op     string
	Server string `json:",omitempty"`
	Remote string `json:",omitempty"`
	Start  time.Time
	Micros int64
	Err    string `json:",omitempty"`
}

// TraceRing is a bounded ring of recently finished spans — enough to
// follow one logical operation across federation hops without keeping
// unbounded history. Safe for concurrent use.
type TraceRing struct {
	mu    sync.Mutex
	recs  []SpanRecord
	start int
	count int
}

// NewTraceRing returns a ring holding up to capacity records (64 when
// capacity <= 0).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = 64
	}
	return &TraceRing{recs: make([]SpanRecord, capacity)}
}

// Add appends one finished span, displacing the oldest when full.
func (t *TraceRing) Add(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count < len(t.recs) {
		t.recs[(t.start+t.count)%len(t.recs)] = rec
		t.count++
		return
	}
	t.recs[t.start] = rec
	t.start = (t.start + 1) % len(t.recs)
}

// Recent returns up to n records, oldest first (n <= 0 returns all).
func (t *TraceRing) Recent(n int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.count {
		n = t.count
	}
	out := make([]SpanRecord, 0, n)
	for i := t.count - n; i < t.count; i++ {
		out = append(out, t.recs[(t.start+i)%len(t.recs)])
	}
	return out
}

// End finishes the span into ring, stamping server/remote context.
func (s Span) End(ring *TraceRing, server, remote string, err error) {
	if ring == nil {
		return
	}
	rec := SpanRecord{
		Trace:  s.Trace,
		Op:     s.Op,
		Server: server,
		Remote: remote,
		Start:  s.Start,
		Micros: time.Since(s.Start).Microseconds(),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	ring.Add(rec)
}
