package obs

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// NewTraceID returns a fresh 16-hex-digit request trace ID. IDs only
// need to be unique among recent requests, so a fast PRNG suffices.
func NewTraceID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// NewSpanID returns a fresh 16-hex-digit span ID, unique within a
// trace with overwhelming probability.
func NewSpanID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// SpanEvent is one structured annotation inside a span: a retry, a
// breaker trip or fast-fail, a replica failover, a cache hit, a
// deadline exhaustion. AtMicros is the offset from the span's start.
// Phase events additionally carry DurMicros, the measured duration of
// the named phase (AtMicros then marks where the phase *ended*).
type SpanEvent struct {
	AtMicros  int64
	Kind      string
	Detail    string `json:",omitempty"`
	DurMicros int64  `json:",omitempty"`
}

// Event kinds emitted by the client, server, replica manager and
// federation layers. Detail strings carry the specific target.
const (
	EventRetry        = "retry"            // a retry attempt (client or federation)
	EventBreakerTrip  = "breaker.trip"     // a circuit breaker opened
	EventBreakerFast  = "breaker.fastfail" // an open breaker short-circuited a call
	EventBreakerProbe = "breaker.probe"    // a half-open breaker let one probe through
	EventFailover     = "failover"         // the read moved to another replica/server
	EventCacheHit     = "cache.hit"        // served from a cache-class resource
	EventContainerHit = "container.hit"    // served out of a container member read
	EventDeadline     = "deadline"         // the request deadline expired mid-op
	EventRepair       = "repair"           // a background repair task ran (detail: key + outcome)
	EventScrub        = "scrub"            // the scrubber flagged a divergent/missing replica
	EventSLO          = "slo"              // an SLO rule fired or resolved (detail: rule + observed)
	EventPhase        = "phase"            // a named latency phase finished (detail: phase name, DurMicros: length)
)

// Span is one timed, trace-scoped unit of work. Spans form a tree: the
// trace ID and the parent span ID travel in the wire Request envelope,
// so the span a federated peer opens for a proxied call becomes a
// child of the caller's span. Obtain spans with StartSpan /
// StartSpanFrom; all methods tolerate a nil receiver.
type Span struct {
	Trace  string
	ID     string
	Parent string
	Op     string
	Start  time.Time

	mu     sync.Mutex
	events []SpanEvent
}

// StartSpan opens a root span under trace, minting a fresh trace ID
// when trace is empty (i.e. this server originates the request).
func StartSpan(trace, op string) *Span { return StartSpanFrom(trace, "", op) }

// StartSpanFrom opens a span under trace whose parent is the given
// span ID (empty parent = root). A fresh trace ID is minted when trace
// is empty.
func StartSpanFrom(trace, parent, op string) *Span {
	if trace == "" {
		trace = NewTraceID()
	}
	return &Span{
		Trace: trace, ID: NewSpanID(), Parent: parent, Op: op, Start: time.Now(),
		// A dispatched request records ~5 phase stamps plus the odd
		// annotation; pre-sizing keeps the hot path realloc-free.
		events: make([]SpanEvent, 0, 8),
	}
}

// TraceID returns the span's trace ID ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.Trace
}

// SpanID returns the span's own ID ("" for a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.ID
}

// Event appends one structured annotation, stamped with the offset
// from the span's start. Safe for concurrent use and on a nil span, so
// deep layers (replica manager, breakers) can annotate without caring
// whether the call was traced.
func (s *Span) Event(kind, detail string) {
	if s == nil {
		return
	}
	at := time.Since(s.Start).Microseconds()
	s.mu.Lock()
	s.events = append(s.events, SpanEvent{AtMicros: at, Kind: kind, Detail: detail})
	s.mu.Unlock()
}

// Phase records one named latency phase of duration d, stamped at the
// phase's end. Phase names containing "/" are sub-phases of the segment
// before the slash ("dispatch/storage.read" nests under "dispatch");
// top-level phases are expected to partition the span's wall time, so a
// waterfall can show where every microsecond went. Safe on a nil span.
func (s *Span) Phase(name string, d time.Duration) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	at := time.Since(s.Start).Microseconds()
	s.mu.Lock()
	s.events = append(s.events, SpanEvent{AtMicros: at, Kind: EventPhase, Detail: name, DurMicros: d.Microseconds()})
	s.mu.Unlock()
}

// Events returns a copy of the annotations recorded so far.
func (s *Span) Events() []SpanEvent {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SpanEvent, len(s.events))
	copy(out, s.events)
	return out
}

// Elapsed reports how long the span has been open.
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.Start)
}

// SpanRecord is one finished span as held by a TraceRing.
type SpanRecord struct {
	Trace  string
	Span   string `json:",omitempty"`
	Parent string `json:",omitempty"`
	Op     string
	Server string `json:",omitempty"`
	Remote string `json:",omitempty"`
	Start  time.Time
	Micros int64
	Err    string      `json:",omitempty"`
	Events []SpanEvent `json:",omitempty"`
}

// TraceRing is a bounded ring of recently finished spans — enough to
// follow one logical operation across federation hops without keeping
// unbounded history. Safe for concurrent use.
type TraceRing struct {
	mu    sync.Mutex
	recs  []SpanRecord
	start int
	count int
}

// NewTraceRing returns a ring holding up to capacity records (64 when
// capacity <= 0).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = 64
	}
	return &TraceRing{recs: make([]SpanRecord, capacity)}
}

// Add appends one finished span, displacing the oldest when full.
func (t *TraceRing) Add(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count < len(t.recs) {
		t.recs[(t.start+t.count)%len(t.recs)] = rec
		t.count++
		return
	}
	t.recs[t.start] = rec
	t.start = (t.start + 1) % len(t.recs)
}

// Recent returns up to n records, oldest first (n <= 0 returns all).
func (t *TraceRing) Recent(n int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.count {
		n = t.count
	}
	out := make([]SpanRecord, 0, n)
	for i := t.count - n; i < t.count; i++ {
		out = append(out, t.recs[(t.start+i)%len(t.recs)])
	}
	return out
}

// ForTrace returns every retained span of one trace, oldest first.
func (t *TraceRing) ForTrace(id string) []SpanRecord {
	if t == nil || id == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	for i := 0; i < t.count; i++ {
		rec := t.recs[(t.start+i)%len(t.recs)]
		if rec.Trace == id {
			out = append(out, rec)
		}
	}
	return out
}

// End finishes the span into ring, stamping server/remote context.
func (s *Span) End(ring *TraceRing, server, remote string, err error) {
	if s == nil || ring == nil {
		return
	}
	rec := SpanRecord{
		Trace:  s.Trace,
		Span:   s.ID,
		Parent: s.Parent,
		Op:     s.Op,
		Server: server,
		Remote: remote,
		Start:  s.Start,
		Micros: time.Since(s.Start).Microseconds(),
		Events: s.Events(),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	ring.Add(rec)
}

// SpanNode is one span with its resolved children — the unit of an
// assembled trace tree.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode `json:",omitempty"`
}

// AssembleTree builds span trees from a flat record set, such as the
// union of several servers' ForTrace results. Records are linked
// child-to-parent by span ID; a record whose parent is absent from the
// set (the parent span is still open, was evicted from its ring, or
// lives on an unreachable server) becomes a root, so late-arriving
// children from federation peers never vanish. Roots and children are
// ordered by start time.
func AssembleTree(recs []SpanRecord) []*SpanNode {
	nodes := make(map[string]*SpanNode, len(recs))
	var anon []*SpanNode // spans without IDs (pre-span-tree records)
	for i := range recs {
		n := &SpanNode{SpanRecord: recs[i]}
		if n.Span == "" {
			anon = append(anon, n)
			continue
		}
		nodes[n.Span] = n
	}
	var roots []*SpanNode
	for _, n := range nodes {
		if n.Parent != "" {
			if p, ok := nodes[n.Parent]; ok && p != n {
				p.Children = append(p.Children, n)
				continue
			}
		}
		roots = append(roots, n)
	}
	roots = append(roots, anon...)
	byStart := func(ns []*SpanNode) func(i, j int) bool {
		return func(i, j int) bool { return ns[i].Start.Before(ns[j].Start) }
	}
	sort.Slice(roots, byStart(roots))
	for _, n := range nodes {
		sort.Slice(n.Children, byStart(n.Children))
	}
	return roots
}

// WriteTree renders assembled span trees as indented text, one line
// per span with its events nested beneath — the format served by the
// admin /trace/{id} endpoint, `srb trace` and the slow-op log.
func WriteTree(w io.Writer, roots []*SpanNode) error {
	for _, n := range roots {
		if err := writeNode(w, n, 0); err != nil {
			return err
		}
	}
	return nil
}

func writeNode(w io.Writer, n *SpanNode, depth int) error {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	line := fmt.Sprintf("%s%s [%s] %dus span=%s", indent, n.Op, n.Server, n.Micros, n.Span)
	if n.Err != "" {
		line += " err=" + n.Err
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, ev := range n.Events {
		evLine := fmt.Sprintf("%s  · +%dus %s", indent, ev.AtMicros, ev.Kind)
		if ev.Detail != "" {
			evLine += " " + ev.Detail
		}
		if _, err := fmt.Fprintln(w, evLine); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := writeNode(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
