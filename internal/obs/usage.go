package obs

import (
	"sort"
	"sync"
	"time"
)

// UsageStat is the accumulated account for one (user, collection)
// pair: how many operations that principal ran against that part of
// the namespace, how many failed, how many bytes moved each way, and
// the total time spent. LastTrace joins the account back to the trace
// stream (and, through the trace-stamped audit records, to the audit
// log) — the paper's "audit usage of the collections/datasets"
// requirement answered with queryable numbers.
type UsageStat struct {
	User        string
	Collection  string
	Ops         int64
	Errors      int64
	BytesIn     int64
	BytesOut    int64
	TotalMicros int64
	LastTrace   string `json:",omitempty"`
	LastOp      string `json:",omitempty"`
}

// usageKey identifies one accounting bucket.
type usageKey struct {
	user string
	coll string
}

// maxUsageKeys bounds the table; once full, new (user, collection)
// pairs fold into a catch-all "(other)" collection per user so the
// table cannot grow without limit under adversarial path churn.
const maxUsageKeys = 1024

// UsageTable accumulates per-user, per-collection usage. Safe for
// concurrent use; all methods tolerate a nil receiver.
type UsageTable struct {
	mu sync.Mutex
	m  map[usageKey]*UsageStat
}

// NewUsageTable returns an empty table.
func NewUsageTable() *UsageTable {
	return &UsageTable{m: make(map[usageKey]*UsageStat)}
}

// Record accounts one completed operation to (user, collection).
func (u *UsageTable) Record(user, coll, trace, op string, failed bool, bytesIn, bytesOut int64, d time.Duration) {
	if u == nil || user == "" {
		return
	}
	if coll == "" {
		coll = "-"
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	key := usageKey{user: user, coll: coll}
	st, ok := u.m[key]
	if !ok {
		if len(u.m) >= maxUsageKeys {
			key = usageKey{user: user, coll: "(other)"}
			if st, ok = u.m[key]; !ok && len(u.m) >= maxUsageKeys+64 {
				return // even the overflow rows are full; drop
			}
		}
		if st == nil {
			st = &UsageStat{User: key.user, Collection: key.coll}
			u.m[key] = st
		}
	}
	st.Ops++
	if failed {
		st.Errors++
	}
	st.BytesIn += bytesIn
	st.BytesOut += bytesOut
	st.TotalMicros += d.Microseconds()
	if trace != "" {
		st.LastTrace = trace
	}
	if op != "" {
		st.LastOp = op
	}
}

// Snapshot returns every accounting row, sorted by user then
// collection for stable output.
func (u *UsageTable) Snapshot() []UsageStat {
	if u == nil {
		return nil
	}
	u.mu.Lock()
	out := make([]UsageStat, 0, len(u.m))
	for _, st := range u.m {
		out = append(out, *st)
	}
	u.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].Collection < out[j].Collection
	})
	return out
}
