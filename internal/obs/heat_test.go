package obs

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHeatZipfRecall drives a seeded Zipfian stream through a small
// table and checks the space-saving guarantee in practice: the true
// heavy hitters all survive in the top of the snapshot.
func TestHeatZipfRecall(t *testing.T) {
	src := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(src, 1.3, 1, 1024)
	keys := make([]string, 1024+1)
	for i := range keys {
		keys[i] = "/zone/project-" + string(rune('a'+i%26)) + "-" + strings.Repeat("x", i%7)
	}
	// Disambiguate: build distinct names.
	for i := range keys {
		keys[i] = keys[i] + "-" + itoa(i)
	}
	tab := NewHeatTable("heat.key.", 64)
	truth := make(map[string]int64)
	for i := 0; i < 200_000; i++ {
		k := keys[zipf.Uint64()]
		truth[k]++
		tab.Record(k, 0)
	}
	// The ten most frequent keys of the true distribution must all be
	// tracked, and the single hottest must rank first.
	type kv struct {
		k string
		n int64
	}
	var top []kv
	for k, n := range truth {
		top = append(top, kv{k, n})
	}
	for i := 0; i < 10; i++ {
		best := i
		for j := i + 1; j < len(top); j++ {
			if top[j].n > top[best].n {
				best = j
			}
		}
		top[i], top[best] = top[best], top[i]
	}
	snap := tab.Snapshot()
	if len(snap) != 64 {
		t.Fatalf("snapshot rows = %d, want 64 (table full)", len(snap))
	}
	tracked := make(map[string]HeatStat, len(snap))
	for _, row := range snap {
		tracked[row.Key] = row
	}
	for i := 0; i < 10; i++ {
		row, ok := tracked[top[i].k]
		if !ok {
			t.Fatalf("true top-%d key %q (freq %d) missing from sketch", i+1, top[i].k, top[i].n)
		}
		// Space-saving overestimates: score >= true count, and the
		// error is bounded by the inherited floor.
		if row.Score+0.5 < float64(top[i].n) {
			t.Errorf("key %q score %.0f underestimates true count %d", top[i].k, row.Score, top[i].n)
		}
		if row.Score-row.ErrFloor > float64(top[i].n) {
			t.Errorf("key %q score-floor %.0f exceeds true count %d", top[i].k, row.Score-row.ErrFloor, top[i].n)
		}
	}
	if snap[0].Key != top[0].k {
		t.Errorf("hottest tracked = %q, want true hottest %q", snap[0].Key, top[0].k)
	}
	if tab.Evictions() == 0 {
		t.Error("a 1025-key stream through 64 slots should evict")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestHeatDecayForgetsColdKeys checks the windowed-decay behaviour: a
// burst that stops decays out of the ranking (and eventually out of the
// table) while sustained traffic stays on top.
func TestHeatDecayForgetsColdKeys(t *testing.T) {
	tab := NewHeatTable("heat.key.", 8)
	for i := 0; i < 100; i++ {
		tab.Record("/old/burst", 0)
	}
	for i := 0; i < 10; i++ {
		tab.Record("/now/steady", 0)
	}
	if snap := tab.Snapshot(); snap[0].Key != "/old/burst" {
		t.Fatalf("pre-decay hottest = %q, want /old/burst", snap[0].Key)
	}
	// Decay halvings with fresh traffic only on the steady key.
	for tick := 0; tick < 6; tick++ {
		tab.Decay(0.5)
		for i := 0; i < 10; i++ {
			tab.Record("/now/steady", 0)
		}
	}
	snap := tab.Snapshot()
	if snap[0].Key != "/now/steady" {
		t.Fatalf("post-decay hottest = %q, want /now/steady (got %+v)", snap[0].Key, snap)
	}
	// Keep decaying with no traffic at all: every row falls below the
	// retention floor and the table frees its slots.
	for tick := 0; tick < 12; tick++ {
		tab.Decay(0.5)
	}
	if snap := tab.Snapshot(); len(snap) != 0 {
		t.Fatalf("fully-decayed table still holds %d rows: %+v", len(snap), snap)
	}
	// Counts are monotonic: decay must not rewind the rollup fold.
	tab.Record("/now/steady", 0)
	dst := map[string]int64{}
	tab.foldCounters(dst)
	if dst["heat.key./now/steady"] != 1 {
		t.Fatalf("fold after decay = %v", dst)
	}
}

// TestHeatConcurrentWriters hammers one table from many goroutines while
// snapshots, folds and decays run — the race detector is the assertion.
func TestHeatConcurrentWriters(t *testing.T) {
	tab := NewHeatTable("heat.key.", 16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := []string{"/a/1", "/b/2", "/c/3", "/d/4", "/e/5"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tab.Record(keys[(i+w)%len(keys)], int64(i))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		_ = tab.Snapshot()
		tab.foldCounters(map[string]int64{})
		if i%10 == 9 {
			tab.Decay(0.9)
		}
	}
	close(stop)
	wg.Wait()
	for _, row := range tab.Snapshot() {
		if row.Count <= 0 {
			t.Fatalf("torn row: %+v", row)
		}
	}
}

// TestHeatNilSafety: a nil table (instrumentation off) must be inert.
func TestHeatNilSafety(t *testing.T) {
	var tab *HeatTable
	tab.Record("/a/b", 1)
	tab.Decay(0.5)
	tab.Restore([]HeatStat{{Key: "/x/y"}})
	if tab.Snapshot() != nil || tab.Evictions() != 0 {
		t.Fatal("nil table should report nothing")
	}
	var reg *Registry
	if reg.HeatKeys() != nil || reg.HeatObjects() != nil {
		t.Fatal("nil registry should hand out nil tables")
	}
}

// TestHeatRidesRollupWindow: heat counts folded at capture time must
// appear in Window deltas exactly like ordinary counters.
func TestHeatRidesRollupWindow(t *testing.T) {
	reg := NewRegistry()
	now := time.Now()
	reg.CaptureRollup(now.Add(-time.Minute))
	for i := 0; i < 7; i++ {
		reg.HeatKeys().Record("/zone/hot", 0)
	}
	reg.HeatObjects().Record("/zone/hot/obj.dat", 128)
	ws := reg.WindowAt(now, time.Minute)
	if got := ws.Counters["heat.key./zone/hot"].Delta; got != 7 {
		t.Fatalf("window heat.key delta = %d, want 7 (counters: %v)", got, ws.Counters)
	}
	if got := ws.Counters["heat.object./zone/hot/obj.dat"].Delta; got != 1 {
		t.Fatalf("window heat.object delta = %d, want 1", got)
	}
	// A second window over a fresh baseline sees only the new traffic.
	reg.CaptureRollup(now)
	for i := 0; i < 3; i++ {
		reg.HeatKeys().Record("/zone/hot", 0)
	}
	ws = reg.WindowAt(now.Add(time.Minute), time.Minute)
	if got := ws.Counters["heat.key./zone/hot"].Delta; got != 3 {
		t.Fatalf("rebaselined delta = %d, want 3", got)
	}
	// And the plain snapshot exposes the folded counters too.
	if got := reg.Snapshot().Counters["heat.key./zone/hot"]; got != 10 {
		t.Fatalf("snapshot heat counter = %d, want 10", got)
	}
}

// TestHeatPersistRoundTrip: heat tables flush to the telemetry journal
// and restore across a restart; the restored counters must not seed the
// registry as ordinary counters.
func TestHeatPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	ts, err := OpenTelemetryStore(dir, "srb-test", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		reg.HeatKeys().Record("/zone/persist", 64)
	}
	reg.HeatObjects().Record("/zone/persist/o.dat", 256)
	if err := ts.Flush(reg, nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	// Close without compacting: the journal replay path must restore.
	if err := ts.Close(nil, nil, time.Now()); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry()
	ts2, err := OpenTelemetryStore(dir, "srb-test", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer ts2.Close(nil, nil, time.Now())
	if _, err := ts2.Restore(reg2); err != nil {
		t.Fatal(err)
	}
	snap := reg2.HeatKeys().Snapshot()
	if len(snap) != 1 || snap[0].Key != "/zone/persist" || snap[0].Count != 5 {
		t.Fatalf("restored keys = %+v, want /zone/persist count=5", snap)
	}
	if objs := reg2.HeatObjects().Snapshot(); len(objs) != 1 || objs[0].Bytes != 256 {
		t.Fatalf("restored objects = %+v", objs)
	}
	// The fold must come from the live table, not a seeded counter: a
	// fresh observation moves the folded value to count+1, not 2*count+1.
	reg2.HeatKeys().Record("/zone/persist", 0)
	if got := reg2.Snapshot().Counters["heat.key./zone/persist"]; got != 6 {
		t.Fatalf("post-restore fold = %d, want 6 (heat counters must not double-seed)", got)
	}
}

// TestHeatJournalSkipsSeed double-checks the seed guard at the journal
// level: a telemetry journal holding heat counters in a rollup must not
// inject them into the restored registry's counter set.
func TestHeatJournalSkipsSeed(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	ts, err := OpenTelemetryStore(dir, "srb-test", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	reg.HeatKeys().Record("/zone/a", 0)
	reg.Counter("plain.counter").Add(9)
	reg.CaptureRollup(time.Now())
	if err := ts.Flush(reg, nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	ts.Close(nil, nil, time.Now())

	reg2 := NewRegistry()
	ts2, err := OpenTelemetryStore(dir, "srb-test", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer ts2.Close(nil, nil, time.Now())
	if _, err := ts2.Restore(reg2); err != nil {
		t.Fatal(err)
	}
	// plain counters seed; heat counters must not (the table restore
	// carries them instead).
	if got := reg2.Counter("plain.counter").Value(); got != 9 {
		t.Fatalf("plain counter seed = %d, want 9", got)
	}
	snap := reg2.Snapshot()
	if got := snap.Counters["heat.key./zone/a"]; got != 1 {
		t.Fatalf("restored heat fold = %d, want exactly 1 (no counter seed on top of table restore)", got)
	}
	// Journal file really contains the heat rows (not just in-memory).
	data, err := os.ReadFile(filepath.Join(dir, "telemetry.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "/zone/a") {
		t.Fatal("journal should record the heat row")
	}
}

// TestSLOReplagRule: grammar, fire and resolve for the replication-lag
// metric reading the mcat.shard.*.replag_seconds gauges.
func TestSLOReplagRule(t *testing.T) {
	rules, err := ParseSLORules("replag_seconds < 30s over 5m")
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Metric != SLOReplag || rules[0].Threshold != 30 || rules[0].Target != "*" {
		t.Fatalf("parsed rule = %+v, want replag_seconds threshold 30 target *", rules[0])
	}
	if _, err := ParseSLORules("replag_seconds < bogus over 5m"); err == nil {
		t.Fatal("bogus threshold should be rejected")
	}

	reg := NewRegistry()
	now := time.Now()
	reg.CaptureRollup(now.Add(-5 * time.Minute))
	ev := NewSLOEvaluator(reg, rules)

	// No gauges yet: the rule has nothing to observe and stays quiet.
	if st := ev.Evaluate(now); st[0].Violating {
		t.Fatalf("no-gauge eval = %+v, want quiet", st[0])
	}

	// Healthy lag on two shards.
	reg.Gauge("mcat.shard.0.replag_seconds").Set(1)
	reg.Gauge("mcat.shard.1.replag_seconds").Set(2)
	if st := ev.Evaluate(now); st[0].Violating {
		t.Fatalf("healthy lag eval = %+v, want ok", st[0])
	}

	// Shard 1 falls behind: worst-of semantics must trip the rule.
	reg.Gauge("mcat.shard.1.replag_seconds").Set(90)
	st := ev.Evaluate(now.Add(time.Second))
	if !st[0].Violating {
		t.Fatalf("lagging eval = %+v, want violating", st[0])
	}
	alerts := ev.AlertLog().Recent(0)
	if len(alerts) != 1 || !alerts[0].Firing {
		t.Fatalf("alerts = %+v, want one FIRED", alerts)
	}

	// The follower catches up: the rule resolves.
	reg.Gauge("mcat.shard.1.replag_seconds").Set(0)
	if st := ev.Evaluate(now.Add(2 * time.Second)); st[0].Violating {
		t.Fatalf("caught-up eval = %+v, want resolved", st[0])
	}
	alerts = ev.AlertLog().Recent(0)
	if len(alerts) != 2 || alerts[1].Firing {
		t.Fatalf("alerts = %+v, want FIRED then RESOLVED", alerts)
	}

	// An explicit target reads one shard's gauge, suffix optional.
	rules2, err := ParseSLORules("mcat.shard.0 replag_seconds < 30s over 5m")
	if err != nil {
		t.Fatal(err)
	}
	ev2 := NewSLOEvaluator(reg, rules2)
	reg.Gauge("mcat.shard.0.replag_seconds").Set(45)
	if st := ev2.Evaluate(now); !st[0].Violating {
		t.Fatalf("explicit-target eval = %+v, want violating", st[0])
	}
}
