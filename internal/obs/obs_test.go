package obs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Errorf("gauge = %d, want -3", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter should read 0")
	}
	var g *Gauge
	g.Set(5)
	if g.Value() != 0 {
		t.Error("nil gauge should read 0")
	}
	var h *Histogram
	h.Observe(time.Millisecond)
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram should snapshot empty")
	}
	var o *Op
	o.Done(time.Now(), errors.New("x"))
	if o.Snapshot().Count != 0 {
		t.Error("nil op should snapshot empty")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Op("y") != nil || r.Gauge("z") != nil {
		t.Error("nil registry should hand out nil metrics")
	}
	r.Counter("x").Inc() // must not panic
	var ring *TraceRing
	ring.Add(SpanRecord{})
	if ring.Recent(0) != nil {
		t.Error("nil ring should return nil")
	}
	var l *Logger
	l.Errorf("boom") // must not panic
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	// 0 and sub-µs land in bucket 0 (upper bound 1µs).
	if k := bucketOf(500 * time.Nanosecond); k != 0 {
		t.Errorf("bucketOf(500ns) = %d", k)
	}
	// 3µs lands in [2,4)µs — bucket 2.
	if k := bucketOf(3 * time.Microsecond); k != 2 {
		t.Errorf("bucketOf(3µs) = %d", k)
	}
	// Absurd durations saturate the last bucket.
	if k := bucketOf(24 * time.Hour); k != histBuckets-1 {
		t.Errorf("bucketOf(24h) = %d", k)
	}
	h.Observe(3 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 1 || len(s.Buckets) != 1 || s.Buckets[0].UpperMicros != 4 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations (~2µs) and 10 slow (~1000µs): p50 must sit
	// in the fast band, p99 in the slow band.
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000 * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50Micros <= 0 || s.P50Micros > 8 {
		t.Errorf("p50 = %.1fµs, want within the fast band", s.P50Micros)
	}
	if s.P99Micros < 512 || s.P99Micros > 2048 {
		t.Errorf("p99 = %.1fµs, want within the slow band", s.P99Micros)
	}
	if s.P50Micros > s.P90Micros || s.P90Micros > s.P99Micros {
		t.Errorf("quantiles not monotone: %v %v %v", s.P50Micros, s.P90Micros, s.P99Micros)
	}
}

func TestOpRecordsErrors(t *testing.T) {
	var o Op
	o.Observe(time.Millisecond, nil)
	o.Observe(2*time.Millisecond, errors.New("x"))
	s := o.Snapshot()
	if s.Count != 2 || s.Errors != 1 {
		t.Errorf("op snapshot = %+v", s)
	}
	if s.TotalMicros < 2000 {
		t.Errorf("total = %dµs", s.TotalMicros)
	}
}

func TestRegistrySnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("storage.disk1.bytes_in").Add(1024)
	r.Gauge("catalog.objects").Set(3)
	r.Op("broker.get").Observe(5*time.Microsecond, nil)
	r.Op("broker.get").Observe(7*time.Microsecond, errors.New("x"))
	if c := r.Counter("storage.disk1.bytes_in"); c.Value() != 1024 {
		t.Errorf("re-fetched counter = %d", c.Value())
	}
	s := r.Snapshot()
	if s.Counters["storage.disk1.bytes_in"] != 1024 {
		t.Errorf("snapshot counters = %v", s.Counters)
	}
	if s.Gauges["catalog.objects"] != 3 {
		t.Errorf("snapshot gauges = %v", s.Gauges)
	}
	if op := s.Ops["broker.get"]; op.Count != 2 || op.Errors != 1 {
		t.Errorf("snapshot op = %+v", op)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"storage.disk1.bytes_in 1024",
		"catalog.objects 3",
		"broker.get.count 2",
		"broker.get.errors 1",
		"uptime_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text dump missing %q:\n%s", want, text)
		}
	}
}

func TestTraceRingWraparound(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		ring.Add(SpanRecord{Trace: fmt.Sprintf("t%d", i)})
	}
	recs := ring.Recent(0)
	if len(recs) != 4 {
		t.Fatalf("len = %d", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("t%d", 6+i); r.Trace != want {
			t.Errorf("recs[%d] = %q, want %q", i, r.Trace, want)
		}
	}
	if got := ring.Recent(2); len(got) != 2 || got[1].Trace != "t9" {
		t.Errorf("Recent(2) = %v", got)
	}
}

func TestSpanEndRecords(t *testing.T) {
	ring := NewTraceRing(8)
	sp := StartSpan("", "get")
	if sp.Trace == "" || len(sp.Trace) != 16 {
		t.Fatalf("trace id = %q", sp.Trace)
	}
	sp.End(ring, "srb1", "1.2.3.4:5", errors.New("denied"))
	// A propagated span keeps the incoming ID.
	sp2 := StartSpan(sp.Trace, "get")
	if sp2.Trace != sp.Trace {
		t.Error("propagated span minted a fresh ID")
	}
	sp2.End(ring, "srb2", "", nil)
	recs := ring.Recent(0)
	if len(recs) != 2 {
		t.Fatalf("len = %d", len(recs))
	}
	if recs[0].Trace != recs[1].Trace {
		t.Error("trace IDs differ across hops")
	}
	if recs[0].Err != "denied" || recs[1].Err != "" {
		t.Errorf("errs = %q, %q", recs[0].Err, recs[1].Err)
	}
	if recs[0].Server != "srb1" || recs[1].Server != "srb2" {
		t.Errorf("servers = %q, %q", recs[0].Server, recs[1].Server)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "srbd", LevelInfo)
	l.Errorf("e1")
	l.Infof("i1")
	l.Debugf("d1")
	out := buf.String()
	if !strings.Contains(out, "ERROR srbd e1") || !strings.Contains(out, "INFO  srbd i1") {
		t.Errorf("output:\n%s", out)
	}
	if strings.Contains(out, "d1") {
		t.Errorf("debug leaked at info level:\n%s", out)
	}
	buf.Reset()
	l.SetLevel(LevelError)
	l.Infof("i2")
	if buf.Len() != 0 {
		t.Errorf("info leaked in quiet mode: %s", buf.String())
	}
	if l.Enabled(LevelDebug) {
		t.Error("Enabled(debug) at error level")
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines;
// run with -race this doubles as the data-race check for the hot path.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c").Inc()
				r.Op(fmt.Sprintf("op%d", i%4)).Observe(time.Duration(i)*time.Microsecond, nil)
				r.Gauge("g").Set(int64(i))
				r.Traces().Add(SpanRecord{Trace: NewTraceID()})
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	var total int64
	for i := 0; i < 4; i++ {
		total += r.Op(fmt.Sprintf("op%d", i)).Count()
	}
	if total != workers*iters {
		t.Errorf("op total = %d, want %d", total, workers*iters)
	}
}
