package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Latency decomposition: every request's wall time is partitioned into
// named phases recorded as structured span events (Span.Phase) and
// folded into per-op×per-phase histogram Ops under the "phase."
// registry namespace, so the same rollup/window/grid machinery that
// answers "how slow is get" also answers "where inside get did the
// p99 go".
//
// Naming convention: a registry phase op is
//
//	phase.<family>.<op>.<phase>
//
// where family is "server" or "client", op is the wire op ("get",
// "put", ...; clients use "conn" for per-connection work like dial),
// and phase is one of the names below. A phase name containing "/" is
// a sub-phase nested under the top-level segment before the slash;
// top-level phases partition the span's wall time, sub-phases
// attribute time within their parent and may overlap each other.
const (
	// Server-side top-level phases: queue.wait + dispatch partition the
	// span's wall clock exactly (the span is backdated to enqueue time).
	PhaseQueueWait = "queue.wait" // pipelined request parked behind the per-conn worker semaphore
	PhaseDispatch  = "dispatch"   // the op handler itself, inclusive of all sub-phases

	// Server-side sub-phases of dispatch.
	PhaseMCATLookup     = "dispatch/mcat.lookup"     // catalog resolve + ACL check
	PhaseStorageOpen    = "dispatch/storage.open"    // storage driver open (first byte reachable)
	PhaseStorageRead    = "dispatch/storage.read"    // storage driver open+read of the winning replica
	PhaseStorageWrite   = "dispatch/storage.write"   // storage driver write fan-out
	PhaseReplicaAttempt = "dispatch/replica.attempt" // one replica candidate attempt (repeats on failover)
	PhaseFederationHop  = "dispatch/federation.hop"  // proxied call to a federated peer, wire round trip inclusive
	PhaseShardFanout    = "dispatch/shard.fanout"    // scatter of a catalog query to every MCAT shard
	PhaseShardMerge     = "dispatch/shard.merge"     // dedup + sort of per-shard query hits

	// Client-side phases (recorded into the client's own registry; the
	// client has no server span, so these never appear in span trees).
	PhaseBatchHold    = "batch.hold"    // item sat in the PutBatcher before its flush started
	PhasePoolCheckout = "pool.checkout" // waiting for a pooled connection (includes dial when one is minted)
	PhaseDial         = "dial"          // TCP connect + handshake for a fresh pooled conn
	PhaseSerialize    = "serialize"     // request argument marshaling
	PhaseMuxInflight  = "mux.inflight"  // request on the wire: send → matching reply frame
)

// PhasePrefix namespaces per-phase ops inside a registry.
const PhasePrefix = "phase."

// RecordPhases folds a finished span's phase events into the registry's
// per-op×per-phase histogram ops, tagging each observation with the
// trace ID so tail buckets retain joinable exemplars. Call once per
// request, after the handler has recorded its phases.
func (r *Registry) RecordPhases(family, op, trace string, events []SpanEvent) {
	if r == nil {
		return
	}
	prefix := PhasePrefix + family + "." + op + "."
	for _, ev := range events {
		if ev.Kind != EventPhase {
			continue
		}
		r.Op(prefix+ev.Detail).ObserveTrace(time.Duration(ev.DurMicros)*time.Microsecond, nil, trace)
	}
}

// SplitPhaseOp decomposes a registry op name of the form
// "phase.<family>.<op>.<phase>" into its parts. ok is false for names
// outside the phase namespace.
func SplitPhaseOp(name string) (family, op, phase string, ok bool) {
	rest, found := strings.CutPrefix(name, PhasePrefix)
	if !found {
		return "", "", "", false
	}
	parts := strings.SplitN(rest, ".", 3)
	if len(parts) < 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return "", "", "", false
	}
	return parts[0], parts[1], parts[2], true
}

// PhaseRow is one per-op×per-phase window aggregate, the row unit of
// `srb top -phases`, the admin /phases JSON and the MySRB grid table.
type PhaseRow struct {
	Family string
	Op     string
	Phase  string
	WindowOp
}

// PhaseRows extracts and orders the phase ops out of a window's op map:
// grouped by family then op, slowest total first within the group.
func PhaseRows(ops map[string]WindowOp) []PhaseRow {
	var rows []PhaseRow
	for name, op := range ops {
		family, opName, phase, ok := SplitPhaseOp(name)
		if !ok {
			continue
		}
		rows = append(rows, PhaseRow{Family: family, Op: opName, Phase: phase, WindowOp: op})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Family != rows[j].Family {
			return rows[i].Family < rows[j].Family
		}
		if rows[i].Op != rows[j].Op {
			return rows[i].Op < rows[j].Op
		}
		if rows[i].TotalMicros != rows[j].TotalMicros {
			return rows[i].TotalMicros > rows[j].TotalMicros
		}
		return rows[i].Phase < rows[j].Phase
	})
	return rows
}

// PhaseSum returns the summed duration of the top-level (unslashed)
// phase events — the portion of a span's wall time the decomposition
// accounts for.
func PhaseSum(events []SpanEvent) int64 {
	var sum int64
	for _, ev := range events {
		if ev.Kind == EventPhase && !strings.Contains(ev.Detail, "/") {
			sum += ev.DurMicros
		}
	}
	return sum
}

// WriteWaterfall renders assembled span trees as a phase-breakdown
// waterfall — the `srb why <trace-id>` view. Each span line is followed
// by one row per phase with its duration, share of the span's wall
// time and a proportional bar; sub-phases indent under their parent,
// and any wall time the top-level phases do not account for shows as
// "(unattributed)".
func WriteWaterfall(w io.Writer, roots []*SpanNode) error {
	for _, n := range roots {
		if err := writeWaterfallNode(w, n, 0); err != nil {
			return err
		}
	}
	return nil
}

func writeWaterfallNode(w io.Writer, n *SpanNode, depth int) error {
	indent := strings.Repeat("  ", depth)
	line := fmt.Sprintf("%s%s [%s] %dus span=%s", indent, n.Op, n.Server, n.Micros, n.Span)
	if n.Err != "" {
		line += " err=" + n.Err
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	// Group sub-phases under their parent: phases are recorded in
	// completion order, so a span's sub-phases finish (and appear)
	// before the enclosing top-level phase does — regrouping keeps the
	// printed tree matching the taxonomy, not the clock.
	var topSum int64
	sawPhase := false
	var tops []SpanEvent
	subs := map[string][]SpanEvent{}
	for _, ev := range n.Events {
		if ev.Kind != EventPhase {
			continue
		}
		sawPhase = true
		if i := strings.IndexByte(ev.Detail, '/'); i >= 0 {
			subs[ev.Detail[:i]] = append(subs[ev.Detail[:i]], ev)
		} else {
			tops = append(tops, ev)
			topSum += ev.DurMicros
		}
	}
	for _, ev := range tops {
		if err := writePhaseRow(w, indent, ev.Detail, ev.DurMicros, n.Micros); err != nil {
			return err
		}
		for _, sub := range subs[ev.Detail] {
			label := sub.Detail[strings.IndexByte(sub.Detail, '/')+1:]
			if err := writePhaseRow(w, indent+"  ", label, sub.DurMicros, n.Micros); err != nil {
				return err
			}
		}
		delete(subs, ev.Detail)
	}
	// A sub-phase whose parent never closed (error paths) still prints,
	// under its full name so the dangling parent is visible.
	for _, ev := range n.Events {
		if ev.Kind != EventPhase {
			continue
		}
		if i := strings.IndexByte(ev.Detail, '/'); i >= 0 && len(subs[ev.Detail[:i]]) > 0 {
			if err := writePhaseRow(w, indent+"  ", ev.Detail, ev.DurMicros, n.Micros); err != nil {
				return err
			}
		}
	}
	if sawPhase {
		if rest := n.Micros - topSum; rest > 0 {
			if err := writePhaseRow(w, indent, "(unattributed)", rest, n.Micros); err != nil {
				return err
			}
		}
	}
	for _, c := range n.Children {
		if err := writeWaterfallNode(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func writePhaseRow(w io.Writer, indent, label string, durMicros, spanMicros int64) error {
	pct := 0.0
	if spanMicros > 0 {
		pct = 100 * float64(durMicros) / float64(spanMicros)
	}
	_, err := fmt.Fprintf(w, "%s  %-26s %9dus %5.1f%% %s\n", indent, label, durMicros, pct, phaseBar(pct))
	return err
}

// phaseBar renders pct (0..100) as a fixed-width proportional bar.
func phaseBar(pct float64) string {
	const width = 24
	n := int(pct/100*width + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}
