package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func testRecorder(t *testing.T, cfg IncidentConfig) *IncidentRecorder {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Server == "" {
		cfg.Server = "srb-test"
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.ProfileDur == 0 {
		cfg.ProfileDur = 10 * time.Millisecond
	}
	ir, err := NewIncidentRecorder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ir
}

// TestIncidentCaptureBundle checks one capture produces a complete,
// listable, retrievable bundle with the expected members.
func TestIncidentCaptureBundle(t *testing.T) {
	reg := NewRegistry()
	sp := StartSpan("trace1", "server.get")
	sp.End(reg.Traces(), "srb-test", "", nil)
	ir := testRecorder(t, IncidentConfig{
		Registry: reg,
		Extra: func() map[string][]byte {
			return map[string][]byte{"breakers.json": []byte(`{}`)}
		},
	})
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	meta, err := ir.Capture(now, "get-p99", "slo-fired", "p99 123ms > 50ms", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(meta.ID, "-"+sloSlug("get-p99")) {
		t.Errorf("bundle id %q, want <ts>-%s", meta.ID, sloSlug("get-p99"))
	}
	for _, want := range []string{"cpu.pprof", "heap.pprof", "spans.txt", "spans.json", "window.json", "breakers.json"} {
		found := false
		for _, f := range meta.Files {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("bundle missing %s (have %v)", want, meta.Files)
		}
	}
	list := ir.List()
	if len(list) != 1 || list[0].ID != meta.ID {
		t.Fatalf("List = %+v, want the one bundle", list)
	}
	got, files, err := ir.Get(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rule != "get-p99" || got.Reason != "slo-fired" || got.Server != "srb-test" {
		t.Errorf("Get meta = %+v", got)
	}
	var ws WindowStats
	if err := json.Unmarshal(files["window.json"], &ws); err != nil {
		t.Fatalf("window.json not parseable: %v", err)
	}
	if len(files["cpu.pprof"]) == 0 || len(files["heap.pprof"]) == 0 {
		t.Error("profiles empty in retrieved bundle")
	}
}

// TestIncidentRateLimitFlapping drives a flapping rule: only captures
// separated by MinGap land, each suppression reports ErrRateLimited,
// and an unrelated rule is limited independently.
func TestIncidentRateLimitFlapping(t *testing.T) {
	ir := testRecorder(t, IncidentConfig{MinGap: time.Minute})
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

	captured, limited := 0, 0
	// A rule flapping every 10s for 5 minutes: 31 fire events.
	for i := 0; i <= 30; i++ {
		_, err := ir.Capture(base.Add(time.Duration(i)*10*time.Second), "get-p99", "slo-fired", "", time.Minute)
		switch {
		case err == nil:
			captured++
		case errors.Is(err, ErrRateLimited):
			limited++
		default:
			t.Fatal(err)
		}
	}
	// Captures land at 0s, 60s, ..., 300s: six, the rest suppressed.
	if captured != 6 || limited != 25 {
		t.Fatalf("captured %d / limited %d, want 6 / 25", captured, limited)
	}
	// A different rule is not throttled by get-p99's gap.
	if _, err := ir.Capture(base.Add(5*time.Second), "put-err", "slo-fired", "", time.Minute); err != nil {
		t.Fatalf("independent rule rate-limited: %v", err)
	}
	if got := len(ir.List()); got != 7 {
		t.Fatalf("index holds %d bundles, want 7", got)
	}
}

// TestIncidentRateLimitConcurrent fires the same rule from many
// goroutines at one instant: exactly one capture must win (the slot is
// claimed before the slow profile work, not after).
func TestIncidentRateLimitConcurrent(t *testing.T) {
	ir := testRecorder(t, IncidentConfig{MinGap: time.Minute})
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	var ok, limited int64
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := ir.Capture(now, "get-p99", "slo-fired", "", time.Minute)
			mu.Lock()
			if err == nil {
				ok++
			} else if errors.Is(err, ErrRateLimited) {
				limited++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if ok != 1 || limited != 7 {
		t.Fatalf("concurrent capture: %d ok / %d limited, want 1 / 7", ok, limited)
	}
}

// TestIncidentEvictAndPrune checks the bounded index and retention
// pruning.
func TestIncidentEvictAndPrune(t *testing.T) {
	ir := testRecorder(t, IncidentConfig{MinGap: time.Millisecond, MaxIndex: 3})
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		if _, err := ir.Capture(base.Add(time.Duration(i)*time.Second), "get-p99", "slo-fired", "", time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	list := ir.List()
	if len(list) != 3 {
		t.Fatalf("index holds %d, want MaxIndex=3", len(list))
	}
	// Newest first; the two oldest (0s, 1s) were evicted.
	if !list[0].At.Equal(base.Add(4 * time.Second)) || !list[2].At.Equal(base.Add(2*time.Second)) {
		t.Fatalf("surviving bundles %v, want 4s..2s", list)
	}
	ir.Prune(base.Add(3*time.Second + 500*time.Millisecond))
	if got := len(ir.List()); got != 1 {
		t.Fatalf("after prune %d bundles remain, want 1", got)
	}
}

// TestIncidentGetRejectsTraversal checks hostile ids never reach the
// filesystem.
func TestIncidentGetRejectsTraversal(t *testing.T) {
	ir := testRecorder(t, IncidentConfig{})
	for _, id := range []string{
		"../../etc/passwd",
		"..",
		"20260808T120000.000-get/../..",
		"nonsense",
		"",
	} {
		if _, _, err := ir.Get(id); err == nil {
			t.Errorf("Get(%q) succeeded, want rejection", id)
		}
	}
}
