package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// Rollup retention defaults: one capture every 10s, 2160 slots ≈ 6h of
// history. Both are daemon-tunable (srbd -rollup-interval).
const (
	DefaultRollupInterval = 10 * time.Second
	DefaultRollupSlots    = 2160
)

// OpRollup is the cumulative state of one op family at capture time:
// lifetime count/errors/latency-sum plus the raw histogram buckets.
// Storing cumulative values (not deltas) keeps capture cheap — a window
// query subtracts two rollups, and bucket-count deltas feed the same
// quantile interpolation the lifetime snapshot uses.
type OpRollup struct {
	Count       int64
	Errors      int64
	TotalMicros int64
	Buckets     [histBuckets]int64
}

// Rollup is one periodic capture of a registry: every counter, gauge
// and op family, stamped with the capture time.
type Rollup struct {
	At       time.Time
	Counters map[string]int64
	Gauges   map[string]int64
	Ops      map[string]OpRollup
}

// RollupRing is a bounded ring of periodic rollups — the time-series
// store behind windowed rates, `srb top` and the SLO evaluator. Safe
// for concurrent use; capture and query both cost one short lock.
type RollupRing struct {
	mu    sync.Mutex
	slots []Rollup
	start int
	count int
}

// NewRollupRing returns a ring holding up to capacity rollups
// (DefaultRollupSlots when capacity <= 0).
func NewRollupRing(capacity int) *RollupRing {
	if capacity <= 0 {
		capacity = DefaultRollupSlots
	}
	return &RollupRing{slots: make([]Rollup, capacity)}
}

// Add appends one rollup, displacing the oldest when full.
func (rr *RollupRing) Add(r Rollup) {
	if rr == nil {
		return
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.count < len(rr.slots) {
		rr.slots[(rr.start+rr.count)%len(rr.slots)] = r
		rr.count++
		return
	}
	rr.slots[rr.start] = r
	rr.start = (rr.start + 1) % len(rr.slots)
}

// Len reports how many rollups are retained.
func (rr *RollupRing) Len() int {
	if rr == nil {
		return 0
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return rr.count
}

// Baseline returns the newest retained rollup captured at or before
// cutoff — the subtrahend for a window query. When every retained
// rollup is newer than cutoff (the requested window predates retention,
// or the server just started) the oldest rollup stands in, so the
// window degrades gracefully to "since the oldest data we have".
// ok is false only when the ring is empty.
func (rr *RollupRing) Baseline(cutoff time.Time) (Rollup, bool) {
	if rr == nil {
		return Rollup{}, false
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if rr.count == 0 {
		return Rollup{}, false
	}
	// Newest-first scan: the first slot at or before cutoff wins.
	for i := rr.count - 1; i >= 0; i-- {
		r := rr.slots[(rr.start+i)%len(rr.slots)]
		if !r.At.After(cutoff) {
			return r, true
		}
	}
	return rr.slots[rr.start], true
}

// Recent returns up to n rollups, oldest first (n <= 0 returns all).
func (rr *RollupRing) Recent(n int) []Rollup {
	if rr == nil {
		return nil
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if n <= 0 || n > rr.count {
		n = rr.count
	}
	out := make([]Rollup, 0, n)
	for i := rr.count - n; i < rr.count; i++ {
		out = append(out, rr.slots[(rr.start+i)%len(rr.slots)])
	}
	return out
}

// raw exposes the histogram internals for rollup capture, bypassing
// quantile interpolation (a window recomputes quantiles from bucket
// deltas).
func (h *Histogram) raw() (count, totalMicros int64, buckets [histBuckets]int64) {
	if h == nil {
		return 0, 0, buckets
	}
	count = h.count.Load()
	totalMicros = h.sumNano.Load() / 1000
	for i := range buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return count, totalMicros, buckets
}

// Rollups returns the registry's time-series ring.
func (r *Registry) Rollups() *RollupRing {
	if r == nil {
		return nil
	}
	return r.rollups
}

// CaptureRollup snapshots every counter, gauge and op family into the
// time-series ring, stamped now. Daemons call this on a periodic job;
// tests call it directly with explicit times for determinism.
func (r *Registry) CaptureRollup(now time.Time) {
	if r == nil || r.rollups == nil {
		return
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	gauges := make(map[string]*Gauge, len(r.gauges))
	ops := make(map[string]*Op, len(r.ops))
	for k, v := range r.counters {
		counters[k] = v
	}
	for k, v := range r.gauges {
		gauges[k] = v
	}
	for k, v := range r.ops {
		ops[k] = v
	}
	r.mu.RUnlock()
	ru := Rollup{
		At:       now,
		Counters: make(map[string]int64, len(counters)),
		Gauges:   make(map[string]int64, len(gauges)),
		Ops:      make(map[string]OpRollup, len(ops)),
	}
	for k, v := range counters {
		ru.Counters[k] = v.Value()
	}
	// Heat counts fold in as heat.key.* / heat.object.* counters so
	// baselines carry them and windows report heat rates.
	r.foldHeat(ru.Counters)
	for k, v := range gauges {
		ru.Gauges[k] = v.Value()
	}
	for k, v := range ops {
		_, total, buckets := v.lat.raw()
		ru.Ops[k] = OpRollup{
			Count:       v.count.Value(),
			Errors:      v.errs.Value(),
			TotalMicros: total,
			Buckets:     buckets,
		}
	}
	r.rollups.Add(ru)
}

// RateStat is one counter over a window: the delta and its per-second
// rate.
type RateStat struct {
	Delta  int64
	PerSec float64
}

// WindowOp is one op family over a window: activity delta, rate, error
// percentage and quantiles interpolated from the window's bucket
// deltas (not lifetime history). Buckets carries the non-empty deltas
// so a grid merge can recompute true cross-server quantiles.
type WindowOp struct {
	Count       int64
	Errors      int64
	PerSec      float64
	ErrorPct    float64
	TotalMicros int64
	P50Micros   float64
	P95Micros   float64
	P99Micros   float64
	Buckets     []BucketCount `json:",omitempty"`
}

// WindowStats is a registry view over a trailing window: rates and
// windowed quantiles instead of lifetime totals. CoveredSeconds is how
// much history actually backed the answer — less than WindowSeconds
// when the server is younger than the window or retention ran out.
type WindowStats struct {
	WindowSeconds  float64
	CoveredSeconds float64
	Counters       map[string]RateStat `json:",omitempty"`
	Gauges         map[string]int64    `json:",omitempty"`
	Ops            map[string]WindowOp `json:",omitempty"`
}

// Window reports rates and windowed quantiles over the trailing window.
func (r *Registry) Window(window time.Duration) WindowStats {
	return r.WindowAt(time.Now(), window)
}

// WindowAt is Window with an explicit "now", for deterministic tests.
// The baseline is the newest rollup at or before now-window (falling
// back to the oldest retained, or to the registry start when the ring
// is empty); current values are read live so the window always ends at
// now, not at the last capture.
func (r *Registry) WindowAt(now time.Time, window time.Duration) WindowStats {
	if r == nil {
		return WindowStats{}
	}
	if window <= 0 {
		window = 5 * time.Minute
	}
	base, ok := r.Rollups().Baseline(now.Add(-window))
	if !ok {
		// No history at all: diff against zero since registry start.
		base = Rollup{At: r.start}
	}
	covered := now.Sub(base.At).Seconds()
	if covered < 0 {
		covered = 0
	}
	ws := WindowStats{
		WindowSeconds:  window.Seconds(),
		CoveredSeconds: covered,
		Counters:       make(map[string]RateStat),
		Gauges:         make(map[string]int64),
		Ops:            make(map[string]WindowOp),
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	gauges := make(map[string]*Gauge, len(r.gauges))
	ops := make(map[string]*Op, len(r.ops))
	for k, v := range r.counters {
		counters[k] = v
	}
	for k, v := range r.gauges {
		gauges[k] = v
	}
	for k, v := range r.ops {
		ops[k] = v
	}
	r.mu.RUnlock()
	live := make(map[string]int64, len(counters))
	for k, v := range counters {
		live[k] = v.Value()
	}
	// Heat counts join the live counter set; the baseline rollup carries
	// their capture-time values, so the usual delta below yields the
	// per-window heat.
	r.foldHeat(live)
	for k, cur := range live {
		delta := cur - base.Counters[k]
		if delta < 0 {
			delta = 0
		}
		if delta == 0 {
			continue
		}
		ws.Counters[k] = RateStat{Delta: delta, PerSec: perSec(delta, covered)}
	}
	for k, v := range gauges {
		ws.Gauges[k] = v.Value()
	}
	for k, v := range ops {
		_, total, buckets := v.lat.raw()
		b := base.Ops[k]
		wo := WindowOp{
			Count:       clamp0(v.count.Value() - b.Count),
			Errors:      clamp0(v.errs.Value() - b.Errors),
			TotalMicros: clamp0(total - b.TotalMicros),
		}
		if wo.Count == 0 {
			continue // no activity in the window
		}
		wo.PerSec = perSec(wo.Count, covered)
		wo.ErrorPct = 100 * float64(wo.Errors) / float64(wo.Count)
		var deltas [histBuckets]int64
		var dtotal int64
		for i := range deltas {
			deltas[i] = clamp0(buckets[i] - b.Buckets[i])
			dtotal += deltas[i]
		}
		if dtotal > 0 {
			wo.P50Micros = quantile(deltas[:], dtotal, 0.50)
			wo.P95Micros = quantile(deltas[:], dtotal, 0.95)
			wo.P99Micros = quantile(deltas[:], dtotal, 0.99)
			for i, n := range deltas {
				if n > 0 {
					wo.Buckets = append(wo.Buckets, BucketCount{UpperMicros: BucketUpperMicros(i), Count: n})
				}
			}
		}
		ws.Ops[k] = wo
	}
	return ws
}

func perSec(delta int64, covered float64) float64 {
	if covered <= 0 {
		return 0
	}
	return float64(delta) / covered
}

func clamp0(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// MergeWindows combines per-server window stats into one grid view:
// counts, deltas and rates sum; gauges sum (they are zone-wide totals
// like open breakers or repair backlog); quantiles are recomputed from
// the merged bucket deltas, so the grid p99 is a true cross-server
// quantile, not an average of per-server percentiles. Coverage is the
// widest any member achieved.
func MergeWindows(wins []WindowStats) WindowStats {
	out := WindowStats{
		Counters: make(map[string]RateStat),
		Gauges:   make(map[string]int64),
		Ops:      make(map[string]WindowOp),
	}
	merged := make(map[string][histBuckets]int64)
	for _, w := range wins {
		if w.WindowSeconds > out.WindowSeconds {
			out.WindowSeconds = w.WindowSeconds
		}
		if w.CoveredSeconds > out.CoveredSeconds {
			out.CoveredSeconds = w.CoveredSeconds
		}
		for k, v := range w.Counters {
			c := out.Counters[k]
			c.Delta += v.Delta
			c.PerSec += v.PerSec
			out.Counters[k] = c
		}
		for k, v := range w.Gauges {
			out.Gauges[k] += v
		}
		for k, v := range w.Ops {
			o := out.Ops[k]
			o.Count += v.Count
			o.Errors += v.Errors
			o.PerSec += v.PerSec
			o.TotalMicros += v.TotalMicros
			out.Ops[k] = o
			m := merged[k]
			for _, b := range v.Buckets {
				i := bits.Len64(uint64(b.UpperMicros)) - 1
				if i < 0 {
					i = 0
				}
				if i >= histBuckets {
					i = histBuckets - 1
				}
				m[i] += b.Count
			}
			merged[k] = m
		}
	}
	for k, o := range out.Ops {
		if o.Count > 0 {
			o.ErrorPct = 100 * float64(o.Errors) / float64(o.Count)
		}
		m := merged[k]
		var total int64
		for _, n := range m {
			total += n
		}
		if total > 0 {
			o.P50Micros = quantile(m[:], total, 0.50)
			o.P95Micros = quantile(m[:], total, 0.95)
			o.P99Micros = quantile(m[:], total, 0.99)
			for i, n := range m {
				if n > 0 {
					o.Buckets = append(o.Buckets, BucketCount{UpperMicros: BucketUpperMicros(i), Count: n})
				}
			}
		}
		out.Ops[k] = o
	}
	return out
}

// WriteWindowText dumps window stats as sorted "name value" lines —
// the format /metrics?window= serves alongside the lifetime dump.
func WriteWindowText(w io.Writer, ws WindowStats) error {
	lines := make([]string, 0, len(ws.Counters)+len(ws.Gauges)+7*len(ws.Ops)+2)
	lines = append(lines,
		fmt.Sprintf("window_seconds %.0f", ws.WindowSeconds),
		fmt.Sprintf("window_covered_seconds %.1f", ws.CoveredSeconds),
	)
	for k, v := range ws.Counters {
		lines = append(lines, fmt.Sprintf("%s.delta %d", k, v.Delta), fmt.Sprintf("%s.per_sec %.2f", k, v.PerSec))
	}
	for k, v := range ws.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", k, v))
	}
	for k, o := range ws.Ops {
		lines = append(lines,
			fmt.Sprintf("%s.count %d", k, o.Count),
			fmt.Sprintf("%s.errors %d", k, o.Errors),
			fmt.Sprintf("%s.per_sec %.2f", k, o.PerSec),
			fmt.Sprintf("%s.error_pct %.2f", k, o.ErrorPct),
			fmt.Sprintf("%s.p50_us %.1f", k, o.P50Micros),
			fmt.Sprintf("%s.p95_us %.1f", k, o.P95Micros),
			fmt.Sprintf("%s.p99_us %.1f", k, o.P99Micros),
		)
	}
	sort.Strings(lines)
	for _, ln := range lines {
		if _, err := fmt.Fprintln(w, ln); err != nil {
			return err
		}
	}
	return nil
}
