package tlang

import (
	"strings"
	"testing"

	"gosrb/internal/sqlengine"
)

const fitsHeader = `SIMPLE  =                    T / conforms to FITS standard
BITPIX  =                   16 / bits per pixel
NAXIS   =                    2
OBJECT  = 'M31     '           / target name
TELESCOP= '2MASS   '
EXPTIME =                 7.80 / seconds
END
GARBAGE = 'after end'
`

// fitsScript is the style of extraction method the paper describes for
// FITS files: lift KEY = value header cards as metadata triplets.
const fitsScript = `
# generic FITS card extractor
stop /^END\b/
match /^([A-Z][A-Z0-9_-]*)\s*=\s*'([^']*)'/ -> $1 = $2
match /^([A-Z][A-Z0-9_-]*)\s*=\s*([0-9.TF+-]+)/ -> $1 = $2
set content-type = "fits image"
`

func TestExtractFITS(t *testing.T) {
	ex, err := ParseExtractor(fitsScript)
	if err != nil {
		t.Fatal(err)
	}
	avus, err := ex.Extract(strings.NewReader(fitsHeader))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, a := range avus {
		got[a.Name] = a.Value
	}
	want := map[string]string{
		"SIMPLE":       "T",
		"BITPIX":       "16",
		"NAXIS":        "2",
		"OBJECT":       "M31",
		"TELESCOP":     "2MASS",
		"EXPTIME":      "7.80",
		"content-type": "fits image",
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %q, want %q", k, got[k], v)
		}
	}
	if _, ok := got["GARBAGE"]; ok {
		t.Error("stop rule should halt before GARBAGE")
	}
}

func TestFirstFiresOnce(t *testing.T) {
	ex, err := ParseExtractor(`first /title: (.+)/ -> title = $1`)
	if err != nil {
		t.Fatal(err)
	}
	avus, err := ex.Extract(strings.NewReader("title: one\ntitle: two\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(avus) != 1 || avus[0].Value != "one" {
		t.Errorf("first = %+v", avus)
	}
}

func TestMatchFiresEveryLine(t *testing.T) {
	ex, err := ParseExtractor(`match /kw: (\w+)/ -> keyword = $1`)
	if err != nil {
		t.Fatal(err)
	}
	avus, err := ex.Extract(strings.NewReader("kw: a\nkw: b\nkw: c\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(avus) != 3 {
		t.Fatalf("avus = %+v", avus)
	}
	if avus[2].Value != "c" {
		t.Errorf("third = %+v", avus[2])
	}
}

func TestUnitsCapture(t *testing.T) {
	ex, err := ParseExtractor(`match /^exposure\s+([0-9.]+)\s+(\w+)/ -> exposure = $1 units $2`)
	if err != nil {
		t.Fatal(err)
	}
	avus, err := ex.Extract(strings.NewReader("exposure 7.8 seconds\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(avus) != 1 || avus[0].Units != "seconds" || avus[0].Value != "7.8" {
		t.Errorf("avus = %+v", avus)
	}
}

func TestSetWithQuotedUnits(t *testing.T) {
	ex, err := ParseExtractor(`set curator = "a b c" units "role"`)
	if err != nil {
		t.Fatal(err)
	}
	avus, err := ex.Extract(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(avus) != 1 || avus[0].Value != "a b c" || avus[0].Units != "role" {
		t.Errorf("avus = %+v", avus)
	}
}

func TestExtractorReusable(t *testing.T) {
	ex, err := ParseExtractor(`first /x=(\d+)/ -> x = $1`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		avus, err := ex.Extract(strings.NewReader("x=1\nx=2\n"))
		if err != nil {
			t.Fatal(err)
		}
		if len(avus) != 1 || avus[0].Value != "1" {
			t.Fatalf("run %d: %+v", i, avus)
		}
	}
}

func TestEscapedSlashInPattern(t *testing.T) {
	ex, err := ParseExtractor(`match /path: (\/\w+)/ -> path = $1`)
	if err != nil {
		t.Fatal(err)
	}
	avus, err := ex.Extract(strings.NewReader("path: /data\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(avus) != 1 || avus[0].Value != "/data" {
		t.Errorf("avus = %+v", avus)
	}
}

func TestParseExtractorErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"# only a comment",
		"frobnicate /x/ -> a = $1",
		"match /unterminated -> a = $1",
		"match /x/ a = $1",
		"match /x/ -> = $1",
		"match /x/ -> a $1",
		"match /[/ -> a = $1",
		"stop /x/ trailing",
		`set a = "unterminated`,
		"match /x/ -> a = $1 unit b",
	} {
		if _, err := ParseExtractor(bad); err == nil {
			t.Errorf("ParseExtractor(%q) should fail", bad)
		}
	}
}

func result() *sqlengine.Result {
	return &sqlengine.Result{
		Columns: []string{"survey", "name", "mag"},
		Rows: []sqlengine.Row{
			{sqlengine.String("2mass"), sqlengine.String("m31"), sqlengine.Number(3.4)},
			{sqlengine.String("2mass"), sqlengine.String("m42"), sqlengine.Number(4)},
			{sqlengine.String("dposs"), sqlengine.String("<ngc&253>"), sqlengine.Number(7.1)},
		},
	}
}

func TestHTMLRel(t *testing.T) {
	var b strings.Builder
	if err := RenderBuiltin("HTMLREL", &b, result()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<th>survey</th>", "<td>m31</td>", "&lt;ngc&amp;253&gt;"} {
		if !strings.Contains(out, want) {
			t.Errorf("HTMLREL missing %q in %q", want, out)
		}
	}
	if strings.Contains(out, "<ngc") {
		t.Error("HTMLREL must escape cell contents")
	}
}

func TestHTMLNestGroupsByFirstColumn(t *testing.T) {
	var b strings.Builder
	if err := RenderBuiltin("htmlnest", &b, result()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "<td>2mass</td>") != 1 {
		t.Errorf("2mass group should appear once:\n%s", out)
	}
	if strings.Count(out, "<td>dposs</td>") != 1 {
		t.Errorf("dposs group should appear once:\n%s", out)
	}
}

func TestXMLRel(t *testing.T) {
	var b strings.Builder
	if err := RenderBuiltin("XMLREL", &b, result()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`<?xml version="1.0"?>`,
		"<!DOCTYPE result",
		`<col name="survey">2mass</col>`,
		"&lt;ngc&amp;253&gt;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("XMLREL missing %q", want)
		}
	}
}

func TestRenderBuiltinUnknown(t *testing.T) {
	if err := RenderBuiltin("nope", &strings.Builder{}, result()); err == nil {
		t.Error("unknown builtin should fail")
	}
	if !IsBuiltin("xmlrel") || IsBuiltin("custom.t") {
		t.Error("IsBuiltin wrong")
	}
}

func TestCustomTemplate(t *testing.T) {
	tpl, err := ParseTemplate(`
head: == results ==
row: $2 in ${survey} at mag $3
tail: == end ==
`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tpl.Render(&b, result()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "== results ==\n") || !strings.HasSuffix(out, "== end ==\n") {
		t.Errorf("head/tail missing:\n%s", out)
	}
	if !strings.Contains(out, "m31 in 2mass at mag 3.4") {
		t.Errorf("row substitution failed:\n%s", out)
	}
}

func TestTemplateMultilineRow(t *testing.T) {
	tpl, err := ParseTemplate("row:\n<item>\n  $1\n</item>")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	res := &sqlengine.Result{Columns: []string{"c"}, Rows: []sqlengine.Row{{sqlengine.String("v")}}}
	if err := tpl.Render(&b, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "<item>\n  v\n</item>") {
		t.Errorf("multiline row:\n%q", b.String())
	}
}

func TestTemplateErrors(t *testing.T) {
	if _, err := ParseTemplate("no sections here"); err == nil {
		t.Error("sectionless template should fail")
	}
	if _, err := ParseTemplate(""); err == nil {
		t.Error("empty template should fail")
	}
}

func TestTemplatePositionalTenPlus(t *testing.T) {
	// $1 substitution must not corrupt $10-style names ($10 is treated
	// as $1 followed by '0' in this dialect; document via test).
	tpl, err := ParseTemplate("row: $1-$2")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	res := &sqlengine.Result{Columns: []string{"a", "b"}, Rows: []sqlengine.Row{
		{sqlengine.String("x"), sqlengine.String("y")},
	}}
	if err := tpl.Render(&b, res); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "x-y" {
		t.Errorf("got %q", b.String())
	}
}
