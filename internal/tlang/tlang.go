// Package tlang implements the T-language, SRB's interpreted language
// for rule-based metadata extraction and for style sheets that render
// query results (paper §5: extraction methods "written in T-language,
// which has a simple form of rules for identifying metadata values and
// associating them with metadata names", and registered-SQL templates
// where "the user specifies a file already in SRB as the style-sheet").
//
// The paper does not publish a grammar, so this package defines a
// small, regular one in the same spirit:
//
// Extraction scripts are line-oriented; '#' starts a comment.
//
//	match /regex/ -> name = $1 [units $2]   emit an AVU per matching line
//	first /regex/ -> name = $1 [units $2]   emit only on the first match
//	set name = "literal" [units "u"]        unconditional AVU
//	stop /regex/                            stop scanning at this line
//
// The name may itself be a capture reference ($1), so generic scripts
// can lift `KEY = value` header styles (FITS cards, HTTP headers).
//
// Style sheets have three sections rendered around a tabular result:
//
//	head: <arbitrary text>
//	row:  text with $1..$n positional and ${column} named substitutions
//	tail: <arbitrary text>
//
// The built-in templates HTMLREL, HTMLNEST and XMLREL named in the
// paper are provided by RenderBuiltin.
package tlang

import (
	"bufio"
	"fmt"
	"html"
	"io"
	"regexp"
	"strconv"
	"strings"

	"gosrb/internal/sqlengine"
	"gosrb/internal/types"
)

// ruleKind discriminates extraction statements.
type ruleKind int

const (
	ruleMatch ruleKind = iota
	ruleFirst
	ruleSet
	ruleStop
)

type rule struct {
	kind  ruleKind
	re    *regexp.Regexp
	name  string // literal name or $n reference
	value string // value template with $n references (ruleMatch/First) or literal (ruleSet)
	units string // units template or literal
	fired bool   // for ruleFirst
}

// Extractor is a compiled extraction script.
type Extractor struct {
	rules []rule
}

// ParseExtractor compiles an extraction script.
func ParseExtractor(src string) (*Extractor, error) {
	ex := &Extractor{}
	sc := bufio.NewScanner(strings.NewReader(src))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := parseRule(line)
		if err != nil {
			return nil, fmt.Errorf("tlang: line %d: %w", lineNo, err)
		}
		ex.rules = append(ex.rules, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tlang: %w", err)
	}
	if len(ex.rules) == 0 {
		return nil, fmt.Errorf("tlang: empty extraction script")
	}
	return ex, nil
}

func parseRule(line string) (rule, error) {
	switch {
	case strings.HasPrefix(line, "match "), strings.HasPrefix(line, "first "):
		kind := ruleMatch
		if strings.HasPrefix(line, "first ") {
			kind = ruleFirst
		}
		rest := strings.TrimSpace(line[len("match "):])
		re, after, err := parseRegex(rest)
		if err != nil {
			return rule{}, err
		}
		after = strings.TrimSpace(after)
		if !strings.HasPrefix(after, "->") {
			return rule{}, fmt.Errorf("expected '->' after pattern")
		}
		name, value, units, err := parseAssignment(strings.TrimSpace(after[2:]), true)
		if err != nil {
			return rule{}, err
		}
		return rule{kind: kind, re: re, name: name, value: value, units: units}, nil
	case strings.HasPrefix(line, "set "):
		name, value, units, err := parseAssignment(strings.TrimSpace(line[len("set "):]), false)
		if err != nil {
			return rule{}, err
		}
		return rule{kind: ruleSet, name: name, value: value, units: units}, nil
	case strings.HasPrefix(line, "stop "):
		re, after, err := parseRegex(strings.TrimSpace(line[len("stop "):]))
		if err != nil {
			return rule{}, err
		}
		if strings.TrimSpace(after) != "" {
			return rule{}, fmt.Errorf("trailing text after stop pattern")
		}
		return rule{kind: ruleStop, re: re}, nil
	default:
		return rule{}, fmt.Errorf("unknown statement %q", strings.Fields(line)[0])
	}
}

// parseRegex consumes a /.../ pattern, returning the compiled regexp
// and the remainder of the line. A backslash escapes a slash.
func parseRegex(s string) (*regexp.Regexp, string, error) {
	if !strings.HasPrefix(s, "/") {
		return nil, "", fmt.Errorf("expected /pattern/")
	}
	var pat strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		if c == '\\' && i+1 < len(s) && s[i+1] == '/' {
			pat.WriteByte('/')
			i += 2
			continue
		}
		if c == '/' {
			re, err := regexp.Compile(pat.String())
			if err != nil {
				return nil, "", fmt.Errorf("bad pattern: %w", err)
			}
			return re, s[i+1:], nil
		}
		pat.WriteByte(c)
		i++
	}
	return nil, "", fmt.Errorf("unterminated /pattern/")
}

// parseAssignment parses `name = value [units u]`. When captures is
// true, bare words may contain $n references; quoted strings are
// literal either way.
func parseAssignment(s string, captures bool) (name, value, units string, err error) {
	eq := strings.Index(s, "=")
	if eq < 0 {
		return "", "", "", fmt.Errorf("expected '=' in assignment")
	}
	name = strings.TrimSpace(s[:eq])
	if name == "" {
		return "", "", "", fmt.Errorf("empty attribute name")
	}
	rest := strings.TrimSpace(s[eq+1:])
	value, rest, err = parseToken(rest)
	if err != nil {
		return "", "", "", err
	}
	rest = strings.TrimSpace(rest)
	if rest != "" {
		if !strings.HasPrefix(rest, "units") {
			return "", "", "", fmt.Errorf("unexpected trailing %q", rest)
		}
		units, rest, err = parseToken(strings.TrimSpace(rest[len("units"):]))
		if err != nil {
			return "", "", "", err
		}
		if strings.TrimSpace(rest) != "" {
			return "", "", "", fmt.Errorf("unexpected trailing %q", rest)
		}
	}
	_ = captures
	return name, value, units, nil
}

// parseToken reads either a double-quoted string or a bare word.
func parseToken(s string) (string, string, error) {
	if s == "" {
		return "", "", fmt.Errorf("expected value")
	}
	if s[0] == '"' {
		end := strings.Index(s[1:], `"`)
		if end < 0 {
			return "", "", fmt.Errorf("unterminated string")
		}
		return s[1 : 1+end], s[end+2:], nil
	}
	fields := strings.SplitN(s, " ", 2)
	rest := ""
	if len(fields) == 2 {
		rest = fields[1]
	}
	return fields[0], rest, nil
}

// substitute expands $0..$9 capture references against a regexp match.
func substitute(tpl string, m []string) string {
	var b strings.Builder
	for i := 0; i < len(tpl); i++ {
		if tpl[i] == '$' && i+1 < len(tpl) && tpl[i+1] >= '0' && tpl[i+1] <= '9' {
			n := int(tpl[i+1] - '0')
			if n < len(m) {
				b.WriteString(m[n])
			}
			i++
			continue
		}
		b.WriteByte(tpl[i])
	}
	return b.String()
}

// Extract runs the script over r line by line and returns the emitted
// metadata triplets in encounter order.
func (e *Extractor) Extract(r io.Reader) ([]types.AVU, error) {
	// Reset one-shot state so an Extractor is reusable.
	rules := make([]rule, len(e.rules))
	copy(rules, e.rules)

	var out []types.AVU
	for _, ru := range rules {
		if ru.kind == ruleSet {
			out = append(out, types.AVU{Name: ru.name, Value: ru.value, Units: ru.units})
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
scan:
	for sc.Scan() {
		line := sc.Text()
		for i := range rules {
			ru := &rules[i]
			switch ru.kind {
			case ruleStop:
				if ru.re.MatchString(line) {
					break scan
				}
			case ruleMatch, ruleFirst:
				if ru.kind == ruleFirst && ru.fired {
					continue
				}
				m := ru.re.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				ru.fired = true
				avu := types.AVU{
					Name:  strings.TrimSpace(substitute(ru.name, m)),
					Value: strings.TrimSpace(substitute(ru.value, m)),
					Units: strings.TrimSpace(substitute(ru.units, m)),
				}
				if avu.Name != "" {
					out = append(out, avu)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tlang: extract: %w", err)
	}
	return out, nil
}

// Template is a compiled style sheet.
type Template struct {
	head, row, tail string
}

// ParseTemplate compiles a style sheet with head:/row:/tail: sections.
// Section bodies run to the next section keyword; leading and trailing
// blank lines are trimmed.
func ParseTemplate(src string) (*Template, error) {
	t := &Template{}
	sections := map[string]*string{"head": &t.head, "row": &t.row, "tail": &t.tail}
	var cur *string
	seen := false
	sc := bufio.NewScanner(strings.NewReader(src))
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		matched := false
		for key, dst := range sections {
			if strings.HasPrefix(trimmed, key+":") {
				cur = dst
				body := strings.TrimPrefix(trimmed, key+":")
				if strings.TrimSpace(body) != "" {
					*cur = strings.TrimSpace(body)
				}
				matched = true
				seen = true
				break
			}
		}
		if matched {
			continue
		}
		if cur == nil {
			if trimmed == "" || strings.HasPrefix(trimmed, "#") {
				continue
			}
			return nil, fmt.Errorf("tlang: template text outside a section: %q", trimmed)
		}
		if *cur == "" {
			*cur = line
		} else {
			*cur += "\n" + line
		}
	}
	if !seen {
		return nil, fmt.Errorf("tlang: template has no head:/row:/tail: sections")
	}
	return t, nil
}

// Render writes the result through the style sheet: head once, the row
// section per tuple with $n positional and ${column} named values, and
// tail once.
func (t *Template) Render(w io.Writer, res *sqlengine.Result) error {
	if t.head != "" {
		if _, err := io.WriteString(w, t.head+"\n"); err != nil {
			return err
		}
	}
	for _, row := range res.Rows {
		line := t.row
		// named first so ${name} is not clobbered by positional passes
		for ci, col := range res.Columns {
			if ci < len(row) {
				line = strings.ReplaceAll(line, "${"+col+"}", row[ci].Text())
			}
		}
		for ci := len(row); ci >= 1; ci-- {
			line = strings.ReplaceAll(line, "$"+strconv.Itoa(ci), row[ci-1].Text())
		}
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
	}
	if t.tail != "" {
		if _, err := io.WriteString(w, t.tail+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// Builtin template names (paper §5, registered SQL objects).
const (
	TemplateHTMLRel  = "HTMLREL"
	TemplateHTMLNest = "HTMLNEST"
	TemplateXMLRel   = "XMLREL"
)

// IsBuiltin reports whether name names a built-in template.
func IsBuiltin(name string) bool {
	switch strings.ToUpper(name) {
	case TemplateHTMLRel, TemplateHTMLNest, TemplateXMLRel:
		return true
	}
	return false
}

// RenderBuiltin renders res with one of the built-in templates:
// HTMLREL prints a relational HTML table, HTMLNEST a nested HTML table
// grouped by the first column, and XMLREL XML with a simple DTD.
func RenderBuiltin(name string, w io.Writer, res *sqlengine.Result) error {
	switch strings.ToUpper(name) {
	case TemplateHTMLRel:
		return renderHTMLRel(w, res)
	case TemplateHTMLNest:
		return renderHTMLNest(w, res)
	case TemplateXMLRel:
		return renderXMLRel(w, res)
	default:
		return fmt.Errorf("tlang: unknown built-in template %q", name)
	}
}

func renderHTMLRel(w io.Writer, res *sqlengine.Result) error {
	var b strings.Builder
	b.WriteString("<table border=\"1\">\n<tr>")
	for _, c := range res.Columns {
		b.WriteString("<th>" + html.EscapeString(c) + "</th>")
	}
	b.WriteString("</tr>\n")
	for _, row := range res.Rows {
		b.WriteString("<tr>")
		for _, v := range row {
			b.WriteString("<td>" + html.EscapeString(v.Text()) + "</td>")
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func renderHTMLNest(w io.Writer, res *sqlengine.Result) error {
	var b strings.Builder
	b.WriteString("<table border=\"1\">\n")
	// Group consecutive rows by the first column's value and nest the
	// remaining columns in an inner table.
	i := 0
	for i < len(res.Rows) {
		key := ""
		if len(res.Rows[i]) > 0 {
			key = res.Rows[i][0].Text()
		}
		b.WriteString("<tr><td>" + html.EscapeString(key) + "</td><td><table>\n")
		for i < len(res.Rows) {
			row := res.Rows[i]
			k := ""
			if len(row) > 0 {
				k = row[0].Text()
			}
			if k != key {
				break
			}
			b.WriteString("<tr>")
			for ci := 1; ci < len(row); ci++ {
				b.WriteString("<td>" + html.EscapeString(row[ci].Text()) + "</td>")
			}
			b.WriteString("</tr>\n")
			i++
		}
		b.WriteString("</table></td></tr>\n")
	}
	b.WriteString("</table>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func renderXMLRel(w io.Writer, res *sqlengine.Result) error {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0"?>` + "\n")
	b.WriteString("<!DOCTYPE result [\n" +
		"  <!ELEMENT result (row*)>\n" +
		"  <!ELEMENT row (col*)>\n" +
		"  <!ELEMENT col (#PCDATA)>\n" +
		"  <!ATTLIST col name CDATA #REQUIRED>\n]>\n")
	b.WriteString("<result>\n")
	for _, row := range res.Rows {
		b.WriteString("  <row>")
		for ci, v := range row {
			name := ""
			if ci < len(res.Columns) {
				name = res.Columns[ci]
			}
			b.WriteString(`<col name="` + xmlEscape(name) + `">` + xmlEscape(v.Text()) + "</col>")
		}
		b.WriteString("</row>\n")
	}
	b.WriteString("</result>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

var xmlReplacer = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")

func xmlEscape(s string) string { return xmlReplacer.Replace(s) }
