package tlang

import (
	"strings"
	"testing"
)

// FuzzParseExtractor ensures extraction scripts never panic the
// compiler, and compiled scripts never panic on arbitrary input.
func FuzzParseExtractor(f *testing.F) {
	f.Add("match /x(\\d+)/ -> n = $1", "x42\n")
	f.Add("first /a/ -> a = $0\nstop /end/", "a\nend\na\n")
	f.Add("set k = \"v\" units \"u\"", "")
	f.Add("match /(/ -> broken = $1", "input")
	f.Fuzz(func(t *testing.T, script, input string) {
		ex, err := ParseExtractor(script)
		if err != nil {
			return
		}
		ex.Extract(strings.NewReader(input)) // must not panic
	})
}

// FuzzParseTemplate ensures style sheets never panic.
func FuzzParseTemplate(f *testing.F) {
	f.Add("head: h\nrow: $1 ${col}\ntail: t")
	f.Add("row:\nmulti\nline")
	f.Add("no sections")
	f.Fuzz(func(t *testing.T, src string) {
		ParseTemplate(src) // must not panic
	})
}
