package shard

import "sync"

// DefaultRepLogCap bounds the in-memory replication window per shard.
// A follower further behind than the window catches up from a full
// snapshot instead of the incremental stream.
const DefaultRepLogCap = 4096

// RepLog is the replication log of one shard: a bounded ring of
// journal lines, sequence-numbered from 1. The journal's observer hook
// feeds it, so the same append-only stream that makes the catalog
// durable also replicates it.
type RepLog struct {
	mu      sync.Mutex
	entries [][]byte
	start   uint64 // sequence of entries[0]; 1 when nothing trimmed
	max     int
}

// NewRepLog returns a log retaining at most max lines.
func NewRepLog(max int) *RepLog {
	if max < 1 {
		max = DefaultRepLogCap
	}
	return &RepLog{start: 1, max: max}
}

// SetBase declares that sequences 1..base precede this log: a reader
// positioned at or before base is behind the retained window and is
// sent a snapshot. A persistent store sets a fresh boot-unique base at
// every open — the in-memory log cannot represent history from before
// the process started (snapshotted state, or a previous incarnation a
// follower's applied sequence still refers to), so pretending the log
// starts at 1 would serve such followers "caught up" with none of that
// state. Must be called before the first Append.
func (l *RepLog) SetBase(base uint64) {
	l.mu.Lock()
	if len(l.entries) == 0 && base+1 > l.start {
		l.start = base + 1
	}
	l.mu.Unlock()
}

// Append records one journal line (copied).
func (l *RepLog) Append(line []byte) {
	cp := append([]byte(nil), line...)
	l.mu.Lock()
	l.entries = append(l.entries, cp)
	if len(l.entries) > l.max {
		drop := len(l.entries) - l.max
		l.entries = append([][]byte(nil), l.entries[drop:]...)
		l.start += uint64(drop)
	}
	l.mu.Unlock()
}

// Head returns the sequence number of the newest line (0 when the log
// has never held one).
func (l *RepLog) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.start + uint64(len(l.entries)) - 1
}

// Since returns the lines after sequence `after`, and whether the log
// still covers that point. ok == false means the follower is behind
// the retained window and needs a snapshot.
func (l *RepLog) Since(after uint64) ([][]byte, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after+1 < l.start {
		return nil, false
	}
	head := l.start + uint64(len(l.entries)) - 1
	if after >= head {
		return nil, true
	}
	from := int(after + 1 - l.start)
	out := make([][]byte, head-after)
	copy(out, l.entries[from:])
	return out, true
}
