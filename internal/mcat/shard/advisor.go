// The rebalance advisor: joins observed key heat, per-shard catalog
// size and ring ownership into a dry-run migration plan. It never moves
// anything — the plan is the designed input for a future online-
// migration layer, and until then an operator reads it via `srb heat`,
// the admin /heat endpoint or the MySRB heat page to judge whether the
// partitioning is still good.
package shard

import (
	"fmt"
	"time"

	"gosrb/internal/obs"
)

// Advisor tuning: a plan proposes moves only while the hottest shard
// carries more than adviseImbalance times the mean shard heat, and
// never more than adviseMaxMoves prefixes per plan (each move is a
// whole depth-2 subtree — coarse, deliberately conservative).
const (
	adviseImbalance = 1.25
	adviseMaxMoves  = 3
)

// PlanMove is one proposed migration: a depth-2 routing prefix, where
// it lives, where it should go, and what the move would carry.
type PlanMove struct {
	Key      string  `json:"key"`      // depth-2 prefix ("/zone/project")
	From     int     `json:"from"`     // current home shard
	To       int     `json:"to"`       // proposed home shard
	Score    float64 `json:"score"`    // decayed heat score of the prefix
	EstKeys  int     `json:"estKeys"`  // catalog objects under the prefix
	EstBytes int64   `json:"estBytes"` // observed read volume of the prefix
}

// ShardHeat is one shard's standing in the plan's load join.
type ShardHeat struct {
	Shard   int     `json:"shard"`
	Score   float64 `json:"score"`   // summed heat of tracked keys homed here
	HotKeys int     `json:"hotKeys"` // tracked hot keys homed here
	Objects int     `json:"objects"` // catalog objects (key-count balance)
}

// Plan is one advisor run: the per-shard heat join, the proposed moves
// and the imbalance before and after (max shard heat over mean; 1.0 is
// perfectly even). A plan with no moves means the partitioning held.
type Plan struct {
	GeneratedAt time.Time   `json:"generatedAt"`
	Shards      []ShardHeat `json:"shards"`
	Moves       []PlanMove  `json:"moves,omitempty"`
	Imbalance   float64     `json:"imbalance"`
	Projected   float64     `json:"projected"`
	Note        string      `json:"note,omitempty"`
}

// Advise builds a dry-run rebalance plan from the hot-key table rows
// (obs.Registry.HeatKeys().Snapshot()) and stores it as the router's
// last plan. The repair engine drives it periodically; serving paths
// reuse the stored plan via LastPlan.
func (r *Router) Advise(rows []obs.HeatStat, now time.Time) Plan {
	p := Plan{GeneratedAt: now, Shards: make([]ShardHeat, r.n)}
	for i := range p.Shards {
		p.Shards[i] = ShardHeat{Shard: i, Objects: r.shards[i].cat.Stats().Objects}
	}
	// Join heat onto ring ownership. Only rows that are well-formed
	// routing prefixes participate; spine rows (depth < 2 scopes fed by
	// broad queries) are broadcast state and cannot move.
	type hotKey struct {
		row  obs.HeatStat
		home int
	}
	var keys []hotKey
	for _, row := range rows {
		if Spine(row.Key) || KeyOf(row.Key) != row.Key {
			continue
		}
		home := r.m.Shard(row.Key)
		p.Shards[home].Score += row.Score
		p.Shards[home].HotKeys++
		keys = append(keys, hotKey{row: row, home: home})
	}
	p.Imbalance = imbalanceOf(p.Shards)
	p.Projected = p.Imbalance
	if r.n < 2 {
		p.Note = "single shard: nothing to rebalance"
		r.storePlan(p)
		return p
	}
	if p.Imbalance <= adviseImbalance {
		p.Note = fmt.Sprintf("heat within %.2fx of mean: partitioning holds", adviseImbalance)
		r.storePlan(p)
		return p
	}
	// Greedy: repeatedly move the hottest key off the hottest shard to
	// the coolest, stopping when balance is restored, moves run out, or
	// a move stops helping.
	score := make([]float64, r.n)
	for i, sh := range p.Shards {
		score[i] = sh.Score
	}
	moved := make(map[string]bool)
	for len(p.Moves) < adviseMaxMoves {
		hot, cool := extremes(score)
		if score[hot] <= 0 || imbalance(score) <= adviseImbalance {
			break
		}
		best := -1
		for i, k := range keys {
			if k.home != hot || moved[k.row.Key] {
				continue
			}
			if best < 0 || k.row.Score > keys[best].row.Score {
				best = i
			}
		}
		if best < 0 {
			break
		}
		k := keys[best]
		// A move that would just flip the imbalance to the target shard
		// is churn, not balance.
		if score[cool]+k.row.Score >= score[hot] {
			break
		}
		moved[k.row.Key] = true
		score[hot] -= k.row.Score
		score[cool] += k.row.Score
		p.Moves = append(p.Moves, PlanMove{
			Key:      k.row.Key,
			From:     hot,
			To:       cool,
			Score:    k.row.Score,
			EstKeys:  len(r.shards[hot].cat.SubtreeObjects(k.row.Key)),
			EstBytes: k.row.Bytes,
		})
	}
	p.Projected = imbalance(score)
	if len(p.Moves) == 0 {
		p.Note = "imbalanced but no movable hot prefix on the hottest shard"
	} else {
		p.Note = "dry run: no data was moved"
	}
	r.storePlan(p)
	return p
}

// LastPlan returns the newest advisor plan, or nil before the first
// Advise run.
func (r *Router) LastPlan() *Plan {
	r.planMu.Lock()
	defer r.planMu.Unlock()
	return r.lastPlan
}

func (r *Router) storePlan(p Plan) {
	r.planMu.Lock()
	r.lastPlan = &p
	r.planMu.Unlock()
}

// imbalanceOf is imbalance over the joined shard rows.
func imbalanceOf(shards []ShardHeat) float64 {
	score := make([]float64, len(shards))
	for i, sh := range shards {
		score[i] = sh.Score
	}
	return imbalance(score)
}

// imbalance is max/mean shard heat: 1.0 means perfectly even, 0 means
// no heat observed at all.
func imbalance(score []float64) float64 {
	var sum, max float64
	for _, s := range score {
		sum += s
		if s > max {
			max = s
		}
	}
	if sum == 0 || len(score) == 0 {
		return 0
	}
	return max / (sum / float64(len(score)))
}

// extremes returns the hottest and coolest shard indices.
func extremes(score []float64) (hot, cool int) {
	for i, s := range score {
		if s > score[hot] {
			hot = i
		}
		if s < score[cool] {
			cool = i
		}
	}
	return hot, cool
}
