package shard

import (
	"fmt"
	"os"
	"sort"
	"time"

	"gosrb/internal/mcat"
	"gosrb/internal/types"
)

// OpenOptions configures a persistent sharded catalog store.
type OpenOptions struct {
	// Shards is the desired partition count (>= 1).
	Shards int
	// CatalogPath/JournalPath are the snapshot and append-log paths.
	// With one shard they are used verbatim (the monolithic layout);
	// with N they expand to <path>.shard<i>, and the shard map is
	// journaled next to the catalog as <CatalogPath>.shardmap.
	// Empty paths mean a memory-only catalog, as before.
	CatalogPath string
	JournalPath string
	// Admin/Domain seed fresh catalogs.
	Admin  string
	Domain string
	// Logf receives boot/replication notices (default: discard).
	Logf func(format string, args ...any)
}

// Store is the persistence side of a sharded catalog: per-shard
// snapshot + journal files plus the journaled shard map.
type Store struct {
	r        *Router
	opt      OpenOptions
	journals []*mcat.Journal
	// ReplaySkipped counts corrupt or truncated journal lines skipped
	// across all shards during boot replay (surfaced as a metric).
	ReplaySkipped int
}

func (o OpenOptions) catPath(n, i int) string {
	if n == 1 {
		return o.CatalogPath
	}
	return fmt.Sprintf("%s.shard%d", o.CatalogPath, i)
}

func (o OpenOptions) jnlPath(n, i int) string {
	if n == 1 {
		return o.JournalPath
	}
	return fmt.Sprintf("%s.shard%d", o.JournalPath, i)
}

func (o OpenOptions) mapPath() string { return o.CatalogPath + ".shardmap" }

// Open loads (or creates) a sharded catalog store. With Shards == 1
// and no prior shard map this is exactly the monolithic boot sequence:
// load the snapshot, replay the journal and its rotation tail, append
// to the same journal file. When the configured shard count differs
// from the journaled map, the store rebalances: it loads the old
// layout, redistributes every entry by the new map, snapshots the new
// layout and retires the old files.
func Open(opt OpenOptions) (*Store, error) {
	if opt.Shards < 1 {
		opt.Shards = 1
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	prev := opt.Shards
	if opt.CatalogPath != "" {
		m, err := LoadMapFile(opt.mapPath())
		if err != nil {
			return nil, err
		}
		switch {
		case m != nil:
			prev = m.Shards
		case opt.Shards > 1 && (exists(opt.CatalogPath) || exists(opt.JournalPath)):
			// No shard map but monolithic files on disk: a legacy
			// single-shard catalog being split for the first time.
			prev = 1
		}
	}

	if prev != opt.Shards {
		opt.Logf("mcat shard count changed %d -> %d; rebalancing", prev, opt.Shards)
		old, err := load(opt, prev)
		if err != nil {
			return nil, err
		}
		nw := NewRouter(opt.Shards, opt.Admin, opt.Domain)
		nw.SetLogf(opt.Logf)
		if err := reshard(old.r, nw); err != nil {
			return nil, types.E("reshard", opt.CatalogPath, err)
		}
		st := &Store{r: nw, opt: opt, ReplaySkipped: old.ReplaySkipped}
		if opt.CatalogPath != "" {
			// Persist the new layout before retiring the old one.
			for i := 0; i < nw.n; i++ {
				if err := nw.shards[i].cat.SaveFile(opt.catPath(opt.Shards, i)); err != nil {
					return nil, err
				}
				os.Remove(opt.jnlPath(opt.Shards, i))
				os.Remove(opt.jnlPath(opt.Shards, i) + ".new")
			}
			if err := st.saveMap(); err != nil {
				return nil, err
			}
			retire(opt, prev, opt.Shards)
		}
		if opt.JournalPath != "" {
			if err := st.openJournals(); err != nil {
				return nil, err
			}
		} else {
			nw.EnableMemoryJournals()
		}
		st.setBootEpoch()
		return st, nil
	}

	st, err := load(opt, opt.Shards)
	if err != nil {
		return nil, err
	}
	if opt.CatalogPath != "" && opt.Shards > 1 {
		if err := st.saveMap(); err != nil {
			return nil, err
		}
	}
	if opt.JournalPath != "" {
		if err := st.openJournals(); err != nil {
			return nil, err
		}
	} else {
		st.r.EnableMemoryJournals()
	}
	st.setBootEpoch()
	return st, nil
}

// setBootEpoch bases every shard's replication log on a boot-unique,
// strictly increasing sequence. The in-memory log cannot serve history
// from before this boot (snapshotted state, or a previous incarnation
// a follower's applied sequence still points into), so a follower
// positioned at or below the base must take the snapshot path rather
// than be told "caught up" with none of that state.
func (st *Store) setBootEpoch() {
	st.r.SetRepLogBase(uint64(time.Now().UnixNano()))
}

// load boots an n-shard router from its files: snapshot, journal,
// rotation tail. Corrupt journal lines are skipped and counted, not
// silently dropped and not fatal.
func load(opt OpenOptions, n int) (*Store, error) {
	r := NewRouter(n, opt.Admin, opt.Domain)
	r.SetLogf(opt.Logf)
	st := &Store{r: r, opt: opt}
	for i := 0; i < n; i++ {
		c := r.shards[i].cat
		if opt.CatalogPath != "" {
			if err := c.LoadFile(opt.catPath(n, i)); err == nil {
				opt.Logf("catalog shard %d/%d loaded from %s", i, n, opt.catPath(n, i))
			} else if !os.IsNotExist(underlying(err)) {
				opt.Logf("catalog shard %d/%d: starting fresh (%v)", i, n, err)
			}
		}
		if opt.JournalPath == "" {
			continue
		}
		jp := opt.jnlPath(n, i)
		rs, err := c.ReplayFileCounted(jp)
		if err != nil {
			return nil, err
		}
		// A crash between journal swap and rename leaves a .new tail.
		rs2, err := c.ReplayFileCounted(jp + ".new")
		if err != nil {
			return nil, err
		}
		os.Remove(jp + ".new")
		applied, skipped := rs.Applied+rs2.Applied, rs.Corrupt+rs2.Corrupt
		st.ReplaySkipped += skipped
		if applied > 0 || skipped > 0 {
			opt.Logf("shard %d/%d: replayed %d journal entries, skipped %d corrupt lines", i, n, applied, skipped)
		}
	}
	return st, nil
}

func exists(path string) bool {
	if path == "" {
		return false
	}
	_, err := os.Stat(path)
	return err == nil
}

func underlying(err error) error {
	for {
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return err
		}
		err = u.Unwrap()
	}
}

// openJournals attaches (creating or appending) each shard's journal.
func (st *Store) openJournals() error {
	n := st.r.n
	st.journals = make([]*mcat.Journal, n)
	for i := 0; i < n; i++ {
		j, err := mcat.OpenJournalFile(st.opt.jnlPath(n, i))
		if err != nil {
			return err
		}
		st.journals[i] = j
		st.r.AttachJournal(i, j)
	}
	return nil
}

func (st *Store) saveMap() error {
	return st.r.m.SaveFile(st.opt.mapPath())
}

// retire removes files of the previous layout that the new one does
// not reuse.
func retire(opt OpenOptions, prev, cur int) {
	if prev == cur {
		return
	}
	for i := 0; i < prev; i++ {
		os.Remove(opt.catPath(prev, i))
		os.Remove(opt.jnlPath(prev, i))
		os.Remove(opt.jnlPath(prev, i) + ".new")
	}
	if cur == 1 {
		os.Remove(opt.mapPath())
	}
}

// Router returns the catalog router behind the store.
func (st *Store) Router() *Router { return st.r }

// Snapshot saves every shard and rotates its journal: the fresh
// journal swaps in before the save so concurrent mutations land in the
// new file; replaying an entry captured by both is harmless, exactly
// as in the monolithic snapshot path.
func (st *Store) Snapshot() error {
	if st.opt.CatalogPath == "" {
		return nil
	}
	n := st.r.n
	var firstErr error
	for i := 0; i < n; i++ {
		cp, jp := st.opt.catPath(n, i), st.opt.jnlPath(n, i)
		var old *mcat.Journal
		if st.journals != nil {
			fresh, err := mcat.OpenJournalFile(jp + ".new")
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			old = st.journals[i]
			st.journals[i] = fresh
			st.r.AttachJournal(i, fresh)
		}
		if err := st.r.shards[i].cat.SaveFile(cp); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if old != nil {
			old.Close()
			if err := os.Rename(jp+".new", jp); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Close syncs and closes the journals.
func (st *Store) Close() error {
	var firstErr error
	for _, j := range st.journals {
		if j == nil {
			continue
		}
		if err := j.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// reshard redistributes every catalog entry from the old router's
// layout into the new one. Spine state broadcasts; everything else
// follows the new map.
func reshard(old, nw *Router) error {
	src0 := old.shards[0].cat

	// Accounts, groups, resources: identical on every shard.
	for _, u := range src0.Users() {
		if err := nw.each(func(c *mcat.Catalog) error { return tolerateExists(c.AddUser(u)) }); err != nil {
			return err
		}
	}
	for _, g := range src0.Groups() {
		if err := nw.each(func(c *mcat.Catalog) error { return tolerateExists(c.AddGroup(g.Name)) }); err != nil {
			return err
		}
		for _, m := range g.Members {
			mm := m
			gg := g.Name
			if err := nw.each(func(c *mcat.Catalog) error { return c.AddToGroup(gg, mm) }); err != nil {
				return err
			}
		}
	}
	for _, res := range src0.Resources() {
		rr := res
		if err := nw.each(func(c *mcat.Catalog) error { return tolerateExists(c.AddResource(rr)) }); err != nil {
			return err
		}
		for _, e := range src0.ResourceACLList(res.Name) {
			ee := e
			name := res.Name
			if err := nw.each(func(c *mcat.Catalog) error { return c.SetResourceACL(name, ee.Grantee, ee.Level) }); err != nil {
				return err
			}
		}
	}

	// Collections, shallow-first; per-path state travels with each.
	// File-metadata attachments wait until objects exist.
	type pendingFM struct{ path, metaFile string }
	var fms []pendingFM
	colls := append([]string{"/"}, old.SubColls("/")...)
	sort.Strings(colls)
	for _, p := range colls {
		if p == "/" {
			stt := old.shards[old.homeIdx(p)].cat.ExportPathState(p)
			aclPart := mcat.PathState{ACL: stt.ACL, Structural: stt.Structural}
			if err := nw.each(func(c *mcat.Catalog) error { return c.ImportPathState("/", aclPart) }); err != nil {
				return err
			}
			metaPart := mcat.PathState{Meta: stt.Meta, Annots: stt.Annots}
			if err := nw.home(p).ImportPathState(p, metaPart); err != nil {
				return err
			}
			for _, fm := range stt.FileMeta {
				fms = append(fms, pendingFM{path: p, metaFile: fm})
			}
			continue
		}
		col, err := old.GetColl(p)
		if err != nil {
			return err
		}
		stt := old.shards[old.homeIdx(p)].cat.ExportPathState(p)
		if nw.n > 1 && Spine(p) {
			pp := p
			cc := col
			if err := nw.each(func(c *mcat.Catalog) error { return tolerateExists(c.AdoptColl(cc)) }); err != nil {
				return err
			}
			// ACLs and structural rules broadcast; descriptive
			// metadata and annotations live on the home shard.
			aclPart := mcat.PathState{ACL: stt.ACL, Structural: stt.Structural}
			if err := nw.each(func(c *mcat.Catalog) error { return c.ImportPathState(pp, aclPart) }); err != nil {
				return err
			}
			metaPart := mcat.PathState{Meta: stt.Meta, Annots: stt.Annots}
			if err := nw.home(p).ImportPathState(p, metaPart); err != nil {
				return err
			}
		} else {
			home := nw.shards[nw.homeIdx(p)].cat
			if err := home.AdoptColl(col); err != nil {
				return err
			}
			part := stt
			part.FileMeta = nil
			if err := home.ImportPathState(p, part); err != nil {
				return err
			}
		}
		for _, fm := range stt.FileMeta {
			fms = append(fms, pendingFM{path: p, metaFile: fm})
		}
	}

	// Objects, then their state, then deferred file-meta attachments.
	objs := old.SubtreeObjects("/")
	for _, p := range objs {
		o, err := old.GetObject(p)
		if err != nil {
			return err
		}
		if err := nw.shards[nw.homeIdx(p)].cat.AdoptObject(&o); err != nil {
			return err
		}
	}
	for _, p := range objs {
		stt := old.shards[old.homeIdx(p)].cat.ExportPathState(p)
		for _, fm := range stt.FileMeta {
			fms = append(fms, pendingFM{path: p, metaFile: fm})
		}
		stt.FileMeta = nil
		stt.Structural = nil
		if err := nw.shards[nw.homeIdx(p)].cat.ImportPathState(p, stt); err != nil {
			return err
		}
	}
	for _, fm := range fms {
		if fm.path == "" {
			continue
		}
		if err := nw.AttachFileMeta(fm.path, fm.metaFile); err != nil {
			// An attachment that would cross shards cannot be
			// represented; surface it rather than dropping silently.
			return err
		}
	}

	// The deferred-repair queue rides on shard 0.
	for _, t := range src0.PendingRepairs() {
		nw.shards[0].cat.EnqueueRepair(t)
	}
	return nil
}
