package shard

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"gosrb/internal/types"
)

// Role is a shard slot's replication role on this server.
type Role string

const (
	// Leader owns the shard: mutations apply here and feed the
	// replication log.
	Leader Role = "leader"
	// Follower mirrors a leader on another server by replaying its
	// journal stream; local mutations are rejected.
	Follower Role = "follower"
)

// DefaultPromoteAfter is the number of consecutive failed pulls after
// which a follower promotes itself to leader (failover).
const DefaultPromoteAfter = 3

// PullResult is one replication fetch: either the journal lines after
// the follower's applied sequence, or — when the leader's log no
// longer covers that point — a full snapshot. Seq is the leader
// sequence the follower has seen once the result is applied.
type PullResult struct {
	Entries  [][]byte
	Snapshot []byte
	Seq      uint64
}

// PullFunc fetches the replication stream of one shard from a peer.
type PullFunc func(peer string, shardIdx int, afterSeq uint64) (PullResult, error)

// SetFollower demotes shard i to follow leaderPeer. Reads keep
// serving local (possibly stale) data; mutations are rejected naming
// the leader; SyncOnce keeps the shard converging.
func (r *Router) SetFollower(i int, leaderPeer string) {
	r.mu.Lock()
	st := r.shards[i]
	st.role, st.leader, st.stale = Follower, leaderPeer, true
	st.applied, st.pullFails = 0, 0
	st.seenHead, st.lastSync = 0, time.Time{}
	r.mu.Unlock()
	r.refreshReplag(i, time.Now())
}

// Promote makes shard i a leader (failover or operator action).
func (r *Router) Promote(i int) {
	r.mu.Lock()
	st := r.shards[i]
	was := st.role
	st.role, st.leader, st.stale, st.pullFails = Leader, "", false, 0
	r.mu.Unlock()
	r.refreshReplag(i, time.Now())
	if was == Follower {
		if r.promotions != nil {
			r.promotions.Inc()
		}
		r.logf("mcat shard %d promoted to leader", i)
	}
}

// Role returns shard i's role and, for followers, its leader.
func (r *Router) Role(i int) (Role, string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.shards[i].role, r.shards[i].leader
}

// SetPuller installs the transport used to fetch the replication
// stream and the failover threshold (<=0 selects DefaultPromoteAfter).
func (r *Router) SetPuller(pull PullFunc, promoteAfter int) {
	if promoteAfter <= 0 {
		promoteAfter = DefaultPromoteAfter
	}
	r.mu.Lock()
	r.puller = pull
	r.promoteAfter = promoteAfter
	r.mu.Unlock()
}

// Pull serves the leader side of replication: the journal lines after
// afterSeq, or a consistent snapshot when the log window has moved on.
// Each pull also acks the follower's position, which feeds the leader's
// replication-lag gauges.
func (r *Router) Pull(i int, afterSeq uint64) (PullResult, error) {
	if i < 0 || i >= r.n {
		return PullResult{}, types.E("shardpull", fmt.Sprint(i), types.ErrInvalid)
	}
	st := r.shards[i]
	r.mu.Lock()
	if afterSeq > st.ackSeq {
		st.ackSeq = afterSeq
	}
	st.lastPull = time.Now()
	r.mu.Unlock()
	r.refreshReplag(i, time.Now())
	if lines, ok := st.rl.Since(afterSeq); ok {
		if r.pullLines != nil {
			r.pullLines.Add(int64(len(lines)))
		}
		return PullResult{Entries: lines, Seq: afterSeq + uint64(len(lines))}, nil
	}
	// The follower fell off the bounded log tail: it catches up from a
	// snapshot instead. Count and warn — repeated fallbacks mean the log
	// window is too small for the sync cadence (tail pressure).
	if r.replogFallback != nil {
		r.replogFallback.Inc()
	}
	r.logf("mcat shard %d: follower at seq %d fell off the replication log tail (head %d); serving full snapshot",
		i, afterSeq, st.rl.Head())
	// Snapshot path. The journal appends under the catalog's write
	// lock and Save holds the read lock, so retry until no line lands
	// between the sequence reads — then the snapshot is exactly seq.
	for attempt := 0; attempt < 5; attempt++ {
		seq := st.rl.Head()
		var buf bytes.Buffer
		if err := st.cat.Save(&buf); err != nil {
			return PullResult{}, err
		}
		if st.rl.Head() == seq {
			return PullResult{Snapshot: buf.Bytes(), Seq: seq}, nil
		}
	}
	return PullResult{}, types.E("shardpull", fmt.Sprint(i), fmt.Errorf("snapshot kept racing the journal: %w", types.ErrTimeout))
}

// SyncOnce pulls every follower shard up to date. It is explicit — the
// daemon drives it from a repair-engine job, tests call it directly —
// so failover behavior is deterministic. A follower whose pulls fail
// promoteAfter times in a row promotes itself to leader.
func (r *Router) SyncOnce() error {
	r.mu.RLock()
	pull := r.puller
	promoteAfter := r.promoteAfter
	r.mu.RUnlock()
	if promoteAfter <= 0 {
		promoteAfter = DefaultPromoteAfter
	}
	var firstErr error
	for i := range r.shards {
		r.mu.RLock()
		st := r.shards[i]
		role, leader, applied := st.role, st.leader, st.applied
		r.mu.RUnlock()
		if role != Follower {
			continue
		}
		if pull == nil {
			return types.E("shardsync", fmt.Sprint(i), errors.New("no replication transport installed"))
		}
		res, err := pull(leader, i, applied)
		if err != nil {
			if r.pullFailed != nil {
				r.pullFailed.Inc()
			}
			r.mu.Lock()
			st.pullFails++
			st.stale = true
			fails := st.pullFails
			r.mu.Unlock()
			r.logf("mcat shard %d pull from %q failed (%d/%d): %v", i, leader, fails, promoteAfter, err)
			r.refreshReplag(i, time.Now())
			if fails >= promoteAfter {
				r.Promote(i)
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := r.applyPull(i, res); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if r.pullOK != nil {
			r.pullOK.Inc()
		}
	}
	return firstErr
}

// applyPull folds one replication fetch into follower shard i.
func (r *Router) applyPull(i int, res PullResult) error {
	st := r.shards[i]
	if res.Snapshot != nil {
		if err := st.cat.Load(bytes.NewReader(res.Snapshot)); err != nil {
			return err
		}
	} else {
		for _, line := range res.Entries {
			if _, err := st.cat.ApplyEntry(line); err != nil {
				return err
			}
		}
	}
	r.mu.Lock()
	st.applied = res.Seq
	st.seenHead = res.Seq
	st.stale = false
	st.pullFails = 0
	st.lastSync = time.Now()
	r.mu.Unlock()
	r.refreshReplag(i, time.Now())
	return nil
}

// replagOf computes shard i's replication lag at time now. Callers must
// hold r.mu (read or write). A follower reports entries it knows it has
// not applied and the seconds since its last successful sync; a leader
// reports how far the last puller's ack trails its journal head. Slots
// that never replicated (no sync, no puller) report zero so a
// single-server deployment stays quiet.
func (r *Router) replagOf(st *state, now time.Time) (entries uint64, seconds float64) {
	switch st.role {
	case Follower:
		if st.seenHead > st.applied {
			entries = st.seenHead - st.applied
		}
		if !st.lastSync.IsZero() {
			if d := now.Sub(st.lastSync); d > 0 {
				seconds = d.Seconds()
			}
		}
	default:
		if st.lastPull.IsZero() {
			return 0, 0
		}
		if head := st.rl.Head(); head > st.ackSeq {
			entries = head - st.ackSeq
		}
	}
	return entries, seconds
}

// refreshReplag recomputes shard i's replication-lag gauges.
func (r *Router) refreshReplag(i int, now time.Time) {
	if r.replagEntries == nil {
		return
	}
	r.mu.RLock()
	entries, seconds := r.replagOf(r.shards[i], now)
	r.mu.RUnlock()
	r.replagEntries[i].Set(int64(entries))
	r.replagSeconds[i].Set(int64(seconds))
}

// RefreshReplag recomputes every shard's replication-lag gauges at time
// now. The daemons call it from the shard-sync job between pulls so the
// lag gauges keep climbing while a leader is unreachable; tests call it
// with explicit times for determinism.
func (r *Router) RefreshReplag(now time.Time) {
	for i := range r.shards {
		r.refreshReplag(i, now)
	}
}

// Status is one shard's replication and size snapshot (the shard-status
// wire op and the /shards page render it).
type Status struct {
	Shard       int       `json:"shard"`
	Role        string    `json:"role"`
	Leader      string    `json:"leader,omitempty"`
	Stale       bool      `json:"stale,omitempty"`
	Applied     uint64    `json:"applied"`
	Head        uint64    `json:"head"`
	PullFails   int       `json:"pullFails,omitempty"`
	Objects     int       `json:"objects"`
	Collections int       `json:"collections"`
	MetaEntries int       `json:"metaEntries"`
	LastSync    time.Time `json:"lastSync,omitempty"`
	// Replication lag at status time: journal entries the replica side
	// has not acked, and seconds since the follower last synced.
	ReplagEntries uint64  `json:"replagEntries,omitempty"`
	ReplagSeconds float64 `json:"replagSeconds,omitempty"`
}

// Statuses reports every shard slot.
func (r *Router) Statuses() []Status {
	now := time.Now()
	out := make([]Status, r.n)
	for i, st := range r.shards {
		cs := st.cat.Stats()
		r.mu.RLock()
		entries, seconds := r.replagOf(st, now)
		out[i] = Status{
			Shard:         i,
			Role:          string(st.role),
			Leader:        st.leader,
			Stale:         st.stale,
			Applied:       st.applied,
			Head:          st.rl.Head(),
			PullFails:     st.pullFails,
			Objects:       cs.Objects,
			Collections:   cs.Collections,
			MetaEntries:   cs.MetaEntries,
			LastSync:      st.lastSync,
			ReplagEntries: entries,
			ReplagSeconds: seconds,
		}
		r.mu.RUnlock()
		if r.replagEntries != nil {
			r.replagEntries[i].Set(int64(entries))
			r.replagSeconds[i].Set(int64(seconds))
		}
	}
	return out
}
