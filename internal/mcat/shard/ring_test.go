package shard

import (
	"fmt"
	"path/filepath"
	"testing"
)

func TestKeyOfAndSpine(t *testing.T) {
	cases := []struct {
		path  string
		key   string
		spine bool
	}{
		{"/", "/", true},
		{"/home", "/home", true},
		{"/home/alice", "/home/alice", false},
		{"/home/alice/deep/f.txt", "/home/alice", false},
		{"/projects/p1/data", "/projects/p1", false},
	}
	for _, c := range cases {
		if got := KeyOf(c.path); got != c.key {
			t.Errorf("KeyOf(%s) = %s, want %s", c.path, got, c.key)
		}
		if got := Spine(c.path); got != c.spine {
			t.Errorf("Spine(%s) = %v, want %v", c.path, got, c.spine)
		}
	}
}

// Routing must be a pure function of the key and the map parameters:
// the same key lands on the same shard across map rebuilds and across
// a save/load round trip — the property that lets a restarted daemon
// find every entry where it left it.
func TestRoutingStableAcrossRebuildAndReload(t *testing.T) {
	m1 := NewMap(4, DefaultVNodes)
	m2 := NewMap(4, DefaultVNodes)
	mapFile := filepath.Join(t.TempDir(), "m.shardmap")
	if err := m1.SaveFile(mapFile); err != nil {
		t.Fatal(err)
	}
	m3, err := LoadMapFile(mapFile)
	if err != nil || m3 == nil {
		t.Fatalf("LoadMapFile: %v (%v)", m3, err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("/home/user%d", i)
		a, b, c := m1.Shard(key), m2.Shard(key), m3.Shard(key)
		if a != b || a != c {
			t.Fatalf("Shard(%s): rebuild=%d reload=%d original=%d", key, b, c, a)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("Shard(%s) = %d out of range", key, a)
		}
	}
}

// Consistent hashing: growing the ring from n to n+1 shards must move
// roughly 1/(n+1) of the keys — not reshuffle everything the way
// mod-N hashing would.
func TestAddingShardMovesExpectedFraction(t *testing.T) {
	const keys = 10000
	for _, n := range []int{2, 4, 8} {
		before := NewMap(n, DefaultVNodes)
		after := NewMap(n+1, DefaultVNodes)
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("/proj/col%d", i)
			if before.Shard(key) != after.Shard(key) {
				moved++
			}
		}
		frac := float64(moved) / keys
		want := 1.0 / float64(n+1)
		// Generous tolerance: vnode placement is uneven, but anything
		// near full reshuffle (mod-N behaviour would move ~n/(n+1))
		// must fail.
		if frac > 2.5*want {
			t.Errorf("%d->%d shards moved %.1f%% of keys, want about %.1f%%", n, n+1, 100*frac, 100*want)
		}
		if moved == 0 {
			t.Errorf("%d->%d shards moved no keys at all", n, n+1)
		}
	}
}

// Key distribution should be roughly balanced across shards.
func TestRingBalance(t *testing.T) {
	const keys = 10000
	m := NewMap(4, DefaultVNodes)
	counts := make([]int, 4)
	for i := 0; i < keys; i++ {
		counts[m.Shard(fmt.Sprintf("/data/set%d", i))]++
	}
	for i, c := range counts {
		if c < keys/4/3 {
			t.Errorf("shard %d owns only %d/%d keys: %v", i, c, keys, counts)
		}
	}
}

func TestSingleShardMapIsIdentity(t *testing.T) {
	m := NewMap(1, DefaultVNodes)
	for _, k := range []string{"/", "/a", "/b/c", "/x/y/z"} {
		if got := m.Shard(k); got != 0 {
			t.Errorf("Shard(%s) = %d on a 1-shard map", k, got)
		}
	}
}
