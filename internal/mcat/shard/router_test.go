package shard

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/mcat"
	"gosrb/internal/types"
)

func newTestRouter(t *testing.T, n int) *Router {
	t.Helper()
	r := NewRouter(n, "admin", "local")
	r.EnableMemoryJournals()
	return r
}

// seedGrid applies one representative mutation script to any Catalog.
func seedGrid(t *testing.T, c Catalog) {
	t.Helper()
	steps := []error{
		c.AddUser(types.User{Name: "alice", Domain: "sdsc"}),
		c.AddUser(types.User{Name: "bob", Domain: "sdsc"}),
		c.AddGroup("staff"),
		c.AddToGroup("staff", "alice"),
		c.AddResource(types.Resource{Name: "r1", Kind: types.ResourcePhysical, Driver: "memfs"}),
		c.MkColl("/home", "admin"),
		c.MkCollAll("/home/alice/deep", "alice"),
		c.MkCollAll("/home/bob", "bob"),
		c.MkCollAll("/projects/p1", "admin"),
		c.SetACL("/home/alice", "alice", acl.Own),
		c.SetACL("/home", "bob", acl.Read),
	}
	for i, err := range steps {
		if err != nil {
			t.Fatalf("seed step %d: %v", i, err)
		}
	}
	for i := 0; i < 6; i++ {
		coll := "/home/alice/deep"
		if i%2 == 1 {
			coll = "/projects/p1"
		}
		o := &types.DataObject{Collection: coll, Name: fmt.Sprintf("f%d.dat", i), Owner: "alice", DataType: "generic"}
		if _, err := c.RegisterObject(o); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		if err := c.AddMeta(o.Path(), types.MetaUser, types.AVU{Name: "experiment", Value: fmt.Sprintf("e%d", i%2)}); err != nil {
			t.Fatalf("meta %d: %v", i, err)
		}
	}
}

// A 1-shard router must be indistinguishable from the bare catalog:
// same results for every read after the same mutation script.
func TestSingleShardMatchesMonolithic(t *testing.T) {
	mono := mcat.New("admin", "local")
	r := newTestRouter(t, 1)
	seedGrid(t, mono)
	seedGrid(t, r)

	if got, want := r.SubColls("/"), mono.SubColls("/"); !reflect.DeepEqual(got, want) {
		t.Errorf("SubColls: %v != %v", got, want)
	}
	if got, want := r.SubtreeObjects("/"), mono.SubtreeObjects("/"); !reflect.DeepEqual(got, want) {
		t.Errorf("SubtreeObjects: %v != %v", got, want)
	}
	gs, ms := r.Stats(), mono.Stats()
	if gs.Objects != ms.Objects || gs.Collections != ms.Collections || gs.MetaEntries != ms.MetaEntries {
		t.Errorf("Stats: %+v != %+v", gs, ms)
	}
	q := mcat.Query{Scope: "/", Conds: []mcat.Condition{{Attr: "experiment", Op: "=", Value: "e1"}}}
	h1, err1 := r.RunQuery(q)
	h2, err2 := mono.RunQuery(q)
	if err1 != nil || err2 != nil || !reflect.DeepEqual(h1, h2) {
		t.Errorf("RunQuery: %v (%v) != %v (%v)", h1, err1, h2, err2)
	}
	if got, want := r.EffectiveLevel("/home/alice/deep", "bob"), mono.EffectiveLevel("/home/alice/deep", "bob"); got != want {
		t.Errorf("EffectiveLevel: %v != %v", got, want)
	}
}

// The same script on 1 and 4 shards must produce the same logical
// namespace: every global read agrees.
func TestShardedMatchesMonolithicReads(t *testing.T) {
	mono := mcat.New("admin", "local")
	r := newTestRouter(t, 4)
	seedGrid(t, mono)
	seedGrid(t, r)

	if got, want := r.SubColls("/"), mono.SubColls("/"); !reflect.DeepEqual(got, want) {
		t.Errorf("SubColls: %v != %v", got, want)
	}
	if got, want := r.SubtreeObjects("/"), mono.SubtreeObjects("/"); !reflect.DeepEqual(got, want) {
		t.Errorf("SubtreeObjects: %v != %v", got, want)
	}
	for _, p := range mono.SubtreeObjects("/") {
		mo, _ := mono.GetObject(p)
		so, err := r.GetObject(p)
		if err != nil {
			t.Fatalf("GetObject(%s): %v", p, err)
		}
		if so.Name != mo.Name || so.Owner != mo.Owner {
			t.Errorf("object %s: %+v != %+v", p, so, mo)
		}
		// Objects are reachable by ID through the scatter lookup.
		byID, err := r.GetObjectByID(so.ID)
		if err != nil || byID.Path() != p {
			t.Errorf("GetObjectByID(%d) = %s (%v), want %s", so.ID, byID.Path(), err, p)
		}
	}
	// ACLs inherited through spine ancestors resolve on every shard.
	for _, p := range []string{"/home/alice/deep", "/projects/p1"} {
		if got, want := r.EffectiveLevel(p, "bob"), mono.EffectiveLevel(p, "bob"); got != want {
			t.Errorf("EffectiveLevel(%s, bob): %v != %v", p, got, want)
		}
	}
	// Scatter-gather query agrees with the monolithic answer.
	q := mcat.Query{Scope: "/", Conds: []mcat.Condition{{Attr: "experiment", Op: "=", Value: "e0"}}}
	mh, _ := mono.RunQuery(q)
	sh, partial, err := r.QueryPartial(q)
	if err != nil || len(partial) != 0 {
		t.Fatalf("QueryPartial: partial=%v err=%v", partial, err)
	}
	var mp, sp []string
	for _, h := range mh {
		mp = append(mp, h.Path)
	}
	for _, h := range sh {
		sp = append(sp, h.Path)
	}
	sort.Strings(mp)
	sort.Strings(sp)
	if !reflect.DeepEqual(mp, sp) {
		t.Errorf("query hits: %v != %v", sp, mp)
	}
}

// Unique object IDs across shards: the per-shard allocators stride so
// two shards can never mint the same ID.
func TestObjectIDsUniqueAcrossShards(t *testing.T) {
	r := newTestRouter(t, 4)
	seedGrid(t, r)
	seen := map[types.ObjectID]string{}
	for _, p := range r.SubtreeObjects("/") {
		o, err := r.GetObject(p)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[o.ID]; dup {
			t.Errorf("ID %d on both %s and %s", o.ID, prev, p)
		}
		seen[o.ID] = p
	}
}

// Deep-scoped queries route to a single home shard; the single-shard
// counter must tick while the scatter counter stays put.
func TestDeepScopeQueriesSingleShard(t *testing.T) {
	r := newTestRouter(t, 4)
	seedGrid(t, r)
	q := mcat.Query{Scope: "/home/alice/deep", Conds: []mcat.Condition{{Attr: "experiment", Op: "=", Value: "e0"}}}
	hits, partial, err := r.QueryPartial(q)
	if err != nil || len(partial) != 0 {
		t.Fatalf("QueryPartial: partial=%v err=%v", partial, err)
	}
	if len(hits) != 3 {
		t.Fatalf("hits = %d, want 3", len(hits))
	}
}

// A move that crosses shards keeps identity: same ID, metadata, ACL
// and annotations on the destination shard, nothing left on the source.
func TestCrossShardMoveObject(t *testing.T) {
	r := newTestRouter(t, 4)
	seedGrid(t, r)
	// Find an object whose home differs from a destination collection's.
	src := "/home/alice/deep/f0.dat"
	var dstColl string
	for i := 0; i < 50; i++ {
		cand := fmt.Sprintf("/projects/m%d", i)
		if r.homeIdx(cand) != r.homeIdx(src) {
			dstColl = cand
			break
		}
	}
	if dstColl == "" {
		t.Skip("no cross-shard destination found")
	}
	if err := r.MkCollAll(dstColl, "admin"); err != nil {
		t.Fatal(err)
	}
	before, err := r.GetObject(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.MoveObject(src, dstColl, "moved.dat"); err != nil {
		t.Fatalf("MoveObject: %v", err)
	}
	if _, err := r.GetObject(src); err == nil {
		t.Error("source path still resolves after cross-shard move")
	}
	after, err := r.GetObject(dstColl + "/moved.dat")
	if err != nil {
		t.Fatalf("moved object: %v", err)
	}
	if after.ID != before.ID {
		t.Errorf("move changed ID: %d -> %d", before.ID, after.ID)
	}
	meta, err := r.GetMeta(dstColl+"/moved.dat", types.MetaUser)
	if err != nil || len(meta) != 1 || meta[0].Name != "experiment" {
		t.Errorf("metadata did not follow the move: %v (%v)", meta, err)
	}
	if byID, err := r.GetObjectByID(before.ID); err != nil || byID.Path() != dstColl+"/moved.dat" {
		t.Errorf("GetObjectByID after move: %v (%v)", byID.Path(), err)
	}
}

// A cross-shard collection rename migrates the whole subtree.
func TestCrossShardMoveColl(t *testing.T) {
	r := newTestRouter(t, 4)
	seedGrid(t, r)
	src := "/home/alice/deep"
	var dst string
	for i := 0; i < 50; i++ {
		cand := fmt.Sprintf("/projects/sub%d", i)
		if r.homeIdx(cand) != r.homeIdx(src) {
			dst = cand
			break
		}
	}
	if dst == "" {
		t.Skip("no cross-shard destination found")
	}
	wantObjs := len(r.SubtreeObjects(src))
	if err := r.MoveColl(src, dst); err != nil {
		t.Fatalf("MoveColl: %v", err)
	}
	if r.CollExists(src) {
		t.Error("source collection still exists")
	}
	if got := len(r.SubtreeObjects(dst)); got != wantObjs {
		t.Errorf("migrated %d objects, want %d", got, wantObjs)
	}
	if _, err := r.GetColl(dst); err != nil {
		t.Errorf("destination collection: %v", err)
	}
}

// Spine renames would re-home every shard's broadcast state; the
// router refuses rather than silently corrupting.
func TestSpineMoveUnsupportedWhenSharded(t *testing.T) {
	r := newTestRouter(t, 4)
	seedGrid(t, r)
	if err := r.MoveColl("/home", "/casa"); !errors.Is(err, types.ErrUnsupported) {
		t.Errorf("spine MoveColl err = %v, want ErrUnsupported", err)
	}
}

// Mutating a follower shard fails with the read-only sentinel and the
// leader's name in the message; reads keep working.
func TestFollowerRejectsWrites(t *testing.T) {
	r := newTestRouter(t, 1)
	seedGrid(t, r)
	r.SetFollower(0, "srb-leader")
	err := r.MkColl("/stuff", "admin")
	if !errors.Is(err, types.ErrReadOnly) {
		t.Fatalf("follower MkColl err = %v, want ErrReadOnly", err)
	}
	if _, err := r.GetColl("/home"); err != nil {
		t.Errorf("follower read failed: %v", err)
	}
	r.Promote(0)
	if err := r.MkColl("/stuff", "admin"); err != nil {
		t.Errorf("promoted leader MkColl: %v", err)
	}
}

// A stale shard is reported by name in the partial list instead of
// silently returning short results.
func TestQueryReportsStaleShardPartial(t *testing.T) {
	r := newTestRouter(t, 4)
	seedGrid(t, r)
	r.SetFollower(2, "srb-leader")
	q := mcat.Query{Scope: "/", Conds: []mcat.Condition{{Attr: "experiment", Op: "=", Value: "e0"}}}
	_, partial, err := r.QueryPartial(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(partial, []string{"shard-2"}) {
		t.Errorf("partial = %v, want [shard-2]", partial)
	}
	// The strict entry point refuses a partial answer outright.
	if _, err := r.RunQuery(q); !errors.Is(err, types.ErrTimeout) {
		t.Errorf("RunQuery on stale shard err = %v, want ErrTimeout", err)
	}
}

// gateWriter blocks every journal write until its gate closes,
// signalling once the first write has begun — a deterministic way to
// wedge one shard mid-mutation (journal appends hold the catalog
// write lock, so the shard's queries block behind it).
type gateWriter struct {
	started chan struct{}
	once    sync.Once
	gate    chan struct{}
}

func (w *gateWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.started) })
	<-w.gate
	return len(p), nil
}

// A shard that cannot answer within the per-shard deadline lands in
// the partial list by name; the answering shards' hits still return.
func TestQueryDeadlineProducesPartial(t *testing.T) {
	r := newTestRouter(t, 4)
	seedGrid(t, r)
	victim := r.homeIdx("/projects/p1")
	w := &gateWriter{started: make(chan struct{}), gate: make(chan struct{})}
	r.AttachJournal(victim, mcat.NewJournal(w))
	done := make(chan error, 1)
	go func() { done <- r.MkColl("/projects/p1/held", "admin") }()
	<-w.started // the mutation now holds the victim shard's write lock

	r.SetQueryTimeout(100 * time.Millisecond)
	_, partial, err := r.QueryPartial(mcat.Query{Scope: "/", Conds: []mcat.Condition{{Attr: "experiment", Op: "=", Value: "e1"}}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range partial {
		if name == fmt.Sprintf("shard-%d", victim) {
			found = true
		}
	}
	if !found {
		t.Errorf("partial = %v, want it to name shard-%d", partial, victim)
	}
	close(w.gate)
	if err := <-done; err != nil {
		t.Fatalf("held mutation: %v", err)
	}
}

// Spine state (ACLs on / and depth-1 collections, users, groups,
// resources) is visible on every shard so permission walks stay local.
func TestSpineBroadcast(t *testing.T) {
	r := newTestRouter(t, 4)
	seedGrid(t, r)
	for i := 0; i < r.N(); i++ {
		c := r.Shard(i)
		if _, err := c.GetUser("alice"); err != nil {
			t.Errorf("shard %d: user alice missing: %v", i, err)
		}
		if _, err := c.GetResource("r1"); err != nil {
			t.Errorf("shard %d: resource r1 missing: %v", i, err)
		}
		if !c.CollExists("/home") {
			t.Errorf("shard %d: spine collection /home missing", i)
		}
		if lvl := c.EffectiveLevel("/home", "bob"); lvl < acl.Read {
			t.Errorf("shard %d: spine ACL for bob = %v", i, lvl)
		}
	}
}

// Structural attributes on a spine collection broadcast so mandatory
// checks work wherever the object lands.
func TestStructuralBroadcastOnSpine(t *testing.T) {
	r := newTestRouter(t, 4)
	seedGrid(t, r)
	if err := r.SetStructural("/home", types.StructuralAttr{Name: "origin", Mandatory: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.N(); i++ {
		missing := r.Shard(i).CheckMandatory("/home", nil)
		if len(missing) != 1 || missing[0] != "origin" {
			t.Errorf("shard %d: CheckMandatory = %v", i, missing)
		}
	}
}
