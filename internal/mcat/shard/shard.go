// Package shard partitions the MCAT across N catalog shards and
// replicates each shard from its leader's journal stream.
//
// The paper's MCAT is one logical catalog; at scale it becomes the
// bottleneck ("the MCAT server may become a chokepoint"). This package
// keeps the single-catalog programming model — brokers talk to one
// Catalog interface — while the Router behind it scatters state over N
// independent mcat.Catalog instances:
//
//   - The namespace is partitioned by collection prefix: the routing
//     key of a path is its first two components (KeyOf), hashed onto a
//     consistent ring (Map). Everything under /zone/project therefore
//     lives on one shard, so scoped queries and ancestor walks stay
//     local.
//   - "Spine" state — the root and depth-1 collections, users, groups,
//     resources, and ACL/structural attributes on spine paths — is
//     broadcast to every shard, so each shard can evaluate permissions
//     and mandatory-metadata rules without cross-shard calls.
//   - Queries scoped at depth >= 2 route to the single home shard;
//     wider queries scatter-gather with a per-shard deadline and report
//     which shards, if any, could not answer (partial results).
//   - Each shard replicates leader -> follower by shipping the
//     append-only journal stream (RepLog); a follower too far behind
//     catches up from a full snapshot. Followers reject mutations,
//     naming their leader.
//
// With one shard (the default) every Router method is a direct
// passthrough to the single catalog: behavior, journal bytes and
// on-disk layout are identical to the monolithic catalog.
package shard

import (
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/audit"
	"gosrb/internal/mcat"
	"gosrb/internal/types"
)

// Catalog is the metadata-catalog contract brokers and servers program
// against: the full MCAT surface of the paper — namespace, users,
// resources, permissions, the five metadata classes, annotations,
// queries and the repair queue. Both the monolithic *mcat.Catalog and
// the shard Router satisfy it.
type Catalog interface {
	// Users and groups.
	AddUser(u types.User) error
	GetUser(name string) (types.User, error)
	Users() []types.User
	DeleteUser(name string) error
	AddGroup(name string) error
	AddToGroup(group, user string) error
	RemoveFromGroup(group, user string) error
	GroupsOf(user string) map[string]bool
	Groups() []types.Group
	IsAdmin(name string) bool

	// Storage resources.
	AddResource(r types.Resource) error
	GetResource(name string) (types.Resource, error)
	Resources() []types.Resource
	SetResourceOnline(name string, online bool) error
	SetResourcePolicy(name, policy string) error
	ResolvePhysical(name string) ([]types.Resource, error)
	DeleteResource(name string) error

	// Namespace: collections and data objects.
	MkColl(path, owner string) error
	MkCollAll(path, owner string) error
	GetColl(path string) (types.Collection, error)
	ResolveColl(path string) (string, error)
	LinkColl(target, linkPath, owner string) error
	ListColl(path string) ([]types.Stat, error)
	DeleteColl(path string) error
	CollExists(path string) bool
	SubColls(root string) []string
	RegisterObject(o *types.DataObject) (types.ObjectID, error)
	AdoptObject(o *types.DataObject) error
	GetObject(path string) (types.DataObject, error)
	ResolveObject(path string) (types.DataObject, error)
	GetObjectByID(id types.ObjectID) (types.DataObject, error)
	UpdateObject(path string, fn func(*types.DataObject) error) error
	DeleteObject(path string) error
	MoveObject(oldPath, newColl, newName string) error
	MoveColl(oldPath, newPath string) error
	ObjectsIn(coll string) []types.DataObject
	SubtreeObjects(root string) []string
	LinksTo(target string) []string
	ObjectsInContainer(containerPath string) []string

	// Permissions.
	SetACL(path, grantee string, level acl.Level) error
	GetACL(path string) (acl.List, error)
	EffectiveLevel(path, user string) acl.Level
	SetResourceACL(resource, grantee string, level acl.Level) error
	ResourceLevel(resource, user string) acl.Level

	// Descriptive, structural and file-based metadata; annotations.
	AddMeta(path string, class types.MetaClass, avu types.AVU) error
	GetMeta(path string, class types.MetaClass) ([]types.AVU, error)
	AllMeta(path string) (map[types.MetaClass][]types.AVU, error)
	UpdateMeta(path string, class types.MetaClass, name, oldValue string, newAVU types.AVU) (int, error)
	DeleteMeta(path string, class types.MetaClass, name, value string) (int, error)
	CopyMeta(from, to string) error
	AttachFileMeta(path, metaFile string) error
	FileMeta(path string) []string
	SetStructural(coll string, attr types.StructuralAttr) error
	DeleteStructural(coll, name string) error
	Structural(coll string) []types.StructuralAttr
	CheckMandatory(coll string, provided []types.AVU) []string
	AddAnnotation(path string, a types.Annotation) error
	Annotations(path string) ([]types.Annotation, error)
	DeleteAnnotations(path, author string) (int, error)

	// Metadata query.
	RunQuery(q mcat.Query) ([]mcat.Hit, error)
	QueryPartial(q mcat.Query) ([]mcat.Hit, []string, error)
	QueryAttrNames(scope string) []string

	// Deferred-repair queue.
	EnqueueRepair(t types.RepairTask) bool
	CompleteRepair(key string) bool
	NoteRepairAttempt(key string) int
	PendingRepairs() []types.RepairTask
	RepairBacklog() (int, time.Time)

	// Accounting.
	Stats() mcat.Stats
	AuditLog() *audit.Log
	SetClock(now func() time.Time)
}

var (
	_ Catalog = (*mcat.Catalog)(nil)
	_ Catalog = (*Router)(nil)
)
