package shard

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"gosrb/internal/mcat"
	"gosrb/internal/types"
)

// followerOf builds a follower router wired to pull straight from the
// leader in process — the transport the daemon provides over the wire,
// collapsed for determinism.
func followerOf(t *testing.T, leader *Router) *Router {
	t.Helper()
	f := NewRouter(leader.N(), "admin", "local")
	f.EnableMemoryJournals()
	for i := 0; i < f.N(); i++ {
		f.SetFollower(i, "leader")
	}
	f.SetPuller(func(peer string, idx int, after uint64) (PullResult, error) {
		return leader.Pull(idx, after)
	}, DefaultPromoteAfter)
	return f
}

func TestReplicationConverges(t *testing.T) {
	leader := newTestRouter(t, 2)
	seedGrid(t, leader)
	f := followerOf(t, leader)

	if err := f.SyncOnce(); err != nil {
		t.Fatalf("SyncOnce: %v", err)
	}
	if got, want := f.SubtreeObjects("/"), leader.SubtreeObjects("/"); !reflect.DeepEqual(got, want) {
		t.Fatalf("follower objects %v != leader %v", got, want)
	}
	// Incremental: new leader mutations flow on the next pull.
	if err := leader.MkColl("/projects/p1/incr", "admin"); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncOnce(); err != nil {
		t.Fatalf("SyncOnce (incremental): %v", err)
	}
	if !f.CollExists("/projects/p1/incr") {
		t.Error("incremental mutation did not replicate")
	}
	// Caught-up shards are not stale and queries are complete.
	_, partial, err := f.QueryPartial(testQuery("e0"))
	if err != nil || len(partial) != 0 {
		t.Errorf("caught-up follower query: partial=%v err=%v", partial, err)
	}
}

func testQuery(val string) mcat.Query {
	return mcat.Query{
		Scope: "/",
		Conds: []mcat.Condition{{Attr: "experiment", Op: "=", Value: val}},
	}
}

func TestSnapshotCatchUpWhenLogTrimmed(t *testing.T) {
	leader := newTestRouter(t, 1)
	seedGrid(t, leader)
	// Blow past the replication log's retention so a fresh follower
	// cannot be served entries from seq 0.
	for i := 0; i < DefaultRepLogCap+50; i++ {
		if err := leader.AddMeta("/home/alice/deep/f0.dat", types.MetaUser,
			types.AVU{Name: fmt.Sprintf("churn%d", i), Value: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := leader.Pull(0, 0)
	if err != nil {
		t.Fatalf("Pull: %v", err)
	}
	if res.Snapshot == nil {
		t.Fatal("expected a snapshot when the log no longer covers seq 0")
	}

	f := followerOf(t, leader)
	if err := f.SyncOnce(); err != nil {
		t.Fatalf("SyncOnce via snapshot: %v", err)
	}
	if got, want := f.SubtreeObjects("/"), leader.SubtreeObjects("/"); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot catch-up diverged: %v != %v", got, want)
	}
	// After the snapshot the follower rides the entry stream again.
	if err := leader.MkColl("/home/after", "admin"); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if !f.CollExists("/home/after") {
		t.Error("post-snapshot entry did not replicate")
	}
}

// Pull failures mark the shard stale (partial queries) and, after the
// threshold, promote the follower to leader so it accepts writes.
func TestPromotionAfterRepeatedPullFailures(t *testing.T) {
	f := NewRouter(1, "admin", "local")
	f.EnableMemoryJournals()
	f.SetFollower(0, "dead-leader")
	f.SetPuller(func(peer string, idx int, after uint64) (PullResult, error) {
		return PullResult{}, errors.New("connection refused")
	}, 3)

	for i := 0; i < 2; i++ {
		if err := f.SyncOnce(); err == nil {
			t.Fatal("SyncOnce should surface pull errors")
		}
		if role, _ := f.Role(0); role != Follower {
			t.Fatalf("promoted after only %d failures", i+1)
		}
	}
	// Stale shard rejects writes and reports partial reads meanwhile.
	if err := f.MkColl("/x", "admin"); !errors.Is(err, types.ErrReadOnly) {
		t.Fatalf("stale follower write err = %v", err)
	}
	if err := f.SyncOnce(); err == nil {
		t.Fatal("third SyncOnce should still error")
	}
	if role, _ := f.Role(0); role != Leader {
		t.Fatal("not promoted after reaching the failure threshold")
	}
	if err := f.MkColl("/x", "admin"); err != nil {
		t.Fatalf("promoted shard write: %v", err)
	}
}

func TestRepLogTrimAndSince(t *testing.T) {
	rl := NewRepLog(4)
	for i := 1; i <= 6; i++ {
		rl.Append([]byte(fmt.Sprintf("e%d", i)))
	}
	if rl.Head() != 6 {
		t.Fatalf("Head = %d, want 6", rl.Head())
	}
	// Entries 1-2 trimmed: a reader at 0 or 1 needs a snapshot.
	if _, ok := rl.Since(0); ok {
		t.Error("Since(0) should demand a snapshot after trim")
	}
	if _, ok := rl.Since(1); ok {
		t.Error("Since(1) should demand a snapshot after trim")
	}
	got, ok := rl.Since(3)
	if !ok || len(got) != 3 || string(got[0]) != "e4" {
		t.Errorf("Since(3) = %q ok=%v", got, ok)
	}
	// Fully caught up.
	got, ok = rl.Since(6)
	if !ok || len(got) != 0 {
		t.Errorf("Since(6) = %q ok=%v", got, ok)
	}
}

// A promoted follower can serve pulls itself: its replayed journal fed
// its own replication log.
func TestPromotedFollowerServesPulls(t *testing.T) {
	leader := newTestRouter(t, 1)
	seedGrid(t, leader)
	f := followerOf(t, leader)
	if err := f.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	f.Promote(0)
	res, err := f.Pull(0, 0)
	if err != nil {
		t.Fatalf("promoted Pull: %v", err)
	}
	if len(res.Entries) == 0 && res.Snapshot == nil {
		t.Error("promoted follower served an empty stream")
	}
	// A second-generation follower converges off the promoted one.
	g := followerOf(t, f)
	if err := g.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if got, want := g.SubtreeObjects("/"), leader.SubtreeObjects("/"); !reflect.DeepEqual(got, want) {
		t.Errorf("second-generation follower diverged: %v != %v", got, want)
	}
}
