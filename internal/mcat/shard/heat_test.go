package shard

import (
	"testing"
	"time"

	"gosrb/internal/obs"
)

// TestReplagGauges walks the lag gauges through a replication lifecycle:
// quiet before any pull, zero when caught up, climbing while the leader
// runs ahead or the follower stops syncing, and reset across a follower
// restart.
func TestReplagGauges(t *testing.T) {
	leader := newTestRouter(t, 1)
	lreg := obs.NewRegistry()
	leader.SetMetrics(lreg)
	seedGrid(t, leader)

	// A leader no follower ever pulled stays quiet: single-server
	// deployments must not report phantom lag.
	leader.RefreshReplag(time.Now())
	if v := lreg.Gauge("mcat.shard.0.replag_entries").Value(); v != 0 {
		t.Fatalf("never-pulled leader lag = %d, want 0", v)
	}

	f := followerOf(t, leader)
	freg := obs.NewRegistry()
	f.SetMetrics(freg)
	if err := f.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	// Caught up: the follower reads zero immediately; the leader learns
	// the ack from the follower's next pull (the ack rides the pull
	// request), so a second no-op sync clears the leader side too.
	if v := freg.Gauge("mcat.shard.0.replag_entries").Value(); v != 0 {
		t.Fatalf("caught-up follower entries lag = %d, want 0", v)
	}
	if err := f.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	leader.RefreshReplag(time.Now())
	if v := lreg.Gauge("mcat.shard.0.replag_entries").Value(); v != 0 {
		t.Fatalf("acked leader entries lag = %d, want 0", v)
	}

	// The leader runs ahead: its gauge counts unacked journal entries.
	for _, coll := range []string{"/home/l1", "/home/l2", "/home/l3"} {
		if err := leader.MkColl(coll, "admin"); err != nil {
			t.Fatal(err)
		}
	}
	leader.RefreshReplag(time.Now())
	if v := lreg.Gauge("mcat.shard.0.replag_entries").Value(); v != 3 {
		t.Fatalf("leader entries lag = %d, want 3", v)
	}
	// The follower has not pulled since, so its seconds gauge climbs
	// with the clock even though no pull is happening.
	f.RefreshReplag(time.Now().Add(42 * time.Second))
	if v := freg.Gauge("mcat.shard.0.replag_seconds").Value(); v < 41 {
		t.Fatalf("idle follower seconds lag = %d, want >= 41", v)
	}

	// One sync clears the follower; the ack-carrying second pull clears
	// the leader.
	if err := f.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if v := freg.Gauge("mcat.shard.0.replag_entries").Value(); v != 0 {
		t.Fatalf("post-sync follower entries lag = %d, want 0", v)
	}
	if v := freg.Gauge("mcat.shard.0.replag_seconds").Value(); v != 0 {
		t.Fatalf("post-sync follower seconds lag = %d, want 0", v)
	}
	leader.RefreshReplag(time.Now())
	if v := lreg.Gauge("mcat.shard.0.replag_entries").Value(); v != 0 {
		t.Fatalf("post-sync leader entries lag = %d, want 0", v)
	}

	// The statuses surface carries the same numbers.
	sts := leader.Statuses()
	if sts[0].ReplagEntries != 0 {
		t.Fatalf("status replag = %+v, want 0", sts[0])
	}

	// Follower restart: SetFollower resets the sync bookkeeping, so the
	// stale pre-restart lag cannot leak into the fresh gauges, and the
	// first sync rebuilds correct values.
	f.RefreshReplag(time.Now().Add(time.Hour)) // gauge now huge
	f.SetFollower(0, "leader")
	if v := freg.Gauge("mcat.shard.0.replag_seconds").Value(); v != 0 {
		t.Fatalf("restarted follower seconds lag = %d, want 0 until first sync", v)
	}
	if err := leader.MkColl("/home/after-restart", "admin"); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if v := freg.Gauge("mcat.shard.0.replag_entries").Value(); v != 0 {
		t.Fatalf("resynced follower entries lag = %d, want 0", v)
	}
	if !f.CollExists("/home/after-restart") {
		t.Fatal("restarted follower did not converge")
	}
}

// TestReplogFallbackCounter: a pull from below the replication log's
// retained tail serves a snapshot and counts the fallback.
func TestReplogFallbackCounter(t *testing.T) {
	leader := newTestRouter(t, 1)
	reg := obs.NewRegistry()
	leader.SetMetrics(reg)
	leader.SetRepLogBase(100) // sequences 1..100 predate the retained log
	seedGrid(t, leader)

	res, err := leader.Pull(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot == nil {
		t.Fatal("pull below the log tail should serve a snapshot")
	}
	if v := reg.Counter("mcat.shard.replog.fallback").Value(); v != 1 {
		t.Fatalf("fallback counter = %d, want 1", v)
	}
	// From the snapshot's sequence the entry stream works again and the
	// counter stays put.
	if _, err := leader.Pull(0, res.Seq); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("mcat.shard.replog.fallback").Value(); v != 1 {
		t.Fatalf("fallback counter after caught-up pull = %d, want still 1", v)
	}
}

// TestAdvisorBalancedAndSingleShard: the advisor refuses to churn when
// there is nothing to fix.
func TestAdvisorBalancedAndSingleShard(t *testing.T) {
	one := newTestRouter(t, 1)
	p := one.Advise([]obs.HeatStat{{Key: "/home/alice", Score: 100}}, time.Now())
	if len(p.Moves) != 0 || p.Note == "" {
		t.Fatalf("single-shard plan = %+v, want no moves with a note", p)
	}
	if one.LastPlan() == nil {
		t.Fatal("Advise must store the plan")
	}

	r := newTestRouter(t, 4)
	seedGrid(t, r)
	// Perfectly even heat across four prefixes that hash to four homes
	// is (at worst) mildly imbalanced; equal scores keep max/mean low
	// only if homes differ, so instead check the no-heat degenerate case
	// and the within-threshold case explicitly.
	p = r.Advise(nil, time.Now())
	if p.Imbalance != 0 || len(p.Moves) != 0 {
		t.Fatalf("no-heat plan = %+v, want imbalance 0, no moves", p)
	}
	// Spine rows and non-prefix rows (full object paths) never join.
	p = r.Advise([]obs.HeatStat{
		{Key: "/", Score: 500},
		{Key: "/home", Score: 500},
		{Key: "/home/alice/deep/f0.dat", Score: 500},
	}, time.Now())
	for _, sh := range p.Shards {
		if sh.HotKeys != 0 {
			t.Fatalf("unroutable rows joined the plan: %+v", p.Shards)
		}
	}
}

// TestAdvisorProposesMoves: a skewed workload yields moves off the
// hottest shard that project a better balance, without flipping the
// hotspot onto the target.
func TestAdvisorProposesMoves(t *testing.T) {
	r := newTestRouter(t, 4)
	seedGrid(t, r)

	// Find two prefixes homed on the same shard to manufacture skew, and
	// one elsewhere for background heat.
	prefixes := []string{}
	for _, c := range "abcdefghijklmnop" {
		prefixes = append(prefixes, "/zone/proj-"+string(c))
	}
	home := r.Map().Shard(prefixes[0])
	same := []string{prefixes[0]}
	var other string
	for _, p := range prefixes[1:] {
		if r.Map().Shard(p) == home && len(same) < 3 {
			same = append(same, p)
		} else if r.Map().Shard(p) != home && other == "" {
			other = p
		}
	}
	if len(same) < 2 || other == "" {
		t.Skip("hash layout gave no co-homed prefixes to skew")
	}

	rows := []obs.HeatStat{
		{Key: same[0], Score: 900, Bytes: 1 << 20},
		{Key: same[1], Score: 300},
		{Key: other, Score: 50},
	}
	p := r.Advise(rows, time.Now())
	if p.Imbalance <= adviseImbalance {
		t.Fatalf("manufactured skew not imbalanced: %+v", p)
	}
	if len(p.Moves) == 0 {
		t.Fatalf("skewed plan proposed no moves: %+v", p)
	}
	m := p.Moves[0]
	if m.From != home {
		t.Fatalf("move %+v does not come off the hottest shard %d", m, home)
	}
	if m.To == home {
		t.Fatalf("move %+v targets its own shard", m)
	}
	if p.Projected >= p.Imbalance {
		t.Fatalf("plan projects no improvement: %.2f -> %.2f", p.Imbalance, p.Projected)
	}
	if len(p.Moves) > adviseMaxMoves {
		t.Fatalf("plan proposes %d moves, cap is %d", len(p.Moves), adviseMaxMoves)
	}
	// The stored plan is what the serving paths reuse.
	if lp := r.LastPlan(); lp == nil || lp.GeneratedAt != p.GeneratedAt {
		t.Fatal("LastPlan does not return the newest plan")
	}
}
