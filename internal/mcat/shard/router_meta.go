package shard

import (
	"fmt"

	"gosrb/internal/acl"
	"gosrb/internal/mcat"
	"gosrb/internal/types"
)

// Per-path metadata (descriptive triplets, annotations, file-metadata
// pointers) is single-homed on the path's shard — even for spine
// paths, whose key hashes deterministically. ACLs and structural
// attributes on spine paths are instead broadcast, because every shard
// evaluates permission and mandatory-metadata rules by walking a
// path's ancestors locally.

// ---- permissions ----

func (r *Router) SetACL(path, grantee string, level acl.Level) error {
	path = types.CleanPath(path)
	if r.n > 1 && Spine(path) {
		if err := r.writableAll("setacl", path); err != nil {
			return err
		}
		return r.each(func(c *mcat.Catalog) error { return c.SetACL(path, grantee, level) })
	}
	i := r.homeIdx(path)
	if err := r.writable(i, "setacl", path); err != nil {
		return err
	}
	return r.shards[i].cat.SetACL(path, grantee, level)
}

func (r *Router) GetACL(path string) (acl.List, error) { return r.home(path).GetACL(path) }

func (r *Router) EffectiveLevel(path, user string) acl.Level {
	return r.home(path).EffectiveLevel(path, user)
}

func (r *Router) SetResourceACL(resource, grantee string, level acl.Level) error {
	if err := r.writableAll("resourceacl", resource); err != nil {
		return err
	}
	return r.each(func(c *mcat.Catalog) error { return c.SetResourceACL(resource, grantee, level) })
}

func (r *Router) ResourceLevel(resource, user string) acl.Level {
	return r.shards[0].cat.ResourceLevel(resource, user)
}

// ---- descriptive metadata ----

func (r *Router) AddMeta(path string, class types.MetaClass, avu types.AVU) error {
	i := r.homeIdx(path)
	if err := r.writable(i, "addmeta", path); err != nil {
		return err
	}
	return r.shards[i].cat.AddMeta(path, class, avu)
}

func (r *Router) GetMeta(path string, class types.MetaClass) ([]types.AVU, error) {
	return r.home(path).GetMeta(path, class)
}

func (r *Router) AllMeta(path string) (map[types.MetaClass][]types.AVU, error) {
	return r.home(path).AllMeta(path)
}

func (r *Router) UpdateMeta(path string, class types.MetaClass, name, oldValue string, newAVU types.AVU) (int, error) {
	i := r.homeIdx(path)
	if err := r.writable(i, "updmeta", path); err != nil {
		return 0, err
	}
	return r.shards[i].cat.UpdateMeta(path, class, name, oldValue, newAVU)
}

func (r *Router) DeleteMeta(path string, class types.MetaClass, name, value string) (int, error) {
	i := r.homeIdx(path)
	if err := r.writable(i, "delmeta", path); err != nil {
		return 0, err
	}
	return r.shards[i].cat.DeleteMeta(path, class, name, value)
}

// CopyMeta copies queryable metadata between paths; across shards it
// exports from the source's home and replays onto the target's home.
func (r *Router) CopyMeta(from, to string) error {
	from, to = types.CleanPath(from), types.CleanPath(to)
	fi, ti := r.homeIdx(from), r.homeIdx(to)
	if fi == ti {
		if err := r.writable(ti, "copymeta", to); err != nil {
			return err
		}
		return r.shards[ti].cat.CopyMeta(from, to)
	}
	if err := r.writable(fi, "copymeta", from); err != nil {
		return err
	}
	if err := r.writable(ti, "copymeta", to); err != nil {
		return err
	}
	src, dst := r.shards[fi].cat, r.shards[ti].cat
	all, err := src.AllMeta(from)
	if err != nil {
		return err
	}
	// Probe target existence the same way the monolithic CopyMeta does.
	if _, err := dst.AllMeta(to); err != nil {
		return types.E("copymeta", to, types.ErrNotFound)
	}
	for class, avus := range all {
		if !mcat.QueryableClass(class) {
			continue
		}
		for _, avu := range avus {
			if err := dst.AddMeta(to, class, avu); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---- file-based metadata ----

func (r *Router) AttachFileMeta(path, metaFile string) error {
	path, metaFile = types.CleanPath(path), types.CleanPath(metaFile)
	i := r.homeIdx(path)
	if r.n > 1 && r.homeIdx(metaFile) != i {
		return types.E("filemeta", path, fmt.Errorf("metadata file %s lives on another shard: %w", metaFile, types.ErrUnsupported))
	}
	if err := r.writable(i, "filemeta", path); err != nil {
		return err
	}
	return r.shards[i].cat.AttachFileMeta(path, metaFile)
}

func (r *Router) FileMeta(path string) []string { return r.home(path).FileMeta(path) }

// ---- structural metadata ----

func (r *Router) SetStructural(coll string, attr types.StructuralAttr) error {
	coll = types.CleanPath(coll)
	if r.n > 1 && Spine(coll) {
		if err := r.writableAll("structural", coll); err != nil {
			return err
		}
		return r.each(func(c *mcat.Catalog) error { return c.SetStructural(coll, attr) })
	}
	i := r.homeIdx(coll)
	if err := r.writable(i, "structural", coll); err != nil {
		return err
	}
	return r.shards[i].cat.SetStructural(coll, attr)
}

func (r *Router) DeleteStructural(coll, name string) error {
	coll = types.CleanPath(coll)
	if r.n > 1 && Spine(coll) {
		if err := r.writableAll("structural", coll); err != nil {
			return err
		}
		return r.each(func(c *mcat.Catalog) error { return c.DeleteStructural(coll, name) })
	}
	i := r.homeIdx(coll)
	if err := r.writable(i, "structural", coll); err != nil {
		return err
	}
	return r.shards[i].cat.DeleteStructural(coll, name)
}

func (r *Router) Structural(coll string) []types.StructuralAttr {
	return r.home(coll).Structural(coll)
}

func (r *Router) CheckMandatory(coll string, provided []types.AVU) []string {
	return r.home(coll).CheckMandatory(coll, provided)
}

// ---- annotations ----

func (r *Router) AddAnnotation(path string, a types.Annotation) error {
	i := r.homeIdx(path)
	if err := r.writable(i, "annotate", path); err != nil {
		return err
	}
	return r.shards[i].cat.AddAnnotation(path, a)
}

func (r *Router) Annotations(path string) ([]types.Annotation, error) {
	return r.home(path).Annotations(path)
}

func (r *Router) DeleteAnnotations(path, author string) (int, error) {
	i := r.homeIdx(path)
	if err := r.writable(i, "delannotations", path); err != nil {
		return 0, err
	}
	return r.shards[i].cat.DeleteAnnotations(path, author)
}
