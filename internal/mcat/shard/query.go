package shard

import (
	"fmt"
	"sort"
	"time"

	"gosrb/internal/mcat"
	"gosrb/internal/types"
)

// Query routing. A scope of depth >= 2 pins the whole answer to one
// shard — every path under the scope shares its routing key — so such
// queries run 1/N of the work of a monolithic scan. Wider scopes
// scatter to every shard under a per-shard deadline and gather; shards
// that miss the deadline (or are known-stale followers) are reported
// in the partial list by name rather than stalling the query.

// RunQuery satisfies the strict half of the query contract: a shard
// that cannot answer turns the whole query into an error. Callers that
// can use incomplete answers call QueryPartial.
func (r *Router) RunQuery(q mcat.Query) ([]mcat.Hit, error) {
	hits, partial, err := r.QueryPartial(q)
	if err != nil {
		return nil, err
	}
	if len(partial) > 0 {
		return nil, types.E("query", fmt.Sprintf("shards %v", partial), types.ErrTimeout)
	}
	return hits, nil
}

// QueryPartial runs the query and reports the shards, if any, whose
// answers are missing or suspect.
func (r *Router) QueryPartial(q mcat.Query) ([]mcat.Hit, []string, error) {
	if r.n == 1 {
		return r.shards[0].cat.QueryPartial(q)
	}
	scope := types.CleanPath(q.Scope)
	if types.Depth(scope) >= 2 {
		if r.singleQ != nil {
			r.singleQ.Inc()
		}
		i := r.homeIdx(scope)
		hits, err := r.shards[i].cat.RunQuery(q)
		if err != nil {
			return nil, nil, err
		}
		var partial []string
		if r.isStale(i) {
			partial = []string{r.shardName(i)}
			r.notePartial()
		}
		return hits, partial, nil
	}

	if r.scatterQ != nil {
		r.scatterQ.Inc()
	}
	type result struct {
		idx  int
		hits []mcat.Hit
		err  error
	}
	fanStart := time.Now()
	ch := make(chan result, r.n)
	for i := range r.shards {
		go func(i int, c *mcat.Catalog) {
			hits, err := c.RunQuery(q)
			ch <- result{idx: i, hits: hits, err: err}
		}(i, r.shards[i].cat)
	}

	answered := make(map[int][]mcat.Hit)
	var firstErr error
	deadline := time.NewTimer(r.qTimeout)
	defer deadline.Stop()
	pending := r.n
collect:
	for pending > 0 {
		select {
		case res := <-ch:
			pending--
			if res.err != nil {
				if firstErr == nil {
					firstErr = res.err
				}
				continue
			}
			answered[res.idx] = res.hits
		case <-deadline.C:
			break collect
		}
	}
	if r.fanoutOp != nil {
		r.fanoutOp.Observe(time.Since(fanStart), nil)
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}

	var partial []string
	for i := range r.shards {
		if _, ok := answered[i]; !ok || r.isStale(i) {
			partial = append(partial, r.shardName(i))
		}
	}
	if len(partial) > 0 {
		r.notePartial()
	}

	mergeStart := time.Now()
	seen := make(map[string]mcat.Hit)
	for _, hits := range answered {
		for _, h := range hits {
			if _, ok := seen[h.Path]; !ok {
				seen[h.Path] = h
			}
		}
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	if q.Limit > 0 && len(paths) > q.Limit {
		paths = paths[:q.Limit]
	}
	out := make([]mcat.Hit, 0, len(paths))
	for _, p := range paths {
		out = append(out, seen[p])
	}
	if r.mergeOp != nil {
		r.mergeOp.Observe(time.Since(mergeStart), nil)
	}
	return out, partial, nil
}

// QueryAttrNames unions the queryable attribute names across the
// shards covering the scope.
func (r *Router) QueryAttrNames(scope string) []string {
	scope = types.CleanPath(scope)
	if r.n == 1 || types.Depth(scope) >= 2 {
		return r.shards[r.homeIdx(scope)].cat.QueryAttrNames(scope)
	}
	seen := make(map[string]bool)
	for _, st := range r.shards {
		for _, n := range st.cat.QueryAttrNames(scope) {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (r *Router) isStale(i int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.shards[i].stale
}

func (r *Router) shardName(i int) string { return fmt.Sprintf("shard-%d", i) }

func (r *Router) notePartial() {
	if r.partialQ != nil {
		r.partialQ.Inc()
	}
}
