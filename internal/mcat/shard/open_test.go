package shard

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gosrb/internal/acl"
	"gosrb/internal/types"
)

func testOpts(dir string, n int) OpenOptions {
	return OpenOptions{
		Shards:      n,
		CatalogPath: filepath.Join(dir, "catalog.json"),
		JournalPath: filepath.Join(dir, "journal.log"),
		Admin:       "admin",
		Domain:      "local",
	}
}

// seedStore writes a representative slice of catalog state through a
// store's router.
func seedStore(t *testing.T, r *Router) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(r.AddUser(types.User{Name: "alice", Domain: "sdsc"}))
	must(r.AddResource(types.Resource{Name: "r1", Kind: types.ResourcePhysical, Driver: "memfs"}))
	must(r.MkColl("/home", "admin"))
	for _, p := range []string{"/home/alice", "/home/bob", "/projects", "/projects/p1", "/projects/p1/deep"} {
		must(r.MkCollAll(p, "admin"))
	}
	for i, coll := range []string{"/home/alice", "/home/bob", "/projects/p1/deep"} {
		_, err := r.RegisterObject(&types.DataObject{
			Collection: coll, Name: "f.dat", Owner: "alice",
			Size: int64(100 + i), DataType: "generic",
		})
		must(err)
		must(r.AddMeta(coll+"/f.dat", types.MetaUser, types.AVU{Name: "experiment", Value: "e1"}))
	}
	must(r.SetACL("/home/alice", "alice", acl.Own))
	r.EnqueueRepair(types.RepairTask{Path: "/home/alice/f.dat", Resource: "r1", Kind: "replicate"})
}

// checkSeeded verifies the state written by seedStore, whatever layout
// it was reopened under.
func checkSeeded(t *testing.T, r *Router) {
	t.Helper()
	wantObjs := []string{"/home/alice/f.dat", "/home/bob/f.dat", "/projects/p1/deep/f.dat"}
	if got := r.SubtreeObjects("/"); !reflect.DeepEqual(got, wantObjs) {
		t.Errorf("objects = %v, want %v", got, wantObjs)
	}
	if _, err := r.GetUser("alice"); err != nil {
		t.Errorf("GetUser(alice): %v", err)
	}
	if _, err := r.GetResource("r1"); err != nil {
		t.Errorf("GetResource(r1): %v", err)
	}
	avus, err := r.GetMeta("/projects/p1/deep/f.dat", types.MetaUser)
	if err != nil || len(avus) != 1 || avus[0].Name != "experiment" {
		t.Errorf("GetMeta = %v (%v)", avus, err)
	}
	if lvl := r.EffectiveLevel("/home/alice/f.dat", "alice"); lvl < acl.Own {
		t.Errorf("EffectiveLevel(alice) = %v", lvl)
	}
	pend := r.PendingRepairs()
	if len(pend) != 1 || pend[0].Path != "/home/alice/f.dat" {
		t.Errorf("PendingRepairs = %v", pend)
	}
	hits, err := r.RunQuery(testQuery("e1"))
	if err != nil || len(hits) != 3 {
		t.Errorf("RunQuery = %d hits (%v)", len(hits), err)
	}
}

// Single-shard stores must keep the exact monolithic file layout —
// existing catalogs load unchanged and no shard artifacts appear.
func TestOpenSingleShardUsesLegacyLayout(t *testing.T) {
	dir := t.TempDir()
	opt := testOpts(dir, 1)
	st, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, st.Router())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(opt.JournalPath); err != nil {
		t.Errorf("journal not at the legacy path: %v", err)
	}
	for _, p := range []string{opt.mapPath(), opt.CatalogPath + ".shard0", opt.JournalPath + ".shard0"} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("unexpected shard artifact %s", p)
		}
	}

	st2, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Router().N() != 1 {
		t.Fatalf("N = %d", st2.Router().N())
	}
	checkSeeded(t, st2.Router())
}

// Changing the shard count rebalances every entry into the new layout,
// retires the old files, and the result is stable across further
// reopens — including shrinking back to the monolithic layout.
func TestReshardRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(testOpts(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, st.Router())
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// 1 -> 4: rebalance.
	opt4 := testOpts(dir, 4)
	st4, err := Open(opt4)
	if err != nil {
		t.Fatal(err)
	}
	if st4.Router().N() != 4 {
		t.Fatalf("N = %d", st4.Router().N())
	}
	checkSeeded(t, st4.Router())
	// New mutations land in the sharded journals and survive reopen.
	if err := st4.Router().MkColl("/projects/p1/deep/post", "admin"); err != nil {
		t.Fatal(err)
	}
	st4.Close()
	if _, err := os.Stat(opt4.mapPath()); err != nil {
		t.Errorf("shard map not journaled: %v", err)
	}
	if _, err := os.Stat(opt4.CatalogPath); !os.IsNotExist(err) {
		t.Error("legacy catalog file not retired")
	}
	if _, err := os.Stat(opt4.JournalPath); !os.IsNotExist(err) {
		t.Error("legacy journal file not retired")
	}

	// 4 -> 4: no rebalance, same data.
	var rebalanced bool
	opt4b := opt4
	opt4b.Logf = func(format string, args ...any) {
		if strings.Contains(format, "rebalancing") {
			rebalanced = true
		}
	}
	st4b, err := Open(opt4b)
	if err != nil {
		t.Fatal(err)
	}
	if rebalanced {
		t.Error("reopening with the same shard count rebalanced")
	}
	checkSeeded(t, st4b.Router())
	if !st4b.Router().CollExists("/projects/p1/deep/post") {
		t.Error("post-reshard mutation lost across reopen")
	}
	st4b.Close()

	// 4 -> 1: collapse back to the monolithic layout.
	opt1 := testOpts(dir, 1)
	st1, err := Open(opt1)
	if err != nil {
		t.Fatal(err)
	}
	checkSeeded(t, st1.Router())
	st1.Close()
	if _, err := os.Stat(opt1.mapPath()); !os.IsNotExist(err) {
		t.Error("shard map not removed after collapsing to one shard")
	}
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(opt4.catPath(4, i)); !os.IsNotExist(err) {
			t.Errorf("shard %d catalog not retired", i)
		}
	}
}

// Boot replay skips and counts corrupt journal lines instead of
// aborting or silently dropping them.
func TestReplaySkippedCounted(t *testing.T) {
	dir := t.TempDir()
	opt := testOpts(dir, 1)
	st, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, st.Router())
	st.Close()

	jf, err := os.OpenFile(opt.JournalPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	jf.WriteString("{\"op\":\"garbage, torn mid-write\n")
	jf.Close()

	st2, err := Open(opt)
	if err != nil {
		t.Fatalf("corrupt line must not abort boot: %v", err)
	}
	defer st2.Close()
	if st2.ReplaySkipped != 1 {
		t.Errorf("ReplaySkipped = %d, want 1", st2.ReplaySkipped)
	}
	checkSeeded(t, st2.Router())
}

// Snapshot rotates each journal under live traffic: pre-snapshot
// history moves into the snapshot file, later mutations into the fresh
// journal, and a reopen sees both.
func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	opt := testOpts(dir, 2)
	st, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, st.Router())
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		fi, err := os.Stat(opt.jnlPath(2, i))
		if err != nil {
			t.Fatalf("rotated journal %d: %v", i, err)
		}
		if fi.Size() != 0 {
			t.Errorf("journal %d not reset by rotation: %d bytes", i, fi.Size())
		}
	}
	if err := st.Router().MkColl("/projects/p1/deep/after", "admin"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	checkSeeded(t, st2.Router())
	if !st2.Router().CollExists("/projects/p1/deep/after") {
		t.Error("post-snapshot mutation lost")
	}
}

// A crash between journal rotation and rename leaves a .new tail that
// the next boot must replay and absorb.
func TestCrashTailReplay(t *testing.T) {
	dir := t.TempDir()
	opt := testOpts(dir, 1)
	st, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, st.Router())
	st.Close()

	// Simulate the torn rotation: move part of the history into a .new
	// tail as if the rename never happened.
	data, err := os.ReadFile(opt.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(data) / 2
	for cut < len(data) && data[cut] != '\n' {
		cut++
	}
	cut++
	if cut >= len(data) {
		t.Fatal("journal too small to split")
	}
	if err := os.WriteFile(opt.JournalPath, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(opt.JournalPath+".new", data[cut:], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	checkSeeded(t, st2.Router())
	if _, err := os.Stat(opt.JournalPath + ".new"); !os.IsNotExist(err) {
		t.Error(".new tail not absorbed after replay")
	}
}

// Open with no paths is the memory-only mode the tests and embedded
// callers use: everything works, nothing touches disk.
func TestOpenMemoryOnly(t *testing.T) {
	st, err := Open(OpenOptions{Shards: 2, Admin: "admin", Domain: "local"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seedStore(t, st.Router())
	checkSeeded(t, st.Router())
	if err := st.Snapshot(); err != nil {
		t.Errorf("memory-only Snapshot: %v", err)
	}
}

// A restarted leader's replication log is empty even though its
// catalog carries snapshotted history. A fresh follower (applied = 0)
// must be pushed onto the snapshot path, not told "caught up" with
// none of that state — the restart-epoch base guarantees it.
func TestFollowerOfReopenedStore(t *testing.T) {
	dir := t.TempDir()
	opt := testOpts(dir, 2)
	st, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, st.Router())
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	checkSeeded(t, st2.Router())

	f := followerOf(t, st2.Router())
	if err := f.SyncOnce(); err != nil {
		t.Fatalf("SyncOnce against reopened leader: %v", err)
	}
	if got, want := f.SubtreeObjects("/"), st2.Router().SubtreeObjects("/"); !reflect.DeepEqual(got, want) {
		t.Fatalf("follower objects %v != leader %v", got, want)
	}
	// Incremental pulls resume after the snapshot hop.
	if err := st2.Router().MkColl("/projects/p1/deep/incr", "admin"); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncOnce(); err != nil {
		t.Fatalf("SyncOnce (incremental): %v", err)
	}
	if !f.CollExists("/projects/p1/deep/incr") {
		t.Error("incremental mutation after snapshot hop did not replicate")
	}
}

func TestLoadMapFileMissingAndInvalid(t *testing.T) {
	dir := t.TempDir()
	m, err := LoadMapFile(filepath.Join(dir, "absent.shardmap"))
	if m != nil || err != nil {
		t.Errorf("missing map: %v %v", m, err)
	}
	bad := filepath.Join(dir, "bad.shardmap")
	os.WriteFile(bad, []byte(`{"Version":99,"Shards":2}`), 0o644)
	if _, err := LoadMapFile(bad); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("bad version err = %v", err)
	}
}
