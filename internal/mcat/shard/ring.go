package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"

	"gosrb/internal/types"
)

// DefaultVNodes is the number of virtual points each shard places on
// the ring. More points smooth the key distribution and shrink the
// fraction of keys that move when a shard is added.
const DefaultVNodes = 64

// KeyOf returns the routing key of a logical path: its first two
// components ("/zone/project"), or the whole path when it is that
// shallow. Every path below one depth-2 collection shares a key, so a
// subtree and all its ancestors' per-path state below the spine land on
// one shard.
func KeyOf(path string) string {
	p := types.CleanPath(path)
	if p == "/" {
		return "/"
	}
	parts := strings.SplitN(strings.TrimPrefix(p, "/"), "/", 3)
	if len(parts) <= 2 {
		return p
	}
	return "/" + parts[0] + "/" + parts[1]
}

// Spine reports whether path belongs to the broadcast tier: the root
// or a depth-1 collection. Spine collections, like users and
// resources, are mirrored on every shard so each shard can walk
// ancestors locally.
func Spine(path string) bool {
	return types.Depth(path) <= 1
}

// Map assigns routing keys to shards by consistent hashing: each shard
// projects VNodes points onto a 64-bit ring and a key belongs to the
// first point at or after its own hash. The placement is a pure
// function of (Shards, VNodes), so persisting those two numbers pins
// the whole assignment across restarts.
type Map struct {
	Shards int
	VNodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewMap builds the ring for n shards. vnodes <= 0 selects
// DefaultVNodes.
func NewMap(n, vnodes int) *Map {
	if n < 1 {
		n = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	m := &Map{Shards: n, VNodes: vnodes}
	m.points = make([]ringPoint, 0, n*vnodes)
	for s := 0; s < n; s++ {
		for v := 0; v < vnodes; v++ {
			m.points = append(m.points, ringPoint{
				hash:  hash64(fmt.Sprintf("shard-%d-vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(m.points, func(i, j int) bool { return m.points[i].hash < m.points[j].hash })
	return m
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// splitmix64 finalizer: FNV's avalanche on short, similar strings
	// (vnode labels, sibling paths) is weak in exactly the high bits
	// that dominate ring ordering, which skews shard ownership badly.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Shard returns the shard owning a routing key.
func (m *Map) Shard(key string) int {
	if m.Shards <= 1 {
		return 0
	}
	h := hash64(key)
	i := sort.Search(len(m.points), func(i int) bool { return m.points[i].hash >= h })
	if i == len(m.points) {
		i = 0
	}
	return m.points[i].shard
}

// ShardOfPath returns the shard owning a logical path.
func (m *Map) ShardOfPath(path string) int {
	return m.Shard(KeyOf(path))
}

// mapFile is the journaled form of the shard map. The ring itself is
// derived deterministically from the two counts.
type mapFile struct {
	Version int
	Shards  int
	VNodes  int
}

const mapVersion = 1

// SaveFile journals the shard map so a restart reproduces the exact
// key assignment.
func (m *Map) SaveFile(path string) error {
	b, err := json.Marshal(mapFile{Version: mapVersion, Shards: m.Shards, VNodes: m.VNodes})
	if err != nil {
		return types.E("shardmap", path, err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return types.E("shardmap", path, err)
	}
	return types.E("shardmap", path, os.Rename(tmp, path))
}

// LoadMapFile restores a journaled shard map. A missing file returns
// (nil, nil) so callers can fall back to a fresh map.
func LoadMapFile(path string) (*Map, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, types.E("shardmap", path, err)
	}
	var f mapFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, types.E("shardmap", path, err)
	}
	if f.Version != mapVersion || f.Shards < 1 {
		return nil, types.E("shardmap", path, types.ErrInvalid)
	}
	return NewMap(f.Shards, f.VNodes), nil
}
