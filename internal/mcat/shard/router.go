package shard

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"gosrb/internal/audit"
	"gosrb/internal/mcat"
	"gosrb/internal/obs"
	"gosrb/internal/types"
)

// DefaultQueryTimeout bounds each shard's slice of a scatter-gather
// query. A shard that cannot answer in time is reported as partial
// rather than stalling the whole query.
const DefaultQueryTimeout = 2 * time.Second

// Router is a sharded MCAT: N independent catalogs behind the single
// Catalog contract. Paths route by consistent hash of their two-level
// prefix; spine state is broadcast; queries scatter-gather. With N=1
// every method is a straight passthrough to the one catalog.
type Router struct {
	n      int
	admin  string
	domain string

	mu     sync.RWMutex // guards roles, staleness, sync bookkeeping
	m      *Map
	shards []*state

	qTimeout     time.Duration
	puller       PullFunc
	promoteAfter int
	logf         func(format string, args ...any)

	// Metrics are optional; counters stay nil until SetMetrics.
	mutations      []*obs.Counter
	singleQ        *obs.Counter
	scatterQ       *obs.Counter
	partialQ       *obs.Counter
	fanoutOp       *obs.Op
	mergeOp        *obs.Op
	pullOK         *obs.Counter
	pullFailed     *obs.Counter
	pullLines      *obs.Counter
	promotions     *obs.Counter
	replogFallback *obs.Counter
	replagEntries  []*obs.Gauge
	replagSeconds  []*obs.Gauge

	planMu   sync.Mutex
	lastPlan *Plan // newest advisor output (see advisor.go)
}

// state is one shard slot: its catalog, replication log and role.
type state struct {
	cat       *mcat.Catalog
	rl        *RepLog
	role      Role
	leader    string // peer name when role == Follower
	stale     bool   // behind its leader; queries report it as partial
	applied   uint64 // leader journal sequence applied so far
	pullFails int    // consecutive failed pulls (promotion trigger)
	lastSync  time.Time

	// Replication-lag bookkeeping (see replag in sync.go).
	seenHead uint64    // follower: newest leader sequence a pull reported
	ackSeq   uint64    // leader: newest sequence a follower acked by pulling past it
	lastPull time.Time // leader: when a follower last pulled this shard
}

// NewRouter builds an N-shard router of fresh catalogs. Shard i
// allocates object IDs ≡ i+1 (mod N) so IDs stay globally unique
// without coordination; with one shard allocation is the default dense
// sequence, byte-identical to a monolithic catalog.
func NewRouter(n int, admin, domain string) *Router {
	if n < 1 {
		n = 1
	}
	r := &Router{
		n:        n,
		admin:    admin,
		domain:   domain,
		m:        NewMap(n, DefaultVNodes),
		qTimeout: DefaultQueryTimeout,
		logf:     func(string, ...any) {},
	}
	for i := 0; i < n; i++ {
		c := mcat.New(admin, domain)
		if n > 1 {
			c.SetIDAlloc(int64(i+1), int64(n))
		}
		r.shards = append(r.shards, &state{cat: c, rl: NewRepLog(DefaultRepLogCap), role: Leader})
	}
	return r
}

// N returns the shard count.
func (r *Router) N() int { return r.n }

// Shard exposes the catalog behind slot i (tests and the store).
func (r *Router) Shard(i int) *mcat.Catalog { return r.shards[i].cat }

// Map returns the routing map.
func (r *Router) Map() *Map { return r.m }

// SetLogf installs a logger for replication events.
func (r *Router) SetLogf(f func(format string, args ...any)) {
	if f != nil {
		r.logf = f
	}
}

// SetQueryTimeout bounds each shard's slice of a scatter-gather query.
func (r *Router) SetQueryTimeout(d time.Duration) {
	if d > 0 {
		r.qTimeout = d
	}
}

// AttachJournal wires a journal into shard i: catalog mutations append
// to it and every appended line feeds the shard's replication log.
func (r *Router) AttachJournal(i int, j *mcat.Journal) {
	st := r.shards[i]
	j.SetObserver(func(line []byte) { st.rl.Append(line) })
	st.cat.SetJournal(j)
}

// EnableMemoryJournals attaches discard journals to every shard so the
// replication stream works without on-disk files (tests, benchmarks,
// in-process chaos rigs).
func (r *Router) EnableMemoryJournals() {
	for i := range r.shards {
		r.AttachJournal(i, mcat.NewJournal(io.Discard))
	}
}

// SetRepLogBase marks sequences 1..base as preceding every shard's
// replication log (see RepLog.SetBase). A persistent store calls this
// at every open with a boot-unique base so followers positioned in an
// earlier incarnation's window take the snapshot path.
func (r *Router) SetRepLogBase(base uint64) {
	for _, st := range r.shards {
		st.rl.SetBase(base)
	}
}

// SetMetrics registers the router's per-shard and query counters.
func (r *Router) SetMetrics(reg *obs.Registry) {
	r.mutations = make([]*obs.Counter, r.n)
	for i := 0; i < r.n; i++ {
		r.mutations[i] = reg.Counter(fmt.Sprintf("mcat.shard.%d.mutations", i))
	}
	r.singleQ = reg.Counter("mcat.shard.query.single")
	r.scatterQ = reg.Counter("mcat.shard.query.scatter")
	r.partialQ = reg.Counter("mcat.shard.query.partial")
	// Fan-out and merge durations are registered under the phase
	// namespace, so the latency-decomposition surfaces (`srb top
	// -phases`, the admin /phases page, the MySRB grid) break a sharded
	// query's wall time down without any extra plumbing.
	r.fanoutOp = reg.Op(obs.PhasePrefix + "server.query." + obs.PhaseShardFanout)
	r.mergeOp = reg.Op(obs.PhasePrefix + "server.query." + obs.PhaseShardMerge)
	r.pullOK = reg.Counter("mcat.shard.pull.ok")
	r.pullFailed = reg.Counter("mcat.shard.pull.fail")
	r.pullLines = reg.Counter("mcat.shard.pull.entries")
	r.promotions = reg.Counter("mcat.shard.promote")
	r.replogFallback = reg.Counter("mcat.shard.replog.fallback")
	r.replagEntries = make([]*obs.Gauge, r.n)
	r.replagSeconds = make([]*obs.Gauge, r.n)
	for i := 0; i < r.n; i++ {
		r.replagEntries[i] = reg.Gauge(fmt.Sprintf("mcat.shard.%d.replag_entries", i))
		r.replagSeconds[i] = reg.Gauge(fmt.Sprintf("mcat.shard.%d.replag_seconds", i))
	}
}

// ---- routing primitives ----

// homeIdx returns the shard slot owning a path.
func (r *Router) homeIdx(path string) int {
	if r.n == 1 {
		return 0
	}
	return r.m.ShardOfPath(path)
}

// home returns the catalog owning a path.
func (r *Router) home(path string) *mcat.Catalog {
	return r.shards[r.homeIdx(path)].cat
}

// writable checks that shard i accepts mutations: followers reject,
// naming their leader so the client can retry there.
func (r *Router) writable(i int, op, target string) error {
	r.mu.RLock()
	st := r.shards[i]
	role, leader := st.role, st.leader
	r.mu.RUnlock()
	if role == Follower {
		return types.E(op, target, fmt.Errorf("shard %d is a follower of %q: %w", i, leader, types.ErrReadOnly))
	}
	if r.mutations != nil {
		r.mutations[i].Inc()
	}
	return nil
}

// writableAll checks every shard (broadcast mutations must reach all).
func (r *Router) writableAll(op, target string) error {
	for i := range r.shards {
		if err := r.writable(i, op, target); err != nil {
			return err
		}
	}
	return nil
}

// each applies fn to every shard and returns the first error. Spine
// state is identical everywhere so errors agree; applying to the rest
// even after a failure keeps them agreeing when they do not.
func (r *Router) each(fn func(c *mcat.Catalog) error) error {
	var first error
	for _, st := range r.shards {
		if err := fn(st.cat); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// tolerateExists maps ErrExists to success (idempotent broadcasts).
func tolerateExists(err error) error {
	if errors.Is(err, types.ErrExists) {
		return nil
	}
	return err
}

// ---- users and groups (broadcast writes, shard-0 reads) ----

func (r *Router) AddUser(u types.User) error {
	if err := r.writableAll("adduser", u.Name); err != nil {
		return err
	}
	return r.each(func(c *mcat.Catalog) error { return c.AddUser(u) })
}

func (r *Router) GetUser(name string) (types.User, error) { return r.shards[0].cat.GetUser(name) }
func (r *Router) Users() []types.User                     { return r.shards[0].cat.Users() }

func (r *Router) DeleteUser(name string) error {
	if err := r.writableAll("deluser", name); err != nil {
		return err
	}
	return r.each(func(c *mcat.Catalog) error { return c.DeleteUser(name) })
}

func (r *Router) AddGroup(name string) error {
	if err := r.writableAll("addgroup", name); err != nil {
		return err
	}
	return r.each(func(c *mcat.Catalog) error { return c.AddGroup(name) })
}

func (r *Router) AddToGroup(group, user string) error {
	if err := r.writableAll("addtogroup", group); err != nil {
		return err
	}
	return r.each(func(c *mcat.Catalog) error { return c.AddToGroup(group, user) })
}

func (r *Router) RemoveFromGroup(group, user string) error {
	if err := r.writableAll("rmfromgroup", group); err != nil {
		return err
	}
	return r.each(func(c *mcat.Catalog) error { return c.RemoveFromGroup(group, user) })
}

func (r *Router) GroupsOf(user string) map[string]bool { return r.shards[0].cat.GroupsOf(user) }
func (r *Router) Groups() []types.Group                { return r.shards[0].cat.Groups() }
func (r *Router) IsAdmin(name string) bool             { return r.shards[0].cat.IsAdmin(name) }

// ---- resources (broadcast writes, shard-0 reads) ----

func (r *Router) AddResource(res types.Resource) error {
	if err := r.writableAll("addresource", res.Name); err != nil {
		return err
	}
	return r.each(func(c *mcat.Catalog) error { return c.AddResource(res) })
}

func (r *Router) GetResource(name string) (types.Resource, error) {
	return r.shards[0].cat.GetResource(name)
}

func (r *Router) Resources() []types.Resource { return r.shards[0].cat.Resources() }

func (r *Router) SetResourceOnline(name string, online bool) error {
	if err := r.writableAll("setonline", name); err != nil {
		return err
	}
	return r.each(func(c *mcat.Catalog) error { return c.SetResourceOnline(name, online) })
}

func (r *Router) SetResourcePolicy(name, policy string) error {
	if err := r.writableAll("replpolicy", name); err != nil {
		return err
	}
	return r.each(func(c *mcat.Catalog) error { return c.SetResourcePolicy(name, policy) })
}

func (r *Router) ResolvePhysical(name string) ([]types.Resource, error) {
	return r.shards[0].cat.ResolvePhysical(name)
}

// DeleteResource broadcasts the removal. If a later shard refuses
// (e.g. a replica landed there between checks) the already-applied
// shards get the resource re-added so spine state stays uniform.
func (r *Router) DeleteResource(name string) error {
	if r.n == 1 {
		if err := r.writable(0, "delresource", name); err != nil {
			return err
		}
		return r.shards[0].cat.DeleteResource(name)
	}
	if err := r.writableAll("delresource", name); err != nil {
		return err
	}
	res, getErr := r.shards[0].cat.GetResource(name)
	var deleted []*mcat.Catalog
	for _, st := range r.shards {
		if err := st.cat.DeleteResource(name); err != nil {
			if getErr == nil {
				for _, c := range deleted {
					c.AddResource(res) // best-effort compensation
				}
			}
			return err
		}
		deleted = append(deleted, st.cat)
	}
	return nil
}

// ---- collections ----

func (r *Router) MkColl(path, owner string) error {
	path = types.CleanPath(path)
	if r.n > 1 && Spine(path) {
		if err := r.writableAll("mkcoll", path); err != nil {
			return err
		}
		return r.each(func(c *mcat.Catalog) error { return c.MkColl(path, owner) })
	}
	i := r.homeIdx(path)
	if err := r.writable(i, "mkcoll", path); err != nil {
		return err
	}
	return r.shards[i].cat.MkColl(path, owner)
}

func (r *Router) MkCollAll(path, owner string) error {
	path = types.CleanPath(path)
	if r.n == 1 {
		if err := r.writable(0, "mkcoll", path); err != nil {
			return err
		}
		return r.shards[0].cat.MkCollAll(path, owner)
	}
	for _, p := range append(types.Ancestors(path), path) {
		if p == "/" {
			continue
		}
		if Spine(p) {
			if err := r.writableAll("mkcoll", p); err != nil {
				return err
			}
			pp := p
			if err := r.each(func(c *mcat.Catalog) error { return tolerateExists(c.MkColl(pp, owner)) }); err != nil {
				return err
			}
			continue
		}
		// First deep ancestor: everything from here down shares one
		// home shard, which can create the rest in one call.
		i := r.homeIdx(p)
		if err := r.writable(i, "mkcoll", path); err != nil {
			return err
		}
		return r.shards[i].cat.MkCollAll(path, owner)
	}
	return nil
}

func (r *Router) GetColl(path string) (types.Collection, error) { return r.home(path).GetColl(path) }
func (r *Router) ResolveColl(path string) (string, error)       { return r.home(path).ResolveColl(path) }

// LinkColl registers a linked sub-collection. Across shards a link
// would make one subtree's state live on two partitions, so target and
// link must be deep paths sharing a home shard.
func (r *Router) LinkColl(target, linkPath, owner string) error {
	target, linkPath = types.CleanPath(target), types.CleanPath(linkPath)
	if r.n == 1 {
		if err := r.writable(0, "linkcoll", linkPath); err != nil {
			return err
		}
		return r.shards[0].cat.LinkColl(target, linkPath, owner)
	}
	ti, li := r.homeIdx(target), r.homeIdx(linkPath)
	if Spine(target) || Spine(linkPath) || ti != li {
		return types.E("linkcoll", linkPath, fmt.Errorf("link would cross shards (target on shard %d, link on shard %d): %w", ti, li, types.ErrUnsupported))
	}
	if err := r.writable(li, "linkcoll", linkPath); err != nil {
		return err
	}
	return r.shards[li].cat.LinkColl(target, linkPath, owner)
}

func (r *Router) ListColl(path string) ([]types.Stat, error) {
	path = types.CleanPath(path)
	if r.n == 1 || !Spine(path) {
		return r.home(path).ListColl(path)
	}
	// Spine collection: direct children scatter across shards.
	seen := make(map[string]types.Stat)
	var firstErr error
	found := false
	for _, st := range r.shards {
		out, err := st.cat.ListColl(path)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		found = true
		for _, s := range out {
			if _, ok := seen[s.Path]; !ok {
				seen[s.Path] = s
			}
		}
	}
	if !found {
		return nil, firstErr
	}
	var dirs, objs []string
	for p, s := range seen {
		if s.IsCollect {
			dirs = append(dirs, p)
		} else {
			objs = append(objs, p)
		}
	}
	sort.Strings(dirs)
	sort.Strings(objs)
	out := make([]types.Stat, 0, len(seen))
	for _, p := range dirs {
		out = append(out, seen[p])
	}
	for _, p := range objs {
		out = append(out, seen[p])
	}
	return out, nil
}

func (r *Router) DeleteColl(path string) error {
	path = types.CleanPath(path)
	if r.n == 1 || !Spine(path) {
		i := r.homeIdx(path)
		if err := r.writable(i, "rmcoll", path); err != nil {
			return err
		}
		return r.shards[i].cat.DeleteColl(path)
	}
	if err := r.writableAll("rmcoll", path); err != nil {
		return err
	}
	// A spine collection is empty only if it is empty on every shard.
	exists := false
	for _, st := range r.shards {
		if !st.cat.CollExists(path) {
			continue
		}
		exists = true
		if len(st.cat.SubColls(path)) > 0 || len(st.cat.ObjectsIn(path)) > 0 {
			return types.E("rmcoll", path, types.ErrNotEmpty)
		}
	}
	if !exists {
		return types.E("rmcoll", path, types.ErrNotFound)
	}
	return r.each(func(c *mcat.Catalog) error {
		err := c.DeleteColl(path)
		if errors.Is(err, types.ErrNotFound) {
			return nil
		}
		return err
	})
}

func (r *Router) CollExists(path string) bool { return r.home(path).CollExists(path) }

func (r *Router) SubColls(root string) []string {
	root = types.CleanPath(root)
	if r.n == 1 || !Spine(root) {
		return r.home(root).SubColls(root)
	}
	seen := make(map[string]bool)
	for _, st := range r.shards {
		for _, p := range st.cat.SubColls(root) {
			seen[p] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ---- data objects ----

func (r *Router) RegisterObject(o *types.DataObject) (types.ObjectID, error) {
	i := r.homeIdx(types.Join(o.Collection, o.Name))
	if err := r.writable(i, "register", o.Name); err != nil {
		return 0, err
	}
	return r.shards[i].cat.RegisterObject(o)
}

func (r *Router) AdoptObject(o *types.DataObject) error {
	i := r.homeIdx(types.Join(o.Collection, o.Name))
	if err := r.writable(i, "adopt", o.Name); err != nil {
		return err
	}
	return r.shards[i].cat.AdoptObject(o)
}

func (r *Router) GetObject(path string) (types.DataObject, error) {
	return r.home(path).GetObject(path)
}

func (r *Router) ResolveObject(path string) (types.DataObject, error) {
	return r.home(path).ResolveObject(path)
}

// GetObjectByID scatters: migrated objects keep their original IDs, so
// the allocation stride cannot locate them arithmetically.
func (r *Router) GetObjectByID(id types.ObjectID) (types.DataObject, error) {
	if r.n == 1 {
		return r.shards[0].cat.GetObjectByID(id)
	}
	for _, st := range r.shards {
		o, err := st.cat.GetObjectByID(id)
		if err == nil {
			return o, nil
		}
		if !errors.Is(err, types.ErrNotFound) {
			return types.DataObject{}, err
		}
	}
	return types.DataObject{}, types.E("getbyid", fmt.Sprint(id), types.ErrNotFound)
}

func (r *Router) UpdateObject(path string, fn func(*types.DataObject) error) error {
	i := r.homeIdx(path)
	if err := r.writable(i, "update", path); err != nil {
		return err
	}
	return r.shards[i].cat.UpdateObject(path, fn)
}

func (r *Router) DeleteObject(path string) error {
	i := r.homeIdx(path)
	if err := r.writable(i, "delete", path); err != nil {
		return err
	}
	return r.shards[i].cat.DeleteObject(path)
}

func (r *Router) ObjectsIn(coll string) []types.DataObject {
	coll = types.CleanPath(coll)
	if r.n == 1 || !Spine(coll) {
		return r.home(coll).ObjectsIn(coll)
	}
	seen := make(map[string]types.DataObject)
	for _, st := range r.shards {
		for _, o := range st.cat.ObjectsIn(coll) {
			p := o.Path()
			if _, ok := seen[p]; !ok {
				seen[p] = o
			}
		}
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]types.DataObject, 0, len(paths))
	for _, p := range paths {
		out = append(out, seen[p])
	}
	return out
}

func (r *Router) SubtreeObjects(root string) []string {
	root = types.CleanPath(root)
	if r.n == 1 || !Spine(root) {
		return r.home(root).SubtreeObjects(root)
	}
	return r.gatherPaths(func(c *mcat.Catalog) []string { return c.SubtreeObjects(root) })
}

func (r *Router) LinksTo(target string) []string {
	if r.n == 1 {
		return r.shards[0].cat.LinksTo(target)
	}
	return r.gatherPaths(func(c *mcat.Catalog) []string { return c.LinksTo(target) })
}

func (r *Router) ObjectsInContainer(containerPath string) []string {
	if r.n == 1 {
		return r.shards[0].cat.ObjectsInContainer(containerPath)
	}
	return r.gatherPaths(func(c *mcat.Catalog) []string { return c.ObjectsInContainer(containerPath) })
}

// gatherPaths unions sorted path lists from every shard.
func (r *Router) gatherPaths(fn func(c *mcat.Catalog) []string) []string {
	seen := make(map[string]bool)
	for _, st := range r.shards {
		for _, p := range fn(st.cat) {
			seen[p] = true
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ---- repair queue (shard 0 is the queue's home) ----

func (r *Router) EnqueueRepair(t types.RepairTask) bool {
	if err := r.writable(0, "repairenq", t.Key); err != nil {
		return false
	}
	return r.shards[0].cat.EnqueueRepair(t)
}

func (r *Router) CompleteRepair(key string) bool {
	if err := r.writable(0, "repairdone", key); err != nil {
		return false
	}
	return r.shards[0].cat.CompleteRepair(key)
}

func (r *Router) NoteRepairAttempt(key string) int {
	if err := r.writable(0, "repairenq", key); err != nil {
		return 0
	}
	return r.shards[0].cat.NoteRepairAttempt(key)
}

func (r *Router) PendingRepairs() []types.RepairTask { return r.shards[0].cat.PendingRepairs() }

func (r *Router) RepairBacklog() (int, time.Time) { return r.shards[0].cat.RepairBacklog() }

// ---- accounting ----

func (r *Router) Stats() mcat.Stats {
	if r.n == 1 {
		return r.shards[0].cat.Stats()
	}
	s0 := r.shards[0].cat.Stats()
	out := mcat.Stats{Users: s0.Users, Resources: s0.Resources}
	collSet := make(map[string]bool)
	for _, st := range r.shards {
		cs := st.cat.Stats()
		out.Objects += cs.Objects
		out.MetaEntries += cs.MetaEntries
		for _, p := range st.cat.SubColls("/") {
			collSet[p] = true
		}
	}
	out.Collections = len(collSet) + 1 // spine and deep colls, plus the root
	return out
}

func (r *Router) AuditLog() *audit.Log { return r.shards[0].cat.AuditLog() }

func (r *Router) SetClock(now func() time.Time) {
	for _, st := range r.shards {
		st.cat.SetClock(now)
	}
}
