package shard

import (
	"fmt"
	"sort"

	"gosrb/internal/types"
)

// Renames that stay inside one routing key delegate to the home shard
// unchanged. When a rename lands a path on a different shard, the
// entry — and for collections the whole subtree — migrates: copy to
// the destination shard preserving identity (IDs, replicas,
// timestamps, per-path state), then delete from the source. Every step
// flows through journaled mutators, so replication and crash replay
// see an ordinary delete on one shard and an adoption on the other.

func (r *Router) MoveObject(oldPath, newColl, newName string) error {
	oldPath = types.CleanPath(oldPath)
	newPath := types.Join(newColl, newName)
	si, di := r.homeIdx(oldPath), r.homeIdx(newPath)
	if si == di {
		if err := r.writable(si, "move", oldPath); err != nil {
			return err
		}
		return r.shards[si].cat.MoveObject(oldPath, newColl, newName)
	}
	if err := r.writable(si, "move", oldPath); err != nil {
		return err
	}
	if err := r.writable(di, "move", newPath); err != nil {
		return err
	}
	src, dst := r.shards[si].cat, r.shards[di].cat
	o, err := src.GetObject(oldPath)
	if err != nil {
		return err
	}
	st := src.ExportPathState(oldPath)
	for _, fm := range st.FileMeta {
		if r.homeIdx(fm) != di {
			return types.E("move", oldPath, fmt.Errorf("attached metadata file %s cannot follow across shards: %w", fm, types.ErrUnsupported))
		}
	}
	if !dst.CollExists(types.CleanPath(newColl)) {
		return types.E("move", newColl, types.ErrNotFound)
	}
	if err := src.DeleteObject(oldPath); err != nil {
		return err
	}
	orig := o
	o.Collection, o.Name = types.CleanPath(newColl), newName
	if err := dst.AdoptObject(&o); err != nil {
		// Put the object back where it was; state is still keyed to
		// oldPath only after reimport.
		if rerr := src.AdoptObject(&orig); rerr == nil {
			src.ImportPathState(oldPath, st)
		}
		return err
	}
	st.Structural = nil // objects carry no structural attributes
	if err := dst.ImportPathState(o.Path(), st); err != nil {
		return err
	}
	return nil
}

func (r *Router) MoveColl(oldPath, newPath string) error {
	oldPath, newPath = types.CleanPath(oldPath), types.CleanPath(newPath)
	si, di := r.homeIdx(oldPath), r.homeIdx(newPath)
	if r.n == 1 || (si == di && !Spine(oldPath) && !Spine(newPath)) {
		if err := r.writable(si, "movecoll", oldPath); err != nil {
			return err
		}
		return r.shards[si].cat.MoveColl(oldPath, newPath)
	}
	if Spine(oldPath) || Spine(newPath) {
		return types.E("movecoll", oldPath, fmt.Errorf("renaming a top-level collection would re-home every shard: %w", types.ErrUnsupported))
	}
	if err := r.writable(si, "movecoll", oldPath); err != nil {
		return err
	}
	if err := r.writable(di, "movecoll", newPath); err != nil {
		return err
	}
	return r.migrateSubtree(si, di, oldPath, newPath)
}

// migrateSubtree moves the collection subtree rooted at oldPath on
// shard si to newPath on shard di: copy collections shallow-first,
// adopt objects with their state, then delete the source deepest-first.
func (r *Router) migrateSubtree(si, di int, oldPath, newPath string) error {
	src, dst := r.shards[si].cat, r.shards[di].cat
	if _, err := src.GetColl(oldPath); err != nil {
		return err
	}
	if !dst.CollExists(types.Parent(newPath)) {
		return types.E("movecoll", types.Parent(newPath), types.ErrNotFound)
	}
	if dst.CollExists(newPath) {
		return types.E("movecoll", newPath, types.ErrExists)
	}
	if _, err := dst.GetObject(newPath); err == nil {
		return types.E("movecoll", newPath, types.ErrExists)
	}

	colls := append([]string{oldPath}, src.SubColls(oldPath)...)
	sort.Strings(colls) // a parent sorts before its children
	objs := src.SubtreeObjects(oldPath)

	// Pre-flight: nothing may already exist at a destination path, and
	// file-metadata attachments must stay inside the moving subtree
	// (otherwise they would point at objects on another shard).
	for _, p := range append(append([]string(nil), colls...), objs...) {
		np := types.Rebase(oldPath, newPath, p)
		if dst.CollExists(np) {
			return types.E("movecoll", np, types.ErrExists)
		}
		if _, err := dst.GetObject(np); err == nil {
			return types.E("movecoll", np, types.ErrExists)
		}
		for _, fm := range src.FileMeta(p) {
			if !types.WithinOrEqual(oldPath, fm) {
				return types.E("movecoll", p, fmt.Errorf("attached metadata file %s is outside the moving subtree: %w", fm, types.ErrUnsupported))
			}
		}
	}

	// Copy phase. Failures unwind the copies made so far.
	var copiedColls, copiedObjs []string
	undo := func() {
		for i := len(copiedObjs) - 1; i >= 0; i-- {
			dst.DeleteObject(copiedObjs[i])
		}
		for i := len(copiedColls) - 1; i >= 0; i-- {
			dst.DeleteColl(copiedColls[i])
		}
	}
	for _, p := range colls {
		col, err := src.GetColl(p)
		if err != nil {
			undo()
			return err
		}
		np := types.Rebase(oldPath, newPath, p)
		col.Path = np
		if col.LinkTarget != "" {
			col.LinkTarget = types.Rebase(oldPath, newPath, col.LinkTarget)
		}
		if err := dst.AdoptColl(col); err != nil {
			undo()
			return err
		}
		copiedColls = append(copiedColls, np)
		st := src.ExportPathState(p)
		st.FileMeta = rebaseAll(oldPath, newPath, st.FileMeta)
		if err := dst.ImportPathState(np, st); err != nil {
			undo()
			return err
		}
	}
	// Objects: collections (including link targets) now all exist on
	// the destination, so adoption order does not matter. File-meta
	// attachments may point at objects later in the list, so import
	// path state in a second pass.
	for _, p := range objs {
		o, err := src.GetObject(p)
		if err != nil {
			undo()
			return err
		}
		np := types.Rebase(oldPath, newPath, p)
		o.Collection, o.Name = types.Parent(np), types.Base(np)
		if o.Container != "" && types.WithinOrEqual(oldPath, o.Container) {
			o.Container = types.Rebase(oldPath, newPath, o.Container)
		}
		if o.Kind == types.KindLink && types.WithinOrEqual(oldPath, o.LinkTarget) {
			o.LinkTarget = types.Rebase(oldPath, newPath, o.LinkTarget)
		}
		if err := dst.AdoptObject(&o); err != nil {
			undo()
			return err
		}
		copiedObjs = append(copiedObjs, np)
	}
	for _, p := range objs {
		np := types.Rebase(oldPath, newPath, p)
		st := src.ExportPathState(p)
		st.Structural = nil
		st.FileMeta = rebaseAll(oldPath, newPath, st.FileMeta)
		if err := dst.ImportPathState(np, st); err != nil {
			undo()
			return err
		}
	}

	// Delete phase: objects first, then collections deepest-first.
	for _, p := range objs {
		if err := src.DeleteObject(p); err != nil {
			return err
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(colls)))
	for _, p := range colls {
		if err := src.DeleteColl(p); err != nil {
			return err
		}
	}
	return nil
}

func rebaseAll(from, to string, paths []string) []string {
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = types.Rebase(from, to, p)
	}
	return out
}

// migrateKey moves everything under one routing key from shard si to
// shard di in place (same paths). The boot-time rebalance uses it when
// the shard count changes.
func (r *Router) migrateKey(si, di int, key string) error {
	src, dst := r.shards[si].cat, r.shards[di].cat
	var colls []string
	if !Spine(key) && src.CollExists(key) {
		colls = append(colls, key)
	}
	colls = append(colls, src.SubColls(key)...)
	sort.Strings(colls)
	objs := src.SubtreeObjects(key)
	if !Spine(key) {
		if _, err := src.GetObject(key); err == nil {
			objs = append([]string{key}, objs...)
		}
	}
	for _, p := range colls {
		col, err := src.GetColl(p)
		if err != nil {
			return err
		}
		if err := dst.AdoptColl(col); err != nil {
			return err
		}
		if err := dst.ImportPathState(p, src.ExportPathState(p)); err != nil {
			return err
		}
	}
	for _, p := range objs {
		o, err := src.GetObject(p)
		if err != nil {
			return err
		}
		if err := dst.AdoptObject(&o); err != nil {
			return err
		}
	}
	for _, p := range objs {
		st := src.ExportPathState(p)
		st.Structural = nil
		if err := dst.ImportPathState(p, st); err != nil {
			return err
		}
	}
	for _, p := range objs {
		if err := src.DeleteObject(p); err != nil {
			return err
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(colls)))
	for _, p := range colls {
		if err := src.DeleteColl(p); err != nil {
			return err
		}
	}
	return nil
}
