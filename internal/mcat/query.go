package mcat

import (
	"sort"
	"strconv"
	"strings"

	"gosrb/internal/types"
)

// Condition is one conjunct of a metadata query: attribute name,
// comparison operator and comparison value. The operator set matches
// the MySRB query interface: "=,>,<,<=,>=,<>,like, not like" (paper §6).
type Condition struct {
	Attr  string
	Op    string
	Value string
}

// Query describes a conjunctive metadata query. Scope restricts hits to
// one collection subtree ("one can query across collections by being
// above the collections"). Select names attributes whose values are
// returned with each hit, mirroring the interface's fourth column
// check-box. Attributes prefixed "sys:" address system metadata;
// the attribute "annotation" searches commentary text.
type Query struct {
	Scope  string
	Conds  []Condition
	Select []string
	Limit  int // 0 = unlimited
}

// Hit is one query result: the object's path plus requested values.
type Hit struct {
	Path   string
	Values map[string][]string
}

// QueryPartial runs a query and reports which partitions, if any,
// could not answer. A monolithic catalog always answers completely, so
// the partial list is nil; the shard router overrides this with real
// per-shard outcomes. The method exists so every Catalog implementation
// shares one query contract.
func (c *Catalog) QueryPartial(q Query) ([]Hit, []string, error) {
	hits, err := c.RunQuery(q)
	return hits, nil, err
}

// validOps is the operator set of the MySRB query builder.
var validOps = map[string]bool{
	"=": true, "<>": true, ">": true, ">=": true, "<": true, "<=": true,
	"like": true, "not like": true,
}

// SysAttrs lists the queryable system-metadata pseudo-attributes.
func SysAttrs() []string {
	return []string{
		"sys:name", "sys:collection", "sys:owner", "sys:size",
		"sys:datatype", "sys:kind", "sys:container", "sys:replicas",
	}
}

// sysValues returns the values of a system attribute for an object.
func sysValues(o *types.DataObject, attr string) []string {
	switch attr {
	case "sys:name":
		return []string{o.Name}
	case "sys:collection":
		return []string{o.Collection}
	case "sys:owner":
		return []string{o.Owner}
	case "sys:size":
		return []string{strconv.FormatInt(o.Size, 10)}
	case "sys:datatype":
		return []string{o.DataType}
	case "sys:kind":
		return []string{o.Kind.String()}
	case "sys:container":
		if o.Container == "" {
			return nil
		}
		return []string{o.Container}
	case "sys:replicas":
		return []string{strconv.Itoa(len(o.Replicas))}
	default:
		return nil
	}
}

// compareVals orders two attribute values: numerically when both parse
// as numbers, lexicographically otherwise.
func compareVals(a, b string) int {
	af, aerr := strconv.ParseFloat(strings.TrimSpace(a), 64)
	bf, berr := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if aerr == nil && berr == nil {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

// likeMatch is the catalog's LIKE: % any run, _ one char, case-folded.
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			p = strings.TrimLeft(p, "%")
			if p == "" {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if s == "" {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if s == "" || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return s == ""
}

// condSatisfied reports whether any of the values satisfies the
// condition (attributes are multi-valued).
func condSatisfied(values []string, op, want string) bool {
	for _, v := range values {
		switch op {
		case "=":
			if v == want {
				return true
			}
		case "<>":
			if v != want {
				return true
			}
		case ">":
			if compareVals(v, want) > 0 {
				return true
			}
		case ">=":
			if compareVals(v, want) >= 0 {
				return true
			}
		case "<":
			if compareVals(v, want) < 0 {
				return true
			}
		case "<=":
			if compareVals(v, want) <= 0 {
				return true
			}
		case "like":
			if likeMatch(v, want) {
				return true
			}
		case "not like":
			if !likeMatch(v, want) {
				return true
			}
		}
	}
	return false
}

// attrValues gathers an object's values for an attribute: system
// pseudo-attributes, annotation text, or user/type metadata.
// Callers hold at least the read lock.
func (c *Catalog) attrValuesLocked(path string, o *types.DataObject, attr string) []string {
	if strings.HasPrefix(attr, "sys:") {
		return sysValues(o, attr)
	}
	if lowerEq(attr, "annotation") {
		var out []string
		for _, a := range c.annots[path] {
			out = append(out, a.Text)
		}
		return out
	}
	var out []string
	for _, e := range c.meta[path] {
		if queryableClass(e.Class) && lowerEq(e.AVU.Name, attr) {
			out = append(out, e.AVU.Value)
		}
	}
	return out
}

// RunQuery executes a conjunctive query and returns hits sorted by
// path. Equality conditions on user/type attributes narrow through the
// inverted index, keeping latency flat as the catalog grows (E2).
func (c *Catalog) RunQuery(q Query) ([]Hit, error) {
	scope := types.CleanPath(q.Scope)
	for _, cond := range q.Conds {
		if !validOps[strings.ToLower(cond.Op)] {
			return nil, types.E("query", cond.Op, types.ErrInvalid)
		}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()

	// Choose the smallest equality-index candidate set, if any.
	var candidates map[string]bool
	for _, cond := range q.Conds {
		if cond.Op != "=" || strings.HasPrefix(cond.Attr, "sys:") || lowerEq(cond.Attr, "annotation") {
			continue
		}
		vals := c.attrIndex[strings.ToLower(cond.Attr)]
		if vals == nil {
			return nil, nil // indexed attr absent entirely: no hits
		}
		set := vals[cond.Value]
		if candidates == nil || len(set) < len(candidates) {
			candidates = set
		}
	}

	var paths []string
	if candidates != nil {
		for p := range candidates {
			paths = append(paths, p)
		}
	} else {
		for p := range c.objects {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	var hits []Hit
	for _, p := range paths {
		if scope != "/" && !types.Within(scope, p) {
			continue
		}
		o, ok := c.objects[p]
		if !ok {
			continue // candidate may be a collection path
		}
		match := true
		for _, cond := range q.Conds {
			vals := c.attrValuesLocked(p, o, cond.Attr)
			if !condSatisfied(vals, strings.ToLower(cond.Op), cond.Value) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		h := Hit{Path: p}
		if len(q.Select) > 0 {
			h.Values = make(map[string][]string, len(q.Select))
			for _, a := range q.Select {
				h.Values[a] = c.attrValuesLocked(p, o, a)
			}
		}
		hits = append(hits, h)
		if q.Limit > 0 && len(hits) >= q.Limit {
			break
		}
	}
	return hits, nil
}

// QueryAttrNames returns the attribute names queryable within scope:
// every user/type attribute on objects in the subtree plus the
// structural attributes of its collections, for the MySRB drop-down
// menu ("all the metadata names that are queryable in that collection
// and every collection in the hierarchy under the collection").
func (c *Catalog) QueryAttrNames(scope string) []string {
	scope = types.CleanPath(scope)
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := make(map[string]bool)
	for p, entries := range c.meta {
		if scope != "/" && !types.WithinOrEqual(scope, p) {
			continue
		}
		for _, e := range entries {
			if queryableClass(e.Class) {
				seen[strings.ToLower(e.AVU.Name)] = true
			}
		}
	}
	for p, attrs := range c.structural {
		if scope != "/" && !types.WithinOrEqual(scope, p) {
			continue
		}
		for _, a := range attrs {
			seen[strings.ToLower(a.Name)] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
