// Package mcat implements the MCAT metadata catalog, the heart of the
// SRB data grid: the logical name space of collections and data
// objects, the registry of users, groups and storage resources, access
// control lists, the five classes of metadata with a conjunctive query
// engine, annotations, and the audit trail.
//
// The catalog is the single source of truth ("The SRB, in conjunction
// with the Metadata Catalog, supports location transparency by
// accessing data sets and resources based on their attributes rather
// than their names or physical locations"). Brokers hold no state of
// their own.
//
// All state lives behind one RWMutex with secondary indexes (by path,
// by collection, by metadata attribute) so that equality queries stay
// flat as the catalog grows to the paper's "millions of datasets".
package mcat

import (
	"sort"
	"strings"
	"sync"
	"time"

	"gosrb/internal/acl"
	"gosrb/internal/audit"
	"gosrb/internal/types"
)

// metaEntry is one stored metadata triplet with its class.
type metaEntry struct {
	Class types.MetaClass
	AVU   types.AVU
}

// Catalog is an MCAT instance. Safe for concurrent use.
type Catalog struct {
	mu sync.RWMutex

	nextID types.ObjectID
	// idOffset/idStride partition the object-ID space when several
	// catalogs share one namespace (shard i of N allocates IDs ≡ i+1
	// mod N). Zero stride means the default single-catalog allocation.
	idOffset types.ObjectID
	idStride types.ObjectID
	objects  map[string]*types.DataObject // logical path -> object
	byID     map[types.ObjectID]string    // id -> logical path
	colls    map[string]*types.Collection // logical path -> collection

	// children indexes the direct members of each collection:
	// childColls[parent] and childObjs[parent] map base name -> path.
	childColls map[string]map[string]string
	childObjs  map[string]map[string]string

	resources map[string]*types.Resource
	users     map[string]*types.User
	groups    map[string]*types.Group

	acls map[string]acl.List // logical path (or "resource:<name>") -> ACL

	meta       map[string][]metaEntry // path -> metadata triplets
	structural map[string][]types.StructuralAttr
	annots     map[string][]types.Annotation
	fileMeta   map[string][]string // path -> logical paths of metadata-carrying files

	// attrIndex is the inverted metadata index: attribute name ->
	// value -> set of logical paths. Only queryable classes (user,
	// type) are indexed.
	attrIndex map[string]map[string]map[string]bool

	// Audit is the catalog's audit trail.
	Audit *audit.Log

	// journal, when attached, receives every mutation as an append-log
	// entry (see journal.go).
	journal *Journal

	// repairs is the pending background-repair queue, keyed by
	// RepairTask.Key. Enqueue/complete are journaled so the queue
	// survives a daemon restart (see repair.go).
	repairs map[string]*types.RepairTask

	now func() time.Time
}

// New returns a catalog containing only the root collection, owned by
// the given administrator, and the administrator account itself.
func New(adminUser, adminDomain string) *Catalog {
	c := &Catalog{
		nextID:     1,
		objects:    make(map[string]*types.DataObject),
		byID:       make(map[types.ObjectID]string),
		colls:      make(map[string]*types.Collection),
		childColls: make(map[string]map[string]string),
		childObjs:  make(map[string]map[string]string),
		resources:  make(map[string]*types.Resource),
		users:      make(map[string]*types.User),
		groups:     make(map[string]*types.Group),
		acls:       make(map[string]acl.List),
		meta:       make(map[string][]metaEntry),
		structural: make(map[string][]types.StructuralAttr),
		annots:     make(map[string][]types.Annotation),
		fileMeta:   make(map[string][]string),
		attrIndex:  make(map[string]map[string]map[string]bool),
		repairs:    make(map[string]*types.RepairTask),
		Audit:      audit.New(0),
		now:        time.Now,
	}
	c.colls["/"] = &types.Collection{Path: "/", Owner: adminUser, CreatedAt: c.now()}
	c.users[adminUser] = &types.User{Name: adminUser, Domain: adminDomain, Admin: true, CreatedAt: c.now()}
	return c
}

// SetClock overrides the time source (tests).
func (c *Catalog) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// AuditLog returns the catalog's audit trail. Callers that hold a
// Catalog interface value (the shard router satisfies the same
// contract) reach the trail through this accessor rather than the
// concrete Audit field.
func (c *Catalog) AuditLog() *audit.Log { return c.Audit }

// SetIDAlloc partitions object-ID allocation: every ID handed out from
// now on satisfies id ≡ offset (mod stride). Shard i of an N-shard
// catalog uses (i+1, N) so IDs stay unique across shards without
// coordination. stride <= 1 restores the default dense allocation.
func (c *Catalog) SetIDAlloc(offset, stride int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if stride <= 1 {
		c.idOffset, c.idStride = 0, 0
		return
	}
	c.idOffset = types.ObjectID(((offset % stride) + stride) % stride)
	c.idStride = types.ObjectID(stride)
	c.nextID = c.alignIDLocked(c.nextID)
}

// alignIDLocked returns the smallest id >= min in this catalog's ID
// class. With no stride configured it is the identity.
func (c *Catalog) alignIDLocked(min types.ObjectID) types.ObjectID {
	if c.idStride <= 1 {
		return min
	}
	rem := ((min-c.idOffset)%c.idStride + c.idStride) % c.idStride
	if rem == 0 {
		return min
	}
	return min + c.idStride - rem
}

// ---- users and groups ----

// AddUser registers a user.
func (c *Catalog) AddUser(u types.User) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !types.ValidName(u.Name) {
		return types.E("adduser", u.Name, types.ErrInvalid)
	}
	if _, ok := c.users[u.Name]; ok {
		return types.E("adduser", u.Name, types.ErrExists)
	}
	if u.CreatedAt.IsZero() {
		u.CreatedAt = c.now()
	}
	c.users[u.Name] = &u
	c.log(journalEntry{Op: "adduser", User: &u})
	return nil
}

// GetUser returns a user by name.
func (c *Catalog) GetUser(name string) (types.User, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	u, ok := c.users[name]
	if !ok {
		return types.User{}, types.E("getuser", name, types.ErrNotFound)
	}
	return *u, nil
}

// Users lists all users sorted by name.
func (c *Catalog) Users() []types.User {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]types.User, 0, len(c.users))
	for _, u := range c.users {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DeleteUser removes a user account.
func (c *Catalog) DeleteUser(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.users[name]; !ok {
		return types.E("deluser", name, types.ErrNotFound)
	}
	delete(c.users, name)
	for _, g := range c.groups {
		g.Members = removeString(g.Members, name)
	}
	c.log(journalEntry{Op: "deluser", Name: name})
	return nil
}

// AddGroup creates an empty group.
func (c *Catalog) AddGroup(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !types.ValidName(name) {
		return types.E("addgroup", name, types.ErrInvalid)
	}
	if _, ok := c.groups[name]; ok {
		return types.E("addgroup", name, types.ErrExists)
	}
	c.groups[name] = &types.Group{Name: name}
	c.log(journalEntry{Op: "addgroup", Group: name})
	return nil
}

// AddToGroup adds a registered user to a group.
func (c *Catalog) AddToGroup(group, user string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[group]
	if !ok {
		return types.E("addtogroup", group, types.ErrNotFound)
	}
	if _, ok := c.users[user]; !ok {
		return types.E("addtogroup", user, types.ErrNotFound)
	}
	for _, m := range g.Members {
		if m == user {
			return nil
		}
	}
	g.Members = append(g.Members, user)
	c.log(journalEntry{Op: "addtogroup", Group: group, Member: user})
	return nil
}

// RemoveFromGroup drops a user from a group.
func (c *Catalog) RemoveFromGroup(group, user string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.groups[group]
	if !ok {
		return types.E("rmfromgroup", group, types.ErrNotFound)
	}
	g.Members = removeString(g.Members, user)
	c.log(journalEntry{Op: "rmfromgroup", Group: group, Member: user})
	return nil
}

// GroupsOf returns the set of groups user belongs to.
func (c *Catalog) GroupsOf(user string) map[string]bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.groupsOfLocked(user)
}

func (c *Catalog) groupsOfLocked(user string) map[string]bool {
	out := make(map[string]bool)
	for name, g := range c.groups {
		for _, m := range g.Members {
			if m == user {
				out[name] = true
				break
			}
		}
	}
	return out
}

// Groups lists all groups sorted by name.
func (c *Catalog) Groups() []types.Group {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]types.Group, 0, len(c.groups))
	for _, g := range c.groups {
		out = append(out, types.Group{Name: g.Name, Members: append([]string(nil), g.Members...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func removeString(s []string, v string) []string {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

// ---- resources ----

// AddResource registers a storage resource. Logical resources must name
// at least two existing physical members (paper §5: "a logical resource
// that ties together two or more physical resources").
func (c *Catalog) AddResource(r types.Resource) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !types.ValidName(r.Name) {
		return types.E("addresource", r.Name, types.ErrInvalid)
	}
	if _, ok := c.resources[r.Name]; ok {
		return types.E("addresource", r.Name, types.ErrExists)
	}
	if r.Kind == types.ResourceLogical {
		if len(r.Members) < 2 {
			return types.E("addresource", r.Name, types.ErrInvalid)
		}
		if k, _, err := types.ParseReplPolicy(r.ReplPolicy); err != nil {
			return err
		} else if k > len(r.Members) {
			return types.E("addresource", r.ReplPolicy, types.ErrInvalid)
		}
		for _, m := range r.Members {
			mr, ok := c.resources[m]
			if !ok {
				return types.E("addresource", m, types.ErrNotFound)
			}
			if mr.Kind != types.ResourcePhysical {
				return types.E("addresource", m, types.ErrInvalid)
			}
		}
	}
	if r.CreatedAt.IsZero() {
		r.CreatedAt = c.now()
	}
	r.Online = true
	c.resources[r.Name] = &r
	c.log(journalEntry{Op: "addresource", Resource: &r})
	return nil
}

// GetResource returns a resource by name.
func (c *Catalog) GetResource(name string) (types.Resource, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.resources[name]
	if !ok {
		return types.Resource{}, types.E("getresource", name, types.ErrNotFound)
	}
	out := *r
	out.Members = append([]string(nil), r.Members...)
	return out, nil
}

// Resources lists all resources sorted by name.
func (c *Catalog) Resources() []types.Resource {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]types.Resource, 0, len(c.resources))
	for _, r := range c.resources {
		cp := *r
		cp.Members = append([]string(nil), r.Members...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetResourceOnline flips a resource's availability; reads against an
// offline resource fail over to replicas elsewhere (paper §3.4).
func (c *Catalog) SetResourceOnline(name string, online bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.resources[name]
	if !ok {
		return types.E("setonline", name, types.ErrNotFound)
	}
	r.Online = online
	c.log(journalEntry{Op: "setonline", Name: name, Online: online})
	return nil
}

// SetResourcePolicy changes the replication policy of a logical
// resource ("sync", "" or "async:k" with k <= len(members)).
func (c *Catalog) SetResourcePolicy(name, policy string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.resources[name]
	if !ok {
		return types.E("setpolicy", name, types.ErrNotFound)
	}
	if r.Kind != types.ResourceLogical {
		return types.E("setpolicy", name, types.ErrInvalid)
	}
	k, _, err := types.ParseReplPolicy(policy)
	if err != nil {
		return err
	}
	if k > len(r.Members) {
		return types.E("setpolicy", policy, types.ErrInvalid)
	}
	r.ReplPolicy = policy
	c.log(journalEntry{Op: "replpolicy", Name: name, Value: policy})
	return nil
}

// ResolvePhysical expands a resource name to the ordered list of
// physical resources writes must reach: itself for a physical resource,
// every member for a logical one.
func (c *Catalog) ResolvePhysical(name string) ([]types.Resource, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.resources[name]
	if !ok {
		return nil, types.E("resolve", name, types.ErrNotFound)
	}
	if r.Kind == types.ResourcePhysical {
		return []types.Resource{*r}, nil
	}
	out := make([]types.Resource, 0, len(r.Members))
	for _, m := range r.Members {
		mr, ok := c.resources[m]
		if !ok {
			return nil, types.E("resolve", m, types.ErrNotFound)
		}
		out = append(out, *mr)
	}
	return out, nil
}

// DeleteResource removes an unused resource: no replica may reference
// it and no logical resource may list it as a member.
func (c *Catalog) DeleteResource(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.resources[name]; !ok {
		return types.E("delresource", name, types.ErrNotFound)
	}
	for _, r := range c.resources {
		for _, m := range r.Members {
			if m == name {
				return types.E("delresource", name, types.ErrInvalid)
			}
		}
	}
	for _, o := range c.objects {
		for _, rep := range o.Replicas {
			if rep.Resource == name {
				return types.E("delresource", name, types.ErrInvalid)
			}
		}
	}
	delete(c.resources, name)
	c.log(journalEntry{Op: "delresource", Name: name})
	return nil
}

// Stats summarises catalog size.
type Stats struct {
	Objects     int
	Collections int
	Resources   int
	Users       int
	MetaEntries int
}

// Stats returns catalog size counters.
func (c *Catalog) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := Stats{
		Objects:     len(c.objects),
		Collections: len(c.colls),
		Resources:   len(c.resources),
		Users:       len(c.users),
	}
	for _, entries := range c.meta {
		s.MetaEntries += len(entries)
	}
	return s
}

// isAdminLocked reports whether name is an admin account.
func (c *Catalog) isAdminLocked(name string) bool {
	u, ok := c.users[name]
	return ok && u.Admin
}

// IsAdmin reports whether the named user is an administrator.
func (c *Catalog) IsAdmin(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.isAdminLocked(name)
}

// lowerEq is a case-insensitive string equality helper used by query
// attribute matching.
func lowerEq(a, b string) bool { return strings.EqualFold(a, b) }
