package mcat

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gosrb/internal/acl"
	"gosrb/internal/types"
)

// checkInvariants verifies the catalog's internal consistency: every
// secondary index agrees exactly with primary state. The test lives in
// the package so it can inspect unexported fields.
func checkInvariants(t *testing.T, c *Catalog) {
	t.Helper()
	c.mu.RLock()
	defer c.mu.RUnlock()

	// Root exists; every collection's parent exists.
	if _, ok := c.colls["/"]; !ok {
		t.Fatal("invariant: root collection missing")
	}
	for p := range c.colls {
		if p == "/" {
			continue
		}
		if _, ok := c.colls[types.Parent(p)]; !ok {
			t.Errorf("invariant: collection %s has no parent", p)
		}
	}
	// Every object's collection exists; byID is a bijection.
	for p, o := range c.objects {
		if o.Path() != p {
			t.Errorf("invariant: object key %s != path %s", p, o.Path())
		}
		if _, ok := c.colls[o.Collection]; !ok {
			t.Errorf("invariant: object %s in missing collection %s", p, o.Collection)
		}
		if got := c.byID[o.ID]; got != p {
			t.Errorf("invariant: byID[%d] = %q, want %q", o.ID, got, p)
		}
	}
	if len(c.byID) != len(c.objects) {
		t.Errorf("invariant: byID has %d entries, objects %d", len(c.byID), len(c.objects))
	}
	// Child indexes match primary state exactly.
	wantColls := map[string]map[string]string{}
	for p := range c.colls {
		if p == "/" {
			continue
		}
		par := types.Parent(p)
		if wantColls[par] == nil {
			wantColls[par] = map[string]string{}
		}
		wantColls[par][types.Base(p)] = p
	}
	for par, m := range c.childColls {
		for base, p := range m {
			if wantColls[par] == nil || wantColls[par][base] != p {
				t.Errorf("invariant: stale childColls[%s][%s]=%s", par, base, p)
			}
		}
	}
	for par, m := range wantColls {
		for base, p := range m {
			if c.childColls[par] == nil || c.childColls[par][base] != p {
				t.Errorf("invariant: missing childColls[%s][%s]=%s", par, base, p)
			}
		}
	}
	wantObjs := map[string]map[string]string{}
	for p, o := range c.objects {
		if wantObjs[o.Collection] == nil {
			wantObjs[o.Collection] = map[string]string{}
		}
		wantObjs[o.Collection][o.Name] = p
	}
	for par, m := range c.childObjs {
		for base, p := range m {
			if wantObjs[par] == nil || wantObjs[par][base] != p {
				t.Errorf("invariant: stale childObjs[%s][%s]=%s", par, base, p)
			}
		}
	}
	for par, m := range wantObjs {
		for base, p := range m {
			if c.childObjs[par] == nil || c.childObjs[par][base] != p {
				t.Errorf("invariant: missing childObjs[%s][%s]=%s", par, base, p)
			}
		}
	}
	// The attribute index equals a recomputation from the meta store.
	want := map[string]map[string]map[string]bool{}
	for p, entries := range c.meta {
		for _, e := range entries {
			if !queryableClass(e.Class) {
				continue
			}
			name := strings.ToLower(e.AVU.Name)
			if want[name] == nil {
				want[name] = map[string]map[string]bool{}
			}
			if want[name][e.AVU.Value] == nil {
				want[name][e.AVU.Value] = map[string]bool{}
			}
			want[name][e.AVU.Value][p] = true
		}
	}
	for name, vals := range c.attrIndex {
		for val, paths := range vals {
			for p := range paths {
				if want[name] == nil || want[name][val] == nil || !want[name][val][p] {
					t.Errorf("invariant: stale index entry %s=%s -> %s", name, val, p)
				}
			}
		}
	}
	for name, vals := range want {
		for val, paths := range vals {
			for p := range paths {
				if c.attrIndex[name] == nil || c.attrIndex[name][val] == nil || !c.attrIndex[name][val][p] {
					t.Errorf("invariant: missing index entry %s=%s -> %s", name, val, p)
				}
			}
		}
	}
	// Per-path state refers only to live paths.
	for _, m := range []map[string]bool{pathsOf(c.meta), pathsOfA(c.annots), pathsOfS(c.structural), pathsOfF(c.fileMeta)} {
		for p := range m {
			if !c.pathExistsLockedForTest(p) {
				t.Errorf("invariant: orphaned per-path state at %s", p)
			}
		}
	}
}

func pathsOf(m map[string][]metaEntry) map[string]bool {
	out := map[string]bool{}
	for p := range m {
		out[p] = true
	}
	return out
}

func pathsOfA(m map[string][]types.Annotation) map[string]bool {
	out := map[string]bool{}
	for p := range m {
		out[p] = true
	}
	return out
}

func pathsOfS(m map[string][]types.StructuralAttr) map[string]bool {
	out := map[string]bool{}
	for p := range m {
		out[p] = true
	}
	return out
}

func pathsOfF(m map[string][]string) map[string]bool {
	out := map[string]bool{}
	for p := range m {
		out[p] = true
	}
	return out
}

// pathExistsLockedForTest mirrors pathExistsLocked for use under RLock.
func (c *Catalog) pathExistsLockedForTest(p string) bool {
	if _, ok := c.objects[p]; ok {
		return true
	}
	_, ok := c.colls[p]
	return ok
}

// TestRandomOpsPreserveInvariants drives the catalog through random
// operation sequences (with a journal attached) and checks every
// secondary index afterwards — then replays the journal into a fresh
// catalog and checks it reaches an equivalent, equally-consistent state.
func TestRandomOpsPreserveInvariants(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(seed))
			var journal bytes.Buffer
			c := New("admin", "sdsc")
			c.SetJournal(NewJournal(&journal))

			colls := []string{"/"}
			var objs []string
			attrs := []string{"color", "size", "shape"}
			vals := []string{"red", "blue", "big", "small", "round"}

			for step := 0; step < 600; step++ {
				switch rnd.Intn(10) {
				case 0: // new collection
					parent := colls[rnd.Intn(len(colls))]
					p := types.Join(parent, fmt.Sprintf("c%d", step))
					if c.MkColl(p, "admin") == nil {
						colls = append(colls, p)
					}
				case 1, 2: // new object
					parent := colls[rnd.Intn(len(colls))]
					if parent == "/" {
						continue
					}
					o := &types.DataObject{Name: fmt.Sprintf("o%d", step), Collection: parent, Owner: "admin"}
					if _, err := c.RegisterObject(o); err == nil {
						objs = append(objs, o.Path())
					}
				case 3, 4: // add metadata
					if len(objs) == 0 {
						continue
					}
					p := objs[rnd.Intn(len(objs))]
					c.AddMeta(p, types.MetaUser, types.AVU{
						Name:  attrs[rnd.Intn(len(attrs))],
						Value: vals[rnd.Intn(len(vals))],
					})
				case 5: // delete metadata
					if len(objs) == 0 {
						continue
					}
					c.DeleteMeta(objs[rnd.Intn(len(objs))], types.MetaUser, attrs[rnd.Intn(len(attrs))], "")
				case 6: // move an object
					if len(objs) == 0 || len(colls) < 2 {
						continue
					}
					i := rnd.Intn(len(objs))
					dst := colls[rnd.Intn(len(colls))]
					if dst == "/" {
						continue
					}
					newName := fmt.Sprintf("m%d", step)
					if c.MoveObject(objs[i], dst, newName) == nil {
						objs[i] = types.Join(dst, newName)
					}
				case 7: // delete an object
					if len(objs) == 0 {
						continue
					}
					i := rnd.Intn(len(objs))
					if c.DeleteObject(objs[i]) == nil {
						objs = append(objs[:i], objs[i+1:]...)
					}
				case 8: // ACL + annotation
					if len(objs) == 0 {
						continue
					}
					p := objs[rnd.Intn(len(objs))]
					c.SetACL(p, "someone", acl.Level(rnd.Intn(6)))
					c.AddAnnotation(p, types.Annotation{Author: "a", Text: "x"})
				case 9: // move a collection
					if len(colls) < 3 {
						continue
					}
					src := colls[1+rnd.Intn(len(colls)-1)]
					dstParent := colls[rnd.Intn(len(colls))]
					dst := types.Join(dstParent, fmt.Sprintf("mv%d", step))
					if c.MoveColl(src, dst) == nil {
						// Rebuild path books after the subtree move.
						colls = colls[:1]
						for _, p := range c.SubColls("/") {
							colls = append(colls, p)
						}
						objs = c.SubtreeObjects("/")
					}
				}
			}
			checkInvariants(t, c)

			// The journal replays to an equivalent catalog.
			c2 := New("admin", "sdsc")
			if _, err := c2.Replay(bytes.NewReader(journal.Bytes())); err != nil {
				t.Fatalf("replay: %v", err)
			}
			checkInvariants(t, c2)
			if a, b := c.Stats(), c2.Stats(); a != b {
				t.Errorf("replayed stats %+v != original %+v", b, a)
			}
			// Same query results on both.
			for _, attr := range attrs {
				for _, val := range vals {
					q := Query{Scope: "/", Conds: []Condition{{Attr: attr, Op: "=", Value: val}}}
					h1, _ := c.RunQuery(q)
					h2, _ := c2.RunQuery(q)
					if len(h1) != len(h2) {
						t.Errorf("query %s=%s: %d vs %d hits", attr, val, len(h1), len(h2))
					}
				}
			}

			// And a snapshot round trip stays consistent too.
			var snap bytes.Buffer
			if err := c.Save(&snap); err != nil {
				t.Fatal(err)
			}
			c3 := New("admin", "sdsc")
			if err := c3.Load(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatal(err)
			}
			checkInvariants(t, c3)
		})
	}
}
