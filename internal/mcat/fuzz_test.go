package mcat

import (
	"bytes"
	"testing"

	"gosrb/internal/acl"
	"gosrb/internal/types"
)

// FuzzJournalReplay feeds arbitrary bytes — seeded with a real journal
// and with hand-broken variants — through the tolerant replay path.
// Whatever the corruption, replay must never panic and must never
// leave the catalog in a state that fails the invariant checks: a torn
// or hostile journal line may be skipped, but it cannot corrupt the
// indexes of the entries around it.
func FuzzJournalReplay(f *testing.F) {
	// Seed: a journal produced by a representative mutation sequence.
	var buf bytes.Buffer
	c := New("admin", "local")
	c.SetJournal(NewJournal(&buf))
	c.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	c.AddResource(types.Resource{Name: "r1", Kind: types.ResourcePhysical, Driver: "memfs"})
	c.MkColl("/home", "admin")
	c.MkCollAll("/home/alice/deep", "alice")
	c.RegisterObject(&types.DataObject{Collection: "/home/alice", Name: "f.txt", Owner: "alice", DataType: "generic"})
	c.AddMeta("/home/alice/f.txt", types.MetaUser, types.AVU{Name: "a", Value: "1"})
	c.SetACL("/home/alice", "alice", acl.Own)
	c.AddAnnotation("/home/alice/f.txt", types.Annotation{Author: "alice", Text: "note"})
	c.MoveObject("/home/alice/f.txt", "/home/alice/deep", "g.txt")
	c.DeleteObject("/home/alice/deep/g.txt")
	full := buf.Bytes()
	f.Add(full)

	// Truncated mid-line, duplicated, and spliced variants.
	if len(full) > 10 {
		f.Add(full[:len(full)-7])
		f.Add(append(append([]byte(nil), full...), full[:len(full)/2]...))
	}
	f.Add([]byte("{\"op\":\"mkcoll\"}\n"))
	f.Add([]byte("{\"op\":\"register\",\"obj\":{\"ID\":0}}\n"))
	f.Add([]byte("not json at all\n\x00\xff{\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c := New("admin", "local")
		if _, err := c.ReplayCounted(bytes.NewReader(data)); err != nil {
			// I/O-level errors (oversized lines) are fine; panics are not.
			return
		}
		checkInvariants(t, c)
	})
}
