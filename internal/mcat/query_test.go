package mcat

import (
	"errors"
	"fmt"
	"testing"

	"gosrb/internal/types"
)

// seedQuery builds a small library with varied metadata.
func seedQuery(t *testing.T) *Catalog {
	t.Helper()
	c := newCat(t)
	mustMkColl(t, c, "/lib", "admin")
	mustMkColl(t, c, "/lib/a", "admin")
	mustMkColl(t, c, "/lib/b", "admin")
	mustMkColl(t, c, "/other", "admin")
	add := func(coll, name, survey, band string, mag float64) {
		mustRegister(t, c, coll, name, "u")
		p := coll + "/" + name
		c.AddMeta(p, types.MetaUser, types.AVU{Name: "survey", Value: survey})
		c.AddMeta(p, types.MetaUser, types.AVU{Name: "band", Value: band})
		c.AddMeta(p, types.MetaUser, types.AVU{Name: "mag", Value: fmt.Sprintf("%.1f", mag)})
	}
	add("/lib/a", "m31.fits", "2mass", "J", 3.4)
	add("/lib/a", "m42.fits", "2mass", "K", 4.0)
	add("/lib/b", "ngc253.fits", "dposs", "J", 7.1)
	add("/lib/b", "m51.fits", "dposs", "H", 8.4)
	add("/other", "x.fits", "2mass", "J", 9.9)
	return c
}

func paths(hits []Hit) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.Path
	}
	return out
}

func TestQueryEquality(t *testing.T) {
	c := seedQuery(t)
	hits, err := c.RunQuery(Query{Scope: "/lib", Conds: []Condition{{Attr: "survey", Op: "=", Value: "2mass"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Errorf("hits = %v", paths(hits))
	}
	// Scope excludes /other even though it matches.
	for _, h := range hits {
		if !types.Within("/lib", h.Path) {
			t.Errorf("hit outside scope: %s", h.Path)
		}
	}
	// Root scope sees everything.
	hits, _ = c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "survey", Op: "=", Value: "2mass"}}})
	if len(hits) != 3 {
		t.Errorf("root hits = %v", paths(hits))
	}
}

func TestQueryConjunction(t *testing.T) {
	c := seedQuery(t)
	hits, _ := c.RunQuery(Query{Scope: "/lib", Conds: []Condition{
		{Attr: "survey", Op: "=", Value: "2mass"},
		{Attr: "band", Op: "=", Value: "J"},
	}})
	if len(hits) != 1 || hits[0].Path != "/lib/a/m31.fits" {
		t.Errorf("AND hits = %v", paths(hits))
	}
}

func TestQueryOperators(t *testing.T) {
	c := seedQuery(t)
	cases := []struct {
		cond Condition
		want int
	}{
		{Condition{"mag", ">", "4.0"}, 2},
		{Condition{"mag", ">=", "4.0"}, 3},
		{Condition{"mag", "<", "4.0"}, 1},
		{Condition{"mag", "<=", "7.1"}, 3},
		{Condition{"survey", "<>", "2mass"}, 2},
		{Condition{"sys:name", "like", "m%.fits"}, 3},
		{Condition{"sys:name", "not like", "m%"}, 1},
		{Condition{"band", "like", "j"}, 2}, // LIKE is case-insensitive
	}
	for _, tc := range cases {
		hits, err := c.RunQuery(Query{Scope: "/lib", Conds: []Condition{tc.cond}})
		if err != nil {
			t.Fatalf("%+v: %v", tc.cond, err)
		}
		if len(hits) != tc.want {
			t.Errorf("%+v: got %d hits %v, want %d", tc.cond, len(hits), paths(hits), tc.want)
		}
	}
}

func TestQuerySystemAttrs(t *testing.T) {
	c := seedQuery(t)
	hits, _ := c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "sys:collection", Op: "=", Value: "/lib/a"}}})
	if len(hits) != 2 {
		t.Errorf("sys:collection hits = %v", paths(hits))
	}
	hits, _ = c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "sys:owner", Op: "=", Value: "u"}}})
	if len(hits) != 5 {
		t.Errorf("sys:owner hits = %v", paths(hits))
	}
	// Size: all registered with size 0.
	hits, _ = c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "sys:size", Op: "<=", Value: "0"}}})
	if len(hits) != 5 {
		t.Errorf("sys:size hits = %v", paths(hits))
	}
}

func TestQueryAnnotations(t *testing.T) {
	c := seedQuery(t)
	c.AddAnnotation("/lib/a/m31.fits", types.Annotation{Author: "bob", Text: "the Andromeda galaxy"})
	hits, _ := c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "annotation", Op: "like", Value: "%andromeda%"}}})
	if len(hits) != 1 || hits[0].Path != "/lib/a/m31.fits" {
		t.Errorf("annotation hits = %v", paths(hits))
	}
}

func TestQuerySelectValues(t *testing.T) {
	c := seedQuery(t)
	hits, _ := c.RunQuery(Query{
		Scope:  "/lib",
		Conds:  []Condition{{Attr: "band", Op: "=", Value: "H"}},
		Select: []string{"mag", "sys:name", "missing"},
	})
	if len(hits) != 1 {
		t.Fatalf("hits = %v", paths(hits))
	}
	v := hits[0].Values
	if len(v["mag"]) != 1 || v["mag"][0] != "8.4" {
		t.Errorf("mag = %v", v["mag"])
	}
	if len(v["sys:name"]) != 1 || v["sys:name"][0] != "m51.fits" {
		t.Errorf("sys:name = %v", v["sys:name"])
	}
	if len(v["missing"]) != 0 {
		t.Errorf("missing attr = %v", v["missing"])
	}
}

func TestQueryLimitAndDeterminism(t *testing.T) {
	c := seedQuery(t)
	hits, _ := c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "sys:owner", Op: "=", Value: "u"}}, Limit: 2})
	if len(hits) != 2 {
		t.Fatalf("limit hits = %v", paths(hits))
	}
	// Deterministic order: sorted by path.
	h1, _ := c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "survey", Op: "=", Value: "2mass"}}})
	h2, _ := c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "survey", Op: "=", Value: "2mass"}}})
	for i := range h1 {
		if h1[i].Path != h2[i].Path {
			t.Error("query order must be deterministic")
		}
	}
}

func TestQueryBadOperator(t *testing.T) {
	c := seedQuery(t)
	if _, err := c.RunQuery(Query{Conds: []Condition{{Attr: "a", Op: "~", Value: "x"}}}); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("bad op: %v", err)
	}
}

func TestQueryUnknownAttr(t *testing.T) {
	c := seedQuery(t)
	hits, err := c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "nonexistent", Op: "=", Value: "x"}}})
	if err != nil || len(hits) != 0 {
		t.Errorf("unknown attr = %v, %v", paths(hits), err)
	}
}

func TestQueryCaseInsensitiveAttrNames(t *testing.T) {
	c := seedQuery(t)
	hits, _ := c.RunQuery(Query{Scope: "/lib", Conds: []Condition{{Attr: "SURVEY", Op: "=", Value: "dposs"}}})
	if len(hits) != 2 {
		t.Errorf("case-insensitive attr = %v", paths(hits))
	}
}

func TestQueryAttrNames(t *testing.T) {
	c := seedQuery(t)
	c.SetStructural("/lib", types.StructuralAttr{Name: "curator-note"})
	names := c.QueryAttrNames("/lib")
	want := map[string]bool{"survey": true, "band": true, "mag": true, "curator-note": true}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected attr %q", n)
		}
	}
	// Scoped: /other only has object attrs.
	names = c.QueryAttrNames("/other")
	if len(names) != 3 {
		t.Errorf("scoped names = %v", names)
	}
}

func TestQueryMultiValuedAttr(t *testing.T) {
	c := seedQuery(t)
	// An object with two values for one attr matches either.
	c.AddMeta("/lib/a/m31.fits", types.MetaUser, types.AVU{Name: "band", Value: "H"})
	hits, _ := c.RunQuery(Query{Scope: "/lib", Conds: []Condition{{Attr: "band", Op: "=", Value: "H"}}})
	if len(hits) != 2 {
		t.Errorf("multi-value hits = %v", paths(hits))
	}
}

func TestQueryDeletedObjectGone(t *testing.T) {
	c := seedQuery(t)
	c.DeleteObject("/lib/a/m31.fits")
	hits, _ := c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "band", Op: "=", Value: "J"}}})
	for _, h := range hits {
		if h.Path == "/lib/a/m31.fits" {
			t.Error("deleted object still in index")
		}
	}
}
