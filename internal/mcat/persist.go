package mcat

import (
	"encoding/json"
	"io"
	"os"

	"gosrb/internal/acl"
	"gosrb/internal/types"
)

// snapshot is the JSON-serialisable image of the catalog. Secondary
// indexes (children, byID, attribute index) are rebuilt at load.
type snapshot struct {
	Version    int
	NextID     types.ObjectID
	Objects    map[string]*types.DataObject
	Colls      map[string]*types.Collection
	Resources  map[string]*types.Resource
	Users      map[string]*types.User
	Groups     map[string]*types.Group
	ACLs       map[string]acl.List
	Meta       map[string][]metaEntry
	Structural map[string][]types.StructuralAttr
	Annots     map[string][]types.Annotation
	FileMeta   map[string][]string
	Repairs    map[string]*types.RepairTask `json:",omitempty"`
}

// snapshotVersion guards format evolution.
const snapshotVersion = 1

// Save writes a consistent snapshot of the catalog as JSON.
func (c *Catalog) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := snapshot{
		Version:    snapshotVersion,
		NextID:     c.nextID,
		Objects:    c.objects,
		Colls:      c.colls,
		Resources:  c.resources,
		Users:      c.users,
		Groups:     c.groups,
		ACLs:       c.acls,
		Meta:       c.meta,
		Structural: c.structural,
		Annots:     c.annots,
		FileMeta:   c.fileMeta,
		Repairs:    c.repairs,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&s)
}

// Load replaces the catalog contents with a snapshot previously written
// by Save, rebuilding every secondary index.
func (c *Catalog) Load(r io.Reader) error {
	var s snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return types.E("load", "", err)
	}
	if s.Version != snapshotVersion {
		return types.E("load", "", types.ErrInvalid)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID = c.alignIDLocked(s.NextID)
	c.objects = orEmptyObjects(s.Objects)
	c.colls = orEmptyColls(s.Colls)
	c.resources = orEmptyResources(s.Resources)
	c.users = orEmptyUsers(s.Users)
	c.groups = orEmptyGroups(s.Groups)
	c.acls = s.ACLs
	if c.acls == nil {
		c.acls = make(map[string]acl.List)
	}
	c.meta = s.Meta
	if c.meta == nil {
		c.meta = make(map[string][]metaEntry)
	}
	c.structural = s.Structural
	if c.structural == nil {
		c.structural = make(map[string][]types.StructuralAttr)
	}
	c.annots = s.Annots
	if c.annots == nil {
		c.annots = make(map[string][]types.Annotation)
	}
	c.fileMeta = s.FileMeta
	if c.fileMeta == nil {
		c.fileMeta = make(map[string][]string)
	}
	c.repairs = s.Repairs
	if c.repairs == nil {
		c.repairs = make(map[string]*types.RepairTask)
	}
	if _, ok := c.colls["/"]; !ok {
		c.colls["/"] = &types.Collection{Path: "/"}
	}
	c.rebuildIndexesLocked()
	return nil
}

func orEmptyObjects(m map[string]*types.DataObject) map[string]*types.DataObject {
	if m == nil {
		return make(map[string]*types.DataObject)
	}
	return m
}

func orEmptyColls(m map[string]*types.Collection) map[string]*types.Collection {
	if m == nil {
		return make(map[string]*types.Collection)
	}
	return m
}

func orEmptyResources(m map[string]*types.Resource) map[string]*types.Resource {
	if m == nil {
		return make(map[string]*types.Resource)
	}
	return m
}

func orEmptyUsers(m map[string]*types.User) map[string]*types.User {
	if m == nil {
		return make(map[string]*types.User)
	}
	return m
}

func orEmptyGroups(m map[string]*types.Group) map[string]*types.Group {
	if m == nil {
		return make(map[string]*types.Group)
	}
	return m
}

// rebuildIndexesLocked reconstructs byID, the child indexes and the
// attribute index from primary state. Callers hold the write lock.
func (c *Catalog) rebuildIndexesLocked() {
	c.byID = make(map[types.ObjectID]string, len(c.objects))
	c.childColls = make(map[string]map[string]string)
	c.childObjs = make(map[string]map[string]string)
	c.attrIndex = make(map[string]map[string]map[string]bool)
	for p := range c.colls {
		if p == "/" {
			continue
		}
		c.addChildColl(types.Parent(p), p)
	}
	for p, o := range c.objects {
		c.byID[o.ID] = p
		c.addChildObj(o.Collection, p)
		if o.ID >= c.nextID {
			c.nextID = o.ID + 1
		}
	}
	for p, entries := range c.meta {
		for _, e := range entries {
			if queryableClass(e.Class) {
				c.indexAdd(e.AVU.Name, e.AVU.Value, p)
			}
		}
	}
}

// SaveFile snapshots the catalog to path atomically.
func (c *Catalog) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return types.E("save", path, err)
	}
	if err := c.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return types.E("save", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return types.E("save", path, err)
	}
	return types.E("save", path, os.Rename(tmp, path))
}

// LoadFile loads a snapshot from path.
func (c *Catalog) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return types.E("load", path, err)
	}
	defer f.Close()
	return c.Load(f)
}
