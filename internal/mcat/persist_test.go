package mcat

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"gosrb/internal/acl"
	"gosrb/internal/types"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	c := newCat(t)
	c.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	c.AddGroup("curators")
	c.AddToGroup("curators", "alice")
	c.AddResource(types.Resource{Name: "d1", Kind: types.ResourcePhysical, Driver: "memfs"})
	c.AddResource(types.Resource{Name: "d2", Kind: types.ResourcePhysical, Driver: "memfs"})
	c.AddResource(types.Resource{Name: "lr", Kind: types.ResourceLogical, Members: []string{"d1", "d2"}})
	mustMkColl(t, c, "/proj", "alice")
	mustRegister(t, c, "/proj", "f", "alice")
	c.AddMeta("/proj/f", types.MetaUser, types.AVU{Name: "color", Value: "red"})
	c.SetACL("/proj", "alice", acl.Own)
	c.SetStructural("/proj", types.StructuralAttr{Name: "need", Mandatory: true})
	c.AddAnnotation("/proj/f", types.Annotation{Author: "alice", Text: "note"})

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}

	c2 := New("admin", "sdsc")
	if err := c2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Namespace restored.
	o, err := c2.GetObject("/proj/f")
	if err != nil || o.Owner != "alice" {
		t.Fatalf("object after load: %+v, %v", o, err)
	}
	// Secondary indexes rebuilt: listing, query, byID.
	stats, err := c2.ListColl("/proj")
	if err != nil || len(stats) != 1 {
		t.Errorf("list after load = %+v, %v", stats, err)
	}
	hits, _ := c2.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "color", Op: "=", Value: "red"}}})
	if len(hits) != 1 {
		t.Errorf("query after load = %+v", hits)
	}
	if _, err := c2.GetObjectByID(o.ID); err != nil {
		t.Errorf("byID after load: %v", err)
	}
	// Users, groups, resources, ACLs, structural, annotations survive.
	if _, err := c2.GetUser("alice"); err != nil {
		t.Error("user lost")
	}
	if !c2.GroupsOf("alice")["curators"] {
		t.Error("group lost")
	}
	if _, err := c2.GetResource("lr"); err != nil {
		t.Error("resource lost")
	}
	if got := c2.EffectiveLevel("/proj/f", "alice"); got < acl.Own {
		t.Errorf("ACL lost: %v", got)
	}
	if len(c2.Structural("/proj")) != 1 {
		t.Error("structural lost")
	}
	if anns, _ := c2.Annotations("/proj/f"); len(anns) != 1 {
		t.Error("annotations lost")
	}
	// New registrations continue from a fresh ID.
	id2 := mustRegister(t, c2, "/proj", "g", "alice")
	if id2 <= o.ID {
		t.Errorf("nextID not restored: %d <= %d", id2, o.ID)
	}
}

func TestSaveLoadFile(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/x", "admin")
	p := filepath.Join(t.TempDir(), "mcat.json")
	if err := c.SaveFile(p); err != nil {
		t.Fatal(err)
	}
	c2 := New("admin", "sdsc")
	if err := c2.LoadFile(p); err != nil {
		t.Fatal(err)
	}
	if !c2.CollExists("/x") {
		t.Error("collection lost in file round trip")
	}
	if err := c2.LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading missing file should fail")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	c := newCat(t)
	if err := c.Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if err := c.Load(strings.NewReader(`{"Version": 99}`)); err == nil {
		t.Error("wrong version should fail")
	}
}
