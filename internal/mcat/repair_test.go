package mcat

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"gosrb/internal/types"
)

func TestRepairQueueBasics(t *testing.T) {
	c := New("admin", "sdsc")
	if n, oldest := c.RepairBacklog(); n != 0 || !oldest.IsZero() {
		t.Fatalf("fresh backlog = %d, %v", n, oldest)
	}
	if !c.EnqueueRepair(types.RepairTask{Path: "/d/f", Resource: "r1", Kind: "replicate"}) {
		t.Fatal("first enqueue rejected")
	}
	// Same path+resource dedups, regardless of kind or reason.
	if c.EnqueueRepair(types.RepairTask{Path: "/d/f", Resource: "r1", Kind: "repair", Reason: "again"}) {
		t.Fatal("duplicate enqueue accepted")
	}
	if !c.EnqueueRepair(types.RepairTask{Path: "/d/f", Resource: "r2", Kind: "replicate"}) {
		t.Fatal("distinct resource treated as duplicate")
	}
	pending := c.PendingRepairs()
	if len(pending) != 2 {
		t.Fatalf("pending = %d tasks, want 2", len(pending))
	}
	for _, p := range pending {
		if p.Key == "" || p.Enqueued.IsZero() {
			t.Errorf("task missing key or enqueue time: %+v", p)
		}
	}

	key := types.RepairKey("/d/f", "r1")
	if got := c.NoteRepairAttempt(key); got != 1 {
		t.Errorf("attempt count = %d, want 1", got)
	}
	if got := c.NoteRepairAttempt("no|such"); got != 0 {
		t.Errorf("attempt on unknown key = %d, want 0", got)
	}
	if !c.CompleteRepair(key) {
		t.Fatal("complete of pending key failed")
	}
	if c.CompleteRepair(key) {
		t.Fatal("double complete reported success")
	}
	if n, _ := c.RepairBacklog(); n != 1 {
		t.Fatalf("backlog after complete = %d, want 1", n)
	}
}

func TestRepairQueuePendingOrder(t *testing.T) {
	c := New("admin", "sdsc")
	base := time.Now()
	c.EnqueueRepair(types.RepairTask{Path: "/b", Resource: "r", Enqueued: base.Add(time.Second)})
	c.EnqueueRepair(types.RepairTask{Path: "/a", Resource: "r", Enqueued: base.Add(2 * time.Second)})
	c.EnqueueRepair(types.RepairTask{Path: "/c", Resource: "r", Enqueued: base})
	got := c.PendingRepairs()
	want := []string{"/c", "/b", "/a"} // oldest first
	for i, p := range got {
		if p.Path != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if n, oldest := c.RepairBacklog(); n != 3 || !oldest.Equal(base) {
		t.Errorf("backlog = %d oldest=%v, want 3 oldest=%v", n, oldest, base)
	}
}

func TestJournalReplaysRepairQueue(t *testing.T) {
	c1, c2 := journalRoundTrip(t, func(c *Catalog) {
		c.EnqueueRepair(types.RepairTask{Path: "/d/keep", Resource: "r1", Kind: "replicate", Reason: "async fan-out"})
		c.EnqueueRepair(types.RepairTask{Path: "/d/done", Resource: "r1", Kind: "repair"})
		c.NoteRepairAttempt(types.RepairKey("/d/keep", "r1"))
		c.NoteRepairAttempt(types.RepairKey("/d/keep", "r1"))
		c.CompleteRepair(types.RepairKey("/d/done", "r1"))
	})
	p1, p2 := c1.PendingRepairs(), c2.PendingRepairs()
	if len(p1) != 1 || len(p2) != 1 {
		t.Fatalf("pending after replay: orig %d, replayed %d, want 1 each", len(p1), len(p2))
	}
	if p2[0].Key != p1[0].Key || p2[0].Kind != "replicate" || p2[0].Reason != "async fan-out" {
		t.Errorf("replayed task = %+v, want %+v", p2[0], p1[0])
	}
	// The attempt-count re-log overwrote the original entry on replay.
	if p2[0].Attempts != 2 {
		t.Errorf("replayed attempts = %d, want 2", p2[0].Attempts)
	}
}

func TestSnapshotCarriesRepairQueue(t *testing.T) {
	c1 := New("admin", "sdsc")
	c1.EnqueueRepair(types.RepairTask{Path: "/d/f", Resource: "r1", Kind: "replicate"})
	c1.NoteRepairAttempt(types.RepairKey("/d/f", "r1"))
	var snap bytes.Buffer
	if err := c1.Save(&snap); err != nil {
		t.Fatal(err)
	}
	c2 := New("admin", "sdsc")
	if err := c2.Load(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	p := c2.PendingRepairs()
	if len(p) != 1 || p[0].Key != types.RepairKey("/d/f", "r1") || p[0].Attempts != 1 {
		t.Fatalf("queue after snapshot round-trip = %+v", p)
	}
}

func TestResourcePolicy(t *testing.T) {
	c := New("admin", "sdsc")
	for _, r := range []string{"p1", "p2", "p3"} {
		if err := c.AddResource(types.Resource{Name: r, Kind: types.ResourcePhysical, Driver: "memfs"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddResource(types.Resource{
		Name: "lr", Kind: types.ResourceLogical, Members: []string{"p1", "p2", "p3"}, ReplPolicy: "async:2",
	}); err != nil {
		t.Fatalf("logical with policy: %v", err)
	}
	// k must not exceed the member count.
	if err := c.AddResource(types.Resource{
		Name: "bad", Kind: types.ResourceLogical, Members: []string{"p1", "p2"}, ReplPolicy: "async:3",
	}); !errors.Is(err, types.ErrInvalid) {
		t.Fatalf("oversized k accepted: %v", err)
	}
	if err := c.SetResourcePolicy("lr", "garbage"); !errors.Is(err, types.ErrInvalid) {
		t.Fatalf("garbage policy accepted: %v", err)
	}
	if err := c.SetResourcePolicy("p1", "sync"); !errors.Is(err, types.ErrInvalid) {
		t.Fatalf("policy on physical resource accepted: %v", err)
	}
	if err := c.SetResourcePolicy("lr", "async:1"); err != nil {
		t.Fatalf("SetResourcePolicy: %v", err)
	}
	if r, _ := c.GetResource("lr"); r.ReplPolicy != "async:1" {
		t.Errorf("policy = %q, want async:1", r.ReplPolicy)
	}
}

func TestJournalReplaysReplPolicy(t *testing.T) {
	_, c2 := journalRoundTrip(t, func(c *Catalog) {
		c.AddResource(types.Resource{Name: "p1", Kind: types.ResourcePhysical, Driver: "memfs"})
		c.AddResource(types.Resource{Name: "p2", Kind: types.ResourcePhysical, Driver: "memfs"})
		c.AddResource(types.Resource{Name: "lr", Kind: types.ResourceLogical, Members: []string{"p1", "p2"}})
		c.SetResourcePolicy("lr", "async:1")
	})
	r, err := c2.GetResource("lr")
	if err != nil || r.ReplPolicy != "async:1" {
		t.Fatalf("replayed policy = %q, %v, want async:1", r.ReplPolicy, err)
	}
}
