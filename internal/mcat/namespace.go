package mcat

import (
	"sort"

	"gosrb/internal/types"
)

// ---- collections ----

// MkColl creates a collection whose parent must already exist.
func (c *Catalog) MkColl(path, owner string) error {
	path = types.CleanPath(path)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.mkCollLocked(path, owner); err != nil {
		return err
	}
	c.log(journalEntry{Op: "mkcoll", Coll: c.colls[path]})
	return nil
}

func (c *Catalog) mkCollLocked(path, owner string) error {
	if path == "/" {
		return types.E("mkcoll", path, types.ErrExists)
	}
	if !types.ValidName(types.Base(path)) {
		return types.E("mkcoll", path, types.ErrInvalid)
	}
	if _, ok := c.colls[path]; ok {
		return types.E("mkcoll", path, types.ErrExists)
	}
	if _, ok := c.objects[path]; ok {
		return types.E("mkcoll", path, types.ErrExists)
	}
	parent := types.Parent(path)
	if _, ok := c.colls[parent]; !ok {
		return types.E("mkcoll", parent, types.ErrNotFound)
	}
	c.colls[path] = &types.Collection{Path: path, Owner: owner, CreatedAt: c.now()}
	c.addChildColl(parent, path)
	return nil
}

// MkCollAll creates a collection and any missing ancestors.
func (c *Catalog) MkCollAll(path, owner string) error {
	path = types.CleanPath(path)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range append(types.Ancestors(path), path) {
		if a == "/" {
			continue
		}
		if _, ok := c.colls[a]; ok {
			continue
		}
		if err := c.mkCollLocked(a, owner); err != nil {
			return err
		}
		c.log(journalEntry{Op: "mkcoll", Coll: c.colls[a]})
	}
	return nil
}

func (c *Catalog) addChildColl(parent, child string) {
	m := c.childColls[parent]
	if m == nil {
		m = make(map[string]string)
		c.childColls[parent] = m
	}
	m[types.Base(child)] = child
}

func (c *Catalog) addChildObj(parent, child string) {
	m := c.childObjs[parent]
	if m == nil {
		m = make(map[string]string)
		c.childObjs[parent] = m
	}
	m[types.Base(child)] = child
}

// GetColl returns a collection, resolving nothing: links are returned
// as stored (LinkTarget set).
func (c *Catalog) GetColl(path string) (types.Collection, error) {
	path = types.CleanPath(path)
	c.mu.RLock()
	defer c.mu.RUnlock()
	col, ok := c.colls[path]
	if !ok {
		return types.Collection{}, types.E("getcoll", path, types.ErrNotFound)
	}
	return *col, nil
}

// ResolveColl follows linked sub-collections (one hop; chains are
// prevented at link time) and returns the effective collection path.
func (c *Catalog) ResolveColl(path string) (string, error) {
	path = types.CleanPath(path)
	c.mu.RLock()
	defer c.mu.RUnlock()
	col, ok := c.colls[path]
	if !ok {
		return "", types.E("resolvecoll", path, types.ErrNotFound)
	}
	if col.LinkTarget != "" {
		if _, ok := c.colls[col.LinkTarget]; !ok {
			return "", types.E("resolvecoll", col.LinkTarget, types.ErrNotFound)
		}
		return col.LinkTarget, nil
	}
	return path, nil
}

// LinkColl registers linkPath as a linked sub-collection pointing at
// target. Linking to a link collapses to the parent (paper §5: "An
// attempt to link to another link object will result in a direct link
// to the parent object").
func (c *Catalog) LinkColl(target, linkPath, owner string) error {
	target, linkPath = types.CleanPath(target), types.CleanPath(linkPath)
	c.mu.Lock()
	defer c.mu.Unlock()
	tc, ok := c.colls[target]
	if !ok {
		return types.E("linkcoll", target, types.ErrNotFound)
	}
	if tc.LinkTarget != "" {
		target = tc.LinkTarget
	}
	if types.WithinOrEqual(target, linkPath) {
		return types.E("linkcoll", linkPath, types.ErrInvalid)
	}
	if err := c.mkCollLocked(linkPath, owner); err != nil {
		return err
	}
	c.colls[linkPath].LinkTarget = target
	c.log(journalEntry{Op: "linkcoll", Coll: c.colls[linkPath]})
	return nil
}

// ListColl lists the direct members of a collection: sub-collections
// first, then objects, each sorted by name.
func (c *Catalog) ListColl(path string) ([]types.Stat, error) {
	path = types.CleanPath(path)
	c.mu.RLock()
	defer c.mu.RUnlock()
	col, ok := c.colls[path]
	if !ok {
		return nil, types.E("list", path, types.ErrNotFound)
	}
	if col.LinkTarget != "" {
		path = col.LinkTarget
	}
	var out []types.Stat
	for _, p := range sortedVals(c.childColls[path]) {
		sub := c.colls[p]
		st := types.Stat{Path: p, IsCollect: true, Owner: sub.Owner, ModifiedAt: sub.CreatedAt}
		out = append(out, st)
	}
	for _, p := range sortedVals(c.childObjs[path]) {
		o := c.objects[p]
		out = append(out, statOf(o))
	}
	return out, nil
}

func statOf(o *types.DataObject) types.Stat {
	return types.Stat{
		Path:       o.Path(),
		Kind:       o.Kind,
		DataType:   o.DataType,
		Owner:      o.Owner,
		Size:       o.Size,
		ModifiedAt: o.ModifiedAt,
		Replicas:   len(o.Replicas),
		Container:  o.Container,
	}
}

func sortedVals(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// DeleteColl removes an empty collection (or a linked sub-collection,
// which never "contains" anything of its own).
func (c *Catalog) DeleteColl(path string) error {
	path = types.CleanPath(path)
	c.mu.Lock()
	defer c.mu.Unlock()
	col, ok := c.colls[path]
	if !ok {
		return types.E("rmcoll", path, types.ErrNotFound)
	}
	if path == "/" {
		return types.E("rmcoll", path, types.ErrInvalid)
	}
	if col.LinkTarget == "" {
		if len(c.childColls[path]) > 0 || len(c.childObjs[path]) > 0 {
			return types.E("rmcoll", path, types.ErrNotEmpty)
		}
	}
	delete(c.colls, path)
	c.removeChildColl(types.Parent(path), path)
	c.dropPathState(path)
	c.log(journalEntry{Op: "rmcoll", Path: path})
	return nil
}

func (c *Catalog) removeChildColl(parent, child string) {
	if m := c.childColls[parent]; m != nil {
		delete(m, types.Base(child))
	}
}

func (c *Catalog) removeChildObj(parent, child string) {
	if m := c.childObjs[parent]; m != nil {
		delete(m, types.Base(child))
	}
}

// CollExists reports whether path is a collection.
func (c *Catalog) CollExists(path string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.colls[types.CleanPath(path)]
	return ok
}

// SubColls returns every collection strictly under root, sorted.
func (c *Catalog) SubColls(root string) []string {
	root = types.CleanPath(root)
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for p := range c.colls {
		if types.Within(root, p) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ---- objects ----

// RegisterObject enters a new data object into the catalog, assigning
// its ID. The parent collection must exist and the name must be free.
func (c *Catalog) RegisterObject(o *types.DataObject) (types.ObjectID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	o.Collection = types.CleanPath(o.Collection)
	if !types.ValidName(o.Name) {
		return 0, types.E("register", o.Name, types.ErrInvalid)
	}
	col, ok := c.colls[o.Collection]
	if !ok {
		return 0, types.E("register", o.Collection, types.ErrNotFound)
	}
	if col.LinkTarget != "" {
		o.Collection = col.LinkTarget
	}
	path := o.Path()
	if _, ok := c.objects[path]; ok {
		return 0, types.E("register", path, types.ErrExists)
	}
	if _, ok := c.colls[path]; ok {
		return 0, types.E("register", path, types.ErrExists)
	}
	o.ID = c.nextID
	c.nextID = c.alignIDLocked(c.nextID + 1)
	if o.CreatedAt.IsZero() {
		o.CreatedAt = c.now()
	}
	if o.ModifiedAt.IsZero() {
		o.ModifiedAt = o.CreatedAt
	}
	cp := cloneObject(o)
	c.objects[path] = cp
	c.byID[cp.ID] = path
	c.addChildObj(o.Collection, path)
	c.log(journalEntry{Op: "register", Object: cp})
	return cp.ID, nil
}

// AdoptObject registers a fully-formed object preserving its identity
// (ID, replicas, timestamps) — the receiving side of a cross-shard
// migration. Unlike RegisterObject it allocates nothing; the entry is
// journaled as a "register" of the whole object so replay restores it
// exactly.
func (c *Catalog) AdoptObject(o *types.DataObject) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	o.Collection = types.CleanPath(o.Collection)
	if !types.ValidName(o.Name) || o.ID == 0 {
		return types.E("adopt", o.Name, types.ErrInvalid)
	}
	if _, ok := c.colls[o.Collection]; !ok {
		return types.E("adopt", o.Collection, types.ErrNotFound)
	}
	path := o.Path()
	if _, ok := c.objects[path]; ok {
		return types.E("adopt", path, types.ErrExists)
	}
	if _, ok := c.colls[path]; ok {
		return types.E("adopt", path, types.ErrExists)
	}
	if other, ok := c.byID[o.ID]; ok {
		return types.E("adopt", other, types.ErrExists)
	}
	cp := cloneObject(o)
	c.objects[path] = cp
	c.byID[cp.ID] = path
	c.addChildObj(o.Collection, path)
	if cp.ID >= c.nextID {
		c.nextID = c.alignIDLocked(cp.ID + 1)
	}
	c.log(journalEntry{Op: "register", Object: cp})
	return nil
}

// GetObject returns a copy of the object at path (links not followed).
func (c *Catalog) GetObject(path string) (types.DataObject, error) {
	path = types.CleanPath(path)
	c.mu.RLock()
	defer c.mu.RUnlock()
	o, ok := c.objects[path]
	if !ok {
		return types.DataObject{}, types.E("getobj", path, types.ErrNotFound)
	}
	return *cloneObject(o), nil
}

// ResolveObject returns the object at path, following one link hop.
func (c *Catalog) ResolveObject(path string) (types.DataObject, error) {
	o, err := c.GetObject(path)
	if err != nil {
		return o, err
	}
	if o.Kind == types.KindLink {
		target, err := c.GetObject(o.LinkTarget)
		if err != nil {
			return types.DataObject{}, types.E("resolve", o.LinkTarget, types.ErrNotFound)
		}
		return target, nil
	}
	return o, nil
}

// GetObjectByID returns a copy of the object with the given ID.
func (c *Catalog) GetObjectByID(id types.ObjectID) (types.DataObject, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	path, ok := c.byID[id]
	if !ok {
		return types.DataObject{}, types.E("getobj", "", types.ErrNotFound)
	}
	return *cloneObject(c.objects[path]), nil
}

// UpdateObject applies fn to the object at path under the write lock.
// If fn returns an error the object is left unchanged.
func (c *Catalog) UpdateObject(path string, fn func(*types.DataObject) error) error {
	path = types.CleanPath(path)
	c.mu.Lock()
	defer c.mu.Unlock()
	o, ok := c.objects[path]
	if !ok {
		return types.E("update", path, types.ErrNotFound)
	}
	cp := cloneObject(o)
	if err := fn(cp); err != nil {
		return err
	}
	// Identity fields may not change through UpdateObject.
	cp.ID, cp.Name, cp.Collection = o.ID, o.Name, o.Collection
	cp.ModifiedAt = c.now()
	c.objects[path] = cp
	c.log(journalEntry{Op: "update", Object: cp})
	return nil
}

// DeleteObject removes the object and all its per-path state.
func (c *Catalog) DeleteObject(path string) error {
	path = types.CleanPath(path)
	c.mu.Lock()
	defer c.mu.Unlock()
	o, ok := c.objects[path]
	if !ok {
		return types.E("delete", path, types.ErrNotFound)
	}
	delete(c.objects, path)
	delete(c.byID, o.ID)
	c.removeChildObj(o.Collection, path)
	c.dropPathState(path)
	c.log(journalEntry{Op: "delete", Path: path})
	return nil
}

// MoveObject renames an object to a new collection and/or base name.
// Per the paper this is the logical move: metadata, ACLs and
// annotations follow the object unchanged.
func (c *Catalog) MoveObject(oldPath, newColl, newName string) error {
	oldPath = types.CleanPath(oldPath)
	newColl = types.CleanPath(newColl)
	c.mu.Lock()
	defer c.mu.Unlock()
	o, ok := c.objects[oldPath]
	if !ok {
		return types.E("move", oldPath, types.ErrNotFound)
	}
	if newName == "" {
		newName = o.Name
	}
	if !types.ValidName(newName) {
		return types.E("move", newName, types.ErrInvalid)
	}
	col, ok := c.colls[newColl]
	if !ok {
		return types.E("move", newColl, types.ErrNotFound)
	}
	if col.LinkTarget != "" {
		newColl = col.LinkTarget
	}
	newPath := types.Join(newColl, newName)
	if newPath == oldPath {
		return nil
	}
	if _, ok := c.objects[newPath]; ok {
		return types.E("move", newPath, types.ErrExists)
	}
	if _, ok := c.colls[newPath]; ok {
		return types.E("move", newPath, types.ErrExists)
	}
	c.removeChildObj(o.Collection, oldPath)
	delete(c.objects, oldPath)
	o.Collection, o.Name = newColl, newName
	c.objects[newPath] = o
	c.byID[o.ID] = newPath
	c.addChildObj(newColl, newPath)
	c.rekeyPathState(oldPath, newPath)
	c.log(journalEntry{Op: "move", Path: oldPath, Path2: newColl, Name: newName})
	return nil
}

// MoveColl moves a whole sub-collection: every descendant collection
// and object is rebased, preserving metadata and ACLs. This is the
// primitive behind the paper's persistence claim: "data can be
// replicated onto new storage systems by a recursive directory movement
// command, without changing the name by which the data is discovered".
func (c *Catalog) MoveColl(oldPath, newPath string) error {
	oldPath, newPath = types.CleanPath(oldPath), types.CleanPath(newPath)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.colls[oldPath]; !ok {
		return types.E("movecoll", oldPath, types.ErrNotFound)
	}
	if oldPath == "/" || types.WithinOrEqual(oldPath, newPath) {
		return types.E("movecoll", newPath, types.ErrInvalid)
	}
	if _, ok := c.colls[newPath]; ok {
		return types.E("movecoll", newPath, types.ErrExists)
	}
	if _, ok := c.objects[newPath]; ok {
		return types.E("movecoll", newPath, types.ErrExists)
	}
	newParent := types.Parent(newPath)
	if _, ok := c.colls[newParent]; !ok {
		return types.E("movecoll", newParent, types.ErrNotFound)
	}
	// Collect the subtree up front; mutating while ranging is unsafe.
	var subColls, subObjs []string
	for p := range c.colls {
		if types.WithinOrEqual(oldPath, p) {
			subColls = append(subColls, p)
		}
	}
	for p := range c.objects {
		if types.Within(oldPath, p) {
			subObjs = append(subObjs, p)
		}
	}
	// Detach from the old parent.
	c.removeChildColl(types.Parent(oldPath), oldPath)
	// Rebase collections.
	for _, p := range subColls {
		np := types.Rebase(oldPath, newPath, p)
		entry := c.colls[p]
		delete(c.colls, p)
		entry.Path = np
		c.colls[np] = entry
		c.rekeyPathState(p, np)
		// child index maps are rebuilt below
		delete(c.childColls, p)
		delete(c.childObjs, p)
	}
	// Rebase objects and rebuild child indexes.
	for _, p := range subObjs {
		np := types.Rebase(oldPath, newPath, p)
		o := c.objects[p]
		delete(c.objects, p)
		o.Collection = types.Parent(np)
		c.objects[np] = o
		c.byID[o.ID] = np
		c.rekeyPathState(p, np)
	}
	for _, p := range subColls {
		np := types.Rebase(oldPath, newPath, p)
		if np == newPath {
			continue
		}
		c.addChildColl(types.Parent(np), np)
	}
	for _, p := range subObjs {
		np := types.Rebase(oldPath, newPath, p)
		c.addChildObj(types.Parent(np), np)
	}
	c.addChildColl(newParent, newPath)
	c.log(journalEntry{Op: "movecoll", Path: oldPath, Path2: newPath})
	return nil
}

// ObjectsIn returns copies of the objects directly inside collection.
func (c *Catalog) ObjectsIn(coll string) []types.DataObject {
	coll = types.CleanPath(coll)
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []types.DataObject
	for _, p := range sortedVals(c.childObjs[coll]) {
		out = append(out, *cloneObject(c.objects[p]))
	}
	return out
}

// SubtreeObjects returns the paths of every object inside root
// (recursively), sorted.
func (c *Catalog) SubtreeObjects(root string) []string {
	root = types.CleanPath(root)
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for p := range c.objects {
		if types.Within(root, p) || root == "/" {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// LinksTo returns the paths of link objects pointing at target.
func (c *Catalog) LinksTo(target string) []string {
	target = types.CleanPath(target)
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for p, o := range c.objects {
		if o.Kind == types.KindLink && o.LinkTarget == target {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ObjectsInContainer returns the paths of objects stored inside the
// container at containerPath, sorted.
func (c *Catalog) ObjectsInContainer(containerPath string) []string {
	containerPath = types.CleanPath(containerPath)
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for p, o := range c.objects {
		if o.Container == containerPath {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// cloneObject deep-copies the mutable slices of an object.
func cloneObject(o *types.DataObject) *types.DataObject {
	cp := *o
	cp.Replicas = append([]types.Replica(nil), o.Replicas...)
	cp.Pins = append([]types.Pin(nil), o.Pins...)
	cp.Versions = append([]types.Version(nil), o.Versions...)
	cp.Alternates = append([]types.AltSpec(nil), o.Alternates...)
	if o.SQL != nil {
		s := *o.SQL
		cp.SQL = &s
	}
	if o.Method != nil {
		m := *o.Method
		m.Args = append([]string(nil), o.Method.Args...)
		cp.Method = &m
	}
	return &cp
}
