package mcat

import (
	"sort"
	"strings"

	"gosrb/internal/acl"
	"gosrb/internal/types"
)

// ---- access control ----

// SetACL grants (or with acl.None revokes) a level on the target path
// for a grantee (user, "g:"+group, or acl.Public).
func (c *Catalog) SetACL(path, grantee string, level acl.Level) error {
	path = types.CleanPath(path)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.pathExistsLocked(path) {
		return types.E("setacl", path, types.ErrNotFound)
	}
	c.acls[path] = c.acls[path].Grant(grantee, level)
	c.log(journalEntry{Op: "setacl", Path: path, Grantee: grantee, Level: int(level)})
	return nil
}

// GetACL returns the explicit ACL stored on path (no inheritance).
func (c *Catalog) GetACL(path string) (acl.List, error) {
	path = types.CleanPath(path)
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.pathExistsLocked(path) {
		return nil, types.E("getacl", path, types.ErrNotFound)
	}
	return c.acls[path].Clone(), nil
}

// EffectiveLevel computes the user's effective permission on path: the
// maximum of the owner grant (owners hold Own; admins Curate), the
// path's explicit ACL, and ACLs inherited from every ancestor
// collection ("control access at multiple levels — collections,
// datasets, resources", paper §2).
func (c *Catalog) EffectiveLevel(path, user string) acl.Level {
	path = types.CleanPath(path)
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.effectiveLevelLocked(path, user)
}

func (c *Catalog) effectiveLevelLocked(path, user string) acl.Level {
	if c.isAdminLocked(user) {
		return acl.Curate
	}
	groups := c.groupsOfLocked(user)
	best := acl.None
	if o, ok := c.objects[path]; ok && o.Owner == user {
		best = acl.Own
	}
	if col, ok := c.colls[path]; ok && col.Owner == user {
		best = acl.Curate // collection owners curate their collections
	}
	consider := func(p string) {
		if l := c.acls[p].LevelFor(user, groups); l > best {
			best = l
		}
	}
	consider(path)
	for _, a := range types.Ancestors(path) {
		consider(a)
		// Owning an ancestor collection grants curate over the subtree.
		if col, ok := c.colls[a]; ok && col.Owner == user && acl.Curate > best {
			best = acl.Curate
		}
	}
	return best
}

// SetResourceACL controls who may store onto a resource.
func (c *Catalog) SetResourceACL(resource, grantee string, level acl.Level) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.resources[resource]; !ok {
		return types.E("setacl", resource, types.ErrNotFound)
	}
	key := "resource:" + resource
	c.acls[key] = c.acls[key].Grant(grantee, level)
	c.log(journalEntry{Op: "setresourceacl", Name: resource, Grantee: grantee, Level: int(level)})
	return nil
}

// ResourceLevel returns the user's level on a resource. Resources with
// no explicit ACL are writable by every registered user.
func (c *Catalog) ResourceLevel(resource, user string) acl.Level {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.isAdminLocked(user) {
		return acl.Curate
	}
	l, ok := c.acls["resource:"+resource]
	if !ok || len(l) == 0 {
		return acl.Write
	}
	return l.LevelFor(user, c.groupsOfLocked(user))
}

func (c *Catalog) pathExistsLocked(path string) bool {
	if _, ok := c.objects[path]; ok {
		return true
	}
	_, ok := c.colls[path]
	return ok
}

// ---- metadata ----

// queryableClass reports whether a class participates in the attribute
// index (file-based metadata is view-only per the paper; system
// metadata is matched live; annotations are searched separately).
func queryableClass(cl types.MetaClass) bool {
	return cl == types.MetaUser || cl == types.MetaType
}

// AddMeta appends one metadata triplet of the given class to path.
// Multiple values for one attribute are allowed ("there is no limit for
// the number of metadata associated with a SRB object").
func (c *Catalog) AddMeta(path string, class types.MetaClass, avu types.AVU) error {
	path = types.CleanPath(path)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.pathExistsLocked(path) {
		return types.E("addmeta", path, types.ErrNotFound)
	}
	if avu.Name == "" {
		return types.E("addmeta", path, types.ErrInvalid)
	}
	if class == types.MetaSystem {
		return types.E("addmeta", path, types.ErrUnsupported)
	}
	c.meta[path] = append(c.meta[path], metaEntry{Class: class, AVU: avu})
	if queryableClass(class) {
		c.indexAdd(avu.Name, avu.Value, path)
	}
	c.log(journalEntry{Op: "addmeta", Path: path, Class: int(class), AVU: &avu})
	return nil
}

// GetMeta returns the triplets of one class on path, in insert order.
func (c *Catalog) GetMeta(path string, class types.MetaClass) ([]types.AVU, error) {
	path = types.CleanPath(path)
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.pathExistsLocked(path) {
		return nil, types.E("getmeta", path, types.ErrNotFound)
	}
	var out []types.AVU
	for _, e := range c.meta[path] {
		if e.Class == class {
			out = append(out, e.AVU)
		}
	}
	return out, nil
}

// AllMeta returns every stored triplet on path grouped by class.
func (c *Catalog) AllMeta(path string) (map[types.MetaClass][]types.AVU, error) {
	path = types.CleanPath(path)
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.pathExistsLocked(path) {
		return nil, types.E("getmeta", path, types.ErrNotFound)
	}
	out := make(map[types.MetaClass][]types.AVU)
	for _, e := range c.meta[path] {
		out[e.Class] = append(out[e.Class], e.AVU)
	}
	return out, nil
}

// UpdateMeta rewrites the value/units of the triplets matching (class,
// name, oldValue); oldValue "" matches every value of the attribute.
// It returns how many triplets changed.
func (c *Catalog) UpdateMeta(path string, class types.MetaClass, name, oldValue string, newAVU types.AVU) (int, error) {
	path = types.CleanPath(path)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.pathExistsLocked(path) {
		return 0, types.E("updmeta", path, types.ErrNotFound)
	}
	n := 0
	for i := range c.meta[path] {
		e := &c.meta[path][i]
		if e.Class != class || !lowerEq(e.AVU.Name, name) {
			continue
		}
		if oldValue != "" && e.AVU.Value != oldValue {
			continue
		}
		if queryableClass(class) {
			c.indexRemove(e.AVU.Name, e.AVU.Value, path)
			c.indexAdd(newAVU.Name, newAVU.Value, path)
		}
		e.AVU = newAVU
		n++
	}
	if n > 0 {
		c.log(journalEntry{Op: "updmeta", Path: path, Class: int(class),
			AVU: &types.AVU{Name: name, Value: oldValue}, NewAVU: &newAVU})
	}
	return n, nil
}

// DeleteMeta removes triplets matching (class, name, value); value ""
// removes every value of the attribute. Returns how many were removed.
func (c *Catalog) DeleteMeta(path string, class types.MetaClass, name, value string) (int, error) {
	path = types.CleanPath(path)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.pathExistsLocked(path) {
		return 0, types.E("delmeta", path, types.ErrNotFound)
	}
	kept := c.meta[path][:0:0]
	n := 0
	for _, e := range c.meta[path] {
		if e.Class == class && lowerEq(e.AVU.Name, name) && (value == "" || e.AVU.Value == value) {
			if queryableClass(class) {
				c.indexRemove(e.AVU.Name, e.AVU.Value, path)
			}
			n++
			continue
		}
		kept = append(kept, e)
	}
	if len(kept) == 0 {
		delete(c.meta, path)
	} else {
		c.meta[path] = kept
	}
	if n > 0 {
		c.log(journalEntry{Op: "delmeta", Path: path, Class: int(class),
			AVU: &types.AVU{Name: name, Value: value}})
	}
	return n, nil
}

// CopyMeta copies the user and type metadata from one path to another
// (the paper's third association method: "copy metadata from other SRB
// objects or collections").
func (c *Catalog) CopyMeta(from, to string) error {
	from, to = types.CleanPath(from), types.CleanPath(to)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.pathExistsLocked(from) {
		return types.E("copymeta", from, types.ErrNotFound)
	}
	if !c.pathExistsLocked(to) {
		return types.E("copymeta", to, types.ErrNotFound)
	}
	for _, e := range c.meta[from] {
		if !queryableClass(e.Class) {
			continue
		}
		c.meta[to] = append(c.meta[to], e)
		c.indexAdd(e.AVU.Name, e.AVU.Value, to)
	}
	c.log(journalEntry{Op: "copymeta", Path: from, Path2: to})
	return nil
}

// AttachFileMeta associates metaFile (an SRB object holding triplets)
// as file-based metadata for path. One file may serve many objects.
func (c *Catalog) AttachFileMeta(path, metaFile string) error {
	path, metaFile = types.CleanPath(path), types.CleanPath(metaFile)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.pathExistsLocked(path) {
		return types.E("filemeta", path, types.ErrNotFound)
	}
	if _, ok := c.objects[metaFile]; !ok {
		return types.E("filemeta", metaFile, types.ErrNotFound)
	}
	for _, f := range c.fileMeta[path] {
		if f == metaFile {
			return nil
		}
	}
	c.fileMeta[path] = append(c.fileMeta[path], metaFile)
	c.log(journalEntry{Op: "filemeta", Path: path, Path2: metaFile})
	return nil
}

// FileMeta returns the metadata-file paths attached to path.
func (c *Catalog) FileMeta(path string) []string {
	path = types.CleanPath(path)
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.fileMeta[path]...)
}

// ---- structural metadata (collections) ----

// SetStructural adds or replaces a structural attribute requirement on
// a collection.
func (c *Catalog) SetStructural(coll string, attr types.StructuralAttr) error {
	coll = types.CleanPath(coll)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.colls[coll]; !ok {
		return types.E("structural", coll, types.ErrNotFound)
	}
	if attr.Name == "" {
		return types.E("structural", coll, types.ErrInvalid)
	}
	list := c.structural[coll]
	for i := range list {
		if lowerEq(list[i].Name, attr.Name) {
			list[i] = attr
			c.log(journalEntry{Op: "structural", Path: coll, Attr: &attr})
			return nil
		}
	}
	c.structural[coll] = append(list, attr)
	c.log(journalEntry{Op: "structural", Path: coll, Attr: &attr})
	return nil
}

// DeleteStructural removes a structural attribute from a collection.
func (c *Catalog) DeleteStructural(coll, name string) error {
	coll = types.CleanPath(coll)
	c.mu.Lock()
	defer c.mu.Unlock()
	list := c.structural[coll]
	for i := range list {
		if lowerEq(list[i].Name, name) {
			c.structural[coll] = append(list[:i], list[i+1:]...)
			c.log(journalEntry{Op: "delstructural", Path: coll, Name: name})
			return nil
		}
	}
	return types.E("structural", coll+"#"+name, types.ErrNotFound)
}

// Structural returns the structural attributes a new member of coll
// must honour: the collection's own plus those inherited from every
// ancestor. Nearer definitions shadow farther ones by name.
func (c *Catalog) Structural(coll string) []types.StructuralAttr {
	coll = types.CleanPath(coll)
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := make(map[string]bool)
	var out []types.StructuralAttr
	add := func(p string) {
		for _, a := range c.structural[p] {
			if !seen[a.Name] {
				seen[a.Name] = true
				out = append(out, a)
			}
		}
	}
	add(coll)
	anc := types.Ancestors(coll)
	for i := len(anc) - 1; i >= 0; i-- {
		add(anc[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CheckMandatory verifies that the provided metadata satisfies every
// mandatory structural attribute of coll, returning the missing names.
func (c *Catalog) CheckMandatory(coll string, provided []types.AVU) []string {
	var missing []string
	for _, a := range c.Structural(coll) {
		if !a.Mandatory {
			continue
		}
		ok := false
		for _, p := range provided {
			if lowerEq(p.Name, a.Name) && p.Value != "" {
				ok = true
				break
			}
		}
		if !ok && len(a.Defaults) == 1 {
			ok = true // a single default satisfies the requirement
		}
		if !ok {
			missing = append(missing, a.Name)
		}
	}
	return missing
}

// ---- annotations ----

// AddAnnotation appends commentary to a path. Timestamp is stamped when
// zero.
func (c *Catalog) AddAnnotation(path string, a types.Annotation) error {
	path = types.CleanPath(path)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.pathExistsLocked(path) {
		return types.E("annotate", path, types.ErrNotFound)
	}
	if a.CreatedAt.IsZero() {
		a.CreatedAt = c.now()
	}
	if a.Kind == "" {
		a.Kind = "comment"
	}
	c.annots[path] = append(c.annots[path], a)
	c.log(journalEntry{Op: "annotate", Path: path, Ann: &a})
	return nil
}

// Annotations returns the commentary on path in insert order.
func (c *Catalog) Annotations(path string) ([]types.Annotation, error) {
	path = types.CleanPath(path)
	c.mu.RLock()
	defer c.mu.RUnlock()
	if !c.pathExistsLocked(path) {
		return nil, types.E("annotations", path, types.ErrNotFound)
	}
	return append([]types.Annotation(nil), c.annots[path]...), nil
}

// DeleteAnnotations removes annotations on path by author (""=any).
func (c *Catalog) DeleteAnnotations(path, author string) (int, error) {
	path = types.CleanPath(path)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.pathExistsLocked(path) {
		return 0, types.E("annotations", path, types.ErrNotFound)
	}
	kept := c.annots[path][:0:0]
	n := 0
	for _, a := range c.annots[path] {
		if author == "" || a.Author == author {
			n++
			continue
		}
		kept = append(kept, a)
	}
	if len(kept) == 0 {
		delete(c.annots, path)
	} else {
		c.annots[path] = kept
	}
	if n > 0 {
		c.log(journalEntry{Op: "delannotations", Path: path, Name: author})
	}
	return n, nil
}

// ---- inverted index and per-path state management ----

// indexAdd records path under the lower-cased attribute name so query
// matching is case-insensitive on names (values stay exact).
func (c *Catalog) indexAdd(name, value, path string) {
	name = strings.ToLower(name)
	vals := c.attrIndex[name]
	if vals == nil {
		vals = make(map[string]map[string]bool)
		c.attrIndex[name] = vals
	}
	paths := vals[value]
	if paths == nil {
		paths = make(map[string]bool)
		vals[value] = paths
	}
	paths[path] = true
}

func (c *Catalog) indexRemove(name, value, path string) {
	name = strings.ToLower(name)
	vals := c.attrIndex[name]
	if vals == nil {
		return
	}
	paths := vals[value]
	if paths == nil {
		return
	}
	delete(paths, path)
	if len(paths) == 0 {
		delete(vals, value)
	}
	if len(vals) == 0 {
		delete(c.attrIndex, name)
	}
}

// dropPathState removes every per-path record for a deleted path.
// Callers hold the write lock.
func (c *Catalog) dropPathState(path string) {
	for _, e := range c.meta[path] {
		if queryableClass(e.Class) {
			c.indexRemove(e.AVU.Name, e.AVU.Value, path)
		}
	}
	delete(c.meta, path)
	delete(c.acls, path)
	delete(c.annots, path)
	delete(c.fileMeta, path)
	delete(c.structural, path)
}

// rekeyPathState moves every per-path record from old to new path.
// Callers hold the write lock.
func (c *Catalog) rekeyPathState(oldPath, newPath string) {
	if entries, ok := c.meta[oldPath]; ok {
		for _, e := range entries {
			if queryableClass(e.Class) {
				c.indexRemove(e.AVU.Name, e.AVU.Value, oldPath)
				c.indexAdd(e.AVU.Name, e.AVU.Value, newPath)
			}
		}
		c.meta[newPath] = entries
		delete(c.meta, oldPath)
	}
	if l, ok := c.acls[oldPath]; ok {
		c.acls[newPath] = l
		delete(c.acls, oldPath)
	}
	if a, ok := c.annots[oldPath]; ok {
		c.annots[newPath] = a
		delete(c.annots, oldPath)
	}
	if f, ok := c.fileMeta[oldPath]; ok {
		c.fileMeta[newPath] = f
		delete(c.fileMeta, oldPath)
	}
	if s, ok := c.structural[oldPath]; ok {
		c.structural[newPath] = s
		delete(c.structural, oldPath)
	}
}

// QueryableClass reports whether a metadata class feeds the inverted
// query index (user and type metadata, per the paper's query model).
func QueryableClass(cl types.MetaClass) bool { return queryableClass(cl) }
