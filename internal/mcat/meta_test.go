package mcat

import (
	"errors"
	"testing"

	"gosrb/internal/acl"
	"gosrb/internal/types"
)

func setupMeta(t *testing.T) *Catalog {
	t.Helper()
	c := newCat(t)
	mustMkColl(t, c, "/d", "admin")
	mustRegister(t, c, "/d", "f", "alice")
	return c
}

func TestAddGetMeta(t *testing.T) {
	c := setupMeta(t)
	if err := c.AddMeta("/d/f", types.MetaUser, types.AVU{Name: "color", Value: "red"}); err != nil {
		t.Fatal(err)
	}
	// Multiple values for one attribute are allowed.
	c.AddMeta("/d/f", types.MetaUser, types.AVU{Name: "color", Value: "blue"})
	c.AddMeta("/d/f", types.MetaType, types.AVU{Name: "dc:title", Value: "A File", Units: ""})
	avus, err := c.GetMeta("/d/f", types.MetaUser)
	if err != nil || len(avus) != 2 {
		t.Fatalf("GetMeta = %+v, %v", avus, err)
	}
	all, _ := c.AllMeta("/d/f")
	if len(all[types.MetaUser]) != 2 || len(all[types.MetaType]) != 1 {
		t.Errorf("AllMeta = %+v", all)
	}
	// Guards.
	if err := c.AddMeta("/ghost", types.MetaUser, types.AVU{Name: "x"}); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("meta on missing: %v", err)
	}
	if err := c.AddMeta("/d/f", types.MetaUser, types.AVU{}); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("empty name: %v", err)
	}
	if err := c.AddMeta("/d/f", types.MetaSystem, types.AVU{Name: "sys"}); !errors.Is(err, types.ErrUnsupported) {
		t.Errorf("system class write: %v", err)
	}
}

func TestMetaOnCollections(t *testing.T) {
	c := setupMeta(t)
	if err := c.AddMeta("/d", types.MetaUser, types.AVU{Name: "topic", Value: "cultures"}); err != nil {
		t.Fatal(err)
	}
	avus, err := c.GetMeta("/d", types.MetaUser)
	if err != nil || len(avus) != 1 {
		t.Errorf("collection meta = %+v, %v", avus, err)
	}
}

func TestUpdateMeta(t *testing.T) {
	c := setupMeta(t)
	c.AddMeta("/d/f", types.MetaUser, types.AVU{Name: "color", Value: "red"})
	c.AddMeta("/d/f", types.MetaUser, types.AVU{Name: "color", Value: "blue"})
	n, err := c.UpdateMeta("/d/f", types.MetaUser, "color", "red", types.AVU{Name: "color", Value: "green"})
	if err != nil || n != 1 {
		t.Fatalf("UpdateMeta = %d, %v", n, err)
	}
	hits, _ := c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "color", Op: "=", Value: "green"}}})
	if len(hits) != 1 {
		t.Errorf("index after update = %+v", hits)
	}
	hits, _ = c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "color", Op: "=", Value: "red"}}})
	if len(hits) != 0 {
		t.Errorf("stale index entry = %+v", hits)
	}
	// Empty oldValue updates every value of the attribute.
	n, _ = c.UpdateMeta("/d/f", types.MetaUser, "color", "", types.AVU{Name: "color", Value: "black"})
	if n != 2 {
		t.Errorf("bulk update = %d", n)
	}
}

func TestDeleteMeta(t *testing.T) {
	c := setupMeta(t)
	c.AddMeta("/d/f", types.MetaUser, types.AVU{Name: "a", Value: "1"})
	c.AddMeta("/d/f", types.MetaUser, types.AVU{Name: "a", Value: "2"})
	c.AddMeta("/d/f", types.MetaUser, types.AVU{Name: "b", Value: "3"})
	n, err := c.DeleteMeta("/d/f", types.MetaUser, "a", "1")
	if err != nil || n != 1 {
		t.Fatalf("DeleteMeta = %d, %v", n, err)
	}
	n, _ = c.DeleteMeta("/d/f", types.MetaUser, "a", "")
	if n != 1 {
		t.Errorf("delete all values = %d", n)
	}
	avus, _ := c.GetMeta("/d/f", types.MetaUser)
	if len(avus) != 1 || avus[0].Name != "b" {
		t.Errorf("remaining = %+v", avus)
	}
	hits, _ := c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "a", Op: "=", Value: "2"}}})
	if len(hits) != 0 {
		t.Errorf("index should forget deleted meta: %+v", hits)
	}
}

func TestCopyMeta(t *testing.T) {
	c := setupMeta(t)
	mustRegister(t, c, "/d", "g", "alice")
	c.AddMeta("/d/f", types.MetaUser, types.AVU{Name: "color", Value: "red"})
	c.AddMeta("/d/f", types.MetaAnnotation, types.AVU{Name: "note", Value: "hi"})
	if err := c.CopyMeta("/d/f", "/d/g"); err != nil {
		t.Fatal(err)
	}
	avus, _ := c.GetMeta("/d/g", types.MetaUser)
	if len(avus) != 1 || avus[0].Value != "red" {
		t.Errorf("copied meta = %+v", avus)
	}
	// Only queryable classes copy.
	ann, _ := c.GetMeta("/d/g", types.MetaAnnotation)
	if len(ann) != 0 {
		t.Errorf("annotations must not copy: %+v", ann)
	}
}

func TestFileMeta(t *testing.T) {
	c := setupMeta(t)
	mustRegister(t, c, "/d", "f.meta", "alice")
	if err := c.AttachFileMeta("/d/f", "/d/f.meta"); err != nil {
		t.Fatal(err)
	}
	// Idempotent; one file can serve several objects.
	c.AttachFileMeta("/d/f", "/d/f.meta")
	if got := c.FileMeta("/d/f"); len(got) != 1 || got[0] != "/d/f.meta" {
		t.Errorf("FileMeta = %v", got)
	}
	if err := c.AttachFileMeta("/d/f", "/ghost"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("missing meta file: %v", err)
	}
}

func TestStructuralInheritance(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/cultures", "curator")
	mustMkColl(t, c, "/cultures/avian", "curator")
	c.SetStructural("/cultures", types.StructuralAttr{Name: "culture-core", Mandatory: true, Comment: "MetaCore for Cultures"})
	c.SetStructural("/cultures/avian", types.StructuralAttr{Name: "species", Mandatory: true})
	c.SetStructural("/cultures/avian", types.StructuralAttr{Name: "region", Defaults: []string{"unknown", "nearctic", "palearctic"}})

	attrs := c.Structural("/cultures/avian")
	if len(attrs) != 3 {
		t.Fatalf("Structural = %+v", attrs)
	}
	// Nearer definition shadows an inherited one of the same name.
	c.SetStructural("/cultures/avian", types.StructuralAttr{Name: "culture-core", Mandatory: false})
	attrs = c.Structural("/cultures/avian")
	for _, a := range attrs {
		if a.Name == "culture-core" && a.Mandatory {
			t.Error("nearer structural attr should shadow")
		}
	}

	missing := c.CheckMandatory("/cultures/avian", []types.AVU{{Name: "SPECIES", Value: "finch"}})
	if len(missing) != 0 {
		t.Errorf("mandatory check = %v", missing)
	}
	missing = c.CheckMandatory("/cultures/avian", nil)
	if len(missing) != 1 || missing[0] != "species" {
		t.Errorf("missing = %v", missing)
	}
	// A single default satisfies a mandatory attribute.
	c.SetStructural("/cultures/avian", types.StructuralAttr{Name: "species", Mandatory: true, Defaults: []string{"unknown"}})
	if missing := c.CheckMandatory("/cultures/avian", nil); len(missing) != 0 {
		t.Errorf("default should satisfy: %v", missing)
	}
	if err := c.DeleteStructural("/cultures/avian", "region"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteStructural("/cultures/avian", "region"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestAnnotations(t *testing.T) {
	c := setupMeta(t)
	if err := c.AddAnnotation("/d/f", types.Annotation{Author: "bob", Text: "nice dataset", Kind: "comment"}); err != nil {
		t.Fatal(err)
	}
	c.AddAnnotation("/d/f", types.Annotation{Author: "carol", Text: "4/5", Kind: "rating"})
	anns, err := c.Annotations("/d/f")
	if err != nil || len(anns) != 2 {
		t.Fatalf("Annotations = %+v, %v", anns, err)
	}
	if anns[0].CreatedAt.IsZero() {
		t.Error("timestamp should be stamped")
	}
	n, _ := c.DeleteAnnotations("/d/f", "bob")
	if n != 1 {
		t.Errorf("deleted = %d", n)
	}
	anns, _ = c.Annotations("/d/f")
	if len(anns) != 1 || anns[0].Author != "carol" {
		t.Errorf("remaining = %+v", anns)
	}
}

func TestACLAndEffectiveLevel(t *testing.T) {
	c := newCat(t)
	c.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	c.AddUser(types.User{Name: "bob", Domain: "sdsc"})
	c.AddUser(types.User{Name: "carol", Domain: "caltech"})
	c.AddGroup("curators")
	c.AddToGroup("curators", "carol")
	mustMkColl(t, c, "/proj", "alice")
	mustMkColl(t, c, "/proj/data", "alice")
	mustRegister(t, c, "/proj/data", "f", "alice")

	// Owner holds Own on the object; collection owner curates subtree.
	if got := c.EffectiveLevel("/proj/data/f", "alice"); got != acl.Curate {
		t.Errorf("owner level = %v", got)
	}
	if got := c.EffectiveLevel("/proj/data/f", "bob"); got != acl.None {
		t.Errorf("stranger level = %v", got)
	}
	// Admins always curate.
	if got := c.EffectiveLevel("/proj/data/f", "admin"); got != acl.Curate {
		t.Errorf("admin level = %v", got)
	}
	// Collection-level grant inherits downward.
	c.SetACL("/proj", "bob", acl.Read)
	if got := c.EffectiveLevel("/proj/data/f", "bob"); got != acl.Read {
		t.Errorf("inherited level = %v", got)
	}
	// Object-level grant beats inherited.
	c.SetACL("/proj/data/f", "bob", acl.Write)
	if got := c.EffectiveLevel("/proj/data/f", "bob"); got != acl.Write {
		t.Errorf("object level = %v", got)
	}
	// Group grant.
	c.SetACL("/proj", acl.GroupPrefix+"curators", acl.Annotate)
	if got := c.EffectiveLevel("/proj/data/f", "carol"); got != acl.Annotate {
		t.Errorf("group level = %v", got)
	}
	// Public grant.
	c.SetACL("/proj/data/f", acl.Public, acl.Read)
	if got := c.EffectiveLevel("/proj/data/f", "nobody"); got != acl.Read {
		t.Errorf("public level = %v", got)
	}
	// Revoke.
	c.SetACL("/proj/data/f", "bob", acl.None)
	if got := c.EffectiveLevel("/proj/data/f", "bob"); got != acl.Read {
		t.Errorf("after revoke = %v (inherited read remains)", got)
	}
	l, err := c.GetACL("/proj/data/f")
	if err != nil || len(l) != 1 { // public read
		t.Errorf("GetACL = %+v, %v", l, err)
	}
	if err := c.SetACL("/ghost", "x", acl.Read); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("ACL on missing: %v", err)
	}
}

func TestResourceACL(t *testing.T) {
	c := newCat(t)
	c.AddUser(types.User{Name: "alice", Domain: "sdsc"})
	c.AddResource(types.Resource{Name: "disk1", Kind: types.ResourcePhysical, Driver: "memfs"})
	// Default: open for writes.
	if got := c.ResourceLevel("disk1", "alice"); got != acl.Write {
		t.Errorf("default resource level = %v", got)
	}
	c.SetResourceACL("disk1", "alice", acl.Read)
	if got := c.ResourceLevel("disk1", "alice"); got != acl.Read {
		t.Errorf("restricted level = %v", got)
	}
	if got := c.ResourceLevel("disk1", "bob"); got != acl.None {
		t.Errorf("unlisted user on restricted resource = %v", got)
	}
	if got := c.ResourceLevel("disk1", "admin"); got != acl.Curate {
		t.Errorf("admin = %v", got)
	}
}

func TestUsersGroupsResources(t *testing.T) {
	c := newCat(t)
	if err := c.AddUser(types.User{Name: "alice", Domain: "sdsc"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddUser(types.User{Name: "alice", Domain: "x"}); !errors.Is(err, types.ErrExists) {
		t.Errorf("dup user: %v", err)
	}
	u, err := c.GetUser("alice")
	if err != nil || u.Qualified() != "alice@sdsc" {
		t.Errorf("GetUser = %+v, %v", u, err)
	}
	if len(c.Users()) != 2 { // admin + alice
		t.Errorf("Users = %+v", c.Users())
	}
	c.AddGroup("g1")
	c.AddToGroup("g1", "alice")
	if !c.GroupsOf("alice")["g1"] {
		t.Error("group membership missing")
	}
	c.RemoveFromGroup("g1", "alice")
	if c.GroupsOf("alice")["g1"] {
		t.Error("member should be removed")
	}
	c.AddToGroup("g1", "alice")
	c.DeleteUser("alice")
	if len(c.Groups()[0].Members) != 0 {
		t.Error("deleting user should clear group membership")
	}

	// Resources.
	if err := c.AddResource(types.Resource{Name: "d1", Kind: types.ResourcePhysical, Driver: "memfs"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddResource(types.Resource{Name: "d2", Kind: types.ResourcePhysical, Driver: "memfs"}); err != nil {
		t.Fatal(err)
	}
	// Logical resources need >= 2 existing physical members.
	if err := c.AddResource(types.Resource{Name: "lr", Kind: types.ResourceLogical, Members: []string{"d1"}}); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("1-member logical: %v", err)
	}
	if err := c.AddResource(types.Resource{Name: "lr", Kind: types.ResourceLogical, Members: []string{"d1", "ghost"}}); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("missing member: %v", err)
	}
	if err := c.AddResource(types.Resource{Name: "lr", Kind: types.ResourceLogical, Members: []string{"d1", "d2"}}); err != nil {
		t.Fatal(err)
	}
	phys, err := c.ResolvePhysical("lr")
	if err != nil || len(phys) != 2 || phys[0].Name != "d1" {
		t.Errorf("ResolvePhysical = %+v, %v", phys, err)
	}
	phys, _ = c.ResolvePhysical("d1")
	if len(phys) != 1 {
		t.Errorf("physical resolve = %+v", phys)
	}
	// Online toggling.
	c.SetResourceOnline("d1", false)
	r, _ := c.GetResource("d1")
	if r.Online {
		t.Error("resource should be offline")
	}
	// Deletion guards: member of a logical resource cannot be deleted.
	if err := c.DeleteResource("d1"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("delete member: %v", err)
	}
	if err := c.DeleteResource("lr"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteResource("d1"); err != nil {
		t.Fatal(err)
	}
}
