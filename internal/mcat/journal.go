package mcat

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"

	"gosrb/internal/acl"
	"gosrb/internal/types"
)

// The journal is the catalog's append log: every mutation is recorded
// as one JSON line, so a catalog can be rebuilt as snapshot + replayed
// tail. srbd keeps a journal beside its periodic snapshots; a crash
// loses at most the mutations after the last fsync of the journal
// writer rather than everything since the last snapshot.

// journalEntry is one logged mutation. Exactly one payload field is set
// per Op.
type journalEntry struct {
	Op string

	User     *types.User           `json:",omitempty"`
	Group    string                `json:",omitempty"`
	Member   string                `json:",omitempty"`
	Resource *types.Resource       `json:",omitempty"`
	Coll     *types.Collection     `json:",omitempty"`
	Object   *types.DataObject     `json:",omitempty"`
	Path     string                `json:",omitempty"`
	Path2    string                `json:",omitempty"`
	Name     string                `json:",omitempty"`
	Grantee  string                `json:",omitempty"`
	Level    int                   `json:",omitempty"`
	Class    int                   `json:",omitempty"`
	AVU      *types.AVU            `json:",omitempty"`
	NewAVU   *types.AVU            `json:",omitempty"`
	Attr     *types.StructuralAttr `json:",omitempty"`
	Ann      *types.Annotation     `json:",omitempty"`
	Online   bool                  `json:",omitempty"`
	Value    string                `json:",omitempty"`
	Repair   *types.RepairTask     `json:",omitempty"`
}

// Journal receives catalog mutations. Safe for concurrent use.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	f   *os.File // when file-backed, for Sync
	obs func(line []byte)
}

// NewJournal wraps a writer as an append log.
func NewJournal(w io.Writer) *Journal {
	j := &Journal{w: w}
	if f, ok := w.(*os.File); ok {
		j.f = f
	}
	return j
}

// SetObserver installs a hook that sees every appended entry as its
// encoded JSON line (no trailing newline). The shard replication log
// subscribes here, so the journal doubles as the replication stream.
func (j *Journal) SetObserver(fn func(line []byte)) {
	j.mu.Lock()
	j.obs = fn
	j.mu.Unlock()
}

// OpenJournalFile opens (creating or appending) a file-backed journal.
func OpenJournalFile(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, types.E("journal", path, err)
	}
	return NewJournal(f), nil
}

// Close syncs and closes a file-backed journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		return j.f.Close()
	}
	return nil
}

func (j *Journal) append(e *journalEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	return j.AppendRaw(line)
}

// AppendRaw appends one pre-encoded journal line verbatim. The shard
// replication path uses it so a follower's journal holds byte-identical
// copies of the leader's entries.
func (j *Journal) AppendRaw(line []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(append(make([]byte, 0, len(line)+1), line...), '\n')); err != nil {
		return err
	}
	if j.obs != nil {
		j.obs(line)
	}
	return nil
}

// Sync flushes a file-backed journal to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		return j.f.Sync()
	}
	return nil
}

// SetJournal attaches (or with nil detaches) the catalog's append log.
// Mutations made while attached are recorded; reads never are.
func (c *Catalog) SetJournal(j *Journal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = j
}

// log records a mutation if a journal is attached. Callers hold the
// write lock, which also serialises entries in mutation order.
func (c *Catalog) log(e journalEntry) {
	if c.journal != nil {
		// Journal I/O errors must not corrupt catalog state; they are
		// surfaced through Sync at checkpoint time.
		_ = c.journal.append(&e)
	}
}

// ReplayStats reports one replay pass: how many entries took effect
// and how many lines were corrupt (unparseable or truncated) and had
// to be skipped. A non-zero Corrupt count must be surfaced — a journal
// that silently loses lines cannot be trusted as a replication log.
type ReplayStats struct {
	Applied int
	Corrupt int
}

// Replay applies a journal stream to the catalog. It is used after
// loading the most recent snapshot; entries that conflict with existing
// state (e.g. replays of mutations already captured by the snapshot)
// are skipped rather than fatal. A corrupt (unparseable) line aborts
// the replay with an error; use ReplayCounted for the tolerant variant
// that skips and counts corruption instead.
func (c *Catalog) Replay(r io.Reader) (applied int, err error) {
	st, err := c.replay(r, true)
	return st.Applied, err
}

// ReplayCounted applies a journal stream, skipping corrupt or
// truncated lines rather than aborting, and reports how many entries
// applied and how many lines were skipped. Recovery and replication
// paths use it so one torn tail write cannot strand the entries behind
// it — but the skip count is surfaced (log + metric) by every caller.
func (c *Catalog) ReplayCounted(r io.Reader) (ReplayStats, error) {
	return c.replay(r, false)
}

func (c *Catalog) replay(r io.Reader, strict bool) (st ReplayStats, err error) {
	// Detach the journal while replaying: replayed mutations must not be
	// re-logged.
	c.mu.Lock()
	saved := c.journal
	c.journal = nil
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.journal = saved
		c.mu.Unlock()
	}()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if strict {
				return st, types.E("replay", "", err)
			}
			st.Corrupt++
			continue
		}
		if c.apply(&e) {
			st.Applied++
		}
	}
	return st, sc.Err()
}

// ReplayFile replays a journal file strictly (corruption aborts); a
// missing file applies nothing.
func (c *Catalog) ReplayFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, types.E("replay", path, err)
	}
	defer f.Close()
	return c.Replay(f)
}

// ReplayFileCounted replays a journal file tolerantly (see
// ReplayCounted); a missing file applies nothing.
func (c *Catalog) ReplayFileCounted(path string) (ReplayStats, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ReplayStats{}, nil
		}
		return ReplayStats{}, types.E("replay", path, err)
	}
	defer f.Close()
	return c.ReplayCounted(f)
}

// ApplyEntry applies one encoded journal line to the catalog — the
// follower side of shard replication. The entry is applied with the
// journal detached (no re-log through the mutation methods) and then,
// if it took effect, appended verbatim to the attached journal so the
// follower's own log stays a byte-identical copy of the leader's.
// The caller must be the shard's sole writer while replication is
// active; the router's role guard enforces that for routed traffic.
func (c *Catalog) ApplyEntry(line []byte) (bool, error) {
	var e journalEntry
	if err := json.Unmarshal(line, &e); err != nil {
		return false, types.E("replicate", "", err)
	}
	c.mu.Lock()
	saved := c.journal
	c.journal = nil
	c.mu.Unlock()
	applied := c.apply(&e)
	c.mu.Lock()
	c.journal = saved
	c.mu.Unlock()
	if applied && saved != nil {
		_ = saved.AppendRaw(line)
	}
	return applied, nil
}

// apply executes one journal entry, reporting whether it took effect.
func (c *Catalog) apply(e *journalEntry) bool {
	switch e.Op {
	case "adduser":
		return e.User != nil && c.AddUser(*e.User) == nil
	case "deluser":
		return c.DeleteUser(e.Name) == nil
	case "addgroup":
		return c.AddGroup(e.Group) == nil
	case "addtogroup":
		return c.AddToGroup(e.Group, e.Member) == nil
	case "rmfromgroup":
		return c.RemoveFromGroup(e.Group, e.Member) == nil
	case "addresource":
		return e.Resource != nil && c.AddResource(*e.Resource) == nil
	case "delresource":
		return c.DeleteResource(e.Name) == nil
	case "setonline":
		return c.SetResourceOnline(e.Name, e.Online) == nil
	case "replpolicy":
		return c.SetResourcePolicy(e.Name, e.Value) == nil
	case "repairenq":
		return e.Repair != nil && c.restoreRepair(e.Repair)
	case "repairdone":
		c.CompleteRepair(e.Name)
		return true
	case "mkcoll":
		return e.Coll != nil && c.restoreColl(e.Coll)
	case "rmcoll":
		return c.DeleteColl(e.Path) == nil
	case "movecoll":
		return c.MoveColl(e.Path, e.Path2) == nil
	case "register":
		return e.Object != nil && c.restoreObject(e.Object)
	case "update":
		return e.Object != nil && c.replaceObject(e.Object)
	case "delete":
		return c.DeleteObject(e.Path) == nil
	case "move":
		return c.MoveObject(e.Path, e.Path2, e.Name) == nil
	case "setacl":
		lvl := acl.Level(e.Level)
		return c.SetACL(e.Path, e.Grantee, lvl) == nil
	case "setresourceacl":
		return c.SetResourceACL(e.Name, e.Grantee, acl.Level(e.Level)) == nil
	case "addmeta":
		return e.AVU != nil && c.AddMeta(e.Path, types.MetaClass(e.Class), *e.AVU) == nil
	case "updmeta":
		if e.AVU == nil || e.NewAVU == nil {
			return false
		}
		n, err := c.UpdateMeta(e.Path, types.MetaClass(e.Class), e.AVU.Name, e.AVU.Value, *e.NewAVU)
		return err == nil && n > 0
	case "delmeta":
		if e.AVU == nil {
			return false
		}
		n, err := c.DeleteMeta(e.Path, types.MetaClass(e.Class), e.AVU.Name, e.AVU.Value)
		return err == nil && n > 0
	case "copymeta":
		return c.CopyMeta(e.Path, e.Path2) == nil
	case "filemeta":
		return c.AttachFileMeta(e.Path, e.Path2) == nil
	case "structural":
		return e.Attr != nil && c.SetStructural(e.Path, *e.Attr) == nil
	case "delstructural":
		return c.DeleteStructural(e.Path, e.Name) == nil
	case "annotate":
		return e.Ann != nil && c.AddAnnotation(e.Path, *e.Ann) == nil
	case "delannotations":
		n, err := c.DeleteAnnotations(e.Path, e.Name)
		return err == nil && n > 0
	case "linkcoll":
		// Logged as the full linked collection (LinkTarget included);
		// restored structurally so a dangling target is preserved too.
		return e.Coll != nil && c.restoreColl(e.Coll)
	default:
		return false
	}
}

// restoreColl re-creates a collection exactly (journal replay path).
func (c *Catalog) restoreColl(col *types.Collection) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.colls[col.Path]; ok {
		return false
	}
	if _, ok := c.colls[types.Parent(col.Path)]; !ok {
		return false
	}
	cp := *col
	c.colls[col.Path] = &cp
	c.addChildColl(types.Parent(col.Path), col.Path)
	return true
}

// restoreObject re-registers an object with its original identity.
func (c *Catalog) restoreObject(o *types.DataObject) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	path := o.Path()
	if _, ok := c.objects[path]; ok {
		return false
	}
	if _, ok := c.colls[o.Collection]; !ok {
		return false
	}
	cp := cloneObject(o)
	c.objects[path] = cp
	c.byID[cp.ID] = path
	c.addChildObj(o.Collection, path)
	if cp.ID >= c.nextID {
		c.nextID = c.alignIDLocked(cp.ID + 1)
	}
	return true
}

// replaceObject overwrites an object's mutable state (replay of
// UpdateObject results, which are journaled as whole objects).
func (c *Catalog) replaceObject(o *types.DataObject) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	path := o.Path()
	cur, ok := c.objects[path]
	if !ok {
		return false
	}
	cp := cloneObject(o)
	cp.ID = cur.ID
	c.objects[path] = cp
	return true
}
