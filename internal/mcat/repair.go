package mcat

import (
	"sort"
	"time"

	"gosrb/internal/types"
)

// The pending repair queue lives in the catalog because the catalog is
// the single source of truth the paper's MCAT stands for: an async
// write is only durable once the deferred fan-out it implies is
// recorded next to the object rows. Enqueue and completion are
// journaled ("repairenq"/"repairdone"), so a daemon restart replays the
// queue back exactly as it stood; the snapshot carries it across
// journal rotation.

// EnqueueRepair adds a task to the pending queue. Tasks deduplicate on
// Key (Path + "|" + Resource): re-enqueueing an already-pending key is
// a no-op and returns false.
func (c *Catalog) EnqueueRepair(t types.RepairTask) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Key == "" {
		t.Key = types.RepairKey(t.Path, t.Resource)
	}
	if _, ok := c.repairs[t.Key]; ok {
		return false
	}
	if t.Enqueued.IsZero() {
		t.Enqueued = c.now()
	}
	c.repairs[t.Key] = &t
	c.log(journalEntry{Op: "repairenq", Repair: &t})
	return true
}

// CompleteRepair removes a finished (or obsolete) task from the queue.
// Returns false when the key was not pending.
func (c *Catalog) CompleteRepair(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.repairs[key]; !ok {
		return false
	}
	delete(c.repairs, key)
	c.log(journalEntry{Op: "repairdone", Name: key})
	return true
}

// NoteRepairAttempt records one failed execution of a pending task so
// the attempt count survives a restart (best effort — not fsynced per
// attempt).
func (c *Catalog) NoteRepairAttempt(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.repairs[key]
	if !ok {
		return 0
	}
	t.Attempts++
	c.log(journalEntry{Op: "repairenq", Repair: t})
	return t.Attempts
}

// restoreRepair upserts a journaled task during replay. An upsert
// (not EnqueueRepair) because attempt-count re-logs must overwrite the
// original entry instead of being dropped as duplicates.
func (c *Catalog) restoreRepair(t *types.RepairTask) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := *t
	if cp.Key == "" {
		cp.Key = types.RepairKey(cp.Path, cp.Resource)
	}
	c.repairs[cp.Key] = &cp
	return true
}

// PendingRepairs returns a copy of the queue, oldest first (ties broken
// by key so the order is deterministic).
func (c *Catalog) PendingRepairs() []types.RepairTask {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]types.RepairTask, 0, len(c.repairs))
	for _, t := range c.repairs {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Enqueued.Equal(out[j].Enqueued) {
			return out[i].Enqueued.Before(out[j].Enqueued)
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// RepairBacklog reports the queue depth and the enqueue time of the
// oldest pending task (zero time when the queue is empty).
func (c *Catalog) RepairBacklog() (int, time.Time) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var oldest time.Time
	for _, t := range c.repairs {
		if oldest.IsZero() || t.Enqueued.Before(oldest) {
			oldest = t.Enqueued
		}
	}
	return len(c.repairs), oldest
}
