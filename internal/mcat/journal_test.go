package mcat

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"gosrb/internal/acl"
	"gosrb/internal/types"
)

// journalRoundTrip exercises a mutation sequence with a journal
// attached, replays it into a fresh catalog, and returns both.
func journalRoundTrip(t *testing.T, mutate func(c *Catalog)) (*Catalog, *Catalog) {
	t.Helper()
	var buf bytes.Buffer
	c1 := New("admin", "sdsc")
	c1.SetJournal(NewJournal(&buf))
	mutate(c1)
	c2 := New("admin", "sdsc")
	if _, err := c2.Replay(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return c1, c2
}

func TestJournalReplaysNamespace(t *testing.T) {
	c1, c2 := journalRoundTrip(t, func(c *Catalog) {
		c.AddUser(types.User{Name: "alice", Domain: "sdsc"})
		c.AddResource(types.Resource{Name: "r1", Kind: types.ResourcePhysical, Driver: "memfs"})
		c.MkColl("/home", "admin")
		c.MkCollAll("/home/alice/deep", "alice")
		mustRegister(t, c, "/home/alice", "f.txt", "alice")
		c.UpdateObject("/home/alice/f.txt", func(o *types.DataObject) error {
			o.Size = 42
			o.Replicas = []types.Replica{{Number: 0, Resource: "r1", PhysicalPath: "/v/1", Status: types.ReplicaClean}}
			return nil
		})
		c.MoveObject("/home/alice/f.txt", "/home/alice/deep", "g.txt")
	})
	o1, err1 := c1.GetObject("/home/alice/deep/g.txt")
	o2, err2 := c2.GetObject("/home/alice/deep/g.txt")
	if err1 != nil || err2 != nil {
		t.Fatalf("objects: %v / %v", err1, err2)
	}
	if o1.ID != o2.ID || o2.Size != 42 || len(o2.Replicas) != 1 {
		t.Errorf("replayed object = %+v, want %+v", o2, o1)
	}
	if _, err := c2.GetUser("alice"); err != nil {
		t.Error("user lost in replay")
	}
	if _, err := c2.GetResource("r1"); err != nil {
		t.Error("resource lost in replay")
	}
	// IDs continue past the replayed maximum.
	id2 := mustRegister(t, c2, "/home", "new", "alice")
	if id2 <= o2.ID {
		t.Errorf("nextID after replay: %d <= %d", id2, o2.ID)
	}
}

func TestJournalReplaysMetadataAndACLs(t *testing.T) {
	c1, c2 := journalRoundTrip(t, func(c *Catalog) {
		c.AddUser(types.User{Name: "bob", Domain: "x"})
		c.AddGroup("curators")
		c.AddToGroup("curators", "bob")
		c.MkColl("/d", "admin")
		mustRegister(t, c, "/d", "f", "admin")
		c.AddMeta("/d/f", types.MetaUser, types.AVU{Name: "color", Value: "red"})
		c.AddMeta("/d/f", types.MetaUser, types.AVU{Name: "color", Value: "blue"})
		c.UpdateMeta("/d/f", types.MetaUser, "color", "red", types.AVU{Name: "color", Value: "green"})
		c.DeleteMeta("/d/f", types.MetaUser, "color", "blue")
		c.SetACL("/d/f", "bob", acl.Write)
		c.SetACL("/d", acl.GroupPrefix+"curators", acl.Annotate)
		c.SetStructural("/d", types.StructuralAttr{Name: "need", Mandatory: true})
		c.AddAnnotation("/d/f", types.Annotation{Author: "bob", Text: "note"})
	})
	m1, _ := c1.GetMeta("/d/f", types.MetaUser)
	m2, _ := c2.GetMeta("/d/f", types.MetaUser)
	if len(m1) != 1 || len(m2) != 1 || m2[0].Value != "green" {
		t.Errorf("meta after replay = %+v (orig %+v)", m2, m1)
	}
	// The attribute index was rebuilt by the replayed mutations.
	hits, _ := c2.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "color", Op: "=", Value: "green"}}})
	if len(hits) != 1 {
		t.Errorf("index after replay: %+v", hits)
	}
	if got := c2.EffectiveLevel("/d/f", "bob"); got != acl.Write {
		t.Errorf("ACL after replay = %v", got)
	}
	if !c2.GroupsOf("bob")["curators"] {
		t.Error("group membership lost")
	}
	if len(c2.Structural("/d")) != 1 {
		t.Error("structural lost")
	}
	if anns, _ := c2.Annotations("/d/f"); len(anns) != 1 {
		t.Error("annotation lost")
	}
}

func TestJournalReplaysDeletesAndLinks(t *testing.T) {
	_, c2 := journalRoundTrip(t, func(c *Catalog) {
		c.MkColl("/a", "admin")
		c.MkColl("/b", "admin")
		mustRegister(t, c, "/a", "gone", "admin")
		c.DeleteObject("/a/gone")
		c.MkColl("/a/sub", "admin")
		c.MoveColl("/a/sub", "/b/sub")
		c.LinkColl("/b/sub", "/a/lnk", "admin")
		c.DeleteColl("/b/sub") // empty; the link dangles but stays
	})
	if _, err := c2.GetObject("/a/gone"); err == nil {
		t.Error("deleted object resurrected by replay")
	}
	if c2.CollExists("/b/sub") {
		t.Error("deleted collection resurrected")
	}
	col, err := c2.GetColl("/a/lnk")
	if err != nil || col.LinkTarget != "/b/sub" {
		t.Errorf("linked collection after replay = %+v, %v", col, err)
	}
}

func TestSnapshotPlusJournalTail(t *testing.T) {
	// The intended recovery flow: load the snapshot, then replay the
	// journal tail written after it.
	c1 := New("admin", "sdsc")
	c1.MkColl("/d", "admin")
	mustRegister(t, c1, "/d", "before", "admin")
	var snap bytes.Buffer
	if err := c1.Save(&snap); err != nil {
		t.Fatal(err)
	}
	var tail bytes.Buffer
	c1.SetJournal(NewJournal(&tail))
	mustRegister(t, c1, "/d", "after", "admin")
	c1.AddMeta("/d/after", types.MetaUser, types.AVU{Name: "k", Value: "v"})

	c2 := New("admin", "sdsc")
	if err := c2.Load(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	applied, err := c2.Replay(bytes.NewReader(tail.Bytes()))
	if err != nil || applied != 2 {
		t.Fatalf("Replay applied %d, %v", applied, err)
	}
	for _, p := range []string{"/d/before", "/d/after"} {
		if _, err := c2.GetObject(p); err != nil {
			t.Errorf("missing %s after recovery: %v", p, err)
		}
	}
}

func TestReplayIsIdempotentOnDuplicates(t *testing.T) {
	var buf bytes.Buffer
	c1 := New("admin", "sdsc")
	c1.SetJournal(NewJournal(&buf))
	c1.MkColl("/d", "admin")
	mustRegister(t, c1, "/d", "f", "admin")

	c2 := New("admin", "sdsc")
	// Replay the same journal twice: duplicates are skipped, not fatal.
	if _, err := c2.Replay(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	applied, err := c2.Replay(bytes.NewReader(buf.Bytes()))
	if err != nil || applied != 0 {
		t.Errorf("second replay applied %d, %v", applied, err)
	}
	if len(c2.SubtreeObjects("/")) != 1 {
		t.Error("duplicate replay must not duplicate objects")
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	c := New("admin", "sdsc")
	if _, err := c.Replay(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage journal should fail")
	}
	// Unknown ops are skipped, not fatal.
	applied, err := c.Replay(strings.NewReader(`{"Op":"future-op"}` + "\n"))
	if err != nil || applied != 0 {
		t.Errorf("unknown op: applied=%d err=%v", applied, err)
	}
}

func TestJournalFile(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "mcat.journal")
	j, err := OpenJournalFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	c1 := New("admin", "sdsc")
	c1.SetJournal(j)
	c1.MkColl("/d", "admin")
	mustRegister(t, c1, "/d", "f", "admin")
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := New("admin", "sdsc")
	applied, err := c2.ReplayFile(jpath)
	if err != nil || applied != 2 {
		t.Fatalf("ReplayFile applied %d, %v", applied, err)
	}
	if _, err := c2.GetObject("/d/f"); err != nil {
		t.Error("file journal replay lost the object")
	}
	// Missing journals apply nothing.
	if n, err := c2.ReplayFile(filepath.Join(dir, "absent")); n != 0 || err != nil {
		t.Errorf("missing journal: %d, %v", n, err)
	}
}

func TestReplayDoesNotRelog(t *testing.T) {
	var src bytes.Buffer
	c1 := New("admin", "sdsc")
	c1.SetJournal(NewJournal(&src))
	c1.MkColl("/d", "admin")

	var dst bytes.Buffer
	c2 := New("admin", "sdsc")
	c2.SetJournal(NewJournal(&dst))
	if _, err := c2.Replay(bytes.NewReader(src.Bytes())); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 0 {
		t.Errorf("replay re-logged %d bytes", dst.Len())
	}
	// After replay the journal is reattached: new mutations log again.
	c2.MkColl("/e", "admin")
	if dst.Len() == 0 {
		t.Error("journal should be reattached after replay")
	}
}
