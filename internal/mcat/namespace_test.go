package mcat

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"gosrb/internal/types"
)

func newCat(t *testing.T) *Catalog {
	t.Helper()
	return New("admin", "sdsc")
}

func mustMkColl(t *testing.T, c *Catalog, path, owner string) {
	t.Helper()
	if err := c.MkColl(path, owner); err != nil {
		t.Fatalf("MkColl(%s): %v", path, err)
	}
}

func mustRegister(t *testing.T, c *Catalog, coll, name, owner string) types.ObjectID {
	t.Helper()
	id, err := c.RegisterObject(&types.DataObject{
		Name: name, Collection: coll, Owner: owner, DataType: "generic",
		Replicas: []types.Replica{{Number: 0, Resource: "r1", PhysicalPath: "/phys/" + name}},
	})
	if err != nil {
		t.Fatalf("RegisterObject(%s/%s): %v", coll, name, err)
	}
	return id
}

func TestMkCollHierarchy(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/home", "admin")
	mustMkColl(t, c, "/home/sekar", "sekar")
	if err := c.MkColl("/home/sekar", "sekar"); !errors.Is(err, types.ErrExists) {
		t.Errorf("dup coll: %v", err)
	}
	if err := c.MkColl("/no/parent/here", "x"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("orphan coll: %v", err)
	}
	if err := c.MkColl("/", "x"); !errors.Is(err, types.ErrExists) {
		t.Errorf("root recreate: %v", err)
	}
	if err := c.MkCollAll("/a/b/c/d", "admin"); err != nil {
		t.Fatalf("MkCollAll: %v", err)
	}
	if !c.CollExists("/a/b/c") {
		t.Error("MkCollAll should create ancestors")
	}
	got, err := c.GetColl("/home/sekar")
	if err != nil || got.Owner != "sekar" {
		t.Errorf("GetColl = %+v, %v", got, err)
	}
}

func TestRegisterAndGetObject(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/data", "admin")
	id := mustRegister(t, c, "/data", "f.txt", "alice")
	o, err := c.GetObject("/data/f.txt")
	if err != nil {
		t.Fatal(err)
	}
	if o.ID != id || o.Owner != "alice" || len(o.Replicas) != 1 {
		t.Errorf("object = %+v", o)
	}
	byID, err := c.GetObjectByID(id)
	if err != nil || byID.Path() != "/data/f.txt" {
		t.Errorf("GetObjectByID = %+v, %v", byID, err)
	}
	if _, err := c.RegisterObject(&types.DataObject{Name: "f.txt", Collection: "/data"}); !errors.Is(err, types.ErrExists) {
		t.Errorf("dup object: %v", err)
	}
	if _, err := c.RegisterObject(&types.DataObject{Name: "x", Collection: "/ghost"}); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("orphan object: %v", err)
	}
	if _, err := c.RegisterObject(&types.DataObject{Name: "a/b", Collection: "/data"}); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("bad name: %v", err)
	}
	// Registering a name that collides with a collection fails.
	mustMkColl(t, c, "/data/sub", "admin")
	if _, err := c.RegisterObject(&types.DataObject{Name: "sub", Collection: "/data"}); !errors.Is(err, types.ErrExists) {
		t.Errorf("object/coll collision: %v", err)
	}
}

func TestGetObjectReturnsCopy(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/d", "admin")
	mustRegister(t, c, "/d", "f", "u")
	o1, _ := c.GetObject("/d/f")
	o1.Replicas[0].Resource = "tampered"
	o1.Size = 999
	o2, _ := c.GetObject("/d/f")
	if o2.Replicas[0].Resource == "tampered" || o2.Size == 999 {
		t.Error("GetObject must return an independent copy")
	}
}

func TestListColl(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/d", "admin")
	mustMkColl(t, c, "/d/sub", "admin")
	mustRegister(t, c, "/d", "b.txt", "u")
	mustRegister(t, c, "/d", "a.txt", "u")
	stats, err := c.ListColl("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("ListColl = %+v", stats)
	}
	// collections first, then objects, each sorted
	if !stats[0].IsCollect || stats[0].Path != "/d/sub" {
		t.Errorf("first entry = %+v", stats[0])
	}
	if stats[1].Path != "/d/a.txt" || stats[2].Path != "/d/b.txt" {
		t.Errorf("object order = %+v", stats[1:])
	}
	if _, err := c.ListColl("/ghost"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("list missing: %v", err)
	}
}

func TestUpdateObject(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/d", "admin")
	mustRegister(t, c, "/d", "f", "u")
	err := c.UpdateObject("/d/f", func(o *types.DataObject) error {
		o.Size = 123
		o.Replicas = append(o.Replicas, types.Replica{Number: 1, Resource: "r2"})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	o, _ := c.GetObject("/d/f")
	if o.Size != 123 || len(o.Replicas) != 2 {
		t.Errorf("after update = %+v", o)
	}
	// A failing mutator leaves the object untouched.
	errBoom := errors.New("boom")
	err = c.UpdateObject("/d/f", func(o *types.DataObject) error {
		o.Size = 999
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("expected boom, got %v", err)
	}
	o, _ = c.GetObject("/d/f")
	if o.Size != 123 {
		t.Error("failed update must not apply")
	}
	// Identity fields cannot be changed through UpdateObject.
	c.UpdateObject("/d/f", func(o *types.DataObject) error {
		o.Name = "hacked"
		return nil
	})
	if _, err := c.GetObject("/d/f"); err != nil {
		t.Error("identity must be preserved")
	}
}

func TestDeleteObjectAndColl(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/d", "admin")
	mustRegister(t, c, "/d", "f", "u")
	if err := c.DeleteColl("/d"); !errors.Is(err, types.ErrNotEmpty) {
		t.Errorf("non-empty delete: %v", err)
	}
	if err := c.DeleteObject("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteObject("/d/f"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	if err := c.DeleteColl("/d"); err != nil {
		t.Fatal(err)
	}
	if c.CollExists("/d") {
		t.Error("collection should be gone")
	}
	if err := c.DeleteColl("/"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("root delete: %v", err)
	}
}

func TestMoveObject(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/a", "admin")
	mustMkColl(t, c, "/b", "admin")
	id := mustRegister(t, c, "/a", "f", "u")
	c.AddMeta("/a/f", types.MetaUser, types.AVU{Name: "color", Value: "red"})
	if err := c.MoveObject("/a/f", "/b", "g"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetObject("/a/f"); !errors.Is(err, types.ErrNotFound) {
		t.Error("old path should be gone")
	}
	o, err := c.GetObject("/b/g")
	if err != nil || o.ID != id {
		t.Fatalf("moved object: %+v, %v", o, err)
	}
	// Metadata follows the move.
	avus, _ := c.GetMeta("/b/g", types.MetaUser)
	if len(avus) != 1 || avus[0].Value != "red" {
		t.Errorf("meta after move = %+v", avus)
	}
	// And remains queryable at the new path.
	hits, _ := c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "color", Op: "=", Value: "red"}}})
	if len(hits) != 1 || hits[0].Path != "/b/g" {
		t.Errorf("query after move = %+v", hits)
	}
	// Destination collision.
	mustRegister(t, c, "/b", "h", "u")
	if err := c.MoveObject("/b/g", "/b", "h"); !errors.Is(err, types.ErrExists) {
		t.Errorf("collision: %v", err)
	}
}

func TestMoveColl(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/proj", "admin")
	mustMkColl(t, c, "/proj/run1", "admin")
	mustMkColl(t, c, "/proj/run1/raw", "admin")
	mustRegister(t, c, "/proj/run1", "log.txt", "u")
	mustRegister(t, c, "/proj/run1/raw", "d0", "u")
	c.AddMeta("/proj/run1/raw/d0", types.MetaUser, types.AVU{Name: "kind", Value: "raw"})
	mustMkColl(t, c, "/archive", "admin")

	if err := c.MoveColl("/proj/run1", "/archive/run1"); err != nil {
		t.Fatal(err)
	}
	if c.CollExists("/proj/run1") {
		t.Error("old subtree should be gone")
	}
	for _, p := range []string{"/archive/run1", "/archive/run1/raw"} {
		if !c.CollExists(p) {
			t.Errorf("missing moved collection %s", p)
		}
	}
	if _, err := c.GetObject("/archive/run1/log.txt"); err != nil {
		t.Errorf("moved object: %v", err)
	}
	o, err := c.GetObject("/archive/run1/raw/d0")
	if err != nil || o.Collection != "/archive/run1/raw" {
		t.Errorf("deep moved object: %+v, %v", o, err)
	}
	hits, _ := c.RunQuery(Query{Scope: "/archive", Conds: []Condition{{Attr: "kind", Op: "=", Value: "raw"}}})
	if len(hits) != 1 {
		t.Errorf("query after MoveColl = %+v", hits)
	}
	// Listing the new parent shows the moved collection.
	stats, _ := c.ListColl("/archive")
	if len(stats) != 1 || stats[0].Path != "/archive/run1" {
		t.Errorf("ListColl after move = %+v", stats)
	}
	// Guards.
	if err := c.MoveColl("/archive/run1", "/archive/run1/sub"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("move into self: %v", err)
	}
	if err := c.MoveColl("/ghost", "/x"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("move missing: %v", err)
	}
}

func TestLinkCollAndResolve(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/cultures", "curator")
	mustMkColl(t, c, "/cultures/avian", "curator")
	mustMkColl(t, c, "/mine", "alice")
	if err := c.LinkColl("/cultures/avian", "/mine/birds", "alice"); err != nil {
		t.Fatal(err)
	}
	eff, err := c.ResolveColl("/mine/birds")
	if err != nil || eff != "/cultures/avian" {
		t.Errorf("ResolveColl = %q, %v", eff, err)
	}
	// Linking to a link collapses to the original target.
	mustMkColl(t, c, "/yours", "bob")
	if err := c.LinkColl("/mine/birds", "/yours/birds", "bob"); err != nil {
		t.Fatal(err)
	}
	col, _ := c.GetColl("/yours/birds")
	if col.LinkTarget != "/cultures/avian" {
		t.Errorf("chained link target = %q", col.LinkTarget)
	}
	// Registering into a linked collection lands in the target.
	mustRegister(t, c, "/mine/birds", "finch.jpg", "alice")
	if _, err := c.GetObject("/cultures/avian/finch.jpg"); err != nil {
		t.Errorf("object should land in link target: %v", err)
	}
	// Listing through the link shows target members.
	stats, _ := c.ListColl("/mine/birds")
	if len(stats) != 1 {
		t.Errorf("list through link = %+v", stats)
	}
	// A linked sub-collection can be removed without touching the target.
	if err := c.DeleteColl("/mine/birds"); err != nil {
		t.Fatal(err)
	}
	if !c.CollExists("/cultures/avian") {
		t.Error("target must survive link deletion")
	}
	// Cycle guard: cannot link a collection beneath its own target.
	if err := c.LinkColl("/cultures", "/cultures/self", "x"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("cycle link: %v", err)
	}
}

func TestObjectLinksIndex(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/d", "admin")
	mustMkColl(t, c, "/links", "admin")
	mustRegister(t, c, "/d", "orig", "u")
	_, err := c.RegisterObject(&types.DataObject{
		Name: "ln", Collection: "/links", Owner: "u",
		Kind: types.KindLink, LinkTarget: "/d/orig",
	})
	if err != nil {
		t.Fatal(err)
	}
	links := c.LinksTo("/d/orig")
	if len(links) != 1 || links[0] != "/links/ln" {
		t.Errorf("LinksTo = %v", links)
	}
	resolved, err := c.ResolveObject("/links/ln")
	if err != nil || resolved.Path() != "/d/orig" {
		t.Errorf("ResolveObject = %+v, %v", resolved, err)
	}
}

func TestSubtreeObjects(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/a", "admin")
	mustMkColl(t, c, "/a/b", "admin")
	mustRegister(t, c, "/a", "1", "u")
	mustRegister(t, c, "/a/b", "2", "u")
	mustMkColl(t, c, "/z", "admin")
	mustRegister(t, c, "/z", "3", "u")
	got := c.SubtreeObjects("/a")
	if len(got) != 2 || got[0] != "/a/1" || got[1] != "/a/b/2" {
		t.Errorf("SubtreeObjects = %v", got)
	}
	if len(c.SubtreeObjects("/")) != 3 {
		t.Error("root subtree should see everything")
	}
}

func TestConcurrentCatalogAccess(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/c", "admin")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("f-%d-%d", w, i)
				if _, err := c.RegisterObject(&types.DataObject{Name: name, Collection: "/c", Owner: "u"}); err != nil {
					t.Errorf("register: %v", err)
					return
				}
				c.AddMeta("/c/"+name, types.MetaUser, types.AVU{Name: "w", Value: fmt.Sprint(w)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.ListColl("/c")
				c.RunQuery(Query{Scope: "/c", Conds: []Condition{{Attr: "w", Op: "=", Value: "1"}}})
			}
		}()
	}
	wg.Wait()
	if got := c.Stats().Objects; got != 200 {
		t.Errorf("objects = %d, want 200", got)
	}
}

func TestStats(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/d", "admin")
	mustRegister(t, c, "/d", "f", "u")
	c.AddMeta("/d/f", types.MetaUser, types.AVU{Name: "a", Value: "1"})
	s := c.Stats()
	if s.Objects != 1 || s.Collections != 2 || s.Users != 1 || s.MetaEntries != 1 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestResolveHelpers(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/a", "admin")
	// ResolveColl of a plain collection is itself.
	if p, err := c.ResolveColl("/a"); err != nil || p != "/a" {
		t.Errorf("ResolveColl plain = %q, %v", p, err)
	}
	if _, err := c.ResolveColl("/ghost"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("ResolveColl missing = %v", err)
	}
	// A dangling linked collection resolves to an error.
	mustMkColl(t, c, "/b", "admin")
	if err := c.LinkColl("/b", "/a/lnk", "admin"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteColl("/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ResolveColl("/a/lnk"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("dangling link resolve = %v", err)
	}
	// ResolveObject on a plain object returns it.
	mustRegister(t, c, "/a", "f", "u")
	o, err := c.ResolveObject("/a/f")
	if err != nil || o.Name != "f" {
		t.Errorf("ResolveObject plain = %+v, %v", o, err)
	}
	// A broken object link resolves to an error.
	if _, err := c.RegisterObject(&types.DataObject{
		Name: "ln", Collection: "/a", Kind: types.KindLink, LinkTarget: "/a/ghost",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ResolveObject("/a/ln"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("broken link resolve = %v", err)
	}
	// GetObjectByID of an unknown id.
	if _, err := c.GetObjectByID(9999); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("byID missing = %v", err)
	}
}

func TestUserGroupErrorPaths(t *testing.T) {
	c := newCat(t)
	if err := c.DeleteUser("ghost"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("delete missing user = %v", err)
	}
	if err := c.AddUser(types.User{Name: "a/b"}); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("bad user name = %v", err)
	}
	if err := c.AddGroup("x/y"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("bad group name = %v", err)
	}
	if err := c.AddGroup("g"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddGroup("g"); !errors.Is(err, types.ErrExists) {
		t.Errorf("dup group = %v", err)
	}
	if err := c.AddToGroup("ghost", "admin"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("add to missing group = %v", err)
	}
	if err := c.AddToGroup("g", "ghost"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("add missing user = %v", err)
	}
	// Adding twice is idempotent.
	c.AddToGroup("g", "admin")
	if err := c.AddToGroup("g", "admin"); err != nil {
		t.Errorf("re-add = %v", err)
	}
	if err := c.RemoveFromGroup("ghost", "admin"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("remove from missing group = %v", err)
	}
}

func TestQueryLimitAndScopeEdge(t *testing.T) {
	c := newCat(t)
	mustMkColl(t, c, "/d", "admin")
	for i := 0; i < 5; i++ {
		mustRegister(t, c, "/d", fmt.Sprintf("f%d", i), "u")
		c.AddMeta(fmt.Sprintf("/d/f%d", i), types.MetaUser, types.AVU{Name: "k", Value: "v"})
	}
	hits, err := c.RunQuery(Query{Scope: "/d", Conds: []Condition{{Attr: "k", Op: "=", Value: "v"}}, Limit: 2})
	if err != nil || len(hits) != 2 {
		t.Errorf("limited query = %d hits, %v", len(hits), err)
	}
	// Metadata on the collection itself is indexed but scoped out of
	// object results.
	c.AddMeta("/d", types.MetaUser, types.AVU{Name: "k", Value: "v"})
	hits, _ = c.RunQuery(Query{Scope: "/", Conds: []Condition{{Attr: "k", Op: "=", Value: "v"}}})
	if len(hits) != 5 {
		t.Errorf("collection meta leaked into object hits: %d", len(hits))
	}
}
