package mcat

import (
	"gosrb/internal/acl"
	"gosrb/internal/types"
)

// Path-state export/import is the carrying half of cross-shard
// migration: when an object or a collection subtree changes its home
// partition, everything that rides on the path — permissions,
// descriptive metadata, structural rules, annotations and file-based
// metadata pointers — must travel with it. The importer reapplies the
// state through the normal mutators so every piece is journaled and
// replicates like any other write.

// PathState bundles the satellite state of one logical path.
type PathState struct {
	ACL        acl.List
	Meta       map[types.MetaClass][]types.AVU
	Structural []types.StructuralAttr
	Annots     []types.Annotation
	FileMeta   []string
}

// Empty reports whether the state carries nothing worth importing.
func (st PathState) Empty() bool {
	return len(st.ACL) == 0 && len(st.Meta) == 0 && len(st.Structural) == 0 &&
		len(st.Annots) == 0 && len(st.FileMeta) == 0
}

// ExportPathState captures the satellite state of path. Structural
// attributes are the path's own definitions only (not the inherited
// view), so importing onto the same relative position reproduces the
// original inheritance.
func (c *Catalog) ExportPathState(path string) PathState {
	path = types.CleanPath(path)
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := PathState{
		ACL:        c.acls[path].Clone(),
		Structural: append([]types.StructuralAttr(nil), c.structural[path]...),
		Annots:     append([]types.Annotation(nil), c.annots[path]...),
		FileMeta:   append([]string(nil), c.fileMeta[path]...),
	}
	if entries := c.meta[path]; len(entries) > 0 {
		st.Meta = make(map[types.MetaClass][]types.AVU)
		for _, e := range entries {
			st.Meta[e.Class] = append(st.Meta[e.Class], e.AVU)
		}
	}
	return st
}

// ImportPathState reapplies exported state to path, which must already
// exist here. Each piece goes through the ordinary mutator so it is
// journaled individually; a failure leaves the pieces applied so far in
// place and reports the first error.
func (c *Catalog) ImportPathState(path string, st PathState) error {
	path = types.CleanPath(path)
	for _, e := range st.ACL {
		if err := c.SetACL(path, e.Grantee, e.Level); err != nil {
			return err
		}
	}
	for class, avus := range st.Meta {
		for _, avu := range avus {
			if err := c.AddMeta(path, class, avu); err != nil {
				return err
			}
		}
	}
	for _, a := range st.Structural {
		if err := c.SetStructural(path, a); err != nil {
			return err
		}
	}
	for _, an := range st.Annots {
		if err := c.AddAnnotation(path, an); err != nil {
			return err
		}
	}
	for _, f := range st.FileMeta {
		if err := c.AttachFileMeta(path, f); err != nil {
			return err
		}
	}
	return nil
}

// ResourceACLList returns the explicit ACL of a resource (nil when
// none was granted) so migrations can carry resource permissions.
func (c *Catalog) ResourceACLList(resource string) acl.List {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.acls["resource:"+resource].Clone()
}

// AdoptColl inserts a fully-formed collection preserving its identity
// (owner, creation time, link target) — the receiving side of a
// subtree migration. The parent must already exist. The entry is
// journaled as a "mkcoll" of the whole collection so replay restores
// it exactly.
func (c *Catalog) AdoptColl(col types.Collection) error {
	col.Path = types.CleanPath(col.Path)
	c.mu.Lock()
	defer c.mu.Unlock()
	if col.Path == "/" {
		return types.E("adoptcoll", col.Path, types.ErrExists)
	}
	if !types.ValidName(types.Base(col.Path)) {
		return types.E("adoptcoll", col.Path, types.ErrInvalid)
	}
	if _, ok := c.colls[col.Path]; ok {
		return types.E("adoptcoll", col.Path, types.ErrExists)
	}
	if _, ok := c.objects[col.Path]; ok {
		return types.E("adoptcoll", col.Path, types.ErrExists)
	}
	parent := types.Parent(col.Path)
	if _, ok := c.colls[parent]; !ok {
		return types.E("adoptcoll", parent, types.ErrNotFound)
	}
	cp := col
	c.colls[col.Path] = &cp
	c.addChildColl(parent, col.Path)
	c.log(journalEntry{Op: "mkcoll", Coll: &cp})
	return nil
}
