package sqlengine

import (
	"fmt"
	"sort"
	"strings"
)

// scope resolves column references against the concatenated row of the
// tables in FROM-order.
type scope struct {
	// qualified maps "alias.column" to position.
	qualified map[string]int
	// unqualified maps "column" to position; -2 marks ambiguity.
	unqualified map[string]int
	width       int
	// names lists the flattened output column names in order.
	names []string
}

func newScope() *scope {
	return &scope{qualified: make(map[string]int), unqualified: make(map[string]int)}
}

// add appends a table's columns to the scope under the given alias.
func (s *scope) add(alias, table string, columns []string) {
	for _, c := range columns {
		pos := s.width
		s.qualified[strings.ToLower(alias+"."+c)] = pos
		if alias != table {
			s.qualified[strings.ToLower(table+"."+c)] = pos
		}
		key := strings.ToLower(c)
		if _, dup := s.unqualified[key]; dup {
			s.unqualified[key] = -2
		} else {
			s.unqualified[key] = pos
		}
		s.names = append(s.names, c)
		s.width++
	}
}

// resolve finds the row position of a column reference.
func (s *scope) resolve(ref *ColumnRef) (int, error) {
	if ref.Table != "" {
		if pos, ok := s.qualified[strings.ToLower(ref.Table+"."+ref.Column)]; ok {
			return pos, nil
		}
		return 0, fmt.Errorf("sql: unknown column %s.%s", ref.Table, ref.Column)
	}
	pos, ok := s.unqualified[strings.ToLower(ref.Column)]
	if !ok {
		return 0, fmt.Errorf("sql: unknown column %s", ref.Column)
	}
	if pos == -2 {
		return 0, fmt.Errorf("sql: ambiguous column %s", ref.Column)
	}
	return pos, nil
}

// eval computes expr over one combined row.
func eval(e Expr, s *scope, row Row) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColumnRef:
		pos, err := s.resolve(x)
		if err != nil {
			return Null(), err
		}
		if pos >= len(row) {
			return Null(), nil
		}
		return row[pos], nil
	case *NotExpr:
		v, err := eval(x.X, s, row)
		if err != nil {
			return Null(), err
		}
		return Bool(!v.Truth()), nil
	case *BinaryExpr:
		return evalBinary(x, s, row)
	case *InExpr:
		v, err := eval(x.X, s, row)
		if err != nil {
			return Null(), err
		}
		found := false
		for _, item := range x.List {
			iv, err := eval(item, s, row)
			if err != nil {
				return Null(), err
			}
			if Equal(v, iv) {
				found = true
				break
			}
		}
		return Bool(found != x.Negate), nil
	case *IsNullExpr:
		v, err := eval(x.X, s, row)
		if err != nil {
			return Null(), err
		}
		return Bool(v.IsNull() != x.Negate), nil
	case *BetweenExpr:
		v, err := eval(x.X, s, row)
		if err != nil {
			return Null(), err
		}
		lo, err := eval(x.Lo, s, row)
		if err != nil {
			return Null(), err
		}
		hi, err := eval(x.Hi, s, row)
		if err != nil {
			return Null(), err
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		return Bool(in != x.Negate), nil
	case *AggregateExpr:
		return Null(), fmt.Errorf("sql: aggregate %s used outside an aggregating query", x.Func)
	default:
		return Null(), fmt.Errorf("sql: cannot evaluate %T", e)
	}
}

func evalBinary(x *BinaryExpr, s *scope, row Row) (Value, error) {
	// Short-circuit logical operators.
	switch x.Op {
	case "AND":
		l, err := eval(x.Left, s, row)
		if err != nil {
			return Null(), err
		}
		if !l.Truth() {
			return Bool(false), nil
		}
		r, err := eval(x.Right, s, row)
		if err != nil {
			return Null(), err
		}
		return Bool(r.Truth()), nil
	case "OR":
		l, err := eval(x.Left, s, row)
		if err != nil {
			return Null(), err
		}
		if l.Truth() {
			return Bool(true), nil
		}
		r, err := eval(x.Right, s, row)
		if err != nil {
			return Null(), err
		}
		return Bool(r.Truth()), nil
	}
	l, err := eval(x.Left, s, row)
	if err != nil {
		return Null(), err
	}
	r, err := eval(x.Right, s, row)
	if err != nil {
		return Null(), err
	}
	switch x.Op {
	case "=":
		return Bool(Equal(l, r)), nil
	case "<>":
		if l.IsNull() || r.IsNull() {
			return Bool(false), nil
		}
		return Bool(!Equal(l, r)), nil
	case "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Bool(false), nil
		}
		c := Compare(l, r)
		switch x.Op {
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case "LIKE":
		return Bool(Like(l.Text(), r.Text())), nil
	case "NOT LIKE":
		return Bool(!Like(l.Text(), r.Text())), nil
	default:
		return Null(), fmt.Errorf("sql: unknown operator %q", x.Op)
	}
}

// execSelect runs a (possibly UNIONed) SELECT.
func (db *DB) execSelect(st *SelectStmt) (*Result, error) {
	res, err := db.execOneSelect(st)
	if err != nil {
		return nil, err
	}
	for u := st.Union; u != nil; u = u.Union {
		sub, err := db.execOneSelect(u)
		if err != nil {
			return nil, err
		}
		if len(sub.Columns) != len(res.Columns) {
			return nil, fmt.Errorf("sql: UNION column count mismatch (%d vs %d)", len(res.Columns), len(sub.Columns))
		}
		res.Rows = append(res.Rows, sub.Rows...)
		if !st.UnionAll {
			res.Rows = dedupeRows(res.Rows)
		}
	}
	return res, nil
}

func dedupeRows(rows []Row) []Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := rowKey(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

func rowKey(r Row) string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(fmt.Sprintf("%d:%s\x00", v.Kind, v.Text()))
	}
	return b.String()
}

// hasAggregate reports whether any select item contains an aggregate.
func hasAggregate(items []SelectItem) bool {
	for _, it := range items {
		if it.Expr == nil {
			continue
		}
		if containsAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func containsAggregate(e Expr) bool {
	switch x := e.(type) {
	case *AggregateExpr:
		return true
	case *BinaryExpr:
		return containsAggregate(x.Left) || containsAggregate(x.Right)
	case *NotExpr:
		return containsAggregate(x.X)
	case *InExpr:
		if containsAggregate(x.X) {
			return true
		}
		for _, i := range x.List {
			if containsAggregate(i) {
				return true
			}
		}
	case *IsNullExpr:
		return containsAggregate(x.X)
	case *BetweenExpr:
		return containsAggregate(x.X) || containsAggregate(x.Lo) || containsAggregate(x.Hi)
	}
	return false
}

func (db *DB) execOneSelect(st *SelectStmt) (*Result, error) {
	// SELECT without FROM evaluates items over one empty row.
	scope := newScope()
	rows := []Row{{}}
	if len(st.From) > 0 {
		var err error
		rows, err = db.scan(st, scope)
		if err != nil {
			return nil, err
		}
	}
	// WHERE
	if st.Where != nil {
		filtered := rows[:0:0]
		for _, row := range rows {
			v, err := eval(st.Where, scope, row)
			if err != nil {
				return nil, err
			}
			if v.Truth() {
				filtered = append(filtered, row)
			}
		}
		rows = filtered
	}

	grouped := len(st.GroupBy) > 0 || hasAggregate(st.Items)
	var res *Result
	var err error
	if grouped {
		res, err = projectGrouped(st, scope, rows)
	} else {
		res, err = projectPlain(st, scope, rows)
	}
	if err != nil {
		return nil, err
	}

	if st.Distinct {
		res.Rows = dedupeRows(res.Rows)
	}
	if len(st.OrderBy) > 0 {
		if err := orderRows(st, scope, res); err != nil {
			return nil, err
		}
	}
	if st.Limit >= 0 && len(res.Rows) > st.Limit {
		res.Rows = res.Rows[:st.Limit]
	}
	return res, nil
}

// scan materialises the cross product of FROM plus INNER JOINs.
func (db *DB) scan(st *SelectStmt, sc *scope) ([]Row, error) {
	type src struct {
		t  *Table
		on Expr // nil for plain FROM entries
	}
	var srcs []src
	for _, tr := range st.From {
		t, err := db.snapshot(tr.Table)
		if err != nil {
			return nil, err
		}
		alias := tr.Alias
		if alias == "" {
			alias = tr.Table
		}
		sc.add(alias, tr.Table, t.Columns)
		srcs = append(srcs, src{t: t})
	}
	for _, j := range st.Joins {
		t, err := db.snapshot(j.Table.Table)
		if err != nil {
			return nil, err
		}
		alias := j.Table.Alias
		if alias == "" {
			alias = j.Table.Table
		}
		sc.add(alias, j.Table.Table, t.Columns)
		srcs = append(srcs, src{t: t, on: j.On})
	}
	rows := []Row{{}}
	for _, s := range srcs {
		var next []Row
		for _, left := range rows {
			for _, right := range s.t.Rows {
				combined := make(Row, 0, len(left)+len(right))
				combined = append(combined, left...)
				combined = append(combined, right...)
				if s.on != nil {
					v, err := eval(s.on, sc, combined)
					if err != nil {
						return nil, err
					}
					if !v.Truth() {
						continue
					}
				}
				next = append(next, combined)
			}
		}
		rows = next
	}
	return rows, nil
}

// projectPlain evaluates the select list per row (no aggregation).
func projectPlain(st *SelectStmt, sc *scope, rows []Row) (*Result, error) {
	cols, evals, err := buildItems(st, sc)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols}
	for _, row := range rows {
		out := make(Row, 0, len(evals))
		for _, f := range evals {
			v, err := f(row, nil)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// itemEval computes one output cell: row is the current combined row
// (representative row for grouped queries), group the full group.
type itemEval func(row Row, group []Row) (Value, error)

// buildItems compiles the select list into column names and evaluators.
func buildItems(st *SelectStmt, sc *scope) ([]string, []itemEval, error) {
	var cols []string
	var evals []itemEval
	for _, it := range st.Items {
		if it.Star {
			for i, name := range sc.names {
				pos := i
				cols = append(cols, name)
				evals = append(evals, func(row Row, _ []Row) (Value, error) {
					if pos >= len(row) {
						return Null(), nil
					}
					return row[pos], nil
				})
			}
			continue
		}
		name := it.Alias
		if name == "" {
			name = exprName(it.Expr)
		}
		cols = append(cols, name)
		e := it.Expr
		evals = append(evals, func(row Row, group []Row) (Value, error) {
			if group != nil {
				return evalAggregate(e, sc, row, group)
			}
			return eval(e, sc, row)
		})
	}
	return cols, evals, nil
}

func exprName(e Expr) string {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table != "" {
			return x.Table + "." + x.Column
		}
		return x.Column
	case *AggregateExpr:
		if x.Star {
			return strings.ToLower(x.Func) + "(*)"
		}
		return strings.ToLower(x.Func) + "(" + exprName(x.Arg) + ")"
	case *Literal:
		return x.Val.Text()
	default:
		return "expr"
	}
}

// projectGrouped evaluates aggregation queries.
func projectGrouped(st *SelectStmt, sc *scope, rows []Row) (*Result, error) {
	cols, evals, err := buildItems(st, sc)
	if err != nil {
		return nil, err
	}
	// Partition rows into groups.
	groups := make(map[string][]Row)
	var order []string
	if len(st.GroupBy) == 0 {
		groups[""] = rows
		order = []string{""}
	} else {
		for _, row := range rows {
			var kb strings.Builder
			for _, ge := range st.GroupBy {
				v, err := eval(ge, sc, row)
				if err != nil {
					return nil, err
				}
				kb.WriteString(fmt.Sprintf("%d:%s\x00", v.Kind, v.Text()))
			}
			k := kb.String()
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], row)
		}
	}
	res := &Result{Columns: cols}
	for _, k := range order {
		g := groups[k]
		if g == nil {
			// An empty group (e.g. COUNT(*) over an empty table) must
			// still take the aggregate path below.
			g = []Row{}
		}
		var rep Row
		if len(g) > 0 {
			rep = g[0]
		}
		out := make(Row, 0, len(evals))
		for _, f := range evals {
			v, err := f(rep, g)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// evalAggregate evaluates an expression in a grouped context: aggregate
// calls fold over the group; everything else uses the representative row.
func evalAggregate(e Expr, sc *scope, rep Row, group []Row) (Value, error) {
	if agg, ok := e.(*AggregateExpr); ok {
		return foldAggregate(agg, sc, group)
	}
	if be, ok := e.(*BinaryExpr); ok && containsAggregate(be) {
		l, err := evalAggregate(be.Left, sc, rep, group)
		if err != nil {
			return Null(), err
		}
		r, err := evalAggregate(be.Right, sc, rep, group)
		if err != nil {
			return Null(), err
		}
		return evalBinary(&BinaryExpr{Op: be.Op, Left: &Literal{Val: l}, Right: &Literal{Val: r}}, sc, rep)
	}
	return eval(e, sc, rep)
}

func foldAggregate(agg *AggregateExpr, sc *scope, group []Row) (Value, error) {
	if agg.Star {
		if agg.Func != "COUNT" {
			return Null(), fmt.Errorf("sql: %s(*) is not valid", agg.Func)
		}
		return Int(int64(len(group))), nil
	}
	var vals []Value
	for _, row := range group {
		v, err := eval(agg.Arg, sc, row)
		if err != nil {
			return Null(), err
		}
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	switch agg.Func {
	case "COUNT":
		return Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		sum := 0.0
		for _, v := range vals {
			sum += v.Float()
		}
		if agg.Func == "AVG" {
			return Number(sum / float64(len(vals))), nil
		}
		return Number(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := Compare(v, best)
			if (agg.Func == "MIN" && c < 0) || (agg.Func == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return Null(), fmt.Errorf("sql: unknown aggregate %s", agg.Func)
	}
}

// orderRows sorts res.Rows by the ORDER BY keys. Keys that name an
// output column (by alias or name) sort on the projected value; for
// non-grouped queries other expressions are rejected to keep semantics
// predictable.
func orderRows(st *SelectStmt, sc *scope, res *Result) error {
	type keyFn func(row Row) (Value, error)
	var keys []keyFn
	var descs []bool
	for _, ok := range st.OrderBy {
		ref, isRef := ok.Expr.(*ColumnRef)
		pos := -1
		if isRef && ref.Table == "" {
			for i, c := range res.Columns {
				if strings.EqualFold(c, ref.Column) {
					pos = i
					break
				}
			}
		}
		if pos < 0 && isRef {
			// try qualified/unqualified full name against output headers
			name := exprName(ref)
			for i, c := range res.Columns {
				if strings.EqualFold(c, name) {
					pos = i
					break
				}
			}
		}
		if pos < 0 {
			return fmt.Errorf("sql: ORDER BY must reference an output column")
		}
		p := pos
		keys = append(keys, func(row Row) (Value, error) {
			if p >= len(row) {
				return Null(), nil
			}
			return row[p], nil
		})
		descs = append(descs, ok.Desc)
	}
	var sortErr error
	sort.SliceStable(res.Rows, func(i, j int) bool {
		for k, fn := range keys {
			a, err := fn(res.Rows[i])
			if err != nil {
				sortErr = err
				return false
			}
			b, err := fn(res.Rows[j])
			if err != nil {
				sortErr = err
				return false
			}
			c := Compare(a, b)
			if c == 0 {
				continue
			}
			if descs[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}
