package sqlengine

import (
	"fmt"
	"sync"
)

// Table is a named relation.
type Table struct {
	Name    string
	Columns []string
	Rows    []Row
}

// DB is an in-memory relational database, safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable registers an empty table, failing on duplicates.
func (db *DB) CreateTable(name string, columns []string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return fmt.Errorf("sql: table %q already exists", name)
	}
	db.tables[name] = &Table{Name: name, Columns: append([]string(nil), columns...)}
	return nil
}

// DropTable removes a table.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("sql: table %q does not exist", name)
	}
	delete(db.tables, name)
	return nil
}

// Insert appends a row; its length must match the table's columns.
func (db *DB) Insert(name string, row Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("sql: table %q does not exist", name)
	}
	if len(row) != len(t.Columns) {
		return fmt.Errorf("sql: table %q has %d columns, got %d values", name, len(t.Columns), len(row))
	}
	t.Rows = append(t.Rows, append(Row(nil), row...))
	return nil
}

// Tables lists the table names.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	return out
}

// snapshot returns the table under the read lock, copied shallowly so
// the executor works on a stable row slice.
func (db *DB) snapshot(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("sql: table %q does not exist", name)
	}
	return &Table{Name: t.Name, Columns: t.Columns, Rows: t.Rows}, nil
}

// Exec parses and executes one statement. SELECT returns a Result;
// other statements return a Result with a single "rows" count column.
func (db *DB) Exec(src string) (*Result, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case *SelectStmt:
		return db.execSelect(s)
	case *CreateStmt:
		if err := db.CreateTable(s.Table, s.Columns); err != nil {
			return nil, err
		}
		return affected(0), nil
	case *DropStmt:
		if err := db.DropTable(s.Table); err != nil {
			return nil, err
		}
		return affected(0), nil
	case *InsertStmt:
		return db.execInsert(s)
	case *DeleteStmt:
		return db.execDelete(s)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

func affected(n int) *Result {
	return &Result{Columns: []string{"rows"}, Rows: []Row{{Int(int64(n))}}}
}

func (db *DB) execInsert(s *InsertStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sql: table %q does not exist", s.Table)
	}
	colIdx := make([]int, 0, len(t.Columns))
	if len(s.Columns) == 0 {
		for i := range t.Columns {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, c := range s.Columns {
			found := -1
			for i, tc := range t.Columns {
				if tc == c {
					found = i
					break
				}
			}
			if found < 0 {
				return nil, fmt.Errorf("sql: no column %q in table %q", c, s.Table)
			}
			colIdx = append(colIdx, found)
		}
	}
	n := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(colIdx) {
			return nil, fmt.Errorf("sql: INSERT expects %d values, got %d", len(colIdx), len(exprRow))
		}
		row := make(Row, len(t.Columns))
		for i := range row {
			row[i] = Null()
		}
		for i, e := range exprRow {
			lit, ok := e.(*Literal)
			if !ok {
				return nil, fmt.Errorf("sql: INSERT values must be literals")
			}
			row[colIdx[i]] = lit.Val
		}
		t.Rows = append(t.Rows, row)
		n++
	}
	return affected(n), nil
}

func (db *DB) execDelete(s *DeleteStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[s.Table]
	if !ok {
		return nil, fmt.Errorf("sql: table %q does not exist", s.Table)
	}
	scope := newScope()
	scope.add(s.Table, s.Table, t.Columns)
	kept := t.Rows[:0:0]
	n := 0
	for _, row := range t.Rows {
		if s.Where != nil {
			v, err := eval(s.Where, scope, row)
			if err != nil {
				return nil, err
			}
			if v.Truth() {
				n++
				continue
			}
		} else {
			n++
			continue
		}
		kept = append(kept, row)
	}
	t.Rows = kept
	return affected(n), nil
}
