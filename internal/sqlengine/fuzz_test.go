package sqlengine

import "testing"

// FuzzParse ensures arbitrary input never panics the SQL front end —
// registered SQL objects carry user-supplied text.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM t",
		"SELECT a, COUNT(*) FROM t WHERE a LIKE 'x%' GROUP BY a ORDER BY a DESC LIMIT 3",
		"SELECT a FROM t UNION ALL SELECT b FROM u",
		"INSERT INTO t VALUES (1, 'x'), (-2.5, NULL)",
		"DELETE FROM t WHERE a BETWEEN -1 AND 1",
		"CREATE TABLE t (a, b, c)",
		"SELECT * FROM t WHERE a IN (1,2,3) AND NOT b IS NULL",
		"SELECT 'unterminated",
		"SELECT ((((((((((1))))))))))",
		";;;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Must never panic; errors are fine.
		st, err := Parse(src)
		if err == nil && st == nil {
			t.Fatal("nil statement without error")
		}
	})
}

// FuzzExec drives parsed statements through a live database.
func FuzzExec(f *testing.F) {
	f.Add("SELECT a FROM t WHERE a > 1")
	f.Add("SELECT COUNT(*), b FROM t GROUP BY b")
	f.Add("DELETE FROM t WHERE a = 'x'")
	f.Fuzz(func(t *testing.T, src string) {
		db := NewDB()
		db.CreateTable("t", []string{"a", "b"})
		db.Insert("t", Row{Int(1), String("x")})
		db.Insert("t", Row{Null(), String("y")})
		db.Exec(src) // must not panic
	})
}
