// Package sqlengine implements a small relational engine: CREATE
// TABLE / INSERT / DELETE plus a SELECT executor with joins, WHERE
// (AND/OR/NOT, comparison, LIKE, IN, IS NULL), GROUP BY with the COUNT
// / SUM / AVG / MIN / MAX aggregates, ORDER BY, LIMIT and UNION.
//
// It stands in for the Oracle / DB2 / Sybase resources of the paper:
// the dbfs storage driver keeps LOBs in its tables, and registered SQL
// objects (paper §5, registration kind 3) execute their SELECT text
// here at retrieval time.
package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueKind discriminates the scalar types the engine stores.
type ValueKind int

const (
	// KindNull is the SQL NULL.
	KindNull ValueKind = iota
	// KindNumber is a 64-bit float (covers the integer range we need).
	KindNumber
	// KindString is an uninterpreted byte string.
	KindString
)

// Value is one scalar cell.
type Value struct {
	Kind ValueKind
	Num  float64
	Str  string
}

// Null returns the NULL value.
func Null() Value { return Value{Kind: KindNull} }

// Number wraps a float.
func Number(f float64) Value { return Value{Kind: KindNumber, Num: f} }

// Int wraps an integer.
func Int(i int64) Value { return Value{Kind: KindNumber, Num: float64(i)} }

// String wraps a string.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Bool encodes a boolean as 1/0, matching classic SQL dialects.
func Bool(b bool) Value {
	if b {
		return Number(1)
	}
	return Number(0)
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Truth reports whether v counts as true in a WHERE clause.
func (v Value) Truth() bool {
	switch v.Kind {
	case KindNumber:
		return v.Num != 0
	case KindString:
		return v.Str != ""
	default:
		return false
	}
}

// Float coerces v to a number; strings parse leniently to 0 on failure.
func (v Value) Float() float64 {
	switch v.Kind {
	case KindNumber:
		return v.Num
	case KindString:
		f, _ := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
		return f
	default:
		return 0
	}
}

// Text renders v for display and comparison against strings.
func (v Value) Text() string {
	switch v.Kind {
	case KindNumber:
		if v.Num == float64(int64(v.Num)) {
			return strconv.FormatInt(int64(v.Num), 10)
		}
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindString:
		return v.Str
	default:
		return ""
	}
}

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.IsNull() {
		return "NULL"
	}
	return v.Text()
}

// Compare orders two values: NULL sorts lowest; two numbers compare
// numerically; otherwise a numeric-looking pair compares numerically
// and everything else compares as strings.
func Compare(a, b Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	if a.Kind == KindNumber && b.Kind == KindNumber {
		return cmpFloat(a.Num, b.Num)
	}
	if a.Kind == KindNumber || b.Kind == KindNumber {
		// Mixed: compare numerically when the string side parses.
		if af, bf, ok := bothFloats(a, b); ok {
			return cmpFloat(af, bf)
		}
	}
	return strings.Compare(a.Text(), b.Text())
}

func bothFloats(a, b Value) (float64, float64, bool) {
	af, aok := tryFloat(a)
	bf, bok := tryFloat(b)
	return af, bf, aok && bok
}

func tryFloat(v Value) (float64, bool) {
	if v.Kind == KindNumber {
		return v.Num, true
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
	return f, err == nil
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality (NULL never equals anything).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// Like evaluates the SQL LIKE operator: % matches any run, _ any one
// character. Matching is case-insensitive, following the loose behaviour
// of the catalogs SRB targeted.
func Like(s, pattern string) bool {
	return likeMatch(strings.ToLower(s), strings.ToLower(pattern))
}

func likeMatch(s, p string) bool {
	// Dynamic-programming walk over pattern and subject.
	for len(p) > 0 {
		switch p[0] {
		case '%':
			p = strings.TrimLeft(p, "%")
			if p == "" {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeMatch(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if s == "" {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if s == "" || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return s == ""
}

// Row is one tuple.
type Row []Value

// Result is the outcome of a SELECT.
type Result struct {
	Columns []string
	Rows    []Row
}

// Format renders the result as aligned text, for the CLI.
func (r *Result) Format() string {
	var b strings.Builder
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			cells[ri][ci] = v.String()
			if ci < len(widths) && len(cells[ri][ci]) > widths[ci] {
				widths[ci] = len(cells[ri][ci])
			}
		}
	}
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
