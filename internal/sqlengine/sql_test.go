package sqlengine

import (
	"strings"
	"testing"
	"testing/quick"
)

// seed builds the demo database used across tests: a digital-library
// style pair of tables.
func seed(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, "CREATE TABLE images (id, name, survey, mag, band)")
	mustExec(t, db, `INSERT INTO images VALUES
		(1, 'm31.fits', '2mass', 3.4, 'J'),
		(2, 'm42.fits', '2mass', 4.0, 'K'),
		(3, 'ngc253.fits', 'dposs', 7.1, 'J'),
		(4, 'm51.fits', 'dposs', 8.4, 'H'),
		(5, 'unnamed.fits', '2mass', NULL, 'J')`)
	mustExec(t, db, "CREATE TABLE surveys (survey, telescope)")
	mustExec(t, db, `INSERT INTO surveys VALUES ('2mass', 'Mt Hopkins'), ('dposs', 'Palomar')`)
	return db
}

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return res
}

func TestSelectStar(t *testing.T) {
	db := seed(t)
	res := mustExec(t, db, "SELECT * FROM images")
	if len(res.Columns) != 5 || len(res.Rows) != 5 {
		t.Fatalf("got %d cols %d rows", len(res.Columns), len(res.Rows))
	}
	if res.Columns[1] != "name" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestWhereComparisons(t *testing.T) {
	db := seed(t)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT id FROM images WHERE survey = '2mass'", 3},
		{"SELECT id FROM images WHERE survey <> '2mass'", 2},
		{"SELECT id FROM images WHERE mag > 4.0", 2},
		{"SELECT id FROM images WHERE mag >= 4.0", 3},
		{"SELECT id FROM images WHERE mag < 4.0", 1},
		{"SELECT id FROM images WHERE mag <= 4.0", 2},
		{"SELECT id FROM images WHERE name LIKE 'm%.fits'", 3},
		{"SELECT id FROM images WHERE name NOT LIKE 'm%'", 2},
		{"SELECT id FROM images WHERE band IN ('J', 'H')", 4},
		{"SELECT id FROM images WHERE band NOT IN ('J')", 2},
		{"SELECT id FROM images WHERE mag IS NULL", 1},
		{"SELECT id FROM images WHERE mag IS NOT NULL", 4},
		{"SELECT id FROM images WHERE mag BETWEEN 4 AND 8", 2},
		{"SELECT id FROM images WHERE survey = '2mass' AND band = 'J'", 2},
		{"SELECT id FROM images WHERE survey = 'dposs' OR band = 'K'", 3},
		{"SELECT id FROM images WHERE NOT survey = '2mass'", 2},
		{"SELECT id FROM images WHERE (survey = '2mass' OR survey = 'dposs') AND mag > 7", 2},
	}
	for _, c := range cases {
		res := mustExec(t, db, c.sql)
		if len(res.Rows) != c.want {
			t.Errorf("%s: got %d rows, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	db := seed(t)
	// SQL semantics: NULL never compares true, even with = or <>.
	for _, sql := range []string{
		"SELECT id FROM images WHERE mag = NULL",
		"SELECT id FROM images WHERE mag <> NULL",
		"SELECT id FROM images WHERE mag > NULL",
	} {
		if res := mustExec(t, db, sql); len(res.Rows) != 0 {
			t.Errorf("%s: got %d rows, want 0", sql, len(res.Rows))
		}
	}
}

func TestProjectionAndAlias(t *testing.T) {
	db := seed(t)
	res := mustExec(t, db, "SELECT name AS file, mag brightness FROM images WHERE id = 1")
	if res.Columns[0] != "file" || res.Columns[1] != "brightness" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Rows[0][0].Text() != "m31.fits" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestOrderByLimit(t *testing.T) {
	db := seed(t)
	res := mustExec(t, db, "SELECT name, mag FROM images WHERE mag IS NOT NULL ORDER BY mag DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Text() != "m51.fits" || res.Rows[1][0].Text() != "ngc253.fits" {
		t.Errorf("order = %v %v", res.Rows[0], res.Rows[1])
	}
	asc := mustExec(t, db, "SELECT name FROM images ORDER BY name")
	for i := 1; i < len(asc.Rows); i++ {
		if strings.Compare(asc.Rows[i-1][0].Text(), asc.Rows[i][0].Text()) > 0 {
			t.Errorf("not sorted: %v", asc.Rows)
		}
	}
}

func TestAggregates(t *testing.T) {
	db := seed(t)
	res := mustExec(t, db, "SELECT COUNT(*), COUNT(mag), SUM(mag), MIN(mag), MAX(mag) FROM images")
	row := res.Rows[0]
	if row[0].Float() != 5 || row[1].Float() != 4 {
		t.Errorf("counts = %v", row)
	}
	if row[2].Float() != 22.9 || row[3].Float() != 3.4 || row[4].Float() != 8.4 {
		t.Errorf("sum/min/max = %v", row)
	}
	avg := mustExec(t, db, "SELECT AVG(mag) FROM images WHERE survey = 'dposs'")
	if got := avg.Rows[0][0].Float(); got != 7.75 {
		t.Errorf("avg = %v", got)
	}
}

func TestGroupBy(t *testing.T) {
	db := seed(t)
	res := mustExec(t, db, "SELECT survey, COUNT(*) AS n FROM images GROUP BY survey ORDER BY survey")
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][0].Text() != "2mass" || res.Rows[0][1].Float() != 3 {
		t.Errorf("group row = %v", res.Rows[0])
	}
	if res.Rows[1][0].Text() != "dposs" || res.Rows[1][1].Float() != 2 {
		t.Errorf("group row = %v", res.Rows[1])
	}
}

func TestJoin(t *testing.T) {
	db := seed(t)
	res := mustExec(t, db,
		"SELECT images.name, surveys.telescope FROM images JOIN surveys ON images.survey = surveys.survey WHERE images.id = 3")
	if len(res.Rows) != 1 || res.Rows[0][1].Text() != "Palomar" {
		t.Errorf("join = %+v", res.Rows)
	}
	// implicit cross join with WHERE behaves identically
	res2 := mustExec(t, db,
		"SELECT i.name, s.telescope FROM images i, surveys s WHERE i.survey = s.survey AND i.id = 3")
	if len(res2.Rows) != 1 || res2.Rows[0][1].Text() != "Palomar" {
		t.Errorf("cross join = %+v", res2.Rows)
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := seed(t)
	_, err := db.Exec("SELECT survey FROM images, surveys")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
}

func TestUnion(t *testing.T) {
	db := seed(t)
	res := mustExec(t, db,
		"SELECT survey FROM images WHERE band = 'J' UNION SELECT survey FROM images WHERE band = 'K'")
	if len(res.Rows) != 2 { // deduped: 2mass, dposs
		t.Errorf("UNION rows = %d: %v", len(res.Rows), res.Rows)
	}
	all := mustExec(t, db,
		"SELECT survey FROM images WHERE band = 'J' UNION ALL SELECT survey FROM images WHERE band = 'K'")
	if len(all.Rows) != 4 {
		t.Errorf("UNION ALL rows = %d", len(all.Rows))
	}
	if _, err := db.Exec("SELECT id, name FROM images UNION SELECT id FROM images"); err == nil {
		t.Error("column count mismatch should fail")
	}
}

func TestDistinct(t *testing.T) {
	db := seed(t)
	res := mustExec(t, db, "SELECT DISTINCT survey FROM images")
	if len(res.Rows) != 2 {
		t.Errorf("DISTINCT rows = %d", len(res.Rows))
	}
}

func TestInsertWithColumnsAndDelete(t *testing.T) {
	db := seed(t)
	mustExec(t, db, "INSERT INTO images (id, name) VALUES (6, 'new.fits')")
	res := mustExec(t, db, "SELECT survey FROM images WHERE id = 6")
	if !res.Rows[0][0].IsNull() {
		t.Errorf("unlisted column should be NULL: %v", res.Rows[0])
	}
	del := mustExec(t, db, "DELETE FROM images WHERE survey = 'dposs'")
	if del.Rows[0][0].Float() != 2 {
		t.Errorf("deleted = %v", del.Rows[0])
	}
	left := mustExec(t, db, "SELECT COUNT(*) FROM images")
	if left.Rows[0][0].Float() != 4 {
		t.Errorf("remaining = %v", left.Rows[0])
	}
	all := mustExec(t, db, "DELETE FROM images")
	if all.Rows[0][0].Float() != 4 {
		t.Errorf("delete all = %v", all.Rows[0])
	}
}

func TestDropTable(t *testing.T) {
	db := seed(t)
	mustExec(t, db, "DROP TABLE surveys")
	if _, err := db.Exec("SELECT * FROM surveys"); err == nil {
		t.Error("dropped table should not resolve")
	}
	if _, err := db.Exec("DROP TABLE surveys"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestStringEscapes(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE q (s)")
	mustExec(t, db, "INSERT INTO q VALUES ('it''s')")
	res := mustExec(t, db, "SELECT s FROM q WHERE s = 'it''s'")
	if len(res.Rows) != 1 || res.Rows[0][0].Text() != "it's" {
		t.Errorf("escape = %+v", res.Rows)
	}
}

func TestParseErrors(t *testing.T) {
	db := seed(t)
	for _, bad := range []string{
		"",
		"SELEC * FROM images",
		"SELECT FROM images",
		"SELECT * FROM",
		"SELECT * FROM images WHERE",
		"SELECT * FROM images LIMIT x",
		"SELECT * FROM images; extra",
		"INSERT INTO images VALUES (1",
		"SELECT 'unterminated FROM images",
		"SELECT * FROM images WHERE name ~ 'x'",
	} {
		if _, err := db.Exec(bad); err == nil {
			t.Errorf("Exec(%q) should fail", bad)
		}
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := NewDB()
	res := mustExec(t, db, "SELECT 1, 'two'")
	if res.Rows[0][0].Float() != 1 || res.Rows[0][1].Text() != "two" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"HELLO", "hello", true}, // case-insensitive
		{"abc", "a%b%c", true},
		{"abc", "%%%", true},
		{"ab", "a_", true},
		{"ab", "_", false},
	}
	for _, c := range cases {
		if got := Like(c.s, c.p); got != c.want {
			t.Errorf("Like(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	if Compare(Null(), Int(0)) != -1 || Compare(Int(0), Null()) != 1 {
		t.Error("NULL should sort lowest")
	}
	if Compare(Int(2), Int(10)) != -1 {
		t.Error("numeric compare")
	}
	if Compare(String("2"), Int(10)) != -1 {
		t.Error("mixed numeric-looking compare should be numeric")
	}
	if Compare(String("b"), String("a")) != 1 {
		t.Error("string compare")
	}
	if Equal(Null(), Null()) {
		t.Error("NULL = NULL must be false")
	}
}

func TestValueText(t *testing.T) {
	if Int(42).Text() != "42" {
		t.Errorf("int text = %q", Int(42).Text())
	}
	if Number(2.5).Text() != "2.5" {
		t.Errorf("float text = %q", Number(2.5).Text())
	}
	if Null().String() != "NULL" {
		t.Errorf("null string = %q", Null().String())
	}
}

func TestResultFormat(t *testing.T) {
	db := seed(t)
	res := mustExec(t, db, "SELECT name, mag FROM images WHERE id = 1")
	out := res.Format()
	if !strings.Contains(out, "name") || !strings.Contains(out, "m31.fits") {
		t.Errorf("Format = %q", out)
	}
}

// Property: Compare is a valid ordering — antisymmetric and reflexive.
func TestComparePropertie(t *testing.T) {
	mk := func(kind uint8, n float64, s string) Value {
		switch kind % 3 {
		case 0:
			return Null()
		case 1:
			return Number(n)
		default:
			return String(s)
		}
	}
	f := func(k1, k2 uint8, n1, n2 float64, s1, s2 string) bool {
		a, b := mk(k1, n1, s1), mk(k2, n2, s2)
		if Compare(a, a) != 0 || Compare(b, b) != 0 {
			return false
		}
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Like(s, s) holds for any pattern-free string.
func TestLikeReflexive(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return Like(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE c (n)")
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 50; i++ {
				err = db.Insert("c", Row{Int(int64(w*100 + i))})
				if err != nil {
					break
				}
			}
			done <- err
		}(w)
	}
	for r := 0; r < 4; r++ {
		go func() {
			var err error
			for i := 0; i < 50; i++ {
				_, err = db.Exec("SELECT COUNT(*) FROM c")
				if err != nil {
					break
				}
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	res := mustExec(t, db, "SELECT COUNT(*) FROM c")
	if res.Rows[0][0].Float() != 200 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
}

func TestSignedNumericLiterals(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE m (name, mag)")
	mustExec(t, db, "INSERT INTO m VALUES ('sirius', -1.46), ('vega', 0.03), ('sun', -26.7)")
	res := mustExec(t, db, "SELECT name FROM m WHERE mag < -1")
	if len(res.Rows) != 2 {
		t.Errorf("negative comparison hits = %d", len(res.Rows))
	}
	res = mustExec(t, db, "SELECT name FROM m WHERE mag BETWEEN -2 AND +1 ORDER BY name")
	if len(res.Rows) != 2 || res.Rows[0][0].Text() != "sirius" {
		t.Errorf("BETWEEN negatives = %+v", res.Rows)
	}
	res = mustExec(t, db, "SELECT MIN(mag), MAX(mag) FROM m")
	if res.Rows[0][0].Float() != -26.7 || res.Rows[0][1].Float() != 0.03 {
		t.Errorf("min/max with negatives = %v", res.Rows[0])
	}
	// A dangling sign is a parse error.
	if _, err := db.Exec("SELECT name FROM m WHERE mag < -"); err == nil {
		t.Error("dangling sign should fail")
	}
}

func TestOrderByDescWithNegatives(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE m (v)")
	mustExec(t, db, "INSERT INTO m VALUES (-3), (5), (-1), (0)")
	res := mustExec(t, db, "SELECT v FROM m ORDER BY v DESC")
	want := []float64{5, 0, -1, -3}
	for i, w := range want {
		if res.Rows[i][0].Float() != w {
			t.Fatalf("order = %+v", res.Rows)
		}
	}
}
