package sqlengine

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators: ( ) , * = != <> < <= > >= . ;
	tokKeyword // reserved words, upper-cased
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "LIKE": true, "IN": true, "IS": true, "NULL": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"GROUP": true, "UNION": true, "AS": true, "JOIN": true, "ON": true,
	"INNER": true, "CREATE": true, "TABLE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "DELETE": true, "DISTINCT": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"ALL": true, "BETWEEN": true, "DROP": true,
}

// lex splits src into tokens, or reports the offending position.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // comment to end of line
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '\'': // string literal, '' escapes a quote
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("sql: unterminated string at %d", i)
				}
				if src[j] == '\'' {
					if j+1 < n && src[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i
			seenDot := false
			for j < n && (src[j] >= '0' && src[j] <= '9' || (src[j] == '.' && !seenDot)) {
				if src[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		default:
			// multi-char operators first
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, token{tokSymbol, two, i})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '*', '=', '<', '>', '.', ';', '-', '+':
				toks = append(toks, token{tokSymbol, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$'
}
