package sqlengine

import (
	"fmt"
	"strconv"
)

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.accept(tokKeyword, "CREATE"):
		return p.parseCreate()
	case p.accept(tokKeyword, "DROP"):
		return p.parseDrop()
	case p.accept(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.accept(tokKeyword, "DELETE"):
		return p.parseDelete()
	default:
		return nil, p.errf("expected statement, found %q", p.cur().text)
	}
}

func (p *parser) parseCreate() (Statement, error) {
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		// tolerate a type word after the column name (ignored)
		if p.at(tokIdent, "") {
			p.next()
		}
		cols = append(cols, c)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateStmt{Table: name, Columns: cols}, nil
}

func (p *parser) parseDrop() (Statement, error) {
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropStmt{Table: name}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.accept(tokSymbol, "(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return &InsertStmt{Table: name, Columns: cols, Rows: rows}, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.accept(tokKeyword, "DISTINCT")
	p.accept(tokKeyword, "ALL")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			st.From = append(st.From, tr)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		for p.accept(tokKeyword, "INNER") || p.at(tokKeyword, "JOIN") {
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Joins = append(st.Joins, JoinClause{Table: tr, On: on})
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				key.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, key)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		st.Limit = n
	}
	if p.accept(tokKeyword, "UNION") {
		st.UnionAll = p.accept(tokKeyword, "ALL")
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Union = sub
	}
	return st, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.at(tokIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name}
	if p.accept(tokKeyword, "AS") {
		a, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = a
	} else if p.at(tokIdent, "") {
		tr.Alias = p.next().text
	}
	return tr, nil
}

func (p *parser) ident() (string, error) {
	if p.at(tokIdent, "") {
		return p.next().text, nil
	}
	return "", p.errf("expected identifier, found %q", p.cur().text)
}

// Expression grammar: OR > AND > NOT > comparison > primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	negate := false
	if p.at(tokKeyword, "NOT") {
		// lookahead for NOT LIKE / NOT IN / NOT BETWEEN
		save := p.i
		p.next()
		if p.at(tokKeyword, "LIKE") || p.at(tokKeyword, "IN") || p.at(tokKeyword, "BETWEEN") {
			negate = true
		} else {
			p.i = save
			return left, nil
		}
	}
	switch {
	case p.accept(tokKeyword, "LIKE"):
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		op := "LIKE"
		if negate {
			op = "NOT LIKE"
		}
		return &BinaryExpr{Op: op, Left: left, Right: right}, nil
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InExpr{X: left, List: list, Negate: negate}, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: left, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.accept(tokKeyword, "IS"):
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: left, Negate: neg}, nil
	}
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			right, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case p.accept(tokSymbol, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokNumber:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Literal{Val: Number(f)}, nil
	case p.accept(tokSymbol, "-"), p.accept(tokSymbol, "+"):
		// Signed numeric literal.
		num, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(num.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", num.text)
		}
		if t.text == "-" {
			f = -f
		}
		return &Literal{Val: Number(f)}, nil
	case t.kind == tokString:
		p.next()
		return &Literal{Val: String(t.text)}, nil
	case p.accept(tokKeyword, "NULL"):
		return &Literal{Val: Null()}, nil
	case t.kind == tokKeyword && isAggregate(t.text):
		p.next()
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		agg := &AggregateExpr{Func: t.text}
		if p.accept(tokSymbol, "*") {
			agg.Star = true
		} else {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			agg.Arg = arg
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return agg, nil
	case t.kind == tokIdent:
		p.next()
		if p.accept(tokSymbol, ".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	default:
		return nil, p.errf("expected expression, found %q", t.text)
	}
}

func isAggregate(s string) bool {
	switch s {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}
