package sqlengine

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT, possibly the head of a UNION chain.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Joins    []JoinClause
	Where    Expr // nil if absent
	GroupBy  []Expr
	OrderBy  []OrderKey
	Limit    int // -1 if absent
	Union    *SelectStmt
	UnionAll bool
}

func (*SelectStmt) stmt() {}

// SelectItem is one output column: either * (Star), a bare expression,
// or an aggregate call.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// JoinClause is an INNER JOIN ... ON ... attached to the FROM list.
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// CreateStmt is CREATE TABLE name (col, ...).
type CreateStmt struct {
	Table   string
	Columns []string
}

func (*CreateStmt) stmt() {}

// DropStmt is DROP TABLE name.
type DropStmt struct{ Table string }

func (*DropStmt) stmt() {}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

func (*InsertStmt) stmt() {}

// DeleteStmt is DELETE FROM name [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// Expr is any evaluable expression.
type Expr interface{ expr() }

// ColumnRef names a column, optionally qualified by table/alias.
type ColumnRef struct {
	Table  string
	Column string
}

func (*ColumnRef) expr() {}

// Literal is a constant value.
type Literal struct{ Val Value }

func (*Literal) expr() {}

// BinaryExpr applies an operator to two operands. Op is one of
// "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "LIKE", "NOT LIKE".
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

func (*BinaryExpr) expr() {}

// NotExpr negates its operand.
type NotExpr struct{ X Expr }

func (*NotExpr) expr() {}

// InExpr is expr [NOT] IN (v1, v2, ...).
type InExpr struct {
	X      Expr
	List   []Expr
	Negate bool
}

func (*InExpr) expr() {}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	X      Expr
	Negate bool
}

func (*IsNullExpr) expr() {}

// BetweenExpr is expr [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Negate    bool
}

func (*BetweenExpr) expr() {}

// AggregateExpr is COUNT/SUM/AVG/MIN/MAX over an argument, or COUNT(*).
type AggregateExpr struct {
	Func string // upper-case
	Star bool
	Arg  Expr
}

func (*AggregateExpr) expr() {}
