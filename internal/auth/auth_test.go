package auth

import (
	"errors"
	"testing"
	"time"

	"gosrb/internal/types"
)

func TestChallengeResponseRoundTrip(t *testing.T) {
	a := New()
	a.Register("sekar", "secret")
	ch, err := NewChallenge()
	if err != nil {
		t.Fatal(err)
	}
	resp := Respond(DeriveKey("sekar", "secret"), ch)
	if !a.VerifyUser("sekar", ch, resp) {
		t.Error("valid response rejected")
	}
	if a.VerifyUser("sekar", ch, Respond(DeriveKey("sekar", "wrong"), ch)) {
		t.Error("wrong password accepted")
	}
	if a.VerifyUser("ghost", ch, resp) {
		t.Error("unknown user accepted")
	}
	ch2, _ := NewChallenge()
	if ch == ch2 {
		t.Error("challenges must be unique")
	}
	if a.VerifyUser("sekar", ch2, resp) {
		t.Error("response replayed against a different challenge accepted")
	}
}

func TestLoginAndSessionLifecycle(t *testing.T) {
	a := New()
	now := time.Unix(1_000_000, 0)
	a.SetClock(func() time.Time { return now })
	a.Register("mwan", "pw")
	ch, _ := NewChallenge()
	s, err := a.Login("mwan", ch, Respond(DeriveKey("mwan", "pw"), ch))
	if err != nil {
		t.Fatal(err)
	}
	if s.Expires.Sub(s.Created) != DefaultSessionTTL {
		t.Errorf("TTL = %v", s.Expires.Sub(s.Created))
	}
	user, err := a.Validate(s.Key)
	if err != nil || user != "mwan" {
		t.Errorf("Validate = %q, %v", user, err)
	}
	// Advance past the 60-minute limit.
	now = now.Add(61 * time.Minute)
	if _, err := a.Validate(s.Key); !errors.Is(err, types.ErrAuth) {
		t.Errorf("expired session: %v", err)
	}
	if _, err := a.Login("mwan", ch, "bogus"); !errors.Is(err, types.ErrAuth) {
		t.Errorf("bad login: %v", err)
	}
}

func TestLogoutAndSweep(t *testing.T) {
	a := New()
	now := time.Unix(0, 0)
	a.SetClock(func() time.Time { return now })
	a.SetTTL(time.Minute)
	s1, _ := a.NewSession("u1")
	s2, _ := a.NewSession("u2")
	a.Logout(s1.Key)
	if _, err := a.Validate(s1.Key); err == nil {
		t.Error("logged-out session validated")
	}
	now = now.Add(2 * time.Minute)
	if n := a.Sweep(); n != 1 {
		t.Errorf("Sweep removed %d, want 1", n)
	}
	if _, err := a.Validate(s2.Key); err == nil {
		t.Error("swept session validated")
	}
}

func TestPeerAuth(t *testing.T) {
	// Two servers share a zone secret out of band; each can answer the
	// other's challenges — the single sign-on of the federation.
	a1, a2 := New(), New()
	a1.RegisterPeer("srb2", "zone-secret")
	a2.RegisterPeer("srb2", "zone-secret")
	ch, _ := NewChallenge()
	key, ok := a2.PeerKey("srb2")
	if !ok {
		t.Fatal("peer key missing")
	}
	if !a1.VerifyPeer("srb2", ch, Respond(key, ch)) {
		t.Error("peer response rejected")
	}
	if a1.VerifyPeer("srb3", ch, Respond(key, ch)) {
		t.Error("unknown peer accepted")
	}
	if a1.VerifyPeer("srb2", ch, "wrong") {
		t.Error("bad peer response accepted")
	}
}

func TestTicketLifecycle(t *testing.T) {
	ts := NewTicketStore()
	now := time.Unix(0, 0)
	ts.SetClock(func() time.Time { return now })
	tk, err := ts.Issue("owner", "/coll", "read", 2, now.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Covers the path itself and its subtree.
	if lvl, issuer, err := ts.Redeem(tk.ID, "/coll/file"); err != nil || lvl != "read" || issuer != "owner" {
		t.Errorf("redeem = %q by %q, %v", lvl, issuer, err)
	}
	if _, _, err := ts.Redeem(tk.ID, "/other"); !errors.Is(err, types.ErrPermission) {
		t.Errorf("out-of-scope redeem: %v", err)
	}
	if _, _, err := ts.Redeem(tk.ID, "/coll"); err != nil {
		t.Errorf("second use: %v", err)
	}
	if _, _, err := ts.Redeem(tk.ID, "/coll"); !errors.Is(err, types.ErrAuth) {
		t.Errorf("exhausted ticket: %v", err)
	}
}

func TestTicketExpiryAndRevoke(t *testing.T) {
	ts := NewTicketStore()
	now := time.Unix(0, 0)
	ts.SetClock(func() time.Time { return now })
	tk, _ := ts.Issue("o", "/p", "read", -1, now.Add(time.Minute))
	now = now.Add(2 * time.Minute)
	if _, _, err := ts.Redeem(tk.ID, "/p"); !errors.Is(err, types.ErrAuth) {
		t.Errorf("expired ticket: %v", err)
	}
	now = time.Unix(0, 0)
	tk2, _ := ts.Issue("o", "/p", "write", -1, now.Add(time.Hour))
	ts.Revoke(tk2.ID)
	if _, _, err := ts.Redeem(tk2.ID, "/p"); err == nil {
		t.Error("revoked ticket redeemed")
	}
	// Unlimited tickets survive many redemptions.
	tk3, _ := ts.Issue("o", "/p", "read", -1, now.Add(time.Hour))
	for i := 0; i < 10; i++ {
		if _, _, err := ts.Redeem(tk3.ID, "/p"); err != nil {
			t.Fatalf("unlimited use %d: %v", i, err)
		}
	}
}

func TestDeriveKeyDomainSeparation(t *testing.T) {
	// Different users with the same password get different keys.
	if string(DeriveKey("a", "pw")) == string(DeriveKey("b", "pw")) {
		t.Error("keys must be user-specific")
	}
	if string(DeriveKey("a", "pw")) != string(DeriveKey("a", "pw")) {
		t.Error("derivation must be deterministic")
	}
}
