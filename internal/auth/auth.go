// Package auth implements SRB authentication: challenge–response
// password proof (the SRB "ENCRYPT1" scheme, realised here with
// HMAC-SHA256), bounded-lifetime session keys (MySRB's 60-minute
// in-memory cookies), server-to-server peer secrets for the federated
// single sign-on, and time/use-limited tickets for delegated access.
//
// Passwords never cross the wire: the client proves knowledge of the
// derived key by answering a random challenge.
package auth

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"time"

	"gosrb/internal/types"
)

// DefaultSessionTTL matches the paper: "These session keys have a
// maximum time-limit set on them (currently 60 minutes)".
const DefaultSessionTTL = 60 * time.Minute

// DeriveKey derives the stored verifier / client proof key from a user
// name and password.
func DeriveKey(user, password string) []byte {
	h := sha256.Sum256([]byte("srb-key-v1:" + user + ":" + password))
	return h[:]
}

// Respond computes the response to a challenge given the derived key.
func Respond(key []byte, challenge string) string {
	mac := hmac.New(sha256.New, key)
	mac.Write([]byte(challenge))
	return hex.EncodeToString(mac.Sum(nil))
}

// NewChallenge returns a fresh random challenge string.
func NewChallenge() (string, error) {
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", types.E("challenge", "", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Authenticator verifies users and peers and manages sessions. Safe for
// concurrent use.
type Authenticator struct {
	mu       sync.Mutex
	keys     map[string][]byte // user -> derived key
	peers    map[string][]byte // peer server/zone -> shared secret key
	sessions map[string]types.Session
	ttl      time.Duration
	now      func() time.Time
}

// New returns an Authenticator with the default session TTL.
func New() *Authenticator {
	return &Authenticator{
		keys:     make(map[string][]byte),
		peers:    make(map[string][]byte),
		sessions: make(map[string]types.Session),
		ttl:      DefaultSessionTTL,
		now:      time.Now,
	}
}

// SetTTL overrides the session lifetime.
func (a *Authenticator) SetTTL(ttl time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ttl = ttl
}

// SetClock overrides the time source (tests).
func (a *Authenticator) SetClock(now func() time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.now = now
}

// Register stores a user's password-derived key.
func (a *Authenticator) Register(user, password string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.keys[user] = DeriveKey(user, password)
}

// RegisterPeer stores the shared secret for a federated peer server.
func (a *Authenticator) RegisterPeer(peer, secret string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.peers[peer] = DeriveKey("peer:"+peer, secret)
}

// PeerKey returns the key a local server uses to answer challenges from
// peer, and whether the peer is known.
func (a *Authenticator) PeerKey(peer string) ([]byte, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	k, ok := a.peers[peer]
	return k, ok
}

// VerifyUser checks a challenge response for user.
func (a *Authenticator) VerifyUser(user, challenge, response string) bool {
	a.mu.Lock()
	key, ok := a.keys[user]
	a.mu.Unlock()
	if !ok {
		return false
	}
	return hmac.Equal([]byte(Respond(key, challenge)), []byte(response))
}

// VerifyPeer checks a challenge response for a federated peer.
func (a *Authenticator) VerifyPeer(peer, challenge, response string) bool {
	key, ok := a.PeerKey(peer)
	if !ok {
		return false
	}
	return hmac.Equal([]byte(Respond(key, challenge)), []byte(response))
}

// Login verifies the response and mints a session.
func (a *Authenticator) Login(user, challenge, response string) (types.Session, error) {
	if !a.VerifyUser(user, challenge, response) {
		return types.Session{}, types.E("login", user, types.ErrAuth)
	}
	return a.NewSession(user)
}

// NewSession mints a session for an already-verified user.
func (a *Authenticator) NewSession(user string) (types.Session, error) {
	var b [18]byte
	if _, err := rand.Read(b[:]); err != nil {
		return types.Session{}, types.E("session", user, err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	s := types.Session{
		Key:     hex.EncodeToString(b[:]),
		User:    user,
		Created: now,
		Expires: now.Add(a.ttl),
	}
	a.sessions[s.Key] = s
	return s, nil
}

// Validate resolves a session key to its user, performing the paper's
// "security checks on the session keys when validating a user request":
// the key must exist and be unexpired.
func (a *Authenticator) Validate(key string) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.sessions[key]
	if !ok {
		return "", types.E("session", "", types.ErrAuth)
	}
	if !s.Valid(a.now()) {
		delete(a.sessions, key)
		return "", types.E("session", s.User, types.ErrAuth)
	}
	return s.User, nil
}

// Logout invalidates a session key. Unknown keys are a no-op.
func (a *Authenticator) Logout(key string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.sessions, key)
}

// Sweep drops expired sessions and returns how many were removed.
func (a *Authenticator) Sweep() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	n := 0
	for k, s := range a.sessions {
		if !s.Valid(now) {
			delete(a.sessions, k)
			n++
		}
	}
	return n
}

// Ticket grants time- and use-limited access to a logical path at a
// given level, independent of the grantee's ACLs.
type Ticket struct {
	ID      string
	Issuer  string
	Path    string
	Level   string // acl level name; kept as string to avoid a dependency cycle
	Uses    int    // remaining uses; negative means unlimited
	Expires time.Time
}

// TicketStore issues and redeems tickets. Safe for concurrent use.
type TicketStore struct {
	mu      sync.Mutex
	tickets map[string]*Ticket
	now     func() time.Time
}

// NewTicketStore returns an empty store.
func NewTicketStore() *TicketStore {
	return &TicketStore{tickets: make(map[string]*Ticket), now: time.Now}
}

// SetClock overrides the time source (tests).
func (ts *TicketStore) SetClock(now func() time.Time) { ts.now = now }

// Issue creates a ticket for path at level, expiring at expires, with
// the given use budget (negative = unlimited).
func (ts *TicketStore) Issue(issuer, path, level string, uses int, expires time.Time) (*Ticket, error) {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return nil, types.E("ticket", path, err)
	}
	t := &Ticket{
		ID:      hex.EncodeToString(b[:]),
		Issuer:  issuer,
		Path:    types.CleanPath(path),
		Level:   level,
		Uses:    uses,
		Expires: expires,
	}
	ts.mu.Lock()
	ts.tickets[t.ID] = t
	ts.mu.Unlock()
	return t, nil
}

// Redeem consumes one use of the ticket for the given path and returns
// the granted level name and the issuing user. The path must equal the
// ticket path or lie within it (collection tickets cover their subtree).
func (ts *TicketStore) Redeem(id, path string) (level, issuer string, err error) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.tickets[id]
	if !ok {
		return "", "", types.E("ticket", path, types.ErrAuth)
	}
	if ts.now().After(t.Expires) {
		delete(ts.tickets, id)
		return "", "", types.E("ticket", path, types.ErrAuth)
	}
	if !types.WithinOrEqual(t.Path, path) {
		return "", "", types.E("ticket", path, types.ErrPermission)
	}
	if t.Uses == 0 {
		delete(ts.tickets, id)
		return "", "", types.E("ticket", path, types.ErrAuth)
	}
	if t.Uses > 0 {
		t.Uses--
	}
	return t.Level, t.Issuer, nil
}

// Revoke removes a ticket.
func (ts *TicketStore) Revoke(id string) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	delete(ts.tickets, id)
}
