// Package metadata provides the type-oriented metadata machinery of
// MySRB: the Dublin Core element set ("Standardized metadata might be
// based on lists of elements such as the Dublin Core"), and the
// registry of T-language extraction methods associated with data types
// ("One can associate more than one metadata extraction method for a
// data-type and the user is allowed to choose one at the time of
// metadata creation").
package metadata

import (
	"bytes"
	"io"
	"sort"
	"sync"

	"gosrb/internal/tlang"
	"gosrb/internal/types"
)

// DublinCoreElements is the classic 15-element set, offered as the
// standardised entry form for any SRB object.
var DublinCoreElements = []string{
	"dc:title", "dc:creator", "dc:subject", "dc:description",
	"dc:publisher", "dc:contributor", "dc:date", "dc:type",
	"dc:format", "dc:identifier", "dc:source", "dc:language",
	"dc:relation", "dc:coverage", "dc:rights",
}

// IsDublinCore reports whether name is a Dublin Core element.
func IsDublinCore(name string) bool {
	for _, e := range DublinCoreElements {
		if e == name {
			return true
		}
	}
	return false
}

// AnyType registers an extraction method for every data type.
const AnyType = "*"

// Method is one named extraction method bound to a data type.
type Method struct {
	DataType string
	Name     string
	// SecondObject is true when the method extracts from a companion
	// object (e.g. DICOM header files) rather than the object itself.
	SecondObject bool
	extractor    *tlang.Extractor
}

// Registry maps data types to their extraction methods. Safe for
// concurrent use.
type Registry struct {
	mu      sync.RWMutex
	methods map[string]map[string]*Method // dataType -> name -> method
}

// NewRegistry returns a registry preloaded with the built-in methods:
// a FITS-card extractor for "fits image", an HTML meta-tag extractor
// for "html", and an RFC-822-style header extractor for "email".
func NewRegistry() *Registry {
	r := &Registry{methods: make(map[string]map[string]*Method)}
	mustRegister := func(dt, name, script string, second bool) {
		if err := r.Register(dt, name, script, second); err != nil {
			panic("metadata: built-in method: " + err.Error())
		}
	}
	mustRegister("fits image", "fits-cards", fitsScript, false)
	mustRegister("html", "html-meta", htmlScript, false)
	mustRegister("email", "rfc822-headers", emailScript, false)
	mustRegister("dicom image", "dicom-companion", dicomScript, true)
	return r
}

const fitsScript = `
# FITS header cards: KEY = value, quoted or bare, until END.
stop /^END\s*$/
match /^([A-Z][A-Z0-9_-]{0,7})\s*=\s*'([^']*)'/ -> $1 = $2
match /^([A-Z][A-Z0-9_-]{0,7})\s*=\s*([^'\s\/]+)/ -> $1 = $2
`

const htmlScript = `
# HTML <meta name=... content=...> and <title> tags.
match /<meta\s+name="([^"]+)"\s+content="([^"]*)"/ -> $1 = $2
first /<title>([^<]*)<\/title>/ -> title = $1
`

const emailScript = `
# Message headers up to the first blank line.
stop /^$/
first /^From:\s*(.+)/ -> from = $1
first /^To:\s*(.+)/ -> to = $1
first /^Subject:\s*(.+)/ -> subject = $1
first /^Date:\s*(.+)/ -> date = $1
`

const dicomScript = `
# Companion header files: "tag value" lines.
match /^\(([0-9a-fA-F]{4},[0-9a-fA-F]{4})\)\s+(.+)/ -> $1 = $2
`

// Register compiles and stores an extraction method.
func (r *Registry) Register(dataType, name, script string, secondObject bool) error {
	ex, err := tlang.ParseExtractor(script)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	byName := r.methods[dataType]
	if byName == nil {
		byName = make(map[string]*Method)
		r.methods[dataType] = byName
	}
	byName[name] = &Method{DataType: dataType, Name: name, SecondObject: secondObject, extractor: ex}
	return nil
}

// MethodsFor lists the methods applicable to a data type (its own plus
// AnyType), sorted by name.
func (r *Registry) MethodsFor(dataType string) []Method {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Method
	for _, m := range r.methods[dataType] {
		out = append(out, *m)
	}
	if dataType != AnyType {
		for _, m := range r.methods[AnyType] {
			out = append(out, *m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Extract runs the named method for dataType over content.
func (r *Registry) Extract(dataType, name string, content io.Reader) ([]types.AVU, error) {
	r.mu.RLock()
	var m *Method
	if byName := r.methods[dataType]; byName != nil {
		m = byName[name]
	}
	if m == nil {
		if byName := r.methods[AnyType]; byName != nil {
			m = byName[name]
		}
	}
	r.mu.RUnlock()
	if m == nil {
		return nil, types.E("extract", dataType+"/"+name, types.ErrNotFound)
	}
	return m.extractor.Extract(content)
}

// Lookup returns the method record without running it.
func (r *Registry) Lookup(dataType, name string) (Method, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if byName := r.methods[dataType]; byName != nil {
		if m := byName[name]; m != nil {
			return *m, true
		}
	}
	if byName := r.methods[AnyType]; byName != nil {
		if m := byName[name]; m != nil {
			return *m, true
		}
	}
	return Method{}, false
}

// ParseTriplets reads file-based metadata: one "name = value [units]"
// triplet per line ("Currently triplets are the only form of metadata
// supported in this manner"). '#' comments and blank lines are skipped.
func ParseTriplets(content []byte) []types.AVU {
	var out []types.AVU
	for _, line := range bytes.Split(content, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		eq := bytes.IndexByte(line, '=')
		if eq <= 0 {
			continue
		}
		name := string(bytes.TrimSpace(line[:eq]))
		rest := string(bytes.TrimSpace(line[eq+1:]))
		units := ""
		if bar := lastIndexUnits(rest); bar >= 0 {
			units = rest[bar+2:]
			rest = trimRight(rest[:bar])
		}
		if name != "" {
			out = append(out, types.AVU{Name: name, Value: rest, Units: units})
		}
	}
	return out
}

// lastIndexUnits finds the " |" separator before a units suffix.
func lastIndexUnits(s string) int {
	for i := len(s) - 2; i >= 0; i-- {
		if s[i] == ' ' && s[i+1] == '|' {
			return i
		}
	}
	return -1
}

func trimRight(s string) string {
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// FormatTriplets renders AVUs in the file-based metadata format.
func FormatTriplets(avus []types.AVU) []byte {
	var b bytes.Buffer
	for _, a := range avus {
		b.WriteString(a.Name)
		b.WriteString(" = ")
		b.WriteString(a.Value)
		if a.Units != "" {
			b.WriteString(" |")
			b.WriteString(a.Units)
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}
