package metadata

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"gosrb/internal/types"
)

func avuMap(avus []types.AVU) map[string]string {
	m := make(map[string]string)
	for _, a := range avus {
		m[a.Name] = a.Value
	}
	return m
}

func TestBuiltinFITS(t *testing.T) {
	r := NewRegistry()
	header := "SIMPLE  =                    T\nOBJECT  = 'M31'\nEXPTIME = 7.8 / seconds\nEND\nJUNK = 1\n"
	avus, err := r.Extract("fits image", "fits-cards", strings.NewReader(header))
	if err != nil {
		t.Fatal(err)
	}
	m := avuMap(avus)
	if m["OBJECT"] != "M31" || m["EXPTIME"] != "7.8" || m["SIMPLE"] != "T" {
		t.Errorf("fits avus = %v", m)
	}
	if _, ok := m["JUNK"]; ok {
		t.Error("extraction should stop at END")
	}
}

func TestBuiltinHTML(t *testing.T) {
	r := NewRegistry()
	page := `<html><head><title>My Page</title>
<meta name="author" content="Rajasekar">
<meta name="keywords" content="data grid, srb">
</head></html>`
	avus, err := r.Extract("html", "html-meta", strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	m := avuMap(avus)
	if m["title"] != "My Page" || m["author"] != "Rajasekar" || m["keywords"] != "data grid, srb" {
		t.Errorf("html avus = %v", m)
	}
}

func TestBuiltinEmail(t *testing.T) {
	r := NewRegistry()
	msg := "From: sekar@sdsc.edu\nTo: moore@sdsc.edu\nSubject: SRB release\nDate: 2002-07-01\n\nFrom: not a header\n"
	avus, err := r.Extract("email", "rfc822-headers", strings.NewReader(msg))
	if err != nil {
		t.Fatal(err)
	}
	m := avuMap(avus)
	if m["from"] != "sekar@sdsc.edu" || m["subject"] != "SRB release" {
		t.Errorf("email avus = %v", m)
	}
	if len(avus) != 4 {
		t.Errorf("headers after blank line must not extract: %v", avus)
	}
}

func TestRegisterCustomAndAnyType(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(AnyType, "first-line", `first /^(.+)$/ -> firstline = $1`, false); err != nil {
		t.Fatal(err)
	}
	avus, err := r.Extract("whatever type", "first-line", strings.NewReader("hello\nworld\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(avus) != 1 || avus[0].Value != "hello" {
		t.Errorf("any-type extract = %v", avus)
	}
	// MethodsFor merges own + AnyType.
	names := []string{}
	for _, m := range r.MethodsFor("fits image") {
		names = append(names, m.Name)
	}
	if len(names) != 2 || names[0] != "first-line" || names[1] != "fits-cards" {
		t.Errorf("MethodsFor = %v", names)
	}
	if err := r.Register("x", "bad", "not a script", false); err == nil {
		t.Error("bad script should fail to register")
	}
}

func TestExtractUnknownMethod(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Extract("fits image", "nope", strings.NewReader("")); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("unknown method: %v", err)
	}
}

func TestLookupSecondObject(t *testing.T) {
	r := NewRegistry()
	m, ok := r.Lookup("dicom image", "dicom-companion")
	if !ok || !m.SecondObject {
		t.Errorf("Lookup = %+v, %v", m, ok)
	}
	if _, ok := r.Lookup("dicom image", "ghost"); ok {
		t.Error("missing lookup should be false")
	}
	avus, err := r.Extract("dicom image", "dicom-companion",
		strings.NewReader("(0010,0010) DOE^JOHN\n(0008,0060) MR\n"))
	if err != nil || len(avus) != 2 {
		t.Fatalf("dicom extract = %v, %v", avus, err)
	}
	if avus[0].Name != "0010,0010" || avus[0].Value != "DOE^JOHN" {
		t.Errorf("dicom avu = %+v", avus[0])
	}
}

func TestTripletsRoundTrip(t *testing.T) {
	in := []types.AVU{
		{Name: "survey", Value: "2mass"},
		{Name: "exposure", Value: "7.8", Units: "seconds"},
		{Name: "note", Value: "has = sign", Units: ""},
	}
	out := ParseTriplets(FormatTriplets(in))
	if len(out) != 3 {
		t.Fatalf("round trip = %+v", out)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("triplet %d: %+v != %+v", i, in[i], out[i])
		}
	}
}

func TestParseTripletsTolerant(t *testing.T) {
	content := []byte("# comment\n\nname = value\nbroken line\n= empty name\nlast=x\n")
	avus := ParseTriplets(content)
	if len(avus) != 2 || avus[0].Name != "name" || avus[1].Name != "last" {
		t.Errorf("tolerant parse = %+v", avus)
	}
}

func TestDublinCore(t *testing.T) {
	if len(DublinCoreElements) != 15 {
		t.Errorf("Dublin Core has %d elements", len(DublinCoreElements))
	}
	if !IsDublinCore("dc:title") || IsDublinCore("title") {
		t.Error("IsDublinCore wrong")
	}
}

func TestFormatTripletsEmpty(t *testing.T) {
	if len(FormatTriplets(nil)) != 0 {
		t.Error("empty format should be empty")
	}
	if got := ParseTriplets(bytes.TrimSpace(nil)); got != nil {
		t.Error("empty parse should be nil")
	}
}
