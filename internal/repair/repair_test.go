package repair

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gosrb/internal/obs"
	"gosrb/internal/resilience"
	"gosrb/internal/types"
)

// fakeQueue is an in-memory Queue with the same dedup/attempt semantics
// as the catalog, giving tests full control without a journal.
type fakeQueue struct {
	mu    sync.Mutex
	tasks map[string]*types.RepairTask
}

func newFakeQueue() *fakeQueue {
	return &fakeQueue{tasks: make(map[string]*types.RepairTask)}
}

func (q *fakeQueue) add(path, resource string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t := &types.RepairTask{
		Key:      types.RepairKey(path, resource),
		Path:     path,
		Resource: resource,
		Kind:     "replicate",
		Enqueued: time.Now(),
	}
	q.tasks[t.Key] = t
}

func (q *fakeQueue) PendingRepairs() []types.RepairTask {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]types.RepairTask, 0, len(q.tasks))
	for _, t := range q.tasks {
		out = append(out, *t)
	}
	return out
}

func (q *fakeQueue) CompleteRepair(key string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.tasks[key]; !ok {
		return false
	}
	delete(q.tasks, key)
	return true
}

func (q *fakeQueue) NoteRepairAttempt(key string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tasks[key]
	if !ok {
		return 0
	}
	t.Attempts++
	return t.Attempts
}

func (q *fakeQueue) RepairBacklog() (int, time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var oldest time.Time
	for _, t := range q.tasks {
		if oldest.IsZero() || t.Enqueued.Before(oldest) {
			oldest = t.Enqueued
		}
	}
	return len(q.tasks), oldest
}

func (q *fakeQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.tasks)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestEngineDrainsQueue(t *testing.T) {
	q := newFakeQueue()
	q.add("/zone/a", "r1")
	q.add("/zone/b", "r1")
	q.add("/zone/c", "r2")

	var mu sync.Mutex
	ran := map[string]int{}
	reg := obs.NewRegistry()
	e := New(Config{
		Workers: 2,
		Queue:   q,
		Metrics: reg,
		Poll:    10 * time.Millisecond,
		Seed:    1,
		Exec: func(task types.RepairTask, sp *obs.Span) error {
			mu.Lock()
			ran[task.Key]++
			mu.Unlock()
			return nil
		},
	})
	e.Start()
	defer e.Stop()

	waitFor(t, 3*time.Second, func() bool { return q.depth() == 0 }, "queue drain")
	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 3 {
		t.Fatalf("ran %d distinct tasks, want 3: %v", len(ran), ran)
	}
	for k, n := range ran {
		if n != 1 {
			t.Errorf("task %s ran %d times, want 1 (dedup/inflight failed)", k, n)
		}
	}
	if got := reg.Counter("repair.tasks.done").Value(); got != 3 {
		t.Errorf("repair.tasks.done = %d, want 3", got)
	}
}

func TestEngineRetriesWithBackoff(t *testing.T) {
	q := newFakeQueue()
	q.add("/zone/flaky", "r1")

	var mu sync.Mutex
	calls := 0
	reg := obs.NewRegistry()
	e := New(Config{
		Workers: 1,
		Queue:   q,
		Metrics: reg,
		Poll:    5 * time.Millisecond,
		Backoff: resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Seed:    1,
		Exec: func(task types.RepairTask, sp *obs.Span) error {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		},
	})
	e.Start()
	defer e.Stop()

	waitFor(t, 3*time.Second, func() bool { return q.depth() == 0 }, "retry convergence")
	mu.Lock()
	defer mu.Unlock()
	if calls != 3 {
		t.Fatalf("exec ran %d times, want 3", calls)
	}
	if got := reg.Counter("repair.retries").Value(); got != 2 {
		t.Errorf("repair.retries = %d, want 2", got)
	}
	if got := reg.Counter("repair.tasks.done").Value(); got != 1 {
		t.Errorf("repair.tasks.done = %d, want 1", got)
	}
}

func TestEnginePauseResume(t *testing.T) {
	q := newFakeQueue()
	var mu sync.Mutex
	ran := 0
	e := New(Config{
		Workers: 1,
		Queue:   q,
		Poll:    5 * time.Millisecond,
		Seed:    1,
		Exec: func(task types.RepairTask, sp *obs.Span) error {
			mu.Lock()
			ran++
			mu.Unlock()
			return nil
		},
	})
	e.Start()
	defer e.Stop()

	e.Pause()
	if !e.Paused() {
		t.Fatal("Paused() = false after Pause")
	}
	q.add("/zone/x", "r1")
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	if ran != 0 {
		mu.Unlock()
		t.Fatalf("task executed while paused (%d runs)", ran)
	}
	mu.Unlock()
	if q.depth() != 1 {
		t.Fatal("queue drained while paused")
	}

	e.Resume()
	waitFor(t, 3*time.Second, func() bool { return q.depth() == 0 }, "drain after resume")
}

func TestEngineWedged(t *testing.T) {
	q := newFakeQueue()
	e := New(Config{
		Workers: 0, // no one to drain the queue
		Queue:   q,
		Poll:    5 * time.Millisecond,
		Seed:    1,
		Exec:    func(task types.RepairTask, sp *obs.Span) error { return nil },
	})
	if e.Wedged() {
		t.Fatal("wedged before Start")
	}
	e.Start()
	defer e.Stop()

	if e.Wedged() {
		t.Fatal("wedged with empty queue")
	}
	q.add("/zone/stuck", "r1")
	if !e.Wedged() {
		t.Fatal("not wedged: backlog > 0 and zero workers alive")
	}
	st := e.Status()
	if !st.Wedged || st.Backlog != 1 || st.WorkersAlive != 0 {
		t.Fatalf("status = %+v, want wedged with backlog 1", st)
	}

	// An operator pause is intentional, not wedged.
	e.Pause()
	if e.Wedged() {
		t.Fatal("paused engine reported wedged")
	}
}

func TestEngineSkipsOpenBreaker(t *testing.T) {
	reg := obs.NewRegistry()
	set := resilience.NewSet(resilience.BreakerConfig{Threshold: 1, Cooldown: time.Hour}, reg)
	set.For("resource.down").Failure() // trip it open

	q := newFakeQueue()
	q.add("/zone/blocked", "down")
	q.add("/zone/free", "up")

	var mu sync.Mutex
	ran := map[string]bool{}
	e := New(Config{
		Workers:  1,
		Queue:    q,
		Metrics:  reg,
		Breakers: set,
		Poll:     5 * time.Millisecond,
		Seed:     1,
		Exec: func(task types.RepairTask, sp *obs.Span) error {
			mu.Lock()
			ran[task.Resource] = true
			mu.Unlock()
			return nil
		},
	})
	e.Start()
	defer e.Stop()

	waitFor(t, 3*time.Second, func() bool { return q.depth() == 1 }, "healthy-resource task drain")
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if !ran["up"] {
		t.Fatal("task on healthy resource never ran")
	}
	if ran["down"] {
		t.Fatal("task ran against a resource with an open breaker")
	}
}

func TestEngineJobs(t *testing.T) {
	q := newFakeQueue()
	var mu sync.Mutex
	runs := 0
	e := New(Config{
		Workers: 1,
		Queue:   q,
		Poll:    50 * time.Millisecond,
		Seed:    1,
		Exec:    func(task types.RepairTask, sp *obs.Span) error { return nil },
	})
	e.AddJob("tick", 10*time.Millisecond, 0.2, func(sp *obs.Span) error {
		mu.Lock()
		runs++
		mu.Unlock()
		return nil
	})
	e.Start()
	defer e.Stop()

	waitFor(t, 3*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return runs >= 2
	}, "scheduled job runs")

	// Manual trigger works and is reflected in status.
	if err := e.RunJob("tick"); err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if err := e.RunJob("nope"); !errors.Is(err, types.ErrNotFound) {
		t.Fatalf("RunJob(unknown) = %v, want ErrNotFound", err)
	}
	st := e.Status()
	if len(st.Jobs) != 1 || st.Jobs[0].Name != "tick" || st.Jobs[0].Runs < 3 {
		t.Fatalf("job status = %+v, want tick with >=3 runs", st.Jobs)
	}
}

func TestEngineStopIdempotent(t *testing.T) {
	q := newFakeQueue()
	e := New(Config{
		Workers: 2,
		Queue:   q,
		Poll:    5 * time.Millisecond,
		Seed:    1,
		Exec:    func(task types.RepairTask, sp *obs.Span) error { return nil },
	})
	e.Start()
	e.Start() // second Start is a no-op
	e.Stop()
	e.Stop() // second Stop is a no-op
	if st := e.Status(); st.WorkersAlive != 0 {
		t.Fatalf("workers alive after Stop: %d", st.WorkersAlive)
	}
}
