// Package repair is the grid's background maintenance engine: a
// rate-limited, breaker-aware worker pool embedded in srbd that drains
// the MCAT's persistent repair queue and runs named periodic jobs
// (anti-entropy scrubbing, queue sweeps) on jittered schedules.
//
// The paper's SRB replicates synchronously and trusts replicas to stay
// consistent; this engine moves replica fan-out and consistency off the
// write path. An async write lands k replicas synchronously and leaves
// the rest as journaled repair tasks; the scrubber re-hashes stored
// bytes against the catalog checksum and feeds divergence back into the
// same queue. Every task and job run is measured (obs ops, counters,
// gauges) and traced (spans with repair/breaker events), and the engine
// can be paused, resumed and inspected over the admin endpoint and the
// wire protocol.
package repair

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gosrb/internal/obs"
	"gosrb/internal/resilience"
	"gosrb/internal/types"
)

// Queue is the persistent task store the engine drains — implemented
// by *mcat.Catalog, whose journal makes the queue survive restarts.
type Queue interface {
	PendingRepairs() []types.RepairTask
	CompleteRepair(key string) bool
	NoteRepairAttempt(key string) int
	RepairBacklog() (int, time.Time)
}

// Config assembles an Engine.
type Config struct {
	// Workers is the number of task-executing goroutines (default 2).
	// Zero is legal but leaves the queue undrained (the engine reports
	// itself wedged once tasks accumulate).
	Workers int
	// Queue is the persistent task store (required).
	Queue Queue
	// Exec runs one task; a nil error completes it, any other error
	// reschedules it under the backoff policy. The span is the task's
	// trace context (required).
	Exec func(t types.RepairTask, sp *obs.Span) error
	// Metrics receives counters, gauges, per-job ops and task spans
	// (nil disables, as everywhere in obs).
	Metrics *obs.Registry
	// Breakers, when set, makes the engine skip tasks whose target
	// resource has an open breaker and feed task outcomes back into it.
	Breakers *resilience.Set
	// Backoff caps the delay between attempts of one task (MaxAttempts
	// is ignored: repair retries until the grid converges).
	Backoff resilience.Policy
	// Poll is how often the dispatcher re-reads the queue when idle
	// (default 250ms); Kick wakes it early.
	Poll time.Duration
	// Rate is the minimum spacing between task executions across all
	// workers (0 = unlimited) — the engine must not out-compete
	// foreground traffic for storage bandwidth.
	Rate time.Duration
	// Server names this daemon in task/job span records.
	Server string
	// Seed pins the schedule-jitter and backoff-jitter PRNG for
	// deterministic tests (0 = seeded from the clock).
	Seed int64
	// Now overrides the time source (tests).
	Now func() time.Time
}

// job is one named periodic maintenance routine.
type job struct {
	name     string
	interval time.Duration
	jitter   float64
	fn       func(sp *obs.Span) error
	op       *obs.Op

	mu      sync.Mutex
	runs    int64
	errs    int64
	lastRun time.Time
	lastErr string
}

// Engine is the background maintenance engine. Construct with New,
// register jobs with AddJob, then Start. All methods are safe for
// concurrent use.
type Engine struct {
	cfg    Config
	taskOp *obs.Op
	done   *obs.Counter
	failed *obs.Counter
	retry  *obs.Counter

	mu       sync.Mutex
	jobs     []*job
	nextTry  map[string]time.Time
	attempts map[string]int
	inflight map[string]bool
	rng      *rand.Rand
	paused   bool
	started  bool

	rateMu   sync.Mutex
	rateNext time.Time

	alive    atomic.Int64
	stopCh   chan struct{}
	kick     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds an engine from cfg (does not start it).
func New(cfg Config) *Engine {
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	if cfg.Backoff.MaxAttempts == 0 && cfg.Backoff.BaseDelay == 0 {
		cfg.Backoff = resilience.Policy{BaseDelay: 50 * time.Millisecond, MaxDelay: 5 * time.Second, Jitter: 0.5}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = cfg.Now().UnixNano()
	}
	return &Engine{
		cfg:      cfg,
		taskOp:   cfg.Metrics.Op("repair.task"),
		done:     cfg.Metrics.Counter("repair.tasks.done"),
		failed:   cfg.Metrics.Counter("repair.tasks.failed"),
		retry:    cfg.Metrics.Counter("repair.retries"),
		nextTry:  make(map[string]time.Time),
		attempts: make(map[string]int),
		inflight: make(map[string]bool),
		rng:      rand.New(rand.NewSource(seed)),
		stopCh:   make(chan struct{}),
		kick:     make(chan struct{}, 1),
	}
}

// AddJob registers a named periodic job run every interval, each wait
// shortened by up to jitter (a 0..1 fraction) so repeated srbd
// instances do not scrub in lockstep. Must be called before Start.
func (e *Engine) AddJob(name string, interval time.Duration, jitter float64, fn func(sp *obs.Span) error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.jobs = append(e.jobs, &job{
		name:     name,
		interval: interval,
		jitter:   jitter,
		fn:       fn,
		op:       e.cfg.Metrics.Op("repair.job." + name),
	})
}

// Start launches the dispatcher, the worker pool and one scheduler per
// registered job.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	jobs := append([]*job(nil), e.jobs...)
	e.mu.Unlock()

	workCh := make(chan types.RepairTask)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.dispatch(workCh)
	}()
	for i := 0; i < e.cfg.Workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.worker(workCh)
		}()
	}
	for _, j := range jobs {
		e.wg.Add(1)
		go func(j *job) {
			defer e.wg.Done()
			e.schedule(j)
		}(j)
	}
}

// Stop halts the engine and waits for in-flight tasks and jobs.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stopCh) })
	e.wg.Wait()
}

// Pause suspends task dispatch and job runs (in-flight work finishes).
func (e *Engine) Pause() { e.setPaused(true) }

// Resume lifts a Pause and wakes the dispatcher.
func (e *Engine) Resume() {
	e.setPaused(false)
	e.Kick()
}

func (e *Engine) setPaused(p bool) {
	e.mu.Lock()
	e.paused = p
	e.mu.Unlock()
	v := int64(0)
	if p {
		v = 1
	}
	e.cfg.Metrics.Gauge("repair.paused").Set(v)
}

// Paused reports whether the engine is paused.
func (e *Engine) Paused() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.paused
}

// Kick wakes the dispatcher immediately — called after an enqueue so
// async fan-out does not wait out a poll interval.
func (e *Engine) Kick() {
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// dispatch feeds eligible queue tasks to the workers: not in flight,
// past their backoff time, and with a closed (or probing) breaker on
// the target resource.
func (e *Engine) dispatch(workCh chan types.RepairTask) {
	defer close(workCh)
	for {
		if !e.Paused() {
			now := e.cfg.Now()
			for _, t := range e.cfg.Queue.PendingRepairs() {
				e.mu.Lock()
				busy := e.inflight[t.Key]
				notBefore := e.nextTry[t.Key]
				e.mu.Unlock()
				if busy || now.Before(notBefore) {
					continue
				}
				if e.cfg.Breakers != nil && !e.cfg.Breakers.For("resource."+t.Resource).Allow() {
					continue
				}
				e.mu.Lock()
				e.inflight[t.Key] = true
				e.mu.Unlock()
				select {
				case workCh <- t:
				case <-e.stopCh:
					return
				}
			}
		}
		e.publishBacklog()
		select {
		case <-e.stopCh:
			return
		case <-e.kick:
		case <-time.After(e.cfg.Poll):
		}
	}
}

// worker executes tasks, spacing executions by the configured rate.
func (e *Engine) worker(workCh chan types.RepairTask) {
	e.alive.Add(1)
	defer e.alive.Add(-1)
	for t := range workCh {
		e.rateWait()
		e.runTask(t)
	}
}

// rateWait enforces the global minimum spacing between task starts.
func (e *Engine) rateWait() {
	if e.cfg.Rate <= 0 {
		return
	}
	e.rateMu.Lock()
	now := time.Now()
	next := e.rateNext
	if next.Before(now) {
		next = now
	}
	e.rateNext = next.Add(e.cfg.Rate)
	e.rateMu.Unlock()
	if d := next.Sub(now); d > 0 {
		select {
		case <-time.After(d):
		case <-e.stopCh:
		}
	}
}

// runTask executes one task under a span; success completes it,
// failure reschedules it with capped jittered backoff and feeds the
// target resource's breaker.
func (e *Engine) runTask(t types.RepairTask) {
	start := time.Now()
	sp := obs.StartSpan("", "repair.task")
	var br *resilience.Breaker
	if e.cfg.Breakers != nil {
		br = e.cfg.Breakers.For("resource." + t.Resource)
	}
	err := e.cfg.Exec(t, sp)
	if err == nil {
		e.cfg.Queue.CompleteRepair(t.Key)
		e.done.Inc()
		sp.Event(obs.EventRepair, t.Key+" ok")
		br.Success()
	} else {
		attempts := e.cfg.Queue.NoteRepairAttempt(t.Key)
		e.failed.Inc()
		e.retry.Inc()
		sp.Event(obs.EventRepair, t.Key+" err="+err.Error())
		if resilience.Retryable(err) && br.Failure() {
			sp.Event(obs.EventBreakerTrip, "resource."+t.Resource)
		}
		d := e.cfg.Backoff.Backoff(attempts - 1)
		e.mu.Lock()
		if e.cfg.Backoff.Jitter > 0 && d > 0 {
			d = d - time.Duration(e.cfg.Backoff.Jitter*e.rng.Float64()*float64(d))
		}
		e.attempts[t.Key] = attempts
		e.nextTry[t.Key] = e.cfg.Now().Add(d)
		e.mu.Unlock()
	}
	if err == nil {
		e.mu.Lock()
		delete(e.attempts, t.Key)
		delete(e.nextTry, t.Key)
		e.mu.Unlock()
	}
	e.mu.Lock()
	delete(e.inflight, t.Key)
	e.mu.Unlock()
	e.taskOp.Done(start, err)
	sp.End(e.cfg.Metrics.Traces(), e.cfg.Server, "", err)
}

// schedule runs one job on its jittered period until the engine stops.
func (e *Engine) schedule(j *job) {
	for {
		d := j.interval
		if j.jitter > 0 && d > 0 {
			e.mu.Lock()
			f := e.rng.Float64()
			e.mu.Unlock()
			d = d - time.Duration(j.jitter*f*float64(d))
		}
		select {
		case <-e.stopCh:
			return
		case <-time.After(d):
		}
		if e.Paused() {
			continue
		}
		e.runJob(j)
	}
}

// runJob executes one job iteration under a span and its obs op.
func (e *Engine) runJob(j *job) error {
	start := time.Now()
	sp := obs.StartSpan("", "repair.job."+j.name)
	err := j.fn(sp)
	j.op.Done(start, err)
	sp.End(e.cfg.Metrics.Traces(), e.cfg.Server, "", err)
	j.mu.Lock()
	j.runs++
	j.lastRun = time.Now()
	if err != nil {
		j.errs++
		j.lastErr = err.Error()
	} else {
		j.lastErr = ""
	}
	j.mu.Unlock()
	return err
}

// RunJob triggers the named job synchronously, regardless of its
// schedule or the pause flag — the manual lever tests and operators
// use. Returns the job's error (types.ErrNotFound for an unknown name).
func (e *Engine) RunJob(name string) error {
	e.mu.Lock()
	var found *job
	for _, j := range e.jobs {
		if j.name == name {
			found = j
			break
		}
	}
	e.mu.Unlock()
	if found == nil {
		return types.E("repairjob", name, types.ErrNotFound)
	}
	return e.runJob(found)
}

// publishBacklog refreshes the queue gauges.
func (e *Engine) publishBacklog() {
	n, oldest := e.cfg.Queue.RepairBacklog()
	e.cfg.Metrics.Gauge("repair.backlog").Set(int64(n))
	var age int64
	if n > 0 && !oldest.IsZero() {
		age = int64(e.cfg.Now().Sub(oldest).Seconds())
	}
	e.cfg.Metrics.Gauge("repair.oldest_age_seconds").Set(age)
}

// JobStatus is the externally visible state of one periodic job.
type JobStatus struct {
	Name     string
	Interval time.Duration
	Runs     int64
	Errors   int64
	LastRun  time.Time `json:",omitempty"`
	LastErr  string    `json:",omitempty"`
}

// Status is a point-in-time view of the engine for the admin /repair
// endpoint, the repairstatus wire op and the MySRB status page.
type Status struct {
	Running      bool
	Paused       bool
	Wedged       bool
	Workers      int
	WorkersAlive int
	Backlog      int
	OldestAge    time.Duration
	Done         int64
	Failed       int64
	Retries      int64
	Jobs         []JobStatus `json:",omitempty"`
}

// Wedged reports the stuck state readiness turns into a 503: tasks are
// pending but no worker is alive to drain them (and the engine is not
// merely paused by an operator).
func (e *Engine) Wedged() bool {
	e.mu.Lock()
	started, paused := e.started, e.paused
	e.mu.Unlock()
	if !started || paused {
		return false
	}
	if e.alive.Load() > 0 {
		return false
	}
	n, _ := e.cfg.Queue.RepairBacklog()
	return n > 0
}

// Status snapshots the engine.
func (e *Engine) Status() Status {
	n, oldest := e.cfg.Queue.RepairBacklog()
	var age time.Duration
	if n > 0 && !oldest.IsZero() {
		age = e.cfg.Now().Sub(oldest)
	}
	e.mu.Lock()
	st := Status{
		Running:      e.started,
		Paused:       e.paused,
		Workers:      e.cfg.Workers,
		WorkersAlive: int(e.alive.Load()),
		Backlog:      n,
		OldestAge:    age,
		Done:         e.done.Value(),
		Failed:       e.failed.Value(),
		Retries:      e.retry.Value(),
	}
	for _, j := range e.jobs {
		j.mu.Lock()
		st.Jobs = append(st.Jobs, JobStatus{
			Name:     j.name,
			Interval: j.interval,
			Runs:     j.runs,
			Errors:   j.errs,
			LastRun:  j.lastRun,
			LastErr:  j.lastErr,
		})
		j.mu.Unlock()
	}
	e.mu.Unlock()
	st.Wedged = st.Running && !st.Paused && st.WorkersAlive == 0 && st.Backlog > 0
	e.publishBacklog()
	return st
}
