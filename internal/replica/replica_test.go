package replica

import (
	"errors"
	"testing"

	"gosrb/internal/mcat"
	"gosrb/internal/storage"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

// drivers is a test DriverMap over memfs stores.
type drivers map[string]storage.Driver

func (d drivers) Driver(resource string) (storage.Driver, error) {
	dr, ok := d[resource]
	if !ok {
		return nil, types.E("driver", resource, types.ErrNotFound)
	}
	return dr, nil
}

// rig assembles a catalog with three physical resources and one object
// ingested on r1.
func rig(t *testing.T) (*mcat.Catalog, drivers, *Manager) {
	t.Helper()
	cat := mcat.New("admin", "sdsc")
	dm := drivers{"r1": memfs.New(), "r2": memfs.New(), "r3": memfs.New()}
	for _, r := range []string{"r1", "r2", "r3"} {
		if err := cat.AddResource(types.Resource{Name: r, Kind: types.ResourcePhysical, Driver: "memfs"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cat.MkColl("/d", "admin"); err != nil {
		t.Fatal(err)
	}
	m := NewManager(cat, dm)
	obj := &types.DataObject{Name: "f", Collection: "/d", Owner: "u", Kind: types.KindFile}
	id, err := cat.RegisterObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	obj.ID = id
	phys := PhysPathFor(obj, 0)
	data := []byte("replica payload")
	if err := storage.WriteAll(dm["r1"], phys, data); err != nil {
		t.Fatal(err)
	}
	err = cat.UpdateObject("/d/f", func(o *types.DataObject) error {
		o.Size = int64(len(data))
		o.Checksum = Checksum(data)
		o.Replicas = []types.Replica{{
			Number: 0, Resource: "r1", PhysicalPath: phys,
			Status: types.ReplicaClean, Size: int64(len(data)), Checksum: Checksum(data),
		}}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat, dm, m
}

func TestReadAll(t *testing.T) {
	_, _, m := rig(t)
	data, rep, err := m.ReadAll("/d/f", "")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "replica payload" || rep.Resource != "r1" {
		t.Errorf("read = %q from %s", data, rep.Resource)
	}
}

func TestReplicateCreatesSecondCopy(t *testing.T) {
	cat, dm, m := rig(t)
	rep, err := m.Replicate("/d/f", "r2")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Number != 1 || rep.Resource != "r2" {
		t.Errorf("new replica = %+v", rep)
	}
	o, _ := cat.GetObject("/d/f")
	if len(o.Replicas) != 2 {
		t.Fatalf("replicas = %+v", o.Replicas)
	}
	// Bytes really exist on r2 and match.
	got, err := storage.ReadAll(dm["r2"], rep.PhysicalPath)
	if err != nil || string(got) != "replica payload" {
		t.Errorf("r2 bytes = %q, %v", got, err)
	}
	if rep.Checksum != o.Replicas[0].Checksum {
		t.Error("checksums should match across replicas")
	}
	// Replicating onto a logical resource is invalid.
	cat.AddResource(types.Resource{Name: "lr", Kind: types.ResourceLogical, Members: []string{"r1", "r2"}})
	if _, err := m.Replicate("/d/f", "lr"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("logical target: %v", err)
	}
}

func TestFailoverToSecondReplica(t *testing.T) {
	cat, _, m := rig(t)
	if _, err := m.Replicate("/d/f", "r2"); err != nil {
		t.Fatal(err)
	}
	// Knock the primary offline: reads silently fail over (paper §3.4).
	cat.SetResourceOnline("r1", false)
	data, rep, err := m.ReadAll("/d/f", "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resource != "r2" || string(data) != "replica payload" {
		t.Errorf("failover read = %q from %s", data, rep.Resource)
	}
	// All resources down: ErrOffline.
	cat.SetResourceOnline("r2", false)
	if _, _, err := m.ReadAll("/d/f", ""); !errors.Is(err, types.ErrOffline) {
		t.Errorf("all offline: %v", err)
	}
}

func TestPreferredResource(t *testing.T) {
	_, _, m := rig(t)
	if _, err := m.Replicate("/d/f", "r2"); err != nil {
		t.Fatal(err)
	}
	_, rep, err := m.ReadAll("/d/f", "r2")
	if err != nil || rep.Resource != "r2" {
		t.Errorf("preferred read from %s, %v", rep.Resource, err)
	}
}

func TestRoundRobinSpreadsReads(t *testing.T) {
	_, _, m := rig(t)
	m.Replicate("/d/f", "r2")
	m.Replicate("/d/f", "r3")
	m.SetPolicy(RoundRobin)
	seen := map[string]int{}
	for i := 0; i < 9; i++ {
		_, rep, err := m.ReadAll("/d/f", "")
		if err != nil {
			t.Fatal(err)
		}
		seen[rep.Resource]++
	}
	if len(seen) != 3 {
		t.Errorf("round robin used %v", seen)
	}
	for r, n := range seen {
		if n != 3 {
			t.Errorf("resource %s served %d of 9", r, n)
		}
	}
}

func TestWriteAllMarksUnreachableDirty(t *testing.T) {
	cat, _, m := rig(t)
	m.Replicate("/d/f", "r2")
	cat.SetResourceOnline("r2", false)
	if err := m.WriteAll("/d/f", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	o, _ := cat.GetObject("/d/f")
	var r1, r2 types.Replica
	for _, r := range o.Replicas {
		switch r.Resource {
		case "r1":
			r1 = r
		case "r2":
			r2 = r
		}
	}
	if r1.Status != types.ReplicaClean || r1.Size != 2 {
		t.Errorf("r1 = %+v", r1)
	}
	if r2.Status != types.ReplicaDirty {
		t.Errorf("r2 = %+v", r2)
	}
	// Reads never land on the dirty replica.
	cat.SetResourceOnline("r2", true)
	for i := 0; i < 5; i++ {
		data, rep, err := m.ReadAll("/d/f", "")
		if err != nil || rep.Resource != "r1" || string(data) != "v2" {
			t.Fatalf("read %d = %q from %s, %v", i, data, rep.Resource, err)
		}
	}
	// SyncDirty repairs it.
	n, err := m.SyncDirty("/d/f")
	if err != nil || n != 1 {
		t.Fatalf("SyncDirty = %d, %v", n, err)
	}
	o, _ = cat.GetObject("/d/f")
	for _, r := range o.Replicas {
		if r.Status != types.ReplicaClean || r.Size != 2 {
			t.Errorf("after sync: %+v", r)
		}
	}
	data, _, _ := m.ReadAll("/d/f", "r2")
	if string(data) != "v2" {
		t.Errorf("r2 content after sync = %q", data)
	}
	// Sync with nothing dirty is a no-op.
	if n, _ := m.SyncDirty("/d/f"); n != 0 {
		t.Errorf("second sync = %d", n)
	}
}

func TestWriteAllAllOffline(t *testing.T) {
	cat, _, m := rig(t)
	cat.SetResourceOnline("r1", false)
	if err := m.WriteAll("/d/f", []byte("x")); !errors.Is(err, types.ErrOffline) {
		t.Errorf("write all-offline: %v", err)
	}
}

func TestPhysicalMove(t *testing.T) {
	cat, dm, m := rig(t)
	o, _ := cat.GetObject("/d/f")
	oldPhys := o.Replicas[0].PhysicalPath
	if err := m.PhysicalMove("/d/f", 0, "r3"); err != nil {
		t.Fatal(err)
	}
	o, _ = cat.GetObject("/d/f")
	if o.Replicas[0].Resource != "r3" {
		t.Errorf("replica after move = %+v", o.Replicas[0])
	}
	if _, err := dm["r1"].Stat(oldPhys); !errors.Is(err, types.ErrNotFound) {
		t.Error("old bytes should be removed")
	}
	data, _, err := m.ReadAll("/d/f", "")
	if err != nil || string(data) != "replica payload" {
		t.Errorf("read after move = %q, %v", data, err)
	}
	if err := m.PhysicalMove("/d/f", 9, "r2"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("missing replica number: %v", err)
	}
}

func TestDeleteReplica(t *testing.T) {
	cat, dm, m := rig(t)
	rep, err := m.Replicate("/d/f", "r2")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteReplica("/d/f", rep.Number); err != nil {
		t.Fatal(err)
	}
	o, _ := cat.GetObject("/d/f")
	if len(o.Replicas) != 1 {
		t.Errorf("replicas = %+v", o.Replicas)
	}
	if _, err := dm["r2"].Stat(rep.PhysicalPath); !errors.Is(err, types.ErrNotFound) {
		t.Error("replica bytes should be gone")
	}
	// The last replica cannot be deleted through the replica manager.
	if err := m.DeleteReplica("/d/f", 0); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("last replica: %v", err)
	}
}

func TestReplicaNumbersNeverReused(t *testing.T) {
	cat, _, m := rig(t)
	r1, _ := m.Replicate("/d/f", "r2")
	if err := m.DeleteReplica("/d/f", r1.Number); err != nil {
		t.Fatal(err)
	}
	r2, err := m.Replicate("/d/f", "r3")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Number <= r1.Number {
		// Numbers are assigned past the highest live number; deleting
		// the top one may allow reuse, which is acceptable — but the
		// new number must never collide with a live replica.
		o, _ := cat.GetObject("/d/f")
		seen := map[types.ReplicaNumber]int{}
		for _, r := range o.Replicas {
			seen[r.Number]++
			if seen[r.Number] > 1 {
				t.Errorf("duplicate replica number %d", r.Number)
			}
		}
	}
}

func TestReplicateErrorPaths(t *testing.T) {
	cat, _, m := rig(t)
	// Offline target.
	cat.SetResourceOnline("r2", false)
	if _, err := m.Replicate("/d/f", "r2"); !errors.Is(err, types.ErrOffline) {
		t.Errorf("offline target = %v", err)
	}
	cat.SetResourceOnline("r2", true)
	// Unknown target resource.
	if _, err := m.Replicate("/d/f", "ghost"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("unknown target = %v", err)
	}
	// Unknown object.
	if _, err := m.Replicate("/d/ghost", "r2"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("unknown object = %v", err)
	}
	// Registered kinds are not replicable through the manager.
	cat.RegisterObject(&types.DataObject{Name: "u", Collection: "/d", Kind: types.KindURL, URL: "mem://x"})
	if _, err := m.Replicate("/d/u", "r2"); !errors.Is(err, types.ErrUnsupported) {
		t.Errorf("url replicate = %v", err)
	}
}

func TestPhysicalMoveGuards(t *testing.T) {
	cat, _, m := rig(t)
	// Non-physical target.
	cat.AddResource(types.Resource{Name: "lr", Kind: types.ResourceLogical, Members: []string{"r1", "r2"}})
	if err := m.PhysicalMove("/d/f", 0, "lr"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("move to logical = %v", err)
	}
	// Offline target.
	cat.SetResourceOnline("r3", false)
	if err := m.PhysicalMove("/d/f", 0, "r3"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("move to offline = %v", err)
	}
	// Unknown object / resource.
	if err := m.PhysicalMove("/d/ghost", 0, "r2"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("move missing object = %v", err)
	}
	if err := m.PhysicalMove("/d/f", 0, "ghost"); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("move to missing = %v", err)
	}
}

func TestSyncDirtyWithSourceOffline(t *testing.T) {
	cat, _, m := rig(t)
	if _, err := m.Replicate("/d/f", "r2"); err != nil {
		t.Fatal(err)
	}
	cat.SetResourceOnline("r2", false)
	if err := m.WriteAll("/d/f", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// With every clean replica unreachable, sync fails cleanly.
	cat.SetResourceOnline("r2", true)
	cat.SetResourceOnline("r1", false)
	if _, err := m.SyncDirty("/d/f"); err == nil {
		t.Error("sync without a reachable clean replica should fail")
	}
	cat.SetResourceOnline("r1", true)
	if n, err := m.SyncDirty("/d/f"); err != nil || n != 1 {
		t.Errorf("sync after recovery = %d, %v", n, err)
	}
}
