package replica

import (
	"errors"
	"strings"
	"testing"
	"time"

	"gosrb/internal/faultnet"
	"gosrb/internal/resilience"
	"gosrb/internal/types"
)

// TestWriteAllPartialWriteNoGhostReplica drives WriteAll into an
// error-after-N-bytes driver: the torn replica must come back marked
// dirty in the MCAT — not as a ghost row still claiming the old clean
// contents — and the error must name the failing resource.
func TestWriteAllPartialWriteNoGhostReplica(t *testing.T) {
	cat, dm, m := rig(t)
	before, err := cat.GetObject("/d/f")
	if err != nil {
		t.Fatal(err)
	}

	in := faultnet.New(7)
	dm["r1"] = in.WrapDriver("resource.r1", dm["r1"])
	in.Target("resource.r1").PartialWriteAfter(4)

	werr := m.WriteAll("/d/f", []byte("new contents, longer than four bytes"))
	if werr == nil {
		t.Fatal("partial write must fail WriteAll")
	}
	if !strings.Contains(werr.Error(), "resource r1") {
		t.Errorf("error %q does not name the failing resource", werr)
	}
	if !errors.Is(werr, faultnet.ErrInjected) {
		t.Errorf("error %v does not carry the driver cause", werr)
	}

	o, err := cat.GetObject("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	// The physical file is truncated, so the replica row must be dirty:
	// a clean row here would serve 4 garbage bytes as the old object.
	if got := o.Replicas[0].Status; got != types.ReplicaDirty {
		t.Errorf("torn replica status = %v, want dirty", got)
	}
	// The logical object keeps its old identity — nothing was stored.
	if o.Size != before.Size || o.Checksum != before.Checksum {
		t.Errorf("object rewritten despite failed write: size %d checksum %s", o.Size, o.Checksum)
	}
	// And no reader can be handed the torn bytes.
	if _, _, err := m.ReadAll("/d/f", ""); !errors.Is(err, types.ErrOffline) {
		t.Errorf("read after torn write = %v, want offline", err)
	}
}

// TestWriteAllPartialWithHealthySibling: when one replica tears but a
// sibling takes the bytes, the write succeeds, the torn replica is
// dirty, and reads serve the new contents from the healthy one.
func TestWriteAllPartialWithHealthySibling(t *testing.T) {
	cat, dm, m := rig(t)
	if _, err := m.Replicate("/d/f", "r2"); err != nil {
		t.Fatal(err)
	}
	in := faultnet.New(7)
	dm["r1"] = in.WrapDriver("resource.r1", dm["r1"])
	in.Target("resource.r1").PartialWriteAfter(4)

	newData := []byte("v2 contents")
	if err := m.WriteAll("/d/f", newData); err != nil {
		t.Fatalf("write with one healthy replica: %v", err)
	}
	o, err := cat.GetObject("/d/f")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range o.Replicas {
		want := types.ReplicaClean
		if r.Resource == "r1" {
			want = types.ReplicaDirty
		}
		if r.Status != want {
			t.Errorf("replica on %s status = %v, want %v", r.Resource, r.Status, want)
		}
	}
	data, rep, err := m.ReadAll("/d/f", "")
	if err != nil || string(data) != string(newData) || rep.Resource != "r2" {
		t.Errorf("read = %q from %s (%v), want new contents from r2", data, rep.Resource, err)
	}
	// Clear the fault and SyncDirty heals the torn replica.
	in.Target("resource.r1").Clear()
	if n, err := m.SyncDirty("/d/f"); n != 1 || err != nil {
		t.Errorf("SyncDirty = %d, %v", n, err)
	}
}

// TestCandidatesSkipTrippedResource: once a resource's breaker opens,
// replica selection routes around it without touching its driver, and
// a half-open probe brings it back after the cooldown.
func TestCandidatesSkipTrippedResource(t *testing.T) {
	_, dm, m := rig(t)
	if _, err := m.Replicate("/d/f", "r2"); err != nil {
		t.Fatal(err)
	}
	in := faultnet.New(7)
	dm["r1"] = in.WrapDriver("resource.r1", dm["r1"])

	clk := struct{ t time.Time }{t: time.Unix(5000, 0)}
	set := resilience.NewSet(resilience.BreakerConfig{Threshold: 2, Cooldown: time.Minute}, nil)
	set.SetClock(func() time.Time { return clk.t })
	m.SetBreakers(set)

	in.Target("resource.r1").Kill()
	// Reads fail over to r2 while the breaker counts r1's failures.
	for i := 0; i < 2; i++ {
		if _, rep, err := m.ReadAll("/d/f", ""); err != nil || rep.Resource != "r2" {
			t.Fatalf("read %d = %s, %v", i, rep.Resource, err)
		}
	}
	if st := set.States()["resource.r1"]; st != resilience.Open {
		t.Fatalf("breaker after %d failures = %v, want open", 2, st)
	}
	opsAtTrip := in.Target("resource.r1").Ops()
	if _, rep, err := m.ReadAll("/d/f", ""); err != nil || rep.Resource != "r2" {
		t.Fatalf("read with open breaker = %s, %v", rep.Resource, err)
	}
	if got := in.Target("resource.r1").Ops(); got != opsAtTrip {
		t.Errorf("open breaker still let %d ops reach the dead driver", got-opsAtTrip)
	}
	// Heal the driver; after the cooldown a probe closes the breaker.
	in.Target("resource.r1").Revive()
	clk.t = clk.t.Add(time.Minute)
	if _, rep, err := m.ReadAll("/d/f", "r1"); err != nil || rep.Resource != "r1" {
		t.Errorf("probe read = %s, %v, want r1", rep.Resource, err)
	}
	if st := set.States()["resource.r1"]; st != resilience.Closed {
		t.Errorf("breaker after successful probe = %v, want closed", st)
	}
}
