// Package replica implements SRB replication management: synchronous
// replication into logical resources, replica selection with automatic
// failover ("the system automatically redirecting access to a replica
// on a separate storage system when the first storage system is
// unavailable", paper §3.4), dirty-replica synchronisation, and the
// physical move of a replica between resources.
package replica

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"gosrb/internal/obs"
	"gosrb/internal/resilience"
	"gosrb/internal/storage"
	"gosrb/internal/types"
)

// DriverMap resolves a resource name to its storage driver. The broker
// provides it; tests provide fakes.
type DriverMap interface {
	Driver(resource string) (storage.Driver, error)
}

// Policy selects among equivalent clean replicas on read.
type Policy int

const (
	// FirstAlive always reads the lowest-numbered clean replica whose
	// resource is online — SRB 1.1.8's behaviour.
	FirstAlive Policy = iota
	// RoundRobin rotates across clean online replicas, spreading load
	// (the paper's load-balancing rationale for replication, §3.2).
	RoundRobin
)

// Catalog is the slice of the metadata catalog the replica manager
// consumes. Both *mcat.Catalog and the shard router satisfy it.
type Catalog interface {
	GetObject(path string) (types.DataObject, error)
	GetResource(name string) (types.Resource, error)
	UpdateObject(path string, fn func(*types.DataObject) error) error
}

// Manager performs replica operations against one catalog.
type Manager struct {
	cat     Catalog
	drivers DriverMap
	policy  Policy
	rr      atomic.Uint64

	// fanoutOK / fanoutFail count individual replica writes during
	// synchronous fan-out (WriteAll, SyncDirty, Replicate): one logical
	// write touching k replicas records k outcomes. failover counts
	// reads served by a non-first candidate — the paper's automatic
	// redirection (§3.4) made visible.
	fanoutOK   *obs.Counter
	fanoutFail *obs.Counter
	failover   *obs.Counter

	// breakers, when set, vetoes replicas whose resource breaker is open
	// and records per-resource outcomes, so repeated driver failures
	// route reads to healthy replicas before the driver is even tried.
	breakers *resilience.Set

	// peers, when set, is the transfer observatory: every whole-object
	// read contributes a per-resource latency/bandwidth observation —
	// the observed history a cost-model replica selector ranks by.
	peers *obs.PeerHistory

	// heat, when set, is the hot-object table: every whole-object read
	// records the object path, feeding the heat observatory's per-object
	// view (and, downstream, replica-selection cost models).
	heat *obs.HeatTable

	// heatReg keeps the registry handle so SetHeatTracking can re-attach
	// the table after a benchmark baseline detached it.
	heatReg *obs.Registry
}

// SetMetrics attaches fan-out counters from the registry (nil detaches).
func (m *Manager) SetMetrics(r *obs.Registry) {
	m.fanoutOK = r.Counter("replica.fanout.ok")
	m.fanoutFail = r.Counter("replica.fanout.fail")
	m.failover = r.Counter("replica.read.failover")
	m.peers = r.Peers()
	m.heat = r.HeatObjects()
	m.heatReg = r
}

// SetHeatTracking switches hot-object recording on or off while leaving
// the rest of the instrumentation attached (the heat-overhead benchmark
// baseline).
func (m *Manager) SetHeatTracking(on bool) {
	if on {
		m.heat = m.heatReg.HeatObjects()
	} else {
		m.heat = nil
	}
}

// SetBreakers attaches the per-resource circuit breakers (nil disables
// breaker-aware selection).
func (m *Manager) SetBreakers(s *resilience.Set) { m.breakers = s }

// breaker returns the breaker guarding a resource (nil when disabled).
func (m *Manager) breaker(resource string) *resilience.Breaker {
	return m.breakers.For("resource." + resource)
}

// NewManager returns a Manager with the FirstAlive policy.
func NewManager(cat Catalog, drivers DriverMap) *Manager {
	return &Manager{cat: cat, drivers: drivers}
}

// SetPolicy changes the read-selection policy.
func (m *Manager) SetPolicy(p Policy) { m.policy = p }

// PhysPathFor allocates the canonical physical path for replica n of an
// object: a vault layout keyed by object ID so renames in the logical
// name space never require physical moves.
func PhysPathFor(o *types.DataObject, n types.ReplicaNumber) string {
	return fmt.Sprintf("/vault/%03d/oid%d.r%d", o.ID%512, o.ID, n)
}

// Checksum computes the hex SHA-256 the catalog stores for replicas.
func Checksum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// candidates returns the clean replicas on online resources in replica
// order, rotated when the policy is RoundRobin. Breaker decisions are
// annotated onto sp when the read is traced.
func (m *Manager) candidates(o *types.DataObject, prefer string, sp *obs.Span) []types.Replica {
	var clean []types.Replica
	for _, r := range o.Replicas {
		if r.Status != types.ReplicaClean {
			continue
		}
		res, err := m.cat.GetResource(r.Resource)
		if err != nil || !res.Online {
			continue
		}
		// An open breaker means the resource's driver has been failing:
		// route around it until a half-open probe proves it back.
		switch m.breaker(r.Resource).State() {
		case resilience.Open:
			sp.Event(obs.EventBreakerFast, "resource."+r.Resource)
			continue
		case resilience.HalfOpen:
			sp.Event(obs.EventBreakerProbe, "resource."+r.Resource)
		}
		clean = append(clean, r)
	}
	if len(clean) == 0 {
		return nil
	}
	if prefer != "" {
		for i, r := range clean {
			if r.Resource == prefer {
				clean[0], clean[i] = clean[i], clean[0]
				break
			}
		}
		return clean
	}
	if m.policy == RoundRobin && len(clean) > 1 {
		k := int(m.rr.Add(1)) % len(clean)
		rotated := make([]types.Replica, 0, len(clean))
		rotated = append(rotated, clean[k:]...)
		rotated = append(rotated, clean[:k]...)
		return rotated
	}
	return clean
}

// OpenRead opens the object's bytes for reading, trying clean replicas
// per the policy and failing over past unavailable resources. It
// returns the replica served.
func (m *Manager) OpenRead(path, preferResource string) (storage.ReadFile, types.Replica, error) {
	return m.OpenReadEv(path, preferResource, nil)
}

// OpenReadEv is OpenRead with trace-span annotation: breaker trips,
// fast-fails, half-open probes, failovers and cache hits along the
// replica selection land as events on sp (nil sp = untraced).
func (m *Manager) OpenReadEv(path, preferResource string, sp *obs.Span) (storage.ReadFile, types.Replica, error) {
	o, err := m.cat.GetObject(path)
	if err != nil {
		return nil, types.Replica{}, err
	}
	cands := m.candidates(&o, preferResource, sp)
	if len(cands) == 0 {
		return nil, types.Replica{}, types.E("open", path, types.ErrOffline)
	}
	var lastErr error
	for i, r := range cands {
		attempt := time.Now()
		d, err := m.drivers.Driver(r.Resource)
		if err != nil {
			// No local driver usually means a remote resource; that is
			// not the resource failing, so the breaker stays untouched
			// and a real failure from another replica keeps precedence
			// as the reported (retryable) cause.
			sp.Phase(obs.PhaseReplicaAttempt, time.Since(attempt))
			if lastErr == nil {
				lastErr = err
			}
			continue
		}
		openStart := time.Now()
		f, err := d.Open(r.PhysicalPath)
		openDur := time.Since(openStart)
		if err != nil {
			sp.Phase(obs.PhaseReplicaAttempt, time.Since(attempt))
			if resilience.Retryable(err) {
				if m.breaker(r.Resource).Failure() {
					sp.Event(obs.EventBreakerTrip, "resource."+r.Resource)
				}
			}
			lastErr = err
			continue
		}
		sp.Phase(obs.PhaseStorageOpen, openDur)
		sp.Phase(obs.PhaseReplicaAttempt, time.Since(attempt))
		m.breaker(r.Resource).Success()
		if i > 0 {
			m.failover.Inc()
			sp.Event(obs.EventFailover, fmt.Sprintf("replica %d on %s", r.Number, r.Resource))
		}
		if sp != nil {
			if res, err := m.cat.GetResource(r.Resource); err == nil && res.Class == types.ClassCache {
				sp.Event(obs.EventCacheHit, r.Resource)
			}
		}
		return f, r, nil
	}
	if lastErr == nil {
		lastErr = types.ErrOffline
	}
	return nil, types.Replica{}, types.E("open", path, lastErr)
}

// ReadAll retrieves the full contents via OpenRead.
func (m *Manager) ReadAll(path, preferResource string) ([]byte, types.Replica, error) {
	return m.ReadAllEv(path, preferResource, nil)
}

// ReadAllEv is ReadAll with trace-span annotation (see OpenReadEv).
// The observatory row charges the whole driver interaction — open plus
// read — since that is the transfer cost a replica selector would pay.
func (m *Manager) ReadAllEv(path, preferResource string, sp *obs.Span) ([]byte, types.Replica, error) {
	start := time.Now()
	f, r, err := m.OpenReadEv(path, preferResource, sp)
	if err != nil {
		sp.Phase(obs.PhaseStorageRead, time.Since(start))
		return nil, r, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	dur := time.Since(start)
	sp.Phase(obs.PhaseStorageRead, dur)
	m.peers.Record("", r.Resource, dur, int64(len(data)), err != nil)
	m.heat.Record(path, int64(len(data)))
	if err != nil {
		return nil, r, types.E("read", path, err)
	}
	return data, r, nil
}

// WriteAll overwrites the object's contents: the bytes land on every
// clean online replica; replicas whose resource is unreachable are
// marked dirty for later synchronisation.
func (m *Manager) WriteAll(path string, data []byte) error {
	o, err := m.cat.GetObject(path)
	if err != nil {
		return err
	}
	if o.Kind != types.KindFile {
		return types.E("write", path, types.ErrUnsupported)
	}
	sum := Checksum(data)
	written := make(map[types.ReplicaNumber]bool)
	// torn marks replicas whose write was attempted and failed: the
	// physical file may be truncated, so the replica row must not stay
	// catalogued clean even when every sibling write fails too.
	torn := make(map[types.ReplicaNumber]bool)
	var failRes string
	var failErr error
	for _, r := range o.Replicas {
		res, err := m.cat.GetResource(r.Resource)
		if err != nil || !res.Online {
			m.fanoutFail.Inc()
			failRes = r.Resource
			continue
		}
		d, err := m.drivers.Driver(r.Resource)
		if err != nil {
			m.fanoutFail.Inc()
			failRes, failErr = r.Resource, err
			continue
		}
		if err := storage.WriteAll(d, r.PhysicalPath, data); err != nil {
			m.fanoutFail.Inc()
			m.breaker(r.Resource).Failure()
			torn[r.Number] = true
			failRes, failErr = r.Resource, err
			continue
		}
		m.fanoutOK.Inc()
		m.breaker(r.Resource).Success()
		written[r.Number] = true
	}
	uerr := m.cat.UpdateObject(path, func(o *types.DataObject) error {
		if len(written) > 0 {
			o.Size = int64(len(data))
			o.Checksum = sum
		}
		for i := range o.Replicas {
			r := &o.Replicas[i]
			switch {
			case written[r.Number]:
				r.Status = types.ReplicaClean
				r.Size = int64(len(data))
				r.Checksum = sum
			case len(written) > 0 || torn[r.Number]:
				// Stale relative to the new contents, or possibly a
				// truncated file: either way not servable as clean.
				r.Status = types.ReplicaDirty
			}
			// Otherwise the write never touched this replica and nothing
			// was stored anywhere: the old contents remain authoritative.
		}
		return nil
	})
	if len(written) == 0 {
		if failErr == nil {
			failErr = types.ErrOffline
		}
		return types.E("write", path, fmt.Errorf("resource %s: %w", failRes, failErr))
	}
	return uerr
}

// Replicate creates a new replica of the object on resource. The new
// replica inherits the object's metadata implicitly (metadata is keyed
// by the logical path) and receives the next replica number.
func (m *Manager) Replicate(path, resource string) (types.Replica, error) {
	o, err := m.cat.GetObject(path)
	if err != nil {
		return types.Replica{}, err
	}
	if o.Kind != types.KindFile {
		return types.Replica{}, types.E("replicate", path, types.ErrUnsupported)
	}
	if o.Container != "" {
		// Files inside containers replicate with their container.
		return types.Replica{}, types.E("replicate", path, types.ErrUnsupported)
	}
	res, err := m.cat.GetResource(resource)
	if err != nil {
		return types.Replica{}, err
	}
	if res.Kind != types.ResourcePhysical {
		return types.Replica{}, types.E("replicate", resource, types.ErrInvalid)
	}
	if !res.Online {
		return types.Replica{}, types.E("replicate", resource, types.ErrOffline)
	}
	src, _, err := m.OpenRead(path, "")
	if err != nil {
		return types.Replica{}, err
	}
	defer src.Close()
	next := nextNumber(&o)
	physPath := PhysPathFor(&o, next)
	dst, err := m.drivers.Driver(resource)
	if err != nil {
		return types.Replica{}, err
	}
	w, err := dst.Create(physPath)
	if err != nil {
		return types.Replica{}, err
	}
	h := sha256.New()
	size, err := io.Copy(w, io.TeeReader(src, h))
	if err != nil {
		w.Close()
		dst.Remove(physPath) // no orphaned partial file
		m.fanoutFail.Inc()
		return types.Replica{}, types.E("replicate", path, err)
	}
	if err := w.Close(); err != nil {
		dst.Remove(physPath)
		m.fanoutFail.Inc()
		return types.Replica{}, types.E("replicate", path, err)
	}
	m.fanoutOK.Inc()
	newRep := types.Replica{
		Number:       next,
		Resource:     resource,
		PhysicalPath: physPath,
		Status:       types.ReplicaClean,
		Size:         size,
		Checksum:     hex.EncodeToString(h.Sum(nil)),
	}
	err = m.cat.UpdateObject(path, func(o *types.DataObject) error {
		newRep.CreatedAt = o.ModifiedAt
		o.Replicas = append(o.Replicas, newRep)
		return nil
	})
	if err != nil {
		return types.Replica{}, err
	}
	return newRep, nil
}

func nextNumber(o *types.DataObject) types.ReplicaNumber {
	next := types.ReplicaNumber(0)
	for _, r := range o.Replicas {
		if r.Number >= next {
			next = r.Number + 1
		}
	}
	return next
}

// SyncDirty brings every dirty replica of the object up to date from a
// clean one and returns how many replicas were refreshed.
func (m *Manager) SyncDirty(path string) (int, error) {
	o, err := m.cat.GetObject(path)
	if err != nil {
		return 0, err
	}
	var dirty []types.Replica
	for _, r := range o.Replicas {
		if r.Status == types.ReplicaDirty {
			dirty = append(dirty, r)
		}
	}
	if len(dirty) == 0 {
		return 0, nil
	}
	data, _, err := m.ReadAll(path, "")
	if err != nil {
		return 0, err
	}
	sum := Checksum(data)
	fixed := make(map[types.ReplicaNumber]bool)
	for _, r := range dirty {
		res, err := m.cat.GetResource(r.Resource)
		if err != nil || !res.Online {
			m.fanoutFail.Inc()
			continue
		}
		d, err := m.drivers.Driver(r.Resource)
		if err != nil {
			m.fanoutFail.Inc()
			continue
		}
		if err := storage.WriteAll(d, r.PhysicalPath, data); err != nil {
			m.fanoutFail.Inc()
			continue
		}
		m.fanoutOK.Inc()
		fixed[r.Number] = true
	}
	if len(fixed) == 0 {
		return 0, nil
	}
	err = m.cat.UpdateObject(path, func(o *types.DataObject) error {
		for i := range o.Replicas {
			r := &o.Replicas[i]
			if fixed[r.Number] {
				r.Status = types.ReplicaClean
				r.Size = int64(len(data))
				r.Checksum = sum
			}
		}
		return nil
	})
	return len(fixed), err
}

// SyncResource rewrites the non-clean replica(s) of path held on one
// resource from a clean sibling — the targeted variant of SyncDirty the
// repair engine uses to execute one queued task. Unlike SyncDirty it
// returns an error whenever the replica could not be brought clean
// (offline resource, missing driver, no clean source, write failure) so
// the engine can reschedule the task with backoff.
func (m *Manager) SyncResource(path, resource string) error {
	o, err := m.cat.GetObject(path)
	if err != nil {
		return err
	}
	var targets []types.Replica
	for _, r := range o.Replicas {
		if r.Resource == resource && r.Status != types.ReplicaClean {
			targets = append(targets, r)
		}
	}
	if len(targets) == 0 {
		return nil
	}
	res, err := m.cat.GetResource(resource)
	if err != nil {
		return err
	}
	if !res.Online {
		return types.E("syncres", resource, types.ErrOffline)
	}
	d, err := m.drivers.Driver(resource)
	if err != nil {
		return err
	}
	data, _, err := m.ReadAll(path, "")
	if err != nil {
		return err
	}
	sum := Checksum(data)
	fixed := make(map[types.ReplicaNumber]bool)
	for _, r := range targets {
		if err := storage.WriteAll(d, r.PhysicalPath, data); err != nil {
			m.fanoutFail.Inc()
			return types.E("syncres", path, err)
		}
		m.fanoutOK.Inc()
		fixed[r.Number] = true
	}
	return m.cat.UpdateObject(path, func(o *types.DataObject) error {
		for i := range o.Replicas {
			r := &o.Replicas[i]
			if fixed[r.Number] {
				r.Status = types.ReplicaClean
				r.Size = int64(len(data))
				r.Checksum = sum
			}
		}
		return nil
	})
}

// PhysicalMove relocates one replica to a new resource, preserving its
// replica number — the paper's "physical move of the object".
func (m *Manager) PhysicalMove(path string, number types.ReplicaNumber, toResource string) error {
	o, err := m.cat.GetObject(path)
	if err != nil {
		return err
	}
	if o.Container != "" {
		return types.E("physmove", path, types.ErrUnsupported)
	}
	rep, ok := o.ReplicaByNumber(number)
	if !ok {
		return types.E("physmove", path, types.ErrNotFound)
	}
	res, err := m.cat.GetResource(toResource)
	if err != nil {
		return err
	}
	if res.Kind != types.ResourcePhysical || !res.Online {
		return types.E("physmove", toResource, types.ErrInvalid)
	}
	srcD, err := m.drivers.Driver(rep.Resource)
	if err != nil {
		return err
	}
	dstD, err := m.drivers.Driver(toResource)
	if err != nil {
		return err
	}
	newPath := PhysPathFor(&o, number)
	if _, err := storage.Copy(dstD, newPath, srcD, rep.PhysicalPath); err != nil {
		return types.E("physmove", path, err)
	}
	if err := m.cat.UpdateObject(path, func(o *types.DataObject) error {
		for i := range o.Replicas {
			if o.Replicas[i].Number == number {
				o.Replicas[i].Resource = toResource
				o.Replicas[i].PhysicalPath = newPath
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// Old bytes are removed best-effort; the new replica is authoritative.
	srcD.Remove(rep.PhysicalPath)
	return nil
}

// DeleteReplica removes one replica's bytes and catalog record. The
// last replica of an object cannot be removed this way — deleting the
// object handles that ("when the last replica is deleted all the
// metadata and annotations are also deleted", which is the broker's
// job).
func (m *Manager) DeleteReplica(path string, number types.ReplicaNumber) error {
	o, err := m.cat.GetObject(path)
	if err != nil {
		return err
	}
	rep, ok := o.ReplicaByNumber(number)
	if !ok {
		return types.E("rmreplica", path, types.ErrNotFound)
	}
	if len(o.Replicas) <= 1 {
		return types.E("rmreplica", path, types.ErrInvalid)
	}
	if !rep.Registered {
		if d, err := m.drivers.Driver(rep.Resource); err == nil {
			d.Remove(rep.PhysicalPath)
		}
	}
	return m.cat.UpdateObject(path, func(o *types.DataObject) error {
		kept := o.Replicas[:0:0]
		for _, r := range o.Replicas {
			if r.Number != number {
				kept = append(kept, r)
			}
		}
		o.Replicas = kept
		return nil
	})
}
