package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"gosrb/internal/mcat"
	"gosrb/internal/metadata"
	"gosrb/internal/sqlengine"
	"gosrb/internal/tlang"
	"gosrb/internal/types"
	"gosrb/internal/workload"
)

// buildCatalog populates a catalog with n sky-survey objects plus their
// metadata and returns it with the spec list.
func buildCatalog(n int) (*mcat.Catalog, []workload.Spec, time.Duration) {
	cat := mcat.New("admin", "sdsc")
	gen := workload.NewGen(7)
	specs := gen.SkySurvey("/lib", n, 16)
	cat.MkCollAll("/lib", "admin")
	for i := 0; i < 16 && i < n; i++ {
		cat.MkCollAll(fmt.Sprintf("/lib/plate%03d", i), "admin")
	}
	start := time.Now()
	for _, s := range specs {
		if _, err := cat.RegisterObject(&types.DataObject{
			Name: s.Name, Collection: s.Collection, Owner: "admin",
			DataType: s.DataType, Size: int64(s.Size),
		}); err != nil {
			panic(err)
		}
		for _, m := range s.Meta {
			if err := cat.AddMeta(s.Path(), types.MetaUser, m); err != nil {
				panic(err)
			}
		}
	}
	return cat, specs, time.Since(start)
}

// E2CatalogScaling measures how catalog ingest and query latency evolve
// with collection size — the paper's requirement to be "scalable to
// handle millions of datasets" (§2). Equality queries ride the inverted
// index and should stay flat; LIKE queries scan one attribute.
func E2CatalogScaling(scale int) Table {
	t := Table{
		ID:      "E2",
		Title:   "catalog scaling: ingest rate and query latency vs size",
		Claim:   `"any solution for the data grid should be scalable to handle millions of datasets" (§2)`,
		Columns: []string{"objects", "ingest_per_s", "eq_query_ms", "like_query_ms", "eq_hits"},
		Notes:   "equality uses the attribute index; like scans the attribute's values",
	}
	sizes := []int{1000, 10000, 100000}
	if scale > 1 {
		sizes = append(sizes, 100000*scale)
	}
	for _, n := range sizes {
		cat, _, buildTime := buildCatalog(n)
		rate := float64(n) / buildTime.Seconds()

		eqQ := mcat.Query{Scope: "/lib", Conds: []mcat.Condition{{Attr: "survey", Op: "=", Value: "2mass"}, {Attr: "band", Op: "=", Value: "J"}}}
		start := time.Now()
		hits, err := cat.RunQuery(eqQ)
		if err != nil {
			panic(err)
		}
		eq := time.Since(start)

		likeQ := mcat.Query{Scope: "/lib", Conds: []mcat.Condition{{Attr: "mag", Op: ">", Value: "12"}}}
		start = time.Now()
		if _, err := cat.RunQuery(likeQ); err != nil {
			panic(err)
		}
		rangeScan := time.Since(start)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", rate),
			ms(eq), ms(rangeScan),
			fmt.Sprintf("%d", len(hits)),
		})
	}
	return t
}

// E8MetadataQuery sweeps the MySRB query interface: conjunctive
// condition counts and every comparison operator the paper lists
// ("=,>,<,<=,>=,<>,like, not like", §6).
func E8MetadataQuery(scale int) Table {
	t := Table{
		ID:      "E8",
		Title:   "conjunctive metadata queries: operators and condition counts",
		Claim:   `"each condition has four parts ... =,>,<,<=,>=,<>,like, not like ... the query is taken as a conjunctive query" (§6)`,
		Columns: []string{"query", "hits", "latency_ms"},
	}
	n := 50000
	if scale > 1 {
		n *= scale
	}
	cat, _, _ := buildCatalog(n)
	t.Notes = fmt.Sprintf("catalog of %d objects", n)

	run := func(desc string, conds ...mcat.Condition) {
		start := time.Now()
		hits, err := cat.RunQuery(mcat.Query{Scope: "/lib", Conds: conds})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{desc, fmt.Sprintf("%d", len(hits)), ms(time.Since(start))})
	}
	run("survey = 2mass", mcat.Condition{Attr: "survey", Op: "=", Value: "2mass"})
	run("survey = 2mass AND band = J",
		mcat.Condition{Attr: "survey", Op: "=", Value: "2mass"},
		mcat.Condition{Attr: "band", Op: "=", Value: "J"})
	run("survey = 2mass AND band = J AND mag > 10",
		mcat.Condition{Attr: "survey", Op: "=", Value: "2mass"},
		mcat.Condition{Attr: "band", Op: "=", Value: "J"},
		mcat.Condition{Attr: "mag", Op: ">", Value: "10"})
	run("4 conditions",
		mcat.Condition{Attr: "survey", Op: "=", Value: "2mass"},
		mcat.Condition{Attr: "band", Op: "=", Value: "J"},
		mcat.Condition{Attr: "mag", Op: ">", Value: "6"},
		mcat.Condition{Attr: "mag", Op: "<=", Value: "12"})
	run("mag >= 14", mcat.Condition{Attr: "mag", Op: ">=", Value: "14"})
	run("mag <> 7.00", mcat.Condition{Attr: "mag", Op: "<>", Value: "7.00"})
	run("sys:name like m%.fits", mcat.Condition{Attr: "sys:name", Op: "like", Value: "img%.fits"})
	run("telescope not like %palomar%", mcat.Condition{Attr: "telescope", Op: "not like", Value: "%palomar%"})
	return t
}

// E9TLang measures the T-language machinery: rule-based extraction
// throughput over FITS-like headers and the three built-in result
// templates (HTMLREL, HTMLNEST, XMLREL; §5).
func E9TLang(scale int) Table {
	t := Table{
		ID:      "E9",
		Title:   "T-language: extraction throughput and template rendering",
		Claim:   `"Metadata extraction methods can be written in T-language ... three built-in templates" (§5)`,
		Columns: []string{"task", "items", "total_ms", "per_item_us"},
	}
	gen := workload.NewGen(9)
	nHdr := 500 * scale
	specs := gen.SkySurvey("/lib", nHdr, 4)
	headers := make([][]byte, nHdr)
	for i, s := range specs {
		headers[i] = gen.FITSHeader(s)
	}
	reg := metadata.NewRegistry()
	start := time.Now()
	triplets := 0
	for _, h := range headers {
		avus, err := reg.Extract("fits image", "fits-cards", bytes.NewReader(h))
		if err != nil {
			panic(err)
		}
		triplets += len(avus)
	}
	exTime := time.Since(start)
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("extract fits headers (%d triplets)", triplets),
		fmt.Sprintf("%d", nHdr), ms(exTime), us(exTime / time.Duration(nHdr)),
	})

	// Template rendering over a 1000-row result.
	res := &sqlengine.Result{Columns: []string{"survey", "name", "mag"}}
	for i := 0; i < 1000*scale; i++ {
		res.Rows = append(res.Rows, sqlengine.Row{
			sqlengine.String(fmt.Sprintf("survey%d", i%4)),
			sqlengine.String(fmt.Sprintf("obj%06d", i)),
			sqlengine.Number(float64(i % 17)),
		})
	}
	for _, tpl := range []string{"HTMLREL", "HTMLNEST", "XMLREL"} {
		var sb strings.Builder
		start = time.Now()
		if err := tlang.RenderBuiltin(tpl, &sb, res); err != nil {
			panic(err)
		}
		dur := time.Since(start)
		t.Rows = append(t.Rows, []string{
			"render " + tpl, fmt.Sprintf("%d", len(res.Rows)), ms(dur), us(dur / time.Duration(len(res.Rows))),
		})
	}
	return t
}
