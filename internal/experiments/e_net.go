package experiments

import (
	"fmt"
	"net"
	"sync"
	"time"

	"gosrb/internal/auth"
	"gosrb/internal/client"
	"gosrb/internal/core"
	"gosrb/internal/mcat"
	"gosrb/internal/replica"
	"gosrb/internal/server"
	"gosrb/internal/storage"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
	"gosrb/internal/workload"
)

// E3Failover measures the fault-tolerance claim: reads transparently
// move to a replica when the first storage system is unavailable (§3.4).
func E3Failover(scale int) Table {
	t := Table{
		ID:      "E3",
		Title:   "automatic failover to replicas",
		Claim:   `"the system automatically redirecting access to a replica on a separate storage system when the first storage system is unavailable" (§3.4)`,
		Columns: []string{"scenario", "outcome", "mean_latency_us"},
	}
	nReads := 200 * scale
	gen := workload.NewGen(11)
	cat := mcat.New("admin", "sdsc")
	b := core.New(cat, "srb1")
	for _, r := range []string{"r1", "r2"} {
		if err := b.AddPhysicalResource("admin", r, types.ClassFileSystem, "memfs", memfs.New()); err != nil {
			panic(err)
		}
	}
	cat.MkColl("/d", "admin")
	if _, err := b.Ingest("admin", core.IngestOpts{Path: "/d/f", Data: gen.Bytes(16 << 10), Resource: "r1"}); err != nil {
		panic(err)
	}
	if _, err := b.Replicate("admin", "/d/f", "r2"); err != nil {
		panic(err)
	}
	// Unreplicated baseline object, ingested while r1 is healthy.
	if _, err := b.Ingest("admin", core.IngestOpts{Path: "/d/solo", Data: gen.Bytes(16 << 10), Resource: "r1"}); err != nil {
		panic(err)
	}

	measure := func() (time.Duration, error) {
		for i := 0; i < 20; i++ { // warm caches and allocator
			b.Get("admin", "/d/f")
		}
		start := time.Now()
		var lastErr error
		for i := 0; i < nReads; i++ {
			if _, err := b.Get("admin", "/d/f"); err != nil {
				lastErr = err
			}
		}
		return time.Since(start) / time.Duration(nReads), lastErr
	}

	normal, _ := measure()
	t.Rows = append(t.Rows, []string{"both replicas online", "served from r1", us(normal)})

	cat.SetResourceOnline("r1", false)
	failover, err := measure()
	outcome := "served from r2"
	if err != nil {
		outcome = "ERROR: " + err.Error()
	}
	t.Rows = append(t.Rows, []string{"r1 offline (failover)", outcome, us(failover)})

	// Without a replica, the same outage is fatal — the paper's
	// motivation for replication.
	if _, err := b.Get("admin", "/d/solo"); err != nil {
		t.Rows = append(t.Rows, []string{"unreplicated, r1 offline", "offline error", "-"})
	}

	cat.SetResourceOnline("r2", false)
	start := time.Now()
	_, err = b.Get("admin", "/d/f")
	dead := time.Since(start)
	outcome = "unexpected success"
	if err != nil {
		outcome = "offline error (no replica left)"
	}
	t.Rows = append(t.Rows, []string{"both offline", outcome, us(dead)})
	return t
}

// busyDriver serialises access to an inner driver and charges a fixed
// service time per open — a saturated storage server. Load spread
// across replicas then shows up as aggregate throughput.
type busyDriver struct {
	storage.Driver
	mu      sync.Mutex
	service time.Duration
}

func (b *busyDriver) Open(path string) (storage.ReadFile, error) {
	b.mu.Lock()
	time.Sleep(b.service)
	b.mu.Unlock()
	return b.Driver.Open(path)
}

// E4LoadBalance measures the load-balancing claim (§3.2): concurrent
// readers over 1, 2 and 4 replicas, comparing the round-robin replica
// selection against always-first (SRB 1.1.8's behaviour) as the
// selection-policy ablation (E4a).
func E4LoadBalance(scale int) Table {
	t := Table{
		ID:      "E4",
		Title:   "replication for load balancing (incl. E4a policy ablation)",
		Claim:   `"data may be replicated in different storage systems on different hosts ... to provide load balancing" (§3.2)`,
		Columns: []string{"replicas", "policy", "reads_per_s", "speedup_vs_1"},
		Notes:   "8 concurrent readers; each storage server serialises opens at 300 µs",
	}
	nReads := 100 * scale
	readers := 8
	gen := workload.NewGen(13)
	payload := gen.Bytes(4 << 10)

	var base float64
	for _, k := range []int{1, 2, 4} {
		for _, policy := range []struct {
			name string
			p    int
		}{{"first-alive", 0}, {"round-robin", 1}} {
			cat := mcat.New("admin", "sdsc")
			b := core.New(cat, "srb1")
			for i := 0; i < k; i++ {
				d := &busyDriver{Driver: memfs.New(), service: 300 * time.Microsecond}
				if err := b.AddPhysicalResource("admin", fmt.Sprintf("r%d", i), types.ClassFileSystem, "memfs", d); err != nil {
					panic(err)
				}
			}
			cat.MkColl("/d", "admin")
			if _, err := b.Ingest("admin", core.IngestOpts{Path: "/d/f", Data: payload, Resource: "r0"}); err != nil {
				panic(err)
			}
			for i := 1; i < k; i++ {
				if _, err := b.Replicate("admin", "/d/f", fmt.Sprintf("r%d", i)); err != nil {
					panic(err)
				}
			}
			if policy.p == 1 {
				b.Replicas().SetPolicy(replica.RoundRobin)
			}

			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < readers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < nReads; i++ {
						if _, err := b.Get("admin", "/d/f"); err != nil {
							panic(err)
						}
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			rate := float64(readers*nReads) / elapsed.Seconds()
			if k == 1 && policy.p == 0 {
				base = rate
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", k), policy.name,
				fmt.Sprintf("%.0f", rate),
				fmt.Sprintf("%.1fx", rate/base),
			})
		}
	}
	return t
}

// fedRig is a two-server federation over one catalog with a payload on
// the second server's resource.
type fedRig struct {
	cat          *mcat.Catalog
	s1, s2       *server.Server
	addr1, addr2 string
}

func newFedRig(mode server.FederationMode, payload []byte) *fedRig {
	cat := mcat.New("admin", "sdsc")
	b1 := core.New(cat, "srb1")
	b2 := core.New(cat, "srb2")
	if err := b1.AddPhysicalResource("admin", "disk1", types.ClassFileSystem, "memfs", memfs.New()); err != nil {
		panic(err)
	}
	if err := b2.AddPhysicalResource("admin", "disk2", types.ClassFileSystem, "memfs", memfs.New()); err != nil {
		panic(err)
	}
	cat.MkColl("/d", "admin")
	if _, err := b2.Ingest("admin", core.IngestOpts{Path: "/d/f", Data: payload, Resource: "disk2"}); err != nil {
		panic(err)
	}
	authn := auth.New()
	authn.Register("admin", "pw")
	s1 := server.New(b1, authn, mode)
	s2 := server.New(b2, authn, mode)
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	s1.AddPeer("srb2", addr2, "zs")
	s2.AddPeer("srb1", addr1, "zs")
	return &fedRig{cat: cat, s1: s1, s2: s2, addr1: addr1, addr2: addr2}
}

func (r *fedRig) close() { r.s1.Close(); r.s2.Close() }

// E5Federation measures location transparency: accessing data held by
// another server directly, via server proxying, and via client
// redirect (the E5a mode ablation).
func E5Federation(scale int) Table {
	t := Table{
		ID:      "E5",
		Title:   "federated access: direct vs proxy vs redirect (E5a)",
		Claim:   `"Users can connect to any SRB server to access data from any other SRB server" (§3.1)`,
		Columns: []string{"mode", "mean_get_us", "overhead_vs_direct"},
		Notes:   "64 KiB object held by srb2; loopback TCP",
	}
	nGets := 50 * scale
	payload := workload.NewGen(17).Bytes(64 << 10)

	measure := func(mode server.FederationMode, addr func(*fedRig) string) time.Duration {
		rig := newFedRig(mode, payload)
		defer rig.close()
		cl, err := client.Dial(addr(rig), "admin", "pw")
		if err != nil {
			panic(err)
		}
		defer cl.Close()
		// Warm one request (redirect mode reconnects here).
		if _, err := cl.Get("/d/f"); err != nil {
			panic(err)
		}
		start := time.Now()
		for i := 0; i < nGets; i++ {
			if _, err := cl.Get("/d/f"); err != nil {
				panic(err)
			}
		}
		return time.Since(start) / time.Duration(nGets)
	}

	direct := measure(server.Proxy, func(r *fedRig) string { return r.addr2 })
	proxy := measure(server.Proxy, func(r *fedRig) string { return r.addr1 })
	redirect := measure(server.Redirect, func(r *fedRig) string { return r.addr1 })

	t.Rows = append(t.Rows, []string{"direct to owner (srb2)", us(direct), "1.0x"})
	t.Rows = append(t.Rows, []string{"proxy via srb1", us(proxy), ratio(proxy, direct)})
	t.Rows = append(t.Rows, []string{"redirect via srb1 (steady state)", us(redirect), ratio(redirect, direct)})
	return t
}

// pacedDialer shapes each connection's reads to a per-stream bandwidth,
// so parallel streams aggregate — the regime SRB's parallel transfers
// target.
func pacedDialer(bw int64) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			return nil, err
		}
		return &pacedReadConn{Conn: nc, bw: bw}, nil
	}
}

type pacedReadConn struct {
	net.Conn
	bw int64
}

func (c *pacedReadConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && c.bw > 0 {
		time.Sleep(time.Duration(int64(n) * int64(time.Second) / c.bw))
	}
	return n, err
}

// E6ParallelTransfer measures multi-stream bulk transfer over
// bandwidth-limited connections.
func E6ParallelTransfer(scale int) Table {
	t := Table{
		ID:      "E6",
		Title:   "parallel-stream bulk transfer",
		Claim:   "integrated bulk data access across the grid (§3.5); SRB moves large files over parallel streams",
		Columns: []string{"streams", "elapsed_ms", "MB_per_s", "speedup"},
	}
	size := 4 << 20 * scale
	perStreamBW := int64(64 << 20) // 64 MB/s per connection
	t.Notes = fmt.Sprintf("%d MiB object; %d MB/s per stream", size>>20, perStreamBW>>20)

	payload := workload.NewGen(19).Bytes(size)
	rig := newFedRig(server.Proxy, payload)
	defer rig.close()

	var base time.Duration
	for _, streams := range []int{1, 2, 4, 8} {
		cl, err := client.DialWith(rig.addr2, "admin", "pw", pacedDialer(perStreamBW))
		if err != nil {
			panic(err)
		}
		start := time.Now()
		data, err := cl.ParallelGet("/d/f", streams)
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		cl.Close()
		if len(data) != size {
			panic("short transfer")
		}
		if streams == 1 {
			base = elapsed
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", streams),
			ms(elapsed),
			fmt.Sprintf("%.1f", float64(size)/elapsed.Seconds()/(1<<20)),
			ratio(base, elapsed),
		})
	}
	return t
}
