// Package experiments implements the reproduction suite E1–E10 defined
// in DESIGN.md. The paper publishes no measurement tables (its two
// figures are screenshots), so each experiment regenerates one of the
// paper's measurable *claims* — container latency, catalog scaling,
// failover, load balancing, federation transparency, parallel
// transfer, synchronous replication, query operators, T-language
// processing and archive staging — as a table of synthetic-workload
// measurements. cmd/srbbench prints the tables; bench_test.go exposes
// each as a Go benchmark.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper text being exercised
	Columns []string
	Rows    [][]string
	Notes   string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// ms formats a duration in milliseconds with sane precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// us formats a duration in microseconds.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000)
}

// ratio formats a speedup factor.
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// All runs every experiment at the given scale (1 = test-friendly; the
// srbbench CLI uses larger scales for paper-shaped sweeps).
func All(scale int) []Table {
	return []Table{
		E1ContainerWAN(scale),
		E1aContainerMemberSize(scale),
		E2CatalogScaling(scale),
		E3Failover(scale),
		E4LoadBalance(scale),
		E5Federation(scale),
		E6ParallelTransfer(scale),
		E7SyncIngest(scale),
		E8MetadataQuery(scale),
		E9TLang(scale),
		E10ArchiveCache(scale),
	}
}

// ByID runs one experiment by its lower-case id ("e1", "e4a", ...).
func ByID(id string, scale int) (Table, bool) {
	switch strings.ToLower(id) {
	case "e1":
		return E1ContainerWAN(scale), true
	case "e1a":
		return E1aContainerMemberSize(scale), true
	case "e2":
		return E2CatalogScaling(scale), true
	case "e3":
		return E3Failover(scale), true
	case "e4", "e4a":
		return E4LoadBalance(scale), true
	case "e5", "e5a":
		return E5Federation(scale), true
	case "e6":
		return E6ParallelTransfer(scale), true
	case "e7":
		return E7SyncIngest(scale), true
	case "e8":
		return E8MetadataQuery(scale), true
	case "e9":
		return E9TLang(scale), true
	case "e10":
		return E10ArchiveCache(scale), true
	default:
		return Table{}, false
	}
}
