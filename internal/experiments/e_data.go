package experiments

import (
	"fmt"
	"time"

	"gosrb/internal/container"
	"gosrb/internal/core"
	"gosrb/internal/mcat"
	"gosrb/internal/simnet"
	"gosrb/internal/storage"
	"gosrb/internal/storage/archivefs"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
	"gosrb/internal/workload"
)

// simClock accumulates simulated waiting time instead of sleeping, so
// WAN experiments run instantly while reporting network-dominated
// numbers.
type simClock struct{ total time.Duration }

func (c *simClock) sleep(d time.Duration) { c.total += d }

// E1ContainerWAN reproduces the container claim: aggregating small
// files "decreas[es] latency when accessed over a wide area network"
// (paper §2). N small files are read across a simulated WAN either one
// by one (an RTT per file) or by staging their container once and
// reading members locally.
func E1ContainerWAN(scale int) Table {
	nFiles := 200 * scale
	fileSize := 2048
	gen := workload.NewGen(1)
	data := make([][]byte, nFiles)
	for i := range data {
		data[i] = gen.Bytes(fileSize)
	}

	t := Table{
		ID:      "E1",
		Title:   "small-file access over a WAN: per-file vs container",
		Claim:   `"aggregating small data files into ... containers ... decreasing latency when accessed over a wide area network" (§2)`,
		Columns: []string{"rtt_ms", "files", "direct_ms", "container_ms", "speedup"},
		Notes:   fmt.Sprintf("%d files x %d B, 10 MB/s link; simulated time", nFiles, fileSize),
	}
	for _, rtt := range []time.Duration{time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond} {
		profile := simnet.LinkProfile{RTT: rtt, BandwidthBytesPerSec: 10 << 20}

		// Remote site holds the files and the container segment.
		remote := memfs.New()
		for i := range data {
			storage.WriteAll(remote, fmt.Sprintf("/files/f%06d", i), data[i])
		}
		w, _ := container.NewWriter(remote, "/seg")
		offsets := make([]int64, nFiles)
		for i := range data {
			offsets[i], _ = w.Append(data[i])
		}

		// Direct: every file is a fresh WAN request.
		clock := &simClock{}
		wan := simnet.WrapDriver(remote, profile, clock.sleep)
		for i := range data {
			if _, err := storage.ReadAll(wan, fmt.Sprintf("/files/f%06d", i)); err != nil {
				panic(err)
			}
		}
		direct := clock.total

		// Container: one WAN transfer stages the segment, members read
		// locally from the staged copy.
		clock2 := &simClock{}
		wan2 := simnet.WrapDriver(remote, profile, clock2.sleep)
		local := memfs.New()
		if _, err := storage.Copy(local, "/seg", wan2, "/seg"); err != nil {
			panic(err)
		}
		for i := range data {
			if _, err := container.Read(local, "/seg", offsets[i], int64(len(data[i]))); err != nil {
				panic(err)
			}
		}
		contTime := clock2.total

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", rtt.Milliseconds()),
			fmt.Sprintf("%d", nFiles),
			ms(direct), ms(contTime), ratio(direct, contTime),
		})
	}
	return t
}

// E1aContainerMemberSize is the granularity ablation: how member size
// affects per-member container read cost and full-segment recovery.
func E1aContainerMemberSize(scale int) Table {
	t := Table{
		ID:      "E1a",
		Title:   "ablation: container member granularity",
		Claim:   "containers are 'tarfiles but with more flexibility in accessing and updating files' (§3)",
		Columns: []string{"member_bytes", "members", "read_all_ms", "per_member_us", "scan_ms"},
		Notes:   "local reads; fixed ~2 MiB of payload per row",
	}
	gen := workload.NewGen(2)
	total := 2 << 20 * scale
	for _, size := range []int{256, 4096, 65536} {
		n := total / size
		d := memfs.New()
		w, _ := container.NewWriter(d, "/seg")
		offs := make([]int64, n)
		payload := gen.Bytes(size)
		for i := 0; i < n; i++ {
			offs[i], _ = w.Append(payload)
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := container.Read(d, "/seg", offs[i], int64(size)); err != nil {
				panic(err)
			}
		}
		readAll := time.Since(start)
		start = time.Now()
		if _, err := container.Scan(d, "/seg"); err != nil {
			panic(err)
		}
		scan := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%d", n),
			ms(readAll),
			us(readAll / time.Duration(n)),
			ms(scan),
		})
	}
	return t
}

// E7SyncIngest measures synchronous replication on ingest into logical
// resources: "storing a file into logrsrc1 will ingest the file into
// both physical resources ... synchronously" (§5). Per-ingest cost
// grows with the member count, the price of immediate consistency.
func E7SyncIngest(scale int) Table {
	t := Table{
		ID:      "E7",
		Title:   "synchronous ingest into logical resources",
		Claim:   `"the file is replicated and stored in the underlying physical resources ... synchronously" (§5)`,
		Columns: []string{"members", "files", "sim_ms_per_ingest", "relative"},
		Notes:   "each member is 5 ms RTT away at 50 MB/s; 64 KiB files; simulated time",
	}
	nFiles := 20 * scale
	gen := workload.NewGen(3)
	payload := gen.Bytes(64 << 10)
	var base time.Duration
	for _, k := range []int{1, 2, 4} {
		cat := mcat.New("admin", "sdsc")
		b := core.New(cat, "srb1")
		clock := &simClock{}
		profile := simnet.LinkProfile{RTT: 5 * time.Millisecond, BandwidthBytesPerSec: 50 << 20}
		names := make([]string, k)
		for i := 0; i < k; i++ {
			names[i] = fmt.Sprintf("disk%d", i)
			wan := simnet.WrapDriver(memfs.New(), profile, clock.sleep)
			if err := b.AddPhysicalResource("admin", names[i], types.ClassFileSystem, "memfs", wan); err != nil {
				panic(err)
			}
		}
		target := names[0]
		if k > 1 {
			if err := b.AddLogicalResource("admin", "lr", names); err != nil {
				panic(err)
			}
			target = "lr"
		}
		cat.MkColl("/d", "admin")
		for i := 0; i < nFiles; i++ {
			if _, err := b.Ingest("admin", core.IngestOpts{
				Path: fmt.Sprintf("/d/f%04d", i), Data: payload, Resource: target,
			}); err != nil {
				panic(err)
			}
		}
		per := clock.total / time.Duration(nFiles)
		if k == 1 {
			base = per
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k), fmt.Sprintf("%d", nFiles), ms(per), ratio(per, base),
		})
	}
	return t
}

// E10ArchiveCache measures the archive staging regime and the pin
// mechanism: "pinning a file in a cache resource from being purged by
// SRB when performing cache management" (§5).
func E10ArchiveCache(scale int) Table {
	t := Table{
		ID:      "E10",
		Title:   "archive staging vs cache replicas; pins survive purges",
		Claim:   `"Pin operation makes sure that a SRB object does not get deleted from a particular resource" (§5)`,
		Columns: []string{"scenario", "sim_ms_per_read", "archive_stages"},
		Notes:   "archive: 50 ms stage latency; reads of 30 x 8 KiB objects; simulated time",
	}
	nObjs := 30 * scale
	gen := workload.NewGen(4)

	cat := mcat.New("admin", "sdsc")
	b := core.New(cat, "srb1")
	clock := &simClock{}
	arch := archivefs.New(archivefs.Config{StageLatency: 50 * time.Millisecond, StageCapacity: 8})
	arch.SetSleep(clock.sleep)
	cache := memfs.New()
	if err := b.AddPhysicalResource("admin", "tape", types.ClassArchive, "archivefs", arch); err != nil {
		panic(err)
	}
	if err := b.AddPhysicalResource("admin", "cache1", types.ClassCache, "memfs", cache); err != nil {
		panic(err)
	}
	cat.MkColl("/a", "admin")
	paths := make([]string, nObjs)
	for i := range paths {
		paths[i] = fmt.Sprintf("/a/o%04d", i)
		if _, err := b.Ingest("admin", core.IngestOpts{Path: paths[i], Data: gen.Bytes(8 << 10), Resource: "tape"}); err != nil {
			panic(err)
		}
	}
	// Writing staged everything, but capacity 8 means most were evicted.
	readAll := func() time.Duration {
		start := clock.total
		for _, p := range paths {
			if _, err := b.Get("admin", p); err != nil {
				panic(err)
			}
		}
		return (clock.total - start) / time.Duration(nObjs)
	}
	stagesBefore := arch.Stats().Stages
	cold := readAll()
	t.Rows = append(t.Rows, []string{"archive, cold (LRU thrash)", ms(cold), fmt.Sprintf("%d", arch.Stats().Stages-stagesBefore)})

	// Replicate the working set onto the cache: reads go latency-free.
	for _, p := range paths {
		if _, err := b.Replicate("admin", p, "cache1"); err != nil {
			panic(err)
		}
	}
	b.Replicas().SetPolicy(0) // FirstAlive would pick tape; prefer cache explicitly below
	stagesBefore = arch.Stats().Stages
	start := clock.total
	for _, p := range paths {
		if _, _, err := b.Replicas().ReadAll(p, "cache1"); err != nil {
			panic(err)
		}
	}
	cached := (clock.total - start) / time.Duration(nObjs)
	t.Rows = append(t.Rows, []string{"cache replica", ms(cached), fmt.Sprintf("%d", arch.Stats().Stages-stagesBefore)})

	// Pin a quarter of the set, purge the cache, re-read: pinned objects
	// stay fast, purged ones pay the stage latency again.
	for i := 0; i < nObjs/4; i++ {
		if err := b.Pin("admin", paths[i], "cache1", time.Hour); err != nil {
			panic(err)
		}
	}
	if _, err := b.PurgeCache("admin", "cache1", 0); err != nil {
		panic(err)
	}
	stagesBefore = arch.Stats().Stages
	start = clock.total
	for _, p := range paths {
		if _, _, err := b.Replicas().ReadAll(p, "cache1"); err != nil {
			panic(err)
		}
	}
	afterPurge := (clock.total - start) / time.Duration(nObjs)
	t.Rows = append(t.Rows, []string{"after purge (25% pinned)", ms(afterPurge), fmt.Sprintf("%d", arch.Stats().Stages-stagesBefore)})
	return t
}
