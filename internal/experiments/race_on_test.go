//go:build race

package experiments

// raceEnabled relaxes timing thresholds when the race detector's
// instrumentation slows everything by an order of magnitude.
const raceEnabled = true
