package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parse reads a numeric cell.
func parse(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(cell), "x"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

// col finds a column index by name.
func col(t *testing.T, tb Table, name string) int {
	t.Helper()
	for i, c := range tb.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("table %s has no column %q (have %v)", tb.ID, name, tb.Columns)
	return -1
}

// The experiment tests assert the paper-shaped outcomes EXPERIMENTS.md
// documents, not absolute numbers.

func TestE1ContainerAlwaysWins(t *testing.T) {
	tb := E1ContainerWAN(1)
	di, ci := col(t, tb, "direct_ms"), col(t, tb, "container_ms")
	var prevSpeedup float64
	for _, row := range tb.Rows {
		direct, cont := parse(t, row[di]), parse(t, row[ci])
		if cont >= direct {
			t.Errorf("rtt %s: container (%v) not faster than direct (%v)", row[0], cont, direct)
		}
		speedup := direct / cont
		if speedup < prevSpeedup {
			t.Errorf("speedup should grow with RTT: %v after %v", speedup, prevSpeedup)
		}
		prevSpeedup = speedup
	}
}

func TestE2IndexKeepsEqualityCheap(t *testing.T) {
	tb := E2CatalogScaling(1)
	ei, li := col(t, tb, "eq_query_ms"), col(t, tb, "like_query_ms")
	hi := col(t, tb, "eq_hits")
	for _, row := range tb.Rows {
		eq, like := parse(t, row[ei]), parse(t, row[li])
		if eq > like*2 {
			t.Errorf("objects %s: indexed equality (%v ms) should not dwarf a scan (%v ms)", row[0], eq, like)
		}
		// Per-hit cost stays bounded (index, not a full scan). The race
		// detector slows everything ~15x; scale the bound accordingly.
		perHit := 0.1 // 100 µs per hit is generous
		if raceEnabled {
			perHit *= 20
		}
		hits := parse(t, row[hi])
		if hits > 0 && eq/hits > perHit {
			t.Errorf("objects %s: %v ms for %v hits is not index-shaped", row[0], eq, hits)
		}
	}
}

func TestE3FailoverServes(t *testing.T) {
	tb := E3Failover(1)
	found := map[string]string{}
	for _, row := range tb.Rows {
		found[row[0]] = row[1]
	}
	if !strings.Contains(found["r1 offline (failover)"], "served from r2") {
		t.Errorf("failover outcome = %q", found["r1 offline (failover)"])
	}
	if !strings.Contains(found["both offline"], "offline error") {
		t.Errorf("both-offline outcome = %q", found["both offline"])
	}
	if !strings.Contains(found["unreplicated, r1 offline"], "offline error") {
		t.Errorf("unreplicated outcome = %q", found["unreplicated, r1 offline"])
	}
}

func TestE4RoundRobinScales(t *testing.T) {
	tb := E4LoadBalance(1)
	ri := col(t, tb, "reads_per_s")
	rates := map[string]float64{} // "k/policy" -> rate
	for _, row := range tb.Rows {
		rates[row[0]+"/"+row[1]] = parse(t, row[ri])
	}
	// Round-robin at 4 replicas beats 1 replica clearly.
	if rates["4/round-robin"] < rates["1/round-robin"]*2 {
		t.Errorf("round-robin does not scale: k=1 %v, k=4 %v", rates["1/round-robin"], rates["4/round-robin"])
	}
	// First-alive gains little from extra replicas (the ablation point).
	if rates["4/first-alive"] > rates["1/first-alive"]*2 {
		t.Errorf("first-alive unexpectedly scales: k=1 %v, k=4 %v", rates["1/first-alive"], rates["4/first-alive"])
	}
	// At k=4 the policies separate decisively.
	if rates["4/round-robin"] < rates["4/first-alive"]*1.5 {
		t.Errorf("policies should separate at k=4: rr %v vs fa %v", rates["4/round-robin"], rates["4/first-alive"])
	}
}

func TestE5AllModesWork(t *testing.T) {
	tb := E5Federation(1)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	li := col(t, tb, "mean_get_us")
	for _, row := range tb.Rows {
		if parse(t, row[li]) <= 0 {
			t.Errorf("%s: non-positive latency", row[0])
		}
	}
}

func TestE6ParallelSpeedsUp(t *testing.T) {
	tb := E6ParallelTransfer(1)
	ei := col(t, tb, "elapsed_ms")
	one := parse(t, tb.Rows[0][ei])
	eight := parse(t, tb.Rows[len(tb.Rows)-1][ei])
	if eight >= one {
		t.Errorf("8 streams (%v ms) not faster than 1 (%v ms)", eight, one)
	}
	if one/eight < 2 {
		t.Errorf("parallel speedup too small: %.1fx", one/eight)
	}
}

func TestE7CostIsLinearInMembers(t *testing.T) {
	tb := E7SyncIngest(1)
	ci := col(t, tb, "sim_ms_per_ingest")
	k1 := parse(t, tb.Rows[0][ci])
	k4 := parse(t, tb.Rows[2][ci])
	// Simulated time is deterministic: exactly 4x.
	if k4 != k1*4 {
		t.Errorf("k=4 cost %v, want exactly 4x of %v", k4, k1)
	}
}

func TestE8AllOperatorsAnswer(t *testing.T) {
	tb := E8MetadataQuery(1)
	if len(tb.Rows) < 8 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	hi := col(t, tb, "hits")
	// Conjunction narrows: rows 0..2 are 1, 2, 3 conditions.
	h0, h1, h2 := parse(t, tb.Rows[0][hi]), parse(t, tb.Rows[1][hi]), parse(t, tb.Rows[2][hi])
	if !(h0 >= h1 && h1 >= h2) {
		t.Errorf("AND should narrow: %v, %v, %v", h0, h1, h2)
	}
	for _, row := range tb.Rows {
		if parse(t, row[hi]) == 0 {
			t.Errorf("query %q found nothing", row[0])
		}
	}
}

func TestE9AndE10Shapes(t *testing.T) {
	t9 := E9TLang(1)
	if len(t9.Rows) != 4 {
		t.Fatalf("E9 rows = %d", len(t9.Rows))
	}
	t10 := E10ArchiveCache(1)
	ci := col(t, t10, "sim_ms_per_read")
	cold := parse(t, t10.Rows[0][ci])
	cached := parse(t, t10.Rows[1][ci])
	purged := parse(t, t10.Rows[2][ci])
	if cached != 0 {
		t.Errorf("cache reads should cost nothing, got %v", cached)
	}
	if !(purged > cached && purged < cold) {
		t.Errorf("post-purge cost %v should sit between cache %v and cold %v", purged, cached, cold)
	}
}

func TestAllAndByID(t *testing.T) {
	// Light smoke: every experiment produces a non-empty formatted table
	// and is reachable by id.
	for _, id := range []string{"e1", "e1a", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"} {
		tb, ok := ByID(id, 1)
		if !ok {
			t.Fatalf("ByID(%q) missing", id)
		}
		out := tb.Format()
		if !strings.Contains(out, tb.ID) || len(tb.Rows) == 0 {
			t.Errorf("experiment %s: empty or unformatted table", id)
		}
	}
	if _, ok := ByID("e99", 1); ok {
		t.Error("unknown id should report false")
	}
}
