package container

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"gosrb/internal/storage"
	"gosrb/internal/storage/memfs"
	"gosrb/internal/types"
)

func TestAppendAndRead(t *testing.T) {
	d := memfs.New()
	w, err := NewWriter(d, "/cont/seg1")
	if err != nil {
		t.Fatal(err)
	}
	type member struct {
		data []byte
		off  int64
	}
	var members []member
	for i := 0; i < 10; i++ {
		data := bytes.Repeat([]byte{byte('a' + i)}, 10+i*3)
		off, err := w.Append(data)
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, member{data, off})
	}
	for i, m := range members {
		got, err := Read(d, "/cont/seg1", m.off, int64(len(m.data)))
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if !bytes.Equal(got, m.data) {
			t.Errorf("member %d corrupted", i)
		}
	}
}

func TestWriterResume(t *testing.T) {
	d := memfs.New()
	w1, err := NewWriter(d, "/seg")
	if err != nil {
		t.Fatal(err)
	}
	off1, _ := w1.Append([]byte("first"))
	// A fresh writer must resume at the end, not clobber.
	w2, err := NewWriter(d, "/seg")
	if err != nil {
		t.Fatal(err)
	}
	if w2.Size() != w1.Size() {
		t.Errorf("resume size = %d, want %d", w2.Size(), w1.Size())
	}
	off2, _ := w2.Append([]byte("second"))
	if off2 <= off1 {
		t.Errorf("offsets must grow: %d then %d", off1, off2)
	}
	got, err := Read(d, "/seg", off1, 5)
	if err != nil || string(got) != "first" {
		t.Errorf("first member after resume: %q, %v", got, err)
	}
	got, _ = Read(d, "/seg", off2, 6)
	if string(got) != "second" {
		t.Errorf("second member: %q", got)
	}
}

func TestScanRecoversMembers(t *testing.T) {
	d := memfs.New()
	w, _ := NewWriter(d, "/seg")
	var wantOffs []int64
	var wantData [][]byte
	for i := 0; i < 5; i++ {
		data := []byte(fmt.Sprintf("payload-%d", i))
		off, err := w.Append(data)
		if err != nil {
			t.Fatal(err)
		}
		wantOffs = append(wantOffs, off)
		wantData = append(wantData, data)
	}
	recs, err := Scan(d, "/seg")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("Scan found %d records", len(recs))
	}
	for i, r := range recs {
		if r.Offset != wantOffs[i] || r.Size != int64(len(wantData[i])) {
			t.Errorf("record %d = %+v, want off %d size %d", i, r, wantOffs[i], len(wantData[i]))
		}
		got, _ := Read(d, "/seg", r.Offset, r.Size)
		if !bytes.Equal(got, wantData[i]) {
			t.Errorf("record %d payload mismatch", i)
		}
	}
}

func TestScanEmptySegment(t *testing.T) {
	d := memfs.New()
	if _, err := NewWriter(d, "/seg"); err != nil {
		t.Fatal(err)
	}
	recs, err := Scan(d, "/seg")
	if err != nil || len(recs) != 0 {
		t.Errorf("empty scan = %v, %v", recs, err)
	}
}

func TestScanRejectsCorruption(t *testing.T) {
	d := memfs.New()
	if err := storage.WriteAll(d, "/bad", []byte("not a container segment")); err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(d, "/bad"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("bad magic: %v", err)
	}
	// Truncated payload: valid header claims more bytes than exist.
	w, _ := NewWriter(d, "/trunc")
	w.Append([]byte("complete"))
	full, _ := storage.ReadAll(d, "/trunc")
	if err := storage.WriteAll(d, "/trunc", full[:len(full)-3]); err != nil {
		t.Fatal(err)
	}
	recs, err := Scan(d, "/trunc")
	if err == nil {
		t.Errorf("truncated segment should error, got %d records", len(recs))
	}
	// Short file (no header).
	storage.WriteAll(d, "/short", []byte("xy"))
	if _, err := Scan(d, "/short"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("short segment: %v", err)
	}
}

func TestReadGuards(t *testing.T) {
	d := memfs.New()
	w, _ := NewWriter(d, "/seg")
	off, _ := w.Append([]byte("data"))
	if _, err := Read(d, "/seg", 0, 4); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("offset inside header: %v", err)
	}
	if _, err := Read(d, "/seg", off, 9999); err == nil {
		t.Error("read past end should fail")
	}
	if _, err := Read(d, "/missing", off, 4); !errors.Is(err, types.ErrNotFound) {
		t.Errorf("missing segment: %v", err)
	}
}

func TestCopySegment(t *testing.T) {
	src, dst := memfs.New(), memfs.New()
	w, _ := NewWriter(src, "/seg")
	off, _ := w.Append([]byte("hello"))
	n, err := Copy(dst, "/archived", src, "/seg")
	if err != nil || n != w.Size() {
		t.Fatalf("Copy = %d, %v (want %d)", n, err, w.Size())
	}
	got, err := Read(dst, "/archived", off, 5)
	if err != nil || string(got) != "hello" {
		t.Errorf("copied member = %q, %v", got, err)
	}
	recs, err := Scan(dst, "/archived")
	if err != nil || len(recs) != 1 {
		t.Errorf("scan of copy = %v, %v", recs, err)
	}
}

func TestEmptyPayload(t *testing.T) {
	d := memfs.New()
	w, _ := NewWriter(d, "/seg")
	off, err := w.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(d, "/seg", off, 0)
	if err != nil || len(got) != 0 {
		t.Errorf("empty member = %v, %v", got, err)
	}
	recs, err := Scan(d, "/seg")
	if err != nil || len(recs) != 1 || recs[0].Size != 0 {
		t.Errorf("scan = %v, %v", recs, err)
	}
}

func TestNewWriterRejectsGarbage(t *testing.T) {
	d := memfs.New()
	storage.WriteAll(d, "/tiny", []byte("x"))
	if _, err := NewWriter(d, "/tiny"); !errors.Is(err, types.ErrInvalid) {
		t.Errorf("tiny segment: %v", err)
	}
}

// Property: for any sequence of payload sizes, the recorded offsets
// read back each payload exactly, and Scan recovers the same layout.
func TestAppendScanProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		d := memfs.New()
		w, err := NewWriter(d, "/seg")
		if err != nil {
			return false
		}
		type rec struct {
			off  int64
			data []byte
		}
		var recs []rec
		for i, sz := range sizes {
			data := bytes.Repeat([]byte{byte(i + 1)}, int(sz)%2048)
			off, err := w.Append(data)
			if err != nil {
				return false
			}
			recs = append(recs, rec{off, data})
		}
		for _, r := range recs {
			got, err := Read(d, "/seg", r.off, int64(len(r.data)))
			if err != nil || !bytes.Equal(got, r.data) {
				return false
			}
		}
		scanned, err := Scan(d, "/seg")
		if err != nil || len(scanned) != len(recs) {
			return false
		}
		for i, s := range scanned {
			if s.Offset != recs[i].off || s.Size != int64(len(recs[i].data)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
