// Package container implements SRB containers: append-only segment
// files that aggregate many small data objects into one physical block,
// "for storage into archives, and for decreasing latency when accessed
// over a wide area network" (paper §2). "One can view containers as
// tarfiles but with more flexibility in accessing and updating files."
//
// A segment begins with a file header and holds a sequence of records,
// each framed with a marker and length so segments are self-describing:
// Scan recovers the member table from the bytes alone, while in normal
// operation MCAT tracks each member's (offset, size) and members are
// read directly by range without touching the rest of the segment.
package container

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"gosrb/internal/storage"
	"gosrb/internal/types"
)

// fileMagic begins every container segment.
var fileMagic = []byte("SRBC0001")

// recMagic begins every record header.
var recMagic = []byte("RC01")

// recHeaderSize is the record framing overhead: marker + 8-byte length.
const recHeaderSize = 4 + 8

// HeaderSize is the segment file header length.
const HeaderSize = 8

// Writer appends records to a container segment on a storage driver.
// It is not safe for concurrent use; the broker serialises appends per
// container.
type Writer struct {
	d    storage.Driver
	path string
	off  int64 // current end of segment
}

// NewWriter opens (or creates) the segment at path on d and positions
// at its end.
func NewWriter(d storage.Driver, path string) (*Writer, error) {
	fi, err := d.Stat(path)
	switch {
	case errors.Is(err, types.ErrNotFound):
		w, err := d.Create(path)
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(fileMagic); err != nil {
			w.Close()
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		return &Writer{d: d, path: path, off: HeaderSize}, nil
	case err != nil:
		return nil, err
	}
	if fi.Size < HeaderSize {
		return nil, types.E("container", path, fmt.Errorf("segment shorter than header: %w", types.ErrInvalid))
	}
	return &Writer{d: d, path: path, off: fi.Size}, nil
}

// Size returns the current segment length in bytes.
func (w *Writer) Size() int64 { return w.off }

// Path returns the segment's physical path.
func (w *Writer) Path() string { return w.path }

// Append frames data as one record at the end of the segment and
// returns the payload offset MCAT should record for the member.
func (w *Writer) Append(data []byte) (offset int64, err error) {
	h, err := w.d.OpenAppend(w.path)
	if err != nil {
		return 0, err
	}
	var hdr [recHeaderSize]byte
	copy(hdr[:4], recMagic)
	binary.BigEndian.PutUint64(hdr[4:], uint64(len(data)))
	if _, err := h.Write(hdr[:]); err != nil {
		h.Close()
		return 0, err
	}
	if _, err := h.Write(data); err != nil {
		h.Close()
		return 0, err
	}
	if err := h.Close(); err != nil {
		return 0, err
	}
	offset = w.off + recHeaderSize
	w.off += recHeaderSize + int64(len(data))
	return offset, nil
}

// Read extracts one member's bytes given the payload offset and size
// recorded in the catalog, without reading the rest of the segment.
func Read(d storage.Driver, path string, offset, size int64) ([]byte, error) {
	if offset < HeaderSize+recHeaderSize || size < 0 {
		return nil, types.E("container-read", path, types.ErrInvalid)
	}
	buf, err := storage.ReadRange(d, path, offset, size)
	if err != nil {
		return nil, err
	}
	if int64(len(buf)) != size {
		return nil, types.E("container-read", path, io.ErrUnexpectedEOF)
	}
	return buf, nil
}

// Record locates one member found by Scan.
type Record struct {
	Offset int64 // payload offset
	Size   int64
}

// Scan walks the segment's framing and returns every record. It is the
// recovery path when a catalog must be rebuilt from raw segments.
func Scan(d storage.Driver, path string) ([]Record, error) {
	r, err := d.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var head [HeaderSize]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, types.E("container-scan", path, types.ErrInvalid)
	}
	if string(head[:]) != string(fileMagic) {
		return nil, types.E("container-scan", path, fmt.Errorf("bad segment magic: %w", types.ErrInvalid))
	}
	var out []Record
	off := int64(HeaderSize)
	for {
		var hdr [recHeaderSize]byte
		_, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, types.E("container-scan", path, fmt.Errorf("truncated record header at %d: %w", off, types.ErrInvalid))
		}
		if string(hdr[:4]) != string(recMagic) {
			return out, types.E("container-scan", path, fmt.Errorf("bad record magic at %d: %w", off, types.ErrInvalid))
		}
		size := int64(binary.BigEndian.Uint64(hdr[4:]))
		if size < 0 {
			return out, types.E("container-scan", path, types.ErrInvalid)
		}
		payload := off + recHeaderSize
		if _, err := r.Seek(size, io.SeekCurrent); err != nil {
			return out, types.E("container-scan", path, err)
		}
		// Verify the payload is fully present by probing its last byte.
		if size > 0 {
			var b [1]byte
			if _, err := r.ReadAt(b[:], payload+size-1); err != nil {
				return out, types.E("container-scan", path, fmt.Errorf("truncated payload at %d: %w", payload, types.ErrInvalid))
			}
		}
		out = append(out, Record{Offset: payload, Size: size})
		off = payload + size
	}
}

// Copy duplicates a whole segment between drivers (container
// replication and cache-to-archive sync use this).
func Copy(dst storage.Driver, dstPath string, src storage.Driver, srcPath string) (int64, error) {
	return storage.Copy(dst, dstPath, src, srcPath)
}
