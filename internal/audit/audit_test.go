package audit

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gosrb/internal/types"
)

func TestRecordAndQuery(t *testing.T) {
	l := New(10)
	now := time.Unix(100, 0)
	l.SetClock(func() time.Time { return now })
	l.Op("alice", "get", "/c/f1", true, "")
	l.Op("bob", "ingest", "/c/f2", true, "")
	l.Op("alice", "delete", "/c/f1", false, "permission denied")

	if got := len(l.Query(Filter{User: "alice"})); got != 2 {
		t.Errorf("alice records = %d", got)
	}
	if got := len(l.Query(Filter{Op: "ingest"})); got != 1 {
		t.Errorf("ingest records = %d", got)
	}
	recs := l.Query(Filter{})
	if len(recs) != 3 || recs[0].Op != "get" || recs[2].OK {
		t.Errorf("all records = %+v", recs)
	}
	if recs[0].Time != now {
		t.Error("time should be stamped")
	}
}

func TestTargetSubtreeFilter(t *testing.T) {
	l := New(10)
	l.Op("u", "get", "/a/b/f", true, "")
	l.Op("u", "get", "/other/f", true, "")
	if got := len(l.Query(Filter{Target: "/a"})); got != 1 {
		t.Errorf("subtree filter = %d", got)
	}
	if got := len(l.Query(Filter{Target: "/a/b/f"})); got != 1 {
		t.Errorf("exact filter = %d", got)
	}
}

func TestTimeWindow(t *testing.T) {
	l := New(10)
	base := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		l.Record(types.AuditRecord{User: "u", Op: "op", Time: base.Add(time.Duration(i) * time.Hour)})
	}
	got := l.Query(Filter{Since: base.Add(time.Hour), Until: base.Add(3 * time.Hour)})
	if len(got) != 3 {
		t.Errorf("window = %d records", len(got))
	}
}

func TestRingDropsOldest(t *testing.T) {
	l := New(3)
	for i := 0; i < 5; i++ {
		l.Op("u", "op", fmt.Sprintf("/f%d", i), true, "")
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
	if l.Dropped() != 2 {
		t.Errorf("Dropped = %d", l.Dropped())
	}
	recs := l.Query(Filter{})
	if recs[0].Target != "/f2" || recs[2].Target != "/f4" {
		t.Errorf("ring contents = %+v", recs)
	}
}

func TestConcurrentRecord(t *testing.T) {
	l := New(1000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Op("u", "op", "/t", true, "")
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Errorf("Len = %d, want 800", l.Len())
	}
}

func TestDefaultCapacity(t *testing.T) {
	l := New(0)
	l.Op("u", "op", "/t", true, "")
	if l.Len() != 1 {
		t.Error("default-capacity log should accept records")
	}
}

// TestWraparoundAccounting walks the ring through several full
// wraparounds and checks the books stay exact: every displaced record
// is counted, the survivors are the newest capacity records in append
// order, and Len never exceeds the bound.
func TestWraparoundAccounting(t *testing.T) {
	const capacity = 4
	l := New(capacity)
	const total = capacity*3 + 2 // three full wraps plus a partial
	for i := 0; i < total; i++ {
		l.Op("u", "op", fmt.Sprintf("/f%d", i), true, "")
		if l.Len() > capacity {
			t.Fatalf("Len = %d exceeds capacity %d", l.Len(), capacity)
		}
		wantDropped := int64(i + 1 - capacity)
		if wantDropped < 0 {
			wantDropped = 0
		}
		if l.Dropped() != wantDropped {
			t.Fatalf("after %d records Dropped = %d, want %d", i+1, l.Dropped(), wantDropped)
		}
	}
	recs := l.Query(Filter{})
	if len(recs) != capacity {
		t.Fatalf("Query returned %d records, want %d", len(recs), capacity)
	}
	for i, r := range recs {
		want := fmt.Sprintf("/f%d", total-capacity+i)
		if r.Target != want {
			t.Errorf("recs[%d] = %s, want %s", i, r.Target, want)
		}
	}
	// Dropped plus retained must equal everything ever recorded.
	if l.Dropped()+int64(l.Len()) != int64(total) {
		t.Errorf("dropped %d + len %d != total %d", l.Dropped(), l.Len(), total)
	}
}
