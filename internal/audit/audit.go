// Package audit implements the auditing facility the DGA requires:
// "in some cases, it may be necessary to audit usage of the
// collections/datasets" (paper §2). Every brokered operation appends a
// record; the log is bounded and queryable.
package audit

import (
	"strings"
	"sync"
	"time"

	"gosrb/internal/types"
)

// DefaultCapacity bounds the in-memory log when no capacity is given.
const DefaultCapacity = 100_000

// Log is a bounded, append-only audit trail. Safe for concurrent use.
// When the capacity is exceeded the oldest records are dropped.
type Log struct {
	mu      sync.Mutex
	records []types.AuditRecord
	start   int // ring start
	count   int
	dropped int64
	now     func() time.Time
}

// New returns a log holding up to capacity records (DefaultCapacity if
// capacity <= 0).
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{records: make([]types.AuditRecord, capacity), now: time.Now}
}

// SetClock overrides the time source (tests).
func (l *Log) SetClock(now func() time.Time) { l.now = now }

// Record appends an entry, stamping the time if unset.
func (l *Log) Record(rec types.AuditRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec.Time.IsZero() {
		rec.Time = l.now()
	}
	if l.count < len(l.records) {
		l.records[(l.start+l.count)%len(l.records)] = rec
		l.count++
		return
	}
	l.records[l.start] = rec
	l.start = (l.start + 1) % len(l.records)
	l.dropped++
}

// Op is a convenience wrapper recording one operation outcome.
func (l *Log) Op(user, op, target string, ok bool, detail string) {
	l.Record(types.AuditRecord{User: user, Op: op, Target: target, OK: ok, Detail: detail})
}

// OpTraced records one operation outcome stamped with the request
// trace ID, joining the audit trail to the trace stream.
func (l *Log) OpTraced(trace, user, op, target string, ok bool, detail string) {
	l.Record(types.AuditRecord{User: user, Op: op, Target: target, OK: ok, Detail: detail, Trace: trace})
}

// Len reports how many records are held.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Dropped reports how many records were displaced by the ring bound.
func (l *Log) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Filter selects audit records; zero fields match everything. Target
// matches the record target itself or any record under it when the
// target is a collection path.
type Filter struct {
	User   string
	Op     string
	Target string
	Trace  string
	Since  time.Time
	Until  time.Time
}

func (f Filter) matches(r types.AuditRecord) bool {
	if f.User != "" && r.User != f.User {
		return false
	}
	if f.Trace != "" && r.Trace != f.Trace {
		return false
	}
	if f.Op != "" && r.Op != f.Op {
		return false
	}
	if f.Target != "" {
		if r.Target != f.Target && !(strings.HasPrefix(f.Target, "/") && types.Within(f.Target, r.Target)) {
			return false
		}
	}
	if !f.Since.IsZero() && r.Time.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && r.Time.After(f.Until) {
		return false
	}
	return true
}

// Query returns matching records in append order.
func (l *Log) Query(f Filter) []types.AuditRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []types.AuditRecord
	for i := 0; i < l.count; i++ {
		r := l.records[(l.start+i)%len(l.records)]
		if f.matches(r) {
			out = append(out, r)
		}
	}
	return out
}
