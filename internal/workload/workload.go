// Package workload generates the synthetic collections the experiments
// ingest: 2MASS-style sky-survey libraries (the paper's 10 TB / 5
// million file exemplar, scaled down), small-file populations for the
// container experiments, and deterministic pseudo-random content.
//
// Everything is seeded so every bench run sees the same workload.
package workload

import (
	"fmt"
	"math/rand"

	"gosrb/internal/types"
)

// Gen is a deterministic workload generator.
type Gen struct {
	rnd *rand.Rand
}

// NewGen returns a generator seeded deterministically.
func NewGen(seed int64) *Gen {
	return &Gen{rnd: rand.New(rand.NewSource(seed))}
}

// Bytes returns size pseudo-random bytes, cheap enough for bulk ingest.
func (g *Gen) Bytes(size int) []byte {
	b := make([]byte, size)
	// Fill 8 bytes per RNG call; plenty random for storage payloads.
	for i := 0; i < size; i += 8 {
		v := g.rnd.Uint64()
		for j := 0; j < 8 && i+j < size; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	return b
}

// Spec describes one object to ingest.
type Spec struct {
	Collection string
	Name       string
	Size       int
	DataType   string
	Meta       []types.AVU
}

// Path returns the spec's logical path.
func (s Spec) Path() string { return types.Join(s.Collection, s.Name) }

var (
	surveys    = []string{"2mass", "dposs", "ukidss", "sdss"}
	bands      = []string{"J", "H", "K", "g", "r", "i"}
	telescopes = []string{"Mt Hopkins", "Palomar", "UKIRT", "Apache Point"}
)

// SkySurvey generates n image specs spread across nColls sub-collections
// of root, each with survey metadata (survey, band, mag, telescope) in
// the style of the 2-Micron All Sky Survey library.
func (g *Gen) SkySurvey(root string, n, nColls int) []Spec {
	if nColls < 1 {
		nColls = 1
	}
	out := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		coll := types.Join(root, fmt.Sprintf("plate%03d", i%nColls))
		si := g.rnd.Intn(len(surveys))
		spec := Spec{
			Collection: coll,
			Name:       fmt.Sprintf("img%07d.fits", i),
			Size:       2048 + g.rnd.Intn(6144),
			DataType:   "fits image",
			Meta: []types.AVU{
				{Name: "survey", Value: surveys[si]},
				{Name: "band", Value: bands[g.rnd.Intn(len(bands))]},
				{Name: "mag", Value: fmt.Sprintf("%.2f", 2+g.rnd.Float64()*14)},
				{Name: "telescope", Value: telescopes[si]},
			},
		}
		out = append(out, spec)
	}
	return out
}

// SmallFiles generates n specs with sizes uniform in [minSize, maxSize],
// all in one collection — the container experiments' population.
func (g *Gen) SmallFiles(coll string, n, minSize, maxSize int) []Spec {
	if maxSize < minSize {
		maxSize = minSize
	}
	out := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Spec{
			Collection: coll,
			Name:       fmt.Sprintf("small%06d.dat", i),
			Size:       minSize + g.rnd.Intn(maxSize-minSize+1),
			DataType:   "generic",
		})
	}
	return out
}

// FITSHeader renders a FITS-like header block for a spec, the input to
// the T-language extraction experiment.
func (g *Gen) FITSHeader(s Spec) []byte {
	object := fmt.Sprintf("OBJ%05d", g.rnd.Intn(100000))
	var survey, band, mag string
	for _, m := range s.Meta {
		switch m.Name {
		case "survey":
			survey = m.Value
		case "band":
			band = m.Value
		case "mag":
			mag = m.Value
		}
	}
	hdr := fmt.Sprintf(
		"SIMPLE  =                    T / conforms to FITS standard\n"+
			"BITPIX  =                   16\n"+
			"NAXIS   =                    2\n"+
			"OBJECT  = '%s'\n"+
			"SURVEY  = '%s'\n"+
			"FILTER  = '%s'\n"+
			"MAG     = %s\n"+
			"END\n", object, survey, band, mag)
	return []byte(hdr)
}

// DublinCore returns a Dublin Core element set for a spec, the paper's
// example of standardised type-oriented metadata.
func DublinCore(title, creator, subject, description string) []types.AVU {
	return []types.AVU{
		{Name: "dc:title", Value: title},
		{Name: "dc:creator", Value: creator},
		{Name: "dc:subject", Value: subject},
		{Name: "dc:description", Value: description},
		{Name: "dc:type", Value: "Image"},
		{Name: "dc:format", Value: "image/fits"},
	}
}
