package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := NewGen(42).SkySurvey("/lib", 100, 4)
	b := NewGen(42).SkySurvey("/lib", 100, 4)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Path() != b[i].Path() || a[i].Size != b[i].Size {
			t.Fatalf("spec %d differs: %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Meta {
			if a[i].Meta[j] != b[i].Meta[j] {
				t.Fatalf("meta %d/%d differs", i, j)
			}
		}
	}
	if !bytes.Equal(NewGen(7).Bytes(1000), NewGen(7).Bytes(1000)) {
		t.Error("Bytes must be deterministic")
	}
	if bytes.Equal(NewGen(7).Bytes(1000), NewGen(8).Bytes(1000)) {
		t.Error("different seeds should differ")
	}
}

func TestSkySurveyShape(t *testing.T) {
	specs := NewGen(1).SkySurvey("/lib", 200, 8)
	colls := map[string]bool{}
	for _, s := range specs {
		colls[s.Collection] = true
		if !strings.HasPrefix(s.Collection, "/lib/plate") {
			t.Fatalf("collection %q", s.Collection)
		}
		if s.DataType != "fits image" || len(s.Meta) != 4 {
			t.Fatalf("spec %+v", s)
		}
		if s.Size < 2048 || s.Size >= 2048+6144 {
			t.Errorf("size %d out of range", s.Size)
		}
	}
	if len(colls) != 8 {
		t.Errorf("collections = %d, want 8", len(colls))
	}
}

func TestSmallFiles(t *testing.T) {
	specs := NewGen(2).SmallFiles("/sm", 50, 100, 200)
	if len(specs) != 50 {
		t.Fatal("count")
	}
	names := map[string]bool{}
	for _, s := range specs {
		if s.Size < 100 || s.Size > 200 {
			t.Errorf("size %d", s.Size)
		}
		if names[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		names[s.Name] = true
	}
	// Degenerate range collapses safely.
	one := NewGen(3).SmallFiles("/sm", 1, 500, 100)
	if one[0].Size != 500 {
		t.Errorf("collapsed range size = %d", one[0].Size)
	}
}

func TestBytesLength(t *testing.T) {
	g := NewGen(1)
	for _, n := range []int{0, 1, 7, 8, 9, 1023} {
		if got := len(g.Bytes(n)); got != n {
			t.Errorf("Bytes(%d) = %d bytes", n, got)
		}
	}
}

func TestFITSHeader(t *testing.T) {
	g := NewGen(1)
	specs := g.SkySurvey("/lib", 1, 1)
	hdr := string(g.FITSHeader(specs[0]))
	for _, want := range []string{"SIMPLE", "SURVEY", "FILTER", "MAG", "END"} {
		if !strings.Contains(hdr, want) {
			t.Errorf("header missing %s:\n%s", want, hdr)
		}
	}
}

func TestDublinCore(t *testing.T) {
	avus := DublinCore("T", "C", "S", "D")
	if len(avus) != 6 || avus[0].Name != "dc:title" || avus[0].Value != "T" {
		t.Errorf("DublinCore = %+v", avus)
	}
}
