package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"gosrb/internal/obs"
)

// adminServer is the operator-facing HTTP endpoint riding alongside the
// wire listener: plain-text metrics, a liveness probe, and the runtime
// profiler. It is read-only and unauthenticated, so bind it to
// localhost in production.
type adminServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeAdmin starts the admin endpoint on addr ("host:0" picks a port)
// and returns the bound address. Routes:
//
//	/metrics       Prometheus text exposition format; append
//	               ?format=text for the legacy "name value" dump
//	               (audit drops refreshed per scrape)
//	/healthz       readiness probe: 200 when healthy, 503 with one
//	               detail line per open breaker / offline resource /
//	               wedged repair engine; the repair backlog line is
//	               informational and present in both cases
//	/repair        repair engine status (JSON); ?action=pause|resume
//	               via POST suspends/resumes background maintenance
//	/trace/{id}    rendered span tree for a trace (?format=json for
//	               the raw records)
//	/usage         per-user/collection usage accounting (text table,
//	               ?format=json for machine consumption)
//	/debug/pprof/  the Go runtime profiler
//
// The endpoint stops when the server closes.
func (s *Server) ServeAdmin(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := s.broker.Metrics()
		reg.Gauge("audit.dropped").Set(s.broker.Cat.Audit.Dropped())
		s.broker.Breakers().Publish()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if r.URL.Query().Get("format") == "text" {
			reg.WriteText(w)
			return
		}
		obs.WritePrometheus(w, reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.broker.Breakers().Publish()
		uptime := s.broker.Metrics().Snapshot().UptimeSeconds
		ok, detail := s.Readiness()
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "degraded %s uptime=%.0fs\n", s.name, uptime)
		} else {
			fmt.Fprintf(w, "ok %s uptime=%.0fs\n", s.name, uptime)
		}
		for _, d := range detail {
			fmt.Fprintf(w, "%s\n", d)
		}
	})
	mux.HandleFunc("/repair", func(w http.ResponseWriter, r *http.Request) {
		switch action := r.URL.Query().Get("action"); action {
		case "":
		case "pause", "resume":
			eng := s.broker.Repair()
			if eng == nil {
				http.Error(w, "no repair engine", http.StatusNotFound)
				return
			}
			if r.Method != http.MethodPost {
				http.Error(w, "pause/resume require POST", http.StatusMethodNotAllowed)
				return
			}
			if action == "pause" {
				eng.Pause()
			} else {
				eng.Resume()
			}
		default:
			http.Error(w, "unknown action (want pause or resume)", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.repairStatus())
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/trace/")
		if id == "" {
			http.Error(w, "missing trace id", http.StatusBadRequest)
			return
		}
		recs := s.broker.Metrics().Traces().ForTrace(id)
		if len(recs) == 0 {
			http.Error(w, "trace not found (ring may have wrapped)", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(recs)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "trace %s on %s (%d spans)\n", id, s.name, len(recs))
		obs.WriteTree(w, obs.AssembleTree(recs))
	})
	mux.HandleFunc("/usage", func(w http.ResponseWriter, r *http.Request) {
		entries := s.broker.Metrics().Usage().Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(entries)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%-12s %-24s %8s %6s %12s %12s %10s\n",
			"USER", "COLLECTION", "OPS", "ERRS", "BYTES_IN", "BYTES_OUT", "AVG_MS")
		for _, e := range entries {
			avgMS := float64(0)
			if e.Ops > 0 {
				avgMS = float64(e.TotalMicros) / float64(e.Ops) / 1000
			}
			fmt.Fprintf(w, "%-12s %-24s %8d %6d %12d %12d %10.2f\n",
				e.User, e.Collection, e.Ops, e.Errors, e.BytesIn, e.BytesOut, avgMS)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.admin = &adminServer{ln: ln, srv: srv}
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			select {
			case <-s.closed:
			default:
				s.Logger.Errorf("admin: %v", err)
			}
		}
	}()
	return ln.Addr().String(), nil
}

// closeAdmin stops the admin endpoint if one is serving.
func (s *Server) closeAdmin() {
	s.mu.Lock()
	a := s.admin
	s.admin = nil
	s.mu.Unlock()
	if a != nil {
		a.srv.Close()
	}
}
