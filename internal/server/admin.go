package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"gosrb/internal/core"
	"gosrb/internal/obs"
	"gosrb/internal/wire"
)

// adminServer is the operator-facing HTTP endpoint riding alongside the
// wire listener: plain-text metrics, a liveness probe, and the runtime
// profiler. It is read-only and unauthenticated, so bind it to
// localhost in production.
type adminServer struct {
	ln  net.Listener
	srv *http.Server
}

// AdminEnv is what the admin HTTP surface needs from its host daemon.
// srbd passes its Server-backed grid fan-out; mysrbd (which has no wire
// Server) passes just the broker and gets a local-only /grid.
type AdminEnv struct {
	// Name identifies the daemon in /healthz and reply envelopes.
	Name string
	// Broker supplies metrics, breakers, repair engine and SLO state.
	Broker *core.Broker
	// GridStat, when set, answers /grid with a zone-wide gather (srbd
	// wires the federated fan-out here). nil degrades to a local-only
	// single-member grid view.
	GridStat func(window time.Duration) wire.GridStatReply
	// PoolStats, when set, reports the daemon's federation connection
	// pool on /pool (srbd wires Server.PeerPoolStats; mysrbd, which
	// opens no peer connections, leaves it nil and /pool 404s).
	PoolStats func() wire.PoolStats
}

// NewAdminHandler builds the admin mux over env. Routes:
//
//	/metrics       Prometheus text exposition format; append
//	               ?format=text for the legacy "name value" dump,
//	               ?format=openmetrics for OpenMetrics with trace-ID
//	               tail exemplars on histogram buckets, or
//	               ?window=5m for windowed rates/quantiles from the
//	               rollup ring (audit drops refreshed per scrape)
//	/healthz       readiness probe: 200 when healthy, 503 with one
//	               detail line per open breaker / offline resource /
//	               wedged repair engine; the repair backlog line and
//	               "warn:" SLO lines are informational in both cases
//	/grid          zone-wide windowed stats (JSON): per-member windows
//	               with stale/unreachable flags plus the merged grid
//	               aggregate; ?window=5m selects the trailing window
//	/alerts        SLO rule standings and the bounded fire/resolve
//	               alert log (JSON)
//	/repair        repair engine status (JSON); ?action=pause|resume
//	               via POST suspends/resumes background maintenance
//	/trace/{id}    rendered span tree for a trace (?format=json for
//	               the raw records)
//	/usage         per-user/collection usage accounting (text table,
//	               ?format=json for machine consumption)
//	/heat          hot-key/hot-object top-K, per-shard replication lag
//	               and the rebalance advisor plan (text table,
//	               ?format=json for machine consumption)
//	/debug/pprof/  the Go runtime profiler
func NewAdminHandler(env AdminEnv) http.Handler {
	b := env.Broker
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := b.Metrics()
		reg.Gauge("audit.dropped").Set(b.Cat.AuditLog().Dropped())
		b.Breakers().Publish()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if q := r.URL.Query().Get("window"); q != "" {
			window, err := time.ParseDuration(q)
			if err != nil || window <= 0 {
				http.Error(w, "bad window (want a duration like 5m)", http.StatusBadRequest)
				return
			}
			obs.WriteWindowText(w, reg.Window(window))
			return
		}
		switch r.URL.Query().Get("format") {
		case "text":
			reg.WriteText(w)
		case "openmetrics":
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			obs.WriteOpenMetrics(w, reg.Snapshot())
		default:
			obs.WritePrometheus(w, reg.Snapshot())
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		b.Breakers().Publish()
		uptime := b.Metrics().Snapshot().UptimeSeconds
		ok, detail := readiness(b, env.Name)
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "degraded %s version=%s uptime=%.0fs\n", env.Name, obs.Version, uptime)
		} else {
			fmt.Fprintf(w, "ok %s version=%s uptime=%.0fs\n", env.Name, obs.Version, uptime)
		}
		for _, d := range detail {
			fmt.Fprintf(w, "%s\n", d)
		}
	})
	mux.HandleFunc("/grid", func(w http.ResponseWriter, r *http.Request) {
		window := 5 * time.Minute
		if q := r.URL.Query().Get("window"); q != "" {
			d, err := time.ParseDuration(q)
			if err != nil || d <= 0 {
				http.Error(w, "bad window (want a duration like 5m)", http.StatusBadRequest)
				return
			}
			window = d
		}
		var rep wire.GridStatReply
		if env.GridStat != nil {
			rep = env.GridStat(window)
		} else {
			rep = localGridReply(b, env.Name, window)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	})
	mux.HandleFunc("/phases", func(w http.ResponseWriter, r *http.Request) {
		window := 5 * time.Minute
		if q := r.URL.Query().Get("window"); q != "" {
			d, err := time.ParseDuration(q)
			if err != nil || d <= 0 {
				http.Error(w, "bad window (want a duration like 5m)", http.StatusBadRequest)
				return
			}
			window = d
		}
		ws := b.Metrics().Window(window)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Server         string
			WindowSeconds  float64
			CoveredSeconds float64
			ExemplarMicros int64
			Phases         []obs.PhaseRow
		}{env.Name, ws.WindowSeconds, ws.CoveredSeconds,
			b.Metrics().ExemplarThreshold().Microseconds(), obs.PhaseRows(ws.Ops)})
	})
	mux.HandleFunc("/pool", func(w http.ResponseWriter, r *http.Request) {
		if env.PoolStats == nil {
			http.Error(w, "no federation pool on this daemon", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Server   string
			PeerPool wire.PoolStats
		}{env.Name, env.PoolStats()})
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(alertsOf(b, env.Name))
	})
	mux.HandleFunc("/incidents", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(incidentsOf(b, env.Name))
	})
	mux.HandleFunc("/incidents/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/incidents/")
		ir := b.Incidents()
		if ir == nil {
			http.Error(w, "flight recorder disabled (no -telemetry-dir)", http.StatusNotFound)
			return
		}
		meta, files, err := ir.Get(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		// A file query serves one raw bundle member; otherwise the meta
		// plus file listing (contents via ?file=).
		if name := r.URL.Query().Get("file"); name != "" {
			body, ok := files[name]
			if !ok {
				http.Error(w, "no such file in bundle", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(body)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(meta)
	})
	mux.HandleFunc("/peers", func(w http.ResponseWriter, r *http.Request) {
		rep := peersOf(b, env.Name)
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(rep)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%-16s %-12s %8s %6s %12s %10s %12s %8s\n",
			"PEER", "RESOURCE", "OPS", "ERRS", "BYTES", "EWMA_MS", "EWMA_MBPS", "SUCC%")
		for _, p := range rep.Peers {
			fmt.Fprintf(w, "%-16s %-12s %8d %6d %12d %10.2f %12.2f %8.1f\n",
				p.Peer, p.Resource, p.Ops, p.Errors, p.Bytes,
				p.EWMALatMicros/1000, p.EWMABytesPerSec/1e6, p.SuccessPct)
		}
	})
	mux.HandleFunc("/heat", func(w http.ResponseWriter, r *http.Request) {
		rep := heatOf(b, env.Name)
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(rep)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "hot catalog keys on %s (top %d)\n", env.Name, len(rep.Keys))
		fmt.Fprintf(w, "%-32s %10s %10s %12s\n", "KEY", "COUNT", "SCORE", "BYTES")
		for _, k := range rep.Keys {
			fmt.Fprintf(w, "%-32s %10d %10.1f %12d\n", k.Key, k.Count, k.Score, k.Bytes)
		}
		if len(rep.Objects) > 0 {
			fmt.Fprintf(w, "\nhot objects (top %d)\n", len(rep.Objects))
			fmt.Fprintf(w, "%-48s %10s %10s %12s\n", "OBJECT", "COUNT", "SCORE", "BYTES")
			for _, o := range rep.Objects {
				fmt.Fprintf(w, "%-48s %10d %10.1f %12d\n", o.Key, o.Count, o.Score, o.Bytes)
			}
		}
		if len(rep.Shards) > 0 {
			fmt.Fprintf(w, "\nshards\n")
			fmt.Fprintf(w, "%-5s %-8s %10s %10s %10s\n", "SHARD", "ROLE", "OBJECTS", "REPLAG_N", "REPLAG_S")
			for _, st := range rep.Shards {
				fmt.Fprintf(w, "%-5d %-8s %10d %10d %10.0f\n",
					st.Shard, st.Role, st.Objects, st.ReplagEntries, st.ReplagSeconds)
			}
		}
		if rep.Plan != nil {
			fmt.Fprintf(w, "\nrebalance plan (imbalance %.2fx -> %.2fx)\n",
				rep.Plan.Imbalance, rep.Plan.Projected)
			if rep.Plan.Note != "" {
				fmt.Fprintf(w, "%s\n", rep.Plan.Note)
			}
			for _, m := range rep.Plan.Moves {
				fmt.Fprintf(w, "move %-32s shard %d -> %d (score %.1f, ~%d keys, ~%d bytes)\n",
					m.Key, m.From, m.To, m.Score, m.EstKeys, m.EstBytes)
			}
		}
	})
	mux.HandleFunc("/repair", func(w http.ResponseWriter, r *http.Request) {
		switch action := r.URL.Query().Get("action"); action {
		case "":
		case "pause", "resume":
			eng := b.Repair()
			if eng == nil {
				http.Error(w, "no repair engine", http.StatusNotFound)
				return
			}
			if r.Method != http.MethodPost {
				http.Error(w, "pause/resume require POST", http.StatusMethodNotAllowed)
				return
			}
			if action == "pause" {
				eng.Pause()
			} else {
				eng.Resume()
			}
		default:
			http.Error(w, "unknown action (want pause or resume)", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(repairStatusOf(b, env.Name))
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/trace/")
		if id == "" {
			http.Error(w, "missing trace id", http.StatusBadRequest)
			return
		}
		recs := b.Metrics().Traces().ForTrace(id)
		if len(recs) == 0 {
			http.Error(w, "trace not found (ring may have wrapped)", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(recs)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "trace %s on %s (%d spans)\n", id, env.Name, len(recs))
		obs.WriteTree(w, obs.AssembleTree(recs))
	})
	mux.HandleFunc("/usage", func(w http.ResponseWriter, r *http.Request) {
		entries := b.Metrics().Usage().Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(entries)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%-12s %-24s %8s %6s %12s %12s %10s\n",
			"USER", "COLLECTION", "OPS", "ERRS", "BYTES_IN", "BYTES_OUT", "AVG_MS")
		for _, e := range entries {
			avgMS := float64(0)
			if e.Ops > 0 {
				avgMS = float64(e.TotalMicros) / float64(e.Ops) / 1000
			}
			fmt.Fprintf(w, "%-12s %-24s %8d %6d %12d %12d %10.2f\n",
				e.User, e.Collection, e.Ops, e.Errors, e.BytesIn, e.BytesOut, avgMS)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// localGridReply is the degraded /grid answer for daemons without a
// federation fan-out: one member, this broker's own window.
func localGridReply(b *core.Broker, name string, window time.Duration) wire.GridStatReply {
	ws := b.Metrics().Window(window)
	m := wire.GridMember{Server: name, Window: ws}
	if ws.CoveredSeconds < staleFraction*ws.WindowSeconds {
		m.Stale = true
	}
	return wire.GridStatReply{
		Server:        name,
		WindowSeconds: window.Seconds(),
		Members:       []wire.GridMember{m},
		Grid:          obs.MergeWindows([]obs.WindowStats{ws}),
	}
}

// adminGridDeadline bounds the zone fan-out behind the admin /grid
// endpoint; a dead peer costs one refused dial, well inside it.
const adminGridDeadline = 5 * time.Second

// GridStat answers a zone-wide windowed gather on behalf of a local
// surface (the admin /grid closure and the flight recorder's bundle
// snapshot use it).
func (s *Server) GridStat(window time.Duration) wire.GridStatReply {
	return s.gatherGridStat("admin", window, true, time.Now().Add(adminGridDeadline), nil)
}

// ServeAdmin starts the admin endpoint on addr ("host:0" picks a port)
// and returns the bound address. See NewAdminHandler for the routes.
// The endpoint stops when the server closes.
func (s *Server) ServeAdmin(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	h := NewAdminHandler(AdminEnv{
		Name:      s.name,
		Broker:    s.broker,
		GridStat:  s.GridStat,
		PoolStats: s.PeerPoolStats,
	})
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.admin = &adminServer{ln: ln, srv: srv}
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			select {
			case <-s.closed:
			default:
				s.Logger.Errorf("admin: %v", err)
			}
		}
	}()
	return ln.Addr().String(), nil
}

// closeAdmin stops the admin endpoint if one is serving.
func (s *Server) closeAdmin() {
	s.mu.Lock()
	a := s.admin
	s.admin = nil
	s.mu.Unlock()
	if a != nil {
		a.srv.Close()
	}
}
