package server

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// adminServer is the operator-facing HTTP endpoint riding alongside the
// wire listener: plain-text metrics, a liveness probe, and the runtime
// profiler. It is read-only and unauthenticated, so bind it to
// localhost in production.
type adminServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeAdmin starts the admin endpoint on addr ("host:0" picks a port)
// and returns the bound address. Routes:
//
//	/metrics       plain-text "name value" lines from the telemetry
//	               registry (audit drops refreshed per scrape)
//	/healthz       liveness probe, reports server name and uptime
//	/debug/pprof/  the Go runtime profiler
//
// The endpoint stops when the server closes.
func (s *Server) ServeAdmin(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := s.broker.Metrics()
		reg.Gauge("audit.dropped").Set(s.broker.Cat.Audit.Dropped())
		s.broker.Breakers().Publish()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "ok %s uptime=%.0fs\n", s.name, s.broker.Metrics().Snapshot().UptimeSeconds)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.admin = &adminServer{ln: ln, srv: srv}
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			select {
			case <-s.closed:
			default:
				s.Logger.Errorf("admin: %v", err)
			}
		}
	}()
	return ln.Addr().String(), nil
}

// closeAdmin stops the admin endpoint if one is serving.
func (s *Server) closeAdmin() {
	s.mu.Lock()
	a := s.admin
	s.admin = nil
	s.mu.Unlock()
	if a != nil {
		a.srv.Close()
	}
}
